// Determinism tests for the parallel candidate-scoring engine: the routed
// result must be byte-identical for every worker count, on every data set,
// in both routing modes. The engine's only nondeterminism risk is the
// cross-net argmin, which is computed sequentially from cached per-net
// keys precisely so that worker scheduling cannot leak into the result.
package repro_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/routedb"
)

// routedbJSON routes with the given worker count and renders the complete
// routing database, the strictest byte-level fingerprint of a run.
func routedbJSON(t *testing.T, ckt *circuit.Circuit, cfg core.Config) []byte {
	t.Helper()
	res, err := core.Route(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// fingerprint renders a finished result's complete routing database, the
// strictest byte-level fingerprint of a routing state.
func fingerprint(t *testing.T, res *core.Result) []byte {
	t.Helper()
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReOptimizeDeterministic exercises the ECO path: route once, then
// re-optimize the same result with every worker-pool size and require
// byte-identical routedb JSON. This covers the rip-up-and-reroute
// save/restore sweeps (tryReroute, reallocFeeds), which run far more often
// under ReOptimize than during a fresh route.
func TestReOptimizeDeterministic(t *testing.T) {
	p, err := gen.Dataset(gen.DatasetNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Route(ckt, core.Config{UseConstraints: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		res, err := core.ReOptimize(base, core.Config{UseConstraints: true, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		got := fingerprint(t, res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReOptimize with workers=%d differs from workers=1 (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}

// TestParallelScoringDeterministic routes every data set in both modes
// with the sequential scorer (Workers=1) and with parallel worker pools,
// and requires byte-identical routedb JSON.
func TestParallelScoringDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset sweep in -short mode")
	}
	pools := []int{2, runtime.GOMAXPROCS(0)}
	for _, name := range gen.DatasetNames() {
		p, err := gen.Dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, use := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/constraints=%v", name, use), func(t *testing.T) {
				want := routedbJSON(t, ckt, core.Config{UseConstraints: use, Workers: 1})
				for _, w := range pools {
					got := routedbJSON(t, ckt, core.Config{UseConstraints: use, Workers: w})
					if !bytes.Equal(got, want) {
						t.Fatalf("workers=%d routed differently from workers=1 (%d vs %d bytes)",
							w, len(got), len(want))
					}
				}
			})
		}
	}
}
