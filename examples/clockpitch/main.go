// Multi-pitch clock routing and feed-cell insertion (§4.2-4.3): a 2-pitch
// clock net needs two adjacent feedthrough slots in every row it crosses.
// When the free slots run out, the router widens the chip with flagged
// feed-cell groups and re-assigns — guaranteed complete. This example
// generates a small circuit with a wide clock, routes it, and shows the
// insertion and the clock's pitch-weighted density footprint.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/report"
	"repro/internal/rgraph"
)

func main() {
	params := gen.Params{
		Name: "clockdemo", Seed: 11, Cells: 80, Rows: 4,
		SeqFrac: 0.35, AvgFanout: 1.5, Locality: 16,
		PIs: 6, POs: 6, FeedFrac: 0.10, // deliberately scarce feeds
		WideClock: true, Constraints: 4, LimitFactor: 1.2,
	}
	ckt, err := gen.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	clk := -1
	for n := range ckt.Nets {
		if ckt.Nets[n].Pitch > 1 {
			clk = n
		}
	}
	fmt.Printf("clock net %q: pitch %d, %d terminals\n",
		ckt.Nets[clk].Name, ckt.Nets[clk].Pitch, len(ckt.Terminals(clk)))

	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip widened by %d columns (%d -> %d) to complete the assignment\n",
		res.AddedPitches, ckt.Cols, res.Ckt.Cols)

	// The clock's feedthroughs occupy two adjacent columns per row.
	fmt.Println("clock feedthroughs (leftmost of each 2-wide group):")
	for _, f := range res.Feeds[clk] {
		fmt.Printf("  row %d, columns %d-%d\n", f.Row, f.Col, f.Col+ckt.Nets[clk].Pitch-1)
	}

	// Density: the clock's trunks weigh 2 in the profiles.
	g := res.Graphs[clk]
	trunks := 0
	for _, e := range g.AliveEdges() {
		if g.Edges[e].Kind == rgraph.ETrunk {
			trunks++
		}
	}
	fmt.Printf("clock tree: %.0f µm over %d trunk edges (each weighs %d tracks)\n",
		res.WirelenUm[clk], trunks, g.Pitch)

	// Skew (§4.2's motivation): the wide wire halves the resistance, so
	// the Elmore skew across the DFF clock pins shrinks versus a 1-pitch
	// wire of the same topology.
	const rPerUm = 0.0005 // kΩ/µm for a 1-pitch wire
	tree := g.FinalTree()
	wideSkew := g.SkewPs(tree, res.Ckt, rPerUm/float64(g.Pitch))
	thinSkew := g.SkewPs(tree, res.Ckt, rPerUm)
	fmt.Printf("clock skew (Elmore): %.2f ps at pitch %d vs %.2f ps at pitch 1 (same tree)\n",
		wideSkew, g.Pitch, thinSkew)

	ch, _ := res.Dens.MaxCM()
	fmt.Println()
	fmt.Print(report.Fig4DensityChart(res.Dens, ch))
}
