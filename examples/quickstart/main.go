// Quickstart: route a small hand-built bipolar circuit end to end and
// print what the router did — the shortest possible tour of the public
// pipeline: circuit -> core.Route -> chanroute.Route -> final timing.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rgraph"
)

func main() {
	// A two-row circuit with a BUF driving gates in both rows, a flip
	// flop, external pins with alternative positions, and one timing
	// constraint (see circuit.SampleSmall for the layout sketch).
	ckt := circuit.SampleSmall()
	if err := ckt.Validate(); err != nil {
		log.Fatal(err)
	}

	// Global routing with the paper's timing-driven heuristics. Trace
	// shows the Fig. 2 phases.
	res, err := core.Route(ckt, core.Config{UseConstraints: true, Trace: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routed %d nets; %d feed columns inserted\n", len(res.Graphs), res.AddedPitches)
	for n, g := range res.Graphs {
		tree := g.FinalTree()
		kinds := map[rgraph.EKind]int{}
		for _, e := range tree.Edges {
			kinds[g.Edges[e].Kind]++
		}
		fmt.Printf("  net %-4s  %6.1f µm  (%d trunk, %d feed, %d branch edges)\n",
			res.Ckt.Nets[n].Name, tree.Length, kinds[rgraph.ETrunk], kinds[rgraph.EFeed], kinds[rgraph.EBranch])
	}

	// Channel routing turns the trees into tracks, lengths and area.
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		log.Fatal(err)
	}
	delay, viol, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: delay %.1f ps, %d violations, area %.4f mm², wire %.1f µm\n",
		delay, viol, cr.AreaMm2, cr.TotalLenUm)
	for p := range res.Ckt.Cons {
		fmt.Printf("constraint %s: limit %.1f ps, margin %.1f ps\n",
			res.Ckt.Cons[p].Name, res.Ckt.Cons[p].Limit, res.Margin(p))
	}
}
