// Timing sweep: how the delay/area trade moves as the constraint limits
// tighten. Each run regenerates the C1 netlist with a different
// LimitFactor (the constraints' distance above the lower bound) and routes
// it with and without constraints — the gap between the two curves is the
// value of timing-driven routing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gen"
)

func main() {
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"limit", "lower(ps)", "con(ps)", "unc(ps)", "reduction%", "conArea")
	for _, factor := range []float64{1.05, 1.10, 1.20, 1.35, 1.60} {
		p, err := gen.Dataset("C1P1")
		if err != nil {
			log.Fatal(err)
		}
		p.LimitFactor = factor
		ckt, err := gen.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		row, err := experiment.RunGenerated(fmt.Sprintf("x%.2f", factor), ckt, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %12.1f %12.1f %12.1f %12.1f %10.3f\n",
			factor, row.LowerBoundPs, row.Con.DelayPs, row.Unc.DelayPs,
			row.ImprovementPct(), row.Con.AreaMm2)
	}
	fmt.Println("\nreduction% = (unconstrained - constrained) / lower bound, the paper's headline metric")
}
