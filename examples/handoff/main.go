// Handoff: produce the routing database a detailed router would consume
// (JSON via internal/routedb), then read it back and summarize it — the
// consumer side of the flow. Demonstrates that the handoff is
// self-contained: everything below works from the JSON alone.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/routedb"
)

func main() {
	// Producer side: route and export.
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		log.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		log.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if err := routedb.Write(&wire, db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d bytes of routing database\n\n", wire.Len())

	// Consumer side: parse, validate, summarize.
	got, err := routedb.Read(&wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %s: %.0f µm x %.0f µm (%.4f mm²), %d channels\n",
		got.Circuit, got.WidthUm, got.HeightUm, got.AreaMm2, len(got.Channels))
	for _, ch := range got.Channels {
		fmt.Printf("  channel %d: %d tracks\n", ch.Index, ch.Tracks)
	}

	// Longest nets first — what a detailed router would budget for.
	nets := append([]routedb.Net(nil), got.Nets...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].LengthUm > nets[j].LengthUm })
	fmt.Println("\nnets by routed length:")
	for _, n := range nets {
		fmt.Printf("  %-5s %7.1f µm  %d wires, %d pins, %d feedthroughs\n",
			n.Name, n.LengthUm, len(n.Wires), len(n.Pins), len(n.Feeds))
	}
}
