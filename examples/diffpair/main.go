// Differential-drive routing (§4.1): an ECL driver's complementary
// outputs Q/QB must reach the receiver's IN/INB over physically parallel
// wires. The router keeps the two routing graphs isomorphic and deletes
// edges in lock-step; this example prints the resulting mirrored trees.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
)

func main() {
	ckt := circuit.SampleDiff()
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		log.Fatal(err)
	}

	q, qb := 0, 1 // nets "q" and "qb" form the pair in SampleDiff
	fmt.Printf("differential pair %s / %s\n", res.Ckt.Nets[q].Name, res.Ckt.Nets[qb].Name)
	ga, gb := res.Graphs[q], res.Graphs[qb]
	fmt.Printf("%-4s %-7s %-22s %-22s\n", "edge", "kind", res.Ckt.Nets[q].Name, res.Ckt.Nets[qb].Name)
	for e := range ga.Edges {
		if !ga.Edges[e].Alive && !gb.Edges[e].Alive {
			continue
		}
		fmt.Printf("e%-3d %-7s ch=%d x=[%2d,%2d] alive=%-5v ch=%d x=[%2d,%2d] alive=%-5v\n",
			e, ga.Edges[e].Kind,
			ga.Edges[e].Ch, ga.Edges[e].X1, ga.Edges[e].X2, ga.Edges[e].Alive,
			gb.Edges[e].Ch, gb.Edges[e].X1, gb.Edges[e].X2, gb.Edges[e].Alive)
	}
	fmt.Printf("\nlengths: %s %.1f µm, %s %.1f µm (parallel: identical)\n",
		res.Ckt.Nets[q].Name, res.WirelenUm[q], res.Ckt.Nets[qb].Name, res.WirelenUm[qb])

	// The pair's wires run one column apart in the same channel.
	for e := range ga.Edges {
		if ga.Edges[e].Alive && ga.Edges[e].Kind.String() == "trunk" {
			fmt.Printf("trunk e%d: %s spans [%d,%d], %s spans [%d,%d] — constant shift %d\n",
				e, res.Ckt.Nets[q].Name, ga.Edges[e].X1, ga.Edges[e].X2,
				res.Ckt.Nets[qb].Name, gb.Edges[e].X1, gb.Edges[e].X2,
				gb.Edges[e].X1-ga.Edges[e].X1)
		}
	}
}
