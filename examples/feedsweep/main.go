// Feed-cell sweep (§4.3): how many columns the router must insert to
// complete feedthrough assignment as the placement's free feed cells get
// scarcer — and what that costs in area. The paper's insertion guarantees
// completeness at any starting density; this sweep shows the price.
package main

import (
	"fmt"
	"log"

	"repro/internal/chanroute"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	fmt.Printf("%-10s %12s %12s %10s %12s\n",
		"feedFrac", "origCols", "insertedCols", "tracks", "area(mm2)")
	for _, frac := range []float64{0.40, 0.25, 0.15, 0.08, 0.02} {
		p, err := gen.Dataset("C1P1")
		if err != nil {
			log.Fatal(err)
		}
		p.FeedFrac = frac
		ckt, err := gen.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Route(ckt, core.Config{UseConstraints: true})
		if err != nil {
			log.Fatal(err)
		}
		cr, err := chanroute.Route(res.Ckt, res.Graphs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %12d %12d %10d %12.3f\n",
			frac, ckt.Cols, res.AddedPitches, res.Dens.TotalTracks(), cr.AreaMm2)
	}
	fmt.Println("\ninsertion always completes the assignment (the §4.3 guarantee);")
	fmt.Println("scarcer feed cells just mean more inserted columns and a wider chip.")
}
