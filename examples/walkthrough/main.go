// Walkthrough: the §3 machinery opened up on a tiny net. Builds the
// routing graph of one net by hand, shows its cycles and bridges, the
// tentative tree, the d'(e) estimates behind LM(e,P), and the channel
// density parameters — then deletes edges one at a time until the tree
// remains, printing what changed at each step.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/feed"
	"repro/internal/rgraph"
)

func main() {
	ckt := circuit.SampleSmall()
	fr, err := feed.Assign(ckt, nil)
	if err != nil {
		log.Fatal(err)
	}
	ckt = fr.Ckt
	const net = 1 // n1: the dual-tap buffer output crossing row 0
	fmt.Printf("net %s: terminals", ckt.Nets[net].Name)
	for _, tr := range ckt.Terminals(net) {
		fmt.Printf(" %s", ckt.PinName(tr))
	}
	fmt.Printf("; feedthroughs %v\n\n", fr.Feeds[net])

	g, err := rgraph.Build(ckt, fr.Geo, net, fr.Feeds[net])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing graph Gr(n): %d vertices, %d edges, %d deletable (non-bridge)\n",
		len(g.Verts), g.AliveCount(), len(g.NonBridges()))

	// Density state: put this net's trunks in so the §3.3 parameters mean
	// something.
	dens := density.New(ckt.Channels(), ckt.Cols)
	for _, e := range g.AliveEdges() {
		ed := &g.Edges[e]
		if ed.Kind == rgraph.ETrunk {
			dens.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			if ed.Bridge {
				dens.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
			}
		}
	}

	tree, err := g.Tentative()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tentative tree: %.1f µm over %d edges\n\n", tree.Length, len(tree.Edges))

	fmt.Println("deletion candidates (the LM machinery's d'(e) and the density view):")
	for _, e := range g.NonBridges() {
		ed := &g.Edges[e]
		dPrime := tree.Length
		if tree.InTree[e] {
			if l, err := g.LengthExcluding(e); err == nil {
				dPrime = l
			}
		}
		es := dens.Edge(ed.Ch, ed.X1, ed.X2)
		cs := dens.Channel(ed.Ch)
		fmt.Printf("  e%-2d %-6s ch%-1d x=[%2d,%2d] len=%5.1f  d'=%6.1f (Δ%+5.1f)  F_m=%d N_m=%d\n",
			e, ed.Kind, ed.Ch, ed.X1, ed.X2, ed.Len,
			dPrime, dPrime-tree.Length, cs.Cm-es.Dm, cs.NCm-es.NDm)
	}

	fmt.Println("\nedge-deletion run (delete the least harmful candidate first):")
	step := 0
	for {
		nb := g.NonBridges()
		if len(nb) == 0 {
			break
		}
		// Pick the candidate with the smallest wirelength harm, longest
		// edge on ties — a one-net stand-in for the full §3.4 comparator.
		best, bestHarm, bestLen := -1, 0.0, -1.0
		for _, e := range nb {
			harm := 0.0
			if tree.InTree[e] {
				if l, err := g.LengthExcluding(e); err == nil {
					harm = l - tree.Length
				}
			}
			if best == -1 || harm < bestHarm || (harm == bestHarm && g.Edges[e].Len > bestLen) {
				best, bestHarm, bestLen = e, harm, g.Edges[e].Len
			}
		}
		removed, err := g.Delete(best)
		if err != nil {
			log.Fatal(err)
		}
		g.RecomputeBridges()
		tree, err = g.Tentative()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: deleted e%d (%s), pruned %d stubs -> %d edges alive, tree %.1f µm\n",
			step, best, g.Edges[best].Kind, len(removed)-1, g.AliveCount(), tree.Length)
		step++
	}
	ft := g.FinalTree()
	fmt.Printf("\nfinal wiring: %.1f µm over %d edges (a tree: %v)\n", ft.Length, len(ft.Edges), g.IsTree())
}
