// ECO: the engineering-change flow. Route once, tighten the constraint
// limits (as a designer would after seeing silicon headroom), and
// re-optimize the existing routing with core.ReOptimize — no re-assignment,
// no initial routing, just the §3.5 rip-up phases against the new limits.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	p, err := gen.Dataset("C1P2")
	if err != nil {
		log.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		log.Fatal(err)
	}

	// First tape-out: routed with a deliberately poor net ordering, as if
	// timing had not been a concern.
	first, err := core.Route(ckt, core.Config{UseConstraints: true, ArbitraryNetOrder: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first routing:   worst delay %.1f ps, %d violations, %d tracks\n",
		first.Delay, first.Violations(), first.Dens.TotalTracks())

	// The ECO: timing must improve; re-optimize in place.
	eco, err := core.ReOptimize(first, core.Config{UseConstraints: true})
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for _, ps := range eco.Phases {
		accepted += ps.Accepted
		fmt.Printf("  %-12s reroutes=%-3d accepted=%d\n", ps.Name, ps.Reroutes, ps.Accepted)
	}
	fmt.Printf("after ECO:       worst delay %.1f ps, %d violations, %d tracks (%d reroutes kept)\n",
		eco.Delay, eco.Violations(), eco.Dens.TotalTracks(), accepted)

	// For reference: what a from-scratch timing-driven route achieves.
	scratch, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from scratch:    worst delay %.1f ps, %d violations, %d tracks\n",
		scratch.Delay, scratch.Violations(), scratch.Dens.TotalTracks())
	fmt.Println("\nECO recovers what rip-up can reach; the full reroute also re-orders")
	fmt.Println("the feedthrough assignment, which is where most of the delay lives.")
}
