// Command bgr-route runs the timing- and area-driven global router on a
// circuit file (or a generated preset), performs channel routing, and
// reports the resulting delay, area and wire length. It can also dump
// ASCII versions of the paper's figures.
//
// Usage:
//
//	bgr-route -i design.ckt
//	bgr-route -dataset C1P1 -unconstrained
//	bgr-route -dataset C1P1 -fig 4 -channel 2
//	bgr-route -i design.ckt -fig 3 -net n0042
//	bgr-route -i design.ckt -elmore -r 0.0005 -trace
//	bgr-route -i design.ckt -engine steiner
//	bgr-route -wire 127.0.0.1:8081 -i design.ckt -timing
//
// -engine selects the routing engine: "concurrent" (the paper's router,
// default), "sequential" (net-at-a-time baseline) or "steiner"
// (timing-constrained cost-distance Steiner trees). It works both
// locally and with -wire.
//
// With -wire the circuit is not routed locally: it is submitted to a
// running bgr-serve wire listener over the binary protocol, and the
// result artifacts are fetched back over the same connection.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/routedb"
	"repro/internal/service"
	"repro/internal/verify"
	"repro/internal/wire"

	// Register every routing engine for -engine (and so the summary can
	// list them on a bad name).
	_ "repro/internal/core"
	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

func main() {
	var (
		in      = flag.String("i", "", "input circuit file (text format)")
		dataset = flag.String("dataset", "", "generate a preset data set instead of reading a file")
		uncon   = flag.Bool("unconstrained", false, "ignore timing constraints (area-only baseline)")
		elmore  = flag.Bool("elmore", false, "use the Elmore RC delay model extension")
		rPerUm  = flag.Float64("r", 0.0005, "wire resistance for -elmore, kΩ/µm")
		trace   = flag.Bool("trace", false, "print the Fig. 2 phase trace")
		fig     = flag.Int("fig", 0, "dump a paper figure: 1 (delay graph), 3 (routing graph), 4 (density chart)")
		netName = flag.String("net", "", "net name for -fig 3 (default: first net)")
		channel = flag.Int("channel", -1, "channel for -fig 4 (default: most congested)")
		timing  = flag.Bool("timing", false, "print an STA-style timing report after routing")
		paths   = flag.Int("paths", 2, "critical paths to list with -timing")
		doCheck = flag.Bool("verify", false, "audit the routing with the structural verifier")
		layout  = flag.Bool("layout", false, "draw an ASCII layout of the routed chip")
		svgOut  = flag.String("svg", "", "write an SVG drawing of the routed chip to this file")
		greedy  = flag.Bool("greedy", false, "use the greedy channel router instead of left-edge")
		dbOut   = flag.String("db", "", "write the routing database (JSON handoff) to this file")
		congest = flag.Bool("congestion", false, "print the per-channel congestion table")
		phases  = flag.Bool("phases", false, "print the per-phase wall-clock breakdown")
		workers = flag.Int("workers", 0, "candidate-scoring workers (0 = one per CPU, 1 = sequential; result is identical)")
		shards  = flag.Int("shards", 0, "selection shards for the concurrent engine's round scans (0 = size default; result is identical)")
		wireTo  = flag.String("wire", "", "route remotely: submit to a bgr-serve wire listener at this address")
		engName = flag.String("engine", "", "routing engine: concurrent (default), sequential, steiner")
	)
	flag.Parse()

	if *wireTo != "" {
		if *fig != 0 || *trace || *doCheck || *congest || *phases {
			fatal(fmt.Errorf("-fig/-trace/-verify/-congestion/-phases are local-only; not available with -wire"))
		}
		jc := service.JobConfig{
			UseConstraints: !*uncon,
			Workers:        *workers,
			Shards:         *shards,
			GreedyChannels: *greedy,
		}
		if *elmore {
			jc.DelayModel = "elmore"
			jc.RPerUm = *rPerUm
		}
		if err := routeRemote(*wireTo, *in, *dataset, jc, *engName, remoteOut{
			db: *dbOut, svg: *svgOut, timing: *timing, layout: *layout,
		}); err != nil {
			fatal(err)
		}
		return
	}

	ckt, err := load(*in, *dataset)
	if err != nil {
		fatal(err)
	}
	cfg := engine.Config{UseConstraints: !*uncon, Workers: *workers, Shards: *shards}
	if *elmore {
		cfg.DelayModel = engine.Elmore
		cfg.RPerUm = *rPerUm
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	if *fig == 1 {
		s, err := report.Fig1DelayGraph(ckt, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}
	res, err := engine.Route(context.Background(), *engName, ckt, cfg)
	if err != nil {
		fatal(err)
	}
	switch *fig {
	case 3:
		net := 0
		if *netName != "" {
			net = -1
			for n := range res.Ckt.Nets {
				if res.Ckt.Nets[n].Name == *netName {
					net = n
				}
			}
			if net == -1 {
				fatal(fmt.Errorf("unknown net %q", *netName))
			}
		}
		fmt.Print(report.Fig3RoutingGraph(res.Ckt, res.Graphs[net]))
		return
	case 4:
		ch := *channel
		if ch < 0 {
			ch, _ = res.Dens.MaxCM()
		}
		fmt.Print(report.Fig4DensityChart(res.Dens, ch))
		return
	}

	if *doCheck {
		v := verify.Routing(res)
		if v.OK() {
			fmt.Println("verify: OK")
		} else {
			for _, p := range v.Problems {
				fmt.Println("verify:", p)
			}
			os.Exit(1)
		}
	}
	if *layout {
		fmt.Print(render.Layout(res))
	}
	algo := chanroute.LeftEdge
	if *greedy {
		algo = chanroute.Greedy
	}
	cr, err := chanroute.RouteWith(res.Ckt, res.Graphs, algo)
	if err != nil {
		fatal(err)
	}
	if *doCheck {
		v := verify.Channels(cr)
		hard := 0
		for _, p := range v.Problems {
			if p.Rule == "chan-vcg-waived" {
				fmt.Println("verify: note:", p) // solver-declared quality gap, not an error
				continue
			}
			fmt.Println("verify:", p)
			hard++
		}
		if hard > 0 {
			os.Exit(1)
		}
		fmt.Println("verify: channels OK")
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(render.SVG(res, cr)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bgr-route: wrote %s\n", *svgOut)
	}
	if *dbOut != "" {
		db, err := routedb.Build(res, cr)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*dbOut)
		if err != nil {
			fatal(err)
		}
		if err := routedb.Write(f, db); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "bgr-route: wrote %s\n", *dbOut)
	}
	delay, viol, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		fatal(err)
	}
	if *timing {
		dg, err := dgraph.New(res.Ckt)
		if err != nil {
			fatal(err)
		}
		tm := dg.NewTiming()
		tm.SetLumped(cr.NetLenUm)
		tm.Analyze()
		fmt.Print(report.TimingReport(res.Ckt, tm, *paths))
		fmt.Println()
		fmt.Print(report.SlackHistogram(res.Ckt, tm, 8))
		fmt.Println()
	}
	if *congest {
		tracks := make([]int, len(cr.Channels))
		for ci := range cr.Channels {
			tracks[ci] = cr.Channels[ci].Tracks
		}
		fmt.Print(report.CongestionTable(res.Dens, tracks))
		fmt.Println()
	}
	_, lb, err := lowerbound.Delay(ckt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit      %s (%d cells, %d nets, %d constraints)\n",
		ckt.Name, len(ckt.Cells), len(ckt.Nets), len(ckt.Cons))
	fmt.Printf("mode         engine=%s constraints=%v model=%v\n", res.Engine, cfg.UseConstraints, modelName(cfg))
	fmt.Printf("delay        %.1f ps (estimate %.1f ps, lower bound %.1f ps)\n", delay, res.Delay, lb)
	if lb > 0 {
		fmt.Printf("vs bound     +%.1f%%\n", (delay-lb)/lb*100)
	}
	fmt.Printf("violations   %d\n", viol)
	fmt.Printf("area         %.3f mm² (%.0f µm x %.0f µm)\n", cr.AreaMm2, cr.WidthUm, cr.HeightUm)
	fmt.Printf("wire length  %.2f mm\n", cr.TotalLenUm/1000)
	fmt.Printf("feed cells   +%d columns inserted\n", res.AddedPitches)
	fmt.Printf("tracks       %d total over %d channels\n", res.Dens.TotalTracks(), res.Ckt.Channels())
	fmt.Printf("route time   %v\n", res.Duration.Round(time.Microsecond))
	if *phases {
		fmt.Println()
		fmt.Println("phase                    deletions  reroutes  accepted      time    select    scored    reused    timing      cons")
		for _, ps := range res.Phases {
			fmt.Printf("%-24s %9d %9d %9d %9v %9v %9d %9d %9v %9d\n",
				ps.Name, ps.Deletions, ps.Reroutes, ps.Accepted, ps.Duration.Round(time.Microsecond),
				ps.SelectDuration.Round(time.Microsecond), ps.ScoredNets, ps.ReusedNets,
				ps.TimingDuration.Round(time.Microsecond), ps.TimingCons)
		}
	}
}

// remoteOut selects which artifacts to fetch back after a -wire run.
type remoteOut struct {
	db     string // write routedb JSON here
	svg    string // write the SVG drawing here
	timing bool   // print the timing report
	layout bool   // print the ASCII layout
}

// routeRemote submits the circuit to a bgr-serve wire listener, waits
// for the job, fetches the requested artifacts over the same pipelined
// connection, and prints the routed summary. A non-default engineName
// rides the TSubmitV2 frame's engine field; the default stays on the v1
// frame for old-server interop.
func routeRemote(addr, in, dataset string, jc service.JobConfig, engineName string, out remoteOut) error {
	cktText, err := circuitText(in, dataset)
	if err != nil {
		return err
	}
	cfgJSON, err := json.Marshal(jc)
	if err != nil {
		return err
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	rep, err := c.SubmitEngine(cktText, cfgJSON, engineName, 0)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bgr-route: job %s on %s (cached=%v dedup=%v)\n", rep.ID, addr, rep.Cached, rep.Dedup)
	stJSON, err := c.Wait(rep.ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	var st service.Status
	if err := json.Unmarshal(stJSON, &st); err != nil {
		return fmt.Errorf("decode status: %w", err)
	}
	if st.State != service.Done {
		return fmt.Errorf("job %s: %s: %s", st.ID, st.State, st.Error)
	}

	if out.db != "" {
		b, err := c.Result(rep.ID, wire.KindRouteDB)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out.db, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bgr-route: wrote %s\n", out.db)
	}
	if out.svg != "" {
		b, err := c.Result(rep.ID, wire.KindSVG)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out.svg, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bgr-route: wrote %s\n", out.svg)
	}
	if out.layout {
		b, err := c.Result(rep.ID, wire.KindLayout)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	}
	if out.timing {
		b, err := c.Result(rep.ID, wire.KindTiming)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Println()
	}

	s := st.Summary
	if s == nil {
		return fmt.Errorf("job %s finished without a summary", st.ID)
	}
	fmt.Printf("circuit      %s (%d nets, %d constraints)\n", st.Circuit, s.Nets, s.Constraints)
	fmt.Printf("mode         engine=%s constraints=%v model=%s\n", st.Engine, jc.UseConstraints, remoteModelName(jc))
	fmt.Printf("delay        %.1f ps\n", s.DelayPs)
	fmt.Printf("violations   %d\n", s.Violations)
	fmt.Printf("area         %.3f mm²\n", s.AreaMm2)
	fmt.Printf("wire length  %.2f mm\n", s.WirelenMm)
	fmt.Printf("feed cells   +%d columns inserted\n", s.AddedPitches)
	fmt.Printf("tracks       %d total\n", s.Tracks)
	return nil
}

// circuitText returns the circuit source text to put on the wire: raw
// file bytes for -i, or the generated preset rendered back to the text
// format for -dataset.
func circuitText(in, dataset string) (string, error) {
	switch {
	case in != "" && dataset != "":
		return "", fmt.Errorf("use either -i or -dataset, not both")
	case dataset != "":
		p, err := gen.Dataset(dataset)
		if err != nil {
			return "", err
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			return "", err
		}
		var buf bytes.Buffer
		if err := circuit.Format(&buf, ckt); err != nil {
			return "", err
		}
		return buf.String(), nil
	case in != "":
		b, err := os.ReadFile(in)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return "", fmt.Errorf("need -i <file> or -dataset <name>")
}

func remoteModelName(jc service.JobConfig) string {
	if jc.DelayModel == "elmore" {
		return "elmore"
	}
	return "lumped"
}

func load(in, dataset string) (*circuit.Circuit, error) {
	switch {
	case in != "" && dataset != "":
		return nil, fmt.Errorf("use either -i or -dataset, not both")
	case dataset != "":
		p, err := gen.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		return gen.Generate(p)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Parse(f)
	}
	return nil, fmt.Errorf("need -i <file> or -dataset <name>")
}

func modelName(cfg engine.Config) string {
	if cfg.DelayModel == engine.Elmore {
		return "elmore"
	}
	return "lumped"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-route:", err)
	os.Exit(1)
}
