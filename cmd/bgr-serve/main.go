// Command bgr-serve runs the global router as a long-lived HTTP service:
// clients POST circuits, poll or stream job status, and fetch results as
// routedb JSON, timing reports or SVG. With -listen-wire it also serves
// the compact binary wire protocol on a second listener, and with
// -journal it persists job transitions and results to an append-only
// journal replayed at startup. See docs/SERVICE.md for the API.
//
// Usage:
//
//	bgr-serve -addr 127.0.0.1:8080 -workers 4
//	bgr-serve -queue 128 -cache 64 -job-timeout 2m
//	bgr-serve -listen-wire 127.0.0.1:8081 -journal jobs.journal
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/service"

	// Register every routing engine: jobs select one with the "engine"
	// config field (docs/SERVICE.md). The concurrent default comes in
	// with package service itself.
	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", 2, "routing worker pool size")
		queue       = flag.Int("queue", 64, "job queue depth")
		cache       = flag.Int("cache", 32, "result cache entries (negative disables)")
		jobTimeout  = flag.Duration("job-timeout", 5*time.Minute, "per-job routing deadline")
		drain       = flag.Duration("drain", time.Minute, "shutdown grace period for queued jobs")
		scoreWork   = flag.Int("score-workers", 0, "default per-job candidate-scoring workers (0 = one per CPU)")
		scoreShard  = flag.Int("score-shards", 0, "default per-job selection shards for sharded engines (0 = size default)")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay addressable (negative keeps forever)")
		maxJobs     = flag.Int("max-jobs", 1024, "max retained terminal jobs, oldest evicted first (negative unlimited)")
		maxBody     = flag.Int64("max-body", 8<<20, "POST /jobs body cap, bytes (413 on overflow; negative unlimited)")
		maxCircuit  = flag.Int("max-circuit", 4<<20, "circuit text cap, bytes (negative unlimited)")
		maxNets     = flag.Int("max-nets", 50000, "per-circuit net cap (negative unlimited)")
		maxCells    = flag.Int("max-cells", 200000, "per-circuit cell cap (negative unlimited)")
		enablePprof = flag.Bool("pprof", true, "expose net/http/pprof under /debug/pprof/")
		wireAddr    = flag.String("listen-wire", "", "also serve the binary wire protocol on this address (empty disables)")
		maxFrame    = flag.Int("max-frame", 8<<20, "wire request frame cap, bytes (negative unlimited)")
		journalPath = flag.String("journal", "", "append job journal to this file and replay it at startup (empty disables)")
		journalSync = flag.String("journal-sync", "always", "journal fsync policy: always|none")
	)
	flag.Parse()

	syncPolicy, err := journal.ParsePolicy(*journalSync)
	if err != nil {
		fatal(err)
	}
	svc, err := service.Open(service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		JobTimeout:      *jobTimeout,
		ScoreWorkers:    *scoreWork,
		ScoreShards:     *scoreShard,
		TerminalTTL:     *jobTTL,
		MaxTerminalJobs: *maxJobs,
		MaxBodyBytes:    *maxBody,
		MaxCircuitBytes: *maxCircuit,
		MaxNets:         *maxNets,
		MaxCells:        *maxCells,
		MaxFrameBytes:   *maxFrame,
		JournalPath:     *journalPath,
		JournalSync:     syncPolicy,
	})
	if err != nil {
		fatal(err)
	}
	handler := svc.Handler()
	if *enablePprof {
		// Mount the profiling endpoints next to the API so a running
		// service can be profiled in place:
		//   go tool pprof http://ADDR/debug/pprof/profile?seconds=10
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// No WriteTimeout: SSE streams (/jobs/{id}/events) legitimately stay
	// open for the whole job; slow writers are bounded by IdleTimeout
	// and the per-job deadline instead.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("bgr-serve: listening on http://%s/ (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)
	fmt.Printf("bgr-serve: engines: %s (default %s)\n",
		strings.Join(engine.Names(), ", "), engine.DefaultName)

	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := svc.ServeWire(wireLn); err != nil {
				errc <- fmt.Errorf("wire listener: %w", err)
			}
		}()
		fmt.Printf("bgr-serve: wire protocol on %s (max-frame=%d)\n", wireLn.Addr(), *maxFrame)
	}
	if *journalPath != "" {
		fmt.Printf("bgr-serve: journaling jobs to %s (sync=%s)\n", *journalPath, *journalSync)
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("bgr-serve: shutting down, draining queue...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if wireLn != nil {
		wireLn.Close() // stop accepting wire connections before the drain
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bgr-serve: http shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bgr-serve: queue drain:", err)
		os.Exit(1)
	}
	fmt.Println("bgr-serve: done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-serve:", err)
	os.Exit(1)
}
