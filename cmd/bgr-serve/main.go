// Command bgr-serve runs the global router as a long-lived HTTP service:
// clients POST circuits, poll or stream job status, and fetch results as
// routedb JSON, timing reports or SVG. See docs/SERVICE.md for the API.
//
// Usage:
//
//	bgr-serve -addr 127.0.0.1:8080 -workers 4
//	bgr-serve -queue 128 -cache 64 -job-timeout 2m
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", 2, "routing worker pool size")
		queue       = flag.Int("queue", 64, "job queue depth")
		cache       = flag.Int("cache", 32, "result cache entries (negative disables)")
		jobTimeout  = flag.Duration("job-timeout", 5*time.Minute, "per-job routing deadline")
		drain       = flag.Duration("drain", time.Minute, "shutdown grace period for queued jobs")
		scoreWork   = flag.Int("score-workers", 0, "default per-job candidate-scoring workers (0 = one per CPU)")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay addressable (negative keeps forever)")
		maxJobs     = flag.Int("max-jobs", 1024, "max retained terminal jobs, oldest evicted first (negative unlimited)")
		maxBody     = flag.Int64("max-body", 8<<20, "POST /jobs body cap, bytes (413 on overflow; negative unlimited)")
		maxCircuit  = flag.Int("max-circuit", 4<<20, "circuit text cap, bytes (negative unlimited)")
		maxNets     = flag.Int("max-nets", 50000, "per-circuit net cap (negative unlimited)")
		maxCells    = flag.Int("max-cells", 200000, "per-circuit cell cap (negative unlimited)")
		enablePprof = flag.Bool("pprof", true, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	svc := service.New(service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		JobTimeout:      *jobTimeout,
		ScoreWorkers:    *scoreWork,
		TerminalTTL:     *jobTTL,
		MaxTerminalJobs: *maxJobs,
		MaxBodyBytes:    *maxBody,
		MaxCircuitBytes: *maxCircuit,
		MaxNets:         *maxNets,
		MaxCells:        *maxCells,
	})
	handler := svc.Handler()
	if *enablePprof {
		// Mount the profiling endpoints next to the API so a running
		// service can be profiled in place:
		//   go tool pprof http://ADDR/debug/pprof/profile?seconds=10
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// No WriteTimeout: SSE streams (/jobs/{id}/events) legitimately stay
	// open for the whole job; slow writers are bounded by IdleTimeout
	// and the per-job deadline instead.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("bgr-serve: listening on http://%s/ (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("bgr-serve: shutting down, draining queue...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bgr-serve: http shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bgr-serve: queue drain:", err)
		os.Exit(1)
	}
	fmt.Println("bgr-serve: done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-serve:", err)
	os.Exit(1)
}
