// Command bgr-gen synthesizes a bipolar standard-cell test circuit and
// writes it in the circuit text format.
//
// Usage:
//
//	bgr-gen -dataset C1P1 -o c1p1.ckt
//	bgr-gen -cells 400 -rows 8 -cons 10 -seed 7 -style P2 -o custom.ckt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "preset data set (C1P1, C1P2, C2P1, C2P2, C3P1)")
		out     = flag.String("o", "", "output file (default stdout)")
		cells   = flag.Int("cells", 240, "logic cells (custom mode)")
		rows    = flag.Int("rows", 6, "cell rows (custom mode)")
		cons    = flag.Int("cons", 8, "path constraints (custom mode)")
		pairs   = flag.Int("diffpairs", 3, "differential pairs (custom mode)")
		seed    = flag.Int64("seed", 1, "random seed (custom mode)")
		style   = flag.String("style", "P1", "placement style P1 (even feeds) or P2 (feeds aside)")
		limit   = flag.Float64("limit", 1.15, "constraint limit as a multiple of the lower bound")
		dp      = flag.Bool("datapath", false, "bit-sliced datapath synthesis instead of random logic (custom mode)")
	)
	flag.Parse()

	var params gen.Params
	var err error
	if *dataset != "" {
		params, err = gen.Dataset(*dataset)
		if err != nil {
			fatal(err)
		}
	} else {
		params = gen.Params{
			Name: "custom", Seed: *seed, Cells: *cells, Rows: *rows,
			Constraints: *cons, DiffPairs: *pairs,
			SeqFrac: 0.18, AvgFanout: 1.6, Locality: 24, FeedFrac: 0.20,
			PIs: 12, POs: 10, WideClock: true, LimitFactor: *limit,
		}
		if *style == "P2" {
			params.Style = gen.P2
		}
		params.Datapath = *dp
	}
	ckt, err := gen.Generate(params)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := circuit.Format(w, ckt); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bgr-gen: %s: %d cells, %d nets, %d constraints, %d rows x %d cols\n",
		ckt.Name, len(ckt.Cells), len(ckt.Nets), len(ckt.Cons), ckt.Rows, ckt.Cols)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-gen:", err)
	os.Exit(1)
}
