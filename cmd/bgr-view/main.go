// Command bgr-view routes a circuit and serves an inspection page — the
// SVG chip drawing, the timing report and the ASCII layout — over HTTP on
// localhost.
//
// Usage:
//
//	bgr-view -dataset C1P1 -addr 127.0.0.1:8080
//	bgr-view -i design.ckt
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/render"
)

func main() {
	var (
		in      = flag.String("i", "", "input circuit file (text format)")
		dataset = flag.String("dataset", "", "generate a preset data set instead of reading a file")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		uncon   = flag.Bool("unconstrained", false, "route without timing constraints")
	)
	flag.Parse()

	var ckt *circuit.Circuit
	var err error
	switch {
	case *dataset != "":
		var p gen.Params
		if p, err = gen.Dataset(*dataset); err == nil {
			ckt, err = gen.Generate(p)
		}
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			ckt, err = circuit.Parse(f)
			f.Close()
		}
	default:
		err = fmt.Errorf("need -i <file> or -dataset <name>")
	}
	if err != nil {
		fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: !*uncon})
	if err != nil {
		fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		fatal(err)
	}
	h, err := render.Handler(res, cr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bgr-view: serving %s on http://%s/\n", ckt.Name, *addr)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-view:", err)
	os.Exit(1)
}
