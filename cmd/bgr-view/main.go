// Command bgr-view routes a circuit and serves an inspection page — the
// SVG chip drawing, the timing report and the ASCII layout — over HTTP on
// localhost.
//
// By default it runs an embedded routing service (internal/service) and
// mounts the service's job endpoints, so the page is backed by the same
// API a bgr-serve deployment exposes: /jobs/{id}/svg, /jobs/{id}/timing,
// /jobs/{id}/layout, /jobs/{id}/routedb and /metrics all work. The
// pre-service one-shot render.Handler wiring remains available behind
// -legacy.
//
// Usage:
//
//	bgr-view -dataset C1P1 -addr 127.0.0.1:8080
//	bgr-view -i design.ckt
//	bgr-view -i design.ckt -legacy
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"html"
	"net/http"
	"os"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/render"
	"repro/internal/service"
)

func main() {
	var (
		in      = flag.String("i", "", "input circuit file (text format)")
		dataset = flag.String("dataset", "", "generate a preset data set instead of reading a file")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		uncon   = flag.Bool("unconstrained", false, "route without timing constraints")
		legacy  = flag.Bool("legacy", false, "serve via the old one-shot render.Handler instead of the routing service")
	)
	flag.Parse()

	ckt, err := load(*in, *dataset)
	if err != nil {
		fatal(err)
	}
	if *legacy {
		serveLegacy(ckt, *addr, !*uncon)
		return
	}

	// Render the circuit back to its text form: the service consumes the
	// same payload a remote client would POST.
	var cktText bytes.Buffer
	if err := circuit.Format(&cktText, ckt); err != nil {
		fatal(err)
	}
	svc := service.New(service.Options{Workers: 1})
	res, err := svc.Submit(service.SubmitRequest{
		Circuit: cktText.String(),
		Config:  &service.JobConfig{UseConstraints: !*uncon},
	})
	if err != nil {
		fatal(err)
	}
	st, err := svc.Wait(context.Background(), res.Job.ID)
	if err != nil {
		fatal(err)
	}
	if st.State != service.Done {
		fatal(fmt.Errorf("routing %s: %s", st.State, st.Error))
	}
	payload := res.Job.Payload()

	mux := http.NewServeMux()
	mux.Handle("/jobs", svc.Handler())
	mux.Handle("/jobs/", svc.Handler())
	mux.Handle("/metrics", svc.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		s := payload.Summary
		fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><title>%s — routed</title>
<style>body{font-family:monospace;margin:2em}pre{background:#f6f6f6;padding:1em;overflow:auto}</style>
</head><body>
<h1>%s</h1>
<p>%d nets, %d constraints, %.3f mm², %.2f mm wire, %d tracks
— <a href="/jobs/%s/routedb">routedb</a> · <a href="/jobs/%s">job</a> · <a href="/metrics">metrics</a></p>
<object data="/jobs/%s/svg" type="image/svg+xml" style="width:100%%;border:1px solid #ccc"></object>
<h2>Timing</h2><pre>%s</pre>
<h2>Layout</h2><pre>%s</pre>
</body></html>`,
			html.EscapeString(ckt.Name), html.EscapeString(ckt.Name),
			s.Nets, s.Constraints, s.AreaMm2, s.WirelenMm, s.Tracks,
			res.Job.ID, res.Job.ID, res.Job.ID,
			html.EscapeString(payload.Timing), html.EscapeString(payload.Layout))
	})
	fmt.Printf("bgr-view: serving %s on http://%s/ (job %s)\n", ckt.Name, *addr, res.Job.ID)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// serveLegacy is the pre-service path: route in-process and mount
// render.Handler directly.
func serveLegacy(ckt *circuit.Circuit, addr string, constraints bool) {
	res, err := core.Route(ckt, core.Config{UseConstraints: constraints})
	if err != nil {
		fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		fatal(err)
	}
	h, err := render.Handler(res, cr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bgr-view: serving %s on http://%s/ (legacy)\n", ckt.Name, addr)
	if err := http.ListenAndServe(addr, h); err != nil {
		fatal(err)
	}
}

func load(in, dataset string) (*circuit.Circuit, error) {
	switch {
	case in != "" && dataset != "":
		return nil, fmt.Errorf("use either -i or -dataset, not both")
	case dataset != "":
		p, err := gen.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		return gen.Generate(p)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Parse(f)
	}
	return nil, fmt.Errorf("need -i <file> or -dataset <name>")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-view:", err)
	os.Exit(1)
}
