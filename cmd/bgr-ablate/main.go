// Command bgr-ablate runs the DESIGN.md §5 ablations on one data set and
// prints a comparison table: how each design choice of the router moves
// delay, area and run time. It then runs every registered routing engine
// over the full benchmark suite and prints a quality-vs-runtime
// comparison — the axis bgr-serve exposes per job with the "engine"
// config field.
//
// Usage:
//
//	bgr-ablate -dataset C1P1
//	bgr-ablate -engines-only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/lowerbound"

	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

type variant struct {
	name string
	note string
	cfg  core.Config
}

func main() {
	dataset := flag.String("dataset", "C1P1", "data set to ablate on")
	enginesOnly := flag.Bool("engines-only", false, "skip the ablations; print only the engine comparison")
	flag.Parse()

	if !*enginesOnly {
		if err := ablations(*dataset); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if err := engineTable(); err != nil {
		fatal(err)
	}
}

func ablations(dataset string) error {
	p, err := gen.Dataset(dataset)
	if err != nil {
		return err
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		return err
	}
	_, lb, err := lowerbound.Delay(ckt)
	if err != nil {
		return err
	}

	variants := []variant{
		{"paper", "full algorithm (reference)", core.Config{}},
		{"A1-areaFirst", "density criteria before Gl/LD everywhere", core.Config{AreaFirst: true}},
		{"A2-noCache", "d'(e) recomputed for every edge (exact, slower)", core.Config{NoTentativeCache: true}},
		{"A3-anyOrder", "feedthroughs assigned in index order", core.Config{ArbitraryNetOrder: true}},
		{"A4-elmore", "Elmore RC delay model", core.Config{DelayModel: core.Elmore, RPerUm: 0.0005}},
		{"A5-noImprove", "initial routing only", core.Config{SkipImprovement: true}},
		{"A6-noFeedMove", "no feed re-assignment in rip-up", core.Config{NoFeedReroute: true}},
		{"unconstrained", "the paper's baseline", core.Config{}},
	}

	fmt.Printf("ablations on %s (lower bound %.1f ps)\n\n", dataset, lb)
	fmt.Printf("%-14s %10s %8s %10s %8s %7s  %s\n",
		"variant", "delay(ps)", "vs LB", "area(mm2)", "viol", "cpu(s)", "note")
	for _, v := range variants {
		cfg := v.cfg
		cfg.UseConstraints = v.name != "unconstrained"
		run, err := experiment.RunCircuit(ckt, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		fmt.Printf("%-14s %10.1f %+7.1f%% %10.3f %8d %7.3f  %s\n",
			v.name, run.DelayPs, (run.DelayPs-lb)/lb*100, run.AreaMm2, run.Violations, run.CPUSec, v.note)
	}
	return nil
}

// engineTable routes the full benchmark suite with every registered
// engine and prints the quality-vs-runtime comparison. All engines run
// the same constrained configuration; delay/area/violations are
// measured after channel routing, so the numbers are comparable across
// engines (and with the ablation table above).
func engineTable() error {
	fmt.Printf("engine comparison over the full benchmark suite (constrained)\n\n")
	fmt.Printf("%-6s %-12s %10s %8s %10s %9s %6s %7s\n",
		"data", "engine", "delay(ps)", "vs LB", "area(mm2)", "wire(mm)", "viol", "cpu(s)")
	for _, name := range gen.DatasetNames() {
		p, err := gen.Dataset(name)
		if err != nil {
			return err
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			return err
		}
		_, lb, err := lowerbound.Delay(ckt)
		if err != nil {
			return err
		}
		for _, eng := range engine.Names() {
			row, err := runEngine(eng, ckt)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, eng, err)
			}
			fmt.Printf("%-6s %-12s %10.1f %+7.1f%% %10.3f %9.2f %6d %7.3f\n",
				name, eng, row.delay, (row.delay-lb)/lb*100, row.area, row.wireMm, row.viol, row.cpu)
		}
	}
	fmt.Println("\nviol counts delay bounds violated after channel routing. The generated")
	fmt.Println("benchmarks include bounds below the per-net feasibility floor (even")
	fmt.Println("minimal-length trees violate them); the steiner engine provably reaches")
	fmt.Println("that floor, so every meetable bound is met.")
	return nil
}

type engineRow struct {
	delay  float64
	area   float64
	wireMm float64
	viol   int
	cpu    float64
}

func runEngine(name string, ckt *circuit.Circuit) (engineRow, error) {
	start := time.Now()
	res, err := engine.Route(context.Background(), name, ckt, engine.Config{UseConstraints: true})
	if err != nil {
		return engineRow{}, err
	}
	cpu := time.Since(start).Seconds()
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		return engineRow{}, err
	}
	delay, viol, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		return engineRow{}, err
	}
	return engineRow{
		delay:  delay,
		area:   cr.AreaMm2,
		wireMm: cr.TotalLenUm / 1000,
		viol:   viol,
		cpu:    cpu,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-ablate:", err)
	os.Exit(1)
}
