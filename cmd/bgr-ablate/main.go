// Command bgr-ablate runs the DESIGN.md §5 ablations on one data set and
// prints a comparison table: how each design choice of the router moves
// delay, area and run time.
//
// Usage:
//
//	bgr-ablate -dataset C1P1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chanroute"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/seqroute"
)

type variant struct {
	name string
	note string
	cfg  core.Config
}

func main() {
	dataset := flag.String("dataset", "C1P1", "data set to ablate on")
	flag.Parse()

	p, err := gen.Dataset(*dataset)
	if err != nil {
		fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		fatal(err)
	}
	_, lb, err := lowerbound.Delay(ckt)
	if err != nil {
		fatal(err)
	}

	variants := []variant{
		{"paper", "full algorithm (reference)", core.Config{}},
		{"A1-areaFirst", "density criteria before Gl/LD everywhere", core.Config{AreaFirst: true}},
		{"A2-noCache", "d'(e) recomputed for every edge (exact, slower)", core.Config{NoTentativeCache: true}},
		{"A3-anyOrder", "feedthroughs assigned in index order", core.Config{ArbitraryNetOrder: true}},
		{"A4-elmore", "Elmore RC delay model", core.Config{DelayModel: core.Elmore, RPerUm: 0.0005}},
		{"A5-noImprove", "initial routing only", core.Config{SkipImprovement: true}},
		{"A6-noFeedMove", "no feed re-assignment in rip-up", core.Config{NoFeedReroute: true}},
		{"unconstrained", "the paper's baseline", core.Config{}},
	}

	fmt.Printf("ablations on %s (lower bound %.1f ps)\n\n", *dataset, lb)
	fmt.Printf("%-14s %10s %8s %10s %8s %7s  %s\n",
		"variant", "delay(ps)", "vs LB", "area(mm2)", "viol", "cpu(s)", "note")
	for _, v := range variants {
		cfg := v.cfg
		cfg.UseConstraints = v.name != "unconstrained"
		run, err := experiment.RunCircuit(ckt, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", v.name, err))
		}
		fmt.Printf("%-14s %10.1f %+7.1f%% %10.3f %8d %7.3f  %s\n",
			v.name, run.DelayPs, (run.DelayPs-lb)/lb*100, run.AreaMm2, run.Violations, run.CPUSec, v.note)
	}

	// The sequential net-at-a-time baseline (the router class the paper
	// argues against) for comparison.
	start := time.Now()
	seq, err := seqroute.Route(ckt, seqroute.Config{UseConstraints: true})
	if err != nil {
		fatal(err)
	}
	cr, err := chanroute.Route(seq.Ckt, seq.Graphs)
	if err != nil {
		fatal(err)
	}
	delay, viol, err := experiment.FinalDelay(seq.Ckt, cr.NetLenUm)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %10.1f %+7.1f%% %10.3f %8d %7.3f  %s\n",
		"seq-baseline", delay, (delay-lb)/lb*100, cr.AreaMm2, viol,
		time.Since(start).Seconds(), "net-at-a-time router (refs [6-8])")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgr-ablate:", err)
	os.Exit(1)
}
