// Command bgr-vet runs the repo-specific determinism-and-invariant static
// analysis suite (internal/lint) over the given package patterns and
// exits non-zero when any diagnostic — including a stale //bgr:allow
// suppression — survives.
//
// Usage:
//
//	go run ./cmd/bgr-vet ./...
//	go run ./cmd/bgr-vet -json ./internal/core
//	go run ./cmd/bgr-vet -list
//
// See docs/LINT.md for the analyzers and the suppression directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgr-vet [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.DeterministicOnly {
				scope = "deterministic packages"
			}
			fmt.Printf("%-10s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bgr-vet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bgr-vet: %d package(s) clean\n", len(pkgs))
}
