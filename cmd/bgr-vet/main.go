// Command bgr-vet runs the repo-specific determinism-and-invariant static
// analysis suite (internal/lint) over the given package patterns and
// exits non-zero when any diagnostic — including a stale //bgr:allow
// suppression or a stale hotalloc allowlist entry — survives. Exit
// status 1 means diagnostics; exit status 2 means the run itself failed
// (load error, escape-analysis build failure, unparsable compiler dump,
// missing allowlist) and must never be read as a pass.
//
// Usage:
//
//	go run ./cmd/bgr-vet ./...
//	go run ./cmd/bgr-vet -json ./internal/core
//	go run ./cmd/bgr-vet -suggest-allow ./...
//	go run ./cmd/bgr-vet -list
//
// See docs/LINT.md for the analyzers, the suppression directive and the
// hotalloc allowlist workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	hotalloc := flag.Bool("hotalloc", true, "run the compiler-escape-analysis hotalloc gate")
	allow := flag.String("allow", "", "hotalloc allowlist file (default: <dir>/internal/lint/hotalloc_allow.txt when present)")
	suggest := flag.Bool("suggest-allow", false, "print the hotalloc allowlist the current tree would need, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgr-vet [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.DeterministicOnly {
				scope = "deterministic packages"
			}
			if a.RunAll != nil {
				scope = "whole module"
			}
			fmt.Printf("%-14s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return
	}
	if !*hotalloc {
		kept := analyzers[:0]
		for _, a := range analyzers {
			if a.Name != "hotalloc" {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	ctx := &lint.Context{Dir: *dir}
	switch {
	case *allow != "":
		// Explicit allowlist: if it does not exist, loadAllowlist fails
		// the run (exit 2) rather than silently vetting without it.
		ctx.Allowlist = *allow
	default:
		def := filepath.Join(*dir, "internal", "lint", "hotalloc_allow.txt")
		if _, err := os.Stat(def); err == nil {
			ctx.Allowlist = def
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
		os.Exit(2)
	}

	if *suggest {
		lines, err := lint.SuggestAllowlist(ctx, pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
			os.Exit(2)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		return
	}

	diags, err := lint.Run(ctx, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
		os.Exit(2)
	}
	if abs, aerr := filepath.Abs(*dir); aerr == nil {
		lint.Relativize(diags, abs)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "bgr-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bgr-vet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bgr-vet: %d package(s) clean\n", len(pkgs))
}
