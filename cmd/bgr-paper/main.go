// Command bgr-paper reproduces the paper's evaluation: it generates the
// five data sets (Table 1), routes each with and without constraints
// (Table 2), compares against the half-perimeter lower bound (Table 3),
// and prints the headline statistics next to the paper's own numbers.
//
// Usage:
//
//	bgr-paper            # all tables
//	bgr-paper -table 2   # one table
//	bgr-paper -elmore    # whole evaluation under the RC extension
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print only table 1, 2 or 3 (default: everything)")
		elmore   = flag.Bool("elmore", false, "run the whole evaluation under the Elmore RC extension")
		rPerUm   = flag.Float64("r", 0.0005, "wire resistance for -elmore, kΩ/µm")
		csvOut   = flag.String("csv", "", "also write machine-readable results to this file")
		md       = flag.Bool("md", false, "print the tables as markdown (the EXPERIMENTS.md content)")
		scaling  = flag.Bool("scaling", false, "print a runtime-scaling table instead of the paper tables")
		baseline = flag.Bool("baseline", false, "append a sequential net-at-a-time baseline block")
		robust   = flag.Int("robust", 0, "evaluate N fresh generator seeds and print the robustness statistics")
	)
	flag.Parse()

	if *robust > 0 {
		for _, style := range []gen.PlacementStyle{gen.P1, gen.P2} {
			st, err := experiment.Robustness(*robust, style)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			fmt.Printf("[%v placements] ", style)
			fmt.Print(experiment.RobustnessText(st))
		}
		return
	}
	if *scaling {
		points, err := experiment.Scaling()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		fmt.Print(experiment.ScalingText(points))
		return
	}

	cfg := core.Config{}
	if *elmore {
		cfg.DelayModel = core.Elmore
		cfg.RPerUm = *rPerUm
	}
	rows, err := experiment.RunAll(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgr-paper:", err)
		os.Exit(1)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		if err := experiment.WriteCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *md {
		fmt.Print(report.Markdown(rows))
		return
	}
	switch *table {
	case 1:
		fmt.Print(report.Table1(rows))
	case 2:
		fmt.Print(report.Table2(rows))
	case 3:
		fmt.Print(report.Table3(rows))
	default:
		fmt.Print(report.Table1(rows))
		fmt.Println()
		fmt.Print(report.Table2(rows))
		fmt.Println()
		fmt.Print(report.Table3(rows))
		fmt.Println()
		fmt.Print(report.HeadlineText(experiment.Summarize(rows), len(rows)))
	}
	if *baseline {
		fmt.Println()
		fmt.Println("-- Sequential net-at-a-time baseline (refs [6-8]) --")
		fmt.Printf("%-6s %10s %10s %10s %9s\n", "Data", "Delay(ps)", "Area(mm2)", "Len(mm)", "CPU(s)")
		for _, name := range gen.DatasetNames() {
			p, err := gen.Dataset(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			ckt, err := gen.Generate(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			run, err := experiment.RunBaseline(ckt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %10.1f %10.3f %10.2f %9.3f\n",
				name, run.DelayPs, run.AreaMm2, run.LengthMm, run.CPUSec)
		}
	}
}
