// Command bgr-paper reproduces the paper's evaluation: it generates the
// five data sets (Table 1), routes each with and without constraints
// (Table 2), compares against the half-perimeter lower bound (Table 3),
// and prints the headline statistics next to the paper's own numbers.
//
// Usage:
//
//	bgr-paper            # all tables
//	bgr-paper -table 2   # one table
//	bgr-paper -elmore    # whole evaluation under the RC extension
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/report"

	// The -bench per-engine smoke rows cover every registered engine.
	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print only table 1, 2 or 3 (default: everything)")
		elmore   = flag.Bool("elmore", false, "run the whole evaluation under the Elmore RC extension")
		rPerUm   = flag.Float64("r", 0.0005, "wire resistance for -elmore, kΩ/µm")
		csvOut   = flag.String("csv", "", "also write machine-readable results to this file")
		md       = flag.Bool("md", false, "print the tables as markdown (the EXPERIMENTS.md content)")
		scaling  = flag.Bool("scaling", false, "print a runtime-scaling table instead of the paper tables")
		baseline = flag.Bool("baseline", false, "append a sequential net-at-a-time baseline block")
		robust   = flag.Int("robust", 0, "evaluate N fresh generator seeds and print the robustness statistics")
		benchOut = flag.String("bench", "", "measure per-dataset routing wall-clock and write a BENCH_route.json document to this file")
		repeats  = flag.Int("repeats", 5, "repetitions per dataset/mode for -bench (best time is reported)")
	)
	flag.Parse()

	if *benchOut != "" {
		if err := writeBench(*benchOut, *repeats); err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		return
	}

	if *robust > 0 {
		for _, style := range []gen.PlacementStyle{gen.P1, gen.P2} {
			st, err := experiment.Robustness(*robust, style)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			fmt.Printf("[%v placements] ", style)
			fmt.Print(experiment.RobustnessText(st))
		}
		return
	}
	if *scaling {
		points, err := experiment.Scaling()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		fmt.Print(experiment.ScalingText(points))
		return
	}

	cfg := core.Config{}
	if *elmore {
		cfg.DelayModel = core.Elmore
		cfg.RPerUm = *rPerUm
	}
	rows, err := experiment.RunAll(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgr-paper:", err)
		os.Exit(1)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		if err := experiment.WriteCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "bgr-paper:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *md {
		fmt.Print(report.Markdown(rows))
		return
	}
	switch *table {
	case 1:
		fmt.Print(report.Table1(rows))
	case 2:
		fmt.Print(report.Table2(rows))
	case 3:
		fmt.Print(report.Table3(rows))
	default:
		fmt.Print(report.Table1(rows))
		fmt.Println()
		fmt.Print(report.Table2(rows))
		fmt.Println()
		fmt.Print(report.Table3(rows))
		fmt.Println()
		fmt.Print(report.HeadlineText(experiment.Summarize(rows), len(rows)))
	}
	if *baseline {
		fmt.Println()
		fmt.Println("-- Sequential net-at-a-time baseline (refs [6-8]) --")
		fmt.Printf("%-6s %10s %10s %10s %9s\n", "Data", "Delay(ps)", "Area(mm2)", "Len(mm)", "CPU(s)")
		for _, name := range gen.DatasetNames() {
			p, err := gen.Dataset(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			ckt, err := gen.Generate(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			run, err := experiment.RunBaseline(ckt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bgr-paper:", err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %10.1f %10.3f %10.2f %9.3f\n",
				name, run.DelayPs, run.AreaMm2, run.LengthMm, run.CPUSec)
		}
	}
}

// benchBaselineMs is the pre-optimization wall-clock of the full routing
// pipeline (route + channel route + final delay) per dataset and mode,
// milliseconds, measured with BenchmarkTable2 on the sequential scanner
// before the incremental selection engine landed. Kept as the fixed
// reference that BENCH_route.json speedups are computed against.
var benchBaselineMs = map[string]float64{
	"C1P1/constrained": 13.5, "C1P1/unconstrained": 9.2,
	"C1P2/constrained": 16.3, "C1P2/unconstrained": 10.2,
	"C2P1/constrained": 38.1, "C2P1/unconstrained": 25.5,
	"C2P2/constrained": 39.9, "C2P2/unconstrained": 24.0,
	"C3P1/constrained": 90.2, "C3P1/unconstrained": 62.5,
}

// benchEntry is one BENCH_route.json row.
type benchEntry struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	// Engine names the routing engine for the per-engine smoke rows;
	// empty on the historical rows (the concurrent pipeline), so the
	// pre-engine document trajectory is unchanged.
	Engine     string  `json:"engine,omitempty"`
	BaselineMs float64 `json:"baseline_ms"`
	CurrentMs  float64 `json:"current_ms"`
	Speedup    float64 `json:"speedup"`
	// AllocsPerOp is the smallest heap-allocation count of one full
	// pipeline run across the repeats (runtime.MemStats.Mallocs delta);
	// the minimum, like the best time, excludes one-time warm-up noise.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// PeakHeapBytes is the largest HeapAlloc observed right after any of
	// the repeats — the live-heap footprint of routing the dataset.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// benchDoc is the BENCH_route.json document.
type benchDoc struct {
	Description string       `json:"description"`
	Repeats     int          `json:"repeats"`
	Entries     []benchEntry `json:"entries"`
}

// writeBench times experiment.RunCircuit (the whole pipeline, like
// BenchmarkTable2) on every dataset and mode, keeping the best of
// `repeats` runs, and writes the comparison against benchBaselineMs.
func writeBench(path string, repeats int) error {
	if repeats < 1 {
		repeats = 1
	}
	doc := benchDoc{
		Description: "routing wall-clock per dataset/mode, best of N; baseline_ms is the pre-selection-engine sequential scanner",
		Repeats:     repeats,
	}
	for _, name := range gen.DatasetNames() {
		p, err := gen.Dataset(name)
		if err != nil {
			return err
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			return err
		}
		for _, mode := range []struct {
			tag string
			use bool
		}{{"constrained", true}, {"unconstrained", false}} {
			best, allocs, peak, err := benchOne(ckt, core.Config{UseConstraints: mode.use}, repeats)
			if err != nil {
				return fmt.Errorf("%s %s: %w", name, mode.tag, err)
			}
			e := benchEntry{
				Name:          name,
				Mode:          mode.tag,
				BaselineMs:    benchBaselineMs[name+"/"+mode.tag],
				CurrentMs:     float64(best) / float64(time.Millisecond),
				AllocsPerOp:   allocs,
				PeakHeapBytes: peak,
			}
			if e.BaselineMs > 0 && e.CurrentMs > 0 {
				e.Speedup = e.BaselineMs / e.CurrentMs
			}
			doc.Entries = append(doc.Entries, e)
			fmt.Printf("bench %-6s %-14s %8.2f ms (baseline %6.1f ms, %.2fx)  %8d allocs/op  heap %5.1f MB\n",
				e.Name, e.Mode, e.CurrentMs, e.BaselineMs, e.Speedup, e.AllocsPerOp,
				float64(e.PeakHeapBytes)/(1<<20))
		}
		// Per-engine smoke rows: the same constrained pipeline through
		// every registered engine. Appended after the historical rows so
		// existing consumers of the document see an unchanged prefix; the
		// concurrent engine's row duplicates the constrained row above by
		// construction, which makes engine overhead directly readable.
		for _, engName := range engine.Names() {
			best, allocs, peak, err := benchEngine(ckt, engName, repeats)
			if err != nil {
				return fmt.Errorf("%s engine %s: %w", name, engName, err)
			}
			e := benchEntry{
				Name:          name,
				Mode:          "constrained",
				Engine:        engName,
				BaselineMs:    benchBaselineMs[name+"/constrained"],
				CurrentMs:     float64(best) / float64(time.Millisecond),
				AllocsPerOp:   allocs,
				PeakHeapBytes: peak,
			}
			if e.BaselineMs > 0 && e.CurrentMs > 0 {
				e.Speedup = e.BaselineMs / e.CurrentMs
			}
			doc.Entries = append(doc.Entries, e)
			fmt.Printf("bench %-6s engine=%-11s %8.2f ms (baseline %6.1f ms, %.2fx)  %8d allocs/op  heap %5.1f MB\n",
				e.Name, e.Engine, e.CurrentMs, e.BaselineMs, e.Speedup, e.AllocsPerOp,
				float64(e.PeakHeapBytes)/(1<<20))
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func benchOne(ckt *circuit.Circuit, cfg core.Config, repeats int) (best time.Duration, allocs, peak uint64, err error) {
	return benchLoop(repeats, func() error {
		_, err := experiment.RunCircuit(ckt, cfg)
		return err
	})
}

// benchEngine times the same full pipeline (route + channel route +
// final delay) going through a named registered engine.
func benchEngine(ckt *circuit.Circuit, engName string, repeats int) (best time.Duration, allocs, peak uint64, err error) {
	return benchLoop(repeats, func() error {
		res, err := engine.Route(context.Background(), engName, ckt, engine.Config{UseConstraints: true})
		if err != nil {
			return err
		}
		cr, err := chanroute.Route(res.Ckt, res.Graphs)
		if err != nil {
			return err
		}
		_, _, err = experiment.FinalDelay(res.Ckt, cr.NetLenUm)
		return err
	})
}

func benchLoop(repeats int, run func() error) (best time.Duration, allocs, peak uint64, err error) {
	var ms runtime.MemStats
	for i := 0; i < repeats; i++ {
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		start := time.Now()
		if err := run(); err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(start)
		runtime.ReadMemStats(&ms)
		if a := ms.Mallocs - m0; i == 0 || a < allocs {
			allocs = a
		}
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, allocs, peak, nil
}
