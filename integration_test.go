// Integration tests: the full pipeline on the paper's data sets and on
// randomized circuits, with the structural verifier as the oracle.
package repro_test

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/verify"
)

// TestDatasetsEndToEnd routes every paper data set in both modes, audits
// the result, and checks the reproduction's shape claims.
func TestDatasetsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset sweep in -short mode")
	}
	rows, err := experiment.RunAll(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 data sets, got %d", len(rows))
	}
	for _, row := range rows {
		con, unc := row.DiffPct()
		if con < 0 || unc < 0 {
			t.Errorf("%s: routed delay below lower bound (con %+.1f%%, unc %+.1f%%)", row.Name, con, unc)
		}
		if row.Con.DelayPs > row.Unc.DelayPs+1e-6 {
			t.Errorf("%s: constrained %0.1f ps slower than unconstrained %0.1f ps",
				row.Name, row.Con.DelayPs, row.Unc.DelayPs)
		}
		// Area "almost unchanged": within 10% between modes.
		rel := (row.Con.AreaMm2 - row.Unc.AreaMm2) / row.Unc.AreaMm2
		if rel > 0.10 || rel < -0.10 {
			t.Errorf("%s: area changed %+.1f%% between modes", row.Name, rel*100)
		}
	}
	h := experiment.Summarize(rows)
	if h.AvgReductionOfLB < 5 {
		t.Errorf("average delay reduction %.1f%% of LB — expected a double-digit-ish paper shape", h.AvgReductionOfLB)
	}
	// P2 routes worse than P1 on the same circuit (the feed-spacing
	// argument): compare the C1 pair.
	byName := map[string]*experiment.Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["C1P2"].Unc.DelayPs < byName["C1P1"].Unc.DelayPs {
		t.Error("P2 unconstrained routed better than P1; feed spacing effect lost")
	}
}

// TestDatasetsVerify audits the router's output structurally for each
// data set and mode.
func TestDatasetsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset sweep in -short mode")
	}
	for _, name := range gen.DatasetNames() {
		p, err := gen.Dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, use := range []bool{true, false} {
			res, err := core.Route(ckt, core.Config{UseConstraints: use})
			if err != nil {
				t.Fatalf("%s constraints=%v: %v", name, use, err)
			}
			if v := verify.Routing(res); !v.OK() {
				t.Errorf("%s constraints=%v: %d problems, first: %v",
					name, use, len(v.Problems), v.Problems[0])
			}
			if _, err := chanroute.Route(res.Ckt, res.Graphs); err != nil {
				t.Errorf("%s constraints=%v channel routing: %v", name, use, err)
			}
		}
	}
}

// TestRandomCircuitsPipeline generates small random circuits and pushes
// them through the whole pipeline; the verifier and channel router must
// accept every one.
func TestRandomCircuitsPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{
			Name: "rand", Seed: seed,
			Cells: 30 + rng.Intn(60), Rows: 2 + rng.Intn(4),
			SeqFrac: 0.1 + rng.Float64()*0.3, AvgFanout: 1.5,
			Locality: 8 + rng.Intn(20), PIs: 2 + rng.Intn(6), POs: 2 + rng.Intn(6),
			DiffPairs: rng.Intn(3), WideClock: rng.Intn(2) == 0,
			FeedFrac: 0.05 + rng.Float64()*0.3, Constraints: 1 + rng.Intn(5),
			LimitFactor: 1.05 + rng.Float64()*0.5,
		}
		if rng.Intn(2) == 0 {
			p.Style = gen.P2
		}
		ckt, err := gen.Generate(p)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		res, err := core.Route(ckt, core.Config{UseConstraints: true})
		if err != nil {
			t.Logf("seed %d: route: %v", seed, err)
			return false
		}
		if v := verify.Routing(res); !v.OK() {
			t.Logf("seed %d: verify: %v", seed, v.Problems[0])
			return false
		}
		cr, err := chanroute.Route(res.Ckt, res.Graphs)
		if err != nil {
			t.Logf("seed %d: chanroute: %v", seed, err)
			return false
		}
		delay, _, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
		if err != nil || delay <= 0 {
			t.Logf("seed %d: final delay %v err %v", seed, delay, err)
			return false
		}
		return true
	}
	n := 25
	if testing.Short() {
		n = 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedCircuitRoundTrip: generated circuits survive the text
// format (Format -> Parse -> Format is a fixed point).
func TestGeneratedCircuitRoundTrip(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := circuit.Format(&a, ckt); err != nil {
		t.Fatal(err)
	}
	parsed, err := circuit.Parse(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := circuit.Format(&b, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("format/parse/format not a fixed point on a generated circuit")
	}
	// And the parsed circuit routes identically.
	r1, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Route(parsed, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delay != r2.Delay || r1.TotalWirelenUm != r2.TotalWirelenUm {
		t.Fatalf("parsed circuit routes differently: (%v,%v) vs (%v,%v)",
			r1.Delay, r1.TotalWirelenUm, r2.Delay, r2.TotalWirelenUm)
	}
}

// TestStressScale routes a circuit well beyond the paper's sizes and
// audits it — the scalability check.
func TestStressScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress circuit in -short mode")
	}
	ckt, err := gen.Generate(gen.StressParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(res); !v.OK() {
		t.Fatalf("stress routing failed verification: %v", v.Problems[0])
	}
	if _, err := chanroute.Route(res.Ckt, res.Graphs); err != nil {
		t.Fatal(err)
	}
	t.Logf("stress: %d nets, delay %.1f ps, %d tracks, +%d columns",
		len(res.Graphs), res.Delay, res.Dens.TotalTracks(), res.AddedPitches)
}

// TestDatapathPipeline routes a bit-sliced datapath circuit end to end:
// the §4.2/§4.3 stress pattern (vertical control broadcasts, wide clock,
// scarce feeds) must route, verify and channel-route cleanly.
func TestDatapathPipeline(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "dp", Seed: 404, Cells: 160, Rows: 8,
		FeedFrac: 0.15, WideClock: true, Constraints: 6, LimitFactor: 1.2,
		Datapath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, use := range []bool{true, false} {
		res, err := core.Route(ckt, core.Config{UseConstraints: use})
		if err != nil {
			t.Fatalf("constraints=%v: %v", use, err)
		}
		if v := verify.Routing(res); !v.OK() {
			t.Fatalf("constraints=%v: %v", use, v.Problems[0])
		}
		if _, err := chanroute.Route(res.Ckt, res.Graphs); err != nil {
			t.Fatalf("constraints=%v: %v", use, err)
		}
	}
}

// TestMultiSinkConstraintsPipeline routes a circuit whose constraints have
// sink sets (the paper's T_P), both modes, with verification.
func TestMultiSinkConstraintsPipeline(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	p.MultiSink = true
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(res); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Channels(cr); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
}

// TestElmoreDatasetVerifies routes C1P1 under the RC extension and audits
// the result — the §2.1 claim exercised at data-set scale.
func TestElmoreDatasetVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset run in -short mode")
	}
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true, DelayModel: core.Elmore, RPerUm: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(res); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
	if res.Delay <= 0 {
		t.Fatal("no delay under Elmore")
	}
}

// TestShippedCircuitFile parses the hand-written example circuit and runs
// it through the whole flow — the file-based interop path of bgr-route.
func TestShippedCircuitFile(t *testing.T) {
	f, err := os.Open("examples/data/invchain.ckt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ckt, err := circuit.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if ckt.Name != "invchain" || len(ckt.Nets) != 5 {
		t.Fatalf("unexpected content: %s, %d nets", ckt.Name, len(ckt.Nets))
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(res); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	delay, viol, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("invchain violates its constraint: %.1f ps vs 700 ps limit", delay)
	}
}

// TestRobustnessShape pins the seed-robustness claims recorded in
// EXPERIMENTS.md (smaller sample to keep test time sane).
func TestRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness sweep in -short mode")
	}
	st, err := experiment.Robustness(12, gen.P2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NeverWorse != st.Seeds {
		t.Errorf("P2: constrained lost on %d/%d seeds", st.Seeds-st.NeverWorse, st.Seeds)
	}
	if st.MeanPct < 8 {
		t.Errorf("P2 mean reduction %.1f%% of LB — expected double digits", st.MeanPct)
	}
	if st.MinPct < 0 {
		t.Errorf("P2 min reduction %.1f%% negative", st.MinPct)
	}
}
