// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus the DESIGN.md ablations (A1-A6) and microbenches
// of the router's hot kernels. Quality numbers (delay, area) are attached
// to the benchmark output via ReportMetric so `go test -bench` prints the
// tables' content, not just speed.
package repro_test

import (
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/experiment"
	"repro/internal/feed"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/lowerbound"
	"repro/internal/report"
	"repro/internal/rgraph"
	"repro/internal/seqroute"
)

func mustDataset(b *testing.B, name string) *circuit.Circuit {
	b.Helper()
	p, err := gen.Dataset(name)
	if err != nil {
		b.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return ckt
}

// BenchmarkTable1 regenerates the test-circuit data (Table 1): synthesis
// of all five data sets.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range gen.DatasetNames() {
			p, err := gen.Dataset(name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gen.Generate(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2 regenerates the routing results (Table 2): each data
// set routed with and without constraints, through channel routing.
func BenchmarkTable2(b *testing.B) {
	for _, name := range gen.DatasetNames() {
		ckt := mustDataset(b, name)
		for _, mode := range []struct {
			tag string
			use bool
		}{{"constrained", true}, {"unconstrained", false}} {
			b.Run(name+"/"+mode.tag, func(b *testing.B) {
				var last experiment.Run
				for i := 0; i < b.N; i++ {
					run, err := experiment.RunCircuit(ckt, core.Config{UseConstraints: mode.use})
					if err != nil {
						b.Fatal(err)
					}
					last = run
				}
				b.ReportMetric(last.DelayPs, "delay_ps")
				b.ReportMetric(last.AreaMm2*1000, "area_um2e3")
				b.ReportMetric(last.LengthMm, "len_mm")
			})
		}
	}
}

// BenchmarkTable3 regenerates the lower-bound comparison (Table 3).
func BenchmarkTable3(b *testing.B) {
	for _, name := range gen.DatasetNames() {
		ckt := mustDataset(b, name)
		b.Run(name, func(b *testing.B) {
			var lb float64
			for i := 0; i < b.N; i++ {
				var err error
				if _, lb, err = lowerbound.Delay(ckt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lb, "lower_ps")
		})
	}
}

// BenchmarkHeadline runs the entire evaluation and reports the paper's
// headline statistic (average delay reduction as % of the lower bound;
// paper: 17.6%).
func BenchmarkHeadline(b *testing.B) {
	var h experiment.Headline
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAll(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		h = experiment.Summarize(rows)
	}
	b.ReportMetric(h.AvgReductionOfLB, "avg_reduction_pct")
	b.ReportMetric(h.AvgConDiffFromLB, "con_vs_lb_pct")
	b.ReportMetric(h.AvgUncDiffFromLB, "unc_vs_lb_pct")
}

// BenchmarkFigure1 renders the delay-model figure (Fig. 1).
func BenchmarkFigure1(b *testing.B) {
	ckt := circuit.SampleSmall()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig1DelayGraph(ckt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 exercises the algorithm-outline trace (Fig. 2): a full
// route with phase tracing enabled.
func BenchmarkFigure2(b *testing.B) {
	ckt := circuit.SampleSmall()
	for i := 0; i < b.N; i++ {
		res, err := core.Route(ckt, core.Config{UseConstraints: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Phases) < 4 {
			b.Fatal("missing phases")
		}
	}
}

// BenchmarkFigure3 renders a routing-graph dump (Fig. 3).
func BenchmarkFigure3(b *testing.B) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Fig3RoutingGraph(res.Ckt, res.Graphs[1])
	}
}

// BenchmarkFigure4 renders the density chart (Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		b.Fatal(err)
	}
	ch, _ := res.Dens.MaxCM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Fig4DensityChart(res.Dens, ch)
	}
}

// ablationRun routes C1P1 constrained with the given config and reports
// delay/area so configurations can be compared.
func ablationRun(b *testing.B, cfg core.Config) {
	ckt := mustDataset(b, "C1P1")
	cfg.UseConstraints = true
	b.ResetTimer()
	var last experiment.Run
	for i := 0; i < b.N; i++ {
		run, err := experiment.RunCircuit(ckt, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = run
	}
	b.ReportMetric(last.DelayPs, "delay_ps")
	b.ReportMetric(last.AreaMm2*1000, "area_um2e3")
}

// BenchmarkAblationCriteriaOrder (A1): density criteria promoted over
// Gl/LD in every phase, not only the area phase.
func BenchmarkAblationCriteriaOrder(b *testing.B) {
	b.Run("paper", func(b *testing.B) { ablationRun(b, core.Config{}) })
	b.Run("areaFirst", func(b *testing.B) { ablationRun(b, core.Config{AreaFirst: true}) })
}

// BenchmarkAblationTentativeCache (A2): d'(e) shortcut for non-tree edges
// disabled. Results must match; only time changes.
func BenchmarkAblationTentativeCache(b *testing.B) {
	b.Run("cached", func(b *testing.B) { ablationRun(b, core.Config{}) })
	b.Run("recompute", func(b *testing.B) { ablationRun(b, core.Config{NoTentativeCache: true}) })
}

// BenchmarkAblationNetOrder (A3): slack-ordered feedthrough assignment vs
// the alternative orderings.
func BenchmarkAblationNetOrder(b *testing.B) {
	b.Run("slack", func(b *testing.B) { ablationRun(b, core.Config{Order: core.OrderSlack}) })
	b.Run("index", func(b *testing.B) { ablationRun(b, core.Config{Order: core.OrderIndex}) })
	b.Run("hpwl", func(b *testing.B) { ablationRun(b, core.Config{Order: core.OrderHPWL}) })
	b.Run("fanout", func(b *testing.B) { ablationRun(b, core.Config{Order: core.OrderFanout}) })
}

// BenchmarkAblationRCModel (A4): lumped capacitance vs the Elmore RC
// extension.
func BenchmarkAblationRCModel(b *testing.B) {
	b.Run("lumped", func(b *testing.B) { ablationRun(b, core.Config{}) })
	b.Run("elmore", func(b *testing.B) {
		ablationRun(b, core.Config{DelayModel: core.Elmore, RPerUm: 0.0005})
	})
}

// BenchmarkAblationPhases (A5): initial routing only vs the full three
// improvement phases.
func BenchmarkAblationPhases(b *testing.B) {
	b.Run("all", func(b *testing.B) { ablationRun(b, core.Config{}) })
	b.Run("initialOnly", func(b *testing.B) { ablationRun(b, core.Config{SkipImprovement: true}) })
}

// BenchmarkAblationFeedReroute (A6): feedthrough re-assignment during
// rip-up and reroute disabled.
func BenchmarkAblationFeedReroute(b *testing.B) {
	b.Run("withRealloc", func(b *testing.B) { ablationRun(b, core.Config{}) })
	b.Run("without", func(b *testing.B) { ablationRun(b, core.Config{NoFeedReroute: true}) })
}

// --- Microbenches of the router's hot kernels ---

func benchGraph(b *testing.B) (*circuit.Circuit, *rgraph.Graph) {
	b.Helper()
	ckt := circuit.SampleSmall()
	fr, err := feed.Assign(ckt, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := rgraph.Build(fr.Ckt, fr.Geo, 1, fr.Feeds[1])
	if err != nil {
		b.Fatal(err)
	}
	return fr.Ckt, g
}

func BenchmarkDijkstraTentative(b *testing.B) {
	_, g := benchGraph(b)
	tr, err := g.Tentative() // warm: the loop reuses this tree's storage
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr, err = g.TentativeInto(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBridgeRecompute(b *testing.B) {
	_, g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RecomputeBridges()
	}
}

func BenchmarkSTA(b *testing.B) {
	ckt := mustDataset(b, "C1P1")
	dg, err := dgraph.New(ckt)
	if err != nil {
		b.Fatal(err)
	}
	tm := dg.NewTiming()
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 300
	}
	tm.SetLumped(wl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Analyze()
	}
}

// BenchmarkTimingFlush measures the incremental timing engine on C3P1: a
// sparse net perturbation followed by a dirty-set Flush, sequential and
// parallel, against the old per-constraint full-topo walk over the same
// dirty set (ReferenceWorst is that walk, kept as the equivalence oracle).
func BenchmarkTimingFlush(b *testing.B) {
	ckt := mustDataset(b, "C3P1")
	dg, err := dgraph.New(ckt)
	if err != nil {
		b.Fatal(err)
	}
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 300
	}
	// The perturbed nets: a deterministic sparse sample, the shape of one
	// rip-up-and-reroute step (a net and its differential mate).
	nets := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		nets = append(nets, (i*131)%len(ckt.Nets))
	}
	run := func(b *testing.B, workers int) {
		tm := dg.NewTiming()
		tm.Workers = workers
		tm.SetLumped(wl)
		tm.Flush()
		// Warm one perturb+flush so lazily-sized scratch (and, for the
		// parallel path, the shared worker pool) exists before measuring.
		for _, n := range nets {
			tm.SetNetLumped(n, 300)
		}
		tm.Flush()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range nets {
				tm.SetNetLumped(n, 300+float64(i%7))
			}
			tm.Flush()
		}
	}
	b.Run("flush/seq", func(b *testing.B) { run(b, 1) })
	b.Run("flush/par", func(b *testing.B) { run(b, 0) })
	b.Run("fullwalk", func(b *testing.B) {
		tm := dg.NewTiming()
		tm.SetLumped(wl)
		tm.Flush()
		seen := make([]bool, len(tm.Cons))
		touched := make([]int, 0, len(tm.Cons))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Replicates the pre-subgraph refreshTrees: dedupe the
			// affected constraints, then run the graph-sized topo walk
			// (what analyzeOne used to be) for each.
			touched = touched[:0]
			for _, n := range nets {
				tm.SetNetLumped(n, 300+float64(i%7))
				for _, p := range dg.ConsOfNet(n) {
					if !seen[p] {
						seen[p] = true
						touched = append(touched, p)
					}
				}
			}
			var sink float64
			for _, p := range touched {
				sink += tm.ReferenceWorst(p) // the old graph-sized topo walk
				seen[p] = false
			}
			_ = sink
		}
	})
}

func BenchmarkDensityUpdate(b *testing.B) {
	s := density.New(8, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := i % 8
		s.Add(ch, 10, 200, 1)
		s.AddBridge(ch, 50, 120, 1)
		_ = s.Channel(ch)
		s.RemoveBridge(ch, 50, 120, 1)
		s.Remove(ch, 10, 200, 1)
	}
}

func BenchmarkFeedAssign(b *testing.B) {
	ckt := mustDataset(b, "C1P1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feed.Assign(ckt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelRoute(b *testing.B) {
	res, err := core.Route(mustDataset(b, "C1P1"), core.Config{UseConstraints: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chanroute.Route(res.Ckt, res.Graphs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeometryBuild(b *testing.B) {
	ckt := mustDataset(b, "C2P1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.New(ckt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineSequential compares the paper's concurrent edge
// deletion against the net-at-a-time sequential baseline (the router
// class the paper argues against).
func BenchmarkBaselineSequential(b *testing.B) {
	ckt := mustDataset(b, "C1P1")
	b.Run("concurrent", func(b *testing.B) {
		var last experiment.Run
		for i := 0; i < b.N; i++ {
			run, err := experiment.RunCircuit(ckt, core.Config{UseConstraints: true})
			if err != nil {
				b.Fatal(err)
			}
			last = run
		}
		b.ReportMetric(last.DelayPs, "delay_ps")
		b.ReportMetric(float64(last.Tracks), "tracks")
	})
	b.Run("sequential", func(b *testing.B) {
		var delay float64
		var res *seqroute.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = seqroute.Route(ckt, seqroute.Config{UseConstraints: true})
			if err != nil {
				b.Fatal(err)
			}
			cr, err := chanroute.Route(res.Ckt, res.Graphs)
			if err != nil {
				b.Fatal(err)
			}
			if delay, _, err = experiment.FinalDelay(res.Ckt, cr.NetLenUm); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(delay, "delay_ps")
		b.ReportMetric(float64(res.Dens.TotalTracks()), "tracks")
	})
}

// BenchmarkChannelAlgorithms compares the two channel routers' track
// usage and speed on the same global routing.
func BenchmarkChannelAlgorithms(b *testing.B) {
	res, err := core.Route(mustDataset(b, "C1P1"), core.Config{UseConstraints: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []struct {
		name string
		a    chanroute.Algorithm
	}{{"leftEdge", chanroute.LeftEdge}, {"greedy", chanroute.Greedy}} {
		b.Run(algo.name, func(b *testing.B) {
			var cr *chanroute.Result
			for i := 0; i < b.N; i++ {
				var err error
				cr, err = chanroute.RouteWith(res.Ckt, res.Graphs, algo.a)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cr.HeightUm, "height_um")
			b.ReportMetric(cr.AreaMm2*1000, "area_um2e3")
		})
	}
}

// BenchmarkStressScale routes the ~2000-cell stress circuit end to end.
func BenchmarkStressScale(b *testing.B) {
	ckt, err := gen.Generate(gen.StressParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCircuit(ckt, core.Config{UseConstraints: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIteratedECO measures a second improvement round via
// core.ReOptimize on top of a finished routing (diminishing returns by
// design: Route's own phases already converge).
func BenchmarkIteratedECO(b *testing.B) {
	prev, err := core.Route(mustDataset(b, "C1P2"), core.Config{UseConstraints: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var delay float64
	for i := 0; i < b.N; i++ {
		eco, err := core.ReOptimize(prev, core.Config{UseConstraints: true})
		if err != nil {
			b.Fatal(err)
		}
		delay = eco.Delay
	}
	b.ReportMetric(prev.Delay, "before_ps")
	b.ReportMetric(delay, "after_ps")
}

// BenchmarkSelectEdge measures one full §3.4 candidate-selection sweep on
// a probe router: cold (every net rescored, sequential vs parallel pool)
// and warm (every score served from the incremental per-net cache).
func BenchmarkSelectEdge(b *testing.B) {
	for _, name := range []string{"C1P1", "C3P1"} {
		ckt := mustDataset(b, name)
		for _, pool := range []struct {
			tag     string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(name+"/cold/"+pool.tag, func(b *testing.B) {
				p, err := core.NewProbe(ckt, core.Config{UseConstraints: true, Workers: pool.workers})
				if err != nil {
					b.Fatal(err)
				}
				// Warm one cold sweep: the per-net criteria caches are
				// lazily sized on first touch, and measuring that one-time
				// growth would misreport the steady state.
				p.InvalidateAll()
				p.SelectEdge(false)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.InvalidateAll()
					if _, _, ok := p.SelectEdge(false); !ok {
						b.Fatal("no candidate")
					}
				}
			})
		}
		b.Run(name+"/warm", func(b *testing.B) {
			p, err := core.NewProbe(ckt, core.Config{UseConstraints: true, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			p.SelectEdge(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := p.SelectEdge(false); !ok {
					b.Fatal("no candidate")
				}
			}
		})
	}
}

// BenchmarkSelectRound measures one full sharded selection round — the
// per-shard top-k scans, the deterministic merge and the first verified
// commit pick — cold (every net rescored) against the single-shard
// sequential layout and the parallel sharded layout. Comparing against
// BenchmarkSelectEdge/cold isolates the cost of the round machinery on
// top of the plain argmin sweep.
func BenchmarkSelectRound(b *testing.B) {
	for _, name := range []string{"C1P1", "C3P1"} {
		ckt := mustDataset(b, name)
		for _, pool := range []struct {
			tag     string
			workers int
			shards  int
		}{{"seq", 1, 1}, {"sharded", 0, 0}} {
			b.Run(name+"/cold/"+pool.tag, func(b *testing.B) {
				p, err := core.NewProbe(ckt, core.Config{UseConstraints: true, Workers: pool.workers, Shards: pool.shards})
				if err != nil {
					b.Fatal(err)
				}
				p.InvalidateAll()
				p.SelectRound(false) // warm lazily-sized scratch before measuring
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.InvalidateAll()
					if _, _, ok := p.SelectRound(false); !ok {
						b.Fatal("no candidate")
					}
				}
			})
		}
	}
}

// BenchmarkDPrime measures the tentative-length d′ Dijkstra over every
// candidate edge of every net, with the d′ cache bypassed.
func BenchmarkDPrime(b *testing.B) {
	for _, name := range []string{"C1P1", "C3P1"} {
		ckt := mustDataset(b, name)
		b.Run(name, func(b *testing.B) {
			p, err := core.NewProbe(ckt, core.Config{UseConstraints: true})
			if err != nil {
				b.Fatal(err)
			}
			p.DPrimeSweep() // warm the lazily-sized d' cache arrays
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.DPrimeSweep()
			}
			_ = sink
		})
	}
}
