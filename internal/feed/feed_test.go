package feed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/rgraph"
)

// requiredRows lists the rows a net must cross.
func requiredRows(ckt *circuit.Circuit, net int) []int {
	minCh, maxCh, _ := channelSpan(ckt, net)
	var rows []int
	for r := minCh; r < maxCh; r++ {
		rows = append(rows, r)
	}
	return rows
}

func checkAssignment(t *testing.T, res *Result) {
	t.Helper()
	ckt := res.Ckt
	if err := ckt.Validate(); err != nil {
		t.Fatalf("assigned circuit invalid: %v", err)
	}
	// Every net covers exactly its required rows.
	taken := map[[2]int]int{}
	for n := range ckt.Nets {
		want := requiredRows(ckt, n)
		got := map[int]bool{}
		for _, f := range res.Feeds[n] {
			got[f.Row] = true
			w := ckt.Nets[n].Pitch
			for j := 0; j < w; j++ {
				key := [2]int{f.Row, f.Col + j}
				if prev, dup := taken[key]; dup {
					t.Fatalf("slot (%d,%d) booked by both %s and %s",
						f.Row, f.Col+j, ckt.Nets[prev].Name, ckt.Nets[n].Name)
				}
				taken[key] = n
			}
		}
		if len(got) != len(want) {
			t.Fatalf("net %s: feeds cover %d rows, want %d", ckt.Nets[n].Name, len(got), len(want))
		}
		for _, r := range want {
			if !got[r] {
				t.Fatalf("net %s: missing feedthrough in row %d", ckt.Nets[n].Name, r)
			}
		}
		// Every assigned column must be a real feed slot.
		for _, f := range res.Feeds[n] {
			found := false
			for _, s := range res.Geo.FeedSlots(f.Row) {
				if s.Col == f.Col {
					found = true
				}
			}
			if !found {
				t.Fatalf("net %s: feed (%d,%d) is not a slot", ckt.Nets[n].Name, f.Row, f.Col)
			}
		}
	}
	// The routing graphs must build from the assignment (integration).
	for n := range ckt.Nets {
		g, err := rgraph.Build(ckt, res.Geo, n, res.Feeds[n])
		if err != nil {
			t.Fatalf("rgraph for %s: %v", ckt.Nets[n].Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("rgraph for %s: %v", ckt.Nets[n].Name, err)
		}
	}
}

func TestAssignSampleSmallNeedsInsertion(t *testing.T) {
	// SampleSmall row 1 has a single feed slot but two nets (n4 and nq)
	// must cross row 1, so §4.3 insertion must kick in.
	ckt := circuit.SampleSmall()
	res, err := Assign(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedPitches < 1 {
		t.Fatalf("AddedPitches = %d, want >= 1 (row 1 is short one slot)", res.AddedPitches)
	}
	if res.Ckt.Cols != ckt.Cols+res.AddedPitches {
		t.Fatalf("chip width %d, want %d", res.Ckt.Cols, ckt.Cols+res.AddedPitches)
	}
	checkAssignment(t, res)
	// The original circuit must be untouched.
	if err := ckt.Validate(); err != nil || len(ckt.Cells) != 8 {
		t.Fatalf("input circuit mutated: %v cells=%d", err, len(ckt.Cells))
	}
}

func TestAssignNoShortageNoInsertion(t *testing.T) {
	// In SampleDiff only net nb (top pad PB to bottom pin b0.A) crosses
	// rows, and each row has a free slot, so no widening is needed.
	ckt := circuit.SampleDiff()
	res, err := Assign(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedPitches != 0 {
		t.Fatalf("AddedPitches = %d, want 0", res.AddedPitches)
	}
	for n := range ckt.Nets {
		want := len(requiredRows(ckt, n))
		if len(res.Feeds[n]) != want {
			t.Fatalf("net %s: %d feeds, want %d", ckt.Nets[n].Name, len(res.Feeds[n]), want)
		}
		if ckt.Nets[n].Name == "nb" && want != 2 {
			t.Fatalf("fixture drift: nb should cross rows 0 and 1, got %d", want)
		}
	}
	checkAssignment(t, res)
}

func TestAssignDiffPairAdjacent(t *testing.T) {
	// The pair crosses row 0, which has only one free slot, forcing a
	// 2-wide flagged group insertion.
	ckt := circuit.SampleDiffCross()
	if err := ckt.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	res, err := Assign(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, res)
	fq, fqb := res.Feeds[0], res.Feeds[1]
	if len(fq) != 1 || len(fqb) != 1 {
		t.Fatalf("pair feeds = %v / %v, want one row each", fq, fqb)
	}
	if fqb[0].Col != fq[0].Col+1 {
		t.Fatalf("pair slots not adjacent: q at %d, qb at %d", fq[0].Col, fqb[0].Col)
	}
	if res.AddedPitches < 2 {
		t.Fatalf("AddedPitches = %d, want >= 2 (2-wide group inserted)", res.AddedPitches)
	}
}

func TestAssignAlignsMultiRowNets(t *testing.T) {
	// Give row 1 plenty of slots so alignment is achievable, then check
	// that a net crossing rows 0 and 1 uses nearby columns.
	ckt := circuit.SampleSmall()
	res, err := Assign(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Net n4 (i1.Z ch2 -> d0.D ch0) crosses rows 1 and 0.
	feeds := res.Feeds[4]
	if len(feeds) != 2 {
		t.Fatalf("n4 feeds = %v, want 2 rows", feeds)
	}
	cols := map[int]int{}
	for _, f := range feeds {
		cols[f.Row] = f.Col
	}
	d := cols[0] - cols[1]
	if d < 0 {
		d = -d
	}
	// Alignment is best effort; with the widened row the columns must be
	// within a few pitches of each other.
	if d > 8 {
		t.Fatalf("n4 feed columns %v spread too far (alignment ignored?)", cols)
	}
}

// contestCircuit has two nets that both want the feed slot at column 2 of
// its single row; the only alternative sits far away at column 18.
func contestCircuit() *circuit.Circuit {
	c := &circuit.Circuit{Name: "contest", Tech: circuit.DefaultTech, Rows: 1, Cols: 20}
	c.Lib = []circuit.CellType{
		{Name: "TIN", Width: 2, Pins: []circuit.PinDef{
			{Name: "A", Dir: circuit.In, Side: circuit.Top, Offsets: []int{0}, Fin: 10},
		}},
		{Name: "FEED", Width: 1, Feed: true},
	}
	c.Cells = []circuit.Cell{
		{Name: "t1", Type: 0, Row: 0, Col: 0},
		{Name: "t2", Type: 0, Row: 0, Col: 4},
		{Name: "f1", Type: 1, Row: 0, Col: 2},
		{Name: "f2", Type: 1, Row: 0, Col: 18},
	}
	c.Nets = []circuit.Net{
		{Name: "nA", Pitch: 1, DiffMate: circuit.NoNet, Pins: []circuit.PinRef{{Cell: 0, Pin: 0}}},
		{Name: "nB", Pitch: 1, DiffMate: circuit.NoNet, Pins: []circuit.PinRef{{Cell: 1, Pin: 0}}},
	}
	c.Ext = []circuit.ExtPin{
		{Name: "EA", Net: 0, Side: circuit.Bottom, Cols: []int{0}, Dir: circuit.In, Tf: 0.2, Td: 0.2},
		{Name: "EB", Net: 1, Side: circuit.Bottom, Cols: []int{4}, Dir: circuit.In, Tf: 0.2, Td: 0.2},
	}
	return c
}

func TestAssignRespectsOrder(t *testing.T) {
	ckt := contestCircuit()
	if err := ckt.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	resA, err := Assign(ckt, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Assign(ckt, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if resA.AddedPitches != 0 || resB.AddedPitches != 0 {
		t.Fatal("contest fixture should not need insertion")
	}
	if got := resA.Feeds[0][0].Col; got != 2 {
		t.Fatalf("order [nA,nB]: nA at col %d, want the near slot 2", got)
	}
	if got := resB.Feeds[1][0].Col; got != 2 {
		t.Fatalf("order [nB,nA]: nB at col %d, want the near slot 2", got)
	}
	if got := resB.Feeds[0][0].Col; got != 18 {
		t.Fatalf("order [nB,nA]: nA at col %d, want the far slot 18", got)
	}
}

func TestAssignQuickRandomOrders(t *testing.T) {
	base := circuit.SampleSmall()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(len(base.Nets))
		res, err := Assign(base, order)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Re-run the structural checks cheaply: slots unique, rows covered.
		taken := map[[2]int]bool{}
		for n := range res.Ckt.Nets {
			want := requiredRows(res.Ckt, n)
			if len(res.Feeds[n]) != len(want) {
				return false
			}
			for _, fp := range res.Feeds[n] {
				if taken[[2]int{fp.Row, fp.Col}] {
					return false
				}
				taken[[2]int{fp.Row, fp.Col}] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteOrder(t *testing.T) {
	ckt := circuit.SampleSmall()
	got := completeOrder(ckt, []int{3, 3, 99, -1, 0})
	if got[0] != 3 || got[1] != 0 {
		t.Fatalf("completeOrder prefix = %v", got[:2])
	}
	if len(got) != len(ckt.Nets) {
		t.Fatalf("completeOrder length %d, want %d", len(got), len(ckt.Nets))
	}
	seen := map[int]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate net %d in order", n)
		}
		seen[n] = true
	}
}

// TestAssignIdempotentAfterWidening: once §4.3 insertion has widened the
// chip, re-assigning on the widened circuit needs no further insertion.
func TestAssignIdempotentAfterWidening(t *testing.T) {
	ckt := circuit.SampleSmall()
	first, err := Assign(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.AddedPitches == 0 {
		t.Fatal("fixture should require insertion")
	}
	second, err := Assign(first.Ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.AddedPitches != 0 {
		t.Fatalf("re-assignment on the widened chip inserted %d more columns", second.AddedPitches)
	}
}
