// Package feed implements the feedthrough and external-terminal assignment
// stage of Harada & Kitazawa §3.1 and the feed-cell insertion of §4.3.
//
// For every net that crosses cell rows, one feedthrough position per
// crossed row is assigned, searching outward from the center of the net's
// terminal x coordinates and keeping multi-row assignments column-aligned
// when possible. Nets are processed in the caller-supplied order (the
// router orders by ascending static slack). Differential pairs are treated
// as 2-pitch nets and receive adjacent slots; w-pitch nets receive w
// adjacent slots.
//
// If any net cannot be assigned, feed cells are inserted: the shortfall
// F(w,r) is counted per row and width, previously assigned w-pitch slots
// are width-flagged, all assignments are canceled, F(w,r) groups of w feed
// cells plus enough single feed cells to widen every row by the common
// total F are inserted almost evenly, and the assignment is repeated with
// width flags enforced — which is guaranteed to succeed.
package feed

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

// Result is a completed feedthrough assignment.
type Result struct {
	// Ckt is the circuit the assignment refers to; when feed cells had to
	// be inserted it is a widened copy of the input.
	Ckt *circuit.Circuit
	// Geo is the geometry of Ckt with width flags as used by the final
	// assignment pass.
	Geo *grid.Geometry
	// Feeds[n] lists net n's assigned feedthroughs (leftmost column for
	// multi-pitch nets), one per crossed row.
	Feeds [][]rgraph.FeedPos
	// AddedPitches is the paper's F: the number of columns every row was
	// widened by (0 when the first pass succeeded).
	AddedPitches int
}

// Assign runs the full assignment, inserting feed cells when needed. order
// lists net indices in processing order (ascending static slack per the
// paper); nets absent from order are processed last in index order.
//
// The paper's single re-assignment is guaranteed by its counting argument;
// because our even-spacing insertion can in rare cases split a reserved
// adjacent group, the insert-and-retry step is allowed to repeat a bounded
// number of times, each round widening the chip further.
func Assign(ckt *circuit.Circuit, order []int) (*Result, error) {
	full := completeOrder(ckt, order)
	cur := ckt
	geo, err := grid.New(cur)
	if err != nil {
		return nil, err
	}
	respect := false
	added := 0
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		p := newPass(cur, geo, respect)
		p.run(full)
		if len(p.shortfall) == 0 {
			return &Result{Ckt: cur, Geo: geo, Feeds: p.feeds, AddedPitches: added}, nil
		}
		var insErr error
		cur, geo, insErr = insertForShortfall(cur, geo, p, &added)
		if insErr != nil {
			return nil, insErr
		}
		respect = true
	}
	return nil, fmt.Errorf("feed: assignment did not converge after %d insertion rounds", maxRounds)
}

// insertForShortfall performs the §4.3 widening for one failed pass:
// counts F(w,r), inserts flagged feed-cell groups, and re-creates flags
// (both for the inserted groups and for the original slots that carried
// wide nets in the failed pass).
func insertForShortfall(ckt *circuit.Circuit, geo *grid.Geometry, p *pass, added *int) (*circuit.Circuit, *grid.Geometry, error) {
	maxRowNeed := 0 // F = max_r F(r), F(r) = Σ_w w·F(w,r)
	rowNeed := make([]int, ckt.Rows)
	for _, s := range p.shortfall {
		rowNeed[s.row] += s.width * s.count
	}
	for _, need := range rowNeed {
		if need > maxRowNeed {
			maxRowNeed = need
		}
	}
	var groups []grid.FeedGroupSpec
	groupFlags := make([][]int, ckt.Rows) // row -> flag per requested group, in order
	for r := 0; r < ckt.Rows; r++ {
		var widths []int
		for _, s := range p.shortfall {
			if s.row == r && s.width >= 2 {
				for i := 0; i < s.count; i++ {
					widths = append(widths, s.width)
				}
			}
		}
		sort.Ints(widths)
		for _, w := range widths {
			groups = append(groups, grid.FeedGroupSpec{Row: r, Width: w})
			groupFlags[r] = append(groupFlags[r], w)
		}
		singles := p.shortfallAt(r, 1) + maxRowNeed - rowNeed[r]
		for i := 0; i < singles; i++ {
			groups = append(groups, grid.FeedGroupSpec{Row: r, Width: 1})
			groupFlags[r] = append(groupFlags[r], 1)
		}
	}
	// Carry the current flags across the widening: remember them per feed
	// cell (cell indices survive the clone).
	type flagMemo struct{ row, cell, offset, flag int }
	var memo []flagMemo
	for r := 0; r < ckt.Rows; r++ {
		for _, s := range geo.FeedSlots(r) {
			if s.Flag != 0 {
				memo = append(memo, flagMemo{r, s.Cell, s.Col - ckt.Cells[s.Cell].Col, s.Flag})
			}
		}
	}
	wideCkt, insertedCols, err := grid.InsertFeedCells(ckt, groups)
	if err != nil {
		return nil, nil, fmt.Errorf("feed: inserting cells: %w", err)
	}
	wideGeo, err := grid.New(wideCkt)
	if err != nil {
		return nil, nil, err
	}
	colOfCell := func(row, cell, offset int) int {
		for _, slot := range wideGeo.FeedSlots(row) {
			if slot.Cell == cell && slot.Col-wideCkt.Cells[cell].Col == offset {
				return slot.Col
			}
		}
		return -1
	}
	for _, m := range memo {
		if col := colOfCell(m.row, m.cell, m.offset); col < 0 || !wideGeo.SetFlag(m.row, col, m.flag) {
			return nil, nil, fmt.Errorf("feed: lost flag on cell %d after widening", m.cell)
		}
	}
	for r, flags := range groupFlags {
		for gi, flag := range flags {
			at := insertedCols[r][gi]
			width := flag
			if width < 1 {
				width = 1
			}
			for j := 0; j < width; j++ {
				if !wideGeo.SetFlag(r, at+j, flag) {
					return nil, nil, fmt.Errorf("feed: inserted slot (%d,%d) missing", r, at+j)
				}
			}
		}
	}
	for _, res := range p.reserved {
		if col := colOfCell(res.row, res.cell, res.offset); col < 0 || !wideGeo.SetFlag(res.row, col, res.flag) {
			return nil, nil, fmt.Errorf("feed: reserved slot for cell %d not found after widening", res.cell)
		}
	}
	*added += maxRowNeed
	return wideCkt, wideGeo, nil
}

func completeOrder(ckt *circuit.Circuit, order []int) []int {
	seen := make([]bool, len(ckt.Nets))
	out := make([]int, 0, len(ckt.Nets))
	for _, n := range order {
		if n >= 0 && n < len(ckt.Nets) && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for n := range ckt.Nets {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

type shortKey struct{ row, width int }

// shortfallCount is one F(w,r) counter. The counters live in a slice (in
// first-shortfall order) rather than a map so every sweep over them is
// deterministic; the handful of distinct (row,width) keys makes the
// linear scans cheap.
type shortfallCount struct {
	shortKey
	count int
}

type reservation struct {
	row, cell, offset, flag int
}

type pass struct {
	ckt          *circuit.Circuit
	geo          *grid.Geometry
	respectFlags bool

	occupied  []bool // (row*cols + col) slot taken; row-major flat grid
	cols      int
	feeds     [][]rgraph.FeedPos
	shortfall []shortfallCount
	reserved  []reservation
	done      []bool
}

// addShortfall counts one unassignable width-w feedthrough in row r.
func (p *pass) addShortfall(row, width int) {
	for i := range p.shortfall {
		if p.shortfall[i].row == row && p.shortfall[i].width == width {
			p.shortfall[i].count++
			return
		}
	}
	p.shortfall = append(p.shortfall, shortfallCount{shortKey{row: row, width: width}, 1})
}

// shortfallAt returns F(width,row), zero when the pass never fell short.
func (p *pass) shortfallAt(row, width int) int {
	for _, s := range p.shortfall {
		if s.row == row && s.width == width {
			return s.count
		}
	}
	return 0
}

func newPass(ckt *circuit.Circuit, geo *grid.Geometry, respectFlags bool) *pass {
	return &pass{
		ckt: ckt, geo: geo, respectFlags: respectFlags,
		occupied: make([]bool, ckt.Rows*ckt.Cols),
		cols:     ckt.Cols,
		feeds:    make([][]rgraph.FeedPos, len(ckt.Nets)),
		done:     make([]bool, len(ckt.Nets)),
	}
}

func (p *pass) run(order []int) {
	for _, n := range order {
		if p.done[n] {
			continue
		}
		mate := p.ckt.Nets[n].DiffMate
		if mate != circuit.NoNet {
			p.assignPair(n, mate)
			p.done[n], p.done[mate] = true, true
			continue
		}
		p.assignNet(n, p.ckt.Nets[n].Pitch)
		p.done[n] = true
	}
}

// channelSpan returns the lowest and highest channel the net's terminals
// touch, and the mean terminal column (the §3.1 search center).
func channelSpan(ckt *circuit.Circuit, net int) (minCh, maxCh int, center int) {
	minCh, maxCh = math.MaxInt32, -1
	sum, cnt := 0, 0
	for _, t := range ckt.Terminals(net) {
		for _, pos := range ckt.PositionsOf(t) {
			if pos.Channel < minCh {
				minCh = pos.Channel
			}
			if pos.Channel > maxCh {
				maxCh = pos.Channel
			}
			sum += pos.Col
			cnt++
		}
	}
	if cnt > 0 {
		center = sum / cnt
	}
	return minCh, maxCh, center
}

// findGroup locates the free compatible group of `width` adjacent slots in
// a row whose center is nearest to target. It returns the leftmost column,
// or -1 when none exists.
func (p *pass) findGroup(row, width, target, flagWidth int) int {
	occ := func(row, col int) bool { return p.occupied[row*p.cols+col] }
	return FindGroup(p.geo, occ, row, width, target, flagWidth, p.respectFlags)
}

// FindGroup locates the group of `width` adjacent free feed slots in a row
// whose center is nearest to target, honoring §4.3 width flags when
// respectFlags is set. occupied reports taken slots. It returns the
// leftmost column, or -1 when no group exists. Exported for the router's
// rip-up-and-reroute feed re-assignment.
func FindGroup(geo *grid.Geometry, occupied func(row, col int) bool, row, width, target, flagWidth int, respectFlags bool) int {
	slots := geo.FeedSlots(row)
	bestCol, bestDist := -1, math.MaxInt32
	centerOff := (width - 1) / 2
	for i := 0; i+width <= len(slots); i++ {
		// Slots ascend by column, so window centers only move right; once
		// a center sits bestDist or more past the target nothing later can
		// beat the strict < below, and the right tail need not be scanned.
		if bestCol >= 0 && slots[i].Col+centerOff-target >= bestDist {
			break
		}
		ok := true
		for j := 0; j < width; j++ {
			s := slots[i+j]
			if s.Col != slots[i].Col+j || occupied(row, s.Col) {
				ok = false
				break
			}
			if respectFlags && !flagCompatible(s.Flag, flagWidth) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		centerCol := slots[i].Col + (width-1)/2
		dist := centerCol - target
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestDist, bestCol = dist, slots[i].Col
		}
	}
	return bestCol
}

// ChannelSpan reports the channel extent of a net's terminals and the mean
// terminal column (the §3.1 search center). Exported for reroute-time feed
// re-assignment.
func ChannelSpan(ckt *circuit.Circuit, net int) (minCh, maxCh, center int) {
	return channelSpan(ckt, net)
}

// flagCompatible implements the §4.3 width-flag rule of the second pass:
// single-pitch nets use unflagged or 1-flagged slots; w-pitch nets (and
// differential pairs, which count as width 2) use only w-flagged slots.
func flagCompatible(flag, width int) bool {
	if width <= 1 {
		return flag <= 1
	}
	return flag == width
}

func (p *pass) take(row, col, width, flagWidth int, net int) {
	for j := 0; j < width; j++ {
		p.occupied[row*p.cols+col+j] = true
	}
	if flagWidth >= 2 && !p.respectFlags {
		// Remember the slots for width-flagging if insertion is needed.
		for j := 0; j < width; j++ {
			for _, s := range p.geo.FeedSlots(row) {
				if s.Col == col+j {
					cellCol := p.ckt.Cells[s.Cell].Col
					p.reserved = append(p.reserved, reservation{row: row, cell: s.Cell, offset: s.Col - cellCol, flag: flagWidth})
					break
				}
			}
		}
	}
	_ = net
}

// assignNet handles a plain (possibly multi-pitch) net.
func (p *pass) assignNet(n, width int) {
	minCh, maxCh, center := channelSpan(p.ckt, n)
	target := center
	for r := minCh; r < maxCh; r++ {
		col := p.findGroup(r, width, target, width)
		if col < 0 {
			p.addShortfall(r, width)
			continue
		}
		p.take(r, col, width, width, n)
		p.feeds[n] = append(p.feeds[n], rgraph.FeedPos{Row: r, Col: col})
		target = col // keep subsequent rows aligned (§3.1)
	}
}

// assignPair handles a differential pair: both nets get adjacent columns in
// every crossed row (the pair behaves as a 2-pitch net, §4.1/§4.2).
func (p *pass) assignPair(a, b int) {
	shift := pairShift(p.ckt, a, b)
	left, right := a, b
	if shift < 0 {
		left, right = b, a
	}
	minCh, maxCh, center := channelSpan(p.ckt, a)
	target := center
	for r := minCh; r < maxCh; r++ {
		col := p.findGroup(r, 2, target, 2)
		if col < 0 {
			p.addShortfall(r, 2)
			continue
		}
		p.take(r, col, 2, 2, a)
		p.feeds[left] = append(p.feeds[left], rgraph.FeedPos{Row: r, Col: col})
		p.feeds[right] = append(p.feeds[right], rgraph.FeedPos{Row: r, Col: col + 1})
		target = col
	}
}

// pairShift returns the column shift from net a's terminals to net b's
// (validated constant by circuit.Validate).
func pairShift(ckt *circuit.Circuit, a, b int) int {
	ta, tb := ckt.Terminals(a), ckt.Terminals(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 1
	}
	pa, pb := ckt.PositionsOf(ta[0]), ckt.PositionsOf(tb[0])
	if len(pa) == 0 || len(pb) == 0 {
		return 1
	}
	return pb[0].Col - pa[0].Col
}
