package feed_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/feed"
)

// ExampleAssign books feedthroughs for the sample circuit; the fixture is
// deliberately one slot short in row 1, so §4.3 insertion widens the chip.
func ExampleAssign() {
	ckt := circuit.SampleSmall()
	res, err := feed.Assign(ckt, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("chip widened by %d columns\n", res.AddedPitches)
	fmt.Printf("net n1 feedthroughs: %v\n", res.Feeds[1])
	// Output:
	// chip widened by 2 columns
	// net n1 feedthroughs: [{0 11}]
}
