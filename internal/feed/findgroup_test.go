package feed

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/grid"
)

// slotRow builds a geometry with feed slots at the given columns of row 0.
func slotRow(t *testing.T, cols ...int) *grid.Geometry {
	t.Helper()
	maxCol := 0
	for _, c := range cols {
		if c > maxCol {
			maxCol = c
		}
	}
	ckt := &circuit.Circuit{
		Name: "slots", Tech: circuit.DefaultTech, Rows: 1, Cols: maxCol + 2,
		Lib: []circuit.CellType{{Name: "FEED", Width: 1, Feed: true}},
	}
	for i, c := range cols {
		ckt.Cells = append(ckt.Cells, circuit.Cell{Name: string(rune('a' + i)), Type: 0, Row: 0, Col: c})
	}
	geo, err := grid.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	return geo
}

func none(row, col int) bool { return false }

func TestFindGroupNearest(t *testing.T) {
	geo := slotRow(t, 2, 5, 9)
	if got := FindGroup(geo, none, 0, 1, 6, 1, false); got != 5 {
		t.Fatalf("nearest to 6 = %d, want 5", got)
	}
	if got := FindGroup(geo, none, 0, 1, 0, 1, false); got != 2 {
		t.Fatalf("nearest to 0 = %d, want 2", got)
	}
}

func TestFindGroupAdjacency(t *testing.T) {
	geo := slotRow(t, 2, 3, 7, 9, 10, 11)
	// Width 2: groups at (2,3), (9,10), (10,11).
	if got := FindGroup(geo, none, 0, 2, 0, 2, false); got != 2 {
		t.Fatalf("2-wide near 0 = %d, want 2", got)
	}
	if got := FindGroup(geo, none, 0, 2, 12, 2, false); got != 10 {
		t.Fatalf("2-wide near 12 = %d, want 10", got)
	}
	// Width 3: only (9,10,11).
	if got := FindGroup(geo, none, 0, 3, 0, 3, false); got != 9 {
		t.Fatalf("3-wide = %d, want 9", got)
	}
	// Width 4: none.
	if got := FindGroup(geo, none, 0, 4, 0, 4, false); got != -1 {
		t.Fatalf("4-wide = %d, want -1", got)
	}
}

func TestFindGroupOccupancy(t *testing.T) {
	geo := slotRow(t, 2, 5, 9)
	occ := func(row, col int) bool { return col == 5 }
	if got := FindGroup(geo, occ, 0, 1, 6, 1, false); got != 9 {
		t.Fatalf("with 5 taken, nearest to 6 = %d, want 9", got)
	}
}

func TestFindGroupFlags(t *testing.T) {
	geo := slotRow(t, 2, 5, 9, 10)
	geo.SetFlag(0, 5, 2)
	geo.SetFlag(0, 9, 2)
	geo.SetFlag(0, 10, 2)
	// With flags respected, a 1-pitch net may not use 2-flagged slots.
	if got := FindGroup(geo, none, 0, 1, 6, 1, true); got != 2 {
		t.Fatalf("1-pitch with flags = %d, want 2 (only unflagged slot)", got)
	}
	// A 2-pitch net must use a 2-flagged adjacent group.
	if got := FindGroup(geo, none, 0, 2, 0, 2, true); got != 9 {
		t.Fatalf("2-pitch with flags = %d, want 9", got)
	}
	// Ignoring flags, the 1-pitch net takes the nearest slot.
	if got := FindGroup(geo, none, 0, 1, 6, 1, false); got != 5 {
		t.Fatalf("1-pitch without flags = %d, want 5", got)
	}
}

func TestFlagCompatible(t *testing.T) {
	cases := []struct {
		flag, width int
		want        bool
	}{
		{0, 1, true}, {1, 1, true}, {2, 1, false}, {3, 1, false},
		{0, 2, false}, {1, 2, false}, {2, 2, true}, {3, 2, false},
		{3, 3, true},
	}
	for _, c := range cases {
		if got := flagCompatible(c.flag, c.width); got != c.want {
			t.Errorf("flagCompatible(%d,%d) = %v, want %v", c.flag, c.width, got, c.want)
		}
	}
}

func TestChannelSpanExported(t *testing.T) {
	ckt := circuit.SampleSmall()
	minCh, maxCh, center := ChannelSpan(ckt, 1) // net n1
	if minCh != 0 || maxCh != 1 {
		t.Fatalf("n1 channel span [%d,%d], want [0,1]", minCh, maxCh)
	}
	if center <= 0 || center >= ckt.Cols {
		t.Fatalf("center %d out of range", center)
	}
}
