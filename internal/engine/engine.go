// Package engine defines the seam between the routing service and the
// routing algorithms: a small Engine interface over the shared substrate
// (circuit, grid, feed, rgraph, density, dgraph), the shared Config and
// Result surface every engine speaks, and a process-wide registry.
//
// Three engines implement it:
//
//   - "concurrent" (internal/core): the paper's concurrent edge-deletion
//     router, the default. Highest quality; supports ECO re-optimization
//     and byte-identical results across worker counts.
//   - "sequential" (internal/seqroute): the net-at-a-time baseline the
//     paper argues against. Fast drafts, no global margin tracking.
//   - "steiner" (internal/steiner): timing-constrained cost-distance
//     Steiner trees per Held & Perner — per-net trees built under delay
//     bounds instead of deleted from redundant graphs. The middle of the
//     quality/runtime space.
//
// Engines register themselves in init(); importing an engine package is
// what makes it selectable. The registry is a slice, not a map, so
// listing order is deterministic (registration order, which Go fixes by
// import order).
package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// DefaultName is the engine used when a caller does not pick one: the
// paper's concurrent edge-deletion router.
const DefaultName = "concurrent"

// Capabilities declares what a registered engine supports, so callers
// (the service, conformance tests) can gate features without knowing
// engine internals.
type Capabilities struct {
	// Progress: the engine delivers Config.Progress snapshots mid-route.
	Progress bool
	// ECO: the engine supports incremental re-optimization of a finished
	// result (core.ReOptimize-style).
	ECO bool
	// Phases: the engine fills Result.Phases with per-phase statistics.
	Phases bool
	// Workers: the engine honors Config.Workers with intra-run
	// parallelism. Engines without it clamp to one worker (results are
	// byte-identical either way; this only tells callers whether extra
	// cores buy wall-clock).
	Workers bool
	// Sharded: the engine honors Config.Shards — its decision loop runs
	// the sharded round-scan protocol with byte-identical output for
	// every shard count.
	Sharded bool
}

// Engine is one global-routing algorithm behind the shared substrate.
// Implementations must be stateless values: Route may be called
// concurrently from many service workers.
type Engine interface {
	// Name is the registry key ("concurrent", "sequential", "steiner").
	Name() string
	// Capabilities reports what this engine supports.
	Capabilities() Capabilities
	// Route routes a validated circuit under cfg. The run aborts between
	// routing steps when ctx is cancelled. Results must be deterministic:
	// byte-identical routedb output for identical (circuit, cfg) inputs,
	// for every Workers value.
	Route(ctx context.Context, ckt *circuit.Circuit, cfg Config) (*Result, error)
}

// engines is the registry. A slice, not a map: iteration order is
// registration order and therefore deterministic.
var engines []Engine

// Register adds an engine to the registry. It panics on a duplicate or
// empty name — both are programmer errors at init time.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	for _, have := range engines {
		if have.Name() == name {
			panic("engine: duplicate Register of " + name)
		}
	}
	engines = append(engines, e)
}

// Get resolves an engine by name; the empty string resolves to
// DefaultName. The bool is false when no such engine is registered.
func Get(name string) (Engine, bool) {
	if name == "" {
		name = DefaultName
	}
	for _, e := range engines {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Names lists the registered engines, sorted.
func Names() []string {
	out := make([]string, len(engines))
	for i, e := range engines {
		out[i] = e.Name()
	}
	sort.Strings(out)
	return out
}

// Route resolves name and routes ckt with it — the one-call form used by
// commands. An unregistered name is an error listing what is available.
func Route(ctx context.Context, name string, ckt *circuit.Circuit, cfg Config) (*Result, error) {
	e, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %v)", name, Names())
	}
	return e.Route(ctx, ckt, cfg)
}
