package engine

import (
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

// DelayModel selects how net delays are derived from routed trees.
type DelayModel int

const (
	// Lumped is the paper's capacitance model: every sink of a net sees
	// (Σ Fin)·Tf + CL·Td with CL from the total tree length.
	Lumped DelayModel = iota
	// Elmore is the §2.1 RC extension: per-sink Elmore delays over the
	// tentative tree plus the lumped driver terms.
	Elmore
)

// OrderStrategy selects the net order for feedthrough assignment (§3.1).
type OrderStrategy int

const (
	// OrderSlack is the paper's ascending static slack.
	OrderSlack OrderStrategy = iota
	// OrderIndex takes nets in index order.
	OrderIndex
	// OrderHPWL assigns the longest half-perimeter nets first.
	OrderHPWL
	// OrderFanout assigns the highest-fanout nets first.
	OrderFanout
)

func (s OrderStrategy) String() string {
	switch s {
	case OrderSlack:
		return "slack"
	case OrderIndex:
		return "index"
	case OrderHPWL:
		return "hpwl"
	case OrderFanout:
		return "fanout"
	}
	return "?"
}

// Config is the shared engine configuration: the client-facing knobs the
// service and the commands expose per job. Every engine reads the subset
// it understands and ignores the rest (each field documents who honors
// it); engine-internal ablation switches stay in the engines' own config
// types (e.g. core.Config).
type Config struct {
	// UseConstraints enables the timing criteria (all engines). With it
	// false the run is the area-driven baseline; delays are still
	// reported.
	UseConstraints bool

	// DelayModel picks Lumped (default, the paper) or Elmore
	// (concurrent engine only; the others use the lumped model).
	DelayModel DelayModel
	// RPerUm is the wire resistance in kΩ/µm for the Elmore model.
	RPerUm float64

	// AreaFirst promotes the density criteria in every phase
	// (concurrent engine only; ablation A1).
	AreaFirst bool
	// SkipImprovement disables the improvement phases (concurrent:
	// Fig. 2 lines 08-10; steiner: the delay-refinement passes).
	SkipImprovement bool
	// MaxPasses bounds each improvement phase's sweeps. 0 means the
	// engine default (3 for concurrent, 8 refinement passes for
	// steiner).
	MaxPasses int

	// Order picks the feedthrough-assignment net ordering (concurrent
	// engine; the zero value is the paper's ascending static slack).
	Order OrderStrategy
	// NoFeedReroute disables feedthrough re-assignment during rip-up
	// (concurrent engine only; ablation A6).
	NoFeedReroute bool

	// Workers bounds intra-run parallelism (concurrent engine's
	// candidate re-scoring pool; 0 = one per CPU, 1 = sequential). The
	// routed result is byte-identical for every value on every engine —
	// sequential and steiner ignore it entirely.
	Workers int

	// Shards bounds the channel-band regions the concurrent engine's
	// initial-routing phase partitions nets into for its sharded round
	// scans (engines with the Sharded capability; 0 = size-based
	// default). The routed result is byte-identical for every value.
	Shards int

	// Alpha scales the congestion penalty of the per-net engines
	// (sequential, steiner); 0 means the engine default (0.35). The
	// concurrent engine ignores it.
	Alpha float64
	// TargetTracks is the per-channel density above which congestion
	// starts to cost for the per-net engines; 0 derives it from the
	// average demand.
	TargetTracks int

	// Trace, when non-nil, receives a phase-by-phase log.
	Trace io.Writer

	// Progress, when non-nil, receives Progress snapshots from engines
	// with the Progress capability. It is called synchronously from the
	// routing goroutine, so it must be fast and must not call back into
	// the engine.
	Progress func(Progress)
}

// Progress is a point-in-time snapshot of a running phase, delivered to
// Config.Progress. Counters are cumulative within the named phase.
type Progress struct {
	// Phase is the engine's phase name (the concurrent engine uses the
	// Fig. 2 names "initial", "recover-violations", "improve-delay",
	// "improve-area"; steiner uses "build" and "refine"; sequential
	// uses "route").
	Phase     string
	Deletions int
	Reroutes  int
	Accepted  int
	// Violations is the number of constraints currently violated.
	Violations int
	// Done marks the phase-completion event.
	Done bool
}

// PhaseStat records one routing phase for tracing and experiments.
type PhaseStat struct {
	Name      string
	Deletions int
	// ByKind counts deletions per edge kind, indexed by rgraph.EKind
	// (corr, branch, trunk, feed).
	ByKind   [4]int
	Reroutes int
	Accepted int
	Duration time.Duration
	// SelectDuration is the part of Duration spent inside selectEdge —
	// candidate scoring plus the cross-net argmin.
	SelectDuration time.Duration
	// SelectCalls counts selectEdge invocations in the phase.
	SelectCalls int
	// ScoredNets counts nets whose candidate ranking had to be recomputed
	// (cache miss); ReusedNets counts nets served from the per-net cache.
	// Their ratio is the effectiveness of the incremental engine.
	ScoredNets int
	ReusedNets int
	// TimingDuration is the part of Duration spent inside Timing.Flush —
	// the incremental re-analysis of constraints dirtied by rerouted nets.
	TimingDuration time.Duration
	// TimingFlushes counts Flush calls; TimingCons sums the constraints
	// each flush actually re-analyzed (the dirty-set sizes).
	TimingFlushes int
	TimingCons    int
}

// Result is a finished global routing, the shape every engine produces.
// Downstream consumers (chanroute, routedb, render, verify, the service
// payload builder) work on it without knowing which engine routed it.
type Result struct {
	// Engine names the engine that produced this result ("" from direct
	// calls into an algorithm package; always set via Engine.Route).
	Engine string
	// Ckt is the routed circuit; when feed cells were inserted it is a
	// widened copy of the input (AddedPitches > 0).
	Ckt *circuit.Circuit
	Geo *grid.Geometry
	// Feeds per net, as assigned.
	Feeds [][]rgraph.FeedPos
	// Graphs hold the final interconnection trees (IsTree() holds).
	Graphs []*rgraph.Graph
	// WirelenUm is the estimated routed length per net, µm.
	WirelenUm []float64
	// TotalWirelenUm sums WirelenUm.
	TotalWirelenUm float64
	// Timing is the final analysis (constraints evaluated even for
	// unconstrained runs).
	Timing *dgraph.Timing
	// Delay is the worst constrained-path delay, ps (0 if no constraints).
	Delay float64
	// Dens is the final channel-density state.
	Dens *density.State
	// AddedPitches is the §4.3 chip widening, columns.
	AddedPitches int
	// Phases traces the run (engines with the Phases capability).
	Phases []PhaseStat
	// Duration is the total wall-clock time of the run, including
	// feedthrough assignment and setup (not just the phase loop).
	Duration time.Duration
}

// Margin returns the final margin of constraint p.
func (res *Result) Margin(p int) float64 { return res.Timing.Cons[p].Margin }

// Violations counts constraints with negative margin.
func (res *Result) Violations() int {
	v := 0
	for p := range res.Timing.Cons {
		if res.Timing.Cons[p].Margin < 0 {
			v++
		}
	}
	return v
}
