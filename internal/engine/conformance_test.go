// Cross-engine conformance suite: every registered engine must produce a
// valid routing database, be byte-deterministic for every worker count,
// and (when it claims the Progress capability) report monotone progress
// ending in a Done event. New engines get this coverage by being blank-
// imported below — the tests iterate engine.Names().
package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/routedb"

	_ "repro/internal/core"
	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

func loadDataset(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	p, err := gen.Dataset(name)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// routeDB routes ckt with the named engine and renders the complete
// routing database — the strictest byte-level fingerprint of a run.
func routeDB(t *testing.T, name string, ckt *circuit.Circuit, cfg engine.Config) []byte {
	t.Helper()
	res, err := engine.Route(context.Background(), name, ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != name {
		t.Fatalf("Result.Engine = %q, want %q", res.Engine, name)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("routedb invalid: %v", err)
	}
	out, err := routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConformanceValidity routes every data set with every registered
// engine in both modes and requires a valid routing database each time.
func TestConformanceValidity(t *testing.T) {
	names := gen.DatasetNames()
	if testing.Short() {
		names = names[:1]
	}
	for _, ds := range names {
		ckt := loadDataset(t, ds)
		for _, eng := range engine.Names() {
			for _, use := range []bool{true, false} {
				t.Run(fmt.Sprintf("%s/%s/constraints=%v", ds, eng, use), func(t *testing.T) {
					routeDB(t, eng, ckt, engine.Config{UseConstraints: use})
				})
			}
		}
	}
}

// TestConformanceWorkerDeterminism requires byte-identical routing
// databases for every worker count, on every engine. Engines without
// internal parallelism must ignore Workers entirely; the concurrent
// engine's candidate scoring must not leak scheduling into the result.
func TestConformanceWorkerDeterminism(t *testing.T) {
	ckt := loadDataset(t, gen.DatasetNames()[0])
	for _, eng := range engine.Names() {
		t.Run(eng, func(t *testing.T) {
			var want []byte
			for _, w := range []int{1, 2, 4} {
				got := routeDB(t, eng, ckt, engine.Config{UseConstraints: true, Workers: w})
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d routed differently from workers=1 (%d vs %d bytes)",
						w, len(got), len(want))
				}
			}
		})
	}
}

// TestConformanceShardDeterminism requires byte-identical routing
// databases for every shard count, on every engine: engines with the
// Sharded capability must merge their per-shard candidate lists back to
// the sequential schedule, engines without it must ignore Shards
// entirely.
func TestConformanceShardDeterminism(t *testing.T) {
	ckt := loadDataset(t, gen.DatasetNames()[0])
	for _, eng := range engine.Names() {
		t.Run(eng, func(t *testing.T) {
			var want []byte
			for _, s := range []int{0, 1, 2, 4} {
				got := routeDB(t, eng, ckt, engine.Config{UseConstraints: true, Shards: s, Workers: 2})
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("shards=%d routed differently from shards=0 (%d vs %d bytes)",
						s, len(got), len(want))
				}
			}
		})
	}
}

// TestWorkerCapabilityTruth pins the Capabilities.Workers contract:
// engines claiming it must (per TestConformanceWorkerDeterminism) honor
// the knob without changing bytes; engines not claiming it must clamp —
// routing with workers=8 must byte-match workers=1, and the steiner
// engine (which is congestion-sequential by construction) must surface
// the clamp as a trace note rather than silently ignoring the request.
func TestWorkerCapabilityTruth(t *testing.T) {
	ckt := loadDataset(t, gen.DatasetNames()[0])
	for _, eng := range engine.Names() {
		e, ok := engine.Get(eng)
		if !ok {
			t.Fatalf("engine %q not registered", eng)
		}
		if e.Capabilities().Workers {
			continue
		}
		t.Run(eng, func(t *testing.T) {
			one := routeDB(t, eng, ckt, engine.Config{UseConstraints: true, Workers: 1})
			eight := routeDB(t, eng, ckt, engine.Config{UseConstraints: true, Workers: 8})
			if !bytes.Equal(one, eight) {
				t.Fatalf("engine without Workers capability routed differently at workers=8 (%d vs %d bytes)",
					len(eight), len(one))
			}
		})
	}

	t.Run("steiner-clamp-note", func(t *testing.T) {
		var trace bytes.Buffer
		cfg := engine.Config{UseConstraints: true, Workers: 8, Trace: &trace}
		if _, err := engine.Route(context.Background(), "steiner", ckt, cfg); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(trace.Bytes(), []byte("workers=8 clamped to 1")) {
			t.Fatalf("steiner trace missing the worker-clamp note:\n%s", trace.String())
		}
	})
}

// TestConformanceProgress checks the Progress contract on engines that
// claim the capability: at least one snapshot arrives, cumulative
// counters never decrease within a phase, and the final event has Done
// set.
func TestConformanceProgress(t *testing.T) {
	ckt := loadDataset(t, gen.DatasetNames()[0])
	for _, eng := range engine.Names() {
		e, ok := engine.Get(eng)
		if !ok {
			t.Fatalf("engine %q not registered", eng)
		}
		if !e.Capabilities().Progress {
			continue
		}
		t.Run(eng, func(t *testing.T) {
			var got []engine.Progress
			cfg := engine.Config{
				UseConstraints: true,
				Progress:       func(p engine.Progress) { got = append(got, p) },
			}
			if _, err := engine.Route(context.Background(), eng, ckt, cfg); err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Fatal("no progress snapshots delivered")
			}
			last := make(map[string]engine.Progress)
			for i, p := range got {
				if p.Phase == "" {
					t.Fatalf("snapshot %d has empty phase", i)
				}
				if prev, ok := last[p.Phase]; ok {
					if p.Deletions < prev.Deletions || p.Reroutes < prev.Reroutes || p.Accepted < prev.Accepted {
						t.Fatalf("snapshot %d: counters went backwards in phase %q: %+v after %+v",
							i, p.Phase, p, prev)
					}
				}
				last[p.Phase] = p
			}
			if !got[len(got)-1].Done {
				t.Fatalf("final snapshot not Done: %+v", got[len(got)-1])
			}
		})
	}
}
