package wire

import (
	"net"
	"time"
)

// Client speaks the wire protocol over one persistent connection.
// Methods are synchronous request/response; Send/Flush/Recv expose the
// frame layer directly for pipelining (responses arrive strictly in
// request order). A Client is not safe for concurrent use — open one
// connection per goroutine, they are cheap.
type Client struct {
	conn net.Conn
	r    *Reader
	w    *Writer
}

// Dial connects to a bgr-serve wire listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection. The reader accepts
// responses up to the 1 GiB sanity bound (results such as SVGs may far
// exceed the request cap); outgoing requests are bounded by the
// server's cap, which rejects rather than crashes.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: NewReader(conn, -1), w: NewWriter(conn, -1)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Send stages one request frame without flushing — the pipelining
// primitive. Pair with Flush and an equal number of Recv calls.
func (c *Client) Send(t byte, payload []byte) error { return c.w.WriteFrame(t, payload) }

// Flush pushes staged request frames to the server.
func (c *Client) Flush() error { return c.w.Flush() }

// Recv reads the next response frame. A TErr frame is returned as a
// *RemoteError (with a zero Frame), so callers can errors.As on it.
func (c *Client) Recv() (Frame, error) {
	f, err := c.r.ReadFrame()
	if err != nil {
		return Frame{}, err
	}
	if f.Type == TErr {
		return Frame{}, DecodeError(f.Payload)
	}
	return f, nil
}

// roundTrip is one synchronous request/response exchange.
func (c *Client) roundTrip(t byte, payload []byte, wantType byte) (Frame, error) {
	if err := c.Send(t, payload); err != nil {
		return Frame{}, err
	}
	if err := c.Flush(); err != nil {
		return Frame{}, err
	}
	f, err := c.Recv()
	if err != nil {
		return Frame{}, err
	}
	if f.Type != wantType {
		return Frame{}, &RemoteError{Code: CodeInternal,
			Msg: "unexpected response frame type " + CodeName(f.Type)}
	}
	return f, nil
}

// Submit submits a circuit. cfgJSON is the canonical config JSON (nil
// means the server default config); timeout tightens the per-job
// deadline (0 keeps the server default).
func (c *Client) Submit(circuit string, cfgJSON []byte, timeout time.Duration) (SubmitReply, error) {
	var ms uint32
	if timeout > 0 {
		ms = uint32(timeout / time.Millisecond)
	}
	f, err := c.roundTrip(TSubmit, EncodeSubmit(cfgJSON, ms, []byte(circuit)), TSubmitted)
	if err != nil {
		return SubmitReply{}, err
	}
	return DecodeSubmitted(f.Payload)
}

// SubmitEngine submits a circuit to be routed by a named engine. The
// empty engine means the server default and is sent as a plain v1
// TSubmit frame, so a new client keeps working against an old server
// until a non-default engine is actually requested.
func (c *Client) SubmitEngine(circuit string, cfgJSON []byte, engine string, timeout time.Duration) (SubmitReply, error) {
	if engine == "" {
		return c.Submit(circuit, cfgJSON, timeout)
	}
	var ms uint32
	if timeout > 0 {
		ms = uint32(timeout / time.Millisecond)
	}
	f, err := c.roundTrip(TSubmitV2, EncodeSubmitV2(cfgJSON, ms, engine, []byte(circuit)), TSubmitted)
	if err != nil {
		return SubmitReply{}, err
	}
	return DecodeSubmitted(f.Payload)
}

// Status fetches a job's status snapshot (the same JSON document as
// GET /jobs/{id}).
func (c *Client) Status(id string) ([]byte, error) {
	f, err := c.roundTrip(TStatus, []byte(id), TStatusOK)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Wait blocks until the job is terminal and returns its final status
// JSON. While waiting, later pipelined requests on this connection
// queue behind it (responses are FIFO).
func (c *Client) Wait(id string) ([]byte, error) {
	f, err := c.roundTrip(TWait, []byte(id), TStatusOK)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Result fetches one artifact of a done job: KindRouteDB, KindTiming,
// KindSVG or KindLayout.
func (c *Client) Result(id string, kind byte) ([]byte, error) {
	f, err := c.roundTrip(TResult, EncodeResultReq(kind, id), TResultOK)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Cancel aborts a queued or running job and returns its status JSON.
func (c *Client) Cancel(id string) ([]byte, error) {
	f, err := c.roundTrip(TCancel, []byte(id), TStatusOK)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Ping round-trips a heartbeat frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(TPing, []byte("ping"), TPong)
	return err
}
