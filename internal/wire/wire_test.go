package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	frames := []Frame{
		{TPing, []byte("hello")},
		{TSubmit, EncodeSubmit([]byte(`{"use_constraints":true}`), 1500, []byte("circuit text"))},
		{TStatus, []byte("j0001-deadbeef")},
		{TResultOK, bytes.Repeat([]byte{0xAB}, 4096)},
		{TPong, nil},
	}
	for _, f := range frames {
		if err := w.WriteFrame(f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, 0)
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got type 0x%02x len %d, want type 0x%02x len %d",
				i, got.Type, len(got.Payload), want.Type, len(want.Payload))
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReaderRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, -1)
	if err := w.WriteFrame(TPing, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewReader(&buf, 16)
	_, err := r.ReadFrame()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestWriterRejectsOversize(t *testing.T) {
	w := NewWriter(io.Discard, 16)
	if err := w.WriteFrame(TPing, make([]byte, 17)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if err := w.WriteFrame(TPing, make([]byte, 16)); err != nil {
		t.Fatalf("at-cap frame: %v", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteFrame(TStatus, []byte("some-job-id")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		r := NewReader(bytes.NewReader(whole[:cut]), 0)
		if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestSubmitPayloadRoundTrip(t *testing.T) {
	cases := []struct {
		cfg     []byte
		timeout uint32
		circuit []byte
	}{
		{nil, 0, nil},
		{[]byte(`{}`), 0, []byte("ckt")},
		{nil, 60000, []byte("a circuit\nwith lines\n")},
		{[]byte(`{"workers":4}`), 1, bytes.Repeat([]byte("x"), 10000)},
	}
	for i, c := range cases {
		cfg, ms, ckt, err := DecodeSubmit(EncodeSubmit(c.cfg, c.timeout, c.circuit))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(cfg, c.cfg) || ms != c.timeout || !bytes.Equal(ckt, c.circuit) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestDecodeSubmitMalformed(t *testing.T) {
	bad := [][]byte{
		{},
		{0},
		{0, 0, 0},
		{0xFF, 0xFF, 0xFF, 0xFF},        // config length way past payload
		{0, 0, 0, 2, 'x'},               // config truncated
		{0, 0, 0, 1, 'x', 0, 0},         // timeout truncated
		append([]byte{0, 0, 0, 5}, 'a'), // length exceeds remainder
	}
	for i, p := range bad {
		if _, _, _, err := DecodeSubmit(p); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d: got %v, want ErrBadFrame", i, err)
		}
	}
}

func TestSubmittedRoundTrip(t *testing.T) {
	for _, cached := range []bool{false, true} {
		for _, dedup := range []bool{false, true} {
			rep, err := DecodeSubmitted(EncodeSubmitted(cached, dedup, "j0042-cafebabe"))
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != "j0042-cafebabe" || rep.Cached != cached || rep.Dedup != dedup {
				t.Fatalf("round trip: %+v (cached=%v dedup=%v)", rep, cached, dedup)
			}
		}
	}
	if _, err := DecodeSubmitted(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty submitted: got %v, want ErrBadFrame", err)
	}
}

func TestResultReqRoundTrip(t *testing.T) {
	kind, id, err := DecodeResultReq(EncodeResultReq(KindSVG, "j0007-01234567"))
	if err != nil || kind != KindSVG || id != "j0007-01234567" {
		t.Fatalf("got kind=%c id=%q err=%v", kind, id, err)
	}
	if _, _, err := DecodeResultReq(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty result req: got %v, want ErrBadFrame", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	re := DecodeError(EncodeError(CodeQueueFull, "queue full"))
	if re.Code != CodeQueueFull || re.Msg != "queue full" {
		t.Fatalf("got %+v", re)
	}
	if re := DecodeError(nil); re.Code != CodeInternal {
		t.Fatalf("empty error frame: got %+v", re)
	}
}
