package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireFrame feeds arbitrary bytes through the frame decoder and the
// typed payload decoders. The decoder must never panic, every frame it
// does accept must respect the payload cap, and an oversize length
// prefix must always surface as ErrFrameTooLarge.
func FuzzWireFrame(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed, 0)
	w.WriteFrame(TPing, []byte("ping"))
	w.WriteFrame(TSubmit, EncodeSubmit([]byte(`{"use_constraints":true}`), 1000, []byte("ckt")))
	w.WriteFrame(TSubmitted, EncodeSubmitted(true, false, "j0001-aaaaaaaa"))
	w.WriteFrame(TErr, EncodeError(CodeNotFound, "unknown job"))
	w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{TSubmit, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{TStatus, 0, 0, 0, 0})

	const cap = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), cap)
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) {
					return // cannot resync past an oversize frame
				}
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				t.Fatalf("unexpected ReadFrame error class: %v", err)
			}
			if len(fr.Payload) > cap {
				t.Fatalf("accepted frame of %d bytes past cap %d", len(fr.Payload), cap)
			}
			// The typed decoders must tolerate any payload without
			// panicking, whatever the frame type claims.
			DecodeSubmit(fr.Payload)
			DecodeResultReq(fr.Payload)
			DecodeSubmitted(fr.Payload)
			DecodeError(fr.Payload)
		}
	})
}
