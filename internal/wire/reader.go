package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reader decodes frames from a stream. It buffers the underlying
// reader, so Buffered reports whether more pipelined requests are
// already in hand (the server uses that to batch response flushes).
type Reader struct {
	br  *bufio.Reader
	max int
}

// NewReader wraps r with a frame decoder. maxPayload caps accepted
// frame payloads: 0 picks DefaultMaxFrame, negative means no cap
// (still bounded at 1 GiB so a hostile length prefix cannot force an
// absurd allocation).
func NewReader(r io.Reader, maxPayload int) *Reader {
	return &Reader{br: bufio.NewReader(r), max: capOrDefault(maxPayload, DefaultMaxFrame)}
}

// ReadFrame reads one frame. A clean EOF before any header byte is
// io.EOF; a partial frame is io.ErrUnexpectedEOF. An oversize length
// prefix returns ErrFrameTooLarge with the offending type in the
// returned frame and nothing consumed past the header — the caller
// must treat the stream as unsynchronized and close it.
func (r *Reader) ReadFrame() (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:1]); err != nil {
		return Frame{}, err
	}
	if _, err := io.ReadFull(r.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if uint64(n) > uint64(r.max) {
		return Frame{Type: hdr[0]}, fmt.Errorf("%w: %d bytes > cap %d", ErrFrameTooLarge, n, r.max)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r.br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Type: hdr[0], Payload: p}, nil
}

// Buffered reports how many decoded-but-unread bytes are already
// buffered — nonzero means at least part of another pipelined frame is
// in hand.
func (r *Reader) Buffered() int { return r.br.Buffered() }
