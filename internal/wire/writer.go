package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Writer encodes frames onto a buffered stream. Frames accumulate in
// the buffer until Flush, so a pipelining client can stage many
// requests and pay one syscall, and the server can answer a burst of
// pipelined requests with one write.
type Writer struct {
	bw  *bufio.Writer
	max int
}

// NewWriter wraps w with a frame encoder. maxPayload caps outgoing
// payloads: 0 picks DefaultMaxFrame, negative means no cap (responses
// such as a large SVG may legitimately exceed the request cap).
func NewWriter(w io.Writer, maxPayload int) *Writer {
	return &Writer{bw: bufio.NewWriter(w), max: capOrDefault(maxPayload, DefaultMaxFrame)}
}

// WriteFrame stages one frame. The bytes reach the connection at the
// next Flush.
func (w *Writer) WriteFrame(t byte, payload []byte) error {
	if err := checkLen(len(payload)); err != nil {
		return err
	}
	if len(payload) > w.max {
		return fmt.Errorf("%w: %d bytes > cap %d", ErrFrameTooLarge, len(payload), w.max)
	}
	var hdr [HeaderLen]byte
	hdr[0] = t
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

// Flush sends every staged frame.
func (w *Writer) Flush() error { return w.bw.Flush() }
