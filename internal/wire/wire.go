// Package wire is bgr-serve's compact binary protocol: RESP-style
// typed, length-prefixed frames over one persistent TCP connection, so
// a batch client can pipeline many requests without paying HTTP framing
// or JSON-escaping the circuit text on every submission.
//
// Frame grammar (all integers big-endian):
//
//	frame   := type(1 byte) length(uint32) payload(length bytes)
//
// Request types carry the low bit range, responses the high:
//
//	TSubmit  0x01  payload: cfgLen(uint32) configJSON timeoutMs(uint32) circuit
//	TStatus  0x02  payload: job ID
//	TResult  0x03  payload: kind(1 byte: 'd' routedb, 't' timing, 's' svg, 'l' layout) job ID
//	TCancel  0x04  payload: job ID
//	TPing    0x05  payload: echoed verbatim
//	TWait    0x06  payload: job ID (reply is delayed until the job is terminal)
//	TSubmitV2 0x07 payload: cfgLen(uint32) configJSON timeoutMs(uint32)
//	               engLen(uint32) engine circuit
//
// TSubmitV2 extends TSubmit with an explicit engine-name field. Version
// tolerance runs both ways: servers keep decoding TSubmit from old
// clients (the engine defaults, or rides inside the config JSON), and
// new clients send plain TSubmit whenever the engine is the default, so
// they interoperate with old servers until a non-default engine is
// actually requested.
//
//	TSubmitted 0x81  payload: flags(1 byte: bit0 cached, bit1 dedup) job ID
//	TStatusOK  0x82  payload: status JSON (same document as GET /jobs/{id})
//	TResultOK  0x83  payload: the requested artifact, raw bytes
//	TPong      0x84  payload: the ping payload, echoed
//	TErr       0x85  payload: code(1 byte) message
//
// Responses are returned strictly in request order (pipelining is
// FIFO, like RESP). A frame whose length exceeds the receiver's cap is
// rejected without being read; on the server that mirrors the HTTP
// admission limits and answers CodeTooLarge before closing the
// connection, since the stream cannot be resynchronized.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Request frame types.
const (
	TSubmit byte = 0x01
	TStatus byte = 0x02
	TResult byte = 0x03
	TCancel byte = 0x04
	TPing   byte = 0x05
	TWait   byte = 0x06
	// TSubmitV2 carries an explicit engine name; see the frame grammar.
	TSubmitV2 byte = 0x07
)

// Response frame types.
const (
	TSubmitted byte = 0x81
	TStatusOK  byte = 0x82
	TResultOK  byte = 0x83
	TPong      byte = 0x84
	TErr       byte = 0x85
)

// Result artifact kinds, the first payload byte of a TResult request.
const (
	KindRouteDB byte = 'd'
	KindTiming  byte = 't'
	KindSVG     byte = 's'
	KindLayout  byte = 'l'
)

// TErr codes, mirroring the HTTP API's status classes.
const (
	CodeBadRequest   byte = 1 // malformed frame/config/circuit (HTTP 400)
	CodeNotFound     byte = 2 // unknown job ID (HTTP 404)
	CodeTooLarge     byte = 3 // frame or submission over a size cap (HTTP 413)
	CodeQueueFull    byte = 4 // FIFO queue at capacity (HTTP 429)
	CodeShuttingDown byte = 5 // server draining (HTTP 503)
	CodeNotDone      byte = 6 // result requested before the job is done (HTTP 409)
	CodeInternal     byte = 7 // server-side failure (HTTP 500)
)

// HeaderLen is the fixed frame header size: type byte + uint32 length.
const HeaderLen = 5

// DefaultMaxFrame is the default request payload cap, mirroring the
// HTTP transport's default POST body cap.
const DefaultMaxFrame = 8 << 20

// maxSaneFrame bounds payload allocation even when a Reader or Writer
// is configured without a cap: the length prefix is a uint32, but no
// legitimate bgr artifact approaches 1 GiB.
const maxSaneFrame = 1 << 30

var (
	// ErrFrameTooLarge: a frame's length prefix exceeds the size cap.
	// The stream cannot be resynchronized past it; close the connection.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size cap")
	// ErrBadFrame: a frame payload does not parse as its type requires.
	ErrBadFrame = errors.New("wire: malformed frame")
)

// Frame is one decoded frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// RemoteError is a TErr frame surfaced by a client.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error %s: %s", CodeName(e.Code), e.Msg)
}

// CodeName names a TErr code for messages and logs.
func CodeName(c byte) string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeNotFound:
		return "not-found"
	case CodeTooLarge:
		return "too-large"
	case CodeQueueFull:
		return "queue-full"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeNotDone:
		return "not-done"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code-%d", c)
}

// EncodeSubmit packs a TSubmit payload: the canonical config JSON (may
// be empty, meaning the server default), the per-job timeout in
// milliseconds (0 = server default), and the raw circuit text.
func EncodeSubmit(cfgJSON []byte, timeoutMs uint32, circuit []byte) []byte {
	p := make([]byte, 0, 8+len(cfgJSON)+len(circuit))
	p = binary.BigEndian.AppendUint32(p, uint32(len(cfgJSON)))
	p = append(p, cfgJSON...)
	p = binary.BigEndian.AppendUint32(p, timeoutMs)
	p = append(p, circuit...)
	return p
}

// DecodeSubmit unpacks a TSubmit payload. It never panics: any
// truncated or inconsistent layout returns ErrBadFrame.
func DecodeSubmit(p []byte) (cfgJSON []byte, timeoutMs uint32, circuit []byte, err error) {
	if len(p) < 4 {
		return nil, 0, nil, fmt.Errorf("%w: submit payload %d bytes, want >= 4", ErrBadFrame, len(p))
	}
	n := binary.BigEndian.Uint32(p)
	rest := p[4:]
	if uint64(n) > uint64(len(rest)) {
		return nil, 0, nil, fmt.Errorf("%w: submit config length %d exceeds payload", ErrBadFrame, n)
	}
	cfgJSON, rest = rest[:n], rest[n:]
	if len(rest) < 4 {
		return nil, 0, nil, fmt.Errorf("%w: submit payload truncated before timeout", ErrBadFrame)
	}
	timeoutMs = binary.BigEndian.Uint32(rest)
	return cfgJSON, timeoutMs, rest[4:], nil
}

// EncodeSubmitV2 packs a TSubmitV2 payload: TSubmit plus an engine-name
// field between the timeout and the circuit. An empty engine means the
// server default (callers normally send plain TSubmit in that case, for
// old-server interop).
func EncodeSubmitV2(cfgJSON []byte, timeoutMs uint32, engine string, circuit []byte) []byte {
	p := make([]byte, 0, 12+len(cfgJSON)+len(engine)+len(circuit))
	p = binary.BigEndian.AppendUint32(p, uint32(len(cfgJSON)))
	p = append(p, cfgJSON...)
	p = binary.BigEndian.AppendUint32(p, timeoutMs)
	p = binary.BigEndian.AppendUint32(p, uint32(len(engine)))
	p = append(p, engine...)
	return append(p, circuit...)
}

// DecodeSubmitV2 unpacks a TSubmitV2 payload. It never panics: any
// truncated or inconsistent layout returns ErrBadFrame.
func DecodeSubmitV2(p []byte) (cfgJSON []byte, timeoutMs uint32, engine string, circuit []byte, err error) {
	if len(p) < 4 {
		return nil, 0, "", nil, fmt.Errorf("%w: submit-v2 payload %d bytes, want >= 4", ErrBadFrame, len(p))
	}
	n := binary.BigEndian.Uint32(p)
	rest := p[4:]
	if uint64(n) > uint64(len(rest)) {
		return nil, 0, "", nil, fmt.Errorf("%w: submit-v2 config length %d exceeds payload", ErrBadFrame, n)
	}
	cfgJSON, rest = rest[:n], rest[n:]
	if len(rest) < 4 {
		return nil, 0, "", nil, fmt.Errorf("%w: submit-v2 payload truncated before timeout", ErrBadFrame)
	}
	timeoutMs = binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if len(rest) < 4 {
		return nil, 0, "", nil, fmt.Errorf("%w: submit-v2 payload truncated before engine", ErrBadFrame)
	}
	en := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(en) > uint64(len(rest)) {
		return nil, 0, "", nil, fmt.Errorf("%w: submit-v2 engine length %d exceeds payload", ErrBadFrame, en)
	}
	return cfgJSON, timeoutMs, string(rest[:en]), rest[en:], nil
}

// EncodeResultReq packs a TResult payload: artifact kind + job ID.
func EncodeResultReq(kind byte, id string) []byte {
	p := make([]byte, 0, 1+len(id))
	p = append(p, kind)
	return append(p, id...)
}

// DecodeResultReq unpacks a TResult payload.
func DecodeResultReq(p []byte) (kind byte, id string, err error) {
	if len(p) < 1 {
		return 0, "", fmt.Errorf("%w: empty result request", ErrBadFrame)
	}
	return p[0], string(p[1:]), nil
}

// Submitted flag bits.
const (
	flagCached byte = 1 << 0
	flagDedup  byte = 1 << 1
)

// EncodeSubmitted packs a TSubmitted payload.
func EncodeSubmitted(cached, dedup bool, id string) []byte {
	var flags byte
	if cached {
		flags |= flagCached
	}
	if dedup {
		flags |= flagDedup
	}
	p := make([]byte, 0, 1+len(id))
	p = append(p, flags)
	return append(p, id...)
}

// SubmitReply is a decoded TSubmitted payload.
type SubmitReply struct {
	ID     string
	Cached bool // served from the result cache; the job is born done
	Dedup  bool // coalesced onto an identical in-flight job
}

// DecodeSubmitted unpacks a TSubmitted payload.
func DecodeSubmitted(p []byte) (SubmitReply, error) {
	if len(p) < 1 {
		return SubmitReply{}, fmt.Errorf("%w: empty submitted reply", ErrBadFrame)
	}
	return SubmitReply{
		ID:     string(p[1:]),
		Cached: p[0]&flagCached != 0,
		Dedup:  p[0]&flagDedup != 0,
	}, nil
}

// EncodeError packs a TErr payload.
func EncodeError(code byte, msg string) []byte {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, code)
	return append(p, msg...)
}

// DecodeError unpacks a TErr payload into a RemoteError.
func DecodeError(p []byte) *RemoteError {
	if len(p) < 1 {
		return &RemoteError{Code: CodeInternal, Msg: "empty error frame"}
	}
	return &RemoteError{Code: p[0], Msg: string(p[1:])}
}

// capOrDefault resolves a configured payload cap: 0 picks def, negative
// means "no cap" (still bounded by maxSaneFrame on the read side).
func capOrDefault(max, def int) int {
	if max == 0 {
		return def
	}
	if max < 0 || max > maxSaneFrame {
		return maxSaneFrame
	}
	return max
}

// checkLen guards an outgoing payload against the uint32 length prefix.
func checkLen(n int) error {
	if uint64(n) > math.MaxUint32 {
		return fmt.Errorf("%w: payload %d bytes does not fit a uint32 length", ErrFrameTooLarge, n)
	}
	return nil
}
