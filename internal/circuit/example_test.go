package circuit_test

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// ExampleParse reads a minimal circuit from its text format.
func ExampleParse() {
	text := `
circuit demo
size rows=1 cols=10
celltype INV width=2
  pin A in bottom offs=0 fin=20
  pin Z out top offs=1 tf=0.3 td=0.25
  arc A Z 90
celltype FEED width=1 feed
cell u1 INV row=0 col=1
cell u2 INV row=0 col=5
cell f1 FEED row=0 col=4
net n1 pitch=1 pins=u1.Z,u2.A
ext IN net=nin side=bottom cols=0 dir=in tf=0.2 td=0.2
net nin pitch=1 pins=u1.A
constraint P0 limit=500 from=IN to=u2.A
`
	ckt, err := circuit.Parse(strings.NewReader(text))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	drv, _ := ckt.Driver(0)
	fmt.Printf("%s: %d cells, %d nets; n1 driven by %s\n",
		ckt.Name, len(ckt.Cells), len(ckt.Nets), ckt.PinName(drv))
	// Output:
	// demo: 3 cells, 2 nets; n1 driven by u1.Z
}

// ExampleCircuit_Terminals lists a net's terminals, driver first.
func ExampleCircuit_Terminals() {
	ckt := circuit.SampleSmall()
	for _, ref := range ckt.Terminals(1) { // net n1
		fmt.Println(ckt.PinName(ref))
	}
	// Output:
	// b0.Z
	// g1.A
	// g2.A
}
