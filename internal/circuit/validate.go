package circuit

import (
	"fmt"
	"slices"
)

// Validate checks structural consistency of the circuit: placement bounds
// and overlap, pin references, driver uniqueness, differential-pair
// symmetry, constraint references, and acyclicity of the combinational
// delay graph. It returns the first problem found.
func (c *Circuit) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("circuit %q: rows=%d cols=%d must be positive", c.Name, c.Rows, c.Cols)
	}
	if err := c.Tech.Validate(); err != nil {
		return fmt.Errorf("circuit %q: %w", c.Name, err)
	}
	if err := c.validateLib(); err != nil {
		return err
	}
	if err := c.validatePlacement(); err != nil {
		return err
	}
	if err := c.validateNets(); err != nil {
		return err
	}
	if err := c.validateExt(); err != nil {
		return err
	}
	if err := c.validateDiffPairs(); err != nil {
		return err
	}
	if err := c.validateConstraints(); err != nil {
		return err
	}
	return c.validateAcyclic()
}

func (c *Circuit) validateLib() error {
	seen := map[string]bool{}
	for i := range c.Lib {
		ct := &c.Lib[i]
		if ct.Name == "" {
			return fmt.Errorf("cell type %d: empty name", i)
		}
		if seen[ct.Name] {
			return fmt.Errorf("cell type %q: duplicate name", ct.Name)
		}
		seen[ct.Name] = true
		if ct.Width <= 0 {
			return fmt.Errorf("cell type %q: width %d must be positive", ct.Name, ct.Width)
		}
		pinNames := map[string]bool{}
		for j := range ct.Pins {
			p := &ct.Pins[j]
			if p.Name == "" {
				return fmt.Errorf("cell type %q: pin %d has empty name", ct.Name, j)
			}
			if pinNames[p.Name] {
				return fmt.Errorf("cell type %q: duplicate pin %q", ct.Name, p.Name)
			}
			pinNames[p.Name] = true
			if len(p.Offsets) == 0 {
				return fmt.Errorf("cell type %q pin %q: no positions", ct.Name, p.Name)
			}
			for _, off := range p.Offsets {
				if off < 0 || off >= ct.Width {
					return fmt.Errorf("cell type %q pin %q: offset %d outside [0,%d)", ct.Name, p.Name, off, ct.Width)
				}
			}
			if p.Dir == Out && p.Td <= 0 {
				return fmt.Errorf("cell type %q pin %q: output needs Td > 0", ct.Name, p.Name)
			}
		}
		for _, a := range ct.Arcs {
			fi, ti := ct.PinIndex(a.From), ct.PinIndex(a.To)
			if fi < 0 || ti < 0 {
				return fmt.Errorf("cell type %q: arc %s->%s references unknown pin", ct.Name, a.From, a.To)
			}
			if ct.Pins[fi].Dir != In || ct.Pins[ti].Dir != Out {
				return fmt.Errorf("cell type %q: arc %s->%s must go input to output", ct.Name, a.From, a.To)
			}
			if ct.Sequential {
				return fmt.Errorf("cell type %q: sequential types carry no arcs", ct.Name)
			}
		}
		if ct.Feed && len(ct.Pins) != 0 {
			return fmt.Errorf("cell type %q: feed cells have no pins", ct.Name)
		}
	}
	return nil
}

func (c *Circuit) validatePlacement() error {
	names := make(map[string]bool, len(c.Cells))
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.Name == "" {
			return fmt.Errorf("cell %d: empty name", i)
		}
		if names[cell.Name] {
			return fmt.Errorf("cell %q: duplicate name", cell.Name)
		}
		names[cell.Name] = true
	}
	return c.validatePlacementGeo()
}

// validatePlacementGeo checks the geometric half of the placement
// invariants — type and position bounds plus per-row overlap — in one flat
// pass: a single span slice sorted by (row, column) replaces the per-row
// buckets, so the check costs one allocation regardless of row count.
func (c *Circuit) validatePlacementGeo() error {
	type span struct{ row, lo, hi, cell int }
	spans := make([]span, 0, len(c.Cells))
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.Type < 0 || cell.Type >= len(c.Lib) {
			return fmt.Errorf("cell %q: type index %d out of range", cell.Name, cell.Type)
		}
		w := c.Lib[cell.Type].Width
		if cell.Row < 0 || cell.Row >= c.Rows {
			return fmt.Errorf("cell %q: row %d outside [0,%d)", cell.Name, cell.Row, c.Rows)
		}
		if cell.Col < 0 || cell.Col+w > c.Cols {
			return fmt.Errorf("cell %q: columns [%d,%d) outside [0,%d)", cell.Name, cell.Col, cell.Col+w, c.Cols)
		}
		spans = append(spans, span{cell.Row, cell.Col, cell.Col + w, i})
	}
	slices.SortFunc(spans, func(a, b span) int {
		if a.row != b.row {
			return a.row - b.row
		}
		return a.lo - b.lo
	})
	for i := 1; i < len(spans); i++ {
		if spans[i].row == spans[i-1].row && spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("row %d: cells %q and %q overlap",
				spans[i].row, c.Cells[spans[i-1].cell].Name, c.Cells[spans[i].cell].Name)
		}
	}
	return nil
}

// ValidateGeometry rechecks only the geometric invariants — cell type and
// position bounds, per-row overlap, and external terminal sanity — after a
// transform that moves cells or widens the chip but leaves the netlist
// untouched (feed-cell insertion, ECO shifts). The netlist, naming, pair
// and constraint checks of Validate are skipped: such transforms cannot
// invalidate them, and the full pass is too expensive to repeat inside the
// feed-assignment search loop.
func (c *Circuit) ValidateGeometry() error {
	if err := c.validatePlacementGeo(); err != nil {
		return err
	}
	return c.validateExt()
}

func (c *Circuit) validateNets() error {
	names := make(map[string]bool, len(c.Nets))
	// One pass over the pads replaces a per-net scan of the ext list:
	// which nets an input pad drives, and how many ext terminals each net
	// has (for the terminal count below).
	hasPad := make([]bool, len(c.Nets))
	extCount := make([]int32, len(c.Nets))
	for i := range c.Ext {
		if n := c.Ext[i].Net; n >= 0 && n < len(c.Nets) {
			extCount[n]++
			if c.Ext[i].Dir == In {
				hasPad[n] = true
			}
		}
	}
	// Flat per-cell-pin ownership (PinNetIndex addressing) replaces both
	// the per-net duplicate map and the cross-net owner map.
	totalPins := 0
	pinOff := make([]int32, len(c.Cells)+1)
	for ci := range c.Cells {
		pinOff[ci] = int32(totalPins)
		totalPins += len(c.CellTypeOf(ci).Pins)
	}
	pinOff[len(c.Cells)] = int32(totalPins)
	owner := make([]int32, totalPins)
	for i := range owner {
		owner[i] = int32(NoNet)
	}
	for n := range c.Nets {
		net := &c.Nets[n]
		if net.Name == "" {
			return fmt.Errorf("net %d: empty name", n)
		}
		if names[net.Name] {
			return fmt.Errorf("net %q: duplicate name", net.Name)
		}
		names[net.Name] = true
		if net.Pitch < 1 {
			return fmt.Errorf("net %q: pitch %d must be >= 1", net.Name, net.Pitch)
		}
		outCount := 0
		for _, p := range net.Pins {
			if p.IsExt() {
				return fmt.Errorf("net %q: external terminals attach via ext declarations, not net pins", net.Name)
			}
			if p.Cell < 0 || p.Cell >= len(c.Cells) {
				return fmt.Errorf("net %q: cell index %d out of range", net.Name, p.Cell)
			}
			ct := c.CellTypeOf(p.Cell)
			if p.Pin < 0 || p.Pin >= len(ct.Pins) {
				return fmt.Errorf("net %q: pin index %d out of range for cell %q", net.Name, p.Pin, c.Cells[p.Cell].Name)
			}
			switch prev := owner[pinOff[p.Cell]+int32(p.Pin)]; {
			case prev == int32(n):
				return fmt.Errorf("net %q: terminal %s listed twice", net.Name, c.PinName(p))
			case prev != int32(NoNet):
				return fmt.Errorf("terminal %s on both nets %q and %q", c.PinName(p), c.Nets[prev].Name, net.Name)
			}
			owner[pinOff[p.Cell]+int32(p.Pin)] = int32(n)
			if ct.Pins[p.Pin].Dir == Out {
				outCount++
			}
		}
		if outCount > 1 {
			return fmt.Errorf("net %q: %d driving pins", net.Name, outCount)
		}
		if outCount == 1 && hasPad[n] {
			return fmt.Errorf("net %q: both an output pin and an input pad drive it", net.Name)
		}
		if outCount == 0 && !hasPad[n] {
			return fmt.Errorf("net %q: no driver", net.Name)
		}
		if int(extCount[n])+len(net.Pins) < 2 {
			return fmt.Errorf("net %q: fewer than two terminals", net.Name)
		}
	}
	return nil
}

func (c *Circuit) validateExt() error {
	names := map[string]bool{}
	for i := range c.Ext {
		e := &c.Ext[i]
		if e.Name == "" {
			return fmt.Errorf("external terminal %d: empty name", i)
		}
		if names[e.Name] {
			return fmt.Errorf("external terminal %q: duplicate name", e.Name)
		}
		names[e.Name] = true
		if e.Net < 0 || e.Net >= len(c.Nets) {
			return fmt.Errorf("external terminal %q: net index %d out of range", e.Name, e.Net)
		}
		if len(e.Cols) == 0 {
			return fmt.Errorf("external terminal %q: no candidate positions", e.Name)
		}
		for _, col := range e.Cols {
			if col < 0 || col >= c.Cols {
				return fmt.Errorf("external terminal %q: column %d outside [0,%d)", e.Name, col, c.Cols)
			}
		}
		if e.Dir == In && e.Td <= 0 {
			return fmt.Errorf("external terminal %q: input pad needs Td > 0", e.Name)
		}
	}
	return nil
}

func (c *Circuit) validateDiffPairs() error {
	for n := range c.Nets {
		mate := c.Nets[n].DiffMate
		if mate == NoNet {
			continue
		}
		if mate < 0 || mate >= len(c.Nets) {
			return fmt.Errorf("net %q: diff mate index %d out of range", c.Nets[n].Name, mate)
		}
		if c.Nets[mate].DiffMate != n {
			return fmt.Errorf("net %q: diff pairing with %q is not mutual", c.Nets[n].Name, c.Nets[mate].Name)
		}
		if mate == n {
			return fmt.Errorf("net %q: paired with itself", c.Nets[n].Name)
		}
		if c.Nets[n].Pitch != 1 {
			return fmt.Errorf("net %q: differential pairs must be single-pitch (the pair together behaves as a 2-pitch wire)", c.Nets[n].Name)
		}
		if n < mate {
			if err := c.checkDiffParallel(n, mate); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkDiffParallel verifies the §4.1 homogeneity precondition: the two
// nets connect the same cells pin-for-pin with a constant column shift, so
// their routing graphs are isomorphic with the same relative positions.
func (c *Circuit) checkDiffParallel(a, b int) error {
	ta, tb := c.Terminals(a), c.Terminals(b)
	if len(ta) != len(tb) {
		return fmt.Errorf("diff pair %q/%q: terminal counts differ (%d vs %d)",
			c.Nets[a].Name, c.Nets[b].Name, len(ta), len(tb))
	}
	shift := 0
	for i := range ta {
		pa, pb := ta[i], tb[i]
		if pa.IsExt() != pb.IsExt() {
			return fmt.Errorf("diff pair %q/%q: terminal %d mixes external and cell pins",
				c.Nets[a].Name, c.Nets[b].Name, i)
		}
		if !pa.IsExt() && pa.Cell != pb.Cell {
			return fmt.Errorf("diff pair %q/%q: terminal %d on different cells",
				c.Nets[a].Name, c.Nets[b].Name, i)
		}
		posA, posB := c.PositionsOf(pa), c.PositionsOf(pb)
		if len(posA) != len(posB) {
			return fmt.Errorf("diff pair %q/%q: terminal %d position counts differ",
				c.Nets[a].Name, c.Nets[b].Name, i)
		}
		for j := range posA {
			if posA[j].Channel != posB[j].Channel {
				return fmt.Errorf("diff pair %q/%q: terminal %d positions in different channels",
					c.Nets[a].Name, c.Nets[b].Name, i)
			}
			d := posB[j].Col - posA[j].Col
			if i == 0 && j == 0 {
				shift = d
			} else if d != shift {
				return fmt.Errorf("diff pair %q/%q: column shift not constant (%d vs %d)",
					c.Nets[a].Name, c.Nets[b].Name, shift, d)
			}
		}
	}
	return nil
}

func (c *Circuit) validateConstraints() error {
	names := map[string]bool{}
	idx := c.BuildPinNetIndex()
	for i := range c.Cons {
		p := &c.Cons[i]
		if p.Name == "" {
			return fmt.Errorf("constraint %d: empty name", i)
		}
		if names[p.Name] {
			return fmt.Errorf("constraint %q: duplicate name", p.Name)
		}
		names[p.Name] = true
		if p.Limit <= 0 {
			return fmt.Errorf("constraint %q: limit %.1f must be positive", p.Name, p.Limit)
		}
		if len(p.From) == 0 || len(p.To) == 0 {
			return fmt.Errorf("constraint %q: needs at least one source and one sink", p.Name)
		}
		for _, r := range append(append([]PinRef{}, p.From...), p.To...) {
			if r.IsExt() {
				if r.Pin < 0 || r.Pin >= len(c.Ext) {
					return fmt.Errorf("constraint %q: external index %d out of range", p.Name, r.Pin)
				}
				continue
			}
			if r.Cell < 0 || r.Cell >= len(c.Cells) || r.Pin < 0 || r.Pin >= len(c.CellTypeOf(r.Cell).Pins) {
				return fmt.Errorf("constraint %q: bad terminal reference %+v", p.Name, r)
			}
			if !idx.Contains(r) {
				return fmt.Errorf("constraint %q: terminal %s is unconnected", p.Name, c.PinName(r))
			}
		}
	}
	return nil
}

// validateAcyclic checks that the combinational delay graph (cell arcs plus
// driver→fanout net arcs) is a DAG, a precondition for longest-path timing.
func (c *Circuit) validateAcyclic() error {
	// Vertices: cells (collapsed). An edge cellA -> cellB exists when some
	// combinational output of A drives an input of B that has an arc to an
	// output. Collapsing per cell is conservative and cheap; sequential
	// cells cut paths because they have no arcs.
	adj := make([][]int, len(c.Cells))
	for n := range c.Nets {
		drv, err := c.Driver(n)
		if err != nil {
			return err
		}
		if drv.IsExt() {
			continue
		}
		if c.Lib[c.Cells[drv.Cell].Type].Sequential {
			continue
		}
		// Walk the cell-pin fan-outs directly (pads cannot appear in
		// Nets[n].Pins) instead of materializing the terminal slice.
		for _, t := range c.Nets[n].Pins {
			if t == drv {
				continue
			}
			if c.Lib[c.Cells[t.Cell].Type].Sequential {
				continue
			}
			adj[drv.Cell] = append(adj[drv.Cell], t.Cell)
		}
	}
	state := make([]int, len(c.Cells)) // 0 new, 1 active, 2 done
	var stack []int
	for s := range adj {
		if state[s] != 0 {
			continue
		}
		// Iterative DFS with an explicit edge cursor.
		type frame struct{ v, i int }
		fs := []frame{{s, 0}}
		state[s] = 1
		stack = append(stack[:0], s)
		for len(fs) > 0 {
			f := &fs[len(fs)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				switch state[w] {
				case 0:
					state[w] = 1
					fs = append(fs, frame{w, 0})
					stack = append(stack, w)
				case 1:
					return fmt.Errorf("combinational cycle through cell %q", c.Cells[w].Name)
				}
				continue
			}
			state[f.v] = 2
			fs = fs[:len(fs)-1]
		}
	}
	return nil
}
