// Package circuit models bipolar standard-cell circuits for global routing:
// a cell library with capacitance-delay parameters, a placed netlist,
// differential-drive pairs, multi-pitch nets, external (chip I/O) terminals,
// and path-based timing constraints.
//
// The model follows Harada & Kitazawa (DAC 1994), §2: the delay of a signal
// propagating from an input terminal ti through an output terminal to is
//
//	Tpd = T0(ti,to) + (Σ Fin(t))·Tf(to) + CL(n)·Td(to)
//
// where T0 is the intrinsic cell delay, Fin the fan-in capacitance of each
// fan-out terminal, Tf the fan-in delay factor, Td the unit-capacitance
// delay, and CL(n) the wiring capacitance of net n.
//
// Units: length µm, capacitance fF, delay ps, delay factors ps/fF.
package circuit

import "fmt"

// PinDir distinguishes input terminals (signal sinks) from output terminals
// (signal drivers).
type PinDir int

const (
	// In marks a pin that receives a signal.
	In PinDir = iota
	// Out marks a pin that drives a net.
	Out
)

func (d PinDir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Side tells which edge of a cell row a pin is accessible from, and hence
// which routing channel serves it. A Bottom pin of row r is reached from
// channel r; a Top pin of row r from channel r+1.
type Side int

const (
	// Bottom is the lower edge of a cell (or the lower chip boundary for
	// external terminals).
	Bottom Side = iota
	// Top is the upper edge of a cell (or the upper chip boundary).
	Top
)

func (s Side) String() string {
	if s == Bottom {
		return "bottom"
	}
	return "top"
}

// PinDef describes one logical terminal of a cell type.
//
// A pin may expose several equivalent physical positions (Offsets), e.g. an
// ECL emitter-follower output with multiple taps. The router connects the
// terminal to exactly one of them via zero-weight correspondence edges in
// the routing graph (paper Fig. 3); multiple positions are what create the
// cycles the edge-deletion scheme resolves.
type PinDef struct {
	Name    string
	Dir     PinDir
	Side    Side
	Offsets []int // candidate x offsets within the cell, in column pitches

	// Fin is the fan-in capacitance presented by this terminal when it is
	// a fan-out of some net (inputs only), in fF.
	Fin float64
	// Tf is the fan-in delay factor of this terminal when it drives a net
	// (outputs only), in ps/fF.
	Tf float64
	// Td is the unit wiring-capacitance delay of this terminal when it
	// drives a net (outputs only), in ps/fF.
	Td float64
}

// Arc is an intrinsic-delay arc through a cell, from an input pin to an
// output pin, with delay T0 in ps.
type Arc struct {
	From string // input pin name
	To   string // output pin name
	T0   float64
}

// CellType is a library cell. Width is in column pitches. Sequential cell
// types (registers) carry no combinational arcs: timing paths end at their
// inputs and begin at their outputs, with clock-to-Q folded into the
// constraint limits.
type CellType struct {
	Name       string
	Width      int
	Pins       []PinDef
	Arcs       []Arc
	Sequential bool
	Feed       bool // pure feedthrough cell: no pins, provides one column of feedthrough per pitch
}

// PinIndex returns the index of the named pin, or -1.
func (ct *CellType) PinIndex(name string) int {
	for i := range ct.Pins {
		if ct.Pins[i].Name == name {
			return i
		}
	}
	return -1
}

// Cell is a placed instance. Col is the leftmost column it occupies.
type Cell struct {
	Name string
	Type int // index into Circuit.Lib
	Row  int
	Col  int
}

// PinRef identifies a terminal. Cell >= 0 refers to Circuit.Cells[Cell] pin
// index Pin; Cell == ExtCell refers to Circuit.Ext[Pin].
type PinRef struct {
	Cell int
	Pin  int
}

// ExtCell is the sentinel Cell value marking an external-terminal PinRef.
const ExtCell = -1

// IsExt reports whether the reference names an external terminal.
func (p PinRef) IsExt() bool { return p.Cell == ExtCell }

// Ext builds a PinRef for external terminal index i.
func Ext(i int) PinRef { return PinRef{Cell: ExtCell, Pin: i} }

// NoNet marks a net index field as unset.
const NoNet = -1

// Net is a signal net. Pins lists the connected cell terminals; the driver
// is either the unique external In pad attached to the net or, failing
// that, Pins[0] (which must then be an Out pin).
//
// Pitch is the wire width in routing pitches (§4.2): a w-pitch net occupies
// w adjacent feedthrough positions and contributes weight w to channel
// density. DiffMate links differential-drive pairs (§4.1); both nets of a
// pair must be structurally parallel.
type Net struct {
	Name     string
	Pins     []PinRef
	Pitch    int
	DiffMate int // index of the paired net, or NoNet
}

// ExtPin is an external terminal (chip I/O) with one or more candidate
// boundary positions (paper Fig. 3 shows external terminals with several
// positions joined by correspondence edges).
type ExtPin struct {
	Name string
	Net  int
	Side Side  // Bottom: lower chip edge (channel 0); Top: upper edge (channel Rows)
	Cols []int // candidate columns
	Dir  PinDir

	Fin float64 // load if Dir==Out (output pad receiving the signal)
	Tf  float64 // drive factors if Dir==In (input pad driving the net)
	Td  float64
}

// Constraint is a critical-path constraint P = (S_P, T_P, τ_P): every path
// from a source terminal in From to a sink terminal in To must have delay
// at most Limit ps (§2.2).
type Constraint struct {
	Name  string
	From  []PinRef
	To    []PinRef
	Limit float64
}

// Tech gathers the technology constants used to turn routed geometry into
// capacitance, delay and area.
type Tech struct {
	PitchX     float64 // column pitch, µm
	RowHeight  float64 // cell row height, µm
	TrackPitch float64 // channel track pitch, µm
	CapPerUm   float64 // wiring capacitance, fF/µm, for a 1-pitch wire
	BranchLen  float64 // nominal pin-to-spine jog length, µm
	// WideCap is the additional capacitance factor per extra pitch of
	// width: a w-pitch wire has CapPerUm·(1 + WideCap·(w-1)) fF/µm.
	WideCap float64
}

// DefaultTech is the technology used throughout the experiments.
var DefaultTech = Tech{
	PitchX:     10,
	RowHeight:  40,
	TrackPitch: 4,
	CapPerUm:   0.20,
	BranchLen:  8,
	WideCap:    0.6,
}

// Validate checks the technology constants for physical sense.
func (t Tech) Validate() error {
	switch {
	case t.PitchX <= 0:
		return fmt.Errorf("tech: pitchx %g must be positive", t.PitchX)
	case t.RowHeight <= 0:
		return fmt.Errorf("tech: rowheight %g must be positive", t.RowHeight)
	case t.TrackPitch <= 0:
		return fmt.Errorf("tech: trackpitch %g must be positive", t.TrackPitch)
	case t.CapPerUm <= 0:
		return fmt.Errorf("tech: capperum %g must be positive", t.CapPerUm)
	case t.BranchLen < 0:
		return fmt.Errorf("tech: branchlen %g must not be negative", t.BranchLen)
	case t.WideCap < 0:
		return fmt.Errorf("tech: widecap %g must not be negative", t.WideCap)
	}
	return nil
}

// WireCapPerUm returns the capacitance per µm of a wire of the given pitch
// width.
func (t Tech) WireCapPerUm(pitch int) float64 {
	if pitch < 1 {
		pitch = 1
	}
	return t.CapPerUm * (1 + t.WideCap*float64(pitch-1))
}

// Circuit is a placed bipolar standard-cell design ready for global
// routing.
type Circuit struct {
	Name string
	Tech Tech

	Lib   []CellType
	Cells []Cell
	Nets  []Net
	Ext   []ExtPin
	Cons  []Constraint

	Rows int // number of cell rows
	Cols int // chip width in column pitches
}

// CellTypeOf returns the library type of a placed cell.
func (c *Circuit) CellTypeOf(cell int) *CellType { return &c.Lib[c.Cells[cell].Type] }

// PinDefOf returns the definition behind a cell-terminal reference. It must
// not be called with an external reference.
func (c *Circuit) PinDefOf(ref PinRef) *PinDef {
	return &c.Lib[c.Cells[ref.Cell].Type].Pins[ref.Pin]
}

// PinName formats a terminal reference for humans, e.g. "u3.Z" or "CLKIN".
func (c *Circuit) PinName(ref PinRef) string {
	if ref.IsExt() {
		return c.Ext[ref.Pin].Name
	}
	return c.Cells[ref.Cell].Name + "." + c.PinDefOf(ref).Name
}

// DirOf returns the signal direction of a terminal with respect to the net:
// Out means it drives the net.
func (c *Circuit) DirOf(ref PinRef) PinDir {
	if ref.IsExt() {
		// An input pad drives its net.
		if c.Ext[ref.Pin].Dir == In {
			return Out
		}
		return In
	}
	return c.PinDefOf(ref).Dir
}

// FinOf returns the fan-in load a terminal presents as a net fan-out, fF.
func (c *Circuit) FinOf(ref PinRef) float64 {
	if ref.IsExt() {
		return c.Ext[ref.Pin].Fin
	}
	return c.PinDefOf(ref).Fin
}

// DriveOf returns (Tf, Td) of a driving terminal, ps/fF.
func (c *Circuit) DriveOf(ref PinRef) (tf, td float64) {
	if ref.IsExt() {
		e := &c.Ext[ref.Pin]
		return e.Tf, e.Td
	}
	d := c.PinDefOf(ref)
	return d.Tf, d.Td
}

// Driver returns the driving terminal of a net: the unique external In pad
// if present, otherwise the first Out cell pin.
func (c *Circuit) Driver(net int) (PinRef, error) {
	for i := range c.Ext {
		if c.Ext[i].Net == net && c.Ext[i].Dir == In {
			return Ext(i), nil
		}
	}
	for _, p := range c.Nets[net].Pins {
		if c.DirOf(p) == Out {
			return p, nil
		}
	}
	return PinRef{}, fmt.Errorf("circuit: net %q has no driver", c.Nets[net].Name)
}

// Terminals returns every terminal of a net, external pads included, with
// the driver first.
func (c *Circuit) Terminals(net int) []PinRef {
	var drv PinRef
	hasDrv := false
	if d, err := c.Driver(net); err == nil {
		drv, hasDrv = d, true
	}
	out := make([]PinRef, 0, len(c.Nets[net].Pins)+1)
	if hasDrv {
		out = append(out, drv)
	}
	for i := range c.Ext {
		if c.Ext[i].Net == net {
			r := Ext(i)
			if !hasDrv || r != drv {
				out = append(out, r)
			}
		}
	}
	for _, p := range c.Nets[net].Pins {
		if !hasDrv || p != drv {
			out = append(out, p)
		}
	}
	return out
}

// AppendTerminals appends the net's terminals to dst in Terminals order
// (driver first) and returns the extended slice. Allocation-free when dst
// has capacity.
func (c *Circuit) AppendTerminals(dst []PinRef, net int) []PinRef {
	var drv PinRef
	hasDrv := false
	if d, err := c.Driver(net); err == nil {
		drv, hasDrv = d, true
	}
	if hasDrv {
		dst = append(dst, drv)
	}
	for i := range c.Ext {
		if c.Ext[i].Net == net {
			r := Ext(i)
			if !hasDrv || r != drv {
				dst = append(dst, r)
			}
		}
	}
	for _, p := range c.Nets[net].Pins {
		if !hasDrv || p != drv {
			dst = append(dst, p)
		}
	}
	return dst
}

// Fanouts returns the non-driving terminals of a net.
func (c *Circuit) Fanouts(net int) []PinRef {
	ts := c.Terminals(net)
	if len(ts) == 0 {
		return nil
	}
	return ts[1:]
}

// FanoutLoad is Σ Fin(t) over the fan-out terminals of a net, fF.
func (c *Circuit) FanoutLoad(net int) float64 {
	var sum float64
	for _, t := range c.Fanouts(net) {
		sum += c.FinOf(t)
	}
	return sum
}

// NetOf returns the net a cell terminal belongs to, or NoNet. O(nets); use
// a PinNetIndex for bulk queries.
func (c *Circuit) NetOf(ref PinRef) int {
	if ref.IsExt() {
		return c.Ext[ref.Pin].Net
	}
	for n := range c.Nets {
		for _, p := range c.Nets[n].Pins {
			if p == ref {
				return n
			}
		}
	}
	return NoNet
}

// PinNetIndex maps every terminal to its net for O(1) lookup. Cell pins
// live in one flat array addressed by per-cell offsets — no hashing, no
// per-entry allocation.
type PinNetIndex struct {
	off  []int32 // per cell: start of its pin row in pins
	pins []int32 // net per (cell, pin), NoNet when unconnected
	ext  []int32 // net per external terminal, NoNet when unconnected
}

// Net returns the net a terminal belongs to, with ok reporting membership.
// Out-of-range references are simply not members.
func (idx *PinNetIndex) Net(ref PinRef) (int, bool) {
	var n int32 = NoNet
	if ref.IsExt() {
		if ref.Pin >= 0 && ref.Pin < len(idx.ext) {
			n = idx.ext[ref.Pin]
		}
	} else if ref.Cell >= 0 && ref.Cell+1 < len(idx.off) {
		row := idx.pins[idx.off[ref.Cell]:idx.off[ref.Cell+1]]
		if ref.Pin >= 0 && ref.Pin < len(row) {
			n = row[ref.Pin]
		}
	}
	return int(n), n != NoNet
}

// Contains reports whether the terminal is connected to any net.
func (idx *PinNetIndex) Contains(ref PinRef) bool {
	_, ok := idx.Net(ref)
	return ok
}

// BuildPinNetIndex indexes all net membership.
func (c *Circuit) BuildPinNetIndex() PinNetIndex {
	var idx PinNetIndex
	idx.off = make([]int32, len(c.Cells)+1)
	for ci := range c.Cells {
		idx.off[ci+1] = idx.off[ci] + int32(len(c.CellTypeOf(ci).Pins))
	}
	idx.pins = make([]int32, idx.off[len(c.Cells)])
	for i := range idx.pins {
		idx.pins[i] = NoNet
	}
	idx.ext = make([]int32, len(c.Ext))
	for i := range c.Ext {
		idx.ext[i] = int32(c.Ext[i].Net)
	}
	for n := range c.Nets {
		for _, p := range c.Nets[n].Pins {
			if p.IsExt() {
				if p.Pin >= 0 && p.Pin < len(idx.ext) {
					idx.ext[p.Pin] = int32(n)
				}
				continue
			}
			idx.pins[idx.off[p.Cell]+int32(p.Pin)] = int32(n)
		}
	}
	return idx
}

// Position is a physical terminal position: a channel index and a column.
type Position struct {
	Channel int
	Col     int
}

// PositionsOf returns the candidate physical positions of a terminal
// (paper Fig. 3: one terminal, several positions).
func (c *Circuit) PositionsOf(ref PinRef) []Position {
	if ref.IsExt() {
		return c.AppendPositionsOf(make([]Position, 0, len(c.Ext[ref.Pin].Cols)), ref)
	}
	return c.AppendPositionsOf(make([]Position, 0, len(c.PinDefOf(ref).Offsets)), ref)
}

// AppendPositionsOf appends the terminal's tap positions to dst in
// PositionsOf order and returns the extended slice. Allocation-free when
// dst has capacity.
func (c *Circuit) AppendPositionsOf(dst []Position, ref PinRef) []Position {
	if ref.IsExt() {
		e := &c.Ext[ref.Pin]
		ch := 0
		if e.Side == Top {
			ch = c.Rows
		}
		for _, col := range e.Cols {
			dst = append(dst, Position{Channel: ch, Col: col})
		}
		return dst
	}
	cell := &c.Cells[ref.Cell]
	def := c.PinDefOf(ref)
	ch := cell.Row
	if def.Side == Top {
		ch = cell.Row + 1
	}
	for _, off := range def.Offsets {
		dst = append(dst, Position{Channel: ch, Col: cell.Col + off})
	}
	return dst
}

// Channels returns the number of routing channels: one below each row plus
// one above the top row.
func (c *Circuit) Channels() int { return c.Rows + 1 }

// IsFeedCell reports whether cell i is a feed cell.
func (c *Circuit) IsFeedCell(i int) bool { return c.Lib[c.Cells[i].Type].Feed }

// Clone deep-copies the circuit so that feed-cell insertion can widen a
// copy without mutating the caller's design.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, Tech: c.Tech, Rows: c.Rows, Cols: c.Cols}
	out.Lib = make([]CellType, len(c.Lib))
	for i, ct := range c.Lib {
		nct := ct
		nct.Pins = make([]PinDef, len(ct.Pins))
		for j, p := range ct.Pins {
			np := p
			np.Offsets = append([]int(nil), p.Offsets...)
			nct.Pins[j] = np
		}
		nct.Arcs = append([]Arc(nil), ct.Arcs...)
		out.Lib[i] = nct
	}
	out.Cells = append([]Cell(nil), c.Cells...)
	out.Nets = make([]Net, len(c.Nets))
	for i, n := range c.Nets {
		nn := n
		nn.Pins = append([]PinRef(nil), n.Pins...)
		out.Nets[i] = nn
	}
	out.Ext = make([]ExtPin, len(c.Ext))
	for i, e := range c.Ext {
		ne := e
		ne.Cols = append([]int(nil), e.Cols...)
		out.Ext[i] = ne
	}
	out.Cons = make([]Constraint, len(c.Cons))
	for i, p := range c.Cons {
		np := p
		np.From = append([]PinRef(nil), p.From...)
		np.To = append([]PinRef(nil), p.To...)
		out.Cons[i] = np
	}
	return out
}
