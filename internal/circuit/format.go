package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The circuit text format is line based. '#' starts a comment. Example:
//
//	circuit C1
//	tech pitchx=10 rowheight=40 trackpitch=8 capperum=0.2 branchlen=16 widecap=0.6
//	size rows=3 cols=60
//	celltype NAND2 width=3
//	  pin A in bottom offs=0 fin=25
//	  pin Z out top offs=1,2 tf=0.3 td=0.2
//	  arc A Z 80
//	celltype DFF width=5 seq
//	  ...
//	celltype FEED width=1 feed
//	cell u1 NAND2 row=0 col=10
//	net n1 pitch=1 pins=u1.Z,u2.A
//	diff n1 n2
//	ext CLKIN net=nclk side=bottom cols=5,30 dir=in tf=0.2 td=0.15
//	ext DOUT net=n7 side=top cols=55 dir=out fin=30
//	constraint P0 limit=850 from=u1.Z to=u9.D,DOUT

// Format writes the circuit in the text format.
func Format(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	t := c.Tech
	fmt.Fprintf(bw, "tech pitchx=%g rowheight=%g trackpitch=%g capperum=%g branchlen=%g widecap=%g\n",
		t.PitchX, t.RowHeight, t.TrackPitch, t.CapPerUm, t.BranchLen, t.WideCap)
	fmt.Fprintf(bw, "size rows=%d cols=%d\n", c.Rows, c.Cols)
	for i := range c.Lib {
		ct := &c.Lib[i]
		fmt.Fprintf(bw, "celltype %s width=%d", ct.Name, ct.Width)
		if ct.Sequential {
			fmt.Fprint(bw, " seq")
		}
		if ct.Feed {
			fmt.Fprint(bw, " feed")
		}
		fmt.Fprintln(bw)
		for j := range ct.Pins {
			p := &ct.Pins[j]
			fmt.Fprintf(bw, "  pin %s %s %s offs=%s", p.Name, p.Dir, p.Side, joinInts(p.Offsets))
			if p.Dir == In {
				fmt.Fprintf(bw, " fin=%g", p.Fin)
			} else {
				fmt.Fprintf(bw, " tf=%g td=%g", p.Tf, p.Td)
			}
			fmt.Fprintln(bw)
		}
		for _, a := range ct.Arcs {
			fmt.Fprintf(bw, "  arc %s %s %g\n", a.From, a.To, a.T0)
		}
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		fmt.Fprintf(bw, "cell %s %s row=%d col=%d\n", cell.Name, c.Lib[cell.Type].Name, cell.Row, cell.Col)
	}
	for n := range c.Nets {
		net := &c.Nets[n]
		pins := make([]string, len(net.Pins))
		for i, p := range net.Pins {
			pins[i] = c.PinName(p)
		}
		fmt.Fprintf(bw, "net %s pitch=%d pins=%s\n", net.Name, net.Pitch, strings.Join(pins, ","))
	}
	for n := range c.Nets {
		if m := c.Nets[n].DiffMate; m != NoNet && n < m {
			fmt.Fprintf(bw, "diff %s %s\n", c.Nets[n].Name, c.Nets[m].Name)
		}
	}
	for i := range c.Ext {
		e := &c.Ext[i]
		fmt.Fprintf(bw, "ext %s net=%s side=%s cols=%s dir=%s", e.Name, c.Nets[e.Net].Name, e.Side, joinInts(e.Cols), e.Dir)
		if e.Dir == In {
			fmt.Fprintf(bw, " tf=%g td=%g", e.Tf, e.Td)
		} else {
			fmt.Fprintf(bw, " fin=%g", e.Fin)
		}
		fmt.Fprintln(bw)
	}
	for i := range c.Cons {
		p := &c.Cons[i]
		fmt.Fprintf(bw, "constraint %s limit=%g from=%s to=%s\n",
			p.Name, p.Limit, c.joinRefs(p.From), c.joinRefs(p.To))
	}
	return bw.Flush()
}

func (c *Circuit) joinRefs(refs []PinRef) string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = c.PinName(r)
	}
	return strings.Join(out, ",")
}

func joinInts(xs []int) string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.Itoa(x)
	}
	return strings.Join(out, ",")
}

// Parse reads a circuit in the text format and validates it.
func Parse(r io.Reader) (*Circuit, error) {
	p := &parser{
		c:        &Circuit{Tech: DefaultTech},
		types:    map[string]int{},
		cells:    map[string]int{},
		nets:     map[string]int{},
		exts:     map[string]int{},
		scanner:  bufio.NewScanner(r),
		pendDiff: nil,
	}
	p.scanner.Buffer(make([]byte, 1<<16), 1<<22)
	for n := range p.c.Nets {
		p.c.Nets[n].DiffMate = NoNet
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	if err := p.c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: %w", err)
	}
	return p.c, nil
}

type parser struct {
	c       *Circuit
	types   map[string]int
	cells   map[string]int
	nets    map[string]int
	exts    map[string]int
	scanner *bufio.Scanner
	line    int
	curType int // cell type being defined, or -1

	pendDiff [][2]string
	pendCons []pendingConstraint
	pendExt  []pendingExt
}

type pendingConstraint struct {
	name       string
	limit      float64
	from, to   string
	lineNumber int
}

type pendingExt struct {
	e          ExtPin
	netName    string
	lineNumber int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: "+format, append([]any{p.line}, args...)...)
}

func (p *parser) run() error {
	p.curType = -1
	for p.scanner.Scan() {
		p.line++
		line := p.scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.statement(fields); err != nil {
			return err
		}
	}
	if err := p.scanner.Err(); err != nil {
		return err
	}
	return p.resolvePending()
}

func (p *parser) statement(f []string) error {
	kw := f[0]
	if kw != "pin" && kw != "arc" {
		p.curType = -1
	}
	switch kw {
	case "circuit":
		if len(f) != 2 {
			return p.errf("circuit: want a name")
		}
		p.c.Name = f[1]
	case "tech":
		kv, err := p.kvs(f[1:])
		if err != nil {
			return err
		}
		t := &p.c.Tech
		for k, v := range kv {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return p.errf("tech %s: %v", k, err)
			}
			switch k {
			case "pitchx":
				t.PitchX = x
			case "rowheight":
				t.RowHeight = x
			case "trackpitch":
				t.TrackPitch = x
			case "capperum":
				t.CapPerUm = x
			case "branchlen":
				t.BranchLen = x
			case "widecap":
				t.WideCap = x
			default:
				return p.errf("tech: unknown key %q", k)
			}
		}
	case "size":
		kv, err := p.kvs(f[1:])
		if err != nil {
			return err
		}
		var err2 error
		if p.c.Rows, err2 = strconv.Atoi(kv["rows"]); err2 != nil {
			return p.errf("size rows: %v", err2)
		}
		if p.c.Cols, err2 = strconv.Atoi(kv["cols"]); err2 != nil {
			return p.errf("size cols: %v", err2)
		}
	case "celltype":
		return p.cellType(f)
	case "pin":
		return p.pin(f)
	case "arc":
		return p.arc(f)
	case "cell":
		return p.cell(f)
	case "net":
		return p.net(f)
	case "diff":
		if len(f) != 3 {
			return p.errf("diff: want two net names")
		}
		p.pendDiff = append(p.pendDiff, [2]string{f[1], f[2]})
	case "ext":
		return p.ext(f)
	case "constraint":
		return p.constraint(f)
	default:
		return p.errf("unknown keyword %q", kw)
	}
	return nil
}

func (p *parser) kvs(fields []string) (map[string]string, error) {
	kv := map[string]string{}
	for _, fld := range fields {
		i := strings.IndexByte(fld, '=')
		if i < 0 {
			return nil, p.errf("expected key=value, got %q", fld)
		}
		kv[fld[:i]] = fld[i+1:]
	}
	return kv, nil
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		x, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

func (p *parser) cellType(f []string) error {
	if len(f) < 3 {
		return p.errf("celltype: want name and width")
	}
	ct := CellType{Name: f[1]}
	for _, fld := range f[2:] {
		switch {
		case fld == "seq":
			ct.Sequential = true
		case fld == "feed":
			ct.Feed = true
		case strings.HasPrefix(fld, "width="):
			w, err := strconv.Atoi(fld[len("width="):])
			if err != nil {
				return p.errf("celltype width: %v", err)
			}
			ct.Width = w
		default:
			return p.errf("celltype: unknown field %q", fld)
		}
	}
	if _, dup := p.types[ct.Name]; dup {
		return p.errf("celltype %q: duplicate", ct.Name)
	}
	p.types[ct.Name] = len(p.c.Lib)
	p.c.Lib = append(p.c.Lib, ct)
	p.curType = len(p.c.Lib) - 1
	return nil
}

func (p *parser) pin(f []string) error {
	if p.curType < 0 {
		return p.errf("pin outside celltype")
	}
	if len(f) < 4 {
		return p.errf("pin: want name dir side [key=value...]")
	}
	pd := PinDef{Name: f[1]}
	switch f[2] {
	case "in":
		pd.Dir = In
	case "out":
		pd.Dir = Out
	default:
		return p.errf("pin dir %q", f[2])
	}
	switch f[3] {
	case "bottom":
		pd.Side = Bottom
	case "top":
		pd.Side = Top
	default:
		return p.errf("pin side %q", f[3])
	}
	kv, err := p.kvs(f[4:])
	if err != nil {
		return err
	}
	for k, v := range kv {
		switch k {
		case "offs":
			pd.Offsets, err = parseIntList(v)
		case "fin":
			pd.Fin, err = strconv.ParseFloat(v, 64)
		case "tf":
			pd.Tf, err = strconv.ParseFloat(v, 64)
		case "td":
			pd.Td, err = strconv.ParseFloat(v, 64)
		default:
			return p.errf("pin: unknown key %q", k)
		}
		if err != nil {
			return p.errf("pin %s: %v", k, err)
		}
	}
	p.c.Lib[p.curType].Pins = append(p.c.Lib[p.curType].Pins, pd)
	return nil
}

func (p *parser) arc(f []string) error {
	if p.curType < 0 {
		return p.errf("arc outside celltype")
	}
	if len(f) != 4 {
		return p.errf("arc: want from to delay")
	}
	t0, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return p.errf("arc delay: %v", err)
	}
	p.c.Lib[p.curType].Arcs = append(p.c.Lib[p.curType].Arcs, Arc{From: f[1], To: f[2], T0: t0})
	return nil
}

func (p *parser) cell(f []string) error {
	if len(f) < 3 {
		return p.errf("cell: want name type")
	}
	ti, ok := p.types[f[2]]
	if !ok {
		return p.errf("cell %q: unknown type %q", f[1], f[2])
	}
	kv, err := p.kvs(f[3:])
	if err != nil {
		return err
	}
	cell := Cell{Name: f[1], Type: ti}
	if cell.Row, err = strconv.Atoi(kv["row"]); err != nil {
		return p.errf("cell row: %v", err)
	}
	if cell.Col, err = strconv.Atoi(kv["col"]); err != nil {
		return p.errf("cell col: %v", err)
	}
	if _, dup := p.cells[cell.Name]; dup {
		return p.errf("cell %q: duplicate", cell.Name)
	}
	p.cells[cell.Name] = len(p.c.Cells)
	p.c.Cells = append(p.c.Cells, cell)
	return nil
}

func (p *parser) parseRef(s string) (PinRef, error) {
	if i, ok := p.exts[s]; ok {
		return Ext(i), nil
	}
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return PinRef{}, fmt.Errorf("terminal %q: want cell.pin or an external name", s)
	}
	ci, ok := p.cells[s[:dot]]
	if !ok {
		return PinRef{}, fmt.Errorf("terminal %q: unknown cell", s)
	}
	pi := p.c.Lib[p.c.Cells[ci].Type].PinIndex(s[dot+1:])
	if pi < 0 {
		return PinRef{}, fmt.Errorf("terminal %q: unknown pin", s)
	}
	return PinRef{Cell: ci, Pin: pi}, nil
}

func (p *parser) net(f []string) error {
	if len(f) < 2 {
		return p.errf("net: want name")
	}
	kv, err := p.kvs(f[2:])
	if err != nil {
		return err
	}
	net := Net{Name: f[1], Pitch: 1, DiffMate: NoNet}
	if v, ok := kv["pitch"]; ok {
		if net.Pitch, err = strconv.Atoi(v); err != nil {
			return p.errf("net pitch: %v", err)
		}
	}
	if v, ok := kv["pins"]; ok && v != "" {
		for _, s := range strings.Split(v, ",") {
			ref, err := p.parseRef(strings.TrimSpace(s))
			if err != nil {
				return p.errf("net %q: %v", net.Name, err)
			}
			net.Pins = append(net.Pins, ref)
		}
	}
	if _, dup := p.nets[net.Name]; dup {
		return p.errf("net %q: duplicate", net.Name)
	}
	p.nets[net.Name] = len(p.c.Nets)
	p.c.Nets = append(p.c.Nets, net)
	return nil
}

func (p *parser) ext(f []string) error {
	if len(f) < 2 {
		return p.errf("ext: want name")
	}
	kv, err := p.kvs(f[2:])
	if err != nil {
		return err
	}
	pe := pendingExt{lineNumber: p.line}
	pe.e.Name = f[1]
	pe.netName = kv["net"]
	switch kv["side"] {
	case "bottom":
		pe.e.Side = Bottom
	case "top":
		pe.e.Side = Top
	default:
		return p.errf("ext side %q", kv["side"])
	}
	switch kv["dir"] {
	case "in":
		pe.e.Dir = In
	case "out":
		pe.e.Dir = Out
	default:
		return p.errf("ext dir %q", kv["dir"])
	}
	if pe.e.Cols, err = parseIntList(kv["cols"]); err != nil {
		return p.errf("ext cols: %v", err)
	}
	for _, k := range []string{"fin", "tf", "td"} {
		if v, ok := kv[k]; ok {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return p.errf("ext %s: %v", k, err)
			}
			switch k {
			case "fin":
				pe.e.Fin = x
			case "tf":
				pe.e.Tf = x
			case "td":
				pe.e.Td = x
			}
		}
	}
	if _, dup := p.exts[pe.e.Name]; dup {
		return p.errf("ext %q: duplicate", pe.e.Name)
	}
	p.exts[pe.e.Name] = len(p.c.Ext)
	p.c.Ext = append(p.c.Ext, ExtPin{Name: pe.e.Name, Net: NoNet})
	p.pendExt = append(p.pendExt, pe)
	return nil
}

func (p *parser) constraint(f []string) error {
	if len(f) < 2 {
		return p.errf("constraint: want name")
	}
	kv, err := p.kvs(f[2:])
	if err != nil {
		return err
	}
	pc := pendingConstraint{name: f[1], from: kv["from"], to: kv["to"], lineNumber: p.line}
	if pc.limit, err = strconv.ParseFloat(kv["limit"], 64); err != nil {
		return p.errf("constraint limit: %v", err)
	}
	p.pendCons = append(p.pendCons, pc)
	return nil
}

// resolvePending links names that may legally appear before their
// definitions (diff pairs, ext nets, constraint terminals).
func (p *parser) resolvePending() error {
	for _, pe := range p.pendExt {
		ni, ok := p.nets[pe.netName]
		if !ok {
			return fmt.Errorf("line %d: ext %q: unknown net %q", pe.lineNumber, pe.e.Name, pe.netName)
		}
		i := p.exts[pe.e.Name]
		e := pe.e
		e.Net = ni
		p.c.Ext[i] = e
	}
	for _, d := range p.pendDiff {
		a, ok1 := p.nets[d[0]]
		b, ok2 := p.nets[d[1]]
		if !ok1 || !ok2 {
			return fmt.Errorf("diff %s %s: unknown net", d[0], d[1])
		}
		p.c.Nets[a].DiffMate = b
		p.c.Nets[b].DiffMate = a
	}
	for _, pc := range p.pendCons {
		cons := Constraint{Name: pc.name, Limit: pc.limit}
		for _, s := range strings.Split(pc.from, ",") {
			ref, err := p.parseRef(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("line %d: constraint %q from: %v", pc.lineNumber, pc.name, err)
			}
			cons.From = append(cons.From, ref)
		}
		for _, s := range strings.Split(pc.to, ",") {
			ref, err := p.parseRef(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("line %d: constraint %q to: %v", pc.lineNumber, pc.name, err)
			}
			cons.To = append(cons.To, ref)
		}
		p.c.Cons = append(p.c.Cons, cons)
	}
	sort.SliceStable(p.c.Cons, func(i, j int) bool { return p.c.Cons[i].Name < p.c.Cons[j].Name })
	return nil
}
