package circuit

// This file provides small hand-built circuits shared by tests and
// examples. They are deliberately tiny so their routing can be checked by
// inspection.

// Library cell-type indices returned by SampleLib, in order.
const (
	SampleINV = iota
	SampleNOR2
	SampleBUF
	SampleDFF
	SampleDRV2
	SampleRCV2
	SampleFEED
)

// SampleLib builds a small ECL-flavoured cell library: inverter, 2-input
// NOR, a high-drive buffer with two equivalent output taps, a D flip-flop,
// a differential driver/receiver pair, and a feed cell.
func SampleLib() []CellType {
	return []CellType{
		{
			Name: "INV", Width: 2,
			Pins: []PinDef{
				{Name: "A", Dir: In, Side: Bottom, Offsets: []int{0}, Fin: 20},
				{Name: "Z", Dir: Out, Side: Top, Offsets: []int{1}, Tf: 0.35, Td: 0.25},
			},
			Arcs: []Arc{{From: "A", To: "Z", T0: 90}},
		},
		{
			Name: "NOR2", Width: 3,
			Pins: []PinDef{
				{Name: "A", Dir: In, Side: Bottom, Offsets: []int{0}, Fin: 22},
				{Name: "B", Dir: In, Side: Bottom, Offsets: []int{1}, Fin: 22},
				{Name: "Z", Dir: Out, Side: Top, Offsets: []int{2}, Tf: 0.30, Td: 0.22},
			},
			Arcs: []Arc{{From: "A", To: "Z", T0: 95}, {From: "B", To: "Z", T0: 100}},
		},
		{
			Name: "BUF", Width: 3,
			Pins: []PinDef{
				{Name: "A", Dir: In, Side: Bottom, Offsets: []int{0}, Fin: 18},
				// Two equivalent output taps: the router picks one.
				{Name: "Z", Dir: Out, Side: Top, Offsets: []int{0, 2}, Tf: 0.15, Td: 0.12},
			},
			Arcs: []Arc{{From: "A", To: "Z", T0: 70}},
		},
		{
			Name: "DFF", Width: 5, Sequential: true,
			Pins: []PinDef{
				{Name: "D", Dir: In, Side: Bottom, Offsets: []int{0}, Fin: 24},
				{Name: "CK", Dir: In, Side: Bottom, Offsets: []int{2}, Fin: 12},
				{Name: "Q", Dir: Out, Side: Top, Offsets: []int{3, 4}, Tf: 0.25, Td: 0.20},
			},
		},
		{
			Name: "DRV2", Width: 4,
			Pins: []PinDef{
				{Name: "A", Dir: In, Side: Bottom, Offsets: []int{0}, Fin: 20},
				{Name: "Q", Dir: Out, Side: Top, Offsets: []int{2}, Tf: 0.18, Td: 0.15},
				{Name: "QB", Dir: Out, Side: Top, Offsets: []int{3}, Tf: 0.18, Td: 0.15},
			},
			Arcs: []Arc{{From: "A", To: "Q", T0: 85}, {From: "A", To: "QB", T0: 85}},
		},
		{
			Name: "RCV2", Width: 4,
			Pins: []PinDef{
				{Name: "IN", Dir: In, Side: Bottom, Offsets: []int{1}, Fin: 25},
				{Name: "INB", Dir: In, Side: Bottom, Offsets: []int{2}, Fin: 25},
				{Name: "Z", Dir: Out, Side: Top, Offsets: []int{3}, Tf: 0.28, Td: 0.21},
			},
			Arcs: []Arc{{From: "IN", To: "Z", T0: 75}, {From: "INB", To: "Z", T0: 75}},
		},
		{Name: "FEED", Width: 1, Feed: true},
	}
}

// SampleSmall builds a two-row circuit with a multi-row net, a feedthrough
// requirement, external terminals with alternative positions, and one path
// constraint. Layout (columns 0..29):
//
//	row 1:      g2(NOR2)@4        i1(INV)@12       f1(FEED)@20
//	row 0:  b0(BUF)@2   g1(NOR2)@8   f0(FEED)@13  d0(DFF)@16  f2(FEED)@22
func SampleSmall() *Circuit {
	c := &Circuit{Name: "sample-small", Tech: DefaultTech, Rows: 2, Cols: 30, Lib: SampleLib()}
	c.Cells = []Cell{
		{Name: "b0", Type: SampleBUF, Row: 0, Col: 2},
		{Name: "g1", Type: SampleNOR2, Row: 0, Col: 8},
		{Name: "f0", Type: SampleFEED, Row: 0, Col: 13},
		{Name: "d0", Type: SampleDFF, Row: 0, Col: 16},
		{Name: "f2", Type: SampleFEED, Row: 0, Col: 22},
		{Name: "g2", Type: SampleNOR2, Row: 1, Col: 4},
		{Name: "i1", Type: SampleINV, Row: 1, Col: 12},
		{Name: "f1", Type: SampleFEED, Row: 1, Col: 20},
	}
	ref := func(cellName, pinName string) PinRef {
		for i := range c.Cells {
			if c.Cells[i].Name == cellName {
				pi := c.Lib[c.Cells[i].Type].PinIndex(pinName)
				return PinRef{Cell: i, Pin: pi}
			}
		}
		panic("unknown cell " + cellName)
	}
	c.Nets = []Net{
		{Name: "nIn", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("b0", "A"), ref("g1", "B")}},
		{Name: "n1", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("b0", "Z"), ref("g1", "A"), ref("g2", "A")}},
		{Name: "n2", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("g1", "Z"), ref("g2", "B")}},
		{Name: "n3", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("g2", "Z"), ref("i1", "A")}},
		{Name: "n4", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("i1", "Z"), ref("d0", "D")}},
		{Name: "nq", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("d0", "Q")}},
		{Name: "nck", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("d0", "CK")}},
	}
	c.Ext = []ExtPin{
		{Name: "IN0", Net: 0, Side: Bottom, Cols: []int{0, 6}, Dir: In, Tf: 0.2, Td: 0.15},
		{Name: "OUT0", Net: 5, Side: Top, Cols: []int{26, 28}, Dir: Out, Fin: 30},
		{Name: "CKIN", Net: 6, Side: Bottom, Cols: []int{18}, Dir: In, Tf: 0.1, Td: 0.1},
	}
	c.Cons = []Constraint{
		{Name: "P0", Limit: 900, From: []PinRef{Ext(0)}, To: []PinRef{ref("d0", "D")}},
	}
	return c
}

// SampleDiffCross is SampleDiff with the receiver moved into the driver's
// row so the differential pair must cross cell row 0 — the pair then needs
// two adjacent feedthrough slots, exercising §4.1 together with §4.3.
func SampleDiffCross() *Circuit {
	c := SampleDiff()
	c.Name = "sample-diff-cross"
	for i := range c.Cells {
		if c.Cells[i].Name == "rc" {
			c.Cells[i].Row = 0
			c.Cells[i].Col = 16
		}
	}
	return c
}

// SampleDiff builds a circuit with one differential-drive pair (DRV2 Q/QB
// into RCV2 IN/INB across one channel) plus a plain net sharing the
// channel, exercising §4.1.
func SampleDiff() *Circuit {
	c := &Circuit{Name: "sample-diff", Tech: DefaultTech, Rows: 2, Cols: 24, Lib: SampleLib()}
	c.Cells = []Cell{
		{Name: "dr", Type: SampleDRV2, Row: 0, Col: 3},
		{Name: "b0", Type: SampleBUF, Row: 0, Col: 12},
		{Name: "f0", Type: SampleFEED, Row: 0, Col: 9},
		{Name: "rc", Type: SampleRCV2, Row: 1, Col: 10},
		{Name: "i0", Type: SampleINV, Row: 1, Col: 3},
		{Name: "f1", Type: SampleFEED, Row: 1, Col: 17},
	}
	ref := func(cellName, pinName string) PinRef {
		for i := range c.Cells {
			if c.Cells[i].Name == cellName {
				pi := c.Lib[c.Cells[i].Type].PinIndex(pinName)
				return PinRef{Cell: i, Pin: pi}
			}
		}
		panic("unknown cell " + cellName)
	}
	c.Nets = []Net{
		{Name: "q", Pitch: 1, DiffMate: 1, Pins: []PinRef{ref("dr", "Q"), ref("rc", "IN")}},
		{Name: "qb", Pitch: 1, DiffMate: 0, Pins: []PinRef{ref("dr", "QB"), ref("rc", "INB")}},
		{Name: "nin", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("dr", "A")}},
		{Name: "na", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("b0", "Z"), ref("i0", "A")}},
		{Name: "nb", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("b0", "A")}},
		{Name: "nz", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("rc", "Z")}},
		{Name: "nc", Pitch: 1, DiffMate: NoNet, Pins: []PinRef{ref("i0", "Z")}},
	}
	c.Ext = []ExtPin{
		{Name: "PIN", Net: 2, Side: Bottom, Cols: []int{2, 5}, Dir: In, Tf: 0.2, Td: 0.15},
		{Name: "PB", Net: 4, Side: Top, Cols: []int{6}, Dir: In, Tf: 0.2, Td: 0.15},
		{Name: "POUT", Net: 5, Side: Top, Cols: []int{20}, Dir: Out, Fin: 30},
		{Name: "PC", Net: 6, Side: Top, Cols: []int{8}, Dir: Out, Fin: 25},
	}
	c.Cons = []Constraint{
		{Name: "P0", Limit: 700, From: []PinRef{Ext(0)}, To: []PinRef{Ext(2)}},
	}
	return c
}
