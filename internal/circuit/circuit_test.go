package circuit

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleSmallValidates(t *testing.T) {
	c := SampleSmall()
	if err := c.Validate(); err != nil {
		t.Fatalf("SampleSmall invalid: %v", err)
	}
}

func TestSampleDiffValidates(t *testing.T) {
	c := SampleDiff()
	if err := c.Validate(); err != nil {
		t.Fatalf("SampleDiff invalid: %v", err)
	}
}

func TestDriverResolution(t *testing.T) {
	c := SampleSmall()
	// Net nIn is driven by the external input pad IN0.
	drv, err := c.Driver(0)
	if err != nil {
		t.Fatal(err)
	}
	if !drv.IsExt() || c.Ext[drv.Pin].Name != "IN0" {
		t.Fatalf("net nIn driver = %v, want external IN0", drv)
	}
	// Net n1 is driven by the cell pin b0.Z.
	drv, err = c.Driver(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PinName(drv); got != "b0.Z" {
		t.Fatalf("net n1 driver = %s, want b0.Z", got)
	}
}

func TestTerminalsDriverFirst(t *testing.T) {
	c := SampleSmall()
	for n := range c.Nets {
		ts := c.Terminals(n)
		if len(ts) < 2 {
			t.Fatalf("net %s: %d terminals", c.Nets[n].Name, len(ts))
		}
		if c.DirOf(ts[0]) != Out {
			t.Errorf("net %s: first terminal %s is not the driver", c.Nets[n].Name, c.PinName(ts[0]))
		}
		for _, s := range ts[1:] {
			if c.DirOf(s) != In {
				t.Errorf("net %s: fan-out %s has direction out", c.Nets[n].Name, c.PinName(s))
			}
		}
	}
}

func TestFanoutLoad(t *testing.T) {
	c := SampleSmall()
	// n1 fans out to g1.A (22 fF) and g2.A (22 fF).
	if got := c.FanoutLoad(1); got != 44 {
		t.Fatalf("FanoutLoad(n1) = %v, want 44", got)
	}
	// nq fans out to OUT0 (30 fF).
	if got := c.FanoutLoad(5); got != 30 {
		t.Fatalf("FanoutLoad(nq) = %v, want 30", got)
	}
}

func TestPositionsOf(t *testing.T) {
	c := SampleSmall()
	// b0.Z: BUF at row 0 col 2, output taps at offsets 0 and 2, top side.
	ref := PinRef{Cell: 0, Pin: 1}
	got := c.PositionsOf(ref)
	want := []Position{{Channel: 1, Col: 2}, {Channel: 1, Col: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PositionsOf(b0.Z) = %v, want %v", got, want)
	}
	// External IN0: bottom side -> channel 0, columns 0 and 6.
	got = c.PositionsOf(Ext(0))
	want = []Position{{Channel: 0, Col: 0}, {Channel: 0, Col: 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PositionsOf(IN0) = %v, want %v", got, want)
	}
}

func TestPinNetIndexCoversAllTerminals(t *testing.T) {
	c := SampleSmall()
	idx := c.BuildPinNetIndex()
	for n := range c.Nets {
		for _, p := range c.Nets[n].Pins {
			if got, ok := idx.Net(p); !ok || got != n {
				t.Errorf("index maps %s to net %d, want %d", c.PinName(p), got, n)
			}
		}
	}
	for i := range c.Ext {
		got, ok := idx.Net(Ext(i))
		if !ok {
			got = NoNet
		}
		if got != c.Ext[i].Net {
			t.Errorf("index maps ext %s to net %d, want %d", c.Ext[i].Name, got, c.Ext[i].Net)
		}
	}
}

func TestRoundTripFormatParse(t *testing.T) {
	for _, build := range []func() *Circuit{SampleSmall, SampleDiff} {
		orig := build()
		var buf bytes.Buffer
		if err := Format(&buf, orig); err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse %s: %v\n%s", orig.Name, err, buf.String())
		}
		var buf2 bytes.Buffer
		if err := Format(&buf2, parsed); err != nil {
			t.Fatal(err)
		}
		if buf.String() != buf2.String() {
			t.Fatalf("%s: format/parse/format not a fixed point:\n--- first\n%s\n--- second\n%s",
				orig.Name, buf.String(), buf2.String())
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"unknown keyword", "bogus x\n", "unknown keyword"},
		{"pin outside celltype", "pin A in bottom offs=0\n", "pin outside celltype"},
		{"unknown cell type", "size rows=1 cols=4\ncell u X row=0 col=0\n", "unknown type"},
		{"bad side", "celltype T width=1\n  pin A in middle offs=0\n", "pin side"},
		{"dup celltype", "celltype T width=1\ncelltype T width=1\n", "duplicate"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.text))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	c := SampleSmall()
	c.Cells[1].Col = 3 // NOR2 g1 (width 3) now overlaps BUF b0 at [2,5)
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("want overlap error, got %v", err)
	}
}

func TestValidateCatchesCombinationalCycle(t *testing.T) {
	c := SampleSmall()
	// n2 goes g1.Z -> g2.B and n3 goes g2.Z -> i1.A; moving g1.B from nIn
	// onto n4 (driven by i1.Z) closes the loop g1 -> g2 -> i1 -> g1.
	c.Nets[0].Pins = c.Nets[0].Pins[:1]
	c.Nets[4].Pins = append(c.Nets[4].Pins, PinRef{Cell: 1, Pin: 1})
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want combinational cycle error, got %v", err)
	}
}

func TestValidateCatchesMultipleDrivers(t *testing.T) {
	c := SampleSmall()
	// Add b0.Z to net n2, which already has driver g1.Z.
	c.Nets[2].Pins = append(c.Nets[2].Pins, PinRef{Cell: 0, Pin: 1})
	if err := c.Validate(); err == nil {
		t.Fatal("want multiple-driver error, got nil")
	}
}

func TestValidateDiffPairSymmetry(t *testing.T) {
	c := SampleDiff()
	// Break mutuality.
	c.Nets[1].DiffMate = NoNet
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "mutual") {
		t.Fatalf("want mutuality error, got %v", err)
	}
	// Restore and break parallelism by giving qb an extra terminal.
	c = SampleDiff()
	c.Nets[1].Pins = append(c.Nets[1].Pins, PinRef{Cell: 1, Pin: 0}) // b0.A
	if err := c.Validate(); err == nil {
		t.Fatal("want parallelism error, got nil")
	}
}

func TestWireCapPerUm(t *testing.T) {
	tech := DefaultTech
	if got, want := tech.WireCapPerUm(1), tech.CapPerUm; got != want {
		t.Fatalf("1-pitch cap %v, want %v", got, want)
	}
	if got, want := tech.WireCapPerUm(2), tech.CapPerUm*(1+tech.WideCap); got != want {
		t.Fatalf("2-pitch cap %v, want %v", got, want)
	}
	if got := tech.WireCapPerUm(0); got != tech.CapPerUm {
		t.Fatalf("0-pitch cap clamps to 1 pitch, got %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := SampleSmall()
	d := c.Clone()
	d.Cells[0].Col = 99
	d.Nets[1].Pins[0] = PinRef{Cell: 3, Pin: 0}
	d.Lib[0].Pins[0].Offsets[0] = 7
	d.Cons[0].Limit = 1
	if c.Cells[0].Col == 99 || c.Lib[0].Pins[0].Offsets[0] == 7 || c.Cons[0].Limit == 1 {
		t.Fatal("Clone shares memory with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("original damaged by mutation of clone: %v", err)
	}
}

// TestCloneEquivalentQuick checks, over random mutations of query inputs,
// that Clone answers every query identically to the original.
func TestCloneEquivalentQuick(t *testing.T) {
	c := SampleSmall()
	d := c.Clone()
	f := func(netRaw uint) bool {
		n := int(netRaw % uint(len(c.Nets)))
		if c.FanoutLoad(n) != d.FanoutLoad(n) {
			return false
		}
		tc, td := c.Terminals(n), d.Terminals(n)
		return reflect.DeepEqual(tc, td)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPositionsWithinChip is a property: every terminal position of every
// valid sample circuit lies inside the chip.
func TestPositionsWithinChip(t *testing.T) {
	for _, build := range []func() *Circuit{SampleSmall, SampleDiff} {
		c := build()
		check := func(ref PinRef) {
			for _, pos := range c.PositionsOf(ref) {
				if pos.Col < 0 || pos.Col >= c.Cols {
					t.Errorf("%s: %s column %d outside chip", c.Name, c.PinName(ref), pos.Col)
				}
				if pos.Channel < 0 || pos.Channel > c.Rows {
					t.Errorf("%s: %s channel %d outside chip", c.Name, c.PinName(ref), pos.Channel)
				}
			}
		}
		for n := range c.Nets {
			for _, p := range c.Nets[n].Pins {
				check(p)
			}
		}
		for i := range c.Ext {
			check(Ext(i))
		}
	}
}

func TestTechValidate(t *testing.T) {
	good := DefaultTech
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Tech){
		func(x *Tech) { x.PitchX = 0 },
		func(x *Tech) { x.RowHeight = -1 },
		func(x *Tech) { x.TrackPitch = 0 },
		func(x *Tech) { x.CapPerUm = 0 },
		func(x *Tech) { x.BranchLen = -1 },
		func(x *Tech) { x.WideCap = -0.1 },
	}
	for i, mut := range bads {
		tech := DefaultTech
		mut(&tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("bad tech %d accepted", i)
		}
	}
	// Circuit validation picks it up too.
	c := SampleSmall()
	c.Tech.CapPerUm = 0
	if err := c.Validate(); err == nil {
		t.Fatal("circuit with bad tech accepted")
	}
}

func TestValidateRejectsWideDiffPair(t *testing.T) {
	c := SampleDiff()
	c.Nets[0].Pitch = 2
	c.Nets[1].Pitch = 2
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "single-pitch") {
		t.Fatalf("wide diff pair accepted: %v", err)
	}
}
