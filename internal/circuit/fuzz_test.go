package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the circuit parser. Accepted inputs
// must survive a Format/Parse round trip bit-for-bit; rejected inputs must
// fail cleanly (no panic). Run with `go test -fuzz=FuzzParse` to explore;
// the seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	for _, build := range []func() *Circuit{SampleSmall, SampleDiff, SampleDiffCross} {
		var buf bytes.Buffer
		if err := Format(&buf, build()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("circuit x\nsize rows=1 cols=4\n")
	f.Add("celltype T width=1\n  pin A in bottom offs=0 fin=1\n")
	f.Add("net n pins=\nconstraint p limit=-1 from= to=\n")
	f.Add(strings.Repeat("cell a T row=0 col=0\n", 3))

	f.Fuzz(func(t *testing.T, text string) {
		ckt, err := Parse(strings.NewReader(text))
		if err != nil {
			return // rejected cleanly
		}
		var a bytes.Buffer
		if err := Format(&a, ckt); err != nil {
			t.Fatalf("accepted circuit fails to format: %v", err)
		}
		again, err := Parse(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, a.String())
		}
		var b bytes.Buffer
		if err := Format(&b, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("format not a fixed point:\n--- a\n%s\n--- b\n%s", a.String(), b.String())
		}
	})
}
