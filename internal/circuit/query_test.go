package circuit

import "testing"

func TestDirOfExternalSemantics(t *testing.T) {
	c := SampleSmall()
	// IN0 is an input pad: it drives its net, so its direction w.r.t. the
	// net is Out.
	if got := c.DirOf(Ext(0)); got != Out {
		t.Fatalf("DirOf(IN0) = %v, want Out", got)
	}
	// OUT0 is an output pad: it loads the net.
	if got := c.DirOf(Ext(1)); got != In {
		t.Fatalf("DirOf(OUT0) = %v, want In", got)
	}
	// Cell pins keep their library direction.
	if got := c.DirOf(PinRef{Cell: 0, Pin: 0}); got != In { // b0.A
		t.Fatalf("DirOf(b0.A) = %v, want In", got)
	}
	if got := c.DirOf(PinRef{Cell: 0, Pin: 1}); got != Out { // b0.Z
		t.Fatalf("DirOf(b0.Z) = %v, want Out", got)
	}
}

func TestDriveOfAndFinOf(t *testing.T) {
	c := SampleSmall()
	tf, td := c.DriveOf(Ext(0)) // IN0 pad drive
	if tf != 0.2 || td != 0.15 {
		t.Fatalf("DriveOf(IN0) = (%v,%v)", tf, td)
	}
	tf, td = c.DriveOf(PinRef{Cell: 0, Pin: 1}) // b0.Z
	if tf != 0.15 || td != 0.12 {
		t.Fatalf("DriveOf(b0.Z) = (%v,%v)", tf, td)
	}
	if got := c.FinOf(Ext(1)); got != 30 { // OUT0 load
		t.Fatalf("FinOf(OUT0) = %v", got)
	}
	if got := c.FinOf(PinRef{Cell: 1, Pin: 0}); got != 22 { // g1.A
		t.Fatalf("FinOf(g1.A) = %v", got)
	}
}

func TestNetOfLinearScanMatchesIndex(t *testing.T) {
	c := SampleSmall()
	idx := c.BuildPinNetIndex()
	check := func(ref PinRef) {
		want, ok := idx.Net(ref)
		if !ok {
			want = NoNet
		}
		if got := c.NetOf(ref); got != want {
			t.Fatalf("NetOf(%s) = %d, index says %d", c.PinName(ref), got, want)
		}
	}
	for ci := range c.Cells {
		for pi := range c.CellTypeOf(ci).Pins {
			check(PinRef{Cell: ci, Pin: pi})
		}
	}
	for i := range c.Ext {
		check(Ext(i))
	}
	// An unconnected pin returns NoNet: add a floating spare inverter.
	c.Cells = append(c.Cells, Cell{Name: "spare", Type: SampleINV, Row: 1, Col: 26})
	if got := c.NetOf(PinRef{Cell: len(c.Cells) - 1, Pin: 0}); got != NoNet {
		t.Fatalf("NetOf(spare.A) = %d, want NoNet", got)
	}
}

func TestPinNameFormats(t *testing.T) {
	c := SampleSmall()
	if got := c.PinName(PinRef{Cell: 0, Pin: 1}); got != "b0.Z" {
		t.Fatalf("PinName = %q", got)
	}
	if got := c.PinName(Ext(2)); got != "CKIN" {
		t.Fatalf("PinName(ext) = %q", got)
	}
}

func TestChannelsCount(t *testing.T) {
	c := SampleSmall()
	if got := c.Channels(); got != 3 {
		t.Fatalf("Channels = %d, want 3", got)
	}
}

func TestCellTypeHelpers(t *testing.T) {
	c := SampleSmall()
	ct := c.CellTypeOf(0)
	if ct.Name != "BUF" {
		t.Fatalf("CellTypeOf(b0) = %s", ct.Name)
	}
	if ct.PinIndex("Z") != 1 || ct.PinIndex("nope") != -1 {
		t.Fatal("PinIndex wrong")
	}
	if !c.IsFeedCell(2) || c.IsFeedCell(0) {
		t.Fatal("IsFeedCell wrong")
	}
}
