package rgraph

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/grid"
)

func TestTentativeWeightedMatchesPlainAtUnitCost(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := g.TentativeWeighted(func(e int) float64 { return g.Edges[e].Len })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Length-weighted.Length) > 1e-9 {
		t.Fatalf("identity cost changed the tree: %v vs %v", plain.Length, weighted.Length)
	}
}

func TestTentativeWeightedAvoidsPenalizedEdge(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	// Penalize a non-bridge tree edge heavily: the weighted tree must
	// avoid it when an alternative exists.
	victim := -1
	for _, e := range plain.Edges {
		if !g.Edges[e].Bridge {
			victim = e
			break
		}
	}
	if victim == -1 {
		t.Skip("no avoidable tree edge in fixture")
	}
	weighted, err := g.TentativeWeighted(func(e int) float64 {
		if e == victim {
			return 1e9
		}
		return g.Edges[e].Len
	})
	if err != nil {
		t.Fatal(err)
	}
	if weighted.InTree[victim] {
		t.Fatal("weighted tree still uses the penalized edge")
	}
	// The alternative is physically longer or equal.
	if weighted.Length < plain.Length-1e-9 {
		t.Fatalf("avoiding an edge shortened the tree: %v < %v", weighted.Length, plain.Length)
	}
}

func TestKeepOnly(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	g.KeepOnly(tree)
	if g.AliveCount() != len(tree.Edges) {
		t.Fatalf("alive %d, tree %d", g.AliveCount(), len(tree.Edges))
	}
	g.RecomputeBridges()
	if !g.IsTree() {
		t.Fatal("KeepOnly result not a tree")
	}
	for _, e := range g.AliveEdges() {
		if !tree.InTree[e] {
			t.Fatal("non-tree edge survived KeepOnly")
		}
		if !g.Edges[e].Bridge {
			t.Fatal("tree edge not a bridge after KeepOnly")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
