package rgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/grid"
)

// feedsFor picks, for every row the net crosses, the first feed slot of
// that row — a stand-in for the real assignment pass in package feed.
func feedsFor(t *testing.T, ckt *circuit.Circuit, geo *grid.Geometry, net int) []FeedPos {
	t.Helper()
	minCh, maxCh := 1<<30, -1
	for _, tr := range ckt.Terminals(net) {
		for _, pos := range ckt.PositionsOf(tr) {
			if pos.Channel < minCh {
				minCh = pos.Channel
			}
			if pos.Channel > maxCh {
				maxCh = pos.Channel
			}
		}
	}
	var feeds []FeedPos
	for r := minCh; r < maxCh; r++ {
		slots := geo.FeedSlots(r)
		if len(slots) == 0 {
			t.Fatalf("net %s: no feed slots in row %d", ckt.Nets[net].Name, r)
		}
		feeds = append(feeds, FeedPos{Row: r, Col: slots[0].Col})
	}
	return feeds
}

func buildAll(t *testing.T, ckt *circuit.Circuit) (*grid.Geometry, []*Graph) {
	t.Helper()
	if err := ckt.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	geo, err := grid.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*Graph, len(ckt.Nets))
	for n := range ckt.Nets {
		g, err := Build(ckt, geo, n, feedsFor(t, ckt, geo, n))
		if err != nil {
			t.Fatalf("build net %s: %v", ckt.Nets[n].Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("net %s: %v", ckt.Nets[n].Name, err)
		}
		graphs[n] = g
	}
	return geo, graphs
}

func TestBuildSampleSmall(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	// Net n1 (b0.Z in channel 1, g1.A in channel 0, g2.A in channel 1)
	// must contain a feedthrough edge through row 0.
	g := graphs[1]
	hasFeed := false
	for _, e := range g.Edges {
		if e.Kind == EFeed && e.Ch == 0 {
			hasFeed = true
		}
	}
	if !hasFeed {
		t.Fatal("net n1 lacks the row-0 feedthrough edge")
	}
	// Driver b0.Z has two taps: two correspondence edges from its terminal.
	corr := 0
	for _, e := range g.Edges {
		if e.Kind == ECorr && (g.Verts[e.U].Kind == VTerm && g.Verts[e.U].Term == 0 ||
			g.Verts[e.V].Kind == VTerm && g.Verts[e.V].Term == 0) {
			corr++
		}
	}
	if corr != 2 {
		t.Fatalf("driver has %d correspondence edges, want 2", corr)
	}
	// Dual-tap terminals create cycles: there must be deletable edges.
	if len(g.NonBridges()) == 0 {
		t.Fatal("expected non-bridge edges in n1's graph")
	}
}

func TestBuildRejectsMissingFeedthrough(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, err := grid.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	// Net n1 crosses row 0 but we pass no feedthroughs.
	if _, err := Build(ckt, geo, 1, nil); err == nil {
		t.Fatal("want error for missing feedthrough")
	}
}

// bruteBridges recomputes bridge flags by deleting each edge in turn and
// checking connectivity.
func bruteBridges(g *Graph) []bool {
	out := make([]bool, len(g.Edges))
	for e := range g.Edges {
		if !g.Edges[e].Alive {
			continue
		}
		g.Edges[e].Alive = false
		out[e] = !g.connectedFromAlive()
		g.Edges[e].Alive = true
	}
	return out
}

func TestBridgesMatchBruteForce(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	for n, g := range graphs {
		want := bruteBridges(g)
		for e := range g.Edges {
			if g.Edges[e].Alive && g.Edges[e].Bridge != want[e] {
				t.Errorf("net %s edge %d (%s): bridge=%v brute=%v",
					ckt.Nets[n].Name, e, g.Edges[e].Kind, g.Edges[e].Bridge, want[e])
			}
		}
	}
}

func TestBridgesMatchBruteForceAfterRandomDeletions(t *testing.T) {
	ckt := circuit.SampleSmall()
	f := func(seed int64) bool {
		geo, _ := grid.New(ckt)
		g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for {
			nb := g.NonBridges()
			if len(nb) == 0 {
				break
			}
			if _, err := g.Delete(nb[rng.Intn(len(nb))]); err != nil {
				return false
			}
			g.RecomputeBridges()
			want := bruteBridges(g)
			for e := range g.Edges {
				if g.Edges[e].Alive && g.Edges[e].Bridge != want[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRefusesBridge(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	g := graphs[1]
	for e := range g.Edges {
		if g.Edges[e].Alive && g.Edges[e].Bridge {
			if _, err := g.Delete(e); err == nil {
				t.Fatal("Delete accepted a bridge")
			}
			return
		}
	}
	t.Skip("no bridge in fixture")
}

// TestDeletionToTreeInvariants drives random graphs to completion and
// checks the §3.1 wiring conditions: the result is a tree, contains every
// terminal, keeps exactly one correspondence edge per terminal, and stays
// connected the whole way.
func TestDeletionToTreeInvariants(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := build()
		f := func(seed int64) bool {
			geo, _ := grid.New(ckt)
			rng := rand.New(rand.NewSource(seed))
			for n := range ckt.Nets {
				g, err := Build(ckt, geo, n, feedsFor(t, ckt, geo, n))
				if err != nil {
					t.Logf("net %s: %v", ckt.Nets[n].Name, err)
					return false
				}
				for {
					nb := g.NonBridges()
					if len(nb) == 0 {
						break
					}
					if _, err := g.Delete(nb[rng.Intn(len(nb))]); err != nil {
						return false
					}
					g.RecomputeBridges()
					if err := g.Validate(); err != nil {
						t.Logf("net %s: %v", ckt.Nets[n].Name, err)
						return false
					}
				}
				if !g.IsTree() {
					return false
				}
				// Every terminal keeps at least one correspondence edge;
				// degree 2 means both equivalent positions are used as an
				// internal through-connection, never more than the
				// terminal's position count.
				for ti, tv := range g.TermVert {
					d := g.degree(tv)
					if d < 1 || d > len(g.adj[tv]) {
						t.Logf("net %s terminal %d degree %d", ckt.Nets[n].Name, ti, d)
						return false
					}
				}
				// Tree edge count: alive edges == touched vertices - 1.
				touched := map[int]bool{}
				for _, e := range g.AliveEdges() {
					touched[g.Edges[e].U] = true
					touched[g.Edges[e].V] = true
				}
				if g.AliveCount() != len(touched)-1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(13))}); err != nil {
			t.Fatalf("%s: %v", ckt.Name, err)
		}
	}
}

func TestTentativeTree(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	for n, g := range graphs {
		tree, err := g.Tentative()
		if err != nil {
			t.Fatalf("net %s: %v", ckt.Nets[n].Name, err)
		}
		if tree.SinkDist[0] != 0 {
			t.Errorf("net %s: driver distance %v", ckt.Nets[n].Name, tree.SinkDist[0])
		}
		var sum float64
		for _, e := range tree.Edges {
			if !g.Edges[e].Alive {
				t.Errorf("net %s: dead edge in tentative tree", ckt.Nets[n].Name)
			}
			sum += g.Edges[e].Len
		}
		if math.Abs(sum-tree.Length) > 1e-9 {
			t.Errorf("net %s: length mismatch", ckt.Nets[n].Name)
		}
		for ti := 1; ti < len(tree.SinkDist); ti++ {
			if tree.SinkDist[ti] <= 0 {
				t.Errorf("net %s: sink %d at zero distance", ckt.Nets[n].Name, ti)
			}
			if tree.SinkDist[ti] > tree.Length+1e-9 {
				t.Errorf("net %s: sink dist exceeds union length", ckt.Nets[n].Name)
			}
		}
	}
}

func TestLengthExcludingTreeEdgeGrowsOrDisconnects(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	g := graphs[1]
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tree.Edges {
		if g.Edges[e].Bridge {
			if _, err := g.LengthExcluding(e); err == nil {
				t.Errorf("excluding bridge %d should disconnect", e)
			}
			continue
		}
		l, err := g.LengthExcluding(e)
		if err != nil {
			t.Errorf("excluding non-bridge %d: %v", e, err)
			continue
		}
		// Removing a used shortest-path edge cannot shorten any sink path;
		// the union stays within the total alive length and is positive.
		if l <= 0 {
			t.Errorf("excluded length %v", l)
		}
	}
	// Excluding an edge outside the tentative tree leaves sink distances
	// unchanged, so the union length is unchanged.
	for e := range g.Edges {
		if !g.Edges[e].Alive || tree.InTree[e] || g.Edges[e].Bridge {
			continue
		}
		l, err := g.LengthExcluding(e)
		if err != nil {
			t.Fatalf("excluding %d: %v", e, err)
		}
		if math.Abs(l-tree.Length) > 1e-9 {
			t.Errorf("excluding non-tree edge %d changed length %v -> %v", e, tree.Length, l)
		}
	}
}

func TestElmoreDelaysTwoPin(t *testing.T) {
	ckt := circuit.SampleDiff()
	geo, _ := grid.New(ckt)
	// Net q: dr.Q -> rc.IN, both single positions in channel 1.
	g, err := Build(ckt, geo, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	r := 0.001 // kΩ/µm
	d := g.ElmoreDelays(tree, ckt, r)
	if d[0] != 0 {
		t.Fatalf("driver Elmore delay %v", d[0])
	}
	if d[1] <= 0 {
		t.Fatalf("sink Elmore delay %v", d[1])
	}
	// Hand computation along the single path: every edge contributes
	// R·(C/2 + Cbelow), and the sink pin load (25 fF) hangs at the end.
	capPerUm := ckt.Tech.WireCapPerUm(1)
	// Path edges in order driver->sink with their downstream caps.
	// Total path: corr(0) + branch + trunk + branch + corr(0).
	bl := ckt.Tech.BranchLen
	span := tree.Length - 2*bl // trunk length
	cBr := bl * capPerUm
	cTr := span * capPerUm
	want := r * bl * (cBr/2 + cTr + cBr + 25)
	want += r * span * (cTr/2 + cBr + 25)
	want += r * bl * (cBr/2 + 25)
	if math.Abs(d[1]-want) > 1e-9 {
		t.Fatalf("Elmore = %v, want %v", d[1], want)
	}
}

func TestFinalTreeMatchesAliveEdges(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, graphs := buildAll(t, ckt)
	g := graphs[1]
	rng := rand.New(rand.NewSource(17))
	for {
		nb := g.NonBridges()
		if len(nb) == 0 {
			break
		}
		if _, err := g.Delete(nb[rng.Intn(len(nb))]); err != nil {
			t.Fatal(err)
		}
		g.RecomputeBridges()
	}
	ft := g.FinalTree()
	if len(ft.Edges) != g.AliveCount() {
		t.Fatalf("final tree %d edges, alive %d", len(ft.Edges), g.AliveCount())
	}
	tt, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ft.Length-tt.Length) > 1e-9 {
		t.Fatalf("finished net: tentative %v != final %v", tt.Length, ft.Length)
	}
}
