// Package rgraph builds and manipulates the per-net routing graphs Gr(n)
// of Harada & Kitazawa §3.1 (Fig. 3).
//
// Vertices are the net's circuit terminals, their candidate physical
// positions, and channel spine points (feedthrough endpoints and wire
// branching points). Edges are zero-weight correspondence edges (terminal →
// position), branch edges (position → spine jog), trunk edges (horizontal
// channel runs), and feedthrough edges (vertical runs through a cell row).
//
// The interconnection wiring of the net is found by deleting non-bridge
// edges until the graph is a tree; bridges (edges whose deletion would
// disconnect the graph) are never deleted, and dangling non-terminal stubs
// exposed by a deletion are pruned automatically.
//
// Equivalent positions of one terminal are modeled as internally shorted
// (zero-weight correspondence edges through the terminal vertex), matching
// the physical reality of multi-tap ECL outputs: the final tree may connect
// through a terminal using two of its positions.
package rgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/grid"
)

// VKind classifies vertices.
type VKind int

const (
	// VTerm is a circuit terminal (cell pin or external terminal).
	VTerm VKind = iota
	// VPos is a candidate physical position of a terminal.
	VPos
	// VSpine is a point on a channel spine: a trunk junction, feedthrough
	// endpoint, or wire branching point.
	VSpine
)

// EKind classifies edges.
type EKind int

const (
	// ECorr is a zero-weight correspondence edge between a terminal and
	// one of its candidate positions.
	ECorr EKind = iota
	// EBranch is the jog from a pin position to the channel spine.
	EBranch
	// ETrunk is a horizontal run along a channel.
	ETrunk
	// EFeed is a vertical feedthrough run through a cell row.
	EFeed
)

func (k EKind) String() string {
	switch k {
	case ECorr:
		return "corr"
	case EBranch:
		return "branch"
	case ETrunk:
		return "trunk"
	case EFeed:
		return "feed"
	}
	return "?"
}

// Vertex is one routing-graph vertex.
type Vertex struct {
	Kind VKind
	Term int // terminal index within the net (driver first) for VTerm/VPos
	Ch   int // channel for VPos/VSpine (for VTerm: channel of its positions)
	Col  int // column for VPos/VSpine
}

// Edge is one routing-graph edge.
type Edge struct {
	U, V   int
	Kind   EKind
	Ch     int // channel of trunk/branch/corr edges; row of feed edges
	X1, X2 int // column interval (X1 <= X2); equal for vertical edges
	Len    float64
	Alive  bool
	Bridge bool
}

// FeedPos is an assigned feedthrough: the net crosses cell row Row at
// column Col.
type FeedPos struct {
	Row, Col int
}

// Graph is the routing graph of one net.
type Graph struct {
	Net   int
	Pitch int

	Verts []Vertex
	Edges []Edge
	adj   [][]int32 // edge ids per vertex (dead edges included; filter on Alive)
	// adjBack is the shared backing array the adj rows are views into,
	// filled by buildAdj once per (re)build.
	adjBack []int32

	// TermVert[i] is the vertex of terminal i (driver first, as returned
	// by circuit.Terminals).
	TermVert []int

	alive int // count of alive edges

	// ws is the reusable shortest-path/bridge/prune workspace, sized once
	// at Build. It makes the per-deletion loop allocation-free but also
	// makes a Graph unsafe for concurrent use; callers must shard work per
	// graph.
	ws dijkstraWS
}

// Build constructs Gr(n) for a net given its assigned feedthroughs. The
// feedthrough list must cover every row between the lowest and highest
// channel the net's terminals touch.
func Build(ckt *circuit.Circuit, geo *grid.Geometry, net int, feeds []FeedPos) (*Graph, error) {
	return BuildInto(nil, ckt, geo, net, feeds)
}

// BuildInto is Build reusing a recycled Graph's storage (vertex, edge,
// adjacency and workspace arrays) when recycled is non-nil. The reroute
// search builds and discards candidate graphs in a loop; recycling them
// keeps that path off the allocator. recycled must not be in use anywhere
// else — its previous contents are destroyed.
//
//bgr:hot
func BuildInto(recycled *Graph, ckt *circuit.Circuit, geo *grid.Geometry, net int, feeds []FeedPos) (*Graph, error) {
	g := recycled
	if g == nil {
		g = &Graph{}
	}
	terms := ckt.AppendTerminals(g.ws.terms[:0], net)
	g.ws.terms = terms
	if len(terms) < 2 {
		return nil, fmt.Errorf("rgraph: net %q has %d terminals", ckt.Nets[net].Name, len(terms))
	}
	g.Net, g.Pitch = net, ckt.Nets[net].Pitch
	g.Verts = g.Verts[:0]
	g.Edges = g.Edges[:0]
	g.TermVert = g.TermVert[:0]
	g.adj = g.adj[:0]
	g.alive = 0

	// Collect the per-terminal positions once, then the spine points per
	// channel — every terminal position column and both endpoints of every
	// feedthrough — as a sorted, deduplicated (channel, column) list.
	// Spine vertices are created in that order, so later lookups are
	// binary searches instead of map probes (Build runs once per net at
	// setup and again on every reroute rebuild).
	posBuf, posOff := g.ws.posBuf[:0], g.ws.posOff[:0]
	for _, t := range terms {
		posOff = append(posOff, int32(len(posBuf)))
		posBuf = ckt.AppendPositionsOf(posBuf, t)
	}
	posOff = append(posOff, int32(len(posBuf)))
	g.ws.posBuf, g.ws.posOff = posBuf, posOff
	spines := g.ws.spines[:0]
	minCh, maxCh := math.MaxInt32, -1
	for _, pos := range posBuf {
		spines = append(spines, spinePt{pos.Channel, pos.Col})
		if pos.Channel < minCh {
			minCh = pos.Channel
		}
		if pos.Channel > maxCh {
			maxCh = pos.Channel
		}
	}
	covered := g.ws.covered
	if cap(covered) < ckt.Rows {
		covered = make([]bool, ckt.Rows)
	}
	covered = covered[:ckt.Rows]
	for i := range covered {
		covered[i] = false
	}
	g.ws.covered = covered
	for _, f := range feeds {
		if f.Row < 0 || f.Row >= ckt.Rows {
			g.ws.spines = spines
			return nil, fmt.Errorf("rgraph: net %q feedthrough row %d out of range", ckt.Nets[net].Name, f.Row)
		}
		spines = append(spines, spinePt{f.Row, f.Col}, spinePt{f.Row + 1, f.Col})
		covered[f.Row] = true
	}
	g.ws.spines = spines
	for r := minCh; r < maxCh; r++ {
		if !covered[r] {
			return nil, fmt.Errorf("rgraph: net %q crosses row %d but has no feedthrough there", ckt.Nets[net].Name, r)
		}
	}
	sort.Slice(spines, func(i, j int) bool {
		if spines[i].ch != spines[j].ch {
			return spines[i].ch < spines[j].ch
		}
		return spines[i].col < spines[j].col
	})
	spines = dedupSpines(spines)
	g.ws.spines = spines
	// Reserve the vertex, edge and adjacency arrays in one shot so a fresh
	// build does not regrow them append by append.
	needV := len(spines) + len(terms) + len(posBuf)
	needE := len(spines) + len(feeds) + 2*len(posBuf)
	if cap(g.Verts) < needV {
		g.Verts = make([]Vertex, 0, needV)
	}
	if cap(g.Edges) < needE {
		g.Edges = make([]Edge, 0, needE)
	}
	if cap(g.TermVert) < len(terms) {
		g.TermVert = make([]int, 0, len(terms))
	}
	// spineVert answers (channel, col) → vertex; spine vertex ids are
	// allocated first and in spines order.
	spineVert := func(ch, col int) int {
		return sort.Search(len(spines), func(i int) bool {
			if spines[i].ch != ch {
				return spines[i].ch > ch
			}
			return spines[i].col >= col
		})
	}

	// Spine vertices and trunk edges.
	for i, sp := range spines {
		v := g.addVertex(Vertex{Kind: VSpine, Term: -1, Ch: sp.ch, Col: sp.col})
		if i > 0 && spines[i-1].ch == sp.ch {
			prev := spines[i-1].col
			g.addEdge(Edge{
				U: v - 1, V: v, Kind: ETrunk, Ch: sp.ch,
				X1: prev, X2: sp.col, Len: geo.SpanUm(prev, sp.col),
			})
		}
	}
	// Feedthrough edges.
	for _, f := range feeds {
		u := spineVert(f.Row, f.Col)
		v := spineVert(f.Row+1, f.Col)
		g.addEdge(Edge{
			U: u, V: v, Kind: EFeed, Ch: f.Row,
			X1: f.Col, X2: f.Col, Len: ckt.Tech.RowHeight,
		})
	}
	// Terminal, position vertices; correspondence and branch edges.
	for ti := range terms {
		positions := posBuf[posOff[ti]:posOff[ti+1]]
		tv := g.addVertex(Vertex{Kind: VTerm, Term: ti, Ch: positions[0].Channel, Col: positions[0].Col})
		g.TermVert = append(g.TermVert, tv)
		for _, pos := range positions {
			pv := g.addVertex(Vertex{Kind: VPos, Term: ti, Ch: pos.Channel, Col: pos.Col})
			g.addEdge(Edge{U: tv, V: pv, Kind: ECorr, Ch: pos.Channel, X1: pos.Col, X2: pos.Col, Len: 0})
			sv := spineVert(pos.Channel, pos.Col)
			g.addEdge(Edge{U: pv, V: sv, Kind: EBranch, Ch: pos.Channel, X1: pos.Col, X2: pos.Col, Len: ckt.Tech.BranchLen})
		}
	}
	g.buildAdj()
	g.ws.init(g)
	if !g.connectedFromAlive() {
		return nil, fmt.Errorf("rgraph: net %q routing graph is disconnected", ckt.Nets[net].Name)
	}
	g.RecomputeBridges()
	g.Prune(nil)
	return g, nil
}

// spinePt is a (channel, column) spine location used during Build.
type spinePt struct {
	ch, col int
}

// dedupSpines removes adjacent duplicates from a sorted spine list.
func dedupSpines(s []spinePt) []spinePt {
	out := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func (g *Graph) addVertex(v Vertex) int {
	g.Verts = append(g.Verts, v)
	return len(g.Verts) - 1
}

func (g *Graph) addEdge(e Edge) int {
	if e.X2 < e.X1 {
		e.X1, e.X2 = e.X2, e.X1
	}
	e.Alive = true
	id := len(g.Edges)
	g.Edges = append(g.Edges, e)
	g.alive++
	return id
}

// buildAdj fills the per-vertex incidence lists as views into one shared
// backing array, in edge-id order per vertex — the same order incremental
// appends during construction would produce, with two allocations instead
// of one per vertex.
func (g *Graph) buildAdj() {
	nv := len(g.Verts)
	if cap(g.adj) < nv {
		g.adj = make([][]int32, 0, nv)
	}
	g.adj = g.adj[:nv]
	deg := g.ws.degBuf
	if cap(deg) < nv {
		deg = make([]int32, nv)
	}
	deg = deg[:nv]
	for v := range deg {
		deg[v] = 0
	}
	g.ws.degBuf = deg
	for e := range g.Edges {
		deg[g.Edges[e].U]++
		deg[g.Edges[e].V]++
	}
	need := 2 * len(g.Edges)
	if cap(g.adjBack) < need {
		g.adjBack = make([]int32, need)
	}
	back := g.adjBack[:0]
	off := 0
	for v := 0; v < nv; v++ {
		g.adj[v] = back[off : off : off+int(deg[v])]
		off += int(deg[v])
	}
	for e := range g.Edges {
		g.adj[g.Edges[e].U] = append(g.adj[g.Edges[e].U], int32(e))
		g.adj[g.Edges[e].V] = append(g.adj[g.Edges[e].V], int32(e))
	}
}

// Clone deep-copies the graph (used by ECO re-optimization so the new
// routing can diverge without touching the old result). The clone gets a
// fresh shortest-path workspace: sharing one would race.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Net: g.Net, Pitch: g.Pitch, alive: g.alive}
	ng.Verts = append([]Vertex(nil), g.Verts...)
	ng.Edges = append([]Edge(nil), g.Edges...)
	ng.TermVert = append([]int(nil), g.TermVert...)
	ng.adj = make([][]int32, len(g.adj))
	for v := range g.adj {
		ng.adj[v] = append([]int32(nil), g.adj[v]...)
	}
	ng.ws.init(ng)
	return ng
}

// AliveEdges returns the ids of all alive edges.
func (g *Graph) AliveEdges() []int {
	out := make([]int, 0, g.alive)
	for i := range g.Edges {
		if g.Edges[i].Alive {
			out = append(out, i)
		}
	}
	return out
}

// NonBridges returns the ids of alive non-bridge edges: the deletion
// candidates N_b of the paper's initial routing loop.
func (g *Graph) NonBridges() []int {
	var out []int
	for i := range g.Edges {
		if g.Edges[i].Alive && !g.Edges[i].Bridge {
			out = append(out, i)
		}
	}
	return out
}

// AppendNonBridges appends the alive non-bridge edge ids to dst and
// returns it, letting hot callers reuse a compact scratch buffer.
func (g *Graph) AppendNonBridges(dst []int32) []int32 {
	for i := range g.Edges {
		if g.Edges[i].Alive && !g.Edges[i].Bridge {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// AliveCount returns the number of alive edges.
func (g *Graph) AliveCount() int { return g.alive }

func (g *Graph) other(e, v int) int {
	if g.Edges[e].U == v {
		return g.Edges[e].V
	}
	return g.Edges[e].U
}

// other32 is other over the compact int32 ids the hot loops traffic in.
func (g *Graph) other32(e, v int32) int32 {
	if int32(g.Edges[e].U) == v {
		return int32(g.Edges[e].V)
	}
	return int32(g.Edges[e].U)
}

func (g *Graph) degree(v int) int {
	d := 0
	for _, e := range g.adj[v] {
		if g.Edges[e].Alive {
			d++
		}
	}
	return d
}

func (g *Graph) connectedFromAlive() bool {
	start := -1
	need := 0
	touched := make([]bool, len(g.Verts))
	for i := range g.Edges {
		if g.Edges[i].Alive {
			touched[g.Edges[i].U] = true
			touched[g.Edges[i].V] = true
		}
	}
	for v := range g.Verts {
		if touched[v] || g.Verts[v].Kind == VTerm {
			need++
			if start == -1 {
				start = v
			}
		}
	}
	if start == -1 {
		return true
	}
	seen := make([]bool, len(g.Verts))
	seen[start] = true
	count := 1
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !g.Edges[e].Alive {
				continue
			}
			w := g.other(int(e), v)
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == need
}

// RecomputeBridges runs a DFS lowlink pass over the alive edges and updates
// every edge's Bridge flag. It returns the ids of edges whose flag flipped,
// so the caller can update the d_m density profile incrementally. The
// returned slice is workspace-backed: it is valid until the next
// RecomputeBridges call on this graph and must not be retained.
func (g *Graph) RecomputeBridges() (flipped []int) {
	n := len(g.Verts)
	w := &g.ws
	if len(w.disc) < n {
		w.disc = make([]int32, n)
		w.low = make([]int32, n)
	}
	if len(w.newBridge) < len(g.Edges) {
		w.newBridge = make([]bool, len(g.Edges))
	}
	disc, low := w.disc[:n], w.low[:n]
	newBridge := w.newBridge[:len(g.Edges)]
	for i := range disc {
		disc[i] = -1
	}
	for i := range newBridge {
		newBridge[i] = false
	}
	var timer int32

	stack := w.frames[:0]
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack[:0], bridgeFrame{v: int32(s), parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if int(f.idx) < len(g.adj[f.v]) {
				e := g.adj[f.v][f.idx]
				f.idx++
				if !g.Edges[e].Alive || e == f.parentEdge {
					continue
				}
				u := g.other32(e, f.v)
				if disc[u] == -1 {
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, bridgeFrame{v: u, parentEdge: e})
				} else if disc[u] < low[f.v] {
					low[f.v] = disc[u]
				}
				continue
			}
			// Pop: propagate lowlink to parent and classify the edge.
			fin := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fin.parentEdge >= 0 {
				p := &stack[len(stack)-1]
				if low[fin.v] < low[p.v] {
					low[p.v] = low[fin.v]
				}
				if low[fin.v] > disc[p.v] {
					newBridge[fin.parentEdge] = true
				}
			}
		}
	}
	w.frames = stack[:0]
	w.flipped = w.flipped[:0]
	for i := range g.Edges {
		if !g.Edges[i].Alive {
			continue
		}
		if g.Edges[i].Bridge != newBridge[i] {
			g.Edges[i].Bridge = newBridge[i]
			w.flipped = append(w.flipped, i)
		}
	}
	return w.flipped
}

// Delete kills a non-bridge edge and prunes any dangling non-terminal stubs
// it exposes. It returns every edge removed (the edge itself first). The
// caller is responsible for recomputing bridges afterwards. The returned
// slice is workspace-backed: it is valid until the next Delete call on this
// graph and must not be retained.
func (g *Graph) Delete(e int) ([]int, error) {
	if e < 0 || e >= len(g.Edges) {
		return nil, fmt.Errorf("rgraph: edge %d out of range", e)
	}
	if !g.Edges[e].Alive {
		return nil, fmt.Errorf("rgraph: edge %d already deleted", e)
	}
	if g.Edges[e].Bridge {
		return nil, fmt.Errorf("rgraph: edge %d is a bridge", e)
	}
	g.Edges[e].Alive = false
	g.alive--
	removed := append(g.ws.removed[:0], e)
	removed = g.Prune(removed)
	g.ws.removed = removed
	return removed, nil
}

// Prune repeatedly removes edges incident to degree-1 non-terminal
// vertices (dangling stubs that cannot carry any connection). Removed edge
// ids are appended to acc, which is returned.
func (g *Graph) Prune(acc []int) []int {
	queue := g.ws.pruneq[:0]
	for v := range g.Verts {
		if g.Verts[v].Kind != VTerm && g.degree(v) == 1 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if g.Verts[v].Kind == VTerm || g.degree(int(v)) != 1 {
			continue
		}
		for _, e := range g.adj[v] {
			if !g.Edges[e].Alive {
				continue
			}
			g.Edges[e].Alive = false
			g.alive--
			acc = append(acc, int(e))
			u := g.other32(e, v)
			if g.Verts[u].Kind != VTerm && g.degree(int(u)) == 1 {
				queue = append(queue, u)
			}
			break
		}
	}
	g.ws.pruneq = queue[:0]
	return acc
}

// IsTree reports whether the alive graph is a tree over its touched
// vertices (the initial-routing termination condition: no cycles left).
func (g *Graph) IsTree() bool {
	for i := range g.Edges {
		if g.Edges[i].Alive && !g.Edges[i].Bridge {
			return false
		}
	}
	return true
}

// Validate checks internal invariants; used by tests and the router's
// debug mode.
func (g *Graph) Validate() error {
	count := 0
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Alive {
			count++
		}
		if e.X2 < e.X1 {
			return fmt.Errorf("rgraph: edge %d interval reversed", i)
		}
		if e.Kind == ETrunk && e.X1 == e.X2 {
			return fmt.Errorf("rgraph: trunk edge %d has zero extent", i)
		}
		if e.Kind != ETrunk && e.Kind != EFeed && e.U == e.V {
			return fmt.Errorf("rgraph: edge %d is a self loop", i)
		}
	}
	if count != g.alive {
		return fmt.Errorf("rgraph: alive count %d != actual %d", g.alive, count)
	}
	if !g.connectedFromAlive() {
		return fmt.Errorf("rgraph: graph disconnected")
	}
	for _, tv := range g.TermVert {
		if g.degree(tv) == 0 {
			return fmt.Errorf("rgraph: terminal vertex %d isolated", tv)
		}
	}
	// Prune invariant: no dangling non-terminal stubs survive an edit.
	for v := range g.Verts {
		if g.Verts[v].Kind != VTerm && g.degree(v) == 1 {
			return fmt.Errorf("rgraph: non-terminal vertex %d dangles (prune missed it)", v)
		}
	}
	return nil
}
