// Package rgraph builds and manipulates the per-net routing graphs Gr(n)
// of Harada & Kitazawa §3.1 (Fig. 3).
//
// Vertices are the net's circuit terminals, their candidate physical
// positions, and channel spine points (feedthrough endpoints and wire
// branching points). Edges are zero-weight correspondence edges (terminal →
// position), branch edges (position → spine jog), trunk edges (horizontal
// channel runs), and feedthrough edges (vertical runs through a cell row).
//
// The interconnection wiring of the net is found by deleting non-bridge
// edges until the graph is a tree; bridges (edges whose deletion would
// disconnect the graph) are never deleted, and dangling non-terminal stubs
// exposed by a deletion are pruned automatically.
//
// Equivalent positions of one terminal are modeled as internally shorted
// (zero-weight correspondence edges through the terminal vertex), matching
// the physical reality of multi-tap ECL outputs: the final tree may connect
// through a terminal using two of its positions.
package rgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/grid"
)

// VKind classifies vertices.
type VKind int

const (
	// VTerm is a circuit terminal (cell pin or external terminal).
	VTerm VKind = iota
	// VPos is a candidate physical position of a terminal.
	VPos
	// VSpine is a point on a channel spine: a trunk junction, feedthrough
	// endpoint, or wire branching point.
	VSpine
)

// EKind classifies edges.
type EKind int

const (
	// ECorr is a zero-weight correspondence edge between a terminal and
	// one of its candidate positions.
	ECorr EKind = iota
	// EBranch is the jog from a pin position to the channel spine.
	EBranch
	// ETrunk is a horizontal run along a channel.
	ETrunk
	// EFeed is a vertical feedthrough run through a cell row.
	EFeed
)

func (k EKind) String() string {
	switch k {
	case ECorr:
		return "corr"
	case EBranch:
		return "branch"
	case ETrunk:
		return "trunk"
	case EFeed:
		return "feed"
	}
	return "?"
}

// Vertex is one routing-graph vertex.
type Vertex struct {
	Kind VKind
	Term int // terminal index within the net (driver first) for VTerm/VPos
	Ch   int // channel for VPos/VSpine (for VTerm: channel of its positions)
	Col  int // column for VPos/VSpine
}

// Edge is one routing-graph edge.
type Edge struct {
	U, V   int
	Kind   EKind
	Ch     int // channel of trunk/branch/corr edges; row of feed edges
	X1, X2 int // column interval (X1 <= X2); equal for vertical edges
	Len    float64
	Alive  bool
	Bridge bool
}

// FeedPos is an assigned feedthrough: the net crosses cell row Row at
// column Col.
type FeedPos struct {
	Row, Col int
}

// Graph is the routing graph of one net.
type Graph struct {
	Net   int
	Pitch int

	Verts []Vertex
	Edges []Edge
	adj   [][]int // edge ids per vertex (dead edges included; filter on Alive)

	// TermVert[i] is the vertex of terminal i (driver first, as returned
	// by circuit.Terminals).
	TermVert []int

	alive int // count of alive edges

	// ws is the reusable shortest-path workspace. It makes Tentative and
	// LengthExcluding allocation-light but also makes a Graph unsafe for
	// concurrent use; callers must shard work per graph.
	ws dijkstraWS
}

// Build constructs Gr(n) for a net given its assigned feedthroughs. The
// feedthrough list must cover every row between the lowest and highest
// channel the net's terminals touch.
func Build(ckt *circuit.Circuit, geo *grid.Geometry, net int, feeds []FeedPos) (*Graph, error) {
	terms := ckt.Terminals(net)
	if len(terms) < 2 {
		return nil, fmt.Errorf("rgraph: net %q has %d terminals", ckt.Nets[net].Name, len(terms))
	}
	g := &Graph{Net: net, Pitch: ckt.Nets[net].Pitch}

	// Collect spine points per channel — every terminal position column and
	// both endpoints of every feedthrough — as a sorted, deduplicated
	// (channel, column) list. Spine vertices are created in that order, so
	// later lookups are binary searches instead of map probes (Build runs
	// once per net at setup and again on every reroute rebuild).
	spines := make([]spinePt, 0, 4*len(feeds)+8)
	minCh, maxCh := math.MaxInt32, -1
	for _, t := range terms {
		for _, pos := range ckt.PositionsOf(t) {
			spines = append(spines, spinePt{pos.Channel, pos.Col})
			if pos.Channel < minCh {
				minCh = pos.Channel
			}
			if pos.Channel > maxCh {
				maxCh = pos.Channel
			}
		}
	}
	covered := make([]bool, ckt.Rows)
	for _, f := range feeds {
		if f.Row < 0 || f.Row >= ckt.Rows {
			return nil, fmt.Errorf("rgraph: net %q feedthrough row %d out of range", ckt.Nets[net].Name, f.Row)
		}
		spines = append(spines, spinePt{f.Row, f.Col}, spinePt{f.Row + 1, f.Col})
		covered[f.Row] = true
	}
	for r := minCh; r < maxCh; r++ {
		if !covered[r] {
			return nil, fmt.Errorf("rgraph: net %q crosses row %d but has no feedthrough there", ckt.Nets[net].Name, r)
		}
	}
	sort.Slice(spines, func(i, j int) bool {
		if spines[i].ch != spines[j].ch {
			return spines[i].ch < spines[j].ch
		}
		return spines[i].col < spines[j].col
	})
	spines = dedupSpines(spines)
	// spineVert answers (channel, col) → vertex; spine vertex ids are
	// allocated first and in spines order.
	spineVert := func(ch, col int) int {
		return sort.Search(len(spines), func(i int) bool {
			if spines[i].ch != ch {
				return spines[i].ch > ch
			}
			return spines[i].col >= col
		})
	}

	// Spine vertices and trunk edges.
	for i, sp := range spines {
		v := g.addVertex(Vertex{Kind: VSpine, Term: -1, Ch: sp.ch, Col: sp.col})
		if i > 0 && spines[i-1].ch == sp.ch {
			prev := spines[i-1].col
			g.addEdge(Edge{
				U: v - 1, V: v, Kind: ETrunk, Ch: sp.ch,
				X1: prev, X2: sp.col, Len: geo.SpanUm(prev, sp.col),
			})
		}
	}
	// Feedthrough edges.
	for _, f := range feeds {
		u := spineVert(f.Row, f.Col)
		v := spineVert(f.Row+1, f.Col)
		g.addEdge(Edge{
			U: u, V: v, Kind: EFeed, Ch: f.Row,
			X1: f.Col, X2: f.Col, Len: ckt.Tech.RowHeight,
		})
	}
	// Terminal, position vertices; correspondence and branch edges.
	for ti, t := range terms {
		positions := ckt.PositionsOf(t)
		tv := g.addVertex(Vertex{Kind: VTerm, Term: ti, Ch: positions[0].Channel, Col: positions[0].Col})
		g.TermVert = append(g.TermVert, tv)
		for _, pos := range positions {
			pv := g.addVertex(Vertex{Kind: VPos, Term: ti, Ch: pos.Channel, Col: pos.Col})
			g.addEdge(Edge{U: tv, V: pv, Kind: ECorr, Ch: pos.Channel, X1: pos.Col, X2: pos.Col, Len: 0})
			sv := spineVert(pos.Channel, pos.Col)
			g.addEdge(Edge{U: pv, V: sv, Kind: EBranch, Ch: pos.Channel, X1: pos.Col, X2: pos.Col, Len: ckt.Tech.BranchLen})
		}
	}
	if !g.connectedFromAlive() {
		return nil, fmt.Errorf("rgraph: net %q routing graph is disconnected", ckt.Nets[net].Name)
	}
	g.RecomputeBridges()
	g.Prune(nil)
	return g, nil
}

// spinePt is a (channel, column) spine location used during Build.
type spinePt struct {
	ch, col int
}

// dedupSpines removes adjacent duplicates from a sorted spine list.
func dedupSpines(s []spinePt) []spinePt {
	out := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func (g *Graph) addVertex(v Vertex) int {
	g.Verts = append(g.Verts, v)
	g.adj = append(g.adj, nil)
	return len(g.Verts) - 1
}

func (g *Graph) addEdge(e Edge) int {
	if e.X2 < e.X1 {
		e.X1, e.X2 = e.X2, e.X1
	}
	e.Alive = true
	id := len(g.Edges)
	g.Edges = append(g.Edges, e)
	g.adj[e.U] = append(g.adj[e.U], id)
	g.adj[e.V] = append(g.adj[e.V], id)
	g.alive++
	return id
}

// Clone deep-copies the graph (used by ECO re-optimization so the new
// routing can diverge without touching the old result). The clone starts
// with a fresh shortest-path workspace: sharing one would race.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Net: g.Net, Pitch: g.Pitch, alive: g.alive}
	ng.Verts = append([]Vertex(nil), g.Verts...)
	ng.Edges = append([]Edge(nil), g.Edges...)
	ng.TermVert = append([]int(nil), g.TermVert...)
	ng.adj = make([][]int, len(g.adj))
	for v := range g.adj {
		ng.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return ng
}

// AliveEdges returns the ids of all alive edges.
func (g *Graph) AliveEdges() []int {
	out := make([]int, 0, g.alive)
	for i := range g.Edges {
		if g.Edges[i].Alive {
			out = append(out, i)
		}
	}
	return out
}

// NonBridges returns the ids of alive non-bridge edges: the deletion
// candidates N_b of the paper's initial routing loop.
func (g *Graph) NonBridges() []int {
	return g.AppendNonBridges(nil)
}

// AppendNonBridges appends the alive non-bridge edge ids to dst and
// returns it, letting hot callers reuse a scratch buffer.
func (g *Graph) AppendNonBridges(dst []int) []int {
	for i := range g.Edges {
		if g.Edges[i].Alive && !g.Edges[i].Bridge {
			dst = append(dst, i)
		}
	}
	return dst
}

// AliveCount returns the number of alive edges.
func (g *Graph) AliveCount() int { return g.alive }

func (g *Graph) other(e, v int) int {
	if g.Edges[e].U == v {
		return g.Edges[e].V
	}
	return g.Edges[e].U
}

func (g *Graph) degree(v int) int {
	d := 0
	for _, e := range g.adj[v] {
		if g.Edges[e].Alive {
			d++
		}
	}
	return d
}

func (g *Graph) connectedFromAlive() bool {
	start := -1
	need := 0
	touched := make([]bool, len(g.Verts))
	for i := range g.Edges {
		if g.Edges[i].Alive {
			touched[g.Edges[i].U] = true
			touched[g.Edges[i].V] = true
		}
	}
	for v := range g.Verts {
		if touched[v] || g.Verts[v].Kind == VTerm {
			need++
			if start == -1 {
				start = v
			}
		}
	}
	if start == -1 {
		return true
	}
	seen := make([]bool, len(g.Verts))
	seen[start] = true
	count := 1
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !g.Edges[e].Alive {
				continue
			}
			w := g.other(e, v)
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == need
}

// RecomputeBridges runs a DFS lowlink pass over the alive edges and updates
// every edge's Bridge flag. It returns the ids of edges whose flag flipped,
// so the caller can update the d_m density profile incrementally.
func (g *Graph) RecomputeBridges() (flipped []int) {
	n := len(g.Verts)
	w := &g.ws
	if len(w.disc) < n {
		w.disc = make([]int, n)
		w.low = make([]int, n)
	}
	if len(w.newBridge) < len(g.Edges) {
		w.newBridge = make([]bool, len(g.Edges))
	}
	disc, low := w.disc[:n], w.low[:n]
	newBridge := w.newBridge[:len(g.Edges)]
	for i := range disc {
		disc[i] = -1
	}
	for i := range newBridge {
		newBridge[i] = false
	}
	timer := 0

	stack := w.frames[:0]
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack[:0], bridgeFrame{v: s, parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.v]) {
				e := g.adj[f.v][f.idx]
				f.idx++
				if !g.Edges[e].Alive || e == f.parentEdge {
					continue
				}
				w := g.other(e, f.v)
				if disc[w] == -1 {
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, bridgeFrame{v: w, parentEdge: e})
				} else if disc[w] < low[f.v] {
					low[f.v] = disc[w]
				}
				continue
			}
			// Pop: propagate lowlink to parent and classify the edge.
			fin := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fin.parentEdge >= 0 {
				p := &stack[len(stack)-1]
				if low[fin.v] < low[p.v] {
					low[p.v] = low[fin.v]
				}
				if low[fin.v] > disc[p.v] {
					newBridge[fin.parentEdge] = true
				}
			}
		}
	}
	w.frames = stack[:0]
	for i := range g.Edges {
		if !g.Edges[i].Alive {
			continue
		}
		if g.Edges[i].Bridge != newBridge[i] {
			g.Edges[i].Bridge = newBridge[i]
			flipped = append(flipped, i)
		}
	}
	return flipped
}

// Delete kills a non-bridge edge and prunes any dangling non-terminal stubs
// it exposes. It returns every edge removed (the edge itself first). The
// caller is responsible for recomputing bridges afterwards.
func (g *Graph) Delete(e int) ([]int, error) {
	if e < 0 || e >= len(g.Edges) {
		return nil, fmt.Errorf("rgraph: edge %d out of range", e)
	}
	if !g.Edges[e].Alive {
		return nil, fmt.Errorf("rgraph: edge %d already deleted", e)
	}
	if g.Edges[e].Bridge {
		return nil, fmt.Errorf("rgraph: edge %d is a bridge", e)
	}
	g.Edges[e].Alive = false
	g.alive--
	removed := []int{e}
	removed = g.Prune(removed)
	return removed, nil
}

// Prune repeatedly removes edges incident to degree-1 non-terminal
// vertices (dangling stubs that cannot carry any connection). Removed edge
// ids are appended to acc, which is returned.
func (g *Graph) Prune(acc []int) []int {
	queue := make([]int, 0, 8)
	for v := range g.Verts {
		if g.Verts[v].Kind != VTerm && g.degree(v) == 1 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if g.Verts[v].Kind == VTerm || g.degree(v) != 1 {
			continue
		}
		for _, e := range g.adj[v] {
			if !g.Edges[e].Alive {
				continue
			}
			g.Edges[e].Alive = false
			g.alive--
			acc = append(acc, e)
			w := g.other(e, v)
			if g.Verts[w].Kind != VTerm && g.degree(w) == 1 {
				queue = append(queue, w)
			}
			break
		}
	}
	return acc
}

// IsTree reports whether the alive graph is a tree over its touched
// vertices (the initial-routing termination condition: no cycles left).
func (g *Graph) IsTree() bool {
	return len(g.NonBridges()) == 0
}

// Validate checks internal invariants; used by tests and the router's
// debug mode.
func (g *Graph) Validate() error {
	count := 0
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Alive {
			count++
		}
		if e.X2 < e.X1 {
			return fmt.Errorf("rgraph: edge %d interval reversed", i)
		}
		if e.Kind == ETrunk && e.X1 == e.X2 {
			return fmt.Errorf("rgraph: trunk edge %d has zero extent", i)
		}
		if e.Kind != ETrunk && e.Kind != EFeed && e.U == e.V {
			return fmt.Errorf("rgraph: edge %d is a self loop", i)
		}
	}
	if count != g.alive {
		return fmt.Errorf("rgraph: alive count %d != actual %d", g.alive, count)
	}
	if !g.connectedFromAlive() {
		return fmt.Errorf("rgraph: graph disconnected")
	}
	for _, tv := range g.TermVert {
		if g.degree(tv) == 0 {
			return fmt.Errorf("rgraph: terminal vertex %d isolated", tv)
		}
	}
	// Prune invariant: no dangling non-terminal stubs survive an edit.
	for v := range g.Verts {
		if g.Verts[v].Kind != VTerm && g.degree(v) == 1 {
			return fmt.Errorf("rgraph: non-terminal vertex %d dangles (prune missed it)", v)
		}
	}
	return nil
}
