package rgraph

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/grid"
)

// bruteSteiner finds the minimum-length connected subgraph of the alive
// edges that touches every terminal vertex, by subset enumeration. Only
// usable on tiny graphs (<= ~18 alive edges).
func bruteSteiner(g *Graph) float64 {
	alive := g.AliveEdges()
	if len(alive) > 20 {
		panic("graph too large for brute force")
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(alive); mask++ {
		// Quick pruning: cheaper subsets first is unnecessary; just skip
		// sets already longer than the best.
		var length float64
		for i, e := range alive {
			if mask&(1<<i) != 0 {
				length += g.Edges[e].Len
			}
		}
		if length >= best {
			continue
		}
		// Connectivity over the chosen edges, covering all terminals.
		parent := make(map[int]int)
		var find func(x int) int
		find = func(x int) int {
			if p, ok := parent[x]; ok && p != x {
				root := find(p)
				parent[x] = root
				return root
			}
			parent[x] = x
			return x
		}
		for i, e := range alive {
			if mask&(1<<i) != 0 {
				a, b := find(g.Edges[e].U), find(g.Edges[e].V)
				if a != b {
					parent[a] = b
				}
			}
		}
		root := find(g.TermVert[0])
		ok := true
		for _, tv := range g.TermVert[1:] {
			if _, seen := parent[tv]; !seen || find(tv) != root {
				ok = false
				break
			}
		}
		if ok {
			best = length
		}
	}
	return best
}

// TestTentativeTreeNearOptimal quantifies the §3.2 estimate: the
// shortest-path-tree union is never below the true minimum Steiner tree
// in Gr(n), and on the sample circuits it stays within 25% of it.
func TestTentativeTreeNearOptimal(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := build()
		geo, err := grid.New(ckt)
		if err != nil {
			t.Fatal(err)
		}
		for n := range ckt.Nets {
			g, err := Build(ckt, geo, n, feedsFor(t, ckt, geo, n))
			if err != nil {
				t.Fatalf("net %s: %v", ckt.Nets[n].Name, err)
			}
			if len(g.AliveEdges()) > 18 {
				continue
			}
			tree, err := g.Tentative()
			if err != nil {
				t.Fatal(err)
			}
			opt := bruteSteiner(g)
			if math.IsInf(opt, 1) {
				t.Fatalf("net %s: no Steiner tree found", ckt.Nets[n].Name)
			}
			if tree.Length < opt-1e-9 {
				t.Fatalf("net %s: tentative %v below the optimum %v (impossible)",
					ckt.Nets[n].Name, tree.Length, opt)
			}
			if tree.Length > opt*1.25+1e-9 {
				t.Errorf("net %s: tentative %v vs optimal Steiner %v (+%.0f%%)",
					ckt.Nets[n].Name, tree.Length, opt, (tree.Length/opt-1)*100)
			}
		}
	}
}
