package rgraph

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Tree is a tentative tree (§3.2): the union of the shortest paths from
// the driving terminal to every other terminal over the alive edges.
type Tree struct {
	// Edges lists the ids of the union, in no particular order.
	Edges []int
	// InTree flags membership per edge id.
	InTree []bool
	// Length is the total wire length of the union, µm.
	Length float64
	// SinkDist[i] is the shortest-path length (µm) from the driver to
	// terminal i (SinkDist[0] == 0 for the driver itself).
	SinkDist []float64
}

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; x := old[len(old)-1]; *q = old[:len(old)-1]; return x }

// Tentative computes the tentative tree with Dijkstra's shortest-path
// algorithm from the driving terminal (paper §3.2).
func (g *Graph) Tentative() (*Tree, error) {
	return g.tentative(-1)
}

// TentativeWeighted computes a tentative tree under a custom edge cost
// (e.g. congestion-inflated lengths for a sequential baseline router).
// Tree.Length still reports physical length; SinkDist is in cost units.
func (g *Graph) TentativeWeighted(cost func(e int) float64) (*Tree, error) {
	return g.tentativeCost(-1, cost)
}

// KeepOnly kills every alive edge outside the tree, leaving exactly the
// tree in the graph, and updates the bookkeeping.
func (g *Graph) KeepOnly(t *Tree) {
	for e := range g.Edges {
		if g.Edges[e].Alive && !t.InTree[e] {
			g.Edges[e].Alive = false
			g.alive--
		}
	}
}

// LengthExcluding returns the tentative-tree length that would result from
// deleting edge skip: the d'-generating estimate behind LM(e,P). It fails
// if the exclusion disconnects some terminal (skip was a bridge).
func (g *Graph) LengthExcluding(skip int) (float64, error) {
	t, err := g.tentative(skip)
	if err != nil {
		return 0, err
	}
	return t.Length, nil
}

func (g *Graph) tentative(skip int) (*Tree, error) {
	return g.tentativeCost(skip, nil)
}

func (g *Graph) tentativeCost(skip int, cost func(e int) float64) (*Tree, error) {
	n := len(g.Verts)
	dist := make([]float64, n)
	prevEdge := make([]int, n)
	for v := range dist {
		dist[v] = math.Inf(1)
		prevEdge[v] = -1
	}
	src := g.TermVert[0]
	dist[src] = 0
	q := pq{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			if !g.Edges[e].Alive || e == skip {
				continue
			}
			c := g.Edges[e].Len
			if cost != nil {
				c = cost(e)
			}
			w := g.other(e, it.v)
			if d := it.dist + c; d < dist[w] {
				dist[w] = d
				prevEdge[w] = e
				heap.Push(&q, pqItem{v: w, dist: d})
			}
		}
	}
	t := &Tree{InTree: make([]bool, len(g.Edges)), SinkDist: make([]float64, len(g.TermVert))}
	for ti, tv := range g.TermVert {
		if math.IsInf(dist[tv], 1) {
			return nil, fmt.Errorf("rgraph: terminal %d unreachable from driver", ti)
		}
		t.SinkDist[ti] = dist[tv]
		for v := tv; prevEdge[v] != -1; {
			e := prevEdge[v]
			if t.InTree[e] {
				break // the rest of the path is already in the union
			}
			t.InTree[e] = true
			t.Edges = append(t.Edges, e)
			t.Length += g.Edges[e].Len
			v = g.other(e, v)
		}
	}
	return t, nil
}

// FinalTree returns the alive graph as a Tree once routing has finished
// (IsTree). Unlike Tentative it includes every alive edge; for a finished
// net the two coincide up to pruned stubs.
func (g *Graph) FinalTree() *Tree {
	t := &Tree{InTree: make([]bool, len(g.Edges)), SinkDist: make([]float64, len(g.TermVert))}
	for i := range g.Edges {
		if g.Edges[i].Alive {
			t.InTree[i] = true
			t.Edges = append(t.Edges, i)
			t.Length += g.Edges[i].Len
		}
	}
	return t
}

// SkewPs returns the spread (max - min) of the per-sink Elmore wire
// delays over a tree: the clock-skew measure that motivates the paper's
// multi-pitch wires (§4.2, wider wire → lower resistance → lower skew).
func (g *Graph) SkewPs(t *Tree, ckt *circuit.Circuit, rPerUm float64) float64 {
	d := g.ElmoreDelays(t, ckt, rPerUm)
	if len(d) < 2 {
		return 0
	}
	minD, maxD := math.Inf(1), math.Inf(-1)
	for _, x := range d[1:] {
		if x < minD {
			minD = x
		}
		if x > maxD {
			maxD = x
		}
	}
	return maxD - minD
}

// ElmoreDelays computes the per-sink Elmore wire delays (ps) over a tree,
// for the paper's RC-extension option. rPerUm is the wire resistance in
// kΩ/µm (so kΩ × fF = ps); capacitance comes from the net's pitch width
// and the terminals' fan-in loads. The returned slice is indexed like the
// net's terminals; entry 0 (the driver) is zero.
func (g *Graph) ElmoreDelays(t *Tree, ckt *circuit.Circuit, rPerUm float64) []float64 {
	capPerUm := ckt.Tech.WireCapPerUm(g.Pitch)
	terms := ckt.Terminals(g.Net)

	// Tree adjacency restricted to tree edges.
	adj := make([][]int, len(g.Verts))
	for _, e := range t.Edges {
		adj[g.Edges[e].U] = append(adj[g.Edges[e].U], e)
		adj[g.Edges[e].V] = append(adj[g.Edges[e].V], e)
	}
	// Pin loads at terminal vertices.
	pinCap := make([]float64, len(g.Verts))
	for ti, tv := range g.TermVert {
		if ti > 0 {
			pinCap[tv] = ckt.FinOf(terms[ti])
		}
	}
	root := g.TermVert[0]

	// Post-order subtree capacitances.
	subCap := make([]float64, len(g.Verts))
	parentEdge := make([]int, len(g.Verts))
	order := make([]int, 0, len(g.Verts))
	seen := make([]bool, len(g.Verts))
	for v := range parentEdge {
		parentEdge[v] = -1
	}
	stack := []int{root}
	seen[root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, e := range adj[v] {
			w := g.other(e, v)
			if !seen[w] {
				seen[w] = true
				parentEdge[w] = e
				stack = append(stack, w)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		subCap[v] += pinCap[v]
		if pe := parentEdge[v]; pe != -1 {
			wireCap := g.Edges[pe].Len * capPerUm
			up := g.other(pe, v)
			subCap[up] += subCap[v] + wireCap
		}
	}
	// Pre-order delay accumulation: delay at child = delay at parent +
	// R(edge)·(C(edge)/2 + C(subtree below edge)).
	delay := make([]float64, len(g.Verts))
	for _, v := range order {
		if pe := parentEdge[v]; pe != -1 {
			up := g.other(pe, v)
			r := rPerUm * g.Edges[pe].Len
			c := g.Edges[pe].Len*capPerUm/2 + subCap[v]
			delay[v] = delay[up] + r*c
		}
	}
	out := make([]float64, len(g.TermVert))
	for ti, tv := range g.TermVert {
		out[ti] = delay[tv]
	}
	out[0] = 0
	return out
}
