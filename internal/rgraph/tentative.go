package rgraph

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
)

// Tree is a tentative tree (§3.2): the union of the shortest paths from
// the driving terminal to every other terminal over the alive edges.
type Tree struct {
	// Edges lists the ids of the union, in no particular order.
	Edges []int
	// InTree flags membership per edge id.
	InTree []bool
	// Length is the total wire length of the union, µm.
	Length float64
	// SinkDist[i] is the shortest-path length (µm) from the driver to
	// terminal i (SinkDist[0] == 0 for the driver itself).
	SinkDist []float64
}

// treePool recycles Tree objects (and their slice storage) so callers that
// do not hold a previous tree to reuse still avoid a fresh allocation per
// tentative-tree computation.
var treePool = sync.Pool{New: func() any { return new(Tree) }}

// GetTree returns a Tree from the package pool. Its slices keep whatever
// capacity they had when released; the tentative-tree writers reslice and
// overwrite them fully.
//
//bgr:allow poolpair -- ownership transfers to the caller; PutTree is the paired release and the tree is fully overwritten before reads
func GetTree() *Tree { return treePool.Get().(*Tree) }

// PutTree releases a Tree back to the pool. The caller must not retain any
// reference to the tree or its slices afterwards.
func PutTree(t *Tree) {
	if t != nil {
		treePool.Put(t)
	}
}

// pqItem is one binary-heap entry of the Dijkstra priority queue.
type pqItem struct {
	v    int32
	dist float64
}

// pq is a hand-rolled binary min-heap over pqItem. container/heap would
// box every Push/Pop through an interface value, allocating on each edge
// relaxation of the hot d'(e) loop; this keeps the queue a flat slice.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].dist <= s[i].dist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*q = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].dist < s[l].dist {
			m = r
		}
		if s[i].dist <= s[m].dist {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// dijkstraWS is the per-graph scratch space reused across every hot
// per-deletion computation: Dijkstra shortest paths, bridge recomputation,
// prune sweeps and Elmore walks. It is sized once when the graph is built
// (initWS), so the steady-state route loop never calls make. Vertex state
// is invalidated in O(1) by bumping a generation counter; entries are live
// only when their stamp matches the current generation. A Graph's methods
// share this workspace, so a Graph must not be used from two goroutines
// concurrently (the router shards work by net, which guarantees that).
type dijkstraWS struct {
	//bgr:owned
	dist []float64
	//bgr:owned -- edge id arriving at v on the shortest path, -1 for source
	prev []int32
	//bgr:owned
	stamp []uint32
	gen   uint32
	q     pq

	// isTerm flags terminal vertices; doneStamp marks terminals finalized
	// (popped) this generation. Dijkstra stops once every terminal is
	// finalized: distances and prev chains of shortest terminal paths are
	// final at that point, so the tail of the search changes nothing the
	// callers read.
	isTerm    []bool
	doneStamp []uint32

	edgeStamp []uint32 // tree-union membership stamps for lengthExcluding
	edgeGen   uint32

	// RecomputeBridges scratch (same single-goroutine-per-graph contract).
	disc, low []int32
	newBridge []bool
	frames    []bridgeFrame
	flipped   []int // RecomputeBridges result buffer, overwritten per call

	// Delete/Prune scratch. removed is the result buffer returned by
	// Delete (overwritten by the next Delete on this graph); pruneq is the
	// dangling-stub work list.
	removed []int
	pruneq  []int32

	// Build scratch: the sorted spine-point list, the per-row
	// feedthrough-coverage marks, and the terminal/position buffers, all
	// reused across BuildInto rebuilds. posOff[i]:posOff[i+1] delimits
	// terminal i's positions within posBuf.
	spines  []spinePt
	covered []bool
	terms   []circuit.PinRef
	posBuf  []circuit.Position
	posOff  []int32
	degBuf  []int32 // buildAdj per-vertex degree counts

	// Elmore-walk scratch (ElmoreDelays): CSR tree adjacency plus the
	// capacitance/delay arrays, all vertex- or edge-sized.
	elmStart  []int32
	elmEdges  []int32
	elmParent []int32
	elmOrder  []int32
	elmCapPin []float64
	elmCapSub []float64
	elmDelay  []float64
}

// bridgeFrame is one explicit-stack DFS frame of RecomputeBridges.
type bridgeFrame struct {
	v, parentEdge int32
	idx           int32
}

// init sizes every workspace array to the graph and records its terminal
// set. Build and Clone call it once; after that the per-deletion loop only
// reslices.
func (w *dijkstraWS) init(g *Graph) {
	nV, nE := len(g.Verts), len(g.Edges)
	if cap(w.dist) < nV {
		w.dist = make([]float64, nV)
		w.prev = make([]int32, nV)
		w.stamp = make([]uint32, nV)
		w.doneStamp = make([]uint32, nV)
		w.disc = make([]int32, nV)
		w.low = make([]int32, nV)
		w.gen = 0
	}
	if cap(w.isTerm) < nV {
		w.isTerm = make([]bool, nV)
	}
	w.isTerm = w.isTerm[:nV]
	for i := range w.isTerm {
		w.isTerm[i] = false
	}
	for _, tv := range g.TermVert {
		w.isTerm[tv] = true
	}
	if cap(w.newBridge) < nE {
		w.newBridge = make([]bool, nE)
	}
	if cap(w.edgeStamp) < nE {
		w.edgeStamp = make([]uint32, nE)
		w.edgeGen = 0
	}
}

// reset sizes the workspace to the graph and starts a fresh generation.
func (w *dijkstraWS) reset(nVerts int) {
	if len(w.dist) < nVerts {
		w.dist = make([]float64, nVerts)
		w.prev = make([]int32, nVerts)
		w.stamp = make([]uint32, nVerts)
		w.doneStamp = make([]uint32, nVerts)
		w.gen = 0
	}
	w.gen++
	if w.gen == 0 { // stamp wrap: re-zero so stale stamps cannot match
		for i := range w.stamp {
			w.stamp[i] = 0
			w.doneStamp[i] = 0
		}
		w.gen = 1
	}
	w.q = w.q[:0]
}

// distAt reads v's tentative distance, +Inf when untouched this run.
func (w *dijkstraWS) distAt(v int32) float64 {
	if w.stamp[v] == w.gen {
		return w.dist[v]
	}
	return math.Inf(1)
}

func (w *dijkstraWS) set(v int32, d float64, prevEdge int32) {
	w.dist[v] = d
	w.prev[v] = prevEdge
	w.stamp[v] = w.gen
}

// prevAt reads v's arrival edge, -1 when v was never reached.
func (w *dijkstraWS) prevAt(v int32) int32 {
	if w.stamp[v] == w.gen {
		return w.prev[v]
	}
	return -1
}

// markEdges starts a fresh edge-union generation sized to the graph.
func (w *dijkstraWS) markEdges(nEdges int) {
	if len(w.edgeStamp) < nEdges {
		w.edgeStamp = make([]uint32, nEdges)
		w.edgeGen = 0
	}
	w.edgeGen++
	if w.edgeGen == 0 {
		for i := range w.edgeStamp {
			w.edgeStamp[i] = 0
		}
		w.edgeGen = 1
	}
}

func (w *dijkstraWS) edgeMarked(e int32) bool { return w.edgeStamp[e] == w.edgeGen }
func (w *dijkstraWS) markEdge(e int32)        { w.edgeStamp[e] = w.edgeGen }

// Tentative computes the tentative tree with Dijkstra's shortest-path
// algorithm from the driving terminal (paper §3.2). The returned tree
// comes from the package pool; callers done with it may PutTree it back.
func (g *Graph) Tentative() (*Tree, error) {
	return g.tentativeCostInto(-1, nil, GetTree())
}

// TentativeInto is Tentative reusing a previous tree's storage (prev may
// be nil). The returned tree aliases prev's slices when they fit, so prev
// must not be read afterwards — the router's per-deletion tree refresh
// would otherwise allocate three slices per deletion.
//
//bgr:hot
func (g *Graph) TentativeInto(prev *Tree) (*Tree, error) {
	return g.tentativeCostInto(-1, nil, prev)
}

// TentativeWeighted computes a tentative tree under a custom edge cost
// (e.g. congestion-inflated lengths for a sequential baseline router).
// Tree.Length still reports physical length; SinkDist is in cost units.
func (g *Graph) TentativeWeighted(cost func(e int) float64) (*Tree, error) {
	return g.tentativeCost(-1, cost)
}

// KeepOnly kills every alive edge outside the tree, leaving exactly the
// tree in the graph, and updates the bookkeeping.
func (g *Graph) KeepOnly(t *Tree) {
	for e := range g.Edges {
		if g.Edges[e].Alive && !t.InTree[e] {
			g.Edges[e].Alive = false
			g.alive--
		}
	}
}

// LengthExcluding returns the tentative-tree length that would result from
// deleting edge skip: the d'-generating estimate behind LM(e,P). It fails
// if the exclusion disconnects some terminal (skip was a bridge). Unlike
// Tentative it allocates nothing: the whole computation runs inside the
// graph's reusable workspace.
func (g *Graph) LengthExcluding(skip int) (float64, error) {
	g.runDijkstra(skip, nil)
	w := &g.ws
	w.markEdges(len(g.Edges))
	var length float64
	for ti, tv := range g.TermVert {
		v := int32(tv)
		if math.IsInf(w.distAt(v), 1) {
			return 0, fmt.Errorf("rgraph: terminal %d unreachable from driver", ti)
		}
		for w.prevAt(v) != -1 {
			e := w.prevAt(v)
			if w.edgeMarked(e) {
				break // the rest of the path is already in the union
			}
			w.markEdge(e)
			length += g.Edges[e].Len
			v = g.other32(e, v)
		}
	}
	return length, nil
}

func (g *Graph) tentative(skip int) (*Tree, error) {
	return g.tentativeCost(skip, nil)
}

// runDijkstra fills the workspace with shortest paths from the driving
// terminal over the alive edges (minus skip), under the given edge cost
// (nil means physical length). The search stops as soon as every terminal
// is finalized: with non-negative costs, a finalized vertex's distance and
// arrival edge can never change, and every vertex on a shortest terminal
// path has distance ≤ the terminal's, so the prev chains the callers walk
// are already final — the skipped tail of the search only settles vertices
// no terminal path runs through.
func (g *Graph) runDijkstra(skip int, cost func(e int) float64) {
	w := &g.ws
	w.reset(len(g.Verts))
	src := int32(g.TermVert[0])
	w.set(src, 0, -1)
	w.q.push(pqItem{v: src, dist: 0})
	remaining := len(g.TermVert)
	for len(w.q) > 0 && remaining > 0 {
		it := w.q.pop()
		if it.dist > w.distAt(it.v) {
			continue
		}
		if w.isTerm[it.v] && w.doneStamp[it.v] != w.gen {
			w.doneStamp[it.v] = w.gen
			remaining--
		}
		for _, e := range g.adj[it.v] {
			if !g.Edges[e].Alive || int(e) == skip {
				continue
			}
			c := g.Edges[e].Len
			if cost != nil {
				c = cost(int(e))
			}
			v := g.other32(e, it.v)
			if d := it.dist + c; d < w.distAt(v) {
				w.set(v, d, e)
				w.q.push(pqItem{v: v, dist: d})
			}
		}
	}
}

func (g *Graph) tentativeCost(skip int, cost func(e int) float64) (*Tree, error) {
	return g.tentativeCostInto(skip, cost, nil)
}

func (g *Graph) tentativeCostInto(skip int, cost func(e int) float64, prev *Tree) (*Tree, error) {
	g.runDijkstra(skip, cost)
	w := &g.ws
	t := prev
	if t == nil {
		t = GetTree()
	}
	if cap(t.InTree) >= len(g.Edges) {
		t.InTree = t.InTree[:len(g.Edges)]
		for i := range t.InTree {
			t.InTree[i] = false
		}
	} else {
		t.InTree = make([]bool, len(g.Edges))
	}
	if cap(t.SinkDist) >= len(g.TermVert) {
		t.SinkDist = t.SinkDist[:len(g.TermVert)]
	} else {
		t.SinkDist = make([]float64, len(g.TermVert))
	}
	t.Edges = t.Edges[:0]
	t.Length = 0
	for ti, tv := range g.TermVert {
		v := int32(tv)
		if math.IsInf(w.distAt(v), 1) {
			return nil, fmt.Errorf("rgraph: terminal %d unreachable from driver", ti)
		}
		t.SinkDist[ti] = w.distAt(v)
		for w.prevAt(v) != -1 {
			e := w.prevAt(v)
			if t.InTree[e] {
				break // the rest of the path is already in the union
			}
			t.InTree[e] = true
			t.Edges = append(t.Edges, int(e))
			t.Length += g.Edges[e].Len
			v = g.other32(e, v)
		}
	}
	return t, nil
}

// FinalTree returns the alive graph as a Tree once routing has finished
// (IsTree). Unlike Tentative it includes every alive edge; for a finished
// net the two coincide up to pruned stubs. The tree comes from the package
// pool; callers done with it may PutTree it back.
func (g *Graph) FinalTree() *Tree {
	t := GetTree()
	if cap(t.InTree) >= len(g.Edges) {
		t.InTree = t.InTree[:len(g.Edges)]
		for i := range t.InTree {
			t.InTree[i] = false
		}
	} else {
		t.InTree = make([]bool, len(g.Edges))
	}
	if cap(t.SinkDist) >= len(g.TermVert) {
		t.SinkDist = t.SinkDist[:len(g.TermVert)]
		for i := range t.SinkDist {
			t.SinkDist[i] = 0
		}
	} else {
		t.SinkDist = make([]float64, len(g.TermVert))
	}
	t.Edges = t.Edges[:0]
	t.Length = 0
	for i := range g.Edges {
		if g.Edges[i].Alive {
			t.InTree[i] = true
			t.Edges = append(t.Edges, i)
			t.Length += g.Edges[i].Len
		}
	}
	return t
}

// SkewPs returns the spread (max - min) of the per-sink Elmore wire
// delays over a tree: the clock-skew measure that motivates the paper's
// multi-pitch wires (§4.2, wider wire → lower resistance → lower skew).
func (g *Graph) SkewPs(t *Tree, ckt *circuit.Circuit, rPerUm float64) float64 {
	d := g.ElmoreDelays(t, ckt, rPerUm)
	if len(d) < 2 {
		return 0
	}
	minD, maxD := math.Inf(1), math.Inf(-1)
	for _, x := range d[1:] {
		if x < minD {
			minD = x
		}
		if x > maxD {
			maxD = x
		}
	}
	return maxD - minD
}

// ElmoreDelays computes the per-sink Elmore wire delays (ps) over a tree,
// for the paper's RC-extension option. rPerUm is the wire resistance in
// kΩ/µm (so kΩ × fF = ps); capacitance comes from the net's pitch width
// and the terminals' fan-in loads. The returned slice is indexed like the
// net's terminals; entry 0 (the driver) is zero.
func (g *Graph) ElmoreDelays(t *Tree, ckt *circuit.Circuit, rPerUm float64) []float64 {
	return g.ElmoreDelaysInto(nil, t, ckt, rPerUm)
}

// ElmoreDelaysInto is ElmoreDelays writing into dst (grown when needed):
// everything but the result lives in the graph's workspace, so the
// router's per-refresh delay derivation does not allocate.
func (g *Graph) ElmoreDelaysInto(dst []float64, t *Tree, ckt *circuit.Circuit, rPerUm float64) []float64 {
	capPerUm := ckt.Tech.WireCapPerUm(g.Pitch)
	terms := ckt.Terminals(g.Net)
	w := &g.ws
	nV := len(g.Verts)

	// CSR adjacency restricted to tree edges: count, prefix-sum, fill.
	if cap(w.elmStart) < nV+1 {
		w.elmStart = make([]int32, nV+1)
		w.elmParent = make([]int32, nV)
		w.elmOrder = make([]int32, 0, nV)
		w.elmCapPin = make([]float64, nV)
		w.elmCapSub = make([]float64, nV)
		w.elmDelay = make([]float64, nV)
	}
	start := w.elmStart[:nV+1]
	for i := range start {
		start[i] = 0
	}
	for _, e := range t.Edges {
		start[g.Edges[e].U+1]++
		start[g.Edges[e].V+1]++
	}
	for v := 0; v < nV; v++ {
		start[v+1] += start[v]
	}
	if cap(w.elmEdges) < 2*len(t.Edges) {
		w.elmEdges = make([]int32, 2*len(t.Edges))
	}
	edges := w.elmEdges[:2*len(t.Edges)]
	fill := w.elmParent[:nV] // borrow as the running CSR cursor
	for v := 0; v < nV; v++ {
		fill[v] = 0
	}
	for _, e := range t.Edges {
		u, v := g.Edges[e].U, g.Edges[e].V
		edges[start[u]+fill[u]] = int32(e)
		fill[u]++
		edges[start[v]+fill[v]] = int32(e)
		fill[v]++
	}

	// Pin loads at terminal vertices.
	pinCap := w.elmCapPin[:nV]
	for i := range pinCap {
		pinCap[i] = 0
	}
	for ti, tv := range g.TermVert {
		if ti > 0 {
			pinCap[tv] = ckt.FinOf(terms[ti])
		}
	}
	root := int32(g.TermVert[0])

	// Post-order subtree capacitances over the tree DFS order.
	subCap := w.elmCapSub[:nV]
	parentEdge := w.elmParent[:nV]
	for v := range parentEdge {
		parentEdge[v] = -1
		subCap[v] = 0
	}
	order := w.elmOrder[:0]
	w.reset(nV) // borrow the stamp array as the visited set
	w.stamp[root] = w.gen
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, e := range edges[start[v]:start[v+1]] {
			u := g.other32(e, v)
			if w.stamp[u] != w.gen {
				w.stamp[u] = w.gen
				parentEdge[u] = e
				order = append(order, u)
			}
		}
	}
	w.elmOrder = order
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		subCap[v] += pinCap[v]
		if pe := parentEdge[v]; pe != -1 {
			wireCap := g.Edges[pe].Len * capPerUm
			up := g.other32(pe, v)
			subCap[up] += subCap[v] + wireCap
		}
	}
	// Pre-order delay accumulation: delay at child = delay at parent +
	// R(edge)·(C(edge)/2 + C(subtree below edge)).
	delay := w.elmDelay[:nV]
	delay[root] = 0
	for _, v := range order {
		if pe := parentEdge[v]; pe != -1 {
			up := g.other32(pe, v)
			r := rPerUm * g.Edges[pe].Len
			c := g.Edges[pe].Len*capPerUm/2 + subCap[v]
			delay[v] = delay[up] + r*c
		}
	}
	if cap(dst) >= len(g.TermVert) {
		dst = dst[:len(g.TermVert)]
	} else {
		dst = make([]float64, len(g.TermVert))
	}
	for ti, tv := range g.TermVert {
		dst[ti] = delay[tv]
	}
	dst[0] = 0
	return dst
}
