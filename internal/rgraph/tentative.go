package rgraph

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Tree is a tentative tree (§3.2): the union of the shortest paths from
// the driving terminal to every other terminal over the alive edges.
type Tree struct {
	// Edges lists the ids of the union, in no particular order.
	Edges []int
	// InTree flags membership per edge id.
	InTree []bool
	// Length is the total wire length of the union, µm.
	Length float64
	// SinkDist[i] is the shortest-path length (µm) from the driver to
	// terminal i (SinkDist[0] == 0 for the driver itself).
	SinkDist []float64
}

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; x := old[len(old)-1]; *q = old[:len(old)-1]; return x }

// dijkstraWS is a per-graph scratch space reused across shortest-path
// runs, so the router's hot d'(e) loop does not allocate. Vertex state is
// invalidated in O(1) by bumping a generation counter; entries are live
// only when their stamp matches the current generation. A Graph's methods
// share this workspace, so a Graph must not be used from two goroutines
// concurrently (the router shards work by net, which guarantees that).
type dijkstraWS struct {
	dist  []float64
	prev  []int // edge id arriving at v on the shortest path, -1 for source
	stamp []uint32
	gen   uint32
	q     pq

	edgeStamp []uint32 // tree-union membership stamps for lengthExcluding
	edgeGen   uint32

	// RecomputeBridges scratch (same single-goroutine-per-graph contract).
	disc, low []int
	newBridge []bool
	frames    []bridgeFrame
}

// bridgeFrame is one explicit-stack DFS frame of RecomputeBridges.
type bridgeFrame struct {
	v, parentEdge int
	idx           int
}

// reset sizes the workspace to the graph and starts a fresh generation.
func (w *dijkstraWS) reset(nVerts int) {
	if len(w.dist) < nVerts {
		w.dist = make([]float64, nVerts)
		w.prev = make([]int, nVerts)
		w.stamp = make([]uint32, nVerts)
		w.gen = 0
	}
	w.gen++
	if w.gen == 0 { // stamp wrap: re-zero so stale stamps cannot match
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.gen = 1
	}
	w.q = w.q[:0]
}

// distAt reads v's tentative distance, +Inf when untouched this run.
func (w *dijkstraWS) distAt(v int) float64 {
	if w.stamp[v] == w.gen {
		return w.dist[v]
	}
	return math.Inf(1)
}

func (w *dijkstraWS) set(v int, d float64, prevEdge int) {
	w.dist[v] = d
	w.prev[v] = prevEdge
	w.stamp[v] = w.gen
}

// prevAt reads v's arrival edge, -1 when v was never reached.
func (w *dijkstraWS) prevAt(v int) int {
	if w.stamp[v] == w.gen {
		return w.prev[v]
	}
	return -1
}

// markEdges starts a fresh edge-union generation sized to the graph.
func (w *dijkstraWS) markEdges(nEdges int) {
	if len(w.edgeStamp) < nEdges {
		w.edgeStamp = make([]uint32, nEdges)
		w.edgeGen = 0
	}
	w.edgeGen++
	if w.edgeGen == 0 {
		for i := range w.edgeStamp {
			w.edgeStamp[i] = 0
		}
		w.edgeGen = 1
	}
}

func (w *dijkstraWS) edgeMarked(e int) bool { return w.edgeStamp[e] == w.edgeGen }
func (w *dijkstraWS) markEdge(e int)        { w.edgeStamp[e] = w.edgeGen }

// Tentative computes the tentative tree with Dijkstra's shortest-path
// algorithm from the driving terminal (paper §3.2).
func (g *Graph) Tentative() (*Tree, error) {
	return g.tentative(-1)
}

// TentativeInto is Tentative reusing a previous tree's storage (prev may
// be nil). The returned tree aliases prev's slices when they fit, so prev
// must not be read afterwards — the router's per-deletion tree refresh
// would otherwise allocate three slices per deletion.
func (g *Graph) TentativeInto(prev *Tree) (*Tree, error) {
	return g.tentativeCostInto(-1, nil, prev)
}

// TentativeWeighted computes a tentative tree under a custom edge cost
// (e.g. congestion-inflated lengths for a sequential baseline router).
// Tree.Length still reports physical length; SinkDist is in cost units.
func (g *Graph) TentativeWeighted(cost func(e int) float64) (*Tree, error) {
	return g.tentativeCost(-1, cost)
}

// KeepOnly kills every alive edge outside the tree, leaving exactly the
// tree in the graph, and updates the bookkeeping.
func (g *Graph) KeepOnly(t *Tree) {
	for e := range g.Edges {
		if g.Edges[e].Alive && !t.InTree[e] {
			g.Edges[e].Alive = false
			g.alive--
		}
	}
}

// LengthExcluding returns the tentative-tree length that would result from
// deleting edge skip: the d'-generating estimate behind LM(e,P). It fails
// if the exclusion disconnects some terminal (skip was a bridge). Unlike
// Tentative it allocates nothing: the whole computation runs inside the
// graph's reusable workspace.
func (g *Graph) LengthExcluding(skip int) (float64, error) {
	g.runDijkstra(skip, nil)
	w := &g.ws
	w.markEdges(len(g.Edges))
	var length float64
	for ti, tv := range g.TermVert {
		if math.IsInf(w.distAt(tv), 1) {
			return 0, fmt.Errorf("rgraph: terminal %d unreachable from driver", ti)
		}
		for v := tv; w.prevAt(v) != -1; {
			e := w.prevAt(v)
			if w.edgeMarked(e) {
				break // the rest of the path is already in the union
			}
			w.markEdge(e)
			length += g.Edges[e].Len
			v = g.other(e, v)
		}
	}
	return length, nil
}

func (g *Graph) tentative(skip int) (*Tree, error) {
	return g.tentativeCost(skip, nil)
}

// runDijkstra fills the workspace with shortest paths from the driving
// terminal over the alive edges (minus skip), under the given edge cost
// (nil means physical length).
func (g *Graph) runDijkstra(skip int, cost func(e int) float64) {
	w := &g.ws
	w.reset(len(g.Verts))
	src := g.TermVert[0]
	w.set(src, 0, -1)
	w.q = append(w.q, pqItem{v: src, dist: 0})
	for len(w.q) > 0 {
		it := heap.Pop(&w.q).(pqItem)
		if it.dist > w.distAt(it.v) {
			continue
		}
		for _, e := range g.adj[it.v] {
			if !g.Edges[e].Alive || e == skip {
				continue
			}
			c := g.Edges[e].Len
			if cost != nil {
				c = cost(e)
			}
			v := g.other(e, it.v)
			if d := it.dist + c; d < w.distAt(v) {
				w.set(v, d, e)
				heap.Push(&w.q, pqItem{v: v, dist: d})
			}
		}
	}
}

func (g *Graph) tentativeCost(skip int, cost func(e int) float64) (*Tree, error) {
	return g.tentativeCostInto(skip, cost, nil)
}

func (g *Graph) tentativeCostInto(skip int, cost func(e int) float64, prev *Tree) (*Tree, error) {
	g.runDijkstra(skip, cost)
	w := &g.ws
	t := prev
	if t == nil {
		t = &Tree{}
	}
	if cap(t.InTree) >= len(g.Edges) {
		t.InTree = t.InTree[:len(g.Edges)]
		for i := range t.InTree {
			t.InTree[i] = false
		}
	} else {
		t.InTree = make([]bool, len(g.Edges))
	}
	if cap(t.SinkDist) >= len(g.TermVert) {
		t.SinkDist = t.SinkDist[:len(g.TermVert)]
	} else {
		t.SinkDist = make([]float64, len(g.TermVert))
	}
	t.Edges = t.Edges[:0]
	t.Length = 0
	for ti, tv := range g.TermVert {
		if math.IsInf(w.distAt(tv), 1) {
			return nil, fmt.Errorf("rgraph: terminal %d unreachable from driver", ti)
		}
		t.SinkDist[ti] = w.distAt(tv)
		for v := tv; w.prevAt(v) != -1; {
			e := w.prevAt(v)
			if t.InTree[e] {
				break // the rest of the path is already in the union
			}
			t.InTree[e] = true
			t.Edges = append(t.Edges, e)
			t.Length += g.Edges[e].Len
			v = g.other(e, v)
		}
	}
	return t, nil
}

// FinalTree returns the alive graph as a Tree once routing has finished
// (IsTree). Unlike Tentative it includes every alive edge; for a finished
// net the two coincide up to pruned stubs.
func (g *Graph) FinalTree() *Tree {
	t := &Tree{InTree: make([]bool, len(g.Edges)), SinkDist: make([]float64, len(g.TermVert))}
	for i := range g.Edges {
		if g.Edges[i].Alive {
			t.InTree[i] = true
			t.Edges = append(t.Edges, i)
			t.Length += g.Edges[i].Len
		}
	}
	return t
}

// SkewPs returns the spread (max - min) of the per-sink Elmore wire
// delays over a tree: the clock-skew measure that motivates the paper's
// multi-pitch wires (§4.2, wider wire → lower resistance → lower skew).
func (g *Graph) SkewPs(t *Tree, ckt *circuit.Circuit, rPerUm float64) float64 {
	d := g.ElmoreDelays(t, ckt, rPerUm)
	if len(d) < 2 {
		return 0
	}
	minD, maxD := math.Inf(1), math.Inf(-1)
	for _, x := range d[1:] {
		if x < minD {
			minD = x
		}
		if x > maxD {
			maxD = x
		}
	}
	return maxD - minD
}

// ElmoreDelays computes the per-sink Elmore wire delays (ps) over a tree,
// for the paper's RC-extension option. rPerUm is the wire resistance in
// kΩ/µm (so kΩ × fF = ps); capacitance comes from the net's pitch width
// and the terminals' fan-in loads. The returned slice is indexed like the
// net's terminals; entry 0 (the driver) is zero.
func (g *Graph) ElmoreDelays(t *Tree, ckt *circuit.Circuit, rPerUm float64) []float64 {
	capPerUm := ckt.Tech.WireCapPerUm(g.Pitch)
	terms := ckt.Terminals(g.Net)

	// Tree adjacency restricted to tree edges.
	adj := make([][]int, len(g.Verts))
	for _, e := range t.Edges {
		adj[g.Edges[e].U] = append(adj[g.Edges[e].U], e)
		adj[g.Edges[e].V] = append(adj[g.Edges[e].V], e)
	}
	// Pin loads at terminal vertices.
	pinCap := make([]float64, len(g.Verts))
	for ti, tv := range g.TermVert {
		if ti > 0 {
			pinCap[tv] = ckt.FinOf(terms[ti])
		}
	}
	root := g.TermVert[0]

	// Post-order subtree capacitances.
	subCap := make([]float64, len(g.Verts))
	parentEdge := make([]int, len(g.Verts))
	order := make([]int, 0, len(g.Verts))
	seen := make([]bool, len(g.Verts))
	for v := range parentEdge {
		parentEdge[v] = -1
	}
	stack := []int{root}
	seen[root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, e := range adj[v] {
			w := g.other(e, v)
			if !seen[w] {
				seen[w] = true
				parentEdge[w] = e
				stack = append(stack, w)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		subCap[v] += pinCap[v]
		if pe := parentEdge[v]; pe != -1 {
			wireCap := g.Edges[pe].Len * capPerUm
			up := g.other(pe, v)
			subCap[up] += subCap[v] + wireCap
		}
	}
	// Pre-order delay accumulation: delay at child = delay at parent +
	// R(edge)·(C(edge)/2 + C(subtree below edge)).
	delay := make([]float64, len(g.Verts))
	for _, v := range order {
		if pe := parentEdge[v]; pe != -1 {
			up := g.other(pe, v)
			r := rPerUm * g.Edges[pe].Len
			c := g.Edges[pe].Len*capPerUm/2 + subCap[v]
			delay[v] = delay[up] + r*c
		}
	}
	out := make([]float64, len(g.TermVert))
	for ti, tv := range g.TermVert {
		out[ti] = delay[tv]
	}
	out[0] = 0
	return out
}
