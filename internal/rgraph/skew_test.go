package rgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/grid"
)

func TestSkewZeroResistance(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	if s := g.SkewPs(tree, ckt, 0); s != 0 {
		t.Fatalf("zero resistance must give zero skew, got %v", s)
	}
}

func TestSkewScalesWithResistance(t *testing.T) {
	ckt := circuit.SampleSmall()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	s1 := g.SkewPs(tree, ckt, 0.001)
	s2 := g.SkewPs(tree, ckt, 0.002)
	if s1 <= 0 {
		t.Fatal("multi-sink net must have positive skew")
	}
	// Elmore is linear in R: doubling r doubles the skew.
	if diff := s2 - 2*s1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("skew not linear in r: %v vs 2x%v", s2, s1)
	}
}

func TestSkewTwoPinEqualsZeroSpread(t *testing.T) {
	ckt := circuit.SampleDiff()
	geo, _ := grid.New(ckt)
	g, err := Build(ckt, geo, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Tentative()
	if err != nil {
		t.Fatal(err)
	}
	// One sink: spread of a single value is zero.
	if s := g.SkewPs(tree, ckt, 0.001); s != 0 {
		t.Fatalf("single-sink skew = %v, want 0", s)
	}
}

// TestElmoreMonotoneInR: per-sink Elmore delays never decrease as the
// wire resistance grows (property over random deletion states).
func TestElmoreMonotoneInR(t *testing.T) {
	ckt := circuit.SampleSmall()
	f := func(seed int64) bool {
		geo, _ := grid.New(ckt)
		g, err := Build(ckt, geo, 1, feedsFor(t, ckt, geo, 1))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2; i++ {
			nb := g.NonBridges()
			if len(nb) == 0 {
				break
			}
			if _, err := g.Delete(nb[rng.Intn(len(nb))]); err != nil {
				return false
			}
			g.RecomputeBridges()
		}
		tree, err := g.Tentative()
		if err != nil {
			return false
		}
		lo := g.ElmoreDelays(tree, ckt, 0.0005)
		hi := g.ElmoreDelays(tree, ckt, 0.001)
		for i := range lo {
			if hi[i] < lo[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}
