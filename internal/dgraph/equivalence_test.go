// Randomized equivalence: the compact-subgraph incremental engine
// (MarkNet/Flush) must be bit-identical to a from-scratch full Analyze on
// a fresh Timing, and to the graph-sized reference topo walk
// (ReferenceWorst). External test package: internal/gen imports dgraph,
// so the generator can only be used from outside.
package dgraph_test

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
)

// equivCases synthesizes ≥50 distinct small circuits spanning both
// placement styles, multi-sink constraints, diff pairs and datapath
// synthesis.
func equivCases(t *testing.T) []gen.Params {
	t.Helper()
	var out []gen.Params
	for i := 0; i < 52; i++ {
		p := gen.Params{
			Name:        "equiv",
			Seed:        int64(1000 + 17*i),
			Cells:       60 + 13*(i%11),
			Rows:        3 + i%4,
			SeqFrac:     0.15 + 0.02*float64(i%3),
			AvgFanout:   1.2 + 0.3*float64(i%3),
			Locality:    8 + i%16,
			PIs:         4 + i%5,
			POs:         4 + i%4,
			DiffPairs:   i % 4,
			FeedFrac:    0.15,
			Constraints: 3 + i%9,
			LimitFactor: 1.05 + 0.05*float64(i%4),
			MultiSink:   i%2 == 0,
			Datapath:    i%7 == 3,
		}
		if i%2 == 1 {
			p.Style = gen.P2
		}
		if i%5 == 2 {
			p.WideClock = true
		}
		out = append(out, p)
	}
	return out
}

// lumped returns a deterministic synthetic wirelength vector.
func lumped(nNets int, scale float64) []float64 {
	wl := make([]float64, nNets)
	for n := range wl {
		wl[n] = scale * float64((n*37)%101+1)
	}
	return wl
}

// checkIdentical compares every per-constraint output of two Timings
// bitwise: Worst, Margin, CriticalNets, CriticalPath, and a sweep of
// DeltaIfNetDelay probes.
func checkIdentical(t *testing.T, g *dgraph.Graph, inc, full *dgraph.Timing, tag string) {
	t.Helper()
	for p := range inc.Cons {
		iw, fw := inc.Cons[p].Worst, full.Cons[p].Worst
		if math.Float64bits(iw) != math.Float64bits(fw) {
			t.Fatalf("%s: cons %d Worst: incremental %v != full %v", tag, p, iw, fw)
		}
		im, fm := inc.Cons[p].Margin, full.Cons[p].Margin
		if math.Float64bits(im) != math.Float64bits(fm) {
			t.Fatalf("%s: cons %d Margin: incremental %v != full %v", tag, p, im, fm)
		}
		if rw := inc.ReferenceWorst(p); math.Float64bits(iw) != math.Float64bits(rw) {
			t.Fatalf("%s: cons %d Worst %v != reference topo walk %v", tag, p, iw, rw)
		}
		in, fn := inc.CriticalNets(p), full.CriticalNets(p)
		if len(in) != len(fn) {
			t.Fatalf("%s: cons %d CriticalNets: %v vs %v", tag, p, in, fn)
		}
		for i := range in {
			if in[i] != fn[i] {
				t.Fatalf("%s: cons %d CriticalNets[%d]: %d vs %d", tag, p, i, in[i], fn[i])
			}
		}
		ip, fp := inc.CriticalPath(p), full.CriticalPath(p)
		if len(ip) != len(fp) {
			t.Fatalf("%s: cons %d CriticalPath: %v vs %v", tag, p, ip, fp)
		}
		for i := range ip {
			if ip[i] != fp[i] {
				t.Fatalf("%s: cons %d CriticalPath[%d]: %d vs %d", tag, p, i, ip[i], fp[i])
			}
		}
		for n := 0; n < len(inc.ArcDelay) && n < 16; n++ {
			net := n * 3 % maxNet(g)
			id := inc.DeltaIfNetDelay(p, net, 42.5)
			fd := full.DeltaIfNetDelay(p, net, 42.5)
			if math.Float64bits(id) != math.Float64bits(fd) {
				t.Fatalf("%s: cons %d DeltaIfNetDelay(net %d): %v vs %v", tag, p, net, id, fd)
			}
		}
	}
}

func maxNet(g *dgraph.Graph) int {
	if n := len(g.Ckt.Nets); n > 0 {
		return n
	}
	return 1
}

// freshFull builds a new Timing with the same arc-delay state and runs a
// from-scratch Analyze.
func freshFull(g *dgraph.Graph, inc *dgraph.Timing) *dgraph.Timing {
	full := g.NewTiming()
	copy(full.ArcDelay, inc.ArcDelay)
	full.Analyze()
	return full
}

func TestFlushEquivalence(t *testing.T) {
	cases := equivCases(t)
	if len(cases) < 50 {
		t.Fatalf("need ≥50 random circuits, have %d", len(cases))
	}
	for ci, params := range cases {
		ckt, err := gen.Generate(params)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		g, err := dgraph.New(ckt)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		rng := rand.New(rand.NewSource(int64(9000 + ci)))
		inc := g.NewTiming()
		inc.SetLumped(lumped(len(ckt.Nets), 1))
		inc.Flush()
		checkIdentical(t, g, inc, freshFull(g, inc), "initial")

		// Five rounds of sparse net perturbations, flushing after each;
		// the incremental state must track a fresh full analysis exactly.
		for round := 0; round < 5; round++ {
			k := 1 + rng.Intn(4)
			for i := 0; i < k; i++ {
				n := rng.Intn(len(ckt.Nets))
				inc.SetNetLumped(n, 5+rng.Float64()*900)
			}
			inc.Flush()
			checkIdentical(t, g, inc, freshFull(g, inc), "round")
		}
	}
}

// TestFlushEquivalenceWorkers stresses the parallel Flush across worker
// counts (run with -race in CI): every Workers value must produce
// bit-identical margins.
func TestFlushEquivalenceWorkers(t *testing.T) {
	p, err := gen.Dataset("C2P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	workers := []int{1, 2, 4, runtime.GOMAXPROCS(0), 0}
	var ref *dgraph.Timing
	for _, w := range workers {
		g, err := dgraph.New(ckt)
		if err != nil {
			t.Fatal(err)
		}
		tm := g.NewTiming()
		tm.Workers = w
		tm.SetLumped(lumped(len(ckt.Nets), 1))
		tm.Flush()
		rng := rand.New(rand.NewSource(4242))
		for round := 0; round < 20; round++ {
			for i := 0; i < 3; i++ {
				tm.SetNetLumped(rng.Intn(len(ckt.Nets)), 5+rng.Float64()*900)
			}
			tm.Flush()
		}
		if ref == nil {
			ref = tm
			continue
		}
		for p := range tm.Cons {
			if math.Float64bits(tm.Cons[p].Margin) != math.Float64bits(ref.Cons[p].Margin) {
				t.Fatalf("Workers=%d: cons %d margin %v != Workers=1 margin %v",
					w, p, tm.Cons[p].Margin, ref.Cons[p].Margin)
			}
			if math.Float64bits(tm.Cons[p].Worst) != math.Float64bits(ref.Cons[p].Worst) {
				t.Fatalf("Workers=%d: cons %d worst %v != Workers=1 worst %v",
					w, p, tm.Cons[p].Worst, ref.Cons[p].Worst)
			}
		}
	}
}
