package dgraph_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dgraph"
)

// ExampleTiming_Analyze runs the longest-path analysis on the sample
// circuit with 100 µm of wire per net.
func ExampleTiming_Analyze() {
	ckt := circuit.SampleSmall()
	g, err := dgraph.New(ckt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tm := g.NewTiming()
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 100
	}
	tm.SetLumped(wl)
	tm.Analyze()
	fmt.Printf("critical delay %.1f ps, margin %.1f ps\n", tm.Cons[0].Worst, tm.Cons[0].Margin)
	for _, a := range tm.CriticalPath(0) {
		arc := g.Arcs[a]
		fmt.Printf("  -> %s\n", ckt.PinName(g.Verts[arc.To]))
	}
	// Output:
	// critical delay 409.8 ps, margin 490.2 ps
	//   -> b0.A
	//   -> b0.Z
	//   -> g1.A
	//   -> g1.Z
	//   -> g2.B
	//   -> g2.Z
	//   -> i1.A
	//   -> i1.Z
	//   -> d0.D
}
