package dgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestCriticalPathReconstructs(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 400
		}
		tm := g.NewTiming()
		tm.SetLumped(wl)
		tm.Analyze()
		for p := range tm.Cons {
			arcs := tm.CriticalPath(p)
			if tm.Cons[p].Worst > 0 && len(arcs) == 0 {
				return false
			}
			// The path's arc delays must sum to the critical delay and
			// the arcs must chain head-to-tail.
			var sum float64
			for i, a := range arcs {
				sum += tm.ArcDelay[a]
				if i > 0 && g.Arcs[arcs[i-1]].To != g.Arcs[a].From {
					return false
				}
			}
			if math.Abs(sum-tm.Cons[p].Worst) > 1e-6 {
				return false
			}
			// Path starts at a constraint source and ends at a sink.
			if len(arcs) > 0 {
				start := g.Verts[g.Arcs[arcs[0]].From]
				end := g.Verts[g.Arcs[arcs[len(arcs)-1]].To]
				if !refIn(ckt.Cons[p].From, start) || !refIn(ckt.Cons[p].To, end) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func refIn(set []circuit.PinRef, ref circuit.PinRef) bool {
	for _, r := range set {
		if r == ref {
			return true
		}
	}
	return false
}

func TestCriticalPathEmptyWhenNoPath(t *testing.T) {
	ckt := circuit.SampleSmall()
	// A constraint between two unconnected endpoints: OUT0 pad (sink of
	// nq) to d0.D — nq is downstream of d0, so no path exists.
	ckt.Cons = append(ckt.Cons, circuit.Constraint{
		Name: "PX", Limit: 100,
		From: []circuit.PinRef{circuit.Ext(1)},
		To:   []circuit.PinRef{{Cell: 3, Pin: 0}},
	})
	g := mustGraph(t, ckt)
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	if tm.Cons[1].Worst != 0 {
		t.Fatalf("impossible constraint got delay %v", tm.Cons[1].Worst)
	}
	if arcs := tm.CriticalPath(1); len(arcs) != 0 {
		t.Fatalf("impossible constraint got a path of %d arcs", len(arcs))
	}
}
