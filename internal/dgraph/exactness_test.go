package dgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// chainCircuit builds a single-path circuit IN -> inv0 -> inv1 -> ... ->
// OUT, so every net arc's head lies on the (unique) critical path and the
// paper's claim "if w is on the original critical path, LM(e,P) is exactly
// the new M(P)" must hold with equality.
func chainCircuit(stages int) *circuit.Circuit {
	c := &circuit.Circuit{Name: "chain", Tech: circuit.DefaultTech, Rows: 1, Cols: 4 * (stages + 1)}
	c.Lib = []circuit.CellType{{
		Name: "INV", Width: 2,
		Pins: []circuit.PinDef{
			{Name: "A", Dir: circuit.In, Side: circuit.Bottom, Offsets: []int{0}, Fin: 20},
			{Name: "Z", Dir: circuit.Out, Side: circuit.Top, Offsets: []int{1}, Tf: 0.3, Td: 0.25},
		},
		Arcs: []circuit.Arc{{From: "A", To: "Z", T0: 90}},
	}}
	for i := 0; i < stages; i++ {
		c.Cells = append(c.Cells, circuit.Cell{Name: "u" + string(rune('a'+i)), Type: 0, Row: 0, Col: 4 * i})
	}
	// Net 0: pad -> ua.A; net i: u(i-1).Z -> u(i).A; last net: -> pad.
	c.Nets = append(c.Nets, circuit.Net{Name: "n0", Pitch: 1, DiffMate: circuit.NoNet,
		Pins: []circuit.PinRef{{Cell: 0, Pin: 0}}})
	for i := 1; i < stages; i++ {
		c.Nets = append(c.Nets, circuit.Net{Name: "n" + string(rune('0'+i)), Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{{Cell: i - 1, Pin: 1}, {Cell: i, Pin: 0}}})
	}
	c.Nets = append(c.Nets, circuit.Net{Name: "nz", Pitch: 1, DiffMate: circuit.NoNet,
		Pins: []circuit.PinRef{{Cell: stages - 1, Pin: 1}}})
	c.Ext = []circuit.ExtPin{
		{Name: "IN", Net: 0, Side: circuit.Bottom, Cols: []int{0}, Dir: circuit.In, Tf: 0.2, Td: 0.2},
		{Name: "OUT", Net: len(c.Nets) - 1, Side: circuit.Top, Cols: []int{c.Cols - 1}, Dir: circuit.Out, Fin: 25},
	}
	c.Cons = []circuit.Constraint{{
		Name: "P0", Limit: 2000,
		From: []circuit.PinRef{circuit.Ext(0)},
		To:   []circuit.PinRef{circuit.Ext(1)},
	}}
	return c
}

// TestLMExactOnCriticalPath: on a single-path constraint, the predicted
// margin M(P) − Delta equals the margin actually obtained after applying
// the new net delay.
func TestLMExactOnCriticalPath(t *testing.T) {
	ckt := chainCircuit(5)
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, pick uint8, extraRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 200
		}
		tm := g.NewTiming()
		tm.SetLumped(wl)
		tm.Analyze()
		n := int(pick) % len(wl)
		extra := float64(extraRaw % 500)
		dNew := g.LumpedArcDelay(n, wl[n]+extra)
		predicted := tm.Cons[0].Margin - tm.DeltaIfNetDelay(0, n, dNew)
		wl[n] += extra
		tm.SetLumped(wl)
		tm.Analyze()
		return math.Abs(tm.Cons[0].Margin-predicted) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Fatal(err)
	}
}

// TestChainWorstIsSumOfArcs: sanity on the fixture itself.
func TestChainWorstIsSumOfArcs(t *testing.T) {
	ckt := chainCircuit(4)
	g, err := New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	// 4 cell arcs of 90 ps plus 5 net arcs with zero wire: each net arc is
	// Fin·Tf of its sink (20·0.3 = 6 for gate inputs, 25·0.2 = 5 for the
	// output pad driven at Tf 0.3... compute via the model directly).
	var want float64
	for n := range ckt.Nets {
		want += g.LumpedArcDelay(n, 0)
	}
	want += 4 * 90
	if math.Abs(tm.Cons[0].Worst-want) > 1e-9 {
		t.Fatalf("chain delay %v, want %v", tm.Cons[0].Worst, want)
	}
}
