package dgraph

import (
	"errors"
	"testing"

	"repro/internal/circuit"
)

// TestGraphTooLarge pins the int32 overflow guard: a circuit whose
// terminal or arc count exceeds the index capacity must be rejected with
// ErrGraphTooLarge instead of silently truncating indices. The limit is
// lowered via the package-level override so the test does not need a
// >2^31-element circuit.
func TestGraphTooLarge(t *testing.T) {
	ckt := circuit.SampleSmall()
	if _, err := New(ckt); err != nil {
		t.Fatalf("sample under the real limit: %v", err)
	}

	defer func(old int) { maxGraphInts = old }(maxGraphInts)
	maxGraphInts = 1
	_, err := New(ckt)
	if err == nil {
		t.Fatal("New accepted a graph over the synthetic index limit")
	}
	if !errors.Is(err, ErrGraphTooLarge) {
		t.Fatalf("err = %v, want ErrGraphTooLarge", err)
	}
}

// TestConesOverlap cross-checks the sorted-merge constraint-cone overlap
// query against the quadratic definition on the sample circuits.
func TestConesOverlap(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := build()
		g := mustGraph(t, ckt)
		for a := range ckt.Nets {
			for b := range ckt.Nets {
				want := false
				for _, pa := range g.ConsOfNet(a) {
					for _, pb := range g.ConsOfNet(b) {
						if pa == pb {
							want = true
						}
					}
				}
				if got := g.ConesOverlap(a, b); got != want {
					t.Errorf("%s: ConesOverlap(%d, %d) = %v, want %v", ckt.Name, a, b, got, want)
				}
			}
		}
	}
}
