package dgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func mustGraph(t *testing.T, ckt *circuit.Circuit) *Graph {
	t.Helper()
	if err := ckt.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	g, err := New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphShape(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	// Every net contributes one arc per fan-out.
	for n := range ckt.Nets {
		if got, want := len(g.NetArcs(n)), len(ckt.Fanouts(n)); got != want {
			t.Errorf("net %s: %d arcs, want %d", ckt.Nets[n].Name, got, want)
		}
	}
	// DFF is sequential: no cell arc may leave its D or CK inputs.
	for _, a := range g.Arcs {
		if a.Net != NoNet {
			continue
		}
		fr := g.Verts[a.From]
		if !fr.IsExt() && ckt.Lib[ckt.Cells[fr.Cell].Type].Sequential {
			t.Errorf("cell arc out of sequential cell %s", ckt.PinName(fr))
		}
	}
}

// bruteLongest enumerates all S->T paths of the sample circuit's delay
// graph by DFS and returns the max delay. Only usable on tiny circuits.
func bruteLongest(g *Graph, tm *Timing, p int) float64 {
	ckt := g.Ckt
	cons := &ckt.Cons[p]
	sinkSet := map[int]bool{}
	for _, r := range cons.To {
		if v := g.VertexOf(r); v >= 0 {
			sinkSet[v] = true
		}
	}
	best := math.Inf(-1)
	var dfs func(v int, d float64)
	dfs = func(v int, d float64) {
		if sinkSet[v] && d > best {
			best = d
		}
		for _, a := range g.out[v] {
			dfs(g.Arcs[a].To, d+tm.ArcDelay[a])
		}
	}
	for _, r := range cons.From {
		if v := g.VertexOf(r); v >= 0 {
			dfs(v, 0)
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

func TestAnalyzeMatchesBruteForce(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := build()
		g := mustGraph(t, ckt)
		tm := g.NewTiming()
		rng := rand.New(rand.NewSource(7))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 500
		}
		tm.SetLumped(wl)
		tm.Analyze()
		for p := range ckt.Cons {
			want := bruteLongest(g, tm, p)
			if math.Abs(tm.Cons[p].Worst-want) > 1e-9 {
				t.Errorf("%s %s: Worst = %v, brute force = %v", ckt.Name, ckt.Cons[p].Name, tm.Cons[p].Worst, want)
			}
			if math.Abs(tm.Cons[p].Margin-(ckt.Cons[p].Limit-want)) > 1e-9 {
				t.Errorf("%s %s: Margin inconsistent", ckt.Name, ckt.Cons[p].Name)
			}
		}
	}
}

func TestLumpedArcDelay(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	// Net n1: driver b0.Z (Tf 0.15, Td 0.12), fan-outs g1.A + g2.A = 44 fF.
	got := g.LumpedArcDelay(1, 100)
	want := 44*0.15 + 100*ckt.Tech.CapPerUm*0.12
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LumpedArcDelay = %v, want %v", got, want)
	}
	// Zero length keeps only the fan-in term.
	if got := g.LumpedArcDelay(1, 0); math.Abs(got-44*0.15) > 1e-12 {
		t.Fatalf("zero-length delay = %v", got)
	}
}

func TestWorstMonotoneInWireLength(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	f := func(seed int64, bump uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 400
		}
		tm := g.NewTiming()
		tm.SetLumped(wl)
		tm.Analyze()
		before := tm.Cons[0].Worst
		n := int(bump) % len(wl)
		wl[n] += 250
		tm.SetLumped(wl)
		tm.Analyze()
		return tm.Cons[0].Worst >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaIfNetDelay(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	tm := g.NewTiming()
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 100
	}
	tm.SetLumped(wl)
	tm.Analyze()
	// Raising a net's arc delay by x must raise the pessimistic arrival
	// increase to at least x on nets that lie on the critical path, and
	// never be negative.
	crit := tm.CriticalNets(0)
	if len(crit) == 0 {
		t.Fatal("no critical nets found")
	}
	for _, n := range crit {
		cur := g.LumpedArcDelay(n, wl[n])
		delta := tm.DeltaIfNetDelay(0, n, cur+50)
		if delta < 50-1e-9 {
			t.Errorf("critical net %s: delta = %v, want >= 50", ckt.Nets[n].Name, delta)
		}
		if d0 := tm.DeltaIfNetDelay(0, n, cur); math.Abs(d0) > 1e-9 {
			t.Errorf("unchanged delay must give zero delta, got %v", d0)
		}
		if dm := tm.DeltaIfNetDelay(0, n, cur-30); dm != 0 {
			t.Errorf("decreased delay must clamp to zero, got %v", dm)
		}
	}
}

// TestDeltaPessimism verifies the paper's claim that LM is exact for arcs
// whose head is on the critical path and pessimistic (an upper bound on the
// arrival increase) otherwise: worst arrival after actually applying the
// new delay never exceeds lpF-based prediction.
func TestDeltaPessimism(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	f := func(seed int64, pick uint8, extraRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 300
		}
		tm := g.NewTiming()
		tm.SetLumped(wl)
		tm.Analyze()
		n := int(pick) % len(wl)
		extra := float64(extraRaw % 1000)
		dNew := g.LumpedArcDelay(n, wl[n]+extra)
		predicted := tm.Cons[0].Worst + tm.DeltaIfNetDelay(0, n, dNew)
		wl[n] += extra
		tm.SetLumped(wl)
		tm.Analyze()
		return tm.Cons[0].Worst <= predicted+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalNetsOnPath(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	// P0 runs IN0 -> b0 -> ... -> d0.D. With zero wire everywhere the
	// critical path must include nIn (the pad net) and n4 (into d0.D).
	crit := tm.CriticalNets(0)
	has := func(name string) bool {
		for _, n := range crit {
			if ckt.Nets[n].Name == name {
				return true
			}
		}
		return false
	}
	if !has("nIn") || !has("n4") {
		names := make([]string, len(crit))
		for i, n := range crit {
			names[i] = ckt.Nets[n].Name
		}
		t.Fatalf("critical nets %v must include nIn and n4", names)
	}
}

func TestNetSlacksOrdering(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	slacks := g.NetSlacks()
	// Nets on no constrained path have +Inf slack.
	for n := range ckt.Nets {
		onCons := len(g.ConsOfNet(n)) > 0
		if onCons && math.IsInf(slacks[n], 1) {
			t.Errorf("net %s on a constraint has infinite slack", ckt.Nets[n].Name)
		}
		if !onCons && !math.IsInf(slacks[n], 1) {
			t.Errorf("net %s off constraints has finite slack %v", ckt.Nets[n].Name, slacks[n])
		}
	}
	// nq (d0.Q output, downstream of the constraint sink) is not in Gd(P0).
	for _, p := range g.ConsOfNet(5) {
		t.Errorf("net nq unexpectedly in constraint %d", p)
	}
}

func TestSetNetArcDelays(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	// Per-sink (Elmore-style) delays on n1's two fan-outs.
	tm.SetNetArcDelays(1, []float64{10, 90})
	arcs := g.NetArcs(1)
	if tm.ArcDelay[arcs[0]] != 10 || tm.ArcDelay[arcs[1]] != 90 {
		t.Fatalf("per-sink delays not applied: %v %v", tm.ArcDelay[arcs[0]], tm.ArcDelay[arcs[1]])
	}
	tm.Analyze()
	if tm.Cons[0].Worst <= 0 {
		t.Fatal("analysis with per-sink delays produced no path")
	}
}

func TestWorstViolation(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGraph(t, ckt)
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	if p, m := tm.WorstViolation(); p != -1 || m != 0 {
		t.Fatalf("zero-wire run should meet the constraint, got p=%d m=%v", p, m)
	}
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 1e6 // absurdly long wires must violate
	}
	tm.SetLumped(wl)
	tm.Analyze()
	if p, m := tm.WorstViolation(); p != 0 || m >= 0 {
		t.Fatalf("expected violation of P0, got p=%d m=%v", p, m)
	}
}

// TestAnalyzeConsMatchesFull: re-analyzing only the constraints whose
// nets changed gives exactly the same state as a full re-analysis.
func TestAnalyzeConsMatchesFull(t *testing.T) {
	ckt := circuit.SampleSmall()
	// Add a second constraint over a different path so partial analysis
	// has something to skip.
	ckt.Cons = append(ckt.Cons, circuit.Constraint{
		Name: "P1", Limit: 400,
		From: []circuit.PinRef{circuit.Ext(2)},    // CKIN
		To:   []circuit.PinRef{{Cell: 3, Pin: 1}}, // d0.CK
	})
	g := mustGraph(t, ckt)
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := make([]float64, len(ckt.Nets))
		for i := range wl {
			wl[i] = rng.Float64() * 300
		}
		a := g.NewTiming()
		a.SetLumped(wl)
		a.Analyze()
		b := g.NewTiming()
		b.SetLumped(wl)
		b.Analyze()
		// Change one net in both; full re-analysis vs targeted.
		n := int(pick) % len(wl)
		wl[n] += 123
		a.SetNetLumped(n, wl[n])
		b.SetNetLumped(n, wl[n])
		a.Analyze()
		b.AnalyzeCons(g.ConsOfNet(n))
		for p := range a.Cons {
			if a.Cons[p].Worst != b.Cons[p].Worst || a.Cons[p].Margin != b.Cons[p].Margin {
				return false
			}
			for v := range a.Cons[p].LpF {
				if a.Cons[p].LpF[v] != b.Cons[p].LpF[v] || a.Cons[p].LpR[v] != b.Cons[p].LpR[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(67))}); err != nil {
		t.Fatal(err)
	}
}
