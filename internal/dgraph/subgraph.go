// Compact per-constraint subgraphs and the dirty-set incremental API.
//
// Every constraint P owns an induced subgraph of G_D: the vertices
// reachable from S_P that also reach T_P, stored as a dense vertex list in
// topological order with all arcs between them remapped to local indices.
// A vertex is in Gd(P) exactly when inS && toT, and an arc is in Gd(P)
// exactly when both endpoints are (inS[from] implies inS[to] and toT[to]
// implies toT[from] along an arc), so the subgraph is induced and the
// longest-path recurrences need no global state at all: analyzeOne walks
// |Gd(P)| vertices and arcs instead of clearing and scanning the whole
// graph per constraint.
//
// On top of the compact layout sits a dirty set: delay setters (or an
// explicit MarkNet) record which constraints are affected, and Flush
// re-analyzes exactly those — in parallel across Workers when the batch is
// large enough. Constraints write disjoint ConsTiming slots, so the merge
// is trivial and the results are byte-identical for every worker count.
package dgraph

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/workpool"
)

// subArc is one arc of a compact constraint subgraph, with its endpoints
// remapped to local (dense, topo-ordered) vertex indices.
type subArc struct {
	from, to int32 // local vertex indices
	global   int32 // index into Graph.Arcs (ArcDelay lookup)
	net      int32 // Arc.Net copied next to the endpoints, NoNet for cell arcs
}

// subgraph is the compact induced form of one constraint's Gd(P).
type subgraph struct {
	// verts maps local index → global vertex id, in topological order.
	verts []int32
	// arcs holds every arc of Gd(P), grouped by tail in local topo order;
	// within one tail the global adjacency order is preserved.
	arcs []subArc
	// outStart is the CSR index into arcs: the out-arcs of local vertex v
	// are arcs[outStart[v]:outStart[v+1]].
	outStart []int32
	// inStart/inArcs are the in-adjacency CSR (local arc ids per head).
	// Each head's list is sorted by ascending global arc id so
	// CriticalPath keeps the global in-list tie-break.
	inStart []int32
	inArcs  []int32
	// srcs/sinks are the local ids of the S_P/T_P members present in
	// Gd(P), in constraint declaration order (CriticalPath's end-sink
	// tie-break follows it).
	srcs, sinks []int32
	// nets lists the nets with at least one arc in the subgraph,
	// ascending; net nets[i]'s local arc ids are
	// netArcIdx[netStart[i]:netStart[i+1]], in fan-out order.
	nets     []int32
	netStart []int32
	//bgr:owned -- netArcsLocal lends subslice views of it
	netArcIdx []int32
}

// netArcsLocal returns the local arc ids of a net inside the subgraph, in
// fan-out order, or nil when the net has no arc in Gd(P).
func (sg *subgraph) netArcsLocal(net int32) []int32 {
	lo, hi := 0, len(sg.nets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sg.nets[mid] < net {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(sg.nets) || sg.nets[lo] != net {
		return nil
	}
	//bgr:allow scratch-escape -- documented loan: a read-only CSR view; netArcIdx is append-only after New, so the backing array never moves under a reader
	return sg.netArcIdx[sg.netStart[lo]:sg.netStart[lo+1]]
}

// SubgraphSize reports the compact size of constraint p's Gd(P): vertex
// and arc counts. Exposed for benchmarks and capacity planning.
func (g *Graph) SubgraphSize(p int) (verts, arcs int) {
	return len(g.subs[p].verts), len(g.subs[p].arcs)
}

// ArcsInGd returns the number of net arcs of the given net inside Gd(P).
// The count is precomputed at graph build time (the LM scoring loop reads
// it once per candidate and constraint).
func (g *Graph) ArcsInGd(p, net int) int {
	return len(g.subs[p].netArcsLocal(int32(net)))
}

// buildSubgraphs derives every constraint's compact subgraph from the
// reachability masks. The two scratch arrays are shared across
// constraints and restored to all -1 after each build.
func (g *Graph) buildSubgraphs() {
	g.subs = make([]subgraph, len(g.Ckt.Cons))
	localOf := make([]int32, len(g.Verts)) // global vertex → local, -1 outside
	arcLocal := make([]int32, len(g.Arcs)) // global arc → local, -1 outside
	for i := range localOf {
		localOf[i] = -1
	}
	for i := range arcLocal {
		arcLocal[i] = -1
	}
	for p := range g.subs {
		g.buildSubgraph(p, localOf, arcLocal)
	}
}

func (g *Graph) buildSubgraph(p int, localOf, arcLocal []int32) {
	sg := &g.subs[p]
	m := &g.cons[p]
	for _, v := range g.topo {
		if m.inS[v] && m.toT[v] {
			localOf[v] = int32(len(sg.verts))
			sg.verts = append(sg.verts, int32(v))
		}
	}
	nV := len(sg.verts)

	sg.outStart = make([]int32, nV+1)
	for lv := 0; lv < nV; lv++ {
		for _, a := range g.out[sg.verts[lv]] {
			if to := localOf[g.Arcs[a].To]; to >= 0 {
				arcLocal[a] = int32(len(sg.arcs))
				sg.arcs = append(sg.arcs, subArc{
					from:   int32(lv),
					to:     to,
					global: int32(a),
					net:    int32(g.Arcs[a].Net),
				})
			}
		}
		sg.outStart[lv+1] = int32(len(sg.arcs))
	}

	// In-adjacency CSR. Fill by counting, then sort each head's bucket by
	// global arc id to match the order Graph.in would have presented.
	sg.inStart = make([]int32, nV+1)
	for i := range sg.arcs {
		sg.inStart[sg.arcs[i].to+1]++
	}
	for v := 0; v < nV; v++ {
		sg.inStart[v+1] += sg.inStart[v]
	}
	sg.inArcs = make([]int32, len(sg.arcs))
	cur := make([]int32, nV)
	for la := range sg.arcs {
		h := sg.arcs[la].to
		sg.inArcs[sg.inStart[h]+cur[h]] = int32(la)
		cur[h]++
	}
	for v := 0; v < nV; v++ {
		seg := sg.inArcs[sg.inStart[v]:sg.inStart[v+1]]
		sort.Slice(seg, func(i, j int) bool { return sg.arcs[seg[i]].global < sg.arcs[seg[j]].global })
	}

	for _, v := range m.srcs {
		if localOf[v] >= 0 {
			sg.srcs = append(sg.srcs, localOf[v])
		}
	}
	for _, v := range m.sinks {
		if localOf[v] >= 0 {
			sg.sinks = append(sg.sinks, localOf[v])
		}
	}

	// Per-net arc groups, nets ascending, arcs in fan-out order.
	for n := range g.netArcs {
		first := true
		for _, a := range g.netArcs[n] {
			if arcLocal[a] < 0 {
				continue
			}
			if first {
				sg.nets = append(sg.nets, int32(n))
				sg.netStart = append(sg.netStart, int32(len(sg.netArcIdx)))
				first = false
			}
			sg.netArcIdx = append(sg.netArcIdx, arcLocal[a])
		}
	}
	sg.netStart = append(sg.netStart, int32(len(sg.netArcIdx)))

	for _, gv := range sg.verts {
		localOf[gv] = -1
	}
	for i := range sg.arcs {
		arcLocal[sg.arcs[i].global] = -1
	}
}

// analyzeOne recomputes constraint p's longest paths, worst delay and
// margin from the current arc delays, touching only the constraint's
// compact subgraph. Writes land solely in t.Cons[p], so distinct
// constraints can be analyzed concurrently.
func (t *Timing) analyzeOne(p int) {
	g := t.G
	ct := &t.Cons[p]
	sg := &g.subs[p]
	nV := len(sg.verts)
	for v := 0; v < nV; v++ {
		ct.LpF[v] = negInf
		ct.LpR[v] = negInf
	}
	for _, s := range sg.srcs {
		ct.LpF[s] = 0
	}
	for v := 0; v < nV; v++ {
		f := ct.LpF[v]
		if unreached(f) {
			continue
		}
		for ai := sg.outStart[v]; ai < sg.outStart[v+1]; ai++ {
			a := &sg.arcs[ai]
			if d := f + t.ArcDelay[a.global]; d > ct.LpF[a.to] {
				ct.LpF[a.to] = d
			}
		}
	}
	for _, s := range sg.sinks {
		ct.LpR[s] = 0
	}
	for v := nV - 1; v >= 0; v-- {
		best := ct.LpR[v]
		for ai := sg.outStart[v]; ai < sg.outStart[v+1]; ai++ {
			a := &sg.arcs[ai]
			r := ct.LpR[a.to]
			if unreached(r) {
				continue
			}
			if d := r + t.ArcDelay[a.global]; d > best {
				best = d
			}
		}
		ct.LpR[v] = best
	}
	ct.Worst = negInf
	for _, s := range sg.sinks {
		if ct.LpF[s] > ct.Worst {
			ct.Worst = ct.LpF[s]
		}
	}
	if unreached(ct.Worst) {
		// No source reaches any sink: constraint is trivially met.
		ct.Worst = 0
	}
	ct.Margin = g.Ckt.Cons[p].Limit - ct.Worst
}

// MarkNet records that a net's arc delays changed: every constraint whose
// Gd(P) contains an arc of the net becomes dirty for the next Flush. The
// delay setters (SetLumped, SetNetLumped, SetNetArcDelays) call it
// automatically, so callers that mutate delays through them only need to
// Flush.
func (t *Timing) MarkNet(net int) {
	for _, p := range t.G.consOfNet[net] {
		if !t.dirty[p] {
			t.dirty[p] = true
			t.dirtyCount++
		}
	}
}

// MarkAll marks every constraint dirty, forcing the next Flush to
// re-analyze the full constraint set.
func (t *Timing) MarkAll() {
	for p := range t.dirty {
		t.dirty[p] = true
	}
	t.dirtyCount = len(t.dirty)
}

// flushParallelMin is the dirty-batch size below which Flush stays
// sequential: the goroutine fan-out costs more than a handful of compact
// subgraph walks.
const flushParallelMin = 8

// flushBatch is the Timing's reusable workpool task: each of the w Run
// calls claims dirty-constraint indices from the shared counter until the
// batch is drained. Constraints write disjoint ConsTiming slots, so which
// worker analyzes which constraint cannot affect the result.
type flushBatch struct {
	t    *Timing
	ps   []int
	next atomic.Int64
	wg   sync.WaitGroup
}

func (b *flushBatch) Run() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(b.ps) {
			b.wg.Done()
			return
		}
		b.t.analyzeOne(b.ps[i])
	}
}

// Flush re-analyzes exactly the constraints marked dirty since the last
// Flush and returns their indices in ascending order (the slice is reused
// by the next Flush). Large batches fan out over Workers on the shared
// workpool — no goroutine or closure is allocated per call; each
// constraint writes only its own ConsTiming slot and the returned order is
// fixed, so the outcome is byte-identical for every worker count.
//
//bgr:hot
func (t *Timing) Flush() []int {
	if t.dirtyCount == 0 {
		return nil
	}
	ps := t.flushBuf[:0]
	for p := range t.dirty {
		if t.dirty[p] {
			t.dirty[p] = false
			ps = append(ps, p)
		}
	}
	t.dirtyCount = 0
	t.flushBuf = ps
	if w := t.flushWorkers(len(ps)); w > 1 {
		b := &t.fb
		//bgr:allow scratch-escape -- flushBatch is Timing-owned fan-out state: workers only read ps, and the batch is drained (wg.Wait) before Flush returns
		b.t, b.ps = t, ps
		b.next.Store(0)
		b.wg.Add(w)
		workpool.Submit(b, w)
		b.wg.Wait()
	} else {
		for _, p := range ps {
			t.analyzeOne(p)
		}
	}
	//bgr:allow scratch-escape -- documented loan: Flush's result aliases flushBuf until the next Flush; every caller copies or finishes with it first
	return ps
}

// flushWorkers resolves the Flush fan-out for a dirty batch of n
// constraints: sequential below flushParallelMin, otherwise Workers with
// the Config.Workers convention (0 = one per CPU, 1 = sequential), capped
// at the batch size.
func (t *Timing) flushWorkers(n int) int {
	if n < flushParallelMin {
		return 1
	}
	w := t.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ReferenceWorst recomputes constraint p's critical-path delay the
// pre-subgraph way: a forward longest-path walk over the full global
// topological order with a graph-sized scratch array, masked by Gd(P)
// membership. It is retained as the independent oracle for the
// randomized equivalence tests and as the BenchmarkTimingFlush baseline;
// the compact analysis relaxes exactly the same arcs with the same
// delays, so the two agree bit for bit.
func (t *Timing) ReferenceWorst(p int) float64 {
	g := t.G
	if t.refF == nil {
		t.refF = make([]float64, len(g.Verts))
	}
	lp := t.refF
	m := &g.cons[p]
	inGd := func(v int) bool { return m.inS[v] && m.toT[v] }
	for v := range lp {
		lp[v] = negInf
	}
	for _, v := range m.srcs {
		if inGd(v) {
			lp[v] = 0
		}
	}
	for _, v := range g.topo {
		if unreached(lp[v]) {
			continue
		}
		for _, a := range g.out[v] {
			w := g.Arcs[a].To
			if !inGd(w) {
				continue
			}
			if d := lp[v] + t.ArcDelay[a]; d > lp[w] {
				lp[w] = d
			}
		}
	}
	worst := negInf
	for _, v := range m.sinks {
		if lp[v] > worst {
			worst = lp[v]
		}
	}
	if unreached(worst) {
		worst = 0
	}
	return worst
}
