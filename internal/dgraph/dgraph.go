// Package dgraph builds the global delay graph G_D of Harada & Kitazawa
// §2 and runs the longest-path static timing analysis the router uses:
// per-constraint delay subgraphs Gd(P), forward/backward longest paths,
// margins M(P), critical-net extraction, and the arc-delay bookkeeping for
// both the paper's lumped-capacitance model and the Elmore (RC) extension.
//
// Vertices are circuit terminals. Arcs are either cell arcs (input pin →
// output pin, delay T0) or net arcs (driving terminal → fan-out terminal,
// delay (Σ Fin)·Tf + CL·Td under the lumped model).
package dgraph

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/circuit"
)

// NoNet marks a cell arc in Arc.Net.
const NoNet = -1

// ErrGraphTooLarge reports a circuit whose delay graph would not fit the
// int32 vertex/arc indices the graph and its per-constraint subgraphs are
// stored in. Building it anyway would silently truncate indices.
var ErrGraphTooLarge = errors.New("dgraph: graph exceeds int32 index capacity")

// maxGraphInts is the largest vertex or arc count the int32 index layout
// can hold. A variable, not a constant, so the overflow test can lower it
// without building a >2^31-element circuit.
var maxGraphInts = math.MaxInt32

// Arc is one delay arc of G_D.
type Arc struct {
	From, To int // vertex indices
	Net      int // net index for net arcs, NoNet for cell arcs
	Sink     int // fan-out index within the net for net arcs
	T0       float64
}

// Graph is the global delay graph of a circuit.
type Graph struct {
	Ckt   *circuit.Circuit
	Verts []circuit.PinRef
	Arcs  []Arc

	vidx    vertIndex
	out, in [][]int // arc indices per vertex
	topo    []int   // vertices in topological order

	// netArcs[n] lists the arc indices of net n, in fan-out order.
	netArcs [][]int
	// lumpFan/lumpCap/lumpTd are the constant factors of the lumped delay
	// formula, precomputed per net at build time: the delay for wire
	// length L is lumpFan[n] + (L·lumpCap[n])·lumpTd[n], the exact
	// operation order of the original on-the-fly derivation. Deriving them
	// per call walks the driver and fan-out pin lists (allocating a
	// terminal slice each time), which the per-deletion timing refresh
	// cannot afford.
	lumpFan []float64 // (Σ Fin)·Tf
	lumpCap []float64 // WireCapPerUm(pitch)
	lumpTd  []float64 // Td of the driver
	cons    []consMask
	// consOfNet[n] lists constraints whose Gd(P) contains an arc of n.
	consOfNet [][]int
	// subs[p] is the compact induced subgraph of Gd(P) (see subgraph.go):
	// the per-constraint analysis walks it instead of the global graph.
	subs []subgraph
}

type consMask struct {
	inS, toT []bool // forward-reachable from S_P / backward-reachable to T_P
	srcs     []int
	sinks    []int
}

// vertIndex maps terminals to vertex indices without hashing: cell pins
// live in one flat array addressed by per-cell offsets, external terminals
// in their own array. -1 marks a terminal with no vertex.
type vertIndex struct {
	off  []int32 // per cell: start of its pin row in pins
	pins []int32 // vertex per (cell, pin)
	ext  []int32 // vertex per external terminal
}

func newVertIndex(ckt *circuit.Circuit) vertIndex {
	vi := vertIndex{off: make([]int32, len(ckt.Cells)+1)}
	total := 0
	for ci := range ckt.Cells {
		vi.off[ci] = int32(total)
		total += len(ckt.CellTypeOf(ci).Pins)
	}
	vi.off[len(ckt.Cells)] = int32(total)
	vi.pins = make([]int32, total)
	for i := range vi.pins {
		vi.pins[i] = -1
	}
	vi.ext = make([]int32, len(ckt.Ext))
	for i := range vi.ext {
		vi.ext[i] = -1
	}
	return vi
}

func (vi *vertIndex) get(ref circuit.PinRef) int {
	if ref.IsExt() {
		if ref.Pin < 0 || ref.Pin >= len(vi.ext) {
			return -1
		}
		return int(vi.ext[ref.Pin])
	}
	if ref.Cell < 0 || ref.Cell >= len(vi.off)-1 {
		return -1
	}
	row := vi.pins[vi.off[ref.Cell]:vi.off[ref.Cell+1]]
	if ref.Pin < 0 || ref.Pin >= len(row) {
		return -1
	}
	return int(row[ref.Pin])
}

func (vi *vertIndex) set(ref circuit.PinRef, v int) {
	if ref.IsExt() {
		vi.ext[ref.Pin] = int32(v)
		return
	}
	vi.pins[vi.off[ref.Cell]+int32(ref.Pin)] = int32(v)
}

// VertexOf returns the vertex index of a terminal, or -1 if the terminal is
// unconnected.
func (g *Graph) VertexOf(ref circuit.PinRef) int {
	return g.vidx.get(ref)
}

// NetArcs returns the arc indices of a net, in fan-out order.
func (g *Graph) NetArcs(net int) []int { return g.netArcs[net] }

// ConsOfNet returns the constraints whose Gd(P) contains an arc of net n.
func (g *Graph) ConsOfNet(net int) []int { return g.consOfNet[net] }

// ConesOverlap reports whether any constraint's Gd(P) cone contains arcs
// of both net a and net b — the timing half of the router's shard
// non-interaction criterion: with disjoint cones, changing one net's
// delay cannot move any margin the other net's criteria read. The
// consOfNet lists are built in ascending constraint order, so the query
// is a sorted-merge intersection, allocation-free.
func (g *Graph) ConesOverlap(a, b int) bool {
	ca, cb := g.consOfNet[a], g.consOfNet[b]
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i] == cb[j]:
			return true
		case ca[i] < cb[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// InGd reports whether arc a belongs to Gd(P): its tail is reachable from
// S_P and its head reaches T_P.
func (g *Graph) InGd(p, a int) bool {
	arc := &g.Arcs[a]
	return g.cons[p].inS[arc.From] && g.cons[p].toT[arc.To]
}

// New builds the delay graph. The circuit must validate (in particular the
// combinational part must be acyclic). Circuits whose vertex or arc count
// would overflow the int32 indices the graph (and its per-constraint
// subgraphs) are stored in are rejected with ErrGraphTooLarge.
func New(ckt *circuit.Circuit) (*Graph, error) {
	// Bounds first, from the circuit alone: newVertIndex below already
	// narrows pin offsets to int32, so the check cannot come after it.
	// Vertices are a subset of all terminals, net arcs number one per
	// non-driving terminal, and cell arcs are bounded by the per-cell arc
	// lists.
	totalPins := 0
	for ci := range ckt.Cells {
		totalPins += len(ckt.CellTypeOf(ci).Pins)
	}
	maxVerts := totalPins + len(ckt.Ext)
	maxArcs := len(ckt.Ext)
	for n := range ckt.Nets {
		maxArcs += len(ckt.Nets[n].Pins)
	}
	for ci := range ckt.Cells {
		maxArcs += len(ckt.CellTypeOf(ci).Arcs)
	}
	if maxVerts > maxGraphInts || maxArcs > maxGraphInts {
		return nil, fmt.Errorf("%w: %d terminals / %d arcs exceed the int32 index limit %d",
			ErrGraphTooLarge, maxVerts, maxArcs, maxGraphInts)
	}
	g := &Graph{Ckt: ckt, vidx: newVertIndex(ckt)}
	g.Verts = make([]circuit.PinRef, 0, maxVerts)
	g.Arcs = make([]Arc, 0, maxArcs)
	vert := func(ref circuit.PinRef) int {
		if v := g.vidx.get(ref); v >= 0 {
			return v
		}
		v := len(g.Verts)
		g.vidx.set(ref, v)
		g.Verts = append(g.Verts, ref)
		return v
	}

	// Net arcs: driver to each fan-out. The fan-outs are walked in
	// Terminals order (externals then cell pins, driver skipped) without
	// materializing the terminal slice; the load sum runs in the same
	// order so the float result is bit-identical to FanoutLoad.
	g.netArcs = make([][]int, len(ckt.Nets))
	g.lumpFan = make([]float64, len(ckt.Nets))
	g.lumpCap = make([]float64, len(ckt.Nets))
	g.lumpTd = make([]float64, len(ckt.Nets))
	netStart := make([]int32, len(ckt.Nets)+1)
	for n := range ckt.Nets {
		netStart[n] = int32(len(g.Arcs))
		drv, err := ckt.Driver(n)
		if err != nil {
			return nil, err
		}
		tf, td := ckt.DriveOf(drv)
		g.lumpCap[n] = ckt.Tech.WireCapPerUm(ckt.Nets[n].Pitch)
		g.lumpTd[n] = td
		dv := vert(drv)
		si := 0
		load := 0.0
		addSink := func(t circuit.PinRef) {
			load += ckt.FinOf(t)
			g.Arcs = append(g.Arcs, Arc{From: dv, To: vert(t), Net: n, Sink: si})
			si++
		}
		for i := range ckt.Ext {
			if ckt.Ext[i].Net == n {
				if r := circuit.Ext(i); r != drv {
					addSink(r)
				}
			}
		}
		for _, p := range ckt.Nets[n].Pins {
			if p != drv {
				addSink(p)
			}
		}
		g.lumpFan[n] = load * tf
	}
	netStart[len(ckt.Nets)] = int32(len(g.Arcs))
	arcIdx := make([]int, len(g.Arcs))
	for a := range arcIdx {
		arcIdx[a] = a
	}
	for n := range ckt.Nets {
		g.netArcs[n] = arcIdx[netStart[n]:netStart[n+1]:netStart[n+1]]
	}
	// Cell arcs, only between connected pins.
	idx := ckt.BuildPinNetIndex()
	for ci := range ckt.Cells {
		ct := ckt.CellTypeOf(ci)
		for _, arc := range ct.Arcs {
			fr := circuit.PinRef{Cell: ci, Pin: ct.PinIndex(arc.From)}
			to := circuit.PinRef{Cell: ci, Pin: ct.PinIndex(arc.To)}
			if !idx.Contains(fr) {
				continue
			}
			if !idx.Contains(to) {
				continue
			}
			g.Arcs = append(g.Arcs, Arc{From: vert(fr), To: vert(to), Net: NoNet, T0: arc.T0})
		}
	}

	// Per-vertex arc lists as views into two shared backing arrays: one
	// counting pass sizes every row, so no per-vertex append-and-regrow.
	g.out = make([][]int, len(g.Verts))
	g.in = make([][]int, len(g.Verts))
	outDeg := make([]int32, len(g.Verts))
	inDeg := make([]int32, len(g.Verts))
	for a := range g.Arcs {
		outDeg[g.Arcs[a].From]++
		inDeg[g.Arcs[a].To]++
	}
	outIdx := make([]int, len(g.Arcs))
	inIdx := make([]int, len(g.Arcs))
	off := 0
	for v := range g.out {
		g.out[v] = outIdx[off : off : off+int(outDeg[v])]
		off += int(outDeg[v])
	}
	off = 0
	for v := range g.in {
		g.in[v] = inIdx[off : off : off+int(inDeg[v])]
		off += int(inDeg[v])
	}
	for a := range g.Arcs {
		f, t := g.Arcs[a].From, g.Arcs[a].To
		g.out[f] = append(g.out[f], a)
		g.in[t] = append(g.in[t], a)
	}
	if err := g.toposort(); err != nil {
		return nil, err
	}
	g.buildConstraintMasks()
	g.buildSubgraphs()
	return g, nil
}

func (g *Graph) toposort() error {
	indeg := make([]int, len(g.Verts))
	for a := range g.Arcs {
		indeg[g.Arcs[a].To]++
	}
	queue := make([]int, 0, len(g.Verts))
	for v := range indeg {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	g.topo = g.topo[:0]
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.topo = append(g.topo, v)
		for _, a := range g.out[v] {
			w := g.Arcs[a].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(g.topo) != len(g.Verts) {
		return fmt.Errorf("dgraph: delay graph has a cycle")
	}
	return nil
}

func (g *Graph) buildConstraintMasks() {
	g.cons = make([]consMask, len(g.Ckt.Cons))
	g.consOfNet = make([][]int, len(g.Ckt.Nets))
	for p := range g.Ckt.Cons {
		m := consMask{
			inS: make([]bool, len(g.Verts)),
			toT: make([]bool, len(g.Verts)),
		}
		var fwd []int
		for _, r := range g.Ckt.Cons[p].From {
			if v := g.VertexOf(r); v >= 0 && !m.inS[v] {
				m.inS[v] = true
				m.srcs = append(m.srcs, v)
				fwd = append(fwd, v)
			}
		}
		for len(fwd) > 0 {
			v := fwd[len(fwd)-1]
			fwd = fwd[:len(fwd)-1]
			for _, a := range g.out[v] {
				if w := g.Arcs[a].To; !m.inS[w] {
					m.inS[w] = true
					fwd = append(fwd, w)
				}
			}
		}
		var bwd []int
		for _, r := range g.Ckt.Cons[p].To {
			if v := g.VertexOf(r); v >= 0 && !m.toT[v] {
				m.toT[v] = true
				m.sinks = append(m.sinks, v)
				bwd = append(bwd, v)
			}
		}
		for len(bwd) > 0 {
			v := bwd[len(bwd)-1]
			bwd = bwd[:len(bwd)-1]
			for _, a := range g.in[v] {
				if w := g.Arcs[a].From; !m.toT[w] {
					m.toT[w] = true
					bwd = append(bwd, w)
				}
			}
		}
		g.cons[p] = m
		for n := range g.Ckt.Nets {
			for _, a := range g.netArcs[n] {
				if g.InGd(p, a) {
					g.consOfNet[n] = append(g.consOfNet[n], p)
					break
				}
			}
		}
	}
}

// Reachable returns the vertex set reachable from a terminal along delay
// arcs (used e.g. to pick valid constraint endpoints). The result is
// indexed by vertex id; it is all-false for unconnected terminals.
func (g *Graph) Reachable(from circuit.PinRef) []bool {
	seen := make([]bool, len(g.Verts))
	start := g.VertexOf(from)
	if start < 0 {
		return seen
	}
	seen[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.out[v] {
			if w := g.Arcs[a].To; !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// LumpedArcDelay returns the net-arc delay of the lumped capacitance model
// for the given estimated wire length (µm): (Σ Fin)·Tf + CL·Td, shared by
// every sink of the net. Both factors are precomputed at build time, so
// this is two FLOPs — it sits inside the candidate-scoring inner loop.
func (g *Graph) LumpedArcDelay(net int, wirelenUm float64) float64 {
	cl := wirelenUm * g.lumpCap[net]
	return g.lumpFan[net] + cl*g.lumpTd[net]
}

// Timing holds arc delays plus per-constraint longest-path results. Create
// one with NewTiming, set delays, then Flush (or Analyze). The delay
// setters record which constraints are affected in a dirty set; Flush
// re-analyzes exactly those, fanning large batches out over Workers with
// byte-identical results for every worker count.
type Timing struct {
	G        *Graph
	ArcDelay []float64
	Cons     []ConsTiming

	// Workers bounds the Flush fan-out over dirty constraints, following
	// the core.Config.Workers convention: 0 = one per CPU, 1 = sequential.
	Workers int

	// Dirty-set bookkeeping. Owned by MarkNet/MarkAll/Flush — the bgr-vet
	// epochs analyzer rejects writes anywhere else, so the affected-
	// constraint tracking cannot be bypassed by a shortcut write.
	dirty      []bool
	dirtyCount int
	//bgr:owned -- Flush result backing, lent until the next Flush
	flushBuf []int

	// netSeen/netGen are the CriticalNets dedup scratch: a nets-aligned
	// mark slice with a generation counter (no per-call map allocation).
	netSeen []int
	netGen  int

	// refF is the graph-sized scratch of ReferenceWorst.
	refF []float64

	// fb is the reusable parallel-flush batch (see subgraph.go); keeping
	// it on the Timing means the fan-out path allocates nothing.
	fb flushBatch
}

// ConsTiming is the analysis of one constraint P.
type ConsTiming struct {
	// LpF[v] is the longest arrival delay from S_P to v within Gd(P);
	// LpR[v] the longest departure delay from v to T_P. Both are indexed
	// by the constraint's compact subgraph ids (local, topo-ordered) —
	// |Gd(P)| entries, not one per global vertex. Unreachable local
	// vertices hold -Inf.
	LpF, LpR []float64
	Worst    float64 // critical path delay of Gd(P)
	Margin   float64 // M(P) = limit - Worst
}

// NewTiming allocates a Timing with all cell-arc delays filled in and all
// net-arc delays zero. Every constraint starts dirty, so the first Flush
// (or Analyze) covers the full constraint set.
func (g *Graph) NewTiming() *Timing {
	t := &Timing{
		G:        g,
		ArcDelay: make([]float64, len(g.Arcs)),
		Cons:     make([]ConsTiming, len(g.Ckt.Cons)),
		dirty:    make([]bool, len(g.Ckt.Cons)),
	}
	for a := range g.Arcs {
		if g.Arcs[a].Net == NoNet {
			t.ArcDelay[a] = g.Arcs[a].T0
		}
	}
	for p := range t.Cons {
		n := len(g.subs[p].verts)
		t.Cons[p].LpF = make([]float64, n)
		t.Cons[p].LpR = make([]float64, n)
	}
	t.MarkAll()
	return t
}

// SetLumped sets every net arc's delay from the lumped model and the given
// per-net estimated wire lengths (µm), marking every constraint dirty.
func (t *Timing) SetLumped(wirelenUm []float64) {
	for n, arcs := range t.G.netArcs {
		d := t.G.LumpedArcDelay(n, wirelenUm[n])
		for _, a := range arcs {
			t.ArcDelay[a] = d
		}
	}
	t.MarkAll()
}

// SetNetLumped updates one net's arcs from the lumped model and marks the
// net's constraints dirty.
func (t *Timing) SetNetLumped(net int, wirelenUm float64) {
	d := t.G.LumpedArcDelay(net, wirelenUm)
	for _, a := range t.G.netArcs[net] {
		t.ArcDelay[a] = d
	}
	t.MarkNet(net)
}

// SetNetArcDelays sets per-sink delays for one net (Elmore/RC extension:
// each fan-out sees its own delay) and marks the net's constraints dirty.
// perSink is indexed like Fanouts(net).
func (t *Timing) SetNetArcDelays(net int, perSink []float64) {
	for i, a := range t.G.netArcs[net] {
		t.ArcDelay[a] = perSink[i]
	}
	t.MarkNet(net)
}

var negInf = math.Inf(-1)

// unreached reports whether a longest-path value is still the -Inf
// "no path reaches this vertex" sentinel. The sentinel is assigned and
// propagated verbatim — never the result of arithmetic — so exact
// comparison is the correct test.
func unreached(x float64) bool {
	return x == negInf //bgr:allow floateq -- audited: -Inf is assigned at init and only copied; every relax site checks unreached() before adding a delay, so the sentinel is never produced by arithmetic and exact equality is the correct test
}

// Analyze recomputes every constraint's longest paths and margin from the
// current arc delays, regardless of the dirty set (which it consumes:
// after Analyze nothing is pending).
func (t *Timing) Analyze() {
	t.MarkAll()
	t.Flush()
}

// AnalyzeCons recomputes only the given constraints. Exact when the arc
// delays that changed belong solely to nets inside those constraints'
// subgraphs — the other constraints' longest paths are untouched by
// construction. It neither consults nor clears the dirty set.
//
// Deprecated: nothing enforced the exactness precondition here — callers
// had to derive the affected-constraint list themselves and could get it
// wrong silently. Use the delay setters (or MarkNet) plus Flush instead:
// Flush computes the affected set from the graph's net→constraint index.
func (t *Timing) AnalyzeCons(ps []int) {
	for _, p := range ps {
		t.analyzeOne(p)
	}
}

// DeltaIfNetDelay returns the paper's pessimistic arrival increase used in
// LM(e,P): max over the arcs (v,w) of the net inside Gd(P) of
// max(0, lp(v) + dNew − lp(w)), where dNew is the prospective new arc
// delay of the net.
func (t *Timing) DeltaIfNetDelay(p, net int, dNew float64) float64 {
	ct := &t.Cons[p]
	sg := &t.G.subs[p]
	var worst float64
	for _, la := range sg.netArcsLocal(int32(net)) {
		a := &sg.arcs[la]
		fv, fw := ct.LpF[a.from], ct.LpF[a.to]
		if unreached(fv) || unreached(fw) {
			continue
		}
		if d := fv + dNew - fw; d > worst {
			worst = d
		}
	}
	return worst
}

const eps = 1e-9

// CriticalNets returns the nets with an arc on a critical (longest) path of
// constraint p, in order of first appearance along the topological order.
// Deduplication uses the Timing's nets-aligned mark slice, so calls do not
// allocate a map (and the output order is index-driven, not map-driven).
func (t *Timing) CriticalNets(p int) []int {
	ct := &t.Cons[p]
	sg := &t.G.subs[p]
	if t.netSeen == nil {
		t.netSeen = make([]int, len(t.G.Ckt.Nets))
	}
	t.netGen++
	gen := t.netGen
	var nets []int
	for v := 0; v < len(sg.verts); v++ {
		if unreached(ct.LpF[v]) || unreached(ct.LpR[v]) {
			continue
		}
		for ai := sg.outStart[v]; ai < sg.outStart[v+1]; ai++ {
			a := &sg.arcs[ai]
			if a.net == NoNet || t.netSeen[a.net] == gen {
				continue
			}
			if unreached(ct.LpR[a.to]) {
				continue
			}
			if math.Abs(ct.LpF[v]+t.ArcDelay[a.global]+ct.LpR[a.to]-ct.Worst) <= eps*(1+math.Abs(ct.Worst)) {
				t.netSeen[a.net] = gen
				nets = append(nets, int(a.net))
			}
		}
	}
	return nets
}

// CriticalPath returns the arc indices of one longest source-to-sink path
// of constraint p, in path order. It returns nil when the constraint has
// no path.
func (t *Timing) CriticalPath(p int) []int {
	ct := &t.Cons[p]
	sg := &t.G.subs[p]
	// Find the worst sink.
	end := int32(-1)
	for _, s := range sg.sinks {
		if !unreached(ct.LpF[s]) && ct.LpF[s] == ct.Worst { //bgr:allow floateq -- audited: Worst is a verbatim copy of the max sink LpF (analyzeOne), no arithmetic in between, so bitwise equality re-identifies the worst sink; the trivially-met Worst=0 rewrite only happens when every sink is unreached and the loop finds none
			end = s
			break
		}
	}
	if end == -1 {
		return nil
	}
	var rev []int
	v := end
	for ct.LpF[v] > 0 {
		found := int32(-1)
		for _, la := range sg.inArcs[sg.inStart[v]:sg.inStart[v+1]] {
			a := &sg.arcs[la]
			if unreached(ct.LpF[a.from]) {
				continue
			}
			d := ct.LpF[a.from] + t.ArcDelay[a.global]
			if math.Abs(d-ct.LpF[v]) <= eps*(1+math.Abs(ct.LpF[v])) {
				found = la
				break
			}
		}
		if found == -1 {
			break
		}
		rev = append(rev, int(sg.arcs[found].global))
		v = sg.arcs[found].from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WorstViolation returns the most-violated constraint index and its margin,
// or (-1, 0) when every constraint is met.
func (t *Timing) WorstViolation() (int, float64) {
	worst, at := 0.0, -1
	for p := range t.Cons {
		if t.Cons[p].Margin < worst {
			worst, at = t.Cons[p].Margin, p
		}
	}
	return at, worst
}

// NetSlacks runs the zero-interconnect analysis of §3.1 and returns, per
// net, the smallest path slack of any constraint arc the net lies on
// (+Inf for nets on no constrained path). The router orders feedthrough
// assignment by these values ascending.
func (g *Graph) NetSlacks() []float64 {
	t := g.NewTiming()
	t.SetLumped(make([]float64, len(g.Ckt.Nets)))
	t.Analyze()
	slacks := make([]float64, len(g.Ckt.Nets))
	for n := range slacks {
		slacks[n] = math.Inf(1)
		for _, p := range g.consOfNet[n] {
			ct := &t.Cons[p]
			sg := &g.subs[p]
			for _, la := range sg.netArcsLocal(int32(n)) {
				a := &sg.arcs[la]
				if unreached(ct.LpF[a.from]) || unreached(ct.LpR[a.to]) {
					continue
				}
				s := g.Ckt.Cons[p].Limit - (ct.LpF[a.from] + t.ArcDelay[a.global] + ct.LpR[a.to])
				if s < slacks[n] {
					slacks[n] = s
				}
			}
		}
	}
	return slacks
}
