// Package journal is an append-only, CRC-framed record log — the
// durability layer under bgr-serve. The service appends small typed
// records (job submitted, job terminal, finished result payload) as
// they happen; on restart it replays the file to rebuild terminal jobs
// and re-warm its result cache, so identical resubmissions hit disk
// instead of re-routing.
//
// On-disk record framing (integers big-endian):
//
//	record := length(uint32) crc(uint32) kind(1 byte) data(length-1 bytes)
//
// length covers kind+data; crc is IEEE CRC-32 over kind+data. Replay
// is torn-tail tolerant: a record whose header, body or CRC is
// truncated or corrupt ends the replay, and the file is truncated back
// to the last intact record before appends resume — exactly the state
// a crash mid-append leaves behind. Corruption is therefore never
// allowed to propagate: everything before the tear is trusted
// (CRC-verified), everything after it is discarded.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Kind tags a record's payload schema. The journal itself treats Data
// as opaque bytes; the service defines the JSON shapes.
type Kind byte

const (
	// KindSubmitted: a job was accepted for routing.
	KindSubmitted Kind = 1
	// KindTerminal: a job reached done/failed/cancelled.
	KindTerminal Kind = 2
	// KindResult: a finished routing's full result payload.
	KindResult Kind = 3
)

// Record is one replayed journal entry.
type Record struct {
	Kind Kind
	Data []byte
}

// SyncPolicy selects when appends reach stable storage. Every append
// is always flushed through to the OS (so a process crash loses
// nothing); the policy only controls fsync, i.e. power-loss durability.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (default; appends are rare —
	// a few per routed job — so the cost is noise next to routing).
	SyncAlways SyncPolicy = iota
	// SyncNone leaves persistence to the OS page cache.
	SyncNone
)

// ParsePolicy maps a flag string to a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("journal: unknown sync policy %q (want always|none)", s)
}

// headerLen is the per-record framing overhead: length + crc.
const headerLen = 8

// MaxRecordBytes caps one record's kind+data. Replay treats a larger
// length prefix as tail corruption rather than allocating it, so a
// flipped bit in a length field cannot OOM the server.
const MaxRecordBytes = 256 << 20

// ErrClosed: the journal was closed (e.g. during graceful drain) and
// no longer accepts appends.
var ErrClosed = errors.New("journal: closed")

// ErrTooLarge: a record exceeds MaxRecordBytes.
var ErrTooLarge = errors.New("journal: record exceeds size cap")

// Journal is an open journal file. Append/Sync/Close are safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	policy  SyncPolicy
	closed  bool
	records int64 // records in the file (replayed + appended)
	bytes   int64 // file size
}

// Open replays the journal at path (creating it if absent), truncates
// any torn tail, and returns the journal opened for append plus every
// intact record in append order.
func Open(path string, policy SyncPolicy) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if good != size {
		// Torn or corrupt tail: cut the file back to the last intact
		// record so the next append starts on a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	return &Journal{
		f:       f,
		w:       bufio.NewWriter(f),
		policy:  policy,
		records: int64(len(recs)),
		bytes:   good,
	}, recs, nil
}

// replay scans f from the start and returns the intact records plus
// the byte offset just past the last one. Any framing violation —
// short header, oversize length, CRC mismatch, short body — ends the
// scan there; it is reported via the returned offset, not an error.
func replay(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	br := bufio.NewReader(f)
	var recs []Record
	var good int64
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, good, nil
			}
			return nil, 0, fmt.Errorf("journal: replay: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < 1 || n > MaxRecordBytes {
			return recs, good, nil // corrupt length: treat as tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, good, nil
			}
			return nil, 0, fmt.Errorf("journal: replay: %w", err)
		}
		if crc32.ChecksumIEEE(body) != sum {
			return recs, good, nil // corrupt body: trust nothing past it
		}
		recs = append(recs, Record{Kind: Kind(body[0]), Data: body[1:]})
		good += headerLen + int64(n)
	}
}

// Append writes one record and flushes it to the OS; under SyncAlways
// it also fsyncs before returning, so a crash after Append cannot lose
// the record.
func (j *Journal) Append(kind Kind, data []byte) error {
	if len(data)+1 > MaxRecordBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data)+1)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	var hdr [headerLen]byte
	n := uint32(len(data) + 1)
	binary.BigEndian.PutUint32(hdr[:4], n)
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(kind)})
	crc.Write(data)
	binary.BigEndian.PutUint32(hdr[4:], crc.Sum32())
	if _, err := j.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.w.WriteByte(byte(kind)); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if _, err := j.w.Write(data); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.policy == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	j.records++
	j.bytes += headerLen + int64(n)
	return nil
}

// Sync flushes buffered appends and fsyncs, regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes, fsyncs and closes the file. Further appends return
// ErrClosed. Close is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.w.Flush()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats reports the records and bytes currently in the file
// (replayed + appended) for the service's /metrics document.
func (j *Journal) Stats() (records, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.bytes
}
