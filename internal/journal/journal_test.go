package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string, policy SyncPolicy) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, policy)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	want := []Record{
		{KindSubmitted, []byte(`{"id":"j0001"}`)},
		{KindResult, bytes.Repeat([]byte("x"), 4096)},
		{KindTerminal, nil}, // zero-length data is legal
		{KindSubmitted, []byte("a")},
	}
	j, recs := openT(t, path, SyncAlways)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for _, r := range want {
		if err := j.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	nrec, nbytes := j.Stats()
	if nrec != int64(len(want)) || nbytes <= 0 {
		t.Fatalf("stats after append: records=%d bytes=%d", nrec, nbytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append(KindSubmitted, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}

	j2, recs := openT(t, path, SyncNone)
	defer j2.Close()
	if !sameRecords(recs, want) {
		t.Fatalf("replay mismatch: got %d records", len(recs))
	}
	nrec, _ = j2.Stats()
	if nrec != int64(len(want)) {
		t.Fatalf("replayed stats: records=%d, want %d", nrec, len(want))
	}
}

// TestTruncatedTailEveryOffset is the crash-recovery contract: a
// journal cut anywhere inside its final record must replay every
// earlier record intact and leave the file appendable.
func TestTruncatedTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.journal")
	want := []Record{
		{KindSubmitted, []byte(`{"id":"j0001","hash":"aa"}`)},
		{KindResult, bytes.Repeat([]byte("payload"), 40)},
		{KindTerminal, []byte(`{"id":"j0001","state":"done"}`)},
	}
	j, _ := openT(t, master, SyncAlways)
	for _, r := range want[:len(want)-1] {
		if err := j.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	_, intact := j.Stats() // size before the final record
	last := want[len(want)-1]
	if err := j.Append(last.Kind, last.Data); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact; cut < int64(len(whole)); cut++ {
		path := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs := openT(t, path, SyncNone)
		if !sameRecords(recs, want[:len(want)-1]) {
			t.Fatalf("cut %d: replayed %d records, want the %d intact ones",
				cut, len(recs), len(want)-1)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != intact {
			t.Fatalf("cut %d: file not truncated back to %d (size %d, err %v)",
				cut, intact, fi.Size(), err)
		}
		// The recovered journal must accept appends on the clean boundary.
		if err := j.Append(last.Kind, last.Data); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs = openT(t, path, SyncNone)
		if !sameRecords(recs, want) {
			t.Fatalf("cut %d: re-replay after repair append mismatch", cut)
		}
	}
	// The untouched file replays everything.
	_, recs := openT(t, master, SyncNone)
	if !sameRecords(recs, want) {
		t.Fatalf("full file: replayed %d records, want %d", len(recs), len(want))
	}
}

func TestCorruptBodyEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openT(t, path, SyncAlways)
	for i := 0; i < 3; i++ {
		if err := j.Append(KindSubmitted, bytes.Repeat([]byte{byte('a' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(b) / 3
	b[recLen+headerLen+4] ^= 0xFF // flip a byte inside the second record's data
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openT(t, path, SyncNone)
	defer j2.Close()
	// Replay must keep the first record and drop the corrupt one and
	// everything after it — a CRC failure means the tail is untrusted.
	if len(recs) != 1 || !bytes.Equal(recs[0].Data, bytes.Repeat([]byte{'a'}, 32)) {
		t.Fatalf("replayed %d records past a corrupt body", len(recs))
	}
}

func TestOversizeLengthPrefixEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openT(t, path, SyncAlways)
	if err := j.Append(KindTerminal, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Append a fake header claiming a multi-GiB record: replay must not
	// try to allocate it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Close()
	j2, recs := openT(t, path, SyncNone)
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestAppendTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openT(t, path, SyncNone)
	defer j.Close()
	// The cap check runs before any write or CRC work, so the zero
	// pages of this over-cap slice are never touched.
	if err := j.Append(KindResult, make([]byte, MaxRecordBytes)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	if nrec, _ := j.Stats(); nrec != 0 {
		t.Fatalf("rejected append counted: records=%d", nrec)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParsePolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
