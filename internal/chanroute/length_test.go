package chanroute

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/rgraph"
)

// TestLengthAccountingHandExample verifies accumulate() against a
// hand-computed wire length on the SampleDiff pair net q: its tree is a
// single channel-1 segment from the driver tap to the receiver pin with a
// pin jog at each end.
func TestLengthAccountingHandExample(t *testing.T) {
	res, err := core.Route(circuit.SampleDiff(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	tech := res.Ckt.Tech
	// Locate net q's single segment in channel 1.
	var seg *Segment
	for _, s := range cr.Channels[1].Segments {
		if s.Net == 0 {
			if seg != nil {
				t.Fatal("net q has more than one channel-1 segment")
			}
			seg = s
		}
	}
	if seg == nil {
		t.Fatal("net q has no channel-1 segment")
	}
	if len(seg.Pins) != 2 {
		t.Fatalf("net q segment has %d pins, want 2", len(seg.Pins))
	}
	horizontal := float64(seg.Hi-seg.Lo) * tech.PitchX
	chanHeight := float64(cr.Channels[1].Tracks) * tech.TrackPitch
	trackY := (float64(seg.Track) + 0.5) * tech.TrackPitch
	var vertical float64
	for _, p := range seg.Pins {
		if p.FromTop {
			vertical += chanHeight - trackY
		} else {
			vertical += trackY
		}
	}
	want := horizontal + vertical
	if math.Abs(cr.NetLenUm[0]-want) > 1e-9 {
		t.Fatalf("net q length %v, hand computation %v", cr.NetLenUm[0], want)
	}
}

// TestLengthIncludesFeedthroughs checks that each feedthrough contributes
// exactly one row height.
func TestLengthIncludesFeedthroughs(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	for n, g := range res.Graphs {
		feeds := 0
		for _, e := range g.AliveEdges() {
			if g.Edges[e].Kind == rgraph.EFeed {
				feeds++
			}
		}
		if feeds == 0 {
			continue
		}
		// The net's length must be at least its feedthrough verticals.
		if cr.NetLenUm[n] < float64(feeds)*res.Ckt.Tech.RowHeight {
			t.Errorf("net %s: length %v below %d feedthroughs",
				res.Ckt.Nets[n].Name, cr.NetLenUm[n], feeds)
		}
	}
}

// TestAreaComposition: the chip height is rows + channel tracks, width is
// the column count.
func TestAreaComposition(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	tech := res.Ckt.Tech
	wantH := float64(res.Ckt.Rows) * tech.RowHeight
	for ci := range cr.Channels {
		wantH += float64(cr.Channels[ci].Tracks) * tech.TrackPitch
	}
	if math.Abs(cr.HeightUm-wantH) > 1e-9 {
		t.Fatalf("height %v, want %v", cr.HeightUm, wantH)
	}
	if wantW := float64(res.Ckt.Cols) * tech.PitchX; cr.WidthUm != wantW {
		t.Fatalf("width %v, want %v", cr.WidthUm, wantW)
	}
	if math.Abs(cr.AreaMm2-cr.WidthUm*cr.HeightUm/1e6) > 1e-12 {
		t.Fatal("area inconsistent with width x height")
	}
}
