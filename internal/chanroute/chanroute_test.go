package chanroute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
)

func seg(net, lo, hi int, pins ...Pin) *Segment {
	return &Segment{Net: net, Lo: lo, Hi: hi, Pins: pins, Width: 1, Track: -1}
}

// maxDensity computes the column density of a channel's proper segments.
func maxDensity(ch *Channel) int {
	counts := map[int]int{}
	max := 0
	for _, s := range ch.Segments {
		if s.Lo == s.Hi {
			continue
		}
		for x := s.Lo; x <= s.Hi; x++ {
			counts[x] += s.Width
			if counts[x] > max {
				max = counts[x]
			}
		}
	}
	return max
}

func TestSolveSimpleLeftEdge(t *testing.T) {
	// Three segments, no vertical constraints: 0-4, 5-9 share a track,
	// 2-7 takes another.
	ch := &Channel{Segments: []*Segment{seg(0, 0, 4), seg(1, 5, 9), seg(2, 2, 7)}}
	Solve(ch)
	if ch.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2", ch.Tracks)
	}
	if ch.Segments[0].Track != ch.Segments[1].Track {
		t.Fatal("non-overlapping segments should share a track")
	}
	if ch.Segments[2].Track == ch.Segments[0].Track {
		t.Fatal("overlapping segments on one track")
	}
	if ch.VCGViolations != 0 {
		t.Fatalf("violations = %d", ch.VCGViolations)
	}
}

func TestSolveRespectsVerticalConstraint(t *testing.T) {
	// Net 0 has a top pin at column 3; net 1 has a bottom pin there. Net 0
	// must land on a higher track even though left-edge order would pack
	// them the other way.
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 5, Pin{Col: 3, FromTop: true}),
		seg(1, 3, 8, Pin{Col: 3, FromTop: false}),
	}}
	Solve(ch)
	if ch.VCGViolations != 0 {
		t.Fatalf("violations = %d", ch.VCGViolations)
	}
	if !(ch.Segments[0].Track > ch.Segments[1].Track) {
		t.Fatalf("track(top-pin net) = %d must be above track(bottom-pin net) = %d",
			ch.Segments[0].Track, ch.Segments[1].Track)
	}
}

func TestSolveBreaksVCGCycleWithDogleg(t *testing.T) {
	// Classic cycle: at column 2, net 0 above net 1; at column 6, net 1
	// above net 0. A dogleg must resolve it without violations.
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 8, Pin{Col: 2, FromTop: true}, Pin{Col: 6, FromTop: false}),
		seg(1, 1, 9, Pin{Col: 2, FromTop: false}, Pin{Col: 6, FromTop: true}),
	}}
	Solve(ch)
	if ch.VCGViolations != 0 {
		t.Fatalf("cycle not resolved: %d violations", ch.VCGViolations)
	}
	split := false
	for _, s := range ch.Segments {
		if s.Dogleg {
			split = true
		}
	}
	if !split {
		t.Fatal("no dogleg recorded")
	}
}

func TestSolveStraightThroughNoTrack(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		seg(0, 4, 4, Pin{Col: 4, FromTop: true}, Pin{Col: 4, FromTop: false}),
		seg(1, 0, 9),
	}}
	Solve(ch)
	if ch.Tracks != 1 {
		t.Fatalf("tracks = %d, want 1 (straight-through is free)", ch.Tracks)
	}
	if ch.Segments[0].Track != -1 {
		t.Fatal("straight-through was assigned a track")
	}
}

func TestSolveWideSegmentTakesWidth(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		{Net: 0, Lo: 0, Hi: 9, Width: 2, Track: -1},
		{Net: 1, Lo: 2, Hi: 5, Width: 1, Track: -1},
	}}
	Solve(ch)
	if ch.Tracks != 3 {
		t.Fatalf("tracks = %d, want 3 (2-pitch + 1)", ch.Tracks)
	}
}

func TestSolveTracksAtLeastDensity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := &Channel{}
		for i := 0; i < 12; i++ {
			lo := rng.Intn(20)
			hi := lo + 1 + rng.Intn(10)
			s := seg(i, lo, hi)
			if rng.Intn(2) == 0 {
				s.Pins = append(s.Pins, Pin{Col: lo + rng.Intn(hi-lo), FromTop: rng.Intn(2) == 0})
			}
			ch.Segments = append(ch.Segments, s)
		}
		d := maxDensity(ch)
		Solve(ch)
		if ch.Tracks < d {
			return false
		}
		// Same-track segments never overlap across nets.
		for i, a := range ch.Segments {
			if a.Track < 0 {
				continue
			}
			for _, b := range ch.Segments[i+1:] {
				if b.Track != a.Track || b.Net == a.Net {
					continue
				}
				if a.Lo <= b.Hi && b.Lo <= a.Hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteEndToEnd(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := build()
		gres, err := core.Route(ckt, core.Config{UseConstraints: true})
		if err != nil {
			t.Fatalf("%s: %v", ckt.Name, err)
		}
		cres, err := Route(gres.Ckt, gres.Graphs)
		if err != nil {
			t.Fatalf("%s: %v", ckt.Name, err)
		}
		if cres.AreaMm2 <= 0 || cres.WidthUm <= 0 || cres.HeightUm <= 0 {
			t.Fatalf("%s: bad area %v (%v x %v)", ckt.Name, cres.AreaMm2, cres.WidthUm, cres.HeightUm)
		}
		var sum float64
		for n, l := range cres.NetLenUm {
			if l <= 0 {
				t.Errorf("%s: net %s length %v", ckt.Name, gres.Ckt.Nets[n].Name, l)
			}
			sum += l
		}
		if sum != cres.TotalLenUm {
			t.Errorf("%s: total length mismatch", ckt.Name)
		}
		// Post-routing lengths include vertical detail, so they are at
		// least the global estimates minus the nominal branch stubs.
		if cres.TotalLenUm < gres.TotalWirelenUm*0.5 {
			t.Errorf("%s: post-routing length %v suspiciously below estimate %v",
				ckt.Name, cres.TotalLenUm, gres.TotalWirelenUm)
		}
		// Track counts at least the channel density the router tracked.
		for ci := range cres.Channels {
			if cm := gres.Dens.Channel(ci).CM; cres.Channels[ci].Tracks < cm {
				t.Errorf("%s: channel %d tracks %d below density %d",
					ckt.Name, ci, cres.Channels[ci].Tracks, cm)
			}
		}
	}
}

func TestExtractCoversEveryPin(t *testing.T) {
	ckt := circuit.SampleSmall()
	gres, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	chans, err := Extract(gres.Ckt, gres.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	// Every net appears in at least one channel with at least as many
	// pins as it has terminals (feedthrough endpoints add more).
	pinCount := make(map[int]int)
	for ci := range chans {
		for _, s := range chans[ci].Segments {
			pinCount[s.Net] += len(s.Pins)
		}
	}
	for n := range gres.Ckt.Nets {
		if pinCount[n] < len(gres.Ckt.Terminals(n)) {
			t.Errorf("net %s: %d channel pins for %d terminals",
				gres.Ckt.Nets[n].Name, pinCount[n], len(gres.Ckt.Terminals(n)))
		}
	}
}

// TestBelowCountsMatchNaive cross-checks the cached pair counting against
// the direct O(n²) definition on random channels.
func TestBelowCountsMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var segs []*Segment
		for i := 0; i < 10; i++ {
			lo := rng.Intn(16)
			s := seg(i%7, lo, lo+1+rng.Intn(6))
			for k := 0; k < rng.Intn(3); k++ {
				s.Pins = append(s.Pins, Pin{Col: s.Lo + rng.Intn(s.Hi-s.Lo), FromTop: rng.Intn(2) == 0})
			}
			segs = append(segs, s)
		}
		sub := segs[:3+rng.Intn(len(segs)-3)]
		got := belowCounts(sub, vcgPairs(segs))
		for _, top := range sub {
			want := 0
			for _, bot := range sub {
				if top != bot && top.Net != bot.Net && mustBeAbove(top, bot) {
					want++
				}
			}
			if got[top.ord] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}
