// Package chanroute is the channel-router substrate: it turns finished
// global-routing trees into per-channel track assignments, final wire
// lengths and the chip area. The paper measures its critical-path delays
// "from routing lengths after channel routing" and its areas from the
// resulting channel heights; this package provides both.
//
// The algorithm is a constrained left-edge router: segments are packed
// into tracks bottom-up honoring the vertical constraint graph (a top pin
// and a bottom pin in the same column force their nets' relative track
// order); cycles are broken by dogleg splitting.
package chanroute

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/circuit"
	"repro/internal/rgraph"
)

// Pin is a vertical entry into a channel.
type Pin struct {
	Col     int
	FromTop bool // true: enters from the channel's upper boundary
}

// Segment is one horizontal piece of a net inside a channel.
type Segment struct {
	Net    int
	Lo, Hi int // column span, inclusive; Lo == Hi is a straight-through
	Pins   []Pin
	Width  int // pitch width (occupies Width tracks)
	Track  int // assigned bottom track index, -1 for straight-throughs
	Dogleg bool

	// ord is Solve scratch: the segment's index within the current unplaced
	// set (valid only while unplaced[ord] == s).
	ord int
	// mark is vcgPairs scratch for per-top-segment dedup.
	mark int
}

// Channel is the routing problem of one channel.
type Channel struct {
	Index    int
	Segments []*Segment
	// Tracks is the resulting track count (assigned by Route).
	Tracks int
	// VCGViolations counts constraints that had to be dropped after the
	// dogleg budget ran out (0 in normal operation).
	VCGViolations int
}

// Result is the chip-level channel-routing outcome.
type Result struct {
	Channels []Channel
	// NetLenUm is the post-channel-routing wire length per net, µm.
	NetLenUm []float64
	// TotalLenUm sums NetLenUm.
	TotalLenUm float64
	// WidthUm, HeightUm and AreaMm2 describe the resulting chip.
	WidthUm  float64
	HeightUm float64
	AreaMm2  float64
}

// Route extracts per-channel problems from the final routing graphs and
// solves each one.
func Route(ckt *circuit.Circuit, graphs []*rgraph.Graph) (*Result, error) {
	chans, err := Extract(ckt, graphs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Channels: chans,
		NetLenUm: make([]float64, len(ckt.Nets)),
	}
	for ci := range res.Channels {
		Solve(&res.Channels[ci])
	}
	res.accumulate(ckt, graphs)
	return res, nil
}

// Extract builds the channel problems from finished routing trees.
func Extract(ckt *circuit.Circuit, graphs []*rgraph.Graph) ([]Channel, error) {
	chans := make([]Channel, ckt.Channels())
	for ci := range chans {
		chans[ci].Index = ci
	}
	ws := extractWS{
		trunks:  make([][]iv, len(chans)),
		chanPin: make([][]Pin, len(chans)),
		usedPin: make([][]bool, len(chans)),
	}
	for n, g := range graphs {
		if !g.IsTree() {
			return nil, fmt.Errorf("chanroute: net %s is not finished", ckt.Nets[n].Name)
		}
		if err := extractNet(ckt, g, n, chans, &ws); err != nil {
			return nil, err
		}
	}
	return chans, nil
}

// iv is a trunk column interval.
type iv struct{ lo, hi int }

// extractWS holds the per-net extraction scratch, reused across nets so
// the per-channel bucket slices are allocated once per Extract instead of
// once per net.
type extractWS struct {
	//bgr:owned
	terms []circuit.PinRef
	//bgr:owned -- trunk intervals per channel
	trunks [][]iv
	//bgr:owned -- pins per channel
	chanPin [][]Pin
	//bgr:owned
	usedPin [][]bool
	//bgr:owned
	merged []iv
	//bgr:owned
	cols []int
}

// extractNet walks one net's alive edges and appends its segments (one per
// connected trunk component per channel, plus straight-throughs).
func extractNet(ckt *circuit.Circuit, g *rgraph.Graph, n int, chans []Channel, ws *extractWS) error {
	for ch := range chans {
		ws.trunks[ch] = ws.trunks[ch][:0]
		ws.chanPin[ch] = ws.chanPin[ch][:0]
	}
	ws.terms = ckt.AppendTerminals(ws.terms[:0], n)
	// Pins per channel column (branch edges are cell/external pins, feed
	// edges contribute both endpoints) and trunk intervals per channel.
	for _, e := range g.AliveEdges() {
		ed := &g.Edges[e]
		switch ed.Kind {
		case rgraph.EBranch:
			// The position vertex tells which side the pin is on.
			pv := ed.U
			if g.Verts[pv].Kind != rgraph.VPos {
				pv = ed.V
			}
			fromTop, err := pinFromTop(ckt, g, n, pv, ws.terms)
			if err != nil {
				return err
			}
			ws.chanPin[ed.Ch] = append(ws.chanPin[ed.Ch], Pin{Col: ed.X1, FromTop: fromTop})
		case rgraph.EFeed:
			// Feed through row r: enters channel r from its top boundary
			// and channel r+1 from its bottom boundary.
			ws.chanPin[ed.Ch] = append(ws.chanPin[ed.Ch], Pin{Col: ed.X1, FromTop: true})
			ws.chanPin[ed.Ch+1] = append(ws.chanPin[ed.Ch+1], Pin{Col: ed.X1, FromTop: false})
		case rgraph.ETrunk:
			ws.trunks[ed.Ch] = append(ws.trunks[ed.Ch], iv{ed.X1, ed.X2})
		}
	}
	for ch, ps := range ws.chanPin {
		used := ws.usedPin[ch][:0]
		for range ps {
			used = append(used, false)
		}
		ws.usedPin[ch] = used
	}
	for ch, list := range ws.trunks {
		if len(list) == 0 {
			continue
		}
		slices.SortFunc(list, func(a, b iv) int { return a.lo - b.lo })
		merged := ws.merged[:0]
		for _, x := range list {
			if len(merged) > 0 && x.lo <= merged[len(merged)-1].hi {
				if x.hi > merged[len(merged)-1].hi {
					merged[len(merged)-1].hi = x.hi
				}
				continue
			}
			merged = append(merged, x)
		}
		ws.merged = merged
		for _, m := range merged {
			seg := &Segment{Net: n, Lo: m.lo, Hi: m.hi, Width: g.Pitch, Track: -1}
			for pi, p := range ws.chanPin[ch] {
				if p.Col >= m.lo && p.Col <= m.hi && !ws.usedPin[ch][pi] {
					seg.Pins = append(seg.Pins, p)
					ws.usedPin[ch][pi] = true
				}
			}
			chans[ch].Segments = append(chans[ch].Segments, seg)
		}
	}
	// Remaining pins form straight-throughs (vertical connections with no
	// horizontal extent), grouped per channel+column in first-appearance
	// pin order.
	for ch, ps := range ws.chanPin {
		cols := ws.cols[:0]
		for pi, p := range ps {
			if ws.usedPin[ch][pi] {
				continue
			}
			dup := false
			for _, c := range cols {
				if c == p.Col {
					dup = true
					break
				}
			}
			if !dup {
				cols = append(cols, p.Col)
			}
		}
		ws.cols = cols
		sort.Ints(cols)
		for _, col := range cols {
			var segPins []Pin
			for pi, p := range ps {
				if !ws.usedPin[ch][pi] && p.Col == col {
					segPins = append(segPins, p)
				}
			}
			chans[ch].Segments = append(chans[ch].Segments, &Segment{
				Net: n, Lo: col, Hi: col, Pins: segPins, Width: g.Pitch, Track: -1,
			})
		}
	}
	return nil
}

// pinFromTop decides whether a position vertex enters its channel from the
// channel's upper boundary. terms is the net's terminal list (Terminals
// order), passed in so the per-net lookup is done once by the caller.
func pinFromTop(ckt *circuit.Circuit, g *rgraph.Graph, n int, pv int, terms []circuit.PinRef) (bool, error) {
	ti := g.Verts[pv].Term
	if ti < 0 || ti >= len(terms) {
		return false, fmt.Errorf("chanroute: net %s position vertex without terminal", ckt.Nets[n].Name)
	}
	ref := terms[ti]
	if ref.IsExt() {
		// A bottom-edge external pin is below channel 0; a top-edge one is
		// above the last channel.
		return ckt.Ext[ref.Pin].Side == circuit.Top, nil
	}
	// A pin on the bottom of row r lives in channel r, whose upper
	// boundary is row r itself: it enters from the top. A pin on the top
	// of row r lives in channel r+1 and enters from the bottom.
	return ckt.PinDefOf(ref).Side == circuit.Bottom, nil
}

// Solve assigns tracks in one channel: constrained left-edge, bottom-up,
// with dogleg splitting on vertical-constraint cycles. It is exported for
// direct channel-level use.
func Solve(ch *Channel) {
	// Straight-throughs need no track.
	var segs []*Segment
	for _, s := range ch.Segments {
		if s.Lo < s.Hi {
			segs = append(segs, s)
		}
	}
	doglegBudget := 2*len(segs) + 8
	track := 0
	unplaced := segs
	pairs := vcgPairs(segs) // (above, below) constraints, rebuilt after doglegs
	// Per-iteration scratch, reused across the track loop.
	var below []int
	var cands []*Segment
	var placed []bool
	for len(unplaced) > 0 {
		below = belowCountsInto(below[:0], unplaced, pairs)
		// Candidates: segments whose below-set is fully placed.
		cands = cands[:0]
		for _, s := range unplaced {
			if below[s.ord] == 0 {
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			if doglegBudget > 0 {
				doglegBudget--
				if dogleg(ch, &unplaced) {
					pairs = vcgPairs(unplaced)
					continue
				}
			}
			// Give up on the remaining constraints: place everything by
			// pure left-edge and count the violations. cands must stay a
			// copy — aliasing unplaced here would let the reused buffers
			// clobber each other on the next iteration.
			ch.VCGViolations += len(unplaced)
			cands = append(cands, unplaced...)
		}
		slices.SortFunc(cands, func(a, b *Segment) int {
			if a.Lo != b.Lo {
				return a.Lo - b.Lo
			}
			return a.Hi - b.Hi
		})
		// Pack one track greedily. Wide segments occupy Width tracks; for
		// simplicity a track row containing a wide segment advances by
		// the widest member.
		rowEnd := -1
		widest := 1
		placed = placed[:0]
		for range unplaced {
			placed = append(placed, false)
		}
		for _, s := range cands {
			if s.Lo <= rowEnd {
				continue
			}
			s.Track = track
			placed[s.ord] = true
			rowEnd = s.Hi
			if s.Width > widest {
				widest = s.Width
			}
		}
		next := unplaced[:0]
		for _, s := range unplaced {
			if !placed[s.ord] {
				next = append(next, s)
			}
		}
		unplaced = next
		track += widest
	}
	ch.Tracks = track
}

// vcgPairs precomputes the vertical-constraint pairs (a must be above b)
// among the given segments; the counts per iteration then cost O(pairs)
// instead of O(n²) pin scans.
func vcgPairs(segs []*Segment) [][2]*Segment {
	// Index bottom pins by column so each top pin probes only the segments
	// that actually share its column, instead of the O(n²·pins²) all-pairs
	// mustBeAbove scan.
	maxCol := -1
	for _, s := range segs {
		s.mark = 0
		for _, p := range s.Pins {
			if p.Col > maxCol {
				maxCol = p.Col
			}
		}
	}
	botAt := make([][]*Segment, maxCol+1)
	for _, s := range segs {
		for _, p := range s.Pins {
			if !p.FromTop {
				botAt[p.Col] = append(botAt[p.Col], s)
			}
		}
	}
	var pairs [][2]*Segment
	gen := 0
	for _, top := range segs {
		gen++
		for _, p := range top.Pins {
			if !p.FromTop {
				continue
			}
			for _, bot := range botAt[p.Col] {
				if bot == top || bot.Net == top.Net || bot.mark == gen {
					continue
				}
				bot.mark = gen // emit each (top, bot) pair once
				pairs = append(pairs, [2]*Segment{top, bot})
			}
		}
	}
	return pairs
}

// belowCounts returns, for each unplaced segment (indexed by the ord field
// it assigns), how many still-unplaced segments must lie below it.
func belowCounts(unplaced []*Segment, pairs [][2]*Segment) []int {
	return belowCountsInto(nil, unplaced, pairs)
}

// belowCountsInto is belowCounts appending into a caller-owned buffer.
func belowCountsInto(below []int, unplaced []*Segment, pairs [][2]*Segment) []int {
	for i, s := range unplaced {
		s.ord = i
	}
	in := func(s *Segment) bool {
		return s.ord < len(unplaced) && unplaced[s.ord] == s
	}
	for range unplaced {
		below = append(below, 0)
	}
	for _, pr := range pairs {
		if in(pr[0]) && in(pr[1]) {
			below[pr[0].ord]++
		}
	}
	return below
}

// mustBeAbove reports whether segment a has a top pin at a column where b
// has a bottom pin: a's track must then be above b's.
func mustBeAbove(a, b *Segment) bool {
	for _, pa := range a.Pins {
		if !pa.FromTop {
			continue
		}
		for _, pb := range b.Pins {
			if !pb.FromTop && pb.Col == pa.Col {
				return true
			}
		}
	}
	return false
}

// dogleg splits one cycle participant at an interior column, appending the
// right half as a new segment. It reports whether a split happened.
func dogleg(ch *Channel, unplaced *[]*Segment) bool {
	// Prefer a segment with an interior pin; fall back to the longest.
	var pick *Segment
	splitAt := -1
	for _, s := range *unplaced {
		for _, p := range s.Pins {
			if p.Col > s.Lo && p.Col < s.Hi {
				pick, splitAt = s, p.Col
				break
			}
		}
		if pick != nil {
			break
		}
	}
	if pick == nil {
		for _, s := range *unplaced {
			if s.Hi-s.Lo >= 2 && (pick == nil || s.Hi-s.Lo > pick.Hi-pick.Lo) {
				pick = s
			}
		}
		if pick == nil {
			return false
		}
		splitAt = (pick.Lo + pick.Hi) / 2
	}
	right := &Segment{Net: pick.Net, Lo: splitAt, Hi: pick.Hi, Width: pick.Width, Track: -1, Dogleg: true}
	var leftPins []Pin
	for _, p := range pick.Pins {
		if p.Col > splitAt {
			right.Pins = append(right.Pins, p)
		} else {
			leftPins = append(leftPins, p)
		}
	}
	pick.Hi = splitAt
	pick.Pins = leftPins
	pick.Dogleg = true
	ch.Segments = append(ch.Segments, right)
	*unplaced = append(*unplaced, right)
	return true
}

// accumulate computes final lengths and area from the solved channels.
func (res *Result) accumulate(ckt *circuit.Circuit, graphs []*rgraph.Graph) {
	t := ckt.Tech
	res.WidthUm = float64(ckt.Cols) * t.PitchX
	res.HeightUm = float64(ckt.Rows) * t.RowHeight
	chanHeight := make([]float64, len(res.Channels))
	for ci := range res.Channels {
		h := float64(res.Channels[ci].Tracks) * t.TrackPitch
		chanHeight[ci] = h
		res.HeightUm += h
	}
	trackY := func(ci, track, width int) float64 {
		return (float64(track) + float64(width)/2) * t.TrackPitch
	}
	// Horizontal spans and vertical entries.
	for ci := range res.Channels {
		chn := &res.Channels[ci]
		for _, s := range chn.Segments {
			res.NetLenUm[s.Net] += float64(s.Hi-s.Lo) * t.PitchX
			if s.Lo == s.Hi {
				// Straight-through: full channel height.
				res.NetLenUm[s.Net] += chanHeight[ci]
				continue
			}
			y := trackY(ci, s.Track, s.Width)
			for _, p := range s.Pins {
				if p.FromTop {
					res.NetLenUm[s.Net] += chanHeight[ci] - y
				} else {
					res.NetLenUm[s.Net] += y
				}
			}
		}
		// Dogleg jogs: adjacent same-net segments sharing a column.
		for i, a := range chn.Segments {
			if !a.Dogleg || a.Track < 0 {
				continue
			}
			for _, b := range chn.Segments[i+1:] {
				if b.Net == a.Net && b.Dogleg && b.Track >= 0 && (b.Lo == a.Hi || b.Hi == a.Lo) {
					dy := trackY(ci, a.Track, a.Width) - trackY(ci, b.Track, b.Width)
					if dy < 0 {
						dy = -dy
					}
					res.NetLenUm[a.Net] += dy
				}
			}
		}
	}
	// Feedthrough verticals.
	for n, g := range graphs {
		for _, e := range g.AliveEdges() {
			if g.Edges[e].Kind == rgraph.EFeed {
				res.NetLenUm[n] += t.RowHeight
			}
		}
	}
	for _, l := range res.NetLenUm {
		res.TotalLenUm += l
	}
	res.AreaMm2 = res.WidthUm * res.HeightUm / 1e6
}

// Algorithm selects the channel-routing algorithm.
type Algorithm int

const (
	// LeftEdge is the constrained left-edge router with a global VCG
	// pass and doglegs (the default).
	LeftEdge Algorithm = iota
	// Greedy is the column-scan greedy router (Rivest-Fiduccia flavor).
	Greedy
)

// RouteWith is Route with an explicit algorithm choice.
func RouteWith(ckt *circuit.Circuit, graphs []*rgraph.Graph, algo Algorithm) (*Result, error) {
	chans, err := Extract(ckt, graphs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Channels: chans,
		NetLenUm: make([]float64, len(ckt.Nets)),
	}
	for ci := range res.Channels {
		switch algo {
		case Greedy:
			SolveGreedy(&res.Channels[ci])
		default:
			Solve(&res.Channels[ci])
		}
	}
	res.accumulate(ckt, graphs)
	return res, nil
}
