package chanroute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
)

func TestGreedySimple(t *testing.T) {
	ch := &Channel{Segments: []*Segment{seg(0, 0, 4), seg(1, 5, 9), seg(2, 2, 7)}}
	SolveGreedy(ch)
	if ch.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2", ch.Tracks)
	}
	for i, a := range ch.Segments {
		for _, b := range ch.Segments[i+1:] {
			if a.Track == b.Track && a.Net != b.Net && a.Lo <= b.Hi && b.Lo <= a.Hi {
				t.Fatalf("overlap on track %d: nets %d and %d", a.Track, a.Net, b.Net)
			}
		}
	}
}

func TestGreedyRespectsVerticalConstraint(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 5, Pin{Col: 3, FromTop: true}),
		seg(1, 3, 8, Pin{Col: 3, FromTop: false}),
	}}
	SolveGreedy(ch)
	if ch.VCGViolations != 0 {
		t.Fatalf("violations = %d", ch.VCGViolations)
	}
	// At column 3 the top-pin net's occupying segment must be above the
	// bottom-pin net's.
	topAt, botAt := -1, -1
	for _, s := range ch.Segments {
		if s.Lo <= 3 && 3 <= s.Hi && s.Track >= 0 {
			if s.Net == 0 && pinSideRank(s, 3) == 2 {
				topAt = s.Track
			}
			if s.Net == 1 && pinSideRank(s, 3) == 0 {
				botAt = s.Track
			}
		}
	}
	if topAt == -1 || botAt == -1 {
		t.Fatalf("pins lost during routing: top %d bot %d\n%+v", topAt, botAt, ch.Segments)
	}
	if topAt <= botAt {
		t.Fatalf("top net on track %d not above bottom net on %d", topAt, botAt)
	}
}

func TestGreedyCycleResolvedByJog(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 8, Pin{Col: 2, FromTop: true}, Pin{Col: 6, FromTop: false}),
		seg(1, 1, 9, Pin{Col: 2, FromTop: false}, Pin{Col: 6, FromTop: true}),
	}}
	SolveGreedy(ch)
	if ch.VCGViolations != 0 {
		t.Fatalf("cycle unresolved: %d violations", ch.VCGViolations)
	}
	jogged := false
	for _, s := range ch.Segments {
		if s.Dogleg {
			jogged = true
		}
	}
	if !jogged {
		t.Fatal("no jog recorded for the VCG cycle")
	}
}

func TestGreedyWideSegment(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		{Net: 0, Lo: 0, Hi: 9, Width: 2, Track: -1},
		{Net: 1, Lo: 2, Hi: 5, Width: 1, Track: -1},
	}}
	SolveGreedy(ch)
	if ch.Tracks != 3 {
		t.Fatalf("tracks = %d, want 3", ch.Tracks)
	}
}

// TestGreedyVsLeftEdgeQuick compares the two algorithms on random
// channels: both must be overlap-free and within a small factor of the
// density lower bound.
func TestGreedyVsLeftEdgeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Channel {
			ch := &Channel{}
			for i := 0; i < 10; i++ {
				lo := rng.Intn(18)
				hi := lo + 1 + rng.Intn(8)
				s := seg(i, lo, hi)
				if rng.Intn(2) == 0 {
					s.Pins = append(s.Pins, Pin{Col: lo + rng.Intn(hi-lo), FromTop: rng.Intn(2) == 0})
				}
				ch.Segments = append(ch.Segments, s)
			}
			return ch
		}
		rngState := rng.Int63()
		rng = rand.New(rand.NewSource(rngState))
		a := mk()
		rng = rand.New(rand.NewSource(rngState))
		b := mk()
		Solve(a)
		SolveGreedy(b)
		check := func(ch *Channel) bool {
			for i, x := range ch.Segments {
				if x.Lo >= x.Hi || x.Track < 0 {
					continue
				}
				for _, y := range ch.Segments[i+1:] {
					if y.Lo >= y.Hi || y.Track < 0 || y.Net == x.Net {
						continue
					}
					if y.Track == x.Track && x.Lo <= y.Hi && y.Lo <= x.Hi {
						return false
					}
				}
			}
			return true
		}
		d := maxDensity(a)
		return check(a) && check(b) && a.Tracks >= d && b.Tracks >= d && b.Tracks <= 3*d+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteWithBothAlgorithms(t *testing.T) {
	gres, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	lea, err := RouteWith(gres.Ckt, gres.Graphs, LeftEdge)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := RouteWith(gres.Ckt, gres.Graphs, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if lea.AreaMm2 <= 0 || grd.AreaMm2 <= 0 {
		t.Fatal("missing areas")
	}
	// Both must produce positive lengths for every net; the greedy one may
	// be taller but not absurdly so.
	for n := range gres.Ckt.Nets {
		if lea.NetLenUm[n] <= 0 || grd.NetLenUm[n] <= 0 {
			t.Fatalf("net %d: lengths %v / %v", n, lea.NetLenUm[n], grd.NetLenUm[n])
		}
	}
	if grd.HeightUm > lea.HeightUm*2 {
		t.Fatalf("greedy chip height %v implausible vs LEA %v", grd.HeightUm, lea.HeightUm)
	}
}
