package chanroute_test

import (
	"fmt"

	"repro/internal/chanroute"
)

// ExampleSolve routes one channel with the constrained left-edge
// algorithm: two non-overlapping segments share a track, and a vertical
// constraint keeps the top-pin net above the bottom-pin net.
func ExampleSolve() {
	ch := &chanroute.Channel{Segments: []*chanroute.Segment{
		{Net: 0, Lo: 0, Hi: 4, Width: 1, Track: -1},
		{Net: 1, Lo: 5, Hi: 9, Width: 1, Track: -1},
		{Net: 2, Lo: 2, Hi: 7, Width: 1, Track: -1,
			Pins: []chanroute.Pin{{Col: 3, FromTop: true}}},
		{Net: 3, Lo: 3, Hi: 8, Width: 1, Track: -1,
			Pins: []chanroute.Pin{{Col: 3, FromTop: false}}},
	}}
	chanroute.Solve(ch)
	fmt.Printf("tracks: %d, violations: %d\n", ch.Tracks, ch.VCGViolations)
	fmt.Printf("net 2 above net 3: %v\n", ch.Segments[2].Track > ch.Segments[3].Track)
	// Output:
	// tracks: 3, violations: 0
	// net 2 above net 3: true
}
