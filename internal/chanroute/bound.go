package chanroute

// LowerBound returns the classic channel-routing lower bound on track
// count: the maximum of the column density and the longest chain in the
// vertical constraint graph (each VCG arc forces one extra track level).
// Solvers can be judged by their gap to this bound.
func LowerBound(ch *Channel) int {
	d := densityBound(ch)
	if v := vcgChainBound(ch); v > d {
		return v
	}
	return d
}

func densityBound(ch *Channel) int {
	counts := map[int]int{}
	max := 0
	for _, s := range ch.Segments {
		if s.Lo >= s.Hi {
			continue
		}
		w := s.Width
		if w < 1 {
			w = 1
		}
		for x := s.Lo; x <= s.Hi; x++ {
			counts[x] += w
			if counts[x] > max {
				max = counts[x]
			}
		}
	}
	return max
}

// vcgChainBound computes the longest path (in segments) through the
// vertical constraint graph; a chain of k constrained segments needs at
// least k tracks. Cycles (resolved by doglegs at solve time) contribute
// their longest acyclic chain; we bound conservatively by breaking cycles
// at the lowest-index participant.
func vcgChainBound(ch *Channel) int {
	var segs []*Segment
	for _, s := range ch.Segments {
		if s.Lo < s.Hi {
			segs = append(segs, s)
		}
	}
	n := len(segs)
	if n == 0 {
		return 0
	}
	// above[i][j]: segment i must be above segment j.
	adj := make([][]int, n)
	for i, a := range segs {
		for j, b := range segs {
			if i != j && a.Net != b.Net && mustBeAbove(a, b) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	// Longest path in the (possibly cyclic) digraph, with DFS states to
	// cut cycles.
	memo := make([]int, n)
	state := make([]int, n) // 0 new, 1 active, 2 done
	var dfs func(v int) int
	dfs = func(v int) int {
		switch state[v] {
		case 1:
			return 0 // cycle: cut here
		case 2:
			return memo[v]
		}
		state[v] = 1
		best := 0
		for _, w := range adj[v] {
			if d := dfs(w); d > best {
				best = d
			}
		}
		state[v] = 2
		memo[v] = best + widthOf(segs[v])
		return memo[v]
	}
	bound := 0
	for v := range segs {
		if d := dfs(v); d > bound {
			bound = d
		}
	}
	return bound
}

func widthOf(s *Segment) int {
	if s.Width < 1 {
		return 1
	}
	return s.Width
}
