package chanroute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
)

func TestLowerBoundDensityOnly(t *testing.T) {
	ch := &Channel{Segments: []*Segment{seg(0, 0, 4), seg(1, 2, 7), seg(2, 3, 9)}}
	if got := LowerBound(ch); got != 3 {
		t.Fatalf("bound = %d, want 3 (density at column 3-4)", got)
	}
}

func TestLowerBoundVCGChain(t *testing.T) {
	// Three segments overlapping only pairwise would pack into 2 tracks
	// by density, but a VCG chain a>b>c forces 3.
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 4, Pin{Col: 2, FromTop: true}),
		seg(1, 1, 6, Pin{Col: 2, FromTop: false}, Pin{Col: 5, FromTop: true}),
		seg(2, 5, 9, Pin{Col: 5, FromTop: false}),
	}}
	if got := LowerBound(ch); got != 3 {
		t.Fatalf("bound = %d, want 3 (VCG chain)", got)
	}
}

func TestLowerBoundCycleCut(t *testing.T) {
	// A 2-cycle must not loop forever and bounds at least the density.
	ch := &Channel{Segments: []*Segment{
		seg(0, 0, 8, Pin{Col: 2, FromTop: true}, Pin{Col: 6, FromTop: false}),
		seg(1, 1, 9, Pin{Col: 2, FromTop: false}, Pin{Col: 6, FromTop: true}),
	}}
	got := LowerBound(ch)
	if got < 2 {
		t.Fatalf("bound = %d, want >= 2", got)
	}
}

func TestLowerBoundWideSegments(t *testing.T) {
	ch := &Channel{Segments: []*Segment{
		{Net: 0, Lo: 0, Hi: 9, Width: 2, Track: -1},
		{Net: 1, Lo: 2, Hi: 5, Width: 1, Track: -1},
	}}
	if got := LowerBound(ch); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
}

// TestSolversRespectLowerBound: both channel routers always meet or exceed
// the lower bound, and on random instances the left-edge router stays
// within a small factor of it.
func TestSolversRespectLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Channel {
			ch := &Channel{}
			for i := 0; i < 12; i++ {
				lo := rng.Intn(20)
				hi := lo + 1 + rng.Intn(8)
				s := seg(i, lo, hi)
				if rng.Intn(3) == 0 {
					s.Pins = append(s.Pins, Pin{Col: lo + rng.Intn(hi-lo), FromTop: rng.Intn(2) == 0})
				}
				ch.Segments = append(ch.Segments, s)
			}
			return ch
		}
		state := rng.Int63()
		rng = rand.New(rand.NewSource(state))
		a := mk()
		rng = rand.New(rand.NewSource(state))
		b := mk()
		bound := LowerBound(a)
		Solve(a)
		SolveGreedy(b)
		if a.Tracks < bound || b.Tracks < bound {
			return false
		}
		return a.Tracks <= 2*bound+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutedChannelsNearBound(t *testing.T) {
	// On a real routed circuit the left-edge router's total tracks stay
	// close to the sum of per-channel lower bounds.
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	chans, err := Extract(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	boundSum, trackSum := 0, 0
	for ci := range chans {
		boundSum += LowerBound(&chans[ci])
		Solve(&chans[ci])
		trackSum += chans[ci].Tracks
	}
	if trackSum < boundSum {
		t.Fatalf("tracks %d below bound %d", trackSum, boundSum)
	}
	if trackSum > boundSum*2 {
		t.Fatalf("tracks %d more than 2x bound %d", trackSum, boundSum)
	}
}
