package chanroute

import "sort"

// SolveGreedy assigns tracks with a column-scan greedy router in the
// spirit of Rivest-Fiduccia: segments claim tracks as the scan reaches
// their left edge (bottom pins prefer low tracks, top pins high tracks),
// and vertical conflicts discovered at a pin column are resolved by
// moving or splitting the upper net to a higher track (a jog). It is the
// comparison algorithm to Solve's constrained left-edge; it may use more
// tracks but needs no global VCG pass. Any constraint it cannot satisfy
// is counted in VCGViolations by a final audit.
func SolveGreedy(ch *Channel) {
	g := &greedy{ch: ch}
	var segs []*Segment
	maxCol := 0
	for _, s := range ch.Segments {
		if s.Lo < s.Hi {
			segs = append(segs, s)
			if s.Hi > maxCol {
				maxCol = s.Hi
			}
		}
	}
	if len(segs) == 0 {
		ch.Tracks = 0
		return
	}
	starts := map[int][]*Segment{}
	for _, s := range segs {
		starts[s.Lo] = append(starts[s.Lo], s)
	}
	for c := 0; c <= maxCol; c++ {
		newcomers := starts[c]
		// Bottom-pin newcomers first so they land low before top-pin
		// newcomers take the high tracks.
		sort.SliceStable(newcomers, func(i, j int) bool {
			return pinSideRank(newcomers[i], c) < pinSideRank(newcomers[j], c)
		})
		for _, s := range newcomers {
			g.claim(s, pinSideRank(s, c) == 2)
		}
		// Jogs can expose further conflicts at the same column, so
		// iterate to a bounded fixpoint.
		for iter := 0; iter < 2*len(segs)+4; iter++ {
			if !g.resolveColumn(c) {
				break
			}
		}
	}
	ch.Tracks = len(g.tracks)
	ch.VCGViolations += auditVCG(ch)
}

// greedy keeps the full placement history per track so interval freedom
// is always exact.
type greedy struct {
	ch     *Channel
	tracks [][]*Segment
}

// fits reports whether segment s could sit on track t (no overlap with a
// different net).
func (g *greedy) fits(t int, s *Segment) bool {
	for _, o := range g.tracks[t] {
		if o == s || o.Net == s.Net {
			continue
		}
		if s.Lo <= o.Hi && o.Lo <= s.Hi {
			return false
		}
	}
	return true
}

// groupFits checks s.Width adjacent tracks starting at t.
func (g *greedy) groupFits(t int, s *Segment) bool {
	w := max(s.Width, 1)
	if t < 0 || t+w > len(g.tracks) {
		return false
	}
	for j := 0; j < w; j++ {
		if !g.fits(t+j, s) {
			return false
		}
	}
	return true
}

func (g *greedy) place(t int, s *Segment) {
	w := max(s.Width, 1)
	for j := 0; j < w; j++ {
		g.tracks[t+j] = append(g.tracks[t+j], s)
	}
	s.Track = t
}

func (g *greedy) unplace(s *Segment) {
	w := max(s.Width, 1)
	for j := 0; j < w; j++ {
		t := s.Track + j
		list := g.tracks[t][:0]
		for _, o := range g.tracks[t] {
			if o != s {
				list = append(list, o)
			}
		}
		g.tracks[t] = list
	}
}

func (g *greedy) grow(n int) {
	for i := 0; i < n; i++ {
		g.tracks = append(g.tracks, nil)
	}
}

// claim finds a track group for a newcomer, preferring the top of the
// channel for segments entering with a top pin.
func (g *greedy) claim(s *Segment, preferTop bool) {
	w := max(s.Width, 1)
	pick := -1
	if preferTop {
		for t := len(g.tracks) - w; t >= 0; t-- {
			if g.groupFits(t, s) {
				pick = t
				break
			}
		}
	} else {
		for t := 0; t+w <= len(g.tracks); t++ {
			if g.groupFits(t, s) {
				pick = t
				break
			}
		}
	}
	if pick == -1 {
		g.grow(w)
		pick = len(g.tracks) - w
	}
	g.place(pick, s)
}

// pinSideRank classifies a segment's pin at a column: 0 bottom pin, 2 top
// pin, 1 none.
func pinSideRank(s *Segment, col int) int {
	rank := 1
	for _, p := range s.Pins {
		if p.Col != col {
			continue
		}
		if p.FromTop {
			rank = 2
		} else if rank != 2 {
			rank = 0
		}
	}
	return rank
}

// resolveColumn fixes one vertical conflict at column c (a top pin's net
// at or below a bottom pin's net) by moving or splitting the upper net to
// a higher track. Reports whether it changed anything.
func (g *greedy) resolveColumn(c int) bool {
	var tops, bottoms []*Segment
	for _, s := range g.ch.Segments {
		if s.Track < 0 || s.Lo > c || s.Hi < c || s.Lo >= s.Hi {
			continue
		}
		switch pinSideRank(s, c) {
		case 2:
			tops = append(tops, s)
		case 0:
			bottoms = append(bottoms, s)
		}
	}
	for _, top := range tops {
		if top.Width > 1 {
			continue // wide wires are not jogged
		}
		for _, bot := range bottoms {
			if top.Net == bot.Net || top.Track > bot.Track {
				continue
			}
			if c <= top.Lo || c >= top.Hi {
				// Boundary pin: move the whole segment above bot.
				g.unplace(top)
				pick := g.findAbove(top, bot.Track)
				g.place(pick, top)
				return true
			}
			// Interior pin: split at c, the right part goes above bot.
			right := &Segment{Net: top.Net, Lo: c, Hi: top.Hi, Width: top.Width, Track: -1, Dogleg: true}
			var keep []Pin
			for _, p := range top.Pins {
				if p.Col >= c {
					right.Pins = append(right.Pins, p)
				} else {
					keep = append(keep, p)
				}
			}
			// Shrinking the left part frees columns on its track.
			top.Pins = keep
			top.Hi = c
			top.Dogleg = true
			pick := g.findAbove(right, bot.Track)
			g.place(pick, right)
			g.ch.Segments = append(g.ch.Segments, right)
			return true
		}
	}
	return false
}

// findAbove returns a track strictly above `floor` where s fits, growing
// the channel if necessary.
func (g *greedy) findAbove(s *Segment, floor int) int {
	for t := len(g.tracks) - 1; t > floor; t-- {
		if g.groupFits(t, s) {
			return t
		}
	}
	g.grow(max(s.Width, 1))
	return len(g.tracks) - max(s.Width, 1)
}

// auditVCG counts vertical constraints the greedy scan failed to satisfy,
// so the result honestly reports its quality.
func auditVCG(ch *Channel) int {
	count := 0
	for _, a := range ch.Segments {
		if a.Track < 0 {
			continue
		}
		for _, b := range ch.Segments {
			if a == b || b.Track < 0 || a.Net == b.Net {
				continue
			}
			if mustBeAbove(a, b) && a.Track <= b.Track {
				count++
			}
		}
	}
	return count
}
