package routedb

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
)

func buildDB(t *testing.T) (*core.Result, *chanroute.Result, *DB) {
	t.Helper()
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	return res, cr, db
}

func TestBuildCompleteness(t *testing.T) {
	res, cr, db := buildDB(t)
	if db.Circuit != res.Ckt.Name || db.Cols != res.Ckt.Cols || db.Rows != res.Ckt.Rows {
		t.Fatal("geometry header wrong")
	}
	if len(db.Nets) != len(res.Ckt.Nets) {
		t.Fatalf("nets = %d, want %d", len(db.Nets), len(res.Ckt.Nets))
	}
	if len(db.Channels) != res.Ckt.Channels() {
		t.Fatalf("channels = %d, want %d", len(db.Channels), res.Ckt.Channels())
	}
	for n, dn := range db.Nets {
		if dn.LengthUm != cr.NetLenUm[n] {
			t.Errorf("net %s: length %v, want %v", dn.Name, dn.LengthUm, cr.NetLenUm[n])
		}
		// Every terminal appears among the pin connections (terminals
		// with two used positions appear twice).
		want := len(res.Ckt.Terminals(n))
		if len(dn.Pins) < want {
			t.Errorf("net %s: %d pin connections for %d terminals", dn.Name, len(dn.Pins), want)
		}
		if len(dn.Wires) == 0 {
			t.Errorf("net %s: no wires", dn.Name)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripJSON(t *testing.T) {
	_, _, db := buildDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db, back) {
		t.Fatal("JSON round trip lost information")
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte(`{"circuit":"x","bogus":1}`))); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	_, _, db := buildDB(t)
	good := db.Nets[0].Wires[0]
	db.Nets[0].Wires[0].Hi = db.Cols + 5
	if err := db.Validate(); err == nil {
		t.Fatal("out-of-chip wire accepted")
	}
	db.Nets[0].Wires[0] = good
	db.Nets[0].Wires[0].Track = 9999
	if err := db.Validate(); err == nil {
		t.Fatal("impossible track accepted")
	}
}
