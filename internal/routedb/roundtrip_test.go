package routedb_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/routedb"
)

// TestGoldenRoundTripStable pins the canonical serialization: parsing the
// committed golden file and re-marshalling it must reproduce the file
// byte for byte. This is what lets the routing service compare cached and
// freshly-routed responses as raw bytes.
func TestGoldenRoundTripStable(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Read(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	out, err := routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, golden) {
		t.Fatalf("marshal(read(golden)) differs from golden (%d vs %d bytes);\n"+
			"the routedb JSON form must stay round-trip stable", len(out), len(golden))
	}
}

// TestFreshRouteRoundTrip routes the example circuit and requires
// marshal → unmarshal → marshal to be byte-identical, and Write to emit
// exactly Marshal's bytes.
func TestFreshRouteRoundTrip(t *testing.T) {
	f, err := os.Open("../../examples/data/invchain.ckt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ckt, err := circuit.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	first, err := routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := routedb.Read(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second, err := routedb.Marshal(db2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("routedb JSON is not round-trip stable (%d vs %d bytes)", len(first), len(second))
	}
	var viaWrite bytes.Buffer
	if err := routedb.Write(&viaWrite, db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaWrite.Bytes(), first) {
		t.Fatalf("Write output differs from Marshal output")
	}
	if err := db2.Validate(); err != nil {
		t.Fatalf("round-tripped database fails validation: %v", err)
	}
}
