// Package routedb serializes finished global routings to JSON — the
// handoff a detailed router or downstream flow step would consume. The
// format is self-contained: net names, chosen terminal positions, trunk
// intervals per channel with track assignments, feedthroughs, and the
// chip geometry after feed-cell insertion.
package routedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/chanroute"
	"repro/internal/core"
	"repro/internal/rgraph"
)

// DB is the serialized routing database.
type DB struct {
	Circuit  string    `json:"circuit"`
	Cols     int       `json:"cols"`
	Rows     int       `json:"rows"`
	WidthUm  float64   `json:"width_um"`
	HeightUm float64   `json:"height_um"`
	AreaMm2  float64   `json:"area_mm2"`
	Channels []Channel `json:"channels"`
	Nets     []Net     `json:"nets"`
}

// Channel is one channel's final track usage.
type Channel struct {
	Index  int `json:"index"`
	Tracks int `json:"tracks"`
}

// Net is one routed net.
type Net struct {
	Name     string    `json:"name"`
	Pitch    int       `json:"pitch"`
	LengthUm float64   `json:"length_um"`
	DiffMate string    `json:"diff_mate,omitempty"`
	Feeds    []Feed    `json:"feeds,omitempty"`
	Wires    []Wire    `json:"wires"`
	Pins     []PinConn `json:"pins"`
}

// Feed is a feedthrough crossing of a cell row.
type Feed struct {
	Row int `json:"row"`
	Col int `json:"col"`
}

// Wire is one horizontal trunk piece on its assigned track.
type Wire struct {
	Channel int  `json:"channel"`
	Lo      int  `json:"lo"`
	Hi      int  `json:"hi"`
	Track   int  `json:"track"` // -1 for straight-throughs
	Dogleg  bool `json:"dogleg,omitempty"`
}

// PinConn records where a terminal finally connects.
type PinConn struct {
	Terminal string `json:"terminal"`
	Channel  int    `json:"channel"`
	Col      int    `json:"col"`
}

// Build assembles the database from a global routing and its channel
// routing.
func Build(res *core.Result, cr *chanroute.Result) (*DB, error) {
	ckt := res.Ckt
	db := &DB{
		Circuit:  ckt.Name,
		Cols:     ckt.Cols,
		Rows:     ckt.Rows,
		WidthUm:  cr.WidthUm,
		HeightUm: cr.HeightUm,
		AreaMm2:  cr.AreaMm2,
	}
	for ci := range cr.Channels {
		db.Channels = append(db.Channels, Channel{Index: ci, Tracks: cr.Channels[ci].Tracks})
	}
	nets := make([]Net, len(ckt.Nets))
	for n := range ckt.Nets {
		nets[n] = Net{
			Name:     ckt.Nets[n].Name,
			Pitch:    ckt.Nets[n].Pitch,
			LengthUm: cr.NetLenUm[n],
		}
		if m := ckt.Nets[n].DiffMate; m >= 0 {
			nets[n].DiffMate = ckt.Nets[m].Name
		}
		for _, f := range res.Feeds[n] {
			nets[n].Feeds = append(nets[n].Feeds, Feed{Row: f.Row, Col: f.Col})
		}
		// Final pin connections: alive correspondence edges name the
		// chosen positions.
		g := res.Graphs[n]
		terms := ckt.Terminals(n)
		for _, e := range g.AliveEdges() {
			ed := &g.Edges[e]
			if ed.Kind != rgraph.ECorr {
				continue
			}
			pv := ed.U
			if g.Verts[pv].Kind != rgraph.VPos {
				pv = ed.V
			}
			ti := g.Verts[pv].Term
			if ti < 0 || ti >= len(terms) {
				return nil, fmt.Errorf("routedb: net %s: dangling correspondence edge", ckt.Nets[n].Name)
			}
			nets[n].Pins = append(nets[n].Pins, PinConn{
				Terminal: ckt.PinName(terms[ti]),
				Channel:  g.Verts[pv].Ch,
				Col:      g.Verts[pv].Col,
			})
		}
		sort.Slice(nets[n].Pins, func(a, b int) bool {
			if nets[n].Pins[a].Terminal != nets[n].Pins[b].Terminal {
				return nets[n].Pins[a].Terminal < nets[n].Pins[b].Terminal
			}
			return nets[n].Pins[a].Col < nets[n].Pins[b].Col
		})
	}
	for ci := range cr.Channels {
		for _, s := range cr.Channels[ci].Segments {
			nets[s.Net].Wires = append(nets[s.Net].Wires, Wire{
				Channel: ci, Lo: s.Lo, Hi: s.Hi, Track: s.Track, Dogleg: s.Dogleg,
			})
		}
	}
	for n := range nets {
		sort.Slice(nets[n].Wires, func(a, b int) bool {
			wa, wb := nets[n].Wires[a], nets[n].Wires[b]
			if wa.Channel != wb.Channel {
				return wa.Channel < wb.Channel
			}
			return wa.Lo < wb.Lo
		})
	}
	db.Nets = nets
	return db, nil
}

// Marshal renders the database in the canonical on-disk form: indented
// JSON with a trailing newline, exactly what Write emits. The form is
// stable under round-trips (Marshal → Read → Marshal is byte-identical),
// so independently produced databases can be compared as raw bytes —
// which is how the service's result cache guarantees cached and
// freshly-routed responses agree.
func Marshal(db *DB) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(db); err != nil {
		return nil, fmt.Errorf("routedb: %w", err)
	}
	return buf.Bytes(), nil
}

// Write emits the database as indented JSON.
func Write(w io.Writer, db *DB) error {
	b, err := Marshal(db)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Read parses a database written by Write.
func Read(r io.Reader) (*DB, error) {
	var db DB
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&db); err != nil {
		return nil, fmt.Errorf("routedb: %w", err)
	}
	return &db, nil
}

// Validate performs consistency checks a consumer would rely on: wires
// stay inside the chip and their tracks inside their channel, and every
// net has at least two pin connections.
func (db *DB) Validate() error {
	tracks := map[int]int{}
	for _, c := range db.Channels {
		tracks[c.Index] = c.Tracks
	}
	for _, n := range db.Nets {
		if len(n.Pins) < 2 {
			return fmt.Errorf("routedb: net %s has %d pin connections", n.Name, len(n.Pins))
		}
		for _, w := range n.Wires {
			if w.Lo > w.Hi || w.Lo < 0 || w.Hi >= db.Cols {
				return fmt.Errorf("routedb: net %s wire [%d,%d] outside chip", n.Name, w.Lo, w.Hi)
			}
			max, ok := tracks[w.Channel]
			if !ok {
				return fmt.Errorf("routedb: net %s wire in unknown channel %d", n.Name, w.Channel)
			}
			if w.Track >= max || (w.Track < 0 && w.Lo != w.Hi) {
				return fmt.Errorf("routedb: net %s wire track %d outside channel %d (%d tracks)",
					n.Name, w.Track, w.Channel, max)
			}
		}
	}
	return nil
}
