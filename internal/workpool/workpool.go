// Package workpool runs CPU-bound task batches on a process-wide set of
// persistent worker goroutines.
//
// The router and the timing engine fan work out on every edge deletion;
// spawning goroutines per fan-out allocates a goroutine stack and a
// closure each time, which is exactly the garbage the zero-allocation hot
// path forbids. Instead, callers keep one reusable batch object (a struct
// implementing Task with its own work counter and WaitGroup), and Submit
// enqueues that same object w times: exactly w workers call Run on it, so
// a batch can hand each Run a distinct per-worker scratch slot by claiming
// an index atomically.
//
// Workers are spawned lazily up to GOMAXPROCS at first need and never shut
// down. Idle workers block on the shared channel and hold no reference to
// any submitter, so pool lifetime never extends the lifetime of router or
// timing state. A Task's Run must not block on other pool work (in
// particular it must not Submit and wait on a nested batch), because every
// worker it would wait for may be executing the same batch.
package workpool

import (
	"runtime"
	"sync"
)

// Task is one unit of batch work. Run is called exactly once per copy
// Submit enqueued; it must return only when the call's share of the work
// is done (typically: claim indices from a shared atomic counter until the
// batch is drained, then mark a WaitGroup).
type Task interface {
	Run()
}

var (
	mu      sync.Mutex
	spawned int
	// tasks is buffered so a full fan-out enqueues without handshaking
	// with a worker per send; workers never block while holding a task,
	// so the queue always drains.
	tasks = make(chan Task, 256)
)

// Submit enqueues t exactly w times (w >= 1) and returns without waiting;
// the caller synchronizes on the batch's own WaitGroup. Workers are
// spawned on demand, capped at GOMAXPROCS — with fewer workers than w the
// extra Run calls simply happen as workers free up, which is fine for
// counter-draining batches (late Runs find the batch drained and return).
func Submit(t Task, w int) {
	if w < 1 {
		w = 1
	}
	ensure(w)
	for i := 0; i < w; i++ {
		tasks <- t
	}
}

func ensure(w int) {
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	mu.Lock()
	for spawned < w {
		spawned++
		go worker()
	}
	mu.Unlock()
}

func worker() {
	for t := range tasks {
		t.Run()
	}
}
