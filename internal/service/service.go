// Package service turns the batch global router into a long-lived
// concurrent routing service: clients submit a circuit plus a routing
// config, get a job ID back, observe progress, and fetch the finished
// routing as routedb JSON, a timing report, an SVG drawing or an ASCII
// layout.
//
// Jobs run on a bounded worker pool fed by a FIFO queue. Identical
// in-flight submissions (same circuit text and canonical config) are
// coalesced onto one job, and finished results live in an LRU cache keyed
// by the same content hash, so re-submitting a design is served instantly
// and byte-identically. Each job runs under a context with a deadline;
// cancelling a queued job is immediate, cancelling a running one aborts
// the engine between routing steps.
//
// Each job routes with one registered engine (internal/engine), selected
// by JobConfig.Engine; the empty string is the default concurrent
// router, which this package links itself. Other engines are selectable
// when the embedding binary imports them (bgr-serve imports all three).
// Unknown engine names are rejected at admission with ErrBadEngine.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/routedb"
	"repro/internal/wire"

	// The default engine is part of the service's contract: a Server can
	// always route with "concurrent" even if the embedding binary imports
	// nothing else.
	_ "repro/internal/core"
)

// Errors surfaced to submitters.
var (
	// ErrQueueFull: the FIFO queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrShuttingDown: the server no longer accepts jobs (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrTooLarge: the submission exceeds a configured size cap — circuit
	// bytes, nets or cells (HTTP 413). Checked before any routing work.
	ErrTooLarge = errors.New("service: submission too large")
	// ErrBadEngine: the submission names an engine that is not registered
	// in this binary (HTTP 400). Checked at admission, before hashing or
	// queueing; the error text lists the registered engines.
	ErrBadEngine = errors.New("service: unknown engine")
)

// PanicError records a routing run that panicked: the worker recovered
// it, failed the job with the panic message, and kept the server alive.
// Stack is the goroutine stack captured at the recovery point.
type PanicError struct {
	Value string
	Stack string
}

func (e *PanicError) Error() string { return "panic: " + e.Value }

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the routing worker pool size (default 2).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheSize bounds the LRU result cache, entries (default 32;
	// negative disables caching).
	CacheSize int
	// JobTimeout is the default per-job routing deadline (default 5m).
	// A submission may shorten it but never extend it.
	JobTimeout time.Duration
	// ScoreWorkers is the default per-job candidate-scoring parallelism
	// applied when a submission leaves config.workers at 0. It never
	// changes routed results, so it is not part of the cache key.
	ScoreWorkers int
	// ScoreShards is the default selection shard count applied when a
	// submission leaves config.shards at 0 (engines with the Sharded
	// capability). Like ScoreWorkers it never changes routed results.
	ScoreShards int

	// TerminalTTL is how long a finished/failed/cancelled job stays
	// addressable after reaching its terminal state (default 15m;
	// negative retains forever). Evicted jobs disappear from GET /jobs
	// and answer 404 by ID; streams already attached keep working and
	// the result cache is unaffected.
	TerminalTTL time.Duration
	// MaxTerminalJobs bounds how many terminal jobs are retained at
	// once, oldest-finished evicted first (default 1024; negative
	// unlimited).
	MaxTerminalJobs int

	// MaxBodyBytes caps the POST /jobs request body (default 8 MiB;
	// negative unlimited). Overflow answers HTTP 413.
	MaxBodyBytes int64
	// MaxCircuitBytes caps the circuit text, checked before parsing
	// (default 4 MiB; negative unlimited).
	MaxCircuitBytes int
	// MaxNets and MaxCells cap the parsed circuit, checked before any
	// routing work (defaults 50000 and 200000; negative unlimited).
	MaxNets  int
	MaxCells int

	// JournalPath, when non-empty, opens an append-only job journal
	// there (internal/journal): terminal jobs and finished results are
	// persisted as they happen, and Open replays the file so both
	// survive a restart. Empty disables durability.
	JournalPath string
	// JournalSync selects the journal fsync policy (default
	// journal.SyncAlways).
	JournalSync journal.SyncPolicy

	// MaxFrameBytes caps request frames on the binary wire listener
	// (ServeWire), mirroring MaxBodyBytes on the HTTP side. 0 inherits
	// MaxBodyBytes; negative is unlimited (bounded at 1 GiB by the
	// frame layer). Oversize frames answer CodeTooLarge and close the
	// connection.
	MaxFrameBytes int
	// WireIdleTimeout bounds how long a wire connection may sit idle
	// between request frames (default 2m, matching the HTTP server's
	// IdleTimeout; negative disables).
	WireIdleTimeout time.Duration

	// Logf receives response-write failures and other non-fatal server
	// noise (default log.Printf).
	Logf func(format string, v ...any)

	// beforeRun, when set (tests only), is called by a worker after it
	// claims a job and before routing starts.
	beforeRun func(*Job)
	// sseHeartbeat overrides the SSE keepalive interval (tests only).
	sseHeartbeat time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 32
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 5 * time.Minute
	}
	if o.TerminalTTL == 0 {
		o.TerminalTTL = 15 * time.Minute
	}
	if o.MaxTerminalJobs == 0 {
		o.MaxTerminalJobs = 1024
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxCircuitBytes == 0 {
		o.MaxCircuitBytes = 4 << 20
	}
	if o.MaxNets == 0 {
		o.MaxNets = 50000
	}
	if o.MaxCells == 0 {
		o.MaxCells = 200000
	}
	if o.MaxFrameBytes == 0 {
		o.MaxFrameBytes = int(o.MaxBodyBytes)
		if o.MaxFrameBytes <= 0 {
			o.MaxFrameBytes = wire.DefaultMaxFrame
		}
	}
	if o.WireIdleTimeout == 0 {
		o.WireIdleTimeout = 2 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.sseHeartbeat <= 0 {
		o.sseHeartbeat = 15 * time.Second
	}
	return o
}

// JobConfig is the client-facing subset of the shared engine config
// (plus the channel router choice). Its canonical JSON form is part of
// the cache key; every field added since v1 is omitempty so default
// submissions hash identically across versions and old journals keep
// re-warming the cache.
type JobConfig struct {
	// Engine names the routing engine ("" = the default "concurrent";
	// bgr-serve also registers "sequential" and "steiner"). Unknown names
	// are rejected at admission with ErrBadEngine.
	Engine          string  `json:"engine,omitempty"`
	UseConstraints  bool    `json:"use_constraints"`
	DelayModel      string  `json:"delay_model,omitempty"` // "", "lumped", "elmore"
	RPerUm          float64 `json:"r_per_um,omitempty"`
	AreaFirst       bool    `json:"area_first,omitempty"`
	SkipImprovement bool    `json:"skip_improvement,omitempty"`
	MaxPasses       int     `json:"max_passes,omitempty"`
	Order           string  `json:"order,omitempty"` // "", "slack", "index", "hpwl", "fanout"
	NoFeedReroute   bool    `json:"no_feed_reroute,omitempty"`
	GreedyChannels  bool    `json:"greedy_channels,omitempty"`
	// Workers is the candidate-scoring worker count inside one routing run
	// (0 = one per CPU, 1 = sequential). The routed result is byte-identical
	// for every value, so it is safe in the cache key.
	Workers int `json:"workers,omitempty"`
	// Shards is the selection shard count of the concurrent engine's
	// sharded round scans (0 = size-based default). Byte-identical
	// results for every value, so it too is safe in the cache key.
	Shards int `json:"shards,omitempty"`
	// Alpha and TargetTracks tune the per-net engines (sequential,
	// steiner): congestion penalty scale (0 = engine default 0.35) and
	// the per-channel density target (0 = derived from demand). The
	// concurrent engine ignores both.
	Alpha        float64 `json:"alpha,omitempty"`
	TargetTracks int     `json:"target_tracks,omitempty"`
}

// DefaultJobConfig is used when a submission omits "config".
func DefaultJobConfig() JobConfig { return JobConfig{UseConstraints: true} }

// validate bounds-checks the numeric fields before they reach the
// router or the cache key: NaN/Inf/negative resistance and negative
// counters are client errors, not routing work.
func (jc JobConfig) validate() error {
	if math.IsNaN(jc.RPerUm) || math.IsInf(jc.RPerUm, 0) || jc.RPerUm < 0 {
		return fmt.Errorf("r_per_um %v must be a finite non-negative number", jc.RPerUm)
	}
	if jc.MaxPasses < 0 {
		return fmt.Errorf("max_passes %d must not be negative", jc.MaxPasses)
	}
	if jc.Workers < 0 {
		return fmt.Errorf("workers %d must not be negative", jc.Workers)
	}
	if jc.Shards < 0 {
		return fmt.Errorf("shards %d must not be negative", jc.Shards)
	}
	if math.IsNaN(jc.Alpha) || math.IsInf(jc.Alpha, 0) || jc.Alpha < 0 {
		return fmt.Errorf("alpha %v must be a finite non-negative number", jc.Alpha)
	}
	if jc.TargetTracks < 0 {
		return fmt.Errorf("target_tracks %d must not be negative", jc.TargetTracks)
	}
	return nil
}

// toEngine translates to the shared engine.Config, rejecting unknown
// enum strings.
func (jc JobConfig) toEngine() (engine.Config, error) {
	cfg := engine.Config{
		UseConstraints:  jc.UseConstraints,
		RPerUm:          jc.RPerUm,
		AreaFirst:       jc.AreaFirst,
		SkipImprovement: jc.SkipImprovement,
		MaxPasses:       jc.MaxPasses,
		NoFeedReroute:   jc.NoFeedReroute,
		Workers:         jc.Workers,
		Shards:          jc.Shards,
		Alpha:           jc.Alpha,
		TargetTracks:    jc.TargetTracks,
	}
	switch jc.DelayModel {
	case "", "lumped":
	case "elmore":
		cfg.DelayModel = engine.Elmore
	default:
		return cfg, fmt.Errorf("unknown delay_model %q", jc.DelayModel)
	}
	switch jc.Order {
	case "", "slack":
	case "index":
		cfg.Order = engine.OrderIndex
	case "hpwl":
		cfg.Order = engine.OrderHPWL
	case "fanout":
		cfg.Order = engine.OrderFanout
	default:
		return cfg, fmt.Errorf("unknown order %q", jc.Order)
	}
	return cfg, nil
}

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Circuit is the design in the .ckt text format (circuit.Parse).
	Circuit string `json:"circuit"`
	// Config selects the routing mode; nil means DefaultJobConfig.
	Config *JobConfig `json:"config,omitempty"`
	// TimeoutMs optionally tightens the per-job deadline below the
	// server default. It is not part of the cache key.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// SubmitResult reports how a submission was satisfied.
type SubmitResult struct {
	Job *Job
	// Cached: served straight from the result cache (job is born Done).
	Cached bool
	// Deduped: coalesced onto an already in-flight identical job.
	Deduped bool
}

// Server is the routing service. Create with New, expose with Handler,
// stop with Shutdown.
type Server struct {
	opts    Options
	metrics *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job
	order    []string        // submission order, for GET /jobs
	inflight map[string]*Job // content hash → queued/running job
	cache    *resultCache
	// terminal records retained terminal jobs in the order they
	// finished; the retention policy (TerminalTTL, MaxTerminalJobs)
	// evicts from its front.
	terminal []terminalRec
	stop     chan struct{} // closed by Shutdown; stops the janitor

	// jl is the durable job journal, nil when durability is disabled.
	// Appends happen under s.mu, which orders a job's submitted record
	// before its terminal record; replaying marks replayed jobs so they
	// are not re-journaled.
	jl        *journal.Journal
	replaying bool
	// journaledResults tracks which content hashes already have a
	// result record on disk, so a cache-evicted rerun of the same
	// circuit does not append its (identical) payload again.
	journaledResults map[string]bool
}

// terminalRec is one retained terminal job: its ID and when it became
// terminal.
type terminalRec struct {
	id string
	at time.Time
}

// New starts a Server, its worker pool, and (when a TTL is configured)
// the retention janitor. It is Open for configurations that cannot
// fail; it panics if opts.JournalPath is set and the journal cannot be
// opened — use Open to handle that error.
func New(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic("service.New: " + err.Error())
	}
	return s
}

// Open starts a Server like New and, when opts.JournalPath is set,
// first replays the job journal: terminal jobs reappear in the job
// table, finished results re-warm the LRU cache (identical
// resubmissions hit disk instead of re-routing), and jobs that were
// mid-route at crash time surface as failed with their dedupe slot
// free, so resubmitting them routes fresh.
func Open(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:             opts,
		metrics:          newMetrics(),
		baseCtx:          ctx,
		baseCancel:       cancel,
		queue:            make(chan *Job, opts.QueueDepth),
		jobs:             make(map[string]*Job),
		inflight:         make(map[string]*Job),
		cache:            newResultCache(opts.CacheSize),
		stop:             make(chan struct{}),
		journaledResults: make(map[string]bool),
	}
	if opts.JournalPath != "" {
		jl, recs, err := journal.Open(opts.JournalPath, opts.JournalSync)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jl = jl
		s.mu.Lock()
		s.replayJournal(recs)
		s.mu.Unlock()
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.TerminalTTL > 0 {
		s.wg.Add(1)
		go s.janitor(janitorInterval(opts.TerminalTTL))
	}
	return s, nil
}

// janitorInterval picks a sweep period for a terminal-job TTL: a
// quarter of the TTL, clamped so tiny test TTLs still sweep promptly
// and huge TTLs don't stall eviction for hours.
func janitorInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > 30*time.Second {
		iv = 30 * time.Second
	}
	return iv
}

// janitor periodically evicts terminal jobs past their TTL. Size-cap
// eviction happens inline as jobs finish; the janitor only has to catch
// age on an otherwise idle server.
func (s *Server) janitor(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			s.gcLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// noteTerminalLocked registers a job that just reached a terminal state
// with the retention policy and immediately enforces the size cap;
// s.mu must be held. Safe to call more than once per job.
func (s *Server) noteTerminalLocked(j *Job) {
	if j.gcNoted {
		return
	}
	j.gcNoted = true
	s.terminal = append(s.terminal, terminalRec{id: j.ID, at: time.Now()})
	if !s.replaying {
		s.journalTerminalLocked(j)
	}
	s.gcLocked(time.Now())
}

// gcLocked evicts terminal jobs that are beyond the TTL or over the
// size cap, oldest-finished first; s.mu must be held. Eviction removes
// the job from the ID map and the submission-order list only — result
// cache entries and streams holding a *Job are untouched.
func (s *Server) gcLocked(now time.Time) {
	ttl, maxT := s.opts.TerminalTTL, s.opts.MaxTerminalJobs
	cut := 0
	for cut < len(s.terminal) {
		over := maxT > 0 && len(s.terminal)-cut > maxT
		stale := ttl > 0 && now.Sub(s.terminal[cut].at) > ttl
		if !over && !stale {
			break
		}
		delete(s.jobs, s.terminal[cut].id)
		cut++
	}
	if cut == 0 {
		return
	}
	s.terminal = append(s.terminal[:0], s.terminal[cut:]...)
	s.metrics.evicted.Add(int64(cut))
	keep := s.order[:0]
	for _, id := range s.order {
		if _, ok := s.jobs[id]; ok {
			keep = append(keep, id)
		}
	}
	s.order = keep
}

// hashKey is the content hash of (canonical config JSON, circuit text).
func hashKey(cktText string, jc JobConfig) string {
	cfgJSON, _ := json.Marshal(jc)
	h := sha256.New()
	h.Write(cfgJSON)
	h.Write([]byte{0})
	h.Write([]byte(cktText))
	return hex.EncodeToString(h.Sum(nil))
}

// Submit validates and enqueues a routing request. Identical in-flight
// requests coalesce onto one job; cached results produce a job that is
// already Done. Size caps (ErrTooLarge) are enforced before parsing
// where possible and always before any routing work.
func (s *Server) Submit(req SubmitRequest) (SubmitResult, error) {
	if max := s.opts.MaxCircuitBytes; max > 0 && len(req.Circuit) > max {
		s.metrics.rejected.Add(1)
		return SubmitResult{}, fmt.Errorf("%w: circuit text %d bytes exceeds cap %d", ErrTooLarge, len(req.Circuit), max)
	}
	ckt, err := circuit.Parse(strings.NewReader(req.Circuit))
	if err != nil {
		return SubmitResult{}, err
	}
	if max := s.opts.MaxNets; max > 0 && len(ckt.Nets) > max {
		s.metrics.rejected.Add(1)
		return SubmitResult{}, fmt.Errorf("%w: %d nets exceeds cap %d", ErrTooLarge, len(ckt.Nets), max)
	}
	if max := s.opts.MaxCells; max > 0 && len(ckt.Cells) > max {
		s.metrics.rejected.Add(1)
		return SubmitResult{}, fmt.Errorf("%w: %d cells exceeds cap %d", ErrTooLarge, len(ckt.Cells), max)
	}
	if err := ckt.Validate(); err != nil {
		return SubmitResult{}, err
	}
	jc := DefaultJobConfig()
	if req.Config != nil {
		jc = *req.Config
	}
	if err := jc.validate(); err != nil {
		return SubmitResult{}, fmt.Errorf("bad config: %w", err)
	}
	eng, ok := engine.Get(jc.Engine)
	if !ok {
		s.metrics.rejectedBadEngine.Add(1)
		return SubmitResult{}, fmt.Errorf("%w %q (registered: %s)", ErrBadEngine, jc.Engine, strings.Join(engine.Names(), ", "))
	}
	cfg, err := jc.toEngine()
	if err != nil {
		return SubmitResult{}, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = s.opts.ScoreWorkers
	}
	if cfg.Shards == 0 {
		cfg.Shards = s.opts.ScoreShards
	}
	timeout := s.opts.JobTimeout
	if t := time.Duration(req.TimeoutMs) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	hash := hashKey(req.Circuit, jc)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SubmitResult{}, ErrShuttingDown
	}
	if j, ok := s.inflight[hash]; ok {
		s.metrics.deduped.Add(1)
		return SubmitResult{Job: j, Deduped: true}, nil
	}
	if e, ok := s.cache.get(hash); ok {
		s.metrics.cacheHits.Add(1)
		j := s.newJobLocked(ckt, eng, cfg, jc.GreedyChannels, timeout, hash)
		j.state = Done
		j.cached = true
		j.payload = e.payload
		j.phases = append([]PhaseInfo(nil), e.phases...)
		close(j.done)
		s.noteTerminalLocked(j)
		return SubmitResult{Job: j, Cached: true}, nil
	}
	s.metrics.cacheMiss.Add(1)
	j := s.newJobLocked(ckt, eng, cfg, jc.GreedyChannels, timeout, hash)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		return SubmitResult{}, ErrQueueFull
	}
	s.inflight[hash] = j
	s.metrics.accepted.Add(1)
	s.journalSubmittedLocked(j)
	return SubmitResult{Job: j}, nil
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Server) newJobLocked(ckt *circuit.Circuit, eng engine.Engine, cfg engine.Config, greedy bool, timeout time.Duration, hash string) *Job {
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%04d-%s", s.seq, hash[:8]),
		Hash:    hash,
		name:    ckt.Name,
		ckt:     ckt,
		eng:     eng,
		engName: eng.Name(),
		cfg:     cfg,
		greedy:  greedy,
		timeout: timeout,
		state:   Queued,
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns status snapshots in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel aborts a job: a queued job flips to Cancelled immediately, a
// running one is interrupted (its worker records the final state). The
// returned bool is false for unknown IDs.
func (s *Server) Cancel(id string) (Status, bool) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false
	}
	if _, cancelledNow := j.requestCancel(); cancelledNow {
		s.metrics.cancelled.Add(1)
		s.jobFinished(j)
	}
	return j.Snapshot(), true
}

// Wait blocks until the job is terminal or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) (Status, error) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.Done():
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

// Metrics returns the current counter snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	entries := s.cache.len()
	retained := len(s.terminal)
	s.mu.Unlock()
	var jrecs, jbytes int64
	if s.jl != nil {
		jrecs, jbytes = s.jl.Stats()
	}
	return s.metrics.snapshot(len(s.queue), s.opts.Workers, entries, retained, jrecs, jbytes)
}

// Shutdown stops accepting jobs, lets the workers drain the queue, and
// waits for them. If ctx expires first, every remaining job is cancelled
// and Shutdown still waits for the workers before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.stop)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Workers are parked, so every terminal transition is journaled;
	// flush and close the journal as the last act of the drain. Stray
	// post-drain cancels see ErrClosed and are logged, not lost state —
	// an unjournaled cancel replays as an interrupted job.
	if s.jl != nil {
		if cerr := s.jl.Close(); cerr != nil {
			s.opts.Logf("service: close journal: %v", cerr)
		}
	}
	return err
}

// jobFinished releases a terminal job's dedupe slot (so the next
// identical submission starts a fresh run instead of wedging on a dead
// job) and registers it with the retention policy.
func (s *Server) jobFinished(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.noteTerminalLocked(j)
	s.mu.Unlock()
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: route under the job context,
// channel-route, render every payload form, then publish to the cache.
// Routing and rendering run inside a recover() boundary, so a panicking
// run fails its job instead of killing the process.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled while queued; Cancel already counted it.
		return
	}
	if s.opts.beforeRun != nil {
		s.opts.beforeRun(j)
	}
	start := time.Now()

	payload, phases, err := s.routeJob(ctx, j)
	if err != nil {
		s.finishJob(j, err)
		return
	}
	if j.finish(Done, "", "", payload, phases) {
		s.metrics.completed.Add(1)
		s.metrics.observeJob(j.engName, time.Since(start), phases)
	}
	s.mu.Lock()
	s.cache.put(j.Hash, payload, phases)
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	// The result record lands before the terminal record claiming
	// "done": a crash between the two downgrades the job to failed at
	// replay instead of advertising a result that is not on disk.
	s.journalResultLocked(j.Hash, j.engName, payload, phases)
	s.noteTerminalLocked(j)
	s.mu.Unlock()
}

// routeJob is the fault-isolation boundary around one routing run: a
// panic anywhere inside (router invariants, channel routing, rendering)
// is converted into a *PanicError carrying the message and the captured
// stack, leaving the worker free to serve the next job.
func (s *Server) routeJob(ctx context.Context, j *Job) (payload *Payload, phases []PhaseInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			payload, phases = nil, nil
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
			s.opts.Logf("service: job %s (%s): recovered %v", j.ID, j.ckt.Name, err)
		}
	}()
	if err := faultinject.Fire(faultinject.ServiceRun, j.ckt.Name); err != nil {
		return nil, nil, err
	}
	cfg := j.cfg
	cfg.Progress = j.setProgress
	res, err := j.eng.Route(ctx, j.ckt, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := faultinject.Fire(faultinject.ServicePayload, j.ckt.Name); err != nil {
		return nil, nil, err
	}
	payload, err = buildPayload(res, j.greedy)
	if err != nil {
		return nil, nil, err
	}
	return payload, phaseInfos(res.Phases), nil
}

// finishJob classifies a routing error into Cancelled vs Failed and
// releases the job's dedupe slot.
func (s *Server) finishJob(j *Job, err error) {
	st := Failed
	msg := err.Error()
	var stack string
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		stack = pe.Stack
	case errors.Is(err, context.Canceled):
		st = Cancelled
		msg = "cancelled while running"
	case errors.Is(err, context.DeadlineExceeded):
		msg = "deadline exceeded: " + msg
	}
	if j.finish(st, msg, stack, nil, nil) {
		if st == Cancelled {
			s.metrics.cancelled.Add(1)
		} else {
			s.metrics.failed.Add(1)
		}
	}
	s.jobFinished(j)
}

// buildPayload renders every response form from a finished routing. The
// timing text matches render.Handler's (report + slack histogram over the
// post-channel-routing lengths) so the bgr-view port is byte-compatible.
func buildPayload(res *engine.Result, greedy bool) (*Payload, error) {
	algo := chanroute.LeftEdge
	if greedy {
		algo = chanroute.Greedy
	}
	cr, err := chanroute.RouteWith(res.Ckt, res.Graphs, algo)
	if err != nil {
		return nil, err
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		return nil, err
	}
	// An invalid database must fail the job here, not surface later
	// from a cache or journal replay a consumer already trusted.
	if err := db.Validate(); err != nil {
		return nil, err
	}
	dbJSON, err := routedb.Marshal(db)
	if err != nil {
		return nil, err
	}
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		return nil, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(cr.NetLenUm)
	tm.Analyze()
	timing := report.TimingReport(res.Ckt, tm, 3) + "\n" + report.SlackHistogram(res.Ckt, tm, 8)

	delay, viol, err := experiment.FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		return nil, err
	}
	return &Payload{
		RouteDB: dbJSON,
		Timing:  timing,
		SVG:     render.SVG(res, cr),
		Layout:  render.Layout(res),
		Summary: Summary{
			DelayPs:      delay,
			Violations:   viol,
			AreaMm2:      cr.AreaMm2,
			WirelenMm:    cr.TotalLenUm / 1000,
			Tracks:       res.Dens.TotalTracks(),
			AddedPitches: res.AddedPitches,
			Nets:         len(res.Ckt.Nets),
			Constraints:  len(res.Ckt.Cons),
		},
	}, nil
}
