package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"

	// The service itself only guarantees the default (concurrent) engine;
	// these tests exercise selection across the full registry.
	_ "repro/internal/seqroute"
	_ "repro/internal/steiner"
)

// TestEngineSelectionHTTP submits the same circuit to each registered
// engine over HTTP and checks the job status reports the engine, the
// per-engine metrics count it, and distinct engines get distinct cache
// slots (same circuit, different engine must not be a cache hit).
func TestEngineSelectionHTTP(t *testing.T) {
	ckt := readExample(t)
	svc := New(Options{Workers: 1, Logf: silentLogf})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, eng := range []string{"", "sequential", "steiner"} {
		body := map[string]any{"circuit": ckt}
		if eng != "" {
			body["config"] = map[string]any{"engine": eng}
		}
		rep := postJob(t, ts.URL, body)
		if rep.Cached {
			t.Fatalf("engine %q: fresh engine/circuit pair served from cache", eng)
		}
		st := pollDone(t, ts.URL, rep.ID)
		if st.State != Done {
			t.Fatalf("engine %q: state %s, error %q", eng, st.State, st.Error)
		}
		want := eng
		if want == "" {
			want = "concurrent"
		}
		if st.Engine != want {
			t.Fatalf("status engine = %q, want %q", st.Engine, want)
		}
	}

	m := svc.Metrics()
	for _, eng := range []string{"concurrent", "sequential", "steiner"} {
		if m.JobsByEngine[eng] != 1 {
			t.Fatalf("jobs_by_engine[%s] = %d, want 1 (%v)", eng, m.JobsByEngine[eng], m.JobsByEngine)
		}
	}
}

// TestEngineUnknownHTTP is the satellite contract: an unknown engine is
// rejected with 400, the message lists the registered engines, and the
// rejected_bad_engine counter moves.
func TestEngineUnknownHTTP(t *testing.T) {
	ckt := readExample(t)
	svc := New(Options{Workers: 1, Logf: silentLogf})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	b, _ := json.Marshal(map[string]any{
		"circuit": ckt,
		"config":  map[string]any{"engine": "bogus"},
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d, want 400: %s", resp.StatusCode, msg)
	}
	for _, eng := range []string{"bogus", "concurrent", "sequential", "steiner"} {
		if !strings.Contains(string(msg), eng) {
			t.Fatalf("rejection message %q does not mention %q", msg, eng)
		}
	}
	if m := svc.Metrics(); m.RejectedBadEngine != 1 {
		t.Fatalf("rejected_bad_engine = %d, want 1", m.RejectedBadEngine)
	}
}

// TestEngineWireV2 covers the v2 submit frame: engine selection works
// over the wire, an unknown engine maps to CodeBadRequest, and a frame
// engine conflicting with the config engine is rejected.
func TestEngineWireV2(t *testing.T) {
	ckt := readExample(t)
	svc := New(Options{Workers: 1, Logf: silentLogf})
	defer svc.Shutdown(context.Background())
	addr := startWire(t, svc)
	c := dialWire(t, addr)

	rep, err := c.SubmitEngine(ckt, nil, "steiner", 0)
	if err != nil {
		t.Fatal(err)
	}
	statusJSON, err := c.Wait(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(statusJSON, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Engine != "steiner" {
		t.Fatalf("wire v2 job: state=%s engine=%q", st.State, st.Engine)
	}

	var re *wire.RemoteError
	if _, err := c.SubmitEngine(ckt, nil, "bogus", 0); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("unknown engine over wire: %v", err)
	}
	if !strings.Contains(re.Msg, "concurrent") {
		t.Fatalf("wire rejection %q does not list registered engines", re.Msg)
	}
	if _, err := c.SubmitEngine(ckt, []byte(`{"engine":"sequential"}`), "steiner", 0); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("conflicting engines: %v", err)
	}

	// The same config expressed in the JSON alone (v1-style) lands on the
	// same cache slot as the frame field: this resubmission must be a
	// cache hit.
	rep2, err := c.Submit(ckt, []byte(`{"engine":"steiner","use_constraints":true}`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached {
		t.Fatalf("config-JSON engine missed the frame-field cache slot: %+v", rep2)
	}
}

// TestEngineJournalReplay restarts a journaled service and requires the
// replayed job to still report its engine.
func TestEngineJournalReplay(t *testing.T) {
	ckt := readExample(t)
	path := filepath.Join(t.TempDir(), "jobs.journal")

	svc1, err := Open(Options{Workers: 1, JournalPath: path, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	jc := DefaultJobConfig()
	jc.Engine = "sequential"
	res, err := svc1.Submit(SubmitRequest{Circuit: ckt, Config: &jc})
	if err != nil {
		t.Fatal(err)
	}
	<-res.Job.Done()
	if st := res.Job.Snapshot(); st.State != Done || st.Engine != "sequential" {
		t.Fatalf("pre-restart job: %+v", st)
	}
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2 := openJournaled(t, path)
	j2, ok := svc2.Job(res.Job.ID)
	if !ok {
		t.Fatalf("job %s not recovered after restart", res.Job.ID)
	}
	if st := j2.Snapshot(); st.State != Done || st.Engine != "sequential" {
		t.Fatalf("recovered job lost its engine: %+v", st)
	}
}
