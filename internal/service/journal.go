package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/journal"
	"repro/internal/routedb"
)

// Journal record schemas. Each journal record's data is one of these
// as JSON; the CRC framing underneath is internal/journal's.
//
// A job's life leaves at most three records: a jrecSubmitted when it is
// accepted, then (for done jobs) a jrecResult with the full payload,
// then a jrecTerminal. A submitted record with no matching terminal
// record means the process died mid-route; replay surfaces such jobs as
// failed with their dedupe slot free, so resubmitting re-routes fresh —
// the same contract PR 5 established for panicking runs.

// Every record carries the engine name (omitempty: records written
// before engines existed decode with Engine == "", and replay surfaces
// that as an unlabelled job). The content hash already folds the engine
// in — JobConfig.Engine is part of the canonical config JSON — so
// replayed results re-warm the cache per engine with no extra keying.

type jrecSubmitted struct {
	ID      string `json:"id"`
	Hash    string `json:"hash"`
	Circuit string `json:"circuit"` // circuit name, for status snapshots
	Engine  string `json:"engine,omitempty"`
}

type jrecTerminal struct {
	ID      string `json:"id"`
	Hash    string `json:"hash"`
	Circuit string `json:"circuit"`
	Engine  string `json:"engine,omitempty"`
	State   State  `json:"state"`
	Error   string `json:"error,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
}

type jrecResult struct {
	Hash    string      `json:"hash"`
	Engine  string      `json:"engine,omitempty"`
	RouteDB []byte      `json:"routedb"` // exact bytes routedb.Marshal emitted
	Timing  string      `json:"timing"`
	SVG     string      `json:"svg"`
	Layout  string      `json:"layout"`
	Summary Summary     `json:"summary"`
	Phases  []PhaseInfo `json:"phases,omitempty"`
}

// maxReplayRouteDB bounds the routedb bytes accepted back from disk. A
// record inflated by corruption (or a doctored journal) is skipped
// instead of parsed, and the io.LimitReader keeps the JSON decoder
// from reading past the bound either way.
const maxReplayRouteDB = 64 << 20

// journalSubmittedLocked appends a job-accepted record; s.mu must be
// held (that is what orders it before the job's terminal record). A
// journal write failure is logged and the job proceeds: availability
// over durability.
func (s *Server) journalSubmittedLocked(j *Job) {
	if s.jl == nil {
		return
	}
	b, err := json.Marshal(jrecSubmitted{ID: j.ID, Hash: j.Hash, Circuit: j.name, Engine: j.engName})
	if err == nil {
		err = s.jl.Append(journal.KindSubmitted, b)
	}
	if err != nil {
		s.opts.Logf("service: journal submitted %s: %v", j.ID, err)
	}
}

// journalTerminalLocked appends a terminal-transition record; s.mu must
// be held.
func (s *Server) journalTerminalLocked(j *Job) {
	if s.jl == nil {
		return
	}
	j.mu.Lock()
	rec := jrecTerminal{ID: j.ID, Hash: j.Hash, Circuit: j.name, Engine: j.engName,
		State: j.state, Error: j.errMsg, Cached: j.cached}
	j.mu.Unlock()
	b, err := json.Marshal(rec)
	if err == nil {
		err = s.jl.Append(journal.KindTerminal, b)
	}
	if err != nil {
		s.opts.Logf("service: journal terminal %s: %v", j.ID, err)
	}
}

// journalResultLocked appends a finished payload keyed by content hash;
// s.mu must be held. Hashes already journaled are skipped — the payload
// is deterministic, so the first record is as good as the last.
func (s *Server) journalResultLocked(hash, engineName string, p *Payload, phases []PhaseInfo) {
	if s.jl == nil || p == nil || s.journaledResults[hash] {
		return
	}
	b, err := json.Marshal(jrecResult{
		Hash:    hash,
		Engine:  engineName,
		RouteDB: p.RouteDB,
		Timing:  p.Timing,
		SVG:     p.SVG,
		Layout:  p.Layout,
		Summary: p.Summary,
		Phases:  phases,
	})
	if err == nil {
		err = s.jl.Append(journal.KindResult, b)
	}
	if err != nil {
		s.opts.Logf("service: journal result %s: %v", hash[:8], err)
		return
	}
	s.journaledResults[hash] = true
}

// decodeResult rebuilds a cache entry from a result record, refusing
// anything that does not validate: the bytes served after a restart
// must be exactly as trustworthy as the ones routed in this process.
func decodeResult(data []byte) (*jrecResult, *Payload, error) {
	var rec jrecResult
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil, err
	}
	if len(rec.RouteDB) > maxReplayRouteDB {
		return nil, nil, fmt.Errorf("routedb payload %d bytes exceeds replay cap %d", len(rec.RouteDB), maxReplayRouteDB)
	}
	db, err := routedb.Read(io.LimitReader(bytes.NewReader(rec.RouteDB), maxReplayRouteDB))
	if err != nil {
		return nil, nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, nil, err
	}
	return &rec, &Payload{
		RouteDB: rec.RouteDB,
		Timing:  rec.Timing,
		SVG:     rec.SVG,
		Layout:  rec.Layout,
		Summary: rec.Summary,
	}, nil
}

// replayJournal rebuilds service state from the replayed records; s.mu
// must be held and no workers may be running yet. Terminal jobs come
// back addressable (subject to the retention policy), validated results
// re-warm the LRU cache in journal order (most recent ends up most
// recently used), and submitted-but-never-terminal jobs — in flight
// when the process died — surface as failed jobs whose dedupe slot is
// free, so an identical resubmission routes fresh.
func (s *Server) replayJournal(recs []journal.Record) {
	s.replaying = true
	defer func() { s.replaying = false }()

	type resultEntry struct {
		payload *Payload
		phases  []PhaseInfo
	}
	var (
		submitted   []jrecSubmitted
		terminals   []jrecTerminal
		results     = make(map[string]resultEntry)
		resultOrder []string
		applied     int64
	)
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindSubmitted:
			var sr jrecSubmitted
			if err := json.Unmarshal(rec.Data, &sr); err != nil {
				s.opts.Logf("service: journal replay: bad submitted record: %v", err)
				continue
			}
			submitted = append(submitted, sr)
		case journal.KindTerminal:
			var tr jrecTerminal
			if err := json.Unmarshal(rec.Data, &tr); err != nil || !tr.State.Terminal() {
				s.opts.Logf("service: journal replay: bad terminal record (err=%v)", err)
				continue
			}
			terminals = append(terminals, tr)
		case journal.KindResult:
			rr, payload, err := decodeResult(rec.Data)
			if err != nil {
				s.opts.Logf("service: journal replay: dropping result record: %v", err)
				continue
			}
			if _, dup := results[rr.Hash]; !dup {
				resultOrder = append(resultOrder, rr.Hash)
			}
			results[rr.Hash] = resultEntry{payload: payload, phases: rr.Phases}
		default:
			s.opts.Logf("service: journal replay: unknown record kind %d", rec.Kind)
			continue
		}
		applied++
	}

	ended := make(map[string]bool, len(terminals))
	addJob := func(j *Job) {
		close(j.done)
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		var seq int
		if _, err := fmt.Sscanf(j.ID, "j%d-", &seq); err == nil && seq > s.seq {
			s.seq = seq
		}
		s.noteTerminalLocked(j)
	}
	// Terminal jobs, in the order they finished.
	for i := range terminals {
		tr := &terminals[i]
		ended[tr.ID] = true
		j := &Job{
			ID:      tr.ID,
			Hash:    tr.Hash,
			name:    tr.Circuit,
			engName: tr.Engine,
			state:   tr.State,
			errMsg:  tr.Error,
			cached:  tr.Cached,
			done:    make(chan struct{}),
		}
		if tr.State == Done {
			if e, ok := results[tr.Hash]; ok {
				j.payload = e.payload
				j.phases = append([]PhaseInfo(nil), e.phases...)
			} else {
				// The journal claims done but the result record is
				// missing or failed validation; a done job with no
				// payload would lie to result endpoints.
				j.state = Failed
				j.errMsg = "result not recovered from journal; resubmit to re-route"
			}
		}
		addJob(j)
	}
	// In-flight at crash time: no terminal record. They surface as
	// failed — never as inflight entries, so resubmission re-routes.
	for i := range submitted {
		sr := &submitted[i]
		if ended[sr.ID] {
			continue
		}
		ended[sr.ID] = true
		addJob(&Job{
			ID:      sr.ID,
			Hash:    sr.Hash,
			name:    sr.Circuit,
			engName: sr.Engine,
			state:   Failed,
			errMsg:  "interrupted by server restart; resubmit to re-route",
			done:    make(chan struct{}),
		})
	}
	// Warm the cache in journal order so the newest results win the LRU.
	for _, h := range resultOrder {
		e := results[h]
		s.cache.put(h, e.payload, e.phases)
		s.journaledResults[h] = true
	}
	s.metrics.journalReplayed.Store(applied)
}
