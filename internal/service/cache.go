package service

import "container/list"

// resultCache is a plain LRU over finished payloads, keyed by the content
// hash of (circuit text, canonical config). It is not internally
// synchronized: the Server's mutex guards every call.
type resultCache struct {
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key     string
	payload *Payload
	phases  []PhaseInfo
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *resultCache) put(key string, p *Payload, phases []PhaseInfo) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value = &cacheEntry{key: key, payload: p, phases: phases}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, payload: p, phases: phases})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
