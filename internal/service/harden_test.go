package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBodyCap: POST /jobs bodies beyond MaxBodyBytes answer 413 and
// count as rejections.
func TestBodyCap(t *testing.T) {
	svc := New(Options{Workers: 1, MaxBodyBytes: 256, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	big := `{"circuit":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if m := svc.Metrics(); m.RejectedSize != 1 {
		t.Fatalf("rejected_too_large = %d, want 1", m.RejectedSize)
	}
}

// TestCircuitCaps: the circuit-size admission caps reject before any
// routing work, as ErrTooLarge via the Go API and 413 over HTTP.
func TestCircuitCaps(t *testing.T) {
	cktText := readExample(t)

	for name, opts := range map[string]Options{
		"bytes": {Workers: 1, MaxCircuitBytes: 64},
		"nets":  {Workers: 1, MaxNets: 1},
		"cells": {Workers: 1, MaxCells: 1},
	} {
		opts.Logf = func(string, ...any) {}
		svc := New(opts)
		if _, err := svc.Submit(SubmitRequest{Circuit: cktText}); !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s cap: err = %v, want ErrTooLarge", name, err)
		}
		if m := svc.Metrics(); m.RejectedSize != 1 {
			t.Errorf("%s cap: rejected_too_large = %d, want 1", name, m.RejectedSize)
		}
		ts := httptest.NewServer(svc.Handler())
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"circuit":`+mustJSONString(cktText)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s cap over HTTP: status %d, want 413", name, resp.StatusCode)
		}
		ts.Close()
		svc.Shutdown(context.Background())
	}
}

func mustJSONString(s string) string {
	var b bytes.Buffer
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// TestConfigBounds: non-finite or negative JobConfig numbers are client
// errors (400), never routing work.
func TestConfigBounds(t *testing.T) {
	cktText := readExample(t)
	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())

	// NaN/Inf cannot travel through JSON; exercise the Go API directly.
	for name, jc := range map[string]JobConfig{
		"nan":      {RPerUm: math.NaN()},
		"inf":      {RPerUm: math.Inf(1)},
		"negative": {RPerUm: -1},
		"passes":   {MaxPasses: -2},
		"workers":  {Workers: -1},
	} {
		cfg := jc
		if _, err := svc.Submit(SubmitRequest{Circuit: cktText, Config: &cfg}); err == nil {
			t.Errorf("%s: bad config accepted", name)
		} else if errors.Is(err, ErrTooLarge) {
			t.Errorf("%s: config error misclassified as too-large: %v", name, err)
		}
	}

	// Over HTTP the same class of error is a 400, not a 5xx.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"neg-workers": `{"circuit":"circuit x\n","config":{"workers":-1}}`,
		"neg-passes":  `{"circuit":"circuit x\n","config":{"max_passes":-3}}`,
		"neg-rperum":  `{"circuit":"circuit x\n","config":{"r_per_um":-0.5}}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSSEHeartbeat: an idle stream (job held in beforeRun) receives
// `: keepalive` comment lines so proxies keep the connection open, and
// still ends with the terminal event.
func TestSSEHeartbeat(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	svc := New(Options{Workers: 1, sseHeartbeat: 20 * time.Millisecond,
		beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	defer release()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	keepalives := 0
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, release)
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ": keepalive") {
			keepalives++
			if keepalives >= 3 {
				release() // saw enough heartbeats; let the job finish
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if keepalives < 3 {
		t.Fatalf("saw %d keepalive comments on an idle stream, want >= 3", keepalives)
	}
}
