package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
)

// fuzzHandler is one tightly-capped server shared by every fuzz
// iteration in the process: tiny circuit limits keep accepted jobs
// cheap, the retention policy keeps memory bounded across millions of
// iterations, and panic containment turns any routing crash into a
// failed job instead of a fuzz-harness crash.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	svc := New(Options{
		Workers:         1,
		QueueDepth:      64,
		CacheSize:       4,
		JobTimeout:      2 * time.Second,
		TerminalTTL:     time.Minute,
		MaxTerminalJobs: 32,
		MaxBodyBytes:    16 << 10,
		MaxCircuitBytes: 8 << 10,
		MaxNets:         16,
		MaxCells:        64,
		Logf:            func(string, ...any) {},
	})
	return svc.Handler() // never shut down; lives for the process
})

// FuzzSubmit feeds arbitrary POST /jobs bodies through the submit
// pipeline — JSON decode → admission caps → circuit parse → validate →
// config bounds → (bounded) route. No input may crash the server, and
// every rejection must be a client error (4xx), never a 5xx.
func FuzzSubmit(f *testing.F) {
	var ckt bytes.Buffer
	if err := circuit.Format(&ckt, circuit.SampleSmall()); err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(SubmitRequest{Circuit: ckt.String()})
	if err != nil {
		f.Fatal(err)
	}
	withCfg, err := json.Marshal(SubmitRequest{
		Circuit: ckt.String(),
		Config:  &JobConfig{UseConstraints: true, DelayModel: "elmore", RPerUm: 0.0005, MaxPasses: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(string(withCfg))
	f.Add(`{}`)
	f.Add(`{"circuit":"not a circuit"}`)
	f.Add(`{"circuit":"circuit x\n","config":{"delay_model":"warp"}}`)
	f.Add(`{"circuit":"circuit x\n","config":{"workers":-1,"max_passes":-9}}`)
	f.Add(`{"circuit":"circuit x\n","config":{"r_per_um":-1e308}}`)
	f.Add(`{"circuit":"` + strings.Repeat("n", 9000) + `"}`)
	f.Add(`{"circuit":"circuit x\n","nope":1}`)
	f.Add(`[[[`)

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("submit pipeline answered %d for %q: %s", rec.Code, body, rec.Body.String())
		}
	})
}
