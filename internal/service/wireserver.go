package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// ServeWire serves the binary wire protocol (internal/wire) on ln,
// sharing the job table, dedupe map, result cache, journal and metrics
// with the HTTP API — a submission over one transport is a cache hit
// over the other. It blocks until ln is closed and returns nil then;
// each connection is handled on its own goroutine with FIFO response
// ordering, so clients may pipeline requests freely.
func (s *Server) ServeWire(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.metrics.wireConns.Add(1)
		go func() {
			defer s.metrics.wireConns.Add(-1)
			defer conn.Close()
			s.serveWireConn(conn)
		}()
	}
}

// serveWireConn runs one connection's request loop. Responses are
// written in request order; flushes are batched while more pipelined
// input is already buffered, so a burst of N requests costs ~one write.
func (s *Server) serveWireConn(conn net.Conn) {
	r := wire.NewReader(conn, s.opts.MaxFrameBytes)
	// Responses (a large SVG, a routedb for a big chip) may exceed the
	// request cap; the uint32 frame length still bounds them.
	w := wire.NewWriter(conn, -1)
	idle := s.opts.WireIdleTimeout
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		f, err := r.ReadFrame()
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// Mirror of the HTTP 413 path — count it, tell the
				// client, and close: the stream cannot be resynced
				// past an unread oversize payload.
				s.metrics.wireOversize.Add(1)
				s.metrics.rejected.Add(1)
				w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeTooLarge, err.Error()))
				w.Flush()
			}
			return
		}
		s.metrics.wireFrames.Add(1)
		ok := s.handleWireFrame(w, f)
		if r.Buffered() == 0 || !ok {
			if err := w.Flush(); err != nil {
				return
			}
		}
		if !ok {
			return
		}
	}
}

// handleWireFrame dispatches one request frame and stages its response.
// It returns false when the connection must close (unknown frame type:
// the peer is not speaking this protocol). Write errors surface at the
// caller's flush.
func (s *Server) handleWireFrame(w *wire.Writer, f wire.Frame) bool {
	switch f.Type {
	case wire.TPing:
		w.WriteFrame(wire.TPong, f.Payload)

	case wire.TSubmit, wire.TSubmitV2:
		// v1 and v2 differ only in the explicit engine field; old clients
		// keep sending v1 (engine defaults or rides in the config JSON).
		var (
			cfgJSON, ckt []byte
			timeoutMs    uint32
			engineName   string
			err          error
		)
		if f.Type == wire.TSubmit {
			cfgJSON, timeoutMs, ckt, err = wire.DecodeSubmit(f.Payload)
		} else {
			cfgJSON, timeoutMs, engineName, ckt, err = wire.DecodeSubmitV2(f.Payload)
		}
		if err != nil {
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest, err.Error()))
			return true
		}
		req := SubmitRequest{Circuit: string(ckt), TimeoutMs: int(timeoutMs)}
		if len(cfgJSON) > 0 {
			dec := json.NewDecoder(bytes.NewReader(cfgJSON))
			dec.DisallowUnknownFields()
			var jc JobConfig
			if err := dec.Decode(&jc); err != nil {
				w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest, "bad config: "+err.Error()))
				return true
			}
			req.Config = &jc
		}
		if engineName != "" {
			if req.Config == nil {
				jc := DefaultJobConfig()
				req.Config = &jc
			}
			if req.Config.Engine != "" && req.Config.Engine != engineName {
				w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest,
					fmt.Sprintf("engine field %q conflicts with config engine %q", engineName, req.Config.Engine)))
				return true
			}
			req.Config.Engine = engineName
		}
		res, err := s.Submit(req)
		if err != nil {
			w.WriteFrame(wire.TErr, wire.EncodeError(wireErrCode(err), err.Error()))
			return true
		}
		w.WriteFrame(wire.TSubmitted, wire.EncodeSubmitted(res.Cached, res.Deduped, res.Job.ID))

	case wire.TStatus, wire.TWait:
		j, ok := s.Job(string(f.Payload))
		if !ok {
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeNotFound, "unknown job"))
			return true
		}
		if f.Type == wire.TWait {
			// Block until terminal; the per-job deadline bounds this,
			// and FIFO ordering means later pipelined requests simply
			// queue behind the wait — that is the semantics asked for.
			<-j.Done()
		}
		s.writeWireJSON(w, wire.TStatusOK, j.Snapshot())

	case wire.TCancel:
		st, ok := s.Cancel(string(f.Payload))
		if !ok {
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeNotFound, "unknown job"))
			return true
		}
		s.writeWireJSON(w, wire.TStatusOK, st)

	case wire.TResult:
		kind, id, err := wire.DecodeResultReq(f.Payload)
		if err != nil {
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest, err.Error()))
			return true
		}
		j, ok := s.Job(id)
		if !ok {
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeNotFound, "unknown job"))
			return true
		}
		p := j.Payload()
		if p == nil {
			snap := j.Snapshot()
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeNotDone,
				fmt.Sprintf("job not done (state %s)", snap.State)))
			return true
		}
		var body []byte
		switch kind {
		case wire.KindRouteDB:
			body = p.RouteDB
		case wire.KindTiming:
			body = []byte(p.Timing)
		case wire.KindSVG:
			body = []byte(p.SVG)
		case wire.KindLayout:
			body = []byte(p.Layout)
		default:
			w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest,
				fmt.Sprintf("unknown result kind %q", kind)))
			return true
		}
		w.WriteFrame(wire.TResultOK, body)

	default:
		w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeBadRequest,
			fmt.Sprintf("unknown frame type 0x%02x", f.Type)))
		return false
	}
	return true
}

// writeWireJSON stages v as a JSON-payload frame; an encode failure is
// answered as an internal error so the response count stays in step
// with the pipelined requests.
func (s *Server) writeWireJSON(w *wire.Writer, t byte, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.opts.Logf("service: wire: encode response: %v", err)
		w.WriteFrame(wire.TErr, wire.EncodeError(wire.CodeInternal, "encode response"))
		return
	}
	w.WriteFrame(t, b)
}

// wireErrCode maps a Submit error to its TErr code, mirroring the HTTP
// handler's status mapping.
func wireErrCode(err error) byte {
	switch {
	case errors.Is(err, ErrTooLarge):
		return wire.CodeTooLarge
	case errors.Is(err, ErrQueueFull):
		return wire.CodeQueueFull
	case errors.Is(err, ErrShuttingDown):
		return wire.CodeShuttingDown
	}
	return wire.CodeBadRequest
}
