package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"testing"

	"repro/internal/wire"
)

// startWire exposes svc on an ephemeral TCP port speaking the wire
// protocol and returns the address.
func startWire(t *testing.T, svc *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.ServeWire(ln); err != nil {
			t.Errorf("ServeWire: %v", err)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
	})
	return ln.Addr().String()
}

func dialWire(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestWireMatchesHTTP is the transport-equivalence contract: the same
// circuit submitted over the binary protocol and over HTTP produces
// byte-identical artifacts, and the two transports share one result
// cache.
func TestWireMatchesHTTP(t *testing.T) {
	ckt := readExample(t)
	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	addr := startWire(t, svc)
	c := dialWire(t, addr)

	rep, err := c.Submit(ckt, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached || rep.Dedup {
		t.Fatalf("first wire submit: %+v", rep)
	}
	statusJSON, err := c.Wait(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(statusJSON, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Summary == nil {
		t.Fatalf("wire job did not finish cleanly: %+v", st)
	}
	wireDB, err := c.Result(rep.ID, wire.KindRouteDB)
	if err != nil {
		t.Fatal(err)
	}
	wireTiming, err := c.Result(rep.ID, wire.KindTiming)
	if err != nil {
		t.Fatal(err)
	}

	// The HTTP submission of the identical circuit must be a cache hit
	// (shared cache across transports) serving the same bytes.
	httpRep := postJob(t, ts.URL, map[string]any{"circuit": ckt})
	if !httpRep.Cached {
		t.Fatalf("HTTP submit after wire submit not cached: %+v", httpRep)
	}
	httpDB := getBody(t, ts.URL+"/jobs/"+httpRep.ID+"/routedb", 200)
	httpTiming := getBody(t, ts.URL+"/jobs/"+httpRep.ID+"/timing", 200)
	if !bytes.Equal(wireDB, httpDB) {
		t.Fatal("wire and HTTP routedb bytes differ")
	}
	if !bytes.Equal(wireTiming, httpTiming) {
		t.Fatal("wire and HTTP timing bytes differ")
	}

	// And the batch router agrees with both.
	directDB, directTiming := directRun(t, ckt)
	if !bytes.Equal(wireDB, directDB) {
		t.Fatal("wire routedb differs from direct routing")
	}
	if string(wireTiming) != directTiming {
		t.Fatal("wire timing differs from direct routing")
	}

	// A second wire submission is a cache hit too.
	rep2, err := c.Submit(ckt, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached {
		t.Fatalf("second wire submit not cached: %+v", rep2)
	}

	m := svc.Metrics()
	if m.WireConns != 1 || m.WireFrames == 0 {
		t.Fatalf("wire metrics: conns=%d frames=%d", m.WireConns, m.WireFrames)
	}
}

// TestWirePipelining stages a burst of requests in one flush and
// expects the responses strictly in request order.
func TestWirePipelining(t *testing.T) {
	ckt := readExample(t)
	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	addr := startWire(t, svc)
	c := dialWire(t, addr)

	cfgJSON, _ := json.Marshal(DefaultJobConfig())
	if err := c.Send(wire.TPing, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(wire.TSubmit, wire.EncodeSubmit(cfgJSON, 0, []byte(ckt))); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(wire.TPing, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	f, err := c.Recv()
	if err != nil || f.Type != wire.TPong || string(f.Payload) != "one" {
		t.Fatalf("response 1: %+v err=%v", f, err)
	}
	f, err = c.Recv()
	if err != nil || f.Type != wire.TSubmitted {
		t.Fatalf("response 2: %+v err=%v", f, err)
	}
	rep, err := wire.DecodeSubmitted(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	f, err = c.Recv()
	if err != nil || f.Type != wire.TPong || string(f.Payload) != "two" {
		t.Fatalf("response 3: %+v err=%v", f, err)
	}

	// Wait + fetch over the same connection still works after a burst.
	if _, err := c.Wait(rep.ID); err != nil {
		t.Fatal(err)
	}
	db, err := c.Result(rep.ID, wire.KindRouteDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) == 0 || db[0] != '{' {
		t.Fatalf("routedb over pipelined connection looks wrong: %q...", db[:min(16, len(db))])
	}
}

// TestWireOversizeFrame sends a frame whose length prefix exceeds the
// server cap: the server must answer CodeTooLarge, count it, and close
// the connection without reading the payload.
func TestWireOversizeFrame(t *testing.T) {
	svc := New(Options{Workers: 1, MaxFrameBytes: 1024, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	addr := startWire(t, svc)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := make([]byte, wire.HeaderLen)
	hdr[0] = wire.TSubmit
	binary.BigEndian.PutUint32(hdr[1:], 1<<20) // far past the 1 KiB cap
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(conn, 0)
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TErr {
		t.Fatalf("got frame type 0x%02x, want TErr", f.Type)
	}
	if re := wire.DecodeError(f.Payload); re.Code != wire.CodeTooLarge {
		t.Fatalf("got %+v, want CodeTooLarge", re)
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("connection not closed after oversize frame: %v", err)
	}
	if m := svc.Metrics(); m.WireOversize != 1 {
		t.Fatalf("wire_rejected_oversize = %d, want 1", m.WireOversize)
	}
}

// TestWireErrors covers the error frames: unknown job, bad circuit,
// unknown frame type (which also closes the connection).
func TestWireErrors(t *testing.T) {
	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	addr := startWire(t, svc)
	c := dialWire(t, addr)

	var re *wire.RemoteError
	if _, err := c.Status("no-such-job"); !errors.As(err, &re) || re.Code != wire.CodeNotFound {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := c.Submit("not a circuit", nil, 0); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("bad circuit: %v", err)
	}
	if _, err := c.Submit(readExample(t), []byte(`{"bogus_field":1}`), 0); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("bad config: %v", err)
	}

	// Unknown frame type: one TErr response, then the server hangs up.
	c2 := dialWire(t, addr)
	if err := c2.Send(0x7F, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Recv(); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("unknown frame type: %v", err)
	}
	if _, err := c2.Recv(); err != io.EOF {
		t.Fatalf("connection not closed after unknown frame type: %v", err)
	}
}
