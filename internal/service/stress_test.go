package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServiceStress hammers one server from 16 goroutines: 4 distinct
// circuits submitted 4× each, so the run exercises the worker pool, the
// in-flight dedup map, the LRU cache and the cancel path concurrently.
// Run under -race (CI does) to certify the pool and cache are race-clean.
func TestServiceStress(t *testing.T) {
	base := readExample(t)
	variant := func(i int) string {
		return strings.Replace(base, "circuit invchain", fmt.Sprintf("circuit invchain%d", i), 1)
	}

	svc := New(Options{Workers: 4, QueueDepth: 128, CacheSize: 8})
	defer svc.Shutdown(context.Background())

	const (
		distinct = 4
		repeats  = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, distinct*repeats)
	for g := 0; g < distinct*repeats; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ckt := variant(g % distinct)
			res, err := svc.Submit(SubmitRequest{Circuit: ckt})
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: submit: %w", g, err)
				return
			}
			// A few submitters cancel instead of waiting; with dedup in
			// play the shared job may be cancelled under other waiters,
			// so any terminal state is legal for them.
			if g%7 == 3 {
				svc.Cancel(res.Job.ID)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			st, err := svc.Wait(ctx, res.Job.ID)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: wait: %w (state %s)", g, err, st.State)
				return
			}
			if st.State == Failed {
				errs <- fmt.Errorf("goroutine %d: job failed: %s", g, st.Error)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Conservation: every accepted job reached exactly one terminal
	// state, nothing is left in flight, and the cache never exceeds the
	// distinct-design count.
	m := svc.Metrics()
	if got := m.JobsCompleted + m.JobsFailed + m.JobsCancelled; got != m.JobsAccepted {
		t.Errorf("terminal jobs = %d, accepted = %d", got, m.JobsAccepted)
	}
	if m.JobsFailed != 0 {
		t.Errorf("jobs_failed = %d, want 0", m.JobsFailed)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue_depth = %d after drain", m.QueueDepth)
	}
	if m.CacheEntries > distinct {
		t.Errorf("cache_entries = %d, want <= %d", m.CacheEntries, distinct)
	}
	// The runtime view rides along on every snapshot: a live process
	// always has a non-empty heap.
	if m.Runtime.HeapAllocBytes == 0 || m.Runtime.HeapObjects == 0 {
		t.Errorf("runtime_mem not populated: %+v", m.Runtime)
	}
	if total := m.JobsAccepted + m.JobsDeduped + m.CacheHits; total != distinct*repeats {
		t.Errorf("accepted+deduped+cache_hits = %d, want %d", total, distinct*repeats)
	}
}

// TestServiceStressHTTPWaves repeats whole waves of identical
// submissions so later waves hit the cache while earlier jobs are still
// draining, mixing cache reads and writes under -race.
func TestServiceStressWaves(t *testing.T) {
	base := readExample(t)
	variant := func(i int) string {
		return strings.Replace(base, "circuit invchain", fmt.Sprintf("circuit wave%d", i), 1)
	}
	svc := New(Options{Workers: 3, QueueDepth: 64, CacheSize: 2})
	defer svc.Shutdown(context.Background())

	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				res, err := svc.Submit(SubmitRequest{Circuit: variant(g % 3)})
				if err != nil {
					t.Errorf("wave submit: %v", err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				st, err := svc.Wait(ctx, res.Job.ID)
				if err != nil || st.State != Done {
					t.Errorf("wave wait: err=%v state=%s (%s)", err, st.State, st.Error)
				}
			}(g)
		}
		wg.Wait()
	}
	m := svc.Metrics()
	if m.CacheEntries > 2 {
		t.Errorf("cache exceeded its bound: %d entries", m.CacheEntries)
	}
	if m.CacheHits == 0 {
		t.Errorf("expected cache hits across waves, got none")
	}
}
