package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
)

func silentLogf(string, ...any) {}

// openJournaled starts a journaled service on path and registers its
// shutdown.
func openJournaled(t *testing.T, path string) *Server {
	t.Helper()
	svc, err := Open(Options{Workers: 1, JournalPath: path, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	return svc
}

// submitAndWait routes ckt on svc and returns the finished job.
func submitAndWait(t *testing.T, svc *Server, ckt string) *Job {
	t.Helper()
	res, err := svc.Submit(SubmitRequest{Circuit: ckt})
	if err != nil {
		t.Fatal(err)
	}
	<-res.Job.Done()
	if st := res.Job.Snapshot(); st.State != Done {
		t.Fatalf("job %s: state %s, error %q", res.Job.ID, st.State, st.Error)
	}
	return res.Job
}

// TestRestartRecovery is the durability contract end to end: kill a
// journaled service after a routed job, reopen the same journal, and
// the terminal job is still addressable with byte-identical artifacts —
// and an identical resubmission is a cache hit, not a re-route.
func TestRestartRecovery(t *testing.T) {
	ckt := readExample(t)
	path := filepath.Join(t.TempDir(), "jobs.journal")

	svc1, err := Open(Options{Workers: 1, JournalPath: path, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	j1 := submitAndWait(t, svc1, ckt)
	p1 := j1.Payload()
	name := j1.Snapshot().Circuit
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2 := openJournaled(t, path)
	j2, ok := svc2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s not recovered after restart", j1.ID)
	}
	st := j2.Snapshot()
	if st.State != Done || st.Circuit != name {
		t.Fatalf("recovered job snapshot: %+v", st)
	}
	p2 := j2.Payload()
	if p2 == nil {
		t.Fatal("recovered job has no payload")
	}
	if !bytes.Equal(p1.RouteDB, p2.RouteDB) {
		t.Fatal("recovered routedb differs from pre-restart bytes")
	}
	if p1.Timing != p2.Timing || p1.SVG != p2.SVG || p1.Layout != p2.Layout {
		t.Fatal("recovered artifacts differ from pre-restart bytes")
	}

	// The replay must have applied submitted + result + terminal.
	if m := svc2.Metrics(); m.JournalReplay < 3 || m.JournalRecs < 3 {
		t.Fatalf("journal metrics after restart: replayed=%d records=%d", m.JournalReplay, m.JournalRecs)
	}

	// Identical resubmission hits the re-warmed cache.
	res, err := svc2.Submit(SubmitRequest{Circuit: ckt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("resubmission after restart missed the re-warmed cache")
	}
	if !bytes.Equal(res.Job.Payload().RouteDB, p1.RouteDB) {
		t.Fatal("cache-served routedb differs from pre-restart bytes")
	}
}

// TestRestartMidRoute: a submitted record with no terminal record is a
// job that was mid-route when the process died. It must come back as a
// failed job whose dedupe slot is free, so resubmitting routes fresh.
func TestRestartMidRoute(t *testing.T) {
	ckt := readExample(t)
	path := filepath.Join(t.TempDir(), "jobs.journal")
	hash := hashKey(ckt, DefaultJobConfig())

	jl, recs, err := journal.Open(path, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	b, err := json.Marshal(jrecSubmitted{ID: "j0017-" + hash[:8], Hash: hash, Circuit: "invchain"})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Append(journal.KindSubmitted, b); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	svc := openJournaled(t, path)
	j, ok := svc.Job("j0017-" + hash[:8])
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	st := j.Snapshot()
	if st.State != Failed || !strings.Contains(st.Error, "interrupted") {
		t.Fatalf("interrupted job snapshot: %+v", st)
	}

	// The dedupe slot is free: resubmitting routes fresh (not deduped,
	// not cached), and the ID sequence resumes past the replayed job.
	res, err := svc.Submit(SubmitRequest{Circuit: ckt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Deduped {
		t.Fatalf("resubmission of interrupted job: cached=%v deduped=%v", res.Cached, res.Deduped)
	}
	if !strings.HasPrefix(res.Job.ID, "j0018-") {
		t.Fatalf("ID sequence did not resume after replay: %s", res.Job.ID)
	}
	<-res.Job.Done()
	if st := res.Job.Snapshot(); st.State != Done {
		t.Fatalf("re-routed job: state %s, error %q", st.State, st.Error)
	}
}

// TestRestartTruncatedTail truncates the journal at every byte offset
// inside its final record — every possible torn-append crash — and
// reopens the service on each cut. The final record is the routed job's
// terminal record, so the job itself degrades to the interrupted state,
// but the result record before it survives intact: the cache is warm
// and a resubmission serves byte-identical artifacts without routing.
func TestRestartTruncatedTail(t *testing.T) {
	ckt := readExample(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")

	svc1, err := Open(Options{Workers: 1, JournalPath: path, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	j1 := submitAndWait(t, svc1, ckt)
	wantDB := j1.Payload().RouteDB
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the record framing (length u32 | crc u32 | kind+data) to
	// find where the final record starts.
	lastStart := 0
	for off := 0; off+8 <= len(full); {
		n := int(binary.BigEndian.Uint32(full[off:]))
		if off+8+n > len(full) {
			t.Fatalf("journal has a torn record at offset %d", off)
		}
		lastStart = off
		off += 8 + n
	}
	if lastStart == 0 {
		t.Fatalf("journal too short for this test: %d bytes", len(full))
	}

	cut := filepath.Join(dir, "cut.journal")
	for n := lastStart; n < len(full); n++ {
		if err := os.WriteFile(cut, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		svc, err := Open(Options{Workers: 1, JournalPath: cut, Logf: silentLogf})
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", n, err)
		}
		res, err := svc.Submit(SubmitRequest{Circuit: ckt})
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", n, err)
		}
		if !res.Cached {
			t.Fatalf("cut at %d bytes: cache not re-warmed from surviving result record", n)
		}
		if !bytes.Equal(res.Job.Payload().RouteDB, wantDB) {
			t.Fatalf("cut at %d bytes: cached routedb differs from pre-crash bytes", n)
		}
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Fatalf("cut at %d bytes: %v", n, err)
		}
	}
}
