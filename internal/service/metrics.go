package service

import (
	"encoding/json"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds of the per-phase latency
// histogram, milliseconds; the implicit last bucket is +Inf.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram (cumulative on export,
// like Prometheus). counts has one slot per bound plus the +Inf overflow.
type histogram struct {
	counts [14]uint64 // len(latencyBucketsMs) + 1
	sumMs  float64
	count  uint64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i]++
	h.sumMs += ms
	h.count++
}

// histogramJSON is the exported form of one histogram.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	SumMs   float64           `json:"sum_ms"`
	Buckets map[string]uint64 `json:"buckets"` // "le_<bound>" → cumulative count
}

func (h *histogram) export() histogramJSON {
	out := histogramJSON{Count: h.count, SumMs: h.sumMs, Buckets: make(map[string]uint64)}
	var cum uint64
	for i, b := range latencyBucketsMs {
		cum += h.counts[i]
		out.Buckets[leLabel(b)] = cum
	}
	cum += h.counts[len(latencyBucketsMs)]
	out.Buckets["le_inf"] = cum
	return out
}

func leLabel(bound float64) string {
	b, _ := json.Marshal(bound)
	return "le_" + string(b) + "ms"
}

// metrics is the service-wide counter set, exposed at /metrics as
// expvar-style JSON. Counters are atomics; the histograms share one
// mutex (they are touched once per finished job, not per request).
type metrics struct {
	accepted  atomic.Int64 // jobs newly enqueued (excludes cache hits and dedups)
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	deduped   atomic.Int64 // submissions coalesced onto an in-flight job
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	panics    atomic.Int64 // routing panics recovered by the worker boundary
	evicted   atomic.Int64 // terminal jobs evicted by the retention policy
	rejected  atomic.Int64 // submissions refused by a size cap (HTTP 413)
	// rejectedBadEngine counts submissions naming an unregistered engine,
	// refused at admission (HTTP 400 / wire CodeBadRequest).
	rejectedBadEngine atomic.Int64

	netsScored atomic.Int64 // per-net candidate scores recomputed
	netsReused atomic.Int64 // per-net scores served from the selection cache

	wireConns    atomic.Int64 // open wire-protocol connections (gauge)
	wireFrames   atomic.Int64 // request frames handled on the wire listener
	wireOversize atomic.Int64 // frames rejected for exceeding the size cap

	journalReplayed atomic.Int64 // journal records applied at startup replay

	mu      sync.Mutex
	phases  map[string]*histogram // per-phase routing latency
	selects map[string]*histogram // per-phase time inside selectEdge
	timings map[string]*histogram // per-phase time inside Timing.Flush
	// enginePhases is the per-engine view of the phase latencies, keyed
	// "engine/phase"; jobsByEngine counts completed jobs per engine.
	enginePhases map[string]*histogram
	jobsByEngine map[string]int64
	jobs         histogram // end-to-end job latency
}

func newMetrics() *metrics {
	return &metrics{
		phases:       make(map[string]*histogram),
		selects:      make(map[string]*histogram),
		timings:      make(map[string]*histogram),
		enginePhases: make(map[string]*histogram),
		jobsByEngine: make(map[string]int64),
	}
}

func (m *metrics) observeJob(engineName string, total time.Duration, phases []PhaseInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs.observe(total)
	if engineName != "" {
		m.jobsByEngine[engineName]++
	}
	for _, p := range phases {
		if engineName != "" {
			key := engineName + "/" + p.Name
			eh := m.enginePhases[key]
			if eh == nil {
				eh = &histogram{}
				m.enginePhases[key] = eh
			}
			eh.observe(time.Duration(p.DurationMs * float64(time.Millisecond)))
		}
		h := m.phases[p.Name]
		if h == nil {
			h = &histogram{}
			m.phases[p.Name] = h
		}
		h.observe(time.Duration(p.DurationMs * float64(time.Millisecond)))
		if p.SelectCalls > 0 {
			sh := m.selects[p.Name]
			if sh == nil {
				sh = &histogram{}
				m.selects[p.Name] = sh
			}
			sh.observe(time.Duration(p.SelectMs * float64(time.Millisecond)))
			m.netsScored.Add(int64(p.ScoredNets))
			m.netsReused.Add(int64(p.ReusedNets))
		}
		if p.TimingFlushes > 0 {
			th := m.timings[p.Name]
			if th == nil {
				th = &histogram{}
				m.timings[p.Name] = th
			}
			th.observe(time.Duration(p.TimingMs * float64(time.Millisecond)))
		}
	}
}

// RuntimeMemStats is the Go-runtime memory view of the /metrics document:
// enough to watch the zero-allocation routing discipline from outside the
// process — a routing service whose heap_objects climbs with every job, or
// whose GC pauses grow under load, is allocating on the hot path again.
type RuntimeMemStats struct {
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"` // live heap, bytes
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`   // heap address space held from the OS
	HeapObjects    uint64  `json:"heap_objects"`     // live object count
	TotalAllocMB   uint64  `json:"total_alloc_mb"`   // cumulative allocation volume, MiB
	NumGC          uint32  `json:"num_gc"`           // completed GC cycles
	LastGCPauseNs  uint64  `json:"last_gc_pause_ns"` // most recent stop-the-world pause
	GCCPUPercent   float64 `json:"gc_cpu_percent"`   // share of CPU spent in GC since start
}

func readRuntimeMemStats() RuntimeMemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := RuntimeMemStats{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		TotalAllocMB:   ms.TotalAlloc >> 20,
		NumGC:          ms.NumGC,
	}
	if ms.NumGC > 0 {
		out.LastGCPauseNs = ms.PauseNs[(ms.NumGC+255)%256]
	}
	out.GCCPUPercent = ms.GCCPUFraction * 100
	return out
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	JobsAccepted      int64                    `json:"jobs_accepted"`
	JobsCompleted     int64                    `json:"jobs_completed"`
	JobsFailed        int64                    `json:"jobs_failed"`
	JobsCancelled     int64                    `json:"jobs_cancelled"`
	JobsDeduped       int64                    `json:"jobs_deduped"`
	CacheHits         int64                    `json:"cache_hits"`
	CacheMisses       int64                    `json:"cache_misses"`
	CacheEntries      int                      `json:"cache_entries"`
	QueueDepth        int                      `json:"queue_depth"`
	Workers           int                      `json:"workers"`
	PanicsRecov       int64                    `json:"panics_recovered"`
	JobsRetained      int                      `json:"jobs_retained"`
	JobsEvicted       int64                    `json:"jobs_evicted"`
	RejectedSize      int64                    `json:"rejected_too_large"`
	RejectedBadEngine int64                    `json:"rejected_bad_engine"`
	NetsScored        int64                    `json:"nets_scored"`
	NetsReused        int64                    `json:"nets_reused"`
	WireConns         int64                    `json:"wire_conns"`
	WireFrames        int64                    `json:"wire_frames"`
	WireOversize      int64                    `json:"wire_rejected_oversize"`
	JournalRecs       int64                    `json:"journal_records"`
	JournalReplay     int64                    `json:"journal_replayed"`
	JournalBytes      int64                    `json:"journal_bytes"`
	Runtime           RuntimeMemStats          `json:"runtime_mem"`
	JobLatency        histogramJSON            `json:"job_latency_ms"`
	PhaseLatency      map[string]histogramJSON `json:"phase_latency_ms"`
	SelectLatency     map[string]histogramJSON `json:"select_latency_ms"`
	TimingLatency     map[string]histogramJSON `json:"timing_latency_ms"`
	// EnginePhaseLatency is PhaseLatency split per engine, keyed
	// "engine/phase"; JobsByEngine counts completed jobs per engine.
	EnginePhaseLatency map[string]histogramJSON `json:"engine_phase_latency_ms"`
	JobsByEngine       map[string]int64         `json:"jobs_by_engine"`
}

func (m *metrics) snapshot(queueDepth, workers, cacheEntries, retained int, journalRecs, journalBytes int64) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		JobsAccepted:       m.accepted.Load(),
		JobsCompleted:      m.completed.Load(),
		JobsFailed:         m.failed.Load(),
		JobsCancelled:      m.cancelled.Load(),
		JobsDeduped:        m.deduped.Load(),
		CacheHits:          m.cacheHits.Load(),
		CacheMisses:        m.cacheMiss.Load(),
		CacheEntries:       cacheEntries,
		QueueDepth:         queueDepth,
		Workers:            workers,
		PanicsRecov:        m.panics.Load(),
		JobsRetained:       retained,
		JobsEvicted:        m.evicted.Load(),
		RejectedSize:       m.rejected.Load(),
		RejectedBadEngine:  m.rejectedBadEngine.Load(),
		NetsScored:         m.netsScored.Load(),
		NetsReused:         m.netsReused.Load(),
		WireConns:          m.wireConns.Load(),
		WireFrames:         m.wireFrames.Load(),
		WireOversize:       m.wireOversize.Load(),
		JournalRecs:        journalRecs,
		JournalReplay:      m.journalReplayed.Load(),
		JournalBytes:       journalBytes,
		Runtime:            readRuntimeMemStats(),
		JobLatency:         m.jobs.export(),
		PhaseLatency:       make(map[string]histogramJSON, len(m.phases)),
		SelectLatency:      make(map[string]histogramJSON, len(m.selects)),
		TimingLatency:      make(map[string]histogramJSON, len(m.timings)),
		EnginePhaseLatency: make(map[string]histogramJSON, len(m.enginePhases)),
		JobsByEngine:       make(map[string]int64, len(m.jobsByEngine)),
	}
	for _, name := range sortedKeys(m.phases) {
		out.PhaseLatency[name] = m.phases[name].export()
	}
	for _, name := range sortedKeys(m.selects) {
		out.SelectLatency[name] = m.selects[name].export()
	}
	for _, name := range sortedKeys(m.timings) {
		out.TimingLatency[name] = m.timings[name].export()
	}
	for _, name := range sortedKeys(m.enginePhases) {
		out.EnginePhaseLatency[name] = m.enginePhases[name].export()
	}
	for name, n := range m.jobsByEngine {
		out.JobsByEngine[name] = n
	}
	return out
}

// sortedKeys returns a histogram map's keys in sorted order so the
// snapshot is assembled in a stable sequence regardless of map layout.
func sortedKeys(m map[string]*histogram) []string {
	keys := make([]string, 0, len(m))
	for name := range m {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}
