package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/report"
	"repro/internal/routedb"
)

const exampleCkt = "../../examples/data/invchain.ckt"

func readExample(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(exampleCkt)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// directRun routes the circuit the batch way and renders the same
// artifacts the service serves, without going through the service code.
func directRun(t *testing.T, cktText string) (dbJSON []byte, timing string) {
	t.Helper()
	ckt, err := circuit.Parse(strings.NewReader(cktText))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := routedb.Build(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	dbJSON, err = routedb.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := dg.NewTiming()
	tm.SetLumped(cr.NetLenUm)
	tm.Analyze()
	timing = report.TimingReport(res.Ckt, tm, 3) + "\n" + report.SlackHistogram(res.Ckt, tm, 8)
	return dbJSON, timing
}

func postJob(t *testing.T, base string, body any) submitResponse {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, msg)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func getBody(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, b)
	}
	return b
}

func pollDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		if code := getJSON(t, base+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return Status{}
}

// TestServiceEndToEnd is the acceptance flow: submit the example circuit
// over HTTP on an ephemeral port, poll to completion, fetch routedb JSON
// and the timing report, and require both to be byte-identical to a
// direct batch run. A second identical submission must be a cache hit
// (observed via /metrics) serving the same bytes.
func TestServiceEndToEnd(t *testing.T) {
	cktText := readExample(t)
	wantDB, wantTiming := directRun(t, cktText)

	svc := New(Options{Workers: 2})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	if sub.Cached || sub.Dedup {
		t.Fatalf("first submission unexpectedly cached=%v dedup=%v", sub.Cached, sub.Dedup)
	}
	st := pollDone(t, ts.URL, sub.ID)
	if st.State != Done {
		t.Fatalf("job state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.Nets == 0 {
		t.Fatalf("done job has no summary: %+v", st)
	}
	if len(st.Phases) == 0 {
		t.Fatalf("done job has no phase trace")
	}

	gotDB := getBody(t, ts.URL+"/jobs/"+sub.ID+"/routedb", http.StatusOK)
	if !bytes.Equal(gotDB, wantDB) {
		t.Fatalf("service routedb JSON differs from direct run (%d vs %d bytes)", len(gotDB), len(wantDB))
	}
	gotTiming := getBody(t, ts.URL+"/jobs/"+sub.ID+"/timing", http.StatusOK)
	if string(gotTiming) != wantTiming {
		t.Fatalf("service timing report differs from direct run")
	}
	if svg := getBody(t, ts.URL+"/jobs/"+sub.ID+"/svg", http.StatusOK); !bytes.Contains(svg, []byte("<svg")) {
		t.Fatalf("svg endpoint did not return SVG")
	}

	// Identical resubmission: served from the cache, byte-identical.
	sub2 := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	if !sub2.Cached {
		t.Fatalf("second submission was not a cache hit: %+v", sub2)
	}
	if sub2.ID == sub.ID {
		t.Fatalf("cache hit reused the original job ID")
	}
	if st2 := pollDone(t, ts.URL, sub2.ID); st2.State != Done || !st2.Cached {
		t.Fatalf("cached job state = %+v, want done+cached", st2)
	}
	gotDB2 := getBody(t, ts.URL+"/jobs/"+sub2.ID+"/routedb", http.StatusOK)
	if !bytes.Equal(gotDB2, wantDB) {
		t.Fatalf("cached routedb JSON differs from direct run")
	}

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics cache_hits=%d cache_misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.JobsCompleted != 1 || m.JobsAccepted != 1 {
		t.Fatalf("metrics jobs_completed=%d jobs_accepted=%d, want 1/1", m.JobsCompleted, m.JobsAccepted)
	}
	if m.JobLatency.Count != 1 {
		t.Fatalf("metrics job_latency count=%d, want 1", m.JobLatency.Count)
	}
	if len(m.PhaseLatency) == 0 {
		t.Fatalf("metrics phase_latency empty")
	}
}

// TestServiceCancelQueued holds the single worker busy, cancels a queued
// job over HTTP, and requires status cancelled both in the cancel reply
// and on subsequent polls; the held job still completes.
func TestServiceCancelQueued(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}

	svc := New(Options{Workers: 1, beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	defer release() // must unblock the worker before Shutdown waits on it
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	subA := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	// Different config → different hash, so B queues instead of deduping.
	subB := postJob(t, ts.URL, SubmitRequest{Circuit: cktText, Config: &JobConfig{UseConstraints: false}})
	if subB.Dedup || subB.Cached {
		t.Fatalf("job B unexpectedly coalesced: %+v", subB)
	}

	resp, err := http.Post(ts.URL+"/jobs/"+subB.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != Cancelled {
		t.Fatalf("cancel reply state = %s, want cancelled", st.State)
	}
	if got := pollDone(t, ts.URL, subB.ID); got.State != Cancelled {
		t.Fatalf("job B state = %s, want cancelled", got.State)
	}

	release()
	if got := pollDone(t, ts.URL, subA.ID); got.State != Done {
		t.Fatalf("job A state = %s (error %q), want done", got.State, got.Error)
	}
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.JobsCancelled != 1 {
		t.Fatalf("metrics jobs_cancelled=%d, want 1", m.JobsCancelled)
	}
}

// TestServiceCancelRunning interrupts a running job via core's context
// plumbing: the worker starts routing a job whose progress callback
// blocks the router long enough for the cancel to land.
func TestServiceCancelRunning(t *testing.T) {
	cktText := readExample(t)
	started := make(chan struct{})
	svc := New(Options{Workers: 1, beforeRun: func(*Job) { close(started) }})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A tight timeout is the deterministic way to abort mid-route on a
	// fast circuit; a client cancel uses the identical path
	// (context cancellation observed between edge deletions).
	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText, TimeoutMs: 1})
	<-started
	st := pollDone(t, ts.URL, sub.ID)
	if st.State != Failed && st.State != Done {
		t.Fatalf("job state = %s, want failed (deadline) or done (won the race)", st.State)
	}
	if st.State == Failed && !strings.Contains(st.Error, "deadline") {
		t.Fatalf("failed job error = %q, want deadline mention", st.Error)
	}
}

// TestServiceDedupInflight coalesces identical submissions onto one job.
func TestServiceDedupInflight(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	svc := New(Options{Workers: 1, beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	subA := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	subB := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	if !subB.Dedup || subB.ID != subA.ID {
		t.Fatalf("identical in-flight submission not deduped: %+v vs %+v", subA, subB)
	}
	close(gate)
	if st := pollDone(t, ts.URL, subA.ID); st.State != Done {
		t.Fatalf("job state = %s, want done", st.State)
	}
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.JobsDeduped != 1 || m.JobsAccepted != 1 {
		t.Fatalf("metrics jobs_deduped=%d jobs_accepted=%d, want 1/1", m.JobsDeduped, m.JobsAccepted)
	}
}

// TestServiceQueueFull bounds the queue: worker busy + full queue → 429.
func TestServiceQueueFull(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	svc := New(Options{Workers: 1, QueueDepth: 1, beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	defer close(gate) // must unblock the worker before Shutdown waits on it

	variant := func(i int) string {
		return strings.Replace(cktText, "circuit invchain", fmt.Sprintf("circuit invchain%d", i), 1)
	}
	if _, err := svc.Submit(SubmitRequest{Circuit: variant(0)}); err != nil {
		t.Fatal(err)
	}
	// The worker may or may not have claimed job 0 yet; fill until full.
	var lastErr error
	for i := 1; i < 4; i++ {
		if _, lastErr = svc.Submit(SubmitRequest{Circuit: variant(i)}); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", lastErr)
	}
}

// TestServiceBadRequests covers submit-side validation.
func TestServiceBadRequests(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty":       `{}`,
		"garbage-ckt": `{"circuit":"not a circuit"}`,
		"bad-config":  `{"circuit":"circuit x\n","config":{"delay_model":"warp"}}`,
		"unknown-key": `{"circuit":"circuit x\n","nope":1}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if b := getBody(t, ts.URL+"/jobs/nope", http.StatusNotFound); !bytes.Contains(b, []byte("unknown job")) {
		t.Errorf("unknown job body: %s", b)
	}
}

// TestServiceResultConflict: result endpoints answer 409 before the job
// is done.
func TestServiceResultConflict(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	svc := New(Options{Workers: 1, beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	defer close(gate) // must unblock the worker before Shutdown waits on it
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	b := getBody(t, ts.URL+"/jobs/"+sub.ID+"/routedb", http.StatusConflict)
	if !bytes.Contains(b, []byte("not done")) {
		t.Fatalf("conflict body: %s", b)
	}
}

// TestServiceEvents streams snapshots to a terminal state over SSE.
func TestServiceEvents(t *testing.T) {
	cktText := readExample(t)
	svc := New(Options{Workers: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var last Status
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad event payload: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no SSE events received")
	}
	if last.State != Done {
		t.Fatalf("final event state = %s, want done", last.State)
	}
}

// TestServiceShutdownDrains: Shutdown finishes queued work, then new
// submissions are refused.
func TestServiceShutdownDrains(t *testing.T) {
	cktText := readExample(t)
	svc := New(Options{Workers: 1})
	resA, err := svc.Submit(SubmitRequest{Circuit: cktText})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := svc.Submit(SubmitRequest{Circuit: cktText, Config: &JobConfig{UseConstraints: false}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{resA.Job, resB.Job} {
		if st := j.State(); st != Done {
			t.Fatalf("job %s state after drain = %s, want done", j.ID, st)
		}
	}
	if _, err := svc.Submit(SubmitRequest{Circuit: cktText}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
