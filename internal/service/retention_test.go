package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitEvicted polls until the job ID is no longer addressable.
func waitEvicted(t *testing.T, svc *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := svc.Job(id); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s was never evicted", id)
}

// TestRetentionTTL: terminal jobs age out of the job table after the
// TTL, GET /jobs shrinks accordingly, and the LRU result cache is
// untouched (a resubmission is still a cache hit).
func TestRetentionTTL(t *testing.T) {
	cktText := readExample(t)
	svc := New(Options{Workers: 1, TerminalTTL: 40 * time.Millisecond, MaxTerminalJobs: -1})
	defer svc.Shutdown(context.Background())

	res, err := svc.Submit(SubmitRequest{Circuit: cktText})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := svc.Wait(context.Background(), res.Job.ID); err != nil || st.State != Done {
		t.Fatalf("wait: err=%v state=%s", err, st.State)
	}
	waitEvicted(t, svc, res.Job.ID)

	if got := svc.Jobs(); len(got) != 0 {
		t.Fatalf("GET /jobs still lists %d jobs after eviction", len(got))
	}
	m := svc.Metrics()
	if m.JobsEvicted == 0 || m.JobsRetained != 0 {
		t.Fatalf("jobs_evicted=%d jobs_retained=%d, want >0 and 0", m.JobsEvicted, m.JobsRetained)
	}

	// The result cache outlives retention: the same circuit is served
	// from the cache even though its original job is gone.
	res2, err := svc.Submit(SubmitRequest{Circuit: cktText})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatalf("post-eviction resubmission was not a cache hit")
	}
}

// TestRetentionMaxJobs: with the TTL disabled, the size cap alone
// bounds retained terminal jobs, evicting oldest-finished first.
func TestRetentionMaxJobs(t *testing.T) {
	base := readExample(t)
	variant := func(i int) string {
		return strings.Replace(base, "circuit invchain", fmt.Sprintf("circuit keep%d", i), 1)
	}
	svc := New(Options{Workers: 1, TerminalTTL: -1, MaxTerminalJobs: 2})
	defer svc.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 5; i++ {
		res, err := svc.Submit(SubmitRequest{Circuit: variant(i)})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := svc.Wait(context.Background(), res.Job.ID); err != nil || st.State != Done {
			t.Fatalf("job %d: err=%v state=%s (%s)", i, err, st.State, st.Error)
		}
		ids = append(ids, res.Job.ID)
	}
	jobs := svc.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != ids[3] || jobs[1].ID != ids[4] {
		t.Fatalf("retained %s/%s, want the two newest %s/%s", jobs[0].ID, jobs[1].ID, ids[3], ids[4])
	}
	for _, id := range ids[:3] {
		if _, ok := svc.Job(id); ok {
			t.Fatalf("old job %s still addressable", id)
		}
	}
	if m := svc.Metrics(); m.JobsEvicted != 3 || m.JobsRetained != 2 {
		t.Fatalf("jobs_evicted=%d jobs_retained=%d, want 3/2", m.JobsEvicted, m.JobsRetained)
	}
}

// TestRetentionKeepsAttachedStream: an SSE stream attached before the
// job's eviction still delivers the terminal event — eviction removes
// the ID-table entry, not the job object the stream holds.
func TestRetentionKeepsAttachedStream(t *testing.T) {
	cktText := readExample(t)
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	svc := New(Options{Workers: 1, TerminalTTL: 20 * time.Millisecond,
		beforeRun: func(*Job) { <-gate }})
	defer svc.Shutdown(context.Background())
	defer release()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := postJob(t, ts.URL, SubmitRequest{Circuit: cktText})
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	release()
	var last Status
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad event payload: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != Done {
		t.Fatalf("final streamed state = %s, want done", last.State)
	}
	waitEvicted(t, svc, sub.ID)
}
