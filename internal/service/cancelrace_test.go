package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// TestCancelRaceSlotRelease pins the terminal-state invariant documented
// on Job.requestCancel: racing Cancel against the worker's dequeue and
// completion, every interleaving (cancelled while queued, cancelled
// mid-run, cancel losing to completion) must release the dedupe slot
// exactly once — an identical resubmission gets a fresh run (or a cache
// hit), never a dead in-flight job — and journal at most one terminal
// record per job. Run under -race in CI.
func TestCancelRaceSlotRelease(t *testing.T) {
	cktText := readExample(t)
	jpath := filepath.Join(t.TempDir(), "journal.log")
	svc, err := Open(Options{Workers: 2, JournalPath: jpath, JournalSync: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	variant := func(i int) string {
		return strings.Replace(cktText, "circuit invchain", fmt.Sprintf("circuit invchain%d", i), 1)
	}
	// waitSlotFree polls until the hash's in-flight slot no longer points
	// at job j: Done() closes inside finish, a moment before jobFinished
	// releases the slot, so the release is only observable shortly after
	// Wait returns.
	waitSlotFree := func(hash string, j *Job) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			svc.mu.Lock()
			cur := svc.inflight[hash]
			svc.mu.Unlock()
			if cur != j {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("dedupe slot for %s still held by terminal job %s", hash, j.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const iters = 30
	for i := 0; i < iters; i++ {
		sub, err := svc.Submit(SubmitRequest{Circuit: variant(i)})
		if err != nil {
			t.Fatal(err)
		}
		j := sub.Job
		// Race the cancel against the worker picking the job up.
		done := make(chan struct{})
		go func() {
			svc.Cancel(j.ID)
			close(done)
		}()
		if _, err := svc.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
		<-done
		waitSlotFree(j.Hash, j)

		resub, err := svc.Submit(SubmitRequest{Circuit: variant(i)})
		if err != nil {
			t.Fatal(err)
		}
		if resub.Deduped {
			t.Fatalf("iter %d: resubmission after terminal state deduped onto dead job %s", i, j.ID)
		}
		// Don't let fresh reruns pile up; their cancels race too.
		if !resub.Cached {
			svc.Cancel(resub.Job.ID)
			if _, err := svc.Wait(ctx, resub.Job.ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Drain, then audit the journal: at most one terminal record per job.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	jl, recs, err := journal.Open(jpath, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()
	terminals := map[string]int{}
	for _, rec := range recs {
		if rec.Kind != journal.KindTerminal {
			continue
		}
		var jr jrecTerminal
		if err := json.Unmarshal(rec.Data, &jr); err != nil {
			t.Fatalf("bad terminal record: %v", err)
		}
		terminals[jr.ID]++
	}
	for id, n := range terminals {
		if n != 1 {
			t.Errorf("job %s has %d terminal journal records, want 1", id, n)
		}
	}
	if len(terminals) == 0 {
		t.Fatal("no terminal records journaled; the audit asserted nothing")
	}
}
