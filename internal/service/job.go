package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/engine"
)

// State is a job's lifecycle state.
type State string

const (
	// Queued: accepted, waiting for a worker.
	Queued State = "queued"
	// Running: a worker is routing it.
	Running State = "running"
	// Done: finished; results are available.
	Done State = "done"
	// Failed: routing or channel routing returned an error (including a
	// per-job deadline expiry).
	Failed State = "failed"
	// Cancelled: aborted by a client (or server shutdown) before finishing.
	Cancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Summary is the headline numbers of a finished routing.
type Summary struct {
	DelayPs      float64 `json:"delay_ps"`
	Violations   int     `json:"violations"`
	AreaMm2      float64 `json:"area_mm2"`
	WirelenMm    float64 `json:"wirelen_mm"`
	Tracks       int     `json:"tracks"`
	AddedPitches int     `json:"added_pitches"`
	Nets         int     `json:"nets"`
	Constraints  int     `json:"constraints"`
}

// Payload holds every rendered form of a finished routing. Payloads are
// immutable once built, so the cache can hand the same one to many jobs;
// identical submissions therefore serve byte-identical responses.
type Payload struct {
	RouteDB []byte // indented routedb JSON, as routedb.Marshal emits it
	Timing  string // plain-text timing report + slack histogram
	SVG     string // chip drawing
	Layout  string // ASCII layout
	Summary Summary
}

// PhaseInfo is the per-phase trace exposed over the API. The select_*
// fields profile the candidate-selection engine: time spent in selectEdge,
// how often it ran, and how many per-net scores were recomputed vs served
// from the incremental cache. The timing_* fields profile the incremental
// timing engine: time inside Timing.Flush, how often it ran, and how many
// constraints the dirty sets actually re-analyzed.
type PhaseInfo struct {
	Name          string  `json:"name"`
	DurationMs    float64 `json:"duration_ms"`
	Deletions     int     `json:"deletions"`
	Reroutes      int     `json:"reroutes"`
	Accepted      int     `json:"accepted"`
	SelectMs      float64 `json:"select_ms,omitempty"`
	SelectCalls   int     `json:"select_calls,omitempty"`
	ScoredNets    int     `json:"scored_nets,omitempty"`
	ReusedNets    int     `json:"reused_nets,omitempty"`
	TimingMs      float64 `json:"timing_ms,omitempty"`
	TimingFlushes int     `json:"timing_flushes,omitempty"`
	TimingCons    int     `json:"timing_cons,omitempty"`
}

// ProgressInfo is the latest mid-flight snapshot of a running job.
type ProgressInfo struct {
	Phase      string `json:"phase"`
	Deletions  int    `json:"deletions"`
	Reroutes   int    `json:"reroutes"`
	Accepted   int    `json:"accepted"`
	Violations int    `json:"violations"`
}

// Status is the externally visible snapshot of a job.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Engine is the routing engine the job runs with ("" on jobs
	// replayed from a journal written before engines existed).
	Engine   string        `json:"engine,omitempty"`
	Circuit  string        `json:"circuit"`
	Progress *ProgressInfo `json:"progress,omitempty"`
	Phases   []PhaseInfo   `json:"phases,omitempty"`
	Summary  *Summary      `json:"summary,omitempty"`
	// PanicStack is the captured goroutine stack when the job failed
	// because its routing run panicked (the worker recovered it).
	PanicStack string `json:"panic_stack,omitempty"`
}

// Job is one routing request moving through the queue. All mutable state
// is guarded by mu; the identity fields are set at submit time and never
// change.
type Job struct {
	ID   string
	Hash string

	// name is the circuit name, kept separately from ckt so jobs
	// rebuilt from the journal (which never re-parse the circuit) can
	// still report it.
	name string
	ckt  *circuit.Circuit
	// eng routes the job; engName is kept separately so jobs rebuilt
	// from the journal can report the engine without resolving it.
	eng     engine.Engine
	engName string
	cfg     engine.Config
	greedy  bool
	timeout time.Duration

	mu       sync.Mutex
	state    State
	errMsg   string
	stack    string // captured stack when a panicking run failed the job
	cached   bool
	progress *ProgressInfo
	phases   []PhaseInfo
	payload  *Payload
	cancel   context.CancelFunc
	done     chan struct{}

	// gcNoted marks the job as registered with the retention policy; it
	// is guarded by the Server's mutex, not the job's.
	gcNoted bool
}

// Snapshot returns a consistent copy of the job's visible state.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.ID,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		Engine:     j.engName,
		Circuit:    j.name,
		PanicStack: j.stack,
	}
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	if len(j.phases) > 0 {
		st.Phases = append([]PhaseInfo(nil), j.phases...)
	}
	if j.payload != nil {
		s := j.payload.Summary
		st.Summary = &s
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Payload returns the finished result, or nil while the job is not Done.
func (j *Job) Payload() *Payload {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.payload
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setProgress(p engine.Progress) {
	j.mu.Lock()
	j.progress = &ProgressInfo{Phase: p.Phase, Deletions: p.Deletions,
		Reroutes: p.Reroutes, Accepted: p.Accepted, Violations: p.Violations}
	j.mu.Unlock()
}

// begin moves a dequeued job to Running and installs its cancel func.
// It returns false when the job was cancelled while queued.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state. It is a no-op if the job is
// already terminal (e.g. cancelled racing completion). stack carries
// the captured goroutine stack when a panic failed the job.
func (j *Job) finish(st State, errMsg, stack string, p *Payload, phases []PhaseInfo) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = st
	j.errMsg = errMsg
	j.stack = stack
	j.payload = p
	j.phases = phases
	j.cancel = nil
	close(j.done)
	return true
}

// requestCancel cancels a queued job immediately or signals a running
// one. It returns the state observed and whether the job moved to
// Cancelled right now.
//
// Terminal-state invariant (audited): no interleaving of requestCancel
// with worker completion can release the dedupe slot twice, leak it, or
// journal two terminal records.
//
//   - Cancel lands while Queued: this method moves the job to Cancelled
//     under mu and reports cancelledNow=true, so Server.Cancel (the only
//     caller acting on that flag) runs jobFinished exactly once. The
//     worker that later dequeues the job observes begin() == false and
//     returns without touching it.
//   - Cancel lands while Running: this method only fires j.cancel; the
//     worker's run returns with ctx.Err, and finishJob classifies it as
//     Cancelled and runs jobFinished — again exactly one release, on the
//     worker's path.
//   - Cancel races the worker's finish: both paths funnel through
//     j.finish / the transitions above under mu, and finish's
//     Terminal() guard makes the loser a no-op that skips jobFinished.
//   - Double cancel: a terminal job falls through to the default arm,
//     cancelledNow=false, no second release.
//
// Journal writes are additionally guarded by gcNoted (under the
// Server's mutex, via noteTerminalLocked), so whichever path wins
// records at most one terminal entry. TestCancelRaceSlotRelease pins
// the queued-cancel race under -race.
func (j *Job) requestCancel() (State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.errMsg = "cancelled while queued"
		close(j.done)
		return Cancelled, true
	case Running:
		if j.cancel != nil {
			j.cancel()
		}
		return Running, false
	default:
		return j.state, false
	}
}

func phaseInfos(stats []engine.PhaseStat) []PhaseInfo {
	out := make([]PhaseInfo, len(stats))
	for i, ps := range stats {
		out[i] = PhaseInfo{
			Name:          ps.Name,
			DurationMs:    float64(ps.Duration) / float64(time.Millisecond),
			Deletions:     ps.Deletions,
			Reroutes:      ps.Reroutes,
			Accepted:      ps.Accepted,
			SelectMs:      float64(ps.SelectDuration) / float64(time.Millisecond),
			SelectCalls:   ps.SelectCalls,
			ScoredNets:    ps.ScoredNets,
			ReusedNets:    ps.ReusedNets,
			TimingMs:      float64(ps.TimingDuration) / float64(time.Millisecond),
			TimingFlushes: ps.TimingFlushes,
			TimingCons:    ps.TimingCons,
		}
	}
	return out
}
