package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API (see docs/SERVICE.md):
//
//	POST /jobs              submit a circuit + config, get a job ID
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         status snapshot
//	POST /jobs/{id}/cancel  abort a queued or running job
//	GET  /jobs/{id}/events  stream status snapshots (server-sent events)
//	GET  /jobs/{id}/routedb finished routing as routedb JSON
//	GET  /jobs/{id}/timing  plain-text timing report
//	GET  /jobs/{id}/svg     chip drawing
//	GET  /jobs/{id}/layout  ASCII layout
//	GET  /metrics           expvar-style counters
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})
	mux.HandleFunc("GET /jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		s.writeJSON(w, http.StatusOK, j.Snapshot())
	}))
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Cancel(r.PathValue("id"))
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		s.writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("GET /jobs/{id}/routedb", s.resultEndpoint("application/json", func(p *Payload) []byte { return p.RouteDB }))
	mux.HandleFunc("GET /jobs/{id}/timing", s.resultEndpoint("text/plain; charset=utf-8", func(p *Payload) []byte { return []byte(p.Timing) }))
	mux.HandleFunc("GET /jobs/{id}/svg", s.resultEndpoint("image/svg+xml", func(p *Payload) []byte { return []byte(p.SVG) }))
	mux.HandleFunc("GET /jobs/{id}/layout", s.resultEndpoint("text/plain; charset=utf-8", func(p *Payload) []byte { return []byte(p.Layout) }))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Dedup  bool   `json:"dedup"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.rejected.Add(1)
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds cap %d bytes", mbe.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Circuit == "" {
		s.writeError(w, http.StatusBadRequest, "missing circuit")
		return
	}
	res, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrTooLarge):
		s.writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		s.writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusAccepted, submitResponse{
		ID:     res.Job.ID,
		State:  res.Job.State(),
		Cached: res.Cached,
		Dedup:  res.Deduped,
	})
}

// handleEvents streams status snapshots as server-sent events: one event
// per observable change, a `: keepalive` comment on an idle stream (so
// proxies don't reap long-running jobs' connections), a final event at
// the terminal state, then EOF.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	heartbeat := time.NewTicker(s.opts.sseHeartbeat)
	defer heartbeat.Stop()
	var last []byte
	send := func() bool {
		snap := j.Snapshot()
		b, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		if !bytes.Equal(b, last) {
			fmt.Fprintf(w, "data: %s\n\n", b)
			fl.Flush()
			last = b
		}
		return !snap.State.Terminal()
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			send()
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}

// withJob resolves {id} or 404s.
func (s *Server) withJob(f func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		f(w, r, j)
	}
}

// resultEndpoint serves one rendered form of a finished job; non-Done
// jobs answer 409 with the current state so pollers can tell "not yet"
// from "never".
func (s *Server) resultEndpoint(contentType string, pick func(*Payload) []byte) http.HandlerFunc {
	return s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		p := j.Payload()
		if p == nil {
			snap := j.Snapshot()
			s.writeJSON(w, http.StatusConflict, map[string]any{
				"error": "job not done", "state": snap.State, "job_error": snap.Error,
			})
			return
		}
		w.Header().Set("Content-Type", contentType)
		if _, err := w.Write(pick(p)); err != nil {
			// Headers and part of the body are gone; log once, never
			// attempt a second status write.
			s.opts.Logf("service: %s %s: write response: %v", r.Method, r.URL.Path, err)
		}
	})
}

// writeJSON writes one JSON response. An encode failure after the
// header has been sent cannot be reported to the client, so it is
// logged once and the connection is left to the transport; the handler
// must never write a second status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.opts.Logf("service: write response (status %d): %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}
