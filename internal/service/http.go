package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API (see docs/SERVICE.md):
//
//	POST /jobs              submit a circuit + config, get a job ID
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         status snapshot
//	POST /jobs/{id}/cancel  abort a queued or running job
//	GET  /jobs/{id}/events  stream status snapshots (server-sent events)
//	GET  /jobs/{id}/routedb finished routing as routedb JSON
//	GET  /jobs/{id}/timing  plain-text timing report
//	GET  /jobs/{id}/svg     chip drawing
//	GET  /jobs/{id}/layout  ASCII layout
//	GET  /metrics           expvar-style counters
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})
	mux.HandleFunc("GET /jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}))
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("GET /jobs/{id}/routedb", s.resultEndpoint("application/json", func(p *Payload) []byte { return p.RouteDB }))
	mux.HandleFunc("GET /jobs/{id}/timing", s.resultEndpoint("text/plain; charset=utf-8", func(p *Payload) []byte { return []byte(p.Timing) }))
	mux.HandleFunc("GET /jobs/{id}/svg", s.resultEndpoint("image/svg+xml", func(p *Payload) []byte { return []byte(p.SVG) }))
	mux.HandleFunc("GET /jobs/{id}/layout", s.resultEndpoint("text/plain; charset=utf-8", func(p *Payload) []byte { return []byte(p.Layout) }))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Dedup  bool   `json:"dedup"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Circuit == "" {
		writeError(w, http.StatusBadRequest, "missing circuit")
		return
	}
	res, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:     res.Job.ID,
		State:  res.Job.State(),
		Cached: res.Cached,
		Dedup:  res.Deduped,
	})
}

// handleEvents streams status snapshots as server-sent events: one event
// per observable change, a final event at the terminal state, then EOF.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var last []byte
	send := func() bool {
		snap := j.Snapshot()
		b, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		if !bytes.Equal(b, last) {
			fmt.Fprintf(w, "data: %s\n\n", b)
			fl.Flush()
			last = b
		}
		return !snap.State.Terminal()
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			send()
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}

// withJob resolves {id} or 404s.
func (s *Server) withJob(f func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		f(w, r, j)
	}
}

// resultEndpoint serves one rendered form of a finished job; non-Done
// jobs answer 409 with the current state so pollers can tell "not yet"
// from "never".
func (s *Server) resultEndpoint(contentType string, pick func(*Payload) []byte) http.HandlerFunc {
	return s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		p := j.Payload()
		if p == nil {
			snap := j.Snapshot()
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": "job not done", "state": snap.State, "job_error": snap.Error,
			})
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(pick(p))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
