package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// poisonCircuit renames the example circuit so a fault-injection hook
// can target it by name.
func poisonCircuit(t *testing.T) string {
	return strings.Replace(readExample(t), "circuit invchain", "circuit poison", 1)
}

// panicOnRun panics any job whose circuit name is "poison" at the
// worker's run boundary.
func panicOnRun(point, detail string) error {
	if point == faultinject.ServiceRun && detail == "poison" {
		panic("injected: poisoned run")
	}
	return nil
}

// TestPanicContainment is the acceptance flow for fault isolation: a
// submission whose routing run panics yields a Failed job carrying the
// panic message and a captured stack, /healthz stays live, the dedupe
// slot is released so the identical submission runs again instead of
// wedging, and healthy jobs keep producing byte-identical results.
func TestPanicContainment(t *testing.T) {
	healthy := readExample(t)
	poison := poisonCircuit(t)
	wantDB, _ := directRun(t, healthy)

	faultinject.Set(panicOnRun)
	t.Cleanup(faultinject.Clear)

	svc := New(Options{Workers: 2, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// First poison submission: the worker recovers the panic and fails
	// the job instead of killing the process.
	sub := postJob(t, ts.URL, SubmitRequest{Circuit: poison})
	st := pollDone(t, ts.URL, sub.ID)
	if st.State != Failed {
		t.Fatalf("poisoned job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic: injected: poisoned run") {
		t.Fatalf("poisoned job error = %q, want the panic message", st.Error)
	}
	if !strings.Contains(st.PanicStack, "goroutine") {
		t.Fatalf("poisoned job has no captured stack: %q", st.PanicStack)
	}

	// The server is still live.
	if b := getBody(t, ts.URL+"/healthz", http.StatusOK); !bytes.Contains(b, []byte("ok")) {
		t.Fatalf("healthz after panic: %s", b)
	}

	// The dedupe slot was released: an identical resubmission starts a
	// fresh job (it must not coalesce onto the dead one) and fails the
	// same way.
	sub2 := postJob(t, ts.URL, SubmitRequest{Circuit: poison})
	if sub2.Dedup || sub2.Cached || sub2.ID == sub.ID {
		t.Fatalf("resubmitted poison wedged on the dead job: %+v", sub2)
	}
	if st2 := pollDone(t, ts.URL, sub2.ID); st2.State != Failed {
		t.Fatalf("resubmitted poison state = %s, want failed", st2.State)
	}

	// Healthy jobs still route, byte-identically to a direct run.
	hs := postJob(t, ts.URL, SubmitRequest{Circuit: healthy})
	if got := pollDone(t, ts.URL, hs.ID); got.State != Done {
		t.Fatalf("healthy job after panics: %s (%s)", got.State, got.Error)
	}
	gotDB := getBody(t, ts.URL+"/jobs/"+hs.ID+"/routedb", http.StatusOK)
	if !bytes.Equal(gotDB, wantDB) {
		t.Fatalf("healthy routedb differs after panic containment")
	}

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.PanicsRecov != 2 {
		t.Fatalf("panics_recovered = %d, want 2", m.PanicsRecov)
	}
	if m.JobsFailed != 2 || m.JobsCompleted != 1 {
		t.Fatalf("jobs_failed=%d jobs_completed=%d, want 2/1", m.JobsFailed, m.JobsCompleted)
	}
}

// TestPanicInsideCorePhase injects the panic deep inside the router (at
// a phase boundary under core.RouteCtx) rather than in the worker
// prologue, proving containment holds across the whole call stack —
// the d_M-went-negative class of invariant panic takes this path.
func TestPanicInsideCorePhase(t *testing.T) {
	faultinject.Set(func(point, detail string) error {
		if point == faultinject.CorePhase && detail == "improve-area" {
			panic("injected: d_M went negative")
		}
		return nil
	})
	t.Cleanup(faultinject.Clear)

	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())

	res, err := svc.Submit(SubmitRequest{Circuit: readExample(t)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), res.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Failed || !strings.Contains(st.Error, "panic: injected: d_M went negative") {
		t.Fatalf("state=%s error=%q, want failed with the injected panic", st.State, st.Error)
	}
	if !strings.Contains(st.PanicStack, "runPhase") {
		t.Fatalf("stack does not show the core phase frame:\n%s", st.PanicStack)
	}
	if m := svc.Metrics(); m.PanicsRecov != 1 {
		t.Fatalf("panics_recovered = %d, want 1", m.PanicsRecov)
	}
}

// TestFaultInjectedError: an injected error (not a panic) at a phase
// boundary fails the job with that error, with no panic accounting.
func TestFaultInjectedError(t *testing.T) {
	faultinject.Set(func(point, detail string) error {
		if point == faultinject.CorePhase && detail == "recover-violations" {
			return errors.New("injected transient failure")
		}
		return nil
	})
	t.Cleanup(faultinject.Clear)

	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())

	res, err := svc.Submit(SubmitRequest{Circuit: readExample(t)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), res.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Failed || !strings.Contains(st.Error, "injected transient failure") {
		t.Fatalf("state=%s error=%q, want failed with the injected error", st.State, st.Error)
	}
	if st.PanicStack != "" {
		t.Fatalf("plain error carried a panic stack")
	}
	if m := svc.Metrics(); m.PanicsRecov != 0 {
		t.Fatalf("panics_recovered = %d, want 0", m.PanicsRecov)
	}
}

// TestFaultInjectedDelay: an injected delay at the payload boundary
// keeps the job within its deadline semantics (a long enough delay
// fails it with the deadline error, proving timeouts still bite around
// injected slowness).
func TestFaultInjectedDelay(t *testing.T) {
	faultinject.Set(func(point, detail string) error {
		if point == faultinject.ServicePayload {
			time.Sleep(200 * time.Millisecond)
		}
		return nil
	})
	t.Cleanup(faultinject.Clear)

	svc := New(Options{Workers: 1, Logf: func(string, ...any) {}})
	defer svc.Shutdown(context.Background())

	res, err := svc.Submit(SubmitRequest{Circuit: readExample(t), TimeoutMs: 10000})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), res.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The delay lands after RouteCtx, so the job still completes; the
	// point of this case is that a slow hook cannot corrupt state.
	if st.State != Done {
		t.Fatalf("delayed job state = %s (%s), want done", st.State, st.Error)
	}
}

// TestStressMixedSubmissions is the 10k-submission bounded-memory run:
// 8 goroutines hammer one server with a mix of healthy (mostly
// cache-hit), poison (panicking) and invalid submissions. The server
// must stay live, keep len(Server.jobs) bounded by the retention limit,
// and keep healthy results byte-identical — including across a second
// server with different worker counts.
func TestStressMixedSubmissions(t *testing.T) {
	base := readExample(t)
	variant := func(i int) string {
		return strings.Replace(base, "circuit invchain", fmt.Sprintf("circuit invchain%d", i), 1)
	}
	poison := poisonCircuit(t)
	faultinject.Set(panicOnRun)
	t.Cleanup(faultinject.Clear)

	const (
		distinct  = 3
		retainMax = 64
		total     = 10000
		gophers   = 8
	)
	mk := func(workers, scoreWorkers int) *Server {
		return New(Options{
			Workers: workers, QueueDepth: 256, CacheSize: 8,
			ScoreWorkers:    scoreWorkers,
			MaxTerminalJobs: retainMax, TerminalTTL: time.Hour,
			Logf: func(string, ...any) {},
		})
	}
	svc := mk(4, 4)
	defer svc.Shutdown(context.Background())

	// Pre-route each distinct circuit so the flood below is mostly
	// cache hits (terminal-at-birth jobs, the retention hot path), and
	// keep the reference bytes.
	wantDB := make([][]byte, distinct)
	for i := 0; i < distinct; i++ {
		res, err := svc.Submit(SubmitRequest{Circuit: variant(i)})
		if err != nil {
			t.Fatal(err)
		}
		st, err := svc.Wait(context.Background(), res.Job.ID)
		if err != nil || st.State != Done {
			t.Fatalf("pre-route %d: err=%v state=%s (%s)", i, err, st.State, st.Error)
		}
		wantDB[i] = res.Job.Payload().RouteDB
	}

	submitRetry := func(req SubmitRequest) (SubmitResult, error) {
		for {
			res, err := svc.Submit(req)
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(time.Millisecond)
				continue
			}
			return res, err
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, gophers)
	for g := 0; g < gophers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/gophers; i++ {
				switch n := (g*total/gophers + i) % 10; {
				case n == 7: // poison: panics, must fail cleanly
					res, err := submitRetry(SubmitRequest{Circuit: poison})
					if err != nil {
						errs <- fmt.Errorf("poison submit: %w", err)
						return
					}
					select {
					case <-res.Job.Done():
					case <-time.After(30 * time.Second):
						errs <- fmt.Errorf("poison job %s stuck", res.Job.ID)
						return
					}
					if st := res.Job.State(); st != Failed {
						errs <- fmt.Errorf("poison job %s state %s, want failed", res.Job.ID, st)
						return
					}
				case n == 3: // invalid: must be rejected, not enqueued
					if _, err := svc.Submit(SubmitRequest{Circuit: "not a circuit"}); err == nil {
						errs <- fmt.Errorf("invalid circuit accepted")
						return
					}
				default: // healthy: cache hit, terminal at birth
					res, err := submitRetry(SubmitRequest{Circuit: variant(n % distinct)})
					if err != nil {
						errs <- fmt.Errorf("healthy submit: %w", err)
						return
					}
					select {
					case <-res.Job.Done():
					case <-time.After(30 * time.Second):
						errs <- fmt.Errorf("healthy job %s stuck", res.Job.ID)
						return
					}
					if st := res.Job.State(); st != Done {
						errs <- fmt.Errorf("healthy job %s state %s, want done", res.Job.ID, st)
						return
					}
					if !bytes.Equal(res.Job.Payload().RouteDB, wantDB[n%distinct]) {
						errs <- fmt.Errorf("healthy job %s routedb drifted", res.Job.ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Bounded memory: with every job terminal, the job map is capped by
	// the retention limit (not by the 10k submissions that flowed by).
	svc.mu.Lock()
	live := len(svc.jobs)
	svc.mu.Unlock()
	if live > retainMax {
		t.Errorf("len(Server.jobs) = %d after %d submissions, want <= %d", live, total, retainMax)
	}
	m := svc.Metrics()
	if m.JobsRetained > retainMax {
		t.Errorf("jobs_retained = %d, want <= %d", m.JobsRetained, retainMax)
	}
	if m.JobsEvicted == 0 {
		t.Errorf("jobs_evicted = 0 after a 10k flood")
	}
	if m.PanicsRecov == 0 {
		t.Errorf("panics_recovered = 0, poison jobs did not exercise containment")
	}

	// Determinism across worker counts: a second server with different
	// routing and scoring parallelism must produce the same bytes.
	svc2 := mk(1, 1)
	defer svc2.Shutdown(context.Background())
	for i := 0; i < distinct; i++ {
		res, err := svc2.Submit(SubmitRequest{Circuit: variant(i)})
		if err != nil {
			t.Fatal(err)
		}
		st, err := svc2.Wait(context.Background(), res.Job.ID)
		if err != nil || st.State != Done {
			t.Fatalf("svc2 route %d: err=%v state=%s", i, err, st.State)
		}
		if !bytes.Equal(res.Job.Payload().RouteDB, wantDB[i]) {
			t.Errorf("circuit %d: routedb differs between worker counts", i)
		}
	}
}
