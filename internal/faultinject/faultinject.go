// Package faultinject provides named fault-injection points for tests.
//
// Production code calls Fire at interesting boundaries (phase starts,
// payload rendering); with no hook installed that is a single atomic
// load and a nil check, so the points are free to leave in. Tests
// install a Hook that can return an error (injected failure), sleep
// (injected delay), or panic (injected crash) based on the point name
// and detail string, and the service-layer stress tests use exactly
// that to prove the server contains crashes, stays live, and keeps
// healthy results deterministic.
//
// The hook is process-global, so tests that install one must not run in
// parallel with each other and should remove it with Clear (typically
// via t.Cleanup).
package faultinject

import "sync/atomic"

// Point names fired by the repository. The detail string carried with
// each point lets a hook target one job or phase (for example, panic
// only for circuits whose name marks them as poison).
const (
	// CorePhase fires at the start of every routing phase inside
	// core.RouteCtx; detail is the phase name ("initial",
	// "recover-violations", "improve-delay", "improve-area", "eco-*").
	CorePhase = "core.phase"
	// ServiceRun fires when a service worker starts a claimed job,
	// before routing; detail is the circuit name.
	ServiceRun = "service.run"
	// ServicePayload fires between a successful routing run and payload
	// rendering; detail is the circuit name.
	ServicePayload = "service.payload"
)

// Hook decides what to inject at a fired point: return nil to do
// nothing, return an error to inject a failure, sleep to inject a
// delay, or panic to inject a crash.
type Hook func(point, detail string) error

var hook atomic.Pointer[Hook]

// Set installs h as the process-wide hook, replacing any previous one.
func Set(h Hook) { hook.Store(&h) }

// Clear removes the hook; Fire becomes a no-op again.
func Clear() { hook.Store(nil) }

// Enabled reports whether a hook is currently installed.
func Enabled() bool { return hook.Load() != nil }

// Fire invokes the installed hook for a named point, propagating its
// error (and letting its panic, if any, unwind through the caller).
// With no hook installed it returns nil immediately.
func Fire(point, detail string) error {
	h := hook.Load()
	if h == nil {
		return nil
	}
	return (*h)(point, detail)
}
