package faultinject

import (
	"errors"
	"testing"
)

func TestFireWithoutHook(t *testing.T) {
	Clear()
	if Enabled() {
		t.Fatal("Enabled() with no hook installed")
	}
	if err := Fire(CorePhase, "initial"); err != nil {
		t.Fatalf("Fire with no hook: %v", err)
	}
}

func TestHookErrorAndTargeting(t *testing.T) {
	injected := errors.New("injected")
	Set(func(point, detail string) error {
		if point == ServiceRun && detail == "poison" {
			return injected
		}
		return nil
	})
	t.Cleanup(Clear)
	if !Enabled() {
		t.Fatal("Enabled() false after Set")
	}
	if err := Fire(ServiceRun, "healthy"); err != nil {
		t.Fatalf("untargeted detail injected: %v", err)
	}
	if err := Fire(ServicePayload, "poison"); err != nil {
		t.Fatalf("untargeted point injected: %v", err)
	}
	if err := Fire(ServiceRun, "poison"); !errors.Is(err, injected) {
		t.Fatalf("targeted fire = %v, want injected error", err)
	}
}

func TestHookPanicPropagates(t *testing.T) {
	Set(func(point, detail string) error { panic("boom") })
	t.Cleanup(Clear)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Fire(CorePhase, "initial")
	t.Fatal("hook panic did not propagate")
}

func TestClearRestoresNoop(t *testing.T) {
	Set(func(point, detail string) error { return errors.New("always") })
	Clear()
	if err := Fire(CorePhase, "x"); err != nil {
		t.Fatalf("Fire after Clear: %v", err)
	}
}
