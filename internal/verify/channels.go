package verify

import (
	"repro/internal/chanroute"
)

// Channels audits a channel-routing result — the detailed-route-facing
// rules:
//
//   - every proper segment has a track inside its channel's range, wide
//     segments fit their extra tracks;
//   - no two segments of different nets overlap on the same track;
//   - vertical constraints hold at every column (a top pin's net above a
//     bottom pin's net) except those the solver reported as violations;
//   - straight-throughs carry no track.
func Channels(cr *chanroute.Result) *Result {
	v := &Result{}
	for ci := range cr.Channels {
		ch := &cr.Channels[ci]
		v.checkChannelTracks(ci, ch)
		v.checkChannelOverlaps(ci, ch)
		v.checkChannelVCG(ci, ch)
	}
	return v
}

func (v *Result) checkChannelTracks(ci int, ch *chanroute.Channel) {
	for _, s := range ch.Segments {
		if s.Lo == s.Hi {
			if s.Track != -1 {
				v.addf(s.Net, "chan-track", "channel %d: straight-through of net %d on track %d", ci, s.Net, s.Track)
			}
			continue
		}
		w := s.Width
		if w < 1 {
			w = 1
		}
		if s.Track < 0 || s.Track+w > ch.Tracks {
			v.addf(s.Net, "chan-track", "channel %d: net %d segment on track %d (width %d) outside %d tracks",
				ci, s.Net, s.Track, w, ch.Tracks)
		}
	}
}

func (v *Result) checkChannelOverlaps(ci int, ch *chanroute.Channel) {
	for i, a := range ch.Segments {
		if a.Lo == a.Hi || a.Track < 0 {
			continue
		}
		for _, b := range ch.Segments[i+1:] {
			if b.Lo == b.Hi || b.Track < 0 || a.Net == b.Net {
				continue
			}
			wa, wb := max(a.Width, 1), max(b.Width, 1) // builtin max
			tracksOverlap := a.Track < b.Track+wb && b.Track < a.Track+wa
			colsOverlap := a.Lo <= b.Hi && b.Lo <= a.Hi
			if tracksOverlap && colsOverlap {
				v.addf(a.Net, "chan-overlap", "channel %d: nets %d and %d overlap on track %d cols [%d,%d]",
					ci, a.Net, b.Net, max(a.Track, b.Track), max(a.Lo, b.Lo), min(a.Hi, b.Hi))
			}
		}
	}
}

func (v *Result) checkChannelVCG(ci int, ch *chanroute.Channel) {
	if ch.VCGViolations > 0 {
		// The solver gave up on some constraints and said so; skip the
		// strict check but record the fact.
		v.addf(-1, "chan-vcg-waived", "channel %d: solver reported %d waived constraints", ci, ch.VCGViolations)
		return
	}
	for i, a := range ch.Segments {
		if a.Track < 0 {
			continue
		}
		for j, b := range ch.Segments {
			if i == j || b.Track < 0 || a.Net == b.Net {
				continue
			}
			for _, pa := range a.Pins {
				if !pa.FromTop {
					continue
				}
				for _, pb := range b.Pins {
					if pb.FromTop || pb.Col != pa.Col {
						continue
					}
					if a.Track <= b.Track {
						v.addf(a.Net, "chan-vcg", "channel %d col %d: net %d (top pin, track %d) not above net %d (bottom pin, track %d)",
							ci, pa.Col, a.Net, a.Track, b.Net, b.Track)
					}
				}
			}
		}
	}
}
