package verify_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/verify"
)

// ExampleRouting audits a clean routing and a corrupted one.
func ExampleRouting() {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("clean:", verify.Routing(res).OK())
	res.WirelenUm[0] += 42 // corrupt a reported length
	v := verify.Routing(res)
	fmt.Println("corrupted:", v.OK(), "rule:", v.Problems[0].Rule)
	// Output:
	// clean: true
	// corrupted: false rule: length
}
