package verify

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rgraph"
)

func routeSample(t *testing.T, build func() *circuit.Circuit, cfg core.Config) *core.Result {
	t.Helper()
	res, err := core.Route(build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCleanRoutingsPass(t *testing.T) {
	for _, cfg := range []core.Config{
		{UseConstraints: true},
		{UseConstraints: false},
		{UseConstraints: true, DelayModel: core.Elmore, RPerUm: 0.0005},
		{UseConstraints: true, NoFeedReroute: true},
	} {
		for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
			res := routeSample(t, build, cfg)
			v := Routing(res)
			if !v.OK() {
				t.Errorf("cfg %+v, %s: %d problems, first: %v", cfg, res.Ckt.Name, len(v.Problems), v.Problems[0])
			}
		}
	}
}

func TestGeneratedDatasetPasses(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, use := range []bool{true, false} {
		res, err := core.Route(ckt, core.Config{UseConstraints: use})
		if err != nil {
			t.Fatal(err)
		}
		v := Routing(res)
		if !v.OK() {
			for _, pr := range v.Problems[:min(len(v.Problems), 5)] {
				t.Errorf("constraints=%v: %v", use, pr)
			}
		}
	}
}

func TestDetectsSharedFeedSlot(t *testing.T) {
	res := routeSample(t, circuit.SampleSmall, core.Config{UseConstraints: true})
	// Corrupt: point one net's feedthrough at another net's slot.
	var donor, victim = -1, -1
	for n := range res.Feeds {
		if len(res.Feeds[n]) > 0 {
			if donor == -1 {
				donor = n
			} else if res.Feeds[n][0].Row == res.Feeds[donor][0].Row {
				victim = n
				break
			}
		}
	}
	if victim == -1 {
		t.Skip("fixture lacks two nets crossing the same row")
	}
	res.Feeds[victim][0].Col = res.Feeds[donor][0].Col
	v := Routing(res)
	if v.OK() {
		t.Fatal("shared slot not detected")
	}
	found := false
	for _, p := range v.Problems {
		if p.Rule == "feed-exclusive" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected feed-exclusive problem, got %v", v.Problems)
	}
}

func TestDetectsBrokenDiffParallelism(t *testing.T) {
	res := routeSample(t, circuit.SampleDiff, core.Config{UseConstraints: true})
	// Corrupt: shift one alive trunk edge of net qb.
	g := res.Graphs[1]
	for e := range g.Edges {
		if g.Edges[e].Alive && g.Edges[e].Kind == rgraph.ETrunk {
			g.Edges[e].X1 += 2
			g.Edges[e].X2 += 2
			break
		}
	}
	v := Routing(res)
	hit := false
	for _, p := range v.Problems {
		if p.Rule == "diff-parallel" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("broken parallelism not detected: %v", v.Problems)
	}
}

func TestDetectsWrongLength(t *testing.T) {
	res := routeSample(t, circuit.SampleSmall, core.Config{UseConstraints: true})
	res.WirelenUm[0] += 100
	v := Routing(res)
	hit := false
	for _, p := range v.Problems {
		if p.Rule == "length" && strings.Contains(p.Msg, res.Ckt.Nets[0].Name) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("length mismatch not detected: %v", v.Problems)
	}
}

func TestDetectsMissingFeed(t *testing.T) {
	res := routeSample(t, circuit.SampleSmall, core.Config{UseConstraints: true})
	for n := range res.Feeds {
		if len(res.Feeds[n]) > 0 {
			res.Feeds[n] = res.Feeds[n][:len(res.Feeds[n])-1]
			break
		}
	}
	v := Routing(res)
	hit := false
	for _, p := range v.Problems {
		if p.Rule == "feed-coverage" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("missing feed not detected: %v", v.Problems)
	}
}
