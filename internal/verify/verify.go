// Package verify checks a finished global routing against the paper's
// structural rules — the kind of post-route audit a production router
// ships. It re-derives everything from scratch (no trust in the router's
// incremental state):
//
//   - every net's graph is a tree spanning all its terminals;
//   - every crossed row has exactly one feedthrough per net, on a real
//     feed slot, with multi-pitch nets on adjacent slots;
//   - no two nets share a feedthrough column;
//   - differential pairs are parallel: identical alive-edge structure at
//     a constant column shift (§4.1);
//   - the incremental density state matches a from-scratch recount;
//   - estimated wire lengths match the final trees.
package verify

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

// Problem is one verification finding.
type Problem struct {
	Net  int // offending net, or -1
	Rule string
	Msg  string
}

func (p Problem) String() string {
	return fmt.Sprintf("[%s] %s", p.Rule, p.Msg)
}

// Result collects findings.
type Result struct {
	Problems []Problem
}

// OK reports a clean routing.
func (r *Result) OK() bool { return len(r.Problems) == 0 }

func (r *Result) addf(net int, rule, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Net: net, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Parts is the router-agnostic view the checks run against; any router
// producing these pieces can be audited.
type Parts struct {
	Ckt       *circuit.Circuit
	Geo       *grid.Geometry
	Feeds     [][]rgraph.FeedPos
	Graphs    []*rgraph.Graph
	WirelenUm []float64
	Dens      *density.State
	// CheckPairs enables the §4.1 differential-parallelism rule; the
	// sequential baseline does not promise it.
	CheckPairs bool
}

// Routing audits a core.Result (all rules enabled).
func Routing(r *core.Result) *Result {
	return Check(Parts{
		Ckt: r.Ckt, Geo: r.Geo, Feeds: r.Feeds, Graphs: r.Graphs,
		WirelenUm: r.WirelenUm, Dens: r.Dens, CheckPairs: true,
	})
}

// Check audits an arbitrary routing.
func Check(res Parts) *Result {
	v := &Result{}
	v.checkTrees(res)
	v.checkFeeds(res)
	if res.CheckPairs {
		v.checkDiffPairs(res)
	}
	if res.Dens != nil {
		v.checkDensity(res)
	}
	if res.WirelenUm != nil {
		v.checkLengths(res)
	}
	return v
}

func (v *Result) checkTrees(res Parts) {
	for n, g := range res.Graphs {
		name := res.Ckt.Nets[n].Name
		if !g.IsTree() {
			v.addf(n, "tree", "net %s still has non-bridge edges", name)
		}
		if err := g.Validate(); err != nil {
			v.addf(n, "tree", "net %s: %v", name, err)
		}
		// Spanning: every terminal vertex touches an alive edge, and the
		// alive subgraph is connected with edges == vertices-1.
		touched := map[int]bool{}
		for _, e := range g.AliveEdges() {
			touched[g.Edges[e].U] = true
			touched[g.Edges[e].V] = true
		}
		for ti, tv := range g.TermVert {
			if !touched[tv] {
				v.addf(n, "tree", "net %s: terminal %d unconnected", name, ti)
			}
		}
		if len(touched) > 0 && g.AliveCount() != len(touched)-1 {
			v.addf(n, "tree", "net %s: %d edges over %d vertices (cycle or forest)",
				name, g.AliveCount(), len(touched))
		}
	}
}

func (v *Result) checkFeeds(res Parts) {
	owner := map[[2]int]string{}
	for n := range res.Ckt.Nets {
		name := res.Ckt.Nets[n].Name
		// Required rows: the channel extent of the terminals.
		minCh, maxCh := 1<<30, -1
		for _, t := range res.Ckt.Terminals(n) {
			for _, pos := range res.Ckt.PositionsOf(t) {
				if pos.Channel < minCh {
					minCh = pos.Channel
				}
				if pos.Channel > maxCh {
					maxCh = pos.Channel
				}
			}
		}
		rows := map[int]int{}
		for _, f := range res.Feeds[n] {
			rows[f.Row]++
			width := res.Ckt.Nets[n].Pitch
			for j := 0; j < width; j++ {
				col := f.Col + j
				if !isSlot(res, f.Row, col) {
					v.addf(n, "feed-slot", "net %s: feedthrough (%d,%d) is not a feed slot", name, f.Row, col)
				}
				key := [2]int{f.Row, col}
				if prev, taken := owner[key]; taken {
					v.addf(n, "feed-exclusive", "slot (%d,%d) used by %s and %s", f.Row, col, prev, name)
				}
				owner[key] = name
			}
		}
		for r := minCh; r < maxCh; r++ {
			switch rows[r] {
			case 1:
			case 0:
				v.addf(n, "feed-coverage", "net %s: no feedthrough in crossed row %d", name, r)
			default:
				v.addf(n, "feed-coverage", "net %s: %d feedthroughs in row %d", name, rows[r], r)
			}
		}
	}
}

func isSlot(res Parts, row, col int) bool {
	for _, s := range res.Geo.FeedSlots(row) {
		if s.Col == col {
			return true
		}
	}
	return false
}

func (v *Result) checkDiffPairs(res Parts) {
	for n := range res.Ckt.Nets {
		m := res.Ckt.Nets[n].DiffMate
		if m < 0 || m < n {
			continue
		}
		ga, gb := res.Graphs[n], res.Graphs[m]
		name := res.Ckt.Nets[n].Name + "/" + res.Ckt.Nets[m].Name
		if len(ga.Edges) != len(gb.Edges) {
			v.addf(n, "diff-parallel", "pair %s: graphs differ in size", name)
			continue
		}
		shift := 0
		shiftSet := false
		for e := range ga.Edges {
			ea, eb := &ga.Edges[e], &gb.Edges[e]
			if ea.Alive != eb.Alive {
				v.addf(n, "diff-parallel", "pair %s: edge %d alive mismatch", name, e)
				continue
			}
			if !ea.Alive {
				continue
			}
			if ea.Kind != eb.Kind || ea.Ch != eb.Ch {
				v.addf(n, "diff-parallel", "pair %s: edge %d kind/channel mismatch", name, e)
			}
			d := eb.X1 - ea.X1
			if !shiftSet {
				shift, shiftSet = d, true
			} else if d != shift {
				v.addf(n, "diff-parallel", "pair %s: edge %d shift %d != %d", name, e, d, shift)
			}
			if d2 := eb.X2 - ea.X2; d2 != d {
				v.addf(n, "diff-parallel", "pair %s: edge %d interval shift mismatch", name, e)
			}
		}
	}
}

func (v *Result) checkDensity(res Parts) {
	want := density.New(res.Ckt.Channels(), res.Ckt.Cols)
	for _, g := range res.Graphs {
		for _, e := range g.AliveEdges() {
			ed := &g.Edges[e]
			if ed.Kind != rgraph.ETrunk {
				continue
			}
			want.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			if ed.Bridge {
				want.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
			}
		}
	}
	for ch := 0; ch < res.Ckt.Channels(); ch++ {
		if got, w := res.Dens.Channel(ch), want.Channel(ch); got != w {
			v.addf(-1, "density", "channel %d: incremental %+v != recount %+v", ch, got, w)
		}
	}
}

func (v *Result) checkLengths(res Parts) {
	for n, g := range res.Graphs {
		var sum float64
		for _, e := range g.AliveEdges() {
			sum += g.Edges[e].Len
		}
		if diff := sum - res.WirelenUm[n]; diff > 1e-6 || diff < -1e-6 {
			v.addf(n, "length", "net %s: reported %v µm, tree sums to %v µm",
				res.Ckt.Nets[n].Name, res.WirelenUm[n], sum)
		}
	}
}
