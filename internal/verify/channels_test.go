package verify

import (
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
)

func channelResult(t *testing.T, ckt *circuit.Circuit, algo chanroute.Algorithm) *chanroute.Result {
	t.Helper()
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.RouteWith(res.Ckt, res.Graphs, algo)
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

func TestChannelsCleanForBothAlgorithms(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff, circuit.SampleDiffCross} {
		for _, algo := range []chanroute.Algorithm{chanroute.LeftEdge, chanroute.Greedy} {
			cr := channelResult(t, build(), algo)
			v := Channels(cr)
			if !v.OK() {
				t.Errorf("%v on %s: %v", algo, build().Name, v.Problems[0])
			}
		}
	}
}

func TestChannelsCleanOnDataset(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []chanroute.Algorithm{chanroute.LeftEdge, chanroute.Greedy} {
		cr := channelResult(t, ckt, algo)
		v := Channels(cr)
		// Waived-constraint notes are acceptable; hard rule breaks are not.
		for _, pr := range v.Problems {
			if pr.Rule != "chan-vcg-waived" {
				t.Errorf("%v: %v", algo, pr)
			}
		}
	}
}

func TestChannelsDetectsOverlap(t *testing.T) {
	cr := channelResult(t, circuit.SampleSmall(), chanroute.LeftEdge)
	// Force two different-net proper segments onto the same track.
	var a, b *chanroute.Segment
	for ci := range cr.Channels {
		for _, s := range cr.Channels[ci].Segments {
			if s.Lo >= s.Hi {
				continue
			}
			if a == nil {
				a = s
			} else if s.Net != a.Net {
				b = s
				break
			}
		}
		if b != nil {
			break
		}
	}
	if b == nil {
		t.Skip("fixture lacks two proper segments in one channel")
	}
	b.Track = a.Track
	b.Lo, b.Hi = a.Lo, a.Hi
	v := Channels(cr)
	hit := false
	for _, pr := range v.Problems {
		if pr.Rule == "chan-overlap" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("overlap not detected: %v", v.Problems)
	}
}

func TestChannelsDetectsBadTrack(t *testing.T) {
	cr := channelResult(t, circuit.SampleSmall(), chanroute.LeftEdge)
	for ci := range cr.Channels {
		for _, s := range cr.Channels[ci].Segments {
			if s.Lo < s.Hi {
				s.Track = cr.Channels[ci].Tracks + 7
				v := Channels(cr)
				for _, pr := range v.Problems {
					if pr.Rule == "chan-track" {
						return
					}
				}
				t.Fatalf("bad track not detected: %v", v.Problems)
			}
		}
	}
	t.Skip("no proper segments")
}

func TestChannelsDetectsVCGBreak(t *testing.T) {
	// Hand-build a channel with a satisfied constraint, then flip it.
	ch := chanroute.Channel{Segments: []*chanroute.Segment{
		{Net: 0, Lo: 0, Hi: 5, Width: 1, Track: 1,
			Pins: []chanroute.Pin{{Col: 3, FromTop: true}}},
		{Net: 1, Lo: 3, Hi: 8, Width: 1, Track: 0,
			Pins: []chanroute.Pin{{Col: 3, FromTop: false}}},
	}, Tracks: 2}
	cr := &chanroute.Result{Channels: []chanroute.Channel{ch}}
	if v := Channels(cr); !v.OK() {
		t.Fatalf("valid channel flagged: %v", v.Problems)
	}
	cr.Channels[0].Segments[0].Track, cr.Channels[0].Segments[1].Track = 0, 1
	v := Channels(cr)
	hit := false
	for _, pr := range v.Problems {
		if pr.Rule == "chan-vcg" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("VCG break not detected: %v", v.Problems)
	}
}
