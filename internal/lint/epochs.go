package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerEpochs enforces the PR-2 cache contract: epoch and version
// counters (router.timEpoch/geoEpoch/nbEpoch, density.State.version) are
// the invalidation backbone of the incremental selection engine, and a
// write to one of them anywhere except its owning bump/invalidate method
// bypasses the paired bookkeeping (mate invalidation, dirty marking) that
// keeps cached criteria exact.
//
// A field is an epoch field when its name ends in "Epoch" or is exactly
// "epoch" or "version". A write is sanctioned when the enclosing function
// is a bump site — its name contains "touch", "bump" or "invalidate" — or
// an initializer (prefix "init", "new", "setup" or "reset", where the
// counters are first laid out). Anything else needs a //bgr:allow epochs
// directive explaining why the raw write is safe.
//
// The analyzer also guards the PR-4 dirty-set contract: the incremental
// timing engine's bookkeeping (Timing.dirty, Timing.dirtyCount) is owned
// by MarkNet/MarkAll/Flush, and a write anywhere else desynchronizes the
// dirty flags from dirtyCount or skips re-analysis entirely. Dirty-set
// fields (name "dirty", "dirtyCount" or suffix "Dirty", on a receiver
// struct named "Timing") may only be written inside a mark/flush method
// or an initializer; the rule is receiver-scoped so lazily cleared dirty
// flags in other packages (density.State) stay untouched.
//
// The third contract is PR-7's dirty-net bitset: router.dirtyBest and the
// per-channel net masks (suffix "NetBits") replace the O(nets) bestValid
// scan in selectEdge, and they stay exact only while every density
// mutation is mirrored by a mark and every consumption by a drain. A
// write to one of these fields (receiver struct named "router") is
// sanctioned only inside a mark/clear/drain method or an initializer;
// any other write needs a //bgr:allow epochs with the pairing argument.
//
// The fourth contract is the sharded round protocol's scan state: the
// per-shard scratch (shardState's clear logs and top-k list — fields
// with suffix "Log", plus "topK"/"nTop") is written lock-free by
// concurrent shard scans, and the router's revised-net bitset
// ("revBits") drives the per-commit winner verification. Byte-identical
// merges depend on every mutation flowing through a shard-owned
// scan/mark/clear/drain method (or an initializer laying the buffers
// out); a stray write from anywhere else is a determinism leak the race
// detector cannot see when it happens to be single-threaded.
var analyzerEpochs = &Analyzer{
	Name:              "epochs",
	Doc:               "flags epoch/version and timing dirty-set writes outside their owning methods",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		check := func(fd *ast.FuncDecl, lhs ast.Expr) {
			if name, ok := epochFieldWrite(pkg, lhs); ok && !epochBumpSite(fd.Name.Name) {
				out = append(out, pkg.diag(lhs.Pos(), "epochs",
					"write to epoch field %q outside a bump/invalidate method (%s): route it through the owning bump method so paired invalidation stays intact", name, fd.Name.Name))
			}
			if name, ok := dirtySetWrite(pkg, lhs); ok && !dirtyBumpSite(fd.Name.Name) {
				out = append(out, pkg.diag(lhs.Pos(), "epochs",
					"write to dirty-set field %q outside a mark/flush method (%s): route it through MarkNet/MarkAll/Flush so the dirty flags and dirtyCount stay paired", name, fd.Name.Name))
			}
			if name, ok := bitsetWrite(pkg, lhs); ok && !bitsetBumpSite(fd.Name.Name) {
				out = append(out, pkg.diag(lhs.Pos(), "epochs",
					"write to dirty-net bitset field %q outside a mark/clear/drain method (%s): route it through the owning mark/clear helpers so every density change stays paired with a drain", name, fd.Name.Name))
			}
			if name, ok := shardStateWrite(pkg, lhs); ok && !shardBumpSite(fd.Name.Name) {
				out = append(out, pkg.diag(lhs.Pos(), "epochs",
					"write to shard-round field %q outside a shard-owned scan/mark/clear/drain method (%s): per-shard scan state and the revised-net bitset may only mutate through their owning methods or the byte-identical merge breaks", name, fd.Name.Name))
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range st.Lhs {
							check(fd, lhs)
						}
					case *ast.IncDecStmt:
						check(fd, st.X)
					}
					return true
				})
			}
		}
		return out
	},
}

// epochBumpSite reports whether a function name marks a sanctioned
// epoch-mutation site.
func epochBumpSite(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "touch") || strings.Contains(l, "bump") || strings.Contains(l, "invalidate") {
		return true
	}
	for _, p := range []string{"init", "new", "setup", "reset"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// dirtyBumpSite reports whether a function name marks a sanctioned
// dirty-set mutation site. Kept separate from epochBumpSite: adding
// "mark" there would sanction any function whose name merely contains it
// (e.g. "benchmark") for epoch writes too.
func dirtyBumpSite(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "mark") || strings.Contains(l, "flush") {
		return true
	}
	for _, p := range []string{"init", "new", "setup", "reset"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// epochFieldWrite reports whether the assignment target is (an element
// of) a struct field with an epoch-like name, returning the field name.
func epochFieldWrite(pkg *Package, lhs ast.Expr) (string, bool) {
	name, _, ok := fieldWrite(pkg, lhs)
	if !ok {
		return "", false
	}
	if strings.HasSuffix(name, "Epoch") || name == "epoch" || name == "version" {
		return name, true
	}
	return "", false
}

// dirtySetWrite reports whether the assignment target is (an element of)
// a dirty-set bookkeeping field of the timing engine: name "dirty",
// "dirtyCount" or suffix "Dirty", on a receiver struct named "Timing".
func dirtySetWrite(pkg *Package, lhs ast.Expr) (string, bool) {
	name, recv, ok := fieldWrite(pkg, lhs)
	if !ok || recv != "Timing" {
		return "", false
	}
	if name == "dirty" || name == "dirtyCount" || strings.HasSuffix(name, "Dirty") {
		return name, true
	}
	return "", false
}

// bitsetBumpSite reports whether a function name marks a sanctioned
// dirty-net bitset mutation site. "drain" joins mark/clear because the
// consuming side (selectEdge's drain loop, extracted into a helper)
// clears bits as it reads them.
func bitsetBumpSite(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "mark") || strings.Contains(l, "clear") || strings.Contains(l, "drain") {
		return true
	}
	for _, p := range []string{"init", "new", "setup", "reset"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// bitsetWrite reports whether the assignment target is (an element of)
// the selection engine's dirty-net bitset state: field "dirtyBest" or
// suffix "NetBits", on a receiver struct named "router".
func bitsetWrite(pkg *Package, lhs ast.Expr) (string, bool) {
	name, recv, ok := fieldWrite(pkg, lhs)
	if !ok || recv != "router" {
		return "", false
	}
	if name == "dirtyBest" || strings.HasSuffix(name, "NetBits") {
		return name, true
	}
	return "", false
}

// shardBumpSite reports whether a function name marks a sanctioned
// shard-state mutation site: the per-shard scans ("scan"), the revised-
// set writers ("mark"/"clear"), the consuming side ("drain"), or an
// initializer laying the round buffers out.
func shardBumpSite(name string) bool {
	l := strings.ToLower(name)
	for _, s := range []string{"scan", "mark", "clear", "drain"} {
		if strings.Contains(l, s) {
			return true
		}
	}
	for _, p := range []string{"init", "new", "setup", "reset"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// shardStateWrite reports whether the assignment target is (an element
// of) the sharded round protocol's scan state: shardState's per-scan
// logs (suffix "Log") and top-k list ("topK"/"nTop"), or the router's
// revised-net bitset ("revBits").
func shardStateWrite(pkg *Package, lhs ast.Expr) (string, bool) {
	name, recv, ok := fieldWrite(pkg, lhs)
	if !ok {
		return "", false
	}
	switch recv {
	case "shardState":
		if strings.HasSuffix(name, "Log") || name == "topK" || name == "nTop" {
			return name, true
		}
	case "router":
		if name == "revBits" {
			return name, true
		}
	}
	return "", false
}

// fieldWrite resolves an assignment target to a struct field selection,
// returning the field name and the named type it was selected from ("" if
// the base type is unnamed).
func fieldWrite(pkg *Package, lhs ast.Expr) (field, recv string, ok bool) {
	for {
		ix, isIx := lhs.(*ast.IndexExpr)
		if !isIx {
			break
		}
		lhs = ix.X
	}
	sel, isSel := lhs.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	rt := s.Recv()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	if named, isNamed := rt.(*types.Named); isNamed {
		recv = named.Obj().Name()
	}
	return sel.Sel.Name, recv, true
}
