package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerEpochs enforces the PR-2 cache contract: epoch and version
// counters (router.timEpoch/geoEpoch/nbEpoch, density.State.version) are
// the invalidation backbone of the incremental selection engine, and a
// write to one of them anywhere except its owning bump/invalidate method
// bypasses the paired bookkeeping (mate invalidation, dirty marking) that
// keeps cached criteria exact.
//
// A field is an epoch field when its name ends in "Epoch" or is exactly
// "epoch" or "version". A write is sanctioned when the enclosing function
// is a bump site — its name contains "touch", "bump" or "invalidate" — or
// an initializer (prefix "init", "new", "setup" or "reset", where the
// counters are first laid out). Anything else needs a //bgr:allow epochs
// directive explaining why the raw write is safe.
var analyzerEpochs = &Analyzer{
	Name:              "epochs",
	Doc:               "flags epoch/version cache-field writes outside bump methods",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || epochBumpSite(fd.Name.Name) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range st.Lhs {
							if name, ok := epochFieldWrite(pkg, lhs); ok {
								out = append(out, pkg.diag(lhs.Pos(), "epochs",
									"write to epoch field %q outside a bump/invalidate method (%s): route it through the owning bump method so paired invalidation stays intact", name, fd.Name.Name))
							}
						}
					case *ast.IncDecStmt:
						if name, ok := epochFieldWrite(pkg, st.X); ok {
							out = append(out, pkg.diag(st.X.Pos(), "epochs",
								"write to epoch field %q outside a bump/invalidate method (%s): route it through the owning bump method so paired invalidation stays intact", name, fd.Name.Name))
						}
					}
					return true
				})
			}
		}
		return out
	},
}

// epochBumpSite reports whether a function name marks a sanctioned
// epoch-mutation site.
func epochBumpSite(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "touch") || strings.Contains(l, "bump") || strings.Contains(l, "invalidate") {
		return true
	}
	for _, p := range []string{"init", "new", "setup", "reset"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// epochFieldWrite reports whether the assignment target is (an element
// of) a struct field with an epoch-like name, returning the field name.
func epochFieldWrite(pkg *Package, lhs ast.Expr) (string, bool) {
	for {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			break
		}
		lhs = ix.X
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	name := sel.Sel.Name
	if strings.HasSuffix(name, "Epoch") || name == "epoch" || name == "version" {
		return name, true
	}
	return "", false
}
