// Package lint is bgr's repo-specific static analysis suite: the
// compile-time half of the determinism contract that determinism_test.go
// checks dynamically (byte-identical routedb output for every worker
// count) and that docs/PERF.md's invalidation rules assume.
//
// The suite is built on the standard library only — packages are loaded
// with `go list -export -json`, parsed with go/parser and type-checked
// with go/types against the toolchain's export data — so the module keeps
// zero external requirements.
//
// Eight analyzers are registered (see docs/LINT.md for the full contract
// each one guards):
//
//   - maporder: `range` over a map in a deterministic package
//   - floateq:  `==`/`!=` between floating-point operands
//   - clockuse: time.Now/time.Since/math-rand in a deterministic package
//   - epochs:   epoch/version cache fields and the selection engine's
//     dirty-net bitset written outside their owning methods
//   - locks:    sync.Mutex/RWMutex copied by value, or Lock without a
//     paired unlock on every return path
//   - scratch-escape: a bgr:owned scratch slice or view escaping its
//     owner (returned, stored elsewhere, captured by a goroutine, or
//     appended so the backing array can reallocate)
//   - poolpair: sync.Pool.Get without a paired Put on every return
//     path, or a pooled object leaving the function without a reset
//   - hotalloc: a heap-allocation site (per the compiler's own escape
//     analysis) reachable from a bgr:hot entry point and absent from
//     the reasoned allowlist
//
// A finding is suppressible only with a reasoned directive on the same
// line or the line directly above:
//
//	//bgr:allow <analyzer> -- <reason>
//
// A directive that no longer suppresses anything is itself reported, so
// suppressions cannot rot silently.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at the offending token.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// MarshalJSON renders the diagnostic as a flat, machine-stable object.
// Only the fields CI diffs are emitted — file (forward slashes), line,
// column, analyzer, message — so the byte output is identical across
// operating systems and `go list` orderings.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
}

// Relativize rewrites every diagnostic's file path to be relative to
// base when possible, so output (and the -json golden files) does not
// depend on where the tree is checked out.
func Relativize(diags []Diagnostic, base string) {
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

// Context carries the run-wide inputs of the whole-module analyzers.
// The zero value disables them gracefully: hotalloc still validates
// bgr:hot annotations but compiles nothing without a Dir, and an empty
// Allowlist means no allowlist is consulted.
type Context struct {
	// Dir is the directory package patterns were resolved from; the
	// hotalloc analyzer runs `go build` there.
	Dir string
	// Allowlist is the path to the hotalloc allowlist file ("" = none).
	Allowlist string
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Fset       *token.FileSet
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

func (p *Package) diag(pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// Analyzer is one repo-specific check. Exactly one of Run and RunAll is
// set: Run inspects one package at a time; RunAll sees the whole loaded
// package set at once (for cross-package work like call-graph
// reachability) and may fail hard — a load or toolchain error there must
// surface as exit status 2, never as a false pass.
type Analyzer struct {
	Name string
	Doc  string
	// DeterministicOnly restricts the analyzer to the deterministic
	// packages (see Deterministic).
	DeterministicOnly bool
	Run               func(*Package) []Diagnostic
	RunAll            func(*Context, []*Package) ([]Diagnostic, error)
}

// deterministicPkgs are the package names forming the deterministic
// routing core: every one of them feeds, directly or transitively, the
// byte-compared routedb output, so map iteration order, clock reads and
// unkeyed float tie-breaks inside them are reproducibility bugs. Matching
// is by package name (not import path) so golden-test fixture packages
// under testdata/ participate.
var deterministicPkgs = map[string]bool{
	"core":      true,
	"rgraph":    true,
	"dgraph":    true,
	"density":   true,
	"chanroute": true,
	"feed":      true,
	"seqroute":  true,
	"steiner":   true,
	"routedb":   true,
}

// Deterministic reports whether a package is part of the deterministic
// routing core that maporder, floateq, clockuse and epochs guard.
func Deterministic(pkgName string) bool { return deterministicPkgs[pkgName] }

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapOrder,
		analyzerFloatEq,
		analyzerClockUse,
		analyzerEpochs,
		analyzerLocks,
		analyzerScratchEscape,
		analyzerPoolPair,
		analyzerHotAlloc,
	}
}

// directive is one parsed //bgr:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "//bgr:allow"

var directiveRE = regexp.MustCompile(`^//bgr:allow\s+([A-Za-z0-9_-]+)\s+--\s+(\S.*)$`)

// parseDirectives extracts the //bgr:allow directives of a package.
// Malformed directives (missing analyzer, missing the " -- reason" part,
// or naming an analyzer that does not exist) are reported immediately and
// do not suppress anything.
func parseDirectives(pkg *Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, "//bgr:") {
					continue
				}
				if !strings.HasPrefix(text, directivePrefix) {
					// bgr:hot / bgr:owned are validated by the analyzers
					// that consume them; any other verb is a typo that
					// would otherwise rot silently.
					if !strings.HasPrefix(text, hotPrefix) && !strings.HasPrefix(text, ownedPrefix) {
						bad = append(bad, Diagnostic{Pos: pkg.Fset.Position(c.Pos()), Analyzer: "allow",
							Message: fmt.Sprintf("unknown bgr directive %s: the known verbs are allow, hot and owned", quoteDirective(text))})
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("malformed suppression %q: want %s <analyzer> -- <reason>", text, directivePrefix)})
					continue
				}
				if !known[m[1]] {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("suppression names unknown analyzer %q", m[1])})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: m[1], reason: m[2]})
			}
		}
	}
	return dirs, bad
}

// matches reports whether the directive suppresses d: same analyzer, same
// file, and the directive sits on the diagnostic's line (trailing comment)
// or the line directly above it.
func (dir *directive) matches(d Diagnostic) bool {
	return dir.analyzer == d.Analyzer &&
		dir.pos.Filename == d.Pos.Filename &&
		(dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1)
}

// Run applies the analyzers to every package, resolves suppressions, and
// returns the surviving diagnostics plus one "allow" diagnostic for every
// stale or malformed directive, fully ordered by (file, line, column,
// analyzer, message). Directive matching is global — a suppression works
// for the whole-module analyzers exactly as for the per-package ones,
// since both position their findings in the annotated source. A non-nil
// error means an analyzer could not complete (toolchain failure,
// unparsable compiler dump); callers must treat it as a failed run, not
// a clean one.
func Run(ctx *Context, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if ctx == nil {
		ctx = &Context{}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var raw, out []Diagnostic
	var dirs []*directive
	for _, pkg := range pkgs {
		det := Deterministic(pkg.Name)
		for _, a := range analyzers {
			if a.Run == nil || (a.DeterministicOnly && !det) {
				continue
			}
			raw = append(raw, a.Run(pkg)...)
		}
		pd, bad := parseDirectives(pkg, known)
		dirs = append(dirs, pd...)
		out = append(out, bad...)
	}
	for _, a := range analyzers {
		if a.RunAll == nil {
			continue
		}
		ds, err := a.RunAll(ctx, pkgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		raw = append(raw, ds...)
	}
	for _, d := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.matches(d) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("stale suppression: no %s diagnostic on this or the next line; delete the //bgr:allow", dir.analyzer)})
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders diagnostics by (file, line, column, analyzer, message) —
// the full key, so equal-position findings from different analyzers (or
// duplicate-position findings with different messages) still render in
// one deterministic order on every machine.
func Sort(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
