// Package lint is bgr's repo-specific static analysis suite: the
// compile-time half of the determinism contract that determinism_test.go
// checks dynamically (byte-identical routedb output for every worker
// count) and that docs/PERF.md's invalidation rules assume.
//
// The suite is built on the standard library only — packages are loaded
// with `go list -export -json`, parsed with go/parser and type-checked
// with go/types against the toolchain's export data — so the module keeps
// zero external requirements.
//
// Five analyzers are registered (see docs/LINT.md for the full contract
// each one guards):
//
//   - maporder: `range` over a map in a deterministic package
//   - floateq:  `==`/`!=` between floating-point operands
//   - clockuse: time.Now/time.Since/math-rand in a deterministic package
//   - epochs:   epoch/version cache fields written outside bump methods
//   - locks:    sync.Mutex/RWMutex copied by value, or Lock without a
//     paired unlock on every return path
//
// A finding is suppressible only with a reasoned directive on the same
// line or the line directly above:
//
//	//bgr:allow <analyzer> -- <reason>
//
// A directive that no longer suppresses anything is itself reported, so
// suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at the offending token.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Fset       *token.FileSet
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

func (p *Package) diag(pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// Analyzer is one repo-specific check.
type Analyzer struct {
	Name string
	Doc  string
	// DeterministicOnly restricts the analyzer to the deterministic
	// packages (see Deterministic).
	DeterministicOnly bool
	Run               func(*Package) []Diagnostic
}

// deterministicPkgs are the package names forming the deterministic
// routing core: every one of them feeds, directly or transitively, the
// byte-compared routedb output, so map iteration order, clock reads and
// unkeyed float tie-breaks inside them are reproducibility bugs. Matching
// is by package name (not import path) so golden-test fixture packages
// under testdata/ participate.
var deterministicPkgs = map[string]bool{
	"core":      true,
	"rgraph":    true,
	"dgraph":    true,
	"density":   true,
	"chanroute": true,
	"feed":      true,
	"seqroute":  true,
	"routedb":   true,
}

// Deterministic reports whether a package is part of the deterministic
// routing core that maporder, floateq, clockuse and epochs guard.
func Deterministic(pkgName string) bool { return deterministicPkgs[pkgName] }

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapOrder,
		analyzerFloatEq,
		analyzerClockUse,
		analyzerEpochs,
		analyzerLocks,
	}
}

// directive is one parsed //bgr:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "//bgr:allow"

var directiveRE = regexp.MustCompile(`^//bgr:allow\s+([A-Za-z0-9_-]+)\s+--\s+(\S.*)$`)

// parseDirectives extracts the //bgr:allow directives of a package.
// Malformed directives (missing analyzer, missing the " -- reason" part,
// or naming an analyzer that does not exist) are reported immediately and
// do not suppress anything.
func parseDirectives(pkg *Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("malformed suppression %q: want %s <analyzer> -- <reason>", text, directivePrefix)})
					continue
				}
				if !known[m[1]] {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("suppression names unknown analyzer %q", m[1])})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: m[1], reason: m[2]})
			}
		}
	}
	return dirs, bad
}

// matches reports whether the directive suppresses d: same analyzer, same
// file, and the directive sits on the diagnostic's line (trailing comment)
// or the line directly above it.
func (dir *directive) matches(d Diagnostic) bool {
	return dir.analyzer == d.Analyzer &&
		dir.pos.Filename == d.Pos.Filename &&
		(dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1)
}

// Run applies the analyzers to every package, resolves suppressions, and
// returns the surviving diagnostics plus one "allow" diagnostic for every
// stale or malformed directive, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		det := Deterministic(pkg.Name)
		for _, a := range analyzers {
			if a.DeterministicOnly && !det {
				continue
			}
			raw = append(raw, a.Run(pkg)...)
		}
		dirs, bad := parseDirectives(pkg, known)
		out = append(out, bad...)
		for _, d := range raw {
			suppressed := false
			for _, dir := range dirs {
				if dir.matches(d) {
					dir.used = true
					suppressed = true
				}
			}
			if !suppressed {
				out = append(out, d)
			}
		}
		for _, dir := range dirs {
			if !dir.used {
				out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
					Message: fmt.Sprintf("stale suppression: no %s diagnostic on this or the next line; delete the //bgr:allow", dir.analyzer)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
