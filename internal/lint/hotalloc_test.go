package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnnotationRot checks that a bgr:hot or bgr:owned directive that is
// malformed, misattached, or typed wrong is itself a diagnostic — an
// annotation that silently guards nothing is worse than none. The
// expectations are substrings rather than // want comments because the
// diagnostics land on the directive lines, where a trailing want comment
// would become part of the directive text.
func TestAnnotationRot(t *testing.T) {
	diags := runFixture(t, "annot")
	expect := []string{
		`malformed annotation "//bgr:hot now"`,
		"bgr:hot is not attached to a function declaration",
		"bgr:owned field must be slice- or array-typed",
		`malformed annotation "//bgr:owned stuff"`,
		"bgr:owned is not attached to a struct field",
	}
	var extra []Diagnostic
outer:
	for _, d := range diags {
		for i, sub := range expect {
			if sub != "" && strings.Contains(d.Message, sub) {
				expect[i] = ""
				continue outer
			}
		}
		extra = append(extra, d)
	}
	for _, sub := range expect {
		if sub != "" {
			t.Errorf("no diagnostic containing %q (got %v)", sub, diags)
		}
	}
	for _, d := range extra {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestJSONGolden pins the -json output byte for byte: ordering (file,
// line, column, analyzer), field names, indentation. CI and editor
// integrations parse this; it must not drift silently.
func TestJSONGolden(t *testing.T) {
	diags := runFixture(t, "bitset")
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	Relativize(diags, abs)
	got, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "bitset.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestAllowlistCoversAndRots runs the hotalloc fixture against a
// purpose-built allowlist: a covering entry must silence its site, a
// malformed line and an entry matching nothing must each be reported.
func TestAllowlistCoversAndRots(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "allow.txt")
	content := "# test allowlist\n" +
		"core.fill :: escapes to heap -- test: covers the fixture's make\n" +
		"core.missing :: * -- test: matches nothing, must be reported stale\n" +
		"core.broken ::\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(&Context{Dir: ".", Allowlist: allow}, loadFixture(t, "hotalloc"), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	expect := []string{
		"malformed allowlist entry",
		`stale hotalloc allowlist entry for core.missing`,
	}
	var extra []Diagnostic
outer:
	for _, d := range diags {
		for i, sub := range expect {
			if sub != "" && strings.Contains(d.Message, sub) {
				if d.Pos.Filename != allow {
					t.Errorf("diagnostic %q reported at %s, want the allowlist file", sub, d.Pos.Filename)
				}
				expect[i] = ""
				continue outer
			}
		}
		extra = append(extra, d)
	}
	for _, sub := range expect {
		if sub != "" {
			t.Errorf("no diagnostic containing %q (got %v)", sub, diags)
		}
	}
	// In particular core.fill's allocation must be covered: any leftover
	// diagnostic here would be the hot-path finding leaking through.
	for _, d := range extra {
		t.Errorf("unexpected diagnostic with allowlist in force: %s", d)
	}
}

// TestMissingAllowlistFailsRun pins the exit-2 contract: an allowlist
// path that cannot be read fails the run, it does not silently vet
// without the list.
func TestMissingAllowlistFailsRun(t *testing.T) {
	absent := filepath.Join(t.TempDir(), "absent.txt")
	_, err := Run(&Context{Dir: ".", Allowlist: absent}, loadFixture(t, "hotalloc"), Analyzers())
	if err == nil || !strings.Contains(err.Error(), "hotalloc allowlist") {
		t.Fatalf("Run with missing allowlist: err = %v, want hotalloc allowlist read failure", err)
	}
}

// TestDumpParseError pins the other half of the exit-2 contract: a
// compiler dump that is missing its header or contains an unparsable
// diagnostic line is a hard error, never an empty (passing) result.
func TestDumpParseError(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, content, wantSub string
	}{
		{"garbage-header", "not json at all\n", "unparsable escape-dump header"},
		{"header-missing-version", `{"file":"x.go"}` + "\n", "unparsable escape-dump header"},
		{"garbage-diagnostic", `{"version":0,"file":"x.go"}` + "\n{broken json\n", "unparsable escape-dump diagnostic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := parseEscapeDump(path)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("parseEscapeDump(%s): err = %v, want substring %q", c.name, err, c.wantSub)
			}
		})
	}
}
