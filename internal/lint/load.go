package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -export -json -deps` (run in
// dir), parses every matched non-dependency package with comments, and
// type-checks it from source. Imports — including other in-module
// packages and the standard library — are satisfied from the compiler's
// export data, so loading stays fast and needs nothing beyond the Go
// toolchain itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, lp := range roots {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			Fset:       fset,
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			GoFiles:    lp.GoFiles,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
