package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// loaderCache memoizes package loading within one process. Two layers:
//
//   - loaded: finished []*Package results keyed on (abs dir, patterns),
//     so a test binary that loads a dozen fixtures plus the whole module
//     runs `go list` and the type checker once per distinct request.
//   - the shared FileSet and gc importer, so the standard-library and
//     in-module export data backing those loads is materialized into
//     *types.Package values once, not once per Load call.
//
// Sharing type data across loads is only sound while the export files
// themselves are unchanged, so every load fingerprints each export file
// as path|size|mtime. Any mismatch with a fingerprint recorded earlier
// means the toolchain rebuilt something under us; the gc importer cannot
// evict single entries, so the whole cache is dropped and rebuilt.
type loaderCache struct {
	mu     sync.Mutex
	fset   *token.FileSet
	imp    types.Importer
	expors map[string]string // import path -> export file (merged over loads)
	prints map[string]string // import path -> path|size|mtime fingerprint
	loaded map[string][]*Package
}

var sharedLoader = &loaderCache{}

func (c *loaderCache) reset() {
	c.fset = token.NewFileSet()
	c.expors = map[string]string{}
	c.prints = map[string]string{}
	c.loaded = map[string][]*Package{}
	fset, exports := c.fset, c.expors
	c.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// fingerprint stats one export file into the path|size|mtime form used
// to detect rebuilt export data between Load calls.
func fingerprint(path string) (string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|%d|%d", path, st.Size(), st.ModTime().UnixNano()), nil
}

// admit folds one load's export map into the cache, dropping everything
// first if any already-cached export file changed on disk.
func (c *loaderCache) admit(exports map[string]string) error {
	fresh := make(map[string]string, len(exports))
	stale := false
	for ip, f := range exports {
		fp, err := fingerprint(f)
		if err != nil {
			return fmt.Errorf("lint: stat export data for %s: %w", ip, err)
		}
		fresh[ip] = fp
		if prev, ok := c.prints[ip]; ok && prev != fp {
			stale = true
		}
	}
	if stale {
		c.reset()
	}
	for ip, f := range exports {
		c.expors[ip] = f
		c.prints[ip] = fresh[ip]
	}
	return nil
}

// Load resolves the patterns with `go list -export -json -deps` (run in
// dir), parses every matched non-dependency package with comments, and
// type-checks it from source. Imports — including other in-module
// packages and the standard library — are satisfied from the compiler's
// export data, so loading stays fast and needs nothing beyond the Go
// toolchain itself.
//
// Results are memoized per process: repeating a (dir, patterns) request
// returns the previously built packages, and distinct requests share one
// FileSet and importer so export data is only materialized once. The
// cache assumes the source tree does not change while the process runs
// (the standard contract for a batch analysis tool); rebuilt export data
// is detected by fingerprint and drops the cache wholesale.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00")

	c := sharedLoader
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loaded == nil {
		c.reset()
	}
	if pkgs, ok := c.loaded[key]; ok {
		return pkgs, nil
	}
	pkgs, err := c.load(dir, patterns)
	if err != nil {
		return nil, err
	}
	c.loaded[key] = pkgs
	return pkgs, nil
}

// load does the uncached work: one `go list` run, then parse and
// type-check every root package against the shared importer. The caller
// holds c.mu.
func (c *loaderCache) load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}

	if err := c.admit(exports); err != nil {
		return nil, err
	}
	fset, imp := c.fset, c.imp

	var out []*Package
	for _, lp := range roots {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			Fset:       fset,
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			GoFiles:    lp.GoFiles,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
