package lint

import (
	"go/ast"
)

// analyzerClockUse flags wall-clock reads (time.Now, time.Since,
// time.Until) and any use of math/rand inside the deterministic packages.
// Routing decisions must be pure functions of the circuit and Config;
// a clock or PRNG read anywhere in the decision path makes reruns
// unreproducible. The PhaseStat/selStats profiling sites in core are the
// sanctioned exceptions — they measure the run without steering it — and
// carry //bgr:allow clockuse directives saying so.
var analyzerClockUse = &Analyzer{
	Name:              "clockuse",
	Doc:               "flags time.Now/time.Since/math-rand in deterministic packages",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		clockFuncs := map[string]bool{"Now": true, "Since": true, "Until": true}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if clockFuncs[obj.Name()] {
						out = append(out, pkg.diag(sel.Pos(), "clockuse",
							"time.%s in a deterministic package: the routing result must not depend on the clock (profiling-only reads need a //bgr:allow)", obj.Name()))
					}
				case "math/rand", "math/rand/v2":
					out = append(out, pkg.diag(sel.Pos(), "clockuse",
						"%s.%s in a deterministic package: routing must be a pure function of circuit and Config", obj.Pkg().Path(), obj.Name()))
				}
				return true
			})
		}
		return out
	},
}
