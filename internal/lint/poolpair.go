package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerPoolPair enforces the sync.Pool discipline the zero-alloc hot
// path depends on (docs/PERF.md): an object taken with Get must go back
// with Put, and must be reset before anything else sees it, because a
// pooled object arrives carrying whatever the previous user left in it.
// Three shapes are flagged, in every package:
//
//  1. a `x := pool.Get()` bind with no paired Put in the same block —
//     neither `defer pool.Put(...)` after the Get nor an explicit
//     `pool.Put(...)` with no return statement between the two;
//  2. a pooled object escaping (passed bare to a call, assigned to
//     another variable, returned) before any statement resets it — a
//     write through the object (`x.f = ...`) or a method call on it
//     (`x.Reset()`) counts as the reset; plain field reads are fine;
//  3. `return pool.Get()` — the object leaves the function with neither
//     reset nor Put visible to this analysis.
//
// Like locks, the pairing check is deliberately shallow (one block,
// statement order). An ownership transfer that is correct by a contract
// the analyzer cannot see — a constructor handing the object to a
// caller that guarantees the release — carries a reasoned
// //bgr:allow poolpair.
var analyzerPoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "flags sync.Pool Get calls without a paired Put or a reset before reuse",
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					out = append(out, checkPoolBlock(pkg, n)...)
				case *ast.ReturnStmt:
					for _, r := range n.Results {
						if sel, ok := poolGetSel(pkg, r); ok {
							out = append(out, pkg.diag(sel.Pos(), "poolpair",
								"pooled object returned straight from %s.Get(): it leaves with neither a reset nor a paired Put; rebuild it here, or document the ownership transfer with a //bgr:allow", types.ExprString(sel.X)))
						}
					}
				}
				return true
			})
		}
		return out
	},
}

// poolGetSel matches a sync.Pool Get call, looking through parentheses
// and type assertions, and returns its selector (`pool.Get`).
func poolGetSel(pkg *Package, e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := stripParens(e).(type) {
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil, false
			}
			if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "sync" && obj.Name() == "Get" {
				return sel, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// poolPutStmt matches `pool.Put(...)` on the given pool expression, as a
// plain statement (deferred=false) or `defer pool.Put(...)`.
func poolPutStmt(pkg *Package, st ast.Stmt, pool string) (deferred, ok bool) {
	var call *ast.CallExpr
	switch s := st.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call, deferred = s.Call, true
	}
	if call == nil {
		return false, false
	}
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return false, false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Put" {
		return false, false
	}
	return deferred, types.ExprString(sel.X) == pool
}

// checkPoolBlock scans one statement list for Get binds and verifies
// pairing and reset-before-escape for each.
func checkPoolBlock(pkg *Package, blk *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	for i, st := range blk.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			continue
		}
		for k := range as.Rhs {
			sel, ok := poolGetSel(pkg, as.Rhs[k])
			if !ok {
				continue
			}
			pool := types.ExprString(sel.X)
			id, _ := stripParens(as.Lhs[k]).(*ast.Ident)
			var obj types.Object
			if id != nil && id.Name != "_" {
				obj = identObj(pkg, id)
			}
			rest := blk.List[i+1:]
			if !poolPaired(pkg, rest, pool) {
				out = append(out, pkg.diag(sel.Pos(), "poolpair",
					"%s.Get() without a paired %s.Put on every return path: defer the Put right after the acquire, or Put before any return", pool, pool))
			}
			if obj != nil {
				if pos, name, bad := escapeBeforeReset(pkg, rest, pool, obj); bad {
					out = append(out, pkg.diag(pos, "poolpair",
						"pooled object %q escapes before a reset: it still carries the previous user's state; zero it or call a reset method right after Get", name))
				}
			}
		}
	}
	return out
}

// poolPaired reports whether the statements after a Get contain a
// release: a deferred Put anywhere, or an explicit Put not preceded by a
// return statement.
func poolPaired(pkg *Package, rest []ast.Stmt, pool string) bool {
	for _, later := range rest {
		if deferred, ok := poolPutStmt(pkg, later, pool); ok && deferred {
			return true
		}
	}
	for j, later := range rest {
		if deferred, ok := poolPutStmt(pkg, later, pool); ok && !deferred {
			return !containsReturn(rest[:j])
		}
	}
	return false
}

// escapeBeforeReset walks the statements after a Get in order and
// reports the first bare use of the pooled object that happens before
// any reset of it. Tracking stops at an explicit Put (the object is
// gone) or when the binding is reassigned.
func escapeBeforeReset(pkg *Package, rest []ast.Stmt, pool string, obj types.Object) (token.Pos, string, bool) {
	reset := false
	for _, st := range rest {
		if deferred, ok := poolPutStmt(pkg, st, pool); ok {
			if deferred {
				continue // release at function exit; the object is still live here
			}
			break
		}
		stop, resets := resetsPooled(pkg, st, obj)
		if stop {
			break
		}
		if resets {
			reset = true
			continue
		}
		if !reset {
			if pos, ok := bareUse(pkg, st, obj); ok {
				return pos, obj.Name(), true
			}
		}
	}
	return token.NoPos, "", false
}

// resetsPooled classifies one statement's effect on the pooled object:
// stop=true when the binding is rebound to something else, resets=true
// when the statement writes into the object or calls a method on it.
func resetsPooled(pkg *Package, st ast.Stmt, obj types.Object) (stop, resets bool) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			if id, ok := stripParens(l).(*ast.Ident); ok && identObj(pkg, id) == obj {
				return true, false
			}
			if root := rootIdent(l); root != nil && identObj(pkg, root) == obj {
				resets = true
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if root := rootIdent(sel.X); root != nil && identObj(pkg, root) == obj {
					return false, true
				}
			}
		}
	}
	return false, resets
}

// rootIdent strips selector/index/star/slice layers down to the base
// identifier, or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// bareUse finds an identifier resolving to obj used as a value — not as
// the base of a field access or index, which is a read that cannot leak
// the pointer itself.
func bareUse(pkg *Package, n ast.Node, obj types.Object) (token.Pos, bool) {
	shielded := map[*ast.Ident]bool{}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.SelectorExpr:
			if id, ok := stripParens(x.X).(*ast.Ident); ok {
				shielded[id] = true
			}
		case *ast.IndexExpr:
			if id, ok := stripParens(x.X).(*ast.Ident); ok {
				shielded[id] = true
			}
		}
		return true
	})
	var pos token.Pos
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if found {
			return false
		}
		if id, ok := nd.(*ast.Ident); ok && !shielded[id] && identObj(pkg, id) == obj {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}
