package lint

import (
	"go/ast"
	"go/types"
)

// analyzerMapOrder flags `range` statements over map-typed values inside
// the deterministic packages. Go randomizes map iteration order per run,
// so any map range whose body's effect depends on visit order — appending
// to a slice, picking a max with ties, emitting output — breaks the
// byte-identical routedb guarantee. Keyed map lookups are fine; only the
// range form is flagged. Fix by iterating a sorted key slice, an
// int-indexed slice, or the original input ordering.
var analyzerMapOrder = &Analyzer{
	Name:              "maporder",
	Doc:               "flags range over maps in deterministic packages",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, pkg.diag(rs.Pos(), "maporder",
						"range over %s: map iteration order is nondeterministic; iterate a sorted key slice or an indexed slice instead", types.TypeString(t, types.RelativeTo(pkg.Types))))
				}
				return true
			})
		}
		return out
	},
}
