package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerScratchEscape enforces the PR-7 ownership contract documented
// in docs/PERF.md: a bgr:owned struct field is a scratch buffer or a
// view into a shared backing array (CSR subslices, pooled workspaces),
// owned by exactly one struct and overwritten in place. The zero-alloc
// discipline holds only while such a slice never outlives or escapes
// its owner, so the analyzer flags, per function:
//
//  1. returning an owned slice (or a subslice/element view of one, or a
//     local it was copied into) — the caller would hold an alias the
//     next reuse silently clobbers;
//  2. storing one into a field of a different struct type than the
//     owner — ownership transfer without a copy;
//  3. referencing one inside a go-launched closure — a second goroutine
//     breaks the single-owner contract outright;
//  4. appending to one with the result bound to anything but the same
//     storage — if append reallocates, the new array silently unaliases
//     every existing view.
//
// The dataflow is intra-function and statement-ordered: locals assigned
// from owned expressions are tainted with the owner type, reassignment
// from a non-owned value clears the taint, and only slice-typed
// expressions propagate it (indexing a []int32 yields a copy, not a
// view). Views deliberately lent to callers (result backings documented
// as "valid until the next call") carry //bgr:allow scratch-escape
// directives with the loan spelled out.
var analyzerScratchEscape = &Analyzer{
	Name:              "scratch-escape",
	Doc:               "flags bgr:owned scratch slices escaping their owning struct",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		owned, diags := ownedFields(pkg)
		if len(owned) == 0 {
			return diags
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sc := &scratchChecker{pkg: pkg, owned: owned, fn: fd.Name.Name,
					taint: map[types.Object]*types.Named{}}
				sc.block(fd.Body)
				diags = append(diags, sc.out...)
			}
		}
		return diags
	},
}

// scratchChecker carries one function's taint state.
type scratchChecker struct {
	pkg   *Package
	owned map[*types.Var]bool
	fn    string
	taint map[types.Object]*types.Named // tainted local → owner type
	out   []Diagnostic
}

func (sc *scratchChecker) diag(pos token.Pos, format string, args ...any) {
	sc.out = append(sc.out, sc.pkg.diag(pos, "scratch-escape", format, args...))
}

// source resolves e to owned storage: an owned field selection, a
// subslice/slice-element view of one, or a tainted local. It returns
// the owner type and a printable name. Only slice-typed expressions
// qualify — indexing to a scalar or copying an array detaches from the
// backing storage.
func (sc *scratchChecker) source(e ast.Expr) (*types.Named, string, bool) {
	if t := sc.pkg.Info.TypeOf(e); t == nil || !isSlice(t) {
		return nil, "", false
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			goto resolved
		}
	}
resolved:
	switch x := e.(type) {
	case *ast.Ident:
		if obj := sc.pkg.Info.Uses[x]; obj != nil {
			if owner, ok := sc.taint[obj]; ok {
				return owner, x.Name, true
			}
		}
	case *ast.SelectorExpr:
		if s, ok := sc.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && sc.owned[v] {
				return namedRecv(s.Recv()), x.Sel.Name, true
			}
		}
	}
	return nil, "", false
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func ownerName(n *types.Named) string {
	if n == nil {
		return "?"
	}
	return n.Obj().Name()
}

// block walks a statement list in order, updating taint and reporting
// escapes. Nested control-flow blocks recurse; closures not launched
// with `go` share the goroutine and are walked like inline statements.
func (sc *scratchChecker) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		sc.stmt(st)
	}
}

func (sc *scratchChecker) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				sc.assign(s.Lhs[i], s.Rhs[i])
			}
		} else {
			for _, l := range s.Lhs {
				sc.untaint(l)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if owner, name, ok := sc.source(r); ok {
				sc.diag(r.Pos(), "owned scratch %q of %s returned from %s: the caller would alias a backing array the next reuse clobbers; copy into a caller-provided buffer, or document the loan with a //bgr:allow", name, ownerName(owner), sc.fn)
			}
		}
	case *ast.GoStmt:
		sc.goCapture(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						sc.assign(vs.Names[i], vs.Values[i])
					}
				}
			}
		}
	case *ast.BlockStmt:
		sc.block(s)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.stmt(s.Init)
		}
		sc.block(s.Body)
		if s.Else != nil {
			sc.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.stmt(s.Init)
		}
		sc.block(s.Body)
	case *ast.RangeStmt:
		sc.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					sc.stmt(cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					sc.stmt(cs)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					sc.stmt(cs)
				}
			}
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt)
	case *ast.ExprStmt:
		// Calls taking owned slices as plain arguments are the callee's
		// contract (ElmoreDelaysInto-style Into APIs); nothing to check.
	}
}

// assign handles one lhs = rhs pair: taint propagation, field stores
// and the append-rebinding rule.
func (sc *scratchChecker) assign(lhs, rhs ast.Expr) {
	if call := appendCall(rhs); call != nil && len(call.Args) > 0 {
		if owner, name, ok := sc.source(call.Args[0]); ok {
			if !sc.sameStorage(lhs, call.Args[0]) {
				sc.diag(call.Pos(), "append to owned scratch %q of %s rebound to %s: a reallocation would silently unalias every view of the backing array; assign the result back to the same storage", name, ownerName(owner), types.ExprString(lhs))
				return
			}
			sc.taintLhs(lhs, owner)
			return
		}
	}
	if owner, name, ok := sc.source(rhs); ok {
		switch l := stripParens(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			if obj := sc.pkg.Info.Defs[l]; obj != nil {
				sc.taint[obj] = owner
				return
			}
			if obj := sc.pkg.Info.Uses[l]; obj != nil {
				sc.taint[obj] = owner
				return
			}
		case *ast.SelectorExpr:
			if s, ok := sc.pkg.Info.Selections[l]; ok && s.Kind() == types.FieldVal {
				dst := namedRecv(s.Recv())
				v, isVar := s.Obj().(*types.Var)
				if isVar && sc.owned[v] && dst == owner {
					return // written back into the owner's own scratch slots
				}
				sc.diag(l.Pos(), "owned scratch %q of %s stored into field %s.%s outside its owner: ownership moved without a copy; copy the contents or annotate the destination", name, ownerName(owner), ownerName(dst), l.Sel.Name)
				return
			}
		}
		// Element writes (x[i] = view) and other sinks stay local.
		return
	}
	sc.untaint(lhs)
}

func (sc *scratchChecker) taintLhs(lhs ast.Expr, owner *types.Named) {
	if id, ok := stripParens(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := sc.pkg.Info.Defs[id]; obj != nil {
			sc.taint[obj] = owner
			return
		}
		if obj := sc.pkg.Info.Uses[id]; obj != nil {
			sc.taint[obj] = owner
		}
	}
}

func (sc *scratchChecker) untaint(lhs ast.Expr) {
	if id, ok := stripParens(lhs).(*ast.Ident); ok {
		if obj := sc.pkg.Info.Uses[id]; obj != nil {
			delete(sc.taint, obj)
		}
		if obj := sc.pkg.Info.Defs[id]; obj != nil {
			delete(sc.taint, obj)
		}
	}
}

// sameStorage reports whether two expressions name the same variable or
// the same field path — the `x = append(x, ...)` self-grow pattern.
func (sc *scratchChecker) sameStorage(a, b ast.Expr) bool {
	a, b = stripParens(a), stripParens(b)
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok && bok {
		return identObj(sc.pkg, ai) != nil && identObj(sc.pkg, ai) == identObj(sc.pkg, bi)
	}
	return types.ExprString(a) == types.ExprString(b)
}

func identObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// appendCall matches a call to the append builtin.
func appendCall(e ast.Expr) *ast.CallExpr {
	call, ok := stripParens(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	return call
}

// goCapture flags any owned or tainted slice referenced by a go
// statement — via a closure body or passed directly as an argument.
// The scan is shallow by design: it catches direct mentions, not
// reachability through captured receivers.
func (sc *scratchChecker) goCapture(g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.SelectorExpr, *ast.Ident:
			if owner, name, ok := sc.source(e); ok {
				sc.diag(e.Pos(), "owned scratch %q of %s referenced by a goroutine in %s: a second goroutine breaks the single-owner contract; hand over a copy instead", name, ownerName(owner), sc.fn)
				return false
			}
		}
		return true
	})
}
