package lint

import (
	"go/ast"
	"go/types"
)

// analyzerLocks applies two simple lock-hygiene heuristics everywhere in
// the module (the service layer holds real mutexes; determinism is not
// the concern here, deadlocks and torn state are):
//
//  1. a sync.Mutex or sync.RWMutex copied by value — as a parameter,
//     result, or plain assignment from an existing variable — guards
//     nothing (go vet's copylocks catches deeper cases; this is the
//     direct form);
//  2. a Lock()/RLock() call with no paired release: neither a matching
//     defer Unlock/RUnlock later in the same block, nor a matching
//     explicit Unlock later in the same block with no return statement
//     between the two.
//
// The pairing check is deliberately shallow — it inspects one block at a
// time and only flags patterns that are locally provably unpaired or
// cross a return. Convoluted-but-correct flows can carry a
// //bgr:allow locks directive with the invariant spelled out.
var analyzerLocks = &Analyzer{
	Name: "locks",
	Doc:  "flags mutexes copied by value and Lock calls without a paired release",
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					out = append(out, checkSigCopies(pkg, n)...)
				case *ast.AssignStmt:
					out = append(out, checkAssignCopies(pkg, n)...)
				case *ast.BlockStmt:
					out = append(out, checkLockPairing(pkg, n)...)
				}
				return true
			})
		}
		return out
	},
}

// mutexName returns "Mutex" or "RWMutex" when t is the sync value type.
func mutexName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	if n := obj.Name(); n == "Mutex" || n == "RWMutex" {
		return n, true
	}
	return "", false
}

func checkSigCopies(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if name, ok := mutexName(t); ok {
				out = append(out, pkg.diag(field.Type.Pos(), "locks",
					"sync.%s %s by value in %s: the copy guards nothing; use *sync.%s", name, what, fd.Name.Name, name))
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "passed")
	check(fd.Type.Results, "returned")
	return out
}

func checkAssignCopies(pkg *Package, st *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	for _, rhs := range st.Rhs {
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue // fresh value, nothing copied
		}
		t := pkg.Info.TypeOf(rhs)
		if t == nil {
			continue
		}
		if name, ok := mutexName(t); ok {
			out = append(out, pkg.diag(rhs.Pos(), "locks",
				"sync.%s copied by value: lock state is duplicated, not shared; copy a pointer instead", name))
		}
	}
	return out
}

// lockCall matches a top-level `recv.Lock()` / `recv.RLock()` statement on
// a sync mutex and returns the rendered receiver, the acquire method name
// and the matching release method name.
func lockCall(pkg *Package, st ast.Stmt) (recv, acquire, release string, pos ast.Node, ok bool) {
	sel, name, okc := syncMethodCall(pkg, st)
	if !okc {
		return "", "", "", nil, false
	}
	switch name {
	case "Lock":
		return types.ExprString(sel.X), name, "Unlock", sel, true
	case "RLock":
		return types.ExprString(sel.X), name, "RUnlock", sel, true
	}
	return "", "", "", nil, false
}

// syncMethodCall matches `expr.M()` statements where M is a method of a
// sync type, returning the selector and method name.
func syncMethodCall(pkg *Package, st ast.Stmt) (*ast.SelectorExpr, string, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil, "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel, obj.Name(), true
}

// deferredRelease matches `defer recv.release()`.
func deferredRelease(pkg *Package, st ast.Stmt, recv, release string) bool {
	ds, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// explicitRelease matches a top-level `recv.release()` statement.
func explicitRelease(pkg *Package, st ast.Stmt, recv, release string) bool {
	sel, name, ok := syncMethodCall(pkg, st)
	return ok && name == release && types.ExprString(sel.X) == recv
}

func containsReturn(stmts []ast.Stmt) bool {
	found := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.FuncLit:
				return false // returns inside a closure leave the closure only
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkLockPairing scans one block's statement list for Lock/RLock calls
// and verifies each has a deferred or return-safe explicit release.
func checkLockPairing(pkg *Package, blk *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	for i, st := range blk.List {
		recv, acquire, release, at, ok := lockCall(pkg, st)
		if !ok {
			continue
		}
		rest := blk.List[i+1:]
		paired := false
		for _, later := range rest {
			if deferredRelease(pkg, later, recv, release) {
				paired = true
				break
			}
		}
		if !paired {
			for j, later := range rest {
				if explicitRelease(pkg, later, recv, release) {
					if !containsReturn(rest[:j]) {
						paired = true
					}
					break
				}
			}
		}
		if !paired {
			out = append(out, pkg.diag(at.Pos(), "locks",
				"%s.%s() without a paired %s on every return path: defer %s.%s() right after the acquire, or release before any return", recv, acquire, release, recv, release))
		}
	}
	return out
}
