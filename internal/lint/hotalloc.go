package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// analyzerHotAlloc enforces the PR-7 zero-allocation contract with the
// compiler's own escape analysis instead of heuristics. The pipeline:
//
//  1. collect the //bgr:hot entry points (selectEdge, the timing and
//     density Flush methods, TentativeInto, BuildInto, ...);
//  2. build a whole-module static call graph from the type-checked
//     ASTs — keyed by stable "pkg.(Recv).name" strings, because the
//     same function is a different types.Object when seen through
//     export data — and walk it to the set of functions reachable from
//     any hot root;
//  3. recompile the packages containing reachable functions with
//     `go build -gcflags=-json=0,<tmpdir>`, which makes the gc compiler
//     emit its escape-analysis verdicts as LSP-style JSON diagnostics;
//  4. every "escapes to heap" / "moved to heap" site inside a reachable
//     function is a finding unless a checked-in allowlist entry
//     (internal/lint/hotalloc_allow.txt) covers it with a reason.
//
// Allowlist entries that no longer match any site are reported as stale,
// exactly like //bgr:allow rot, so the list cannot accumulate dead
// excuses. Any toolchain failure — the build, a missing dump, an
// unparsable line — is a hard error (bgr-vet exits 2), never a silent
// pass.
//
// Known limits, by design: calls through interfaces or stored function
// values are not resolved (the hot path is concrete calls throughout),
// and allocations inlined into a caller are attributed to the caller's
// call-site line — which is still inside the hot region, so nothing is
// missed, merely double-reported and deduplicated.
var analyzerHotAlloc = &Analyzer{
	Name:   "hotalloc",
	Doc:    "flags compiler-proven heap allocations reachable from bgr:hot entry points",
	RunAll: runHotAlloc,
}

// funcKeyOf renders the stable cross-package identity of a function:
// "pkgpath.name" for plain functions, "pkgpath.(Recv).name" for methods
// (pointerness is erased — a method set has one owner type).
func funcKeyOf(fn *types.Func) string {
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return path + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return path + ".(?)." + fn.Name()
	}
	return path + "." + fn.Name()
}

// funcDisplay is the short human form used in diagnostics and the
// allowlist: package name (not path) plus receiver and function name,
// with the receiver's pointerness kept for readability.
func funcDisplay(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return pkg.Name + ".(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return pkg.Name + "." + fd.Name.Name
}

// funcSpan is one declared function's source extent, for mapping a
// compiler diagnostic line back to the function that contains it.
type funcSpan struct {
	start, end int
	key        string
	display    string
}

// hotCallGraph is the static call graph plus everything needed to map
// compiler output back to source.
type hotCallGraph struct {
	edges map[string][]string   // caller key → callee keys
	spans map[string][]funcSpan // abs source file → declared functions
	pkgOf map[string]*Package   // decl key → owning package
}

func buildHotCallGraph(pkgs []*Package) *hotCallGraph {
	g := &hotCallGraph{
		edges: map[string][]string{},
		spans: map[string][]funcSpan{},
		pkgOf: map[string]*Package{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKeyOf(fn)
				g.pkgOf[key] = pkg
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				g.spans[start.Filename] = append(g.spans[start.Filename],
					funcSpan{start: start.Line, end: end.Line, key: key, display: funcDisplay(pkg, fd)})
				// Callees: every identifier resolving to a function,
				// including method selections and function values taken
				// by reference. Closures belong to the enclosing decl.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if callee, ok := pkg.Info.Uses[id].(*types.Func); ok {
						g.edges[key] = append(g.edges[key], funcKeyOf(callee))
					}
					return true
				})
			}
		}
	}
	return g
}

// reachableFrom walks the call graph from the root keys.
func (g *hotCallGraph) reachableFrom(roots []string) map[string]bool {
	seen := map[string]bool{}
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		if seen[k] {
			continue
		}
		seen[k] = true
		queue = append(queue, g.edges[k]...)
	}
	return seen
}

// allocSite is one deduplicated compiler-reported heap allocation.
type allocSite struct {
	file    string
	line    int
	col     int
	message string
	display string // enclosing function, "" when outside any decl
	key     string
}

// escapeDump drives `go build -gcflags=-json=0,<dir>` over the given
// import paths and parses every emitted diagnostic file. A build
// failure, an empty dump or an unparsable line is an error.
func escapeDump(dir string, paths []string) ([]allocSite, error) {
	tmp, err := os.MkdirTemp("", "bgr-hotalloc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	args := append([]string{"build", "-gcflags=-json=0," + tmp}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build for escape analysis failed: %v\n%s", err, stderr.String())
	}
	var sites []allocSite
	files := 0
	err = filepath.Walk(tmp, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		files++
		s, perr := parseEscapeDump(path)
		if perr != nil {
			return perr
		}
		sites = append(sites, s...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if files == 0 {
		return nil, fmt.Errorf("go build succeeded but emitted no escape-analysis dump under %s: compiler -json support missing?", tmp)
	}
	return sites, nil
}

// parseEscapeDump reads one per-source-file compiler diagnostic dump.
// The first line is a header carrying the source file path; every later
// line is one LSP-style diagnostic.
func parseEscapeDump(path string) ([]allocSite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sites []allocSite
	srcFile := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for lineno := 1; sc.Scan(); lineno++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if lineno == 1 {
			var hdr struct {
				Version *int   `json:"version"`
				File    string `json:"file"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Version == nil || hdr.File == "" {
				return nil, fmt.Errorf("%s:1: unparsable escape-dump header: %v", path, err)
			}
			srcFile = hdr.File
			continue
		}
		var d struct {
			Range struct {
				Start struct {
					Line      int `json:"line"`
					Character int `json:"character"`
				} `json:"start"`
			} `json:"range"`
			Code    any    `json:"code"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(line, &d); err != nil {
			return nil, fmt.Errorf("%s:%d: unparsable escape-dump diagnostic: %v", path, lineno, err)
		}
		code, _ := d.Code.(string)
		if code != "escape" && code != "escapes" && code != "leak" {
			continue
		}
		if !strings.Contains(d.Message, "escapes to heap") && !strings.Contains(d.Message, "moved to heap") {
			continue
		}
		sites = append(sites, allocSite{
			file:    srcFile,
			line:    d.Range.Start.Line,
			col:     d.Range.Start.Character + 1,
			message: d.Message,
		})
	}
	return sites, sc.Err()
}

// allowEntry is one parsed hotalloc allowlist line:
//
//	<pkg>.<func> :: <message substring or *> -- <reason>
type allowEntry struct {
	file    string
	line    int
	fn      string
	pattern string
	used    bool
}

func loadAllowlist(path string) ([]*allowEntry, []Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("hotalloc allowlist: %w", err)
	}
	var entries []*allowEntry
	var diags []Diagnostic
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pos := func() Diagnostic {
			return Diagnostic{Pos: positionAt(path, i+1), Analyzer: "hotalloc"}
		}
		body, _, okReason := strings.Cut(line, " -- ")
		fn, pattern, okSep := strings.Cut(body, " :: ")
		fn, pattern = strings.TrimSpace(fn), strings.TrimSpace(pattern)
		if !okReason || !okSep || fn == "" || pattern == "" {
			d := pos()
			d.Message = fmt.Sprintf("malformed allowlist entry %s: want <pkg>.<func> :: <message substring or *> -- <reason>", quoteDirective(line))
			diags = append(diags, d)
			continue
		}
		entries = append(entries, &allowEntry{file: path, line: i + 1, fn: fn, pattern: pattern})
	}
	return entries, diags, nil
}

func (e *allowEntry) covers(s allocSite) bool {
	return e.fn == s.display && (e.pattern == "*" || strings.Contains(s.message, e.pattern))
}

func positionAt(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

// SuggestAllowlist runs the hotalloc pipeline and renders one candidate
// allowlist line per surviving site, for `bgr-vet -suggest-allow` and
// the CI failure diff.
func SuggestAllowlist(ctx *Context, pkgs []*Package) ([]string, error) {
	sites, _, _, err := hotSites(ctx, pkgs)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range sites {
		line := fmt.Sprintf("%s :: %s -- TODO: justify or remove this allocation", s.display, s.message)
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return out, nil
}

// hotSites is the shared front half of the pipeline: annotation
// validation, call graph, compile, dump parse, reachability filter.
// It returns the allocation sites inside hot-reachable functions, the
// annotation diagnostics, and whether a compile actually ran (it is
// skipped entirely when no bgr:hot root exists, e.g. in fixtures for
// the other analyzers).
func hotSites(ctx *Context, pkgs []*Package) ([]allocSite, []Diagnostic, bool, error) {
	var diags []Diagnostic
	var roots []string
	for _, pkg := range pkgs {
		fns, bad := hotFuncs(pkg)
		diags = append(diags, bad...)
		for fn := range fns {
			roots = append(roots, funcKeyOf(fn))
		}
	}
	if len(roots) == 0 {
		return nil, diags, false, nil
	}
	sort.Strings(roots)
	g := buildHotCallGraph(pkgs)
	reachable := g.reachableFrom(roots)
	pathSet := map[string]bool{}
	for key := range reachable {
		if pkg := g.pkgOf[key]; pkg != nil {
			pathSet[pkg.ImportPath] = true
		}
	}
	paths := make([]string, 0, len(pathSet))
	for p := range pathSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	dir := ctx.Dir
	if dir == "" {
		dir = "."
	}
	raw, err := escapeDump(dir, paths)
	if err != nil {
		return nil, nil, false, err
	}
	dedup := map[string]bool{}
	var sites []allocSite
	for _, s := range raw {
		for _, span := range g.spans[s.file] {
			if s.line >= span.start && s.line <= span.end {
				s.display, s.key = span.display, span.key
				break
			}
		}
		if s.key == "" || !reachable[s.key] {
			continue
		}
		id := fmt.Sprintf("%s:%d:%s", s.file, s.line, s.message)
		if dedup[id] {
			continue
		}
		dedup[id] = true
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.message < b.message
	})
	return sites, diags, true, nil
}

func runHotAlloc(ctx *Context, pkgs []*Package) ([]Diagnostic, error) {
	sites, diags, ran, err := hotSites(ctx, pkgs)
	if err != nil {
		return nil, err
	}
	if !ran {
		// No bgr:hot roots → no compile → the allowlist (if any) has
		// nothing to be checked against; only annotation diagnostics.
		return diags, nil
	}
	var entries []*allowEntry
	if ctx.Allowlist != "" {
		var bad []Diagnostic
		entries, bad, err = loadAllowlist(ctx.Allowlist)
		if err != nil {
			return nil, err
		}
		diags = append(diags, bad...)
	}
	for _, s := range sites {
		allowed := false
		for _, e := range entries {
			if e.covers(s) {
				e.used = true
				allowed = true
			}
		}
		if allowed {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: s.file, Line: s.line, Column: s.col},
			Analyzer: "hotalloc",
			Message: fmt.Sprintf("heap allocation in hot path: %s in %s (reachable from a bgr:hot entry point); pool or hoist it, or add a reasoned allowlist entry",
				s.message, s.display),
		})
	}
	for _, e := range entries {
		if !e.used {
			diags = append(diags, Diagnostic{
				Pos:      positionAt(e.file, e.line),
				Analyzer: "hotalloc",
				Message:  fmt.Sprintf("stale hotalloc allowlist entry for %s: no reachable allocation matches %q anymore; delete the line", e.fn, e.pattern),
			})
		}
	}
	return diags, nil
}
