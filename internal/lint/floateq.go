package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerFloatEq flags == and != between floating-point operands in the
// deterministic packages. The selection criteria (§3.4/§3.5) order
// candidates through documented comparison keys with an fEps tolerance;
// a raw float equality in a tie-break resolves differently depending on
// summation order and optimization level, which is exactly the kind of
// silent nondeterminism the suite exists to catch. Exact sentinel
// comparisons (e.g. dgraph's -Inf "unreached" labels) are legitimate —
// suppress them with //bgr:allow floateq -- <why the comparison is exact>.
var analyzerFloatEq = &Analyzer{
	Name:              "floateq",
	Doc:               "flags ==/!= on floating-point operands in deterministic packages",
	DeterministicOnly: true,
	Run: func(pkg *Package) []Diagnostic {
		var out []Diagnostic
		isFloat := func(e ast.Expr) bool {
			t := pkg.Info.TypeOf(e)
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsFloat != 0
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(be.X) || isFloat(be.Y) {
					out = append(out, pkg.diag(be.OpPos, "floateq",
						"floating-point %s comparison: use an epsilon tolerance (fEps) or an integer comparison key", be.Op))
				}
				return true
			})
		}
		return out
	},
}
