package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Annotation directives mark the code the ownership analyzers enforce:
//
//	bgr:hot   — on a function declaration: the function is a hot-path
//	            entry point; hotalloc forbids unallowlisted heap
//	            allocations in everything reachable from it.
//	bgr:owned — on a struct field of slice (or array) type: the field is
//	            a scratch buffer or view owned by that struct;
//	            scratch-escape forbids it leaking out of its owner.
//
// Both are written as comments ("//" + the directive), either trailing
// on the annotated line or inside the declaration's doc comment, and
// optionally carry a note after " -- ". A directive that is malformed
// or not attached to the right kind of declaration is itself a
// diagnostic — annotations must not rot into silent no-ops.

const (
	hotPrefix   = "//bgr:hot"
	ownedPrefix = "//bgr:owned"
)

var annotRE = regexp.MustCompile(`^//bgr:(hot|owned)(?:\s+--\s+\S.*)?$`)

// annotComments yields the well-formed annotation comments of a file
// matching the given prefix, reporting malformed ones (right prefix,
// wrong grammar) under the given analyzer name.
func annotComments(pkg *Package, f *ast.File, prefix, analyzer string) ([]*ast.Comment, []Diagnostic) {
	var out []*ast.Comment
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimRight(c.Text, " \t")
			if !strings.HasPrefix(text, prefix) {
				continue
			}
			if !annotRE.MatchString(text) {
				bad = append(bad, Diagnostic{Pos: pkg.Fset.Position(c.Pos()), Analyzer: analyzer,
					Message: "malformed annotation " + quoteDirective(text) + ": want " + prefix + " or " + prefix + " -- <note>"})
				continue
			}
			out = append(out, c)
		}
	}
	return out, bad
}

func quoteDirective(text string) string {
	if len(text) > 60 {
		text = text[:60] + "..."
	}
	return "\"" + text + "\""
}

// hotFuncs collects the bgr:hot annotated functions of a package. The
// annotation must sit in a function declaration's doc comment or on the
// declaration's first line; anywhere else it would silently guard
// nothing, so it is reported.
func hotFuncs(pkg *Package) (map[*types.Func]bool, []Diagnostic) {
	out := map[*types.Func]bool{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		attach := map[int]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			attach[pkg.Fset.Position(fd.Pos()).Line] = fd
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					attach[pkg.Fset.Position(c.Pos()).Line] = fd
				}
			}
		}
		comments, bad := annotComments(pkg, f, hotPrefix, "hotalloc")
		diags = append(diags, bad...)
		for _, c := range comments {
			pos := pkg.Fset.Position(c.Pos())
			fd := attach[pos.Line]
			if fd == nil {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: "hotalloc",
					Message: "bgr:hot is not attached to a function declaration: put it in the function's doc comment or on its first line"})
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out, diags
}

// ownedFields collects the bgr:owned annotated struct fields of a
// package. The annotation must sit on a struct field's line (or its doc
// line), and the field must be slice- or array-typed — ownership of a
// scalar is meaningless, and a silent no-op annotation is worse than
// none.
func ownedFields(pkg *Package) (map[*types.Var]bool, []Diagnostic) {
	out := map[*types.Var]bool{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		attach := map[int]*ast.Field{}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				attach[pkg.Fset.Position(field.Pos()).Line] = field
				if field.Doc != nil {
					for _, c := range field.Doc.List {
						attach[pkg.Fset.Position(c.Pos()).Line] = field
					}
				}
				if field.Comment != nil {
					for _, c := range field.Comment.List {
						attach[pkg.Fset.Position(c.Pos()).Line] = field
					}
				}
			}
			return true
		})
		comments, bad := annotComments(pkg, f, ownedPrefix, "scratch-escape")
		diags = append(diags, bad...)
		for _, c := range comments {
			pos := pkg.Fset.Position(c.Pos())
			field := attach[pos.Line]
			if field == nil {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: "scratch-escape",
					Message: "bgr:owned is not attached to a struct field: put it on the field's line or in its doc comment"})
				continue
			}
			t := pkg.Info.TypeOf(field.Type)
			if t == nil || !sliceOrArray(t) {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: "scratch-escape",
					Message: "bgr:owned field must be slice- or array-typed: ownership tracking is about backing arrays, not scalar copies"})
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	return out, diags
}

func sliceOrArray(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
