// Fixture for the floateq analyzer: the package is named "dgraph" so the
// deterministic-only analyzers treat it as part of the routing core.
package dgraph

const eps = 1e-9

func eq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func neq(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

// closeEnough is the sanctioned epsilon form: clean.
func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// intEq compares integers: clean.
func intEq(a, b int) bool { return a == b }
