// Fixture for the scratch-escape analyzer: the package is named "rgraph"
// so the deterministic-only analyzers run, and the ws struct mirrors the
// per-graph dijkstra workspace whose slices must never outlive it.
package rgraph

type ws struct {
	// dist is the per-vertex relaxation scratch.
	//bgr:owned
	dist []float64
	//bgr:owned -- CSR view rows into one backing array
	rows []int32
	// cap is plain state, not scratch: untracked.
	cap int
}

type stash struct {
	kept []int32
	mine []float64 //bgr:owned
}

// grow is the sanctioned self-append pattern: the result goes back into
// the same storage, so existing views stay coherent or are rebuilt by
// the owner itself.
func (w *ws) grow(n int) {
	for len(w.rows) < n {
		w.rows = append(w.rows, 0)
	}
}

// fill only writes elements in place: clean.
func (w *ws) fill(v float64) {
	for i := range w.dist {
		w.dist[i] = v
	}
}

// snapshot copies out of the scratch — the slice handed back owns its
// own array, so this is clean.
func (w *ws) snapshot() []float64 {
	out := make([]float64, len(w.dist))
	copy(out, w.dist)
	return out
}

func (w *ws) lend() []float64 {
	return w.dist // want "owned scratch .dist. of ws returned from lend"
}

func (w *ws) lendView(a, b int) []int32 {
	v := w.rows[a:b]
	return v // want "owned scratch .v. of ws returned from lendView"
}

// lendLoan is the documented-loan escape hatch: suppressed with a reason.
func (w *ws) lendLoan() []float64 {
	//bgr:allow scratch-escape -- loan documented: valid until the next fill
	return w.dist
}

func (w *ws) give(s *stash) {
	s.kept = w.rows[:2] // want "owned scratch .rows. of ws stored into field stash.kept"
}

// keep writes a view into the owner's own field: clean by the same-owner
// rule.
func (w *ws) keep(a, b int) {
	w.rows = w.rows[a:b]
}

func (w *ws) spawn(done chan struct{}) {
	go func() {
		_ = w.dist[0] // want "owned scratch .dist. of ws referenced by a goroutine in spawn"
		close(done)
	}()
}

func (w *ws) rebind() []int32 {
	grown := append(w.rows, 7) // want "append to owned scratch .rows. of ws rebound to grown"
	return grown
}

// retaint checks the taint flow: v aliases the scratch, escapes via
// return; u is re-bound to a fresh array first, so it is clean.
func (w *ws) retaint(fresh []float64) ([]float64, []float64) {
	v := w.dist[1:]
	u := w.dist[1:]
	u = fresh
	return v, u // want "owned scratch .v. of ws returned from retaint"
}
