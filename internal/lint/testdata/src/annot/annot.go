// Fixture for annotation rot: every bgr:hot / bgr:owned directive in
// this file is malformed or misattached, and each one must surface as a
// diagnostic instead of silently guarding nothing. The expectations live
// in TestAnnotationRot (substring assertions, not // want comments: the
// diagnostics land on the directive lines themselves, where a trailing
// want comment would change the directive text).
package core

type ws struct {
	// capacity is scalar bookkeeping, not a loanable buffer, so the
	// annotation below must be rejected.
	//
	//bgr:owned
	capacity int

	buf []byte
}

//bgr:hot now
func almostHot() {}

func body() int {
	//bgr:hot
	return 0
}

//bgr:owned stuff
var global []int

func stray() int {
	//bgr:owned
	return 1
}

var _ = ws{}
var _ = almostHot
var _ = body
var _ = global
var _ = stray
