// Fixture for the epochs analyzer's shard-round rule: the package is
// named "core" so the deterministic-only analyzers run, and the
// receivers are named "shardState" and "router" so the rule engages.
package core

type cand struct{ net, edge int32 }

type shardState struct {
	staleLog []int32
	revalLog []int32
	topK     [8]cand
	nTop     int
	order    []int32
}

type router struct {
	shardSt []*shardState
	revBits []uint64
}

// newRouter lays the shard scratch and the revised bitset out;
// initializers are sanctioned.
func newRouter(nets, shards int) *router {
	r := &router{revBits: make([]uint64, (nets+63)/64)}
	for i := 0; i < shards; i++ {
		s := &shardState{staleLog: make([]int32, 0, nets)}
		s.revalLog = make([]int32, 0, nets)
		r.shardSt = append(r.shardSt, s)
	}
	return r
}

// scanShard is the owning per-shard scan; all the log and top-k writes
// here are sanctioned.
func (r *router) scanShard(s *shardState) {
	s.nTop = 0
	s.staleLog = s.staleLog[:0]
	s.revalLog = append(s.revalLog[:0], 3)
	s.topK[0] = cand{net: 3}
	s.nTop++
}

// markRevised and clearRevised own the revised-net bitset.
func (r *router) markRevised(n int) {
	r.revBits[n>>6] |= 1 << (uint(n) & 63)
}

func (r *router) clearRevised() {
	for w := range r.revBits {
		r.revBits[w] = 0
	}
}

// merge only reads the shard state and writes a non-guarded field:
// clean.
func (r *router) merge(s *shardState) int32 {
	s.order = append(s.order[:0], 1)
	if s.nTop == 0 {
		return -1
	}
	return s.topK[0].net
}

func (r *router) stealTop(s *shardState) {
	s.nTop = 0 // want "write to shard-round field .nTop. outside a shard-owned scan/mark/clear/drain method \(stealTop\)"
}

func (r *router) patchLog(s *shardState) {
	s.staleLog = nil // want "write to shard-round field .staleLog. outside a shard-owned scan/mark/clear/drain method \(patchLog\)"
}

func (r *router) pokeTopK(s *shardState) {
	s.topK[1] = cand{} // want "write to shard-round field .topK. outside a shard-owned scan/mark/clear/drain method \(pokeTopK\)"
}

func (r *router) reviseInline(n int) {
	r.revBits[n>>6] |= 1 << (uint(n) & 63) // want "write to shard-round field .revBits. outside a shard-owned scan/mark/clear/drain method \(reviseInline\)"
}
