// Fixture for the clockuse analyzer: the package is named "core" so the
// deterministic-only analyzers treat it as part of the routing core.
package core

import (
	"math/rand"
	"time"
)

func stamp() time.Duration {
	start := time.Now()      // want "time\.Now in a deterministic package"
	return time.Since(start) // want "time\.Since in a deterministic package"
}

func jitter() int {
	return rand.Intn(4) // want "math/rand\.Intn in a deterministic package"
}

// scale only computes on an existing duration — no clock read: clean.
func scale(d time.Duration) float64 { return d.Seconds() }
