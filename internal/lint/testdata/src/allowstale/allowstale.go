// Fixture for directive rot: a suppression that no longer suppresses
// anything, one naming an unknown analyzer, and one missing the
// " -- reason" separator must each surface as an "allow" diagnostic.
package core

//bgr:allow maporder -- nothing here ranges a map any more
func fine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//bgr:allow notananalyzer -- no analyzer has this name
var a = 1

//bgr:allow floateq missing the reason separator
var b = 2
