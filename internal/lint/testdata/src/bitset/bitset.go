// Fixture for the epochs analyzer's dirty-net bitset rule: the package
// is named "core" so the deterministic-only analyzers run, and the
// receiver is named "router" so the rule engages.
package core

type router struct {
	dirtyBest   []uint64
	chanNetBits [][]uint64
	netChans    [][]int
	lastOrd     bool
}

// newRouter lays out the bitsets; initializers are sanctioned.
func newRouter(nets, chans int) *router {
	r := &router{dirtyBest: make([]uint64, (nets+63)/64)}
	r.chanNetBits = make([][]uint64, chans)
	for ch := range r.chanNetBits {
		r.chanNetBits[ch] = make([]uint64, len(r.dirtyBest))
	}
	return r
}

// markBestDirty is an owning mark method; the write is sanctioned.
func (r *router) markBestDirty(n int) {
	r.dirtyBest[n>>6] |= 1 << (uint(n) & 63)
}

// clearBestDirty is an owning clear method; the write is sanctioned.
func (r *router) clearBestDirty(n int) {
	r.dirtyBest[n>>6] &^= 1 << (uint(n) & 63)
}

// drainChanges consumes the pending channel changes; drains are
// sanctioned.
func (r *router) drainChanges(changed []int) {
	for _, ch := range changed {
		for w, m := range r.chanNetBits[ch] {
			r.dirtyBest[w] |= m
		}
	}
}

func (r *router) selectShortcut(n int) {
	r.dirtyBest[n>>6] &^= 1 << (uint(n) & 63) // want "write to dirty-net bitset field .dirtyBest. outside a mark/clear/drain method \(selectShortcut\)"
}

func (r *router) rebuildChans(n int, chans []int) {
	for _, ch := range chans {
		r.chanNetBits[ch][n>>6] |= 1 << (uint(n) & 63) // want "write to dirty-net bitset field .chanNetBits. outside a mark/clear/drain method \(rebuildChans\)"
	}
	r.netChans[n] = chans
}

// Pending only reads the bitset: clean.
func (r *router) Pending(n int) bool {
	return r.dirtyBest[n>>6]&(1<<(uint(n)&63)) != 0
}

// other has the same field names on a different receiver: the rule is
// receiver-scoped, so this stays clean.
type other struct{ dirtyBest []uint64 }

func (o *other) lazy(n int) { o.dirtyBest[n>>6] = 0 }
