// Fixture for the poolpair analyzer, which runs in every package (the
// name deliberately stays outside the deterministic set).
package poolpair

import "sync"

type obj struct {
	n   int
	buf []byte
}

func (o *obj) Reset() { o.n = 0; o.buf = o.buf[:0] }

var pool = sync.Pool{New: func() any { return new(obj) }}

func use(o *obj)   {}
func useLen(n int) {}
func sink(o *obj)  {}
func cond() bool   { return false }

// deferred pairs the Put right after the acquire: clean.
func deferred() int {
	o := pool.Get().(*obj)
	defer pool.Put(o)
	o.Reset()
	use(o)
	return o.n
}

// sequential resets, uses and releases with no return between: clean.
func sequential() {
	o := pool.Get().(*obj)
	o.n = 0
	use(o)
	pool.Put(o)
}

func unpaired() {
	o := pool.Get().(*obj) // want "pool\.Get\(\) without a paired pool\.Put on every return path"
	o.Reset()
	use(o)
}

func putAfterReturn() int {
	o := pool.Get().(*obj) // want "pool\.Get\(\) without a paired pool\.Put on every return path"
	o.Reset()
	if cond() {
		return 0
	}
	pool.Put(o)
	return o.n
}

func unreset() {
	o := pool.Get().(*obj)
	defer pool.Put(o)
	use(o) // want "pooled object .o. escapes before a reset"
}

func aliased() {
	o := pool.Get().(*obj)
	defer pool.Put(o)
	p := o // want "pooled object .o. escapes before a reset"
	p.Reset()
}

// readsOnly reads fields before the reset — reads cannot leak the
// pointer, so this stays clean.
func readsOnly() {
	o := pool.Get().(*obj)
	defer pool.Put(o)
	useLen(o.n)
	o.Reset()
	use(o)
}

func leak() *obj {
	return pool.Get().(*obj) // want "pooled object returned straight from pool\.Get\(\)"
}

// handover is the sanctioned constructor shape: ownership transfers to
// the caller, and the paired release is a named counterpart.
func handover() *obj {
	//bgr:allow poolpair -- ownership transfers to the caller; release() is the paired Put
	return pool.Get().(*obj)
}

func release(o *obj) { pool.Put(o) }
