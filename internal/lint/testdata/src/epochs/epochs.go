// Fixture for the epochs analyzer: the package is named "core" so the
// deterministic-only analyzers treat it as part of the routing core.
package core

type state struct {
	geoEpoch []int
	version  int
}

// touchGeo is the owning bump method; the write here is sanctioned.
func (s *state) touchGeo(n int) { s.geoEpoch[n]++ }

// newState is an initializer; laying out the counters is sanctioned.
func newState(n int) *state { return &state{geoEpoch: make([]int, n)} }

func (s *state) skipCache(n int) {
	s.geoEpoch[n]++ // want "write to epoch field .geoEpoch. outside a bump/invalidate method \(skipCache\)"
}

func (s *state) stamp() {
	s.version = 7 // want "write to epoch field .version. outside a bump/invalidate method \(stamp\)"
}

// read only inspects the counters: clean.
func (s *state) read(n int) int { return s.geoEpoch[n] + s.version }
