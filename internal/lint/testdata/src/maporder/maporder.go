// Fixture for the maporder analyzer: the package is named "core" so the
// deterministic-only analyzers treat it as part of the routing core.
package core

import "sort"

// sortedSum shows the flagged form and its fix side by side: the key
// collection still ranges the map (flagged), the summation walks the
// sorted key slice (clean).
func sortedSum(m map[int]int) int {
	keys := make([]int, 0, len(m))
	for k := range m { // want "range over map\[int\]int"
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// lookup indexes a map without ranging it: clean.
func lookup(m map[string]int, key string) int { return m[key] }
