// Fixture for the hotalloc analyzer: the package is named "core" so it
// counts as deterministic, and the helpers are //go:noinline so the
// compiler attributes each allocation to its own body line instead of
// folding it into the caller.
package core

var sink []int

//go:noinline
func fill(n int) {
	buf := make([]int, n) // want "heap allocation in hot path: .* escapes to heap"
	sink = buf
}

// hotLoop is the fixture's hot entry point: everything reachable from
// here must be allocation-free or explicitly suppressed.
//
//bgr:hot
func hotLoop(n int) {
	fill(n)
	hotAllowed(n)
}

//go:noinline
func hotAllowed(n int) {
	//bgr:allow hotalloc -- fixture: demonstrates inline suppression of a proven hot allocation
	sink = append(sink, make([]int, n)...)
}

// coldSetup allocates too, but is not reachable from any bgr:hot entry
// point: clean.
func coldSetup(n int) {
	sink = make([]int, n)
}
