// Fixture for the locks analyzer, which runs in every package (the name
// deliberately stays outside the deterministic set).
package locksfix

import "sync"

type box struct {
	mu  sync.Mutex
	val int
}

func byValue(mu sync.Mutex) { // want "sync\.Mutex passed by value"
	mu.Lock()
	defer mu.Unlock()
}

func copied(b *box) {
	mu := b.mu // want "sync\.Mutex copied by value"
	_ = &mu
}

func unpaired(b *box) int {
	b.mu.Lock() // want "b\.mu\.Lock\(\) without a paired Unlock"
	if b.val > 0 {
		return b.val
	}
	b.mu.Unlock()
	return 0
}

// paired defers the release right after the acquire: clean.
func paired(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

// sequential releases explicitly with no return in between: clean.
func sequential(b *box) {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
}
