// Fixture for the epochs analyzer's dirty-set rule: the package is named
// "dgraph" so the deterministic-only analyzers treat it as part of the
// timing core, and the receiver is named "Timing" so the rule engages.
package dgraph

type Timing struct {
	dirty      []bool
	dirtyCount int
	margins    []float64
}

// NewTiming is an initializer; laying out the dirty set is sanctioned.
func NewTiming(n int) *Timing { return &Timing{dirty: make([]bool, n)} }

// MarkNet is an owning mark method; the writes here are sanctioned.
func (t *Timing) MarkNet(p int) {
	if !t.dirty[p] {
		t.dirty[p] = true
		t.dirtyCount++
	}
}

// Flush is the owning flush method; clearing the flags is sanctioned.
func (t *Timing) Flush() {
	for p := range t.dirty {
		t.dirty[p] = false
	}
	t.dirtyCount = 0
}

func (t *Timing) analyzeShortcut(p int) {
	t.dirty[p] = false // want "write to dirty-set field .dirty. outside a mark/flush method \(analyzeShortcut\)"
	t.margins[p] = 0
}

func (t *Timing) skipAnalysis() {
	t.dirtyCount = 0 // want "write to dirty-set field .dirtyCount. outside a mark/flush method \(skipAnalysis\)"
}

// Pending only inspects the bookkeeping: clean.
func (t *Timing) Pending() int { return t.dirtyCount }

// other has a dirty field on a non-Timing receiver: the rule is
// receiver-scoped, so the lazy clear below stays clean.
type other struct{ dirty []bool }

func (o *other) lazyClear(i int) { o.dirty[i] = false }
