// Fixture for well-formed //bgr:allow suppressions: every diagnostic in
// this file is suppressed, once by a trailing same-line directive and
// once by a directive on the line directly above, so the suite must
// report nothing at all.
package core

import "time"

func profile(f func()) time.Duration {
	start := time.Now() //bgr:allow clockuse -- fixture: profiling-only read, result never steers routing
	f()
	return time.Since(start) //bgr:allow clockuse -- fixture: profiling-only read, result never steers routing
}

func sum(m map[int]int) int {
	total := 0
	//bgr:allow maporder -- fixture: summation is order-independent
	for _, v := range m {
		total += v
	}
	return total
}
