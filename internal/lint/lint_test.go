package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one package under testdata/src. The fixtures reuse
// deterministic package names (core, dgraph, ...) so the
// DeterministicOnly analyzers run on them; go list only sees them through
// the explicit directory pattern, never through ./... sweeps.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

// want is one `// want "regex"` expectation parsed from a fixture file.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// collectWants parses the expectations of every .go file in a fixture
// directory. The regex in the comment must match the diagnostic message
// reported on that same line.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), line, m[1], err)
			}
			wants = append(wants, &want{file: e.Name(), line: line, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture applies the full suite to one fixture package. The Context
// points Dir at this directory so the hotalloc fixture can compile; the
// other fixtures have no bgr:hot roots and skip the compile entirely.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	diags, err := Run(&Context{Dir: "."}, loadFixture(t, name), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestFixtures runs the full suite over each analyzer's golden fixture
// and requires an exact match between the reported diagnostics and the
// `// want` expectations: every diagnostic must be expected, every
// expectation must fire, and the clean declarations must stay silent.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"maporder", "floateq", "clockuse", "epochs", "dirtyset", "locks", "scratch", "poolpair", "bitset", "shardstate", "hotalloc"} {
		t.Run(name, func(t *testing.T) {
			diags := runFixture(t, name)
			wants := collectWants(t, filepath.Join("testdata", "src", name))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want expectations", name)
			}
		outer:
			for _, d := range diags {
				for _, w := range wants {
					if !w.hit && filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
						w.hit = true
						continue outer
					}
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestAllowSuppresses checks both directive placements (trailing on the
// flagged line, and on the line directly above): a well-formed, reasoned
// //bgr:allow must silence the finding completely.
func TestAllowSuppresses(t *testing.T) {
	diags := runFixture(t, "allowok")
	for _, d := range diags {
		t.Errorf("suppressed fixture still reports: %s", d)
	}
}

// TestAllowRot checks that directive rot is itself an error: a stale
// suppression, one naming an unknown analyzer, and a malformed one must
// each produce an "allow" diagnostic — and nothing else.
func TestAllowRot(t *testing.T) {
	diags := runFixture(t, "allowstale")
	expect := []string{"stale suppression", "unknown analyzer", "malformed suppression"}
	var unmatched []Diagnostic
outer:
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("unexpected non-allow diagnostic: %s", d)
			continue
		}
		for i, sub := range expect {
			if sub != "" && strings.Contains(d.Message, sub) {
				expect[i] = ""
				continue outer
			}
		}
		unmatched = append(unmatched, d)
	}
	for _, sub := range expect {
		if sub != "" {
			t.Errorf("no allow diagnostic mentioning %q (got %v)", sub, diags)
		}
	}
	for _, d := range unmatched {
		t.Errorf("extra allow diagnostic: %s", d)
	}
}

// TestLoadCache pins the per-process load memoization: repeating the
// same (dir, patterns) request must return the identical packages, not a
// re-parsed copy, so fixture-heavy test runs pay for go list and the
// type checker once per distinct request.
func TestLoadCache(t *testing.T) {
	first := loadFixture(t, "maporder")
	second := loadFixture(t, "maporder")
	if first[0] != second[0] {
		t.Fatalf("repeated Load returned a fresh package: %p vs %p", first[0], second[0])
	}
	if first[0].Fset != second[0].Fset {
		t.Fatal("repeated Load rebuilt the shared FileSet")
	}
}

// TestDiagnosticString pins the file:line:col: analyzer: message rendering
// the CI log and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "maporder", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got, wantS := d.String(), "x.go:3:7: maporder: boom"; got != wantS {
		t.Fatalf("String() = %q, want %q", got, wantS)
	}
}

// TestRepositoryClean is the acceptance gate: the real tree must come out
// of the full suite with zero diagnostics (CI runs the same check via
// `go run ./cmd/bgr-vet ./...`).
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	ctx := &Context{Dir: "../..", Allowlist: "hotalloc_allow.txt"}
	diags, err := Run(ctx, pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Fatalf("repository is not vet-clean:\n%s", fmt.Sprint(strings.Join(msgs, "\n")))
	}
}
