package density_test

import (
	"fmt"

	"repro/internal/density"
)

// ExampleState shows the §3.3 parameters for a channel with two wires,
// one of which is a bridge (unremovable).
func ExampleState() {
	s := density.New(1, 12)
	s.Add(0, 0, 10, 1)      // a long trunk
	s.Add(0, 3, 7, 1)       // a shorter one on top
	s.AddBridge(0, 3, 7, 1) // ... that happens to be a bridge
	st := s.Channel(0)
	fmt.Printf("C_M=%d NC_M=%d C_m=%d NC_m=%d\n", st.CM, st.NCM, st.Cm, st.NCm)
	e := s.Edge(0, 3, 7)
	fmt.Printf("D_M=%d ND_M=%d\n", e.DM, e.NDM)
	// Output:
	// C_M=2 NC_M=4 C_m=1 NC_m=4
	// D_M=2 ND_M=4
}
