package density

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddRemoveRoundTrip(t *testing.T) {
	s := New(3, 10)
	s.Add(1, 2, 7, 1)
	s.Add(1, 4, 9, 2)
	st := s.Channel(1)
	if st.CM != 3 {
		t.Fatalf("CM = %d, want 3 (overlap of weight 1 and 2)", st.CM)
	}
	if st.NCM != 3 { // columns 4,5,6
		t.Fatalf("NCM = %d, want 3", st.NCM)
	}
	s.Remove(1, 4, 9, 2)
	s.Remove(1, 2, 7, 1)
	st = s.Channel(1)
	if st.CM != 0 || st.Cm != 0 {
		t.Fatalf("after full removal CM=%d Cm=%d, want 0", st.CM, st.Cm)
	}
}

func TestHalfOpenIntervals(t *testing.T) {
	s := New(1, 10)
	// Two abutting edges of one net: columns [2,5) and [5,8) must not
	// double count at column 5.
	s.Add(0, 2, 5, 1)
	s.Add(0, 5, 8, 1)
	if got := s.ProfileM(0); !reflect.DeepEqual(got, []int{0, 0, 1, 1, 1, 1, 1, 1, 0, 0}) {
		t.Fatalf("profile = %v", got)
	}
	if st := s.Channel(0); st.CM != 1 {
		t.Fatalf("CM = %d, want 1", st.CM)
	}
}

func TestReversedIntervalNormalized(t *testing.T) {
	s := New(1, 10)
	s.Add(0, 7, 3, 1)
	if st := s.Channel(0); st.CM != 1 || st.NCM != 4 {
		t.Fatalf("reversed interval: CM=%d NCM=%d, want 1,4", st.CM, st.NCM)
	}
	s.Remove(0, 3, 7, 1)
	if st := s.Channel(0); st.CM != 0 {
		t.Fatal("remove with normalized interval failed")
	}
}

func TestBridgeProfileSeparate(t *testing.T) {
	s := New(1, 8)
	s.Add(0, 0, 8, 1)
	s.Add(0, 2, 6, 1)
	s.AddBridge(0, 2, 6, 1) // the inner edge is a bridge
	st := s.Channel(0)
	if st.CM != 2 || st.Cm != 1 {
		t.Fatalf("CM=%d Cm=%d, want 2,1", st.CM, st.Cm)
	}
	if st.NCm != 4 {
		t.Fatalf("NCm = %d, want 4", st.NCm)
	}
	s.RemoveBridge(0, 2, 6, 1)
	if st := s.Channel(0); st.Cm != 0 {
		t.Fatal("bridge removal not reflected")
	}
}

func TestEdgeStats(t *testing.T) {
	s := New(1, 10)
	s.Add(0, 0, 10, 1)
	s.Add(0, 3, 7, 2)
	s.AddBridge(0, 0, 10, 1)
	// Channel: CM=3 on columns 3..6, Cm=1 everywhere.
	es := s.Edge(0, 3, 7)
	if es.DM != 3 || es.NDM != 4 {
		t.Fatalf("inner edge DM=%d NDM=%d, want 3,4", es.DM, es.NDM)
	}
	if es.Dm != 1 || es.NDm != 4 {
		t.Fatalf("inner edge Dm=%d NDm=%d, want 1,4", es.Dm, es.NDm)
	}
	es = s.Edge(0, 0, 2)
	if es.DM != 1 || es.NDM != 0 {
		t.Fatalf("outer edge DM=%d NDM=%d, want 1,0", es.DM, es.NDM)
	}
}

func TestZeroLengthEdgeReadsSingleColumn(t *testing.T) {
	s := New(1, 10)
	s.Add(0, 4, 6, 3)
	es := s.Edge(0, 5, 5)
	if es.DM != 3 {
		t.Fatalf("point edge DM = %d, want 3", es.DM)
	}
	es = s.Edge(0, 0, 0)
	if es.DM != 0 {
		t.Fatalf("point edge off the wire DM = %d, want 0", es.DM)
	}
	// A point read at the right boundary clamps inside the chip.
	if es := s.Edge(0, 10, 10); es.DM != 0 {
		t.Fatalf("boundary point read DM = %d", es.DM)
	}
}

func TestMaxCMAndTotalTracks(t *testing.T) {
	s := New(3, 10)
	s.Add(0, 0, 5, 1)
	s.Add(1, 0, 5, 1)
	s.Add(1, 2, 8, 1)
	s.Add(2, 1, 3, 4)
	ch, cm := s.MaxCM()
	if ch != 2 || cm != 4 {
		t.Fatalf("MaxCM = (%d,%d), want (2,4)", ch, cm)
	}
	if got := s.TotalTracks(); got != 1+2+4 {
		t.Fatalf("TotalTracks = %d, want 7", got)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range interval")
		}
	}()
	s := New(1, 10)
	s.Add(0, 5, 11, 1)
}

// TestRandomizedConsistency: after a random add/remove sequence the stats
// always match a from-scratch recomputation, and removing everything
// returns to the empty state.
func TestRandomizedConsistency(t *testing.T) {
	type op struct{ ch, x1, x2, w int }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(2, 24)
		ref := New(2, 24)
		var ops []op
		for i := 0; i < 40; i++ {
			o := op{rng.Intn(2), rng.Intn(24), 0, 1 + rng.Intn(3)}
			o.x2 = o.x1 + rng.Intn(24-o.x1)
			ops = append(ops, o)
			s.Add(o.ch, o.x1, o.x2, o.w)
			ref.Add(o.ch, o.x1, o.x2, o.w)
			if rng.Intn(3) == 0 {
				s.AddBridge(o.ch, o.x1, o.x2, o.w)
				s.RemoveBridge(o.ch, o.x1, o.x2, o.w)
			}
		}
		for ch := 0; ch < 2; ch++ {
			if s.Channel(ch) != ref.Channel(ch) {
				return false
			}
			if !reflect.DeepEqual(s.ProfileM(ch), ref.ProfileM(ch)) {
				return false
			}
		}
		for _, o := range ops {
			s.Remove(o.ch, o.x1, o.x2, o.w)
		}
		for ch := 0; ch < 2; ch++ {
			if st := s.Channel(ch); st.CM != 0 || st.Cm != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestConservation: the integral of d_M equals the pitch-weighted column
// count of everything added — no density is created or lost.
func TestConservation(t *testing.T) {
	s := New(1, 40)
	total := 0
	add := func(x1, x2, w int) {
		s.Add(0, x1, x2, w)
		total += (x2 - x1) * w
	}
	add(0, 40, 1)
	add(5, 25, 2)
	add(10, 12, 3)
	sum := 0
	for _, v := range s.ProfileM(0) {
		sum += v
	}
	if sum != total {
		t.Fatalf("profile integral %d, want %d", sum, total)
	}
	s.Remove(0, 5, 25, 2)
	sum = 0
	for _, v := range s.ProfileM(0) {
		sum += v
	}
	if sum != total-40 {
		t.Fatalf("after removal: %d, want %d", sum, total-40)
	}
}
