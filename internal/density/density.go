// Package density maintains the channel-density estimates of Harada &
// Kitazawa §3.3 (Fig. 4): per-channel column profiles
//
//	d_M(c,x) — pitch-weighted count of all alive trunk edges over x,
//	d_m(c,x) — pitch-weighted count of bridge trunk edges over x
//
// and the derived parameters C_M, C_m (profile maxima: upper and lower
// bounds of the eventual channel density), NC_M, NC_m (number of columns
// at the maximum), plus the per-edge interval versions D_M, D_m, ND_M,
// ND_m used by the edge-selection heuristics.
//
// A trunk edge spanning columns [x1, x2) contributes its pitch weight to
// every column in that half-open interval; abutting edges of one net thus
// sum to the net's span without double counting. Zero-length edges (branch
// and correspondence edges) contribute nothing, matching the paper: "the
// channel densities ... can be obtained by counting the number of Gr(n)
// trunk edges".
package density

import "fmt"

// ChannelStats are the §3.3 channel parameters.
type ChannelStats struct {
	CM  int // C_M(c): max of d_M — upper bound of the channel density
	NCM int // NC_M(c): number of columns where d_M reaches C_M
	Cm  int // C_m(c): max of d_m — lower bound (bridges cannot be removed)
	NCm int // NC_m(c): number of columns where d_m reaches C_m
}

// EdgeStats are the per-edge interval parameters.
type EdgeStats struct {
	DM  int // D_M(e): max of d_M over the edge's interval
	NDM int // ND_M(e): columns of the interval where d_M equals C_M(c)
	Dm  int // D_m(e): max of d_m over the interval
	NDm int // ND_m(e): columns of the interval where d_m equals C_m(c)
}

// State tracks densities for every channel of a chip. The profiles live in
// two flat int32 arrays indexed channel-major (channel*cols + column) —
// the same structure-of-arrays discipline as the timing subgraphs — so a
// profile update touches one contiguous cache-friendly run and the state
// allocates nothing after New.
type State struct {
	cols     int
	channels int
	dM       []int32 // d_M, channel-major
	dm       []int32 // d_m, channel-major
	dirty    []bool
	stats    []ChannelStats
	version  []uint64

	// changed accumulates the channels whose version moved since the last
	// TakeChanged, deduplicated via changedMark; the router drains it to
	// invalidate only the nets touching those channels.
	changed     []int32
	changedMark []bool
}

// New creates a density state for the given channel count and column count.
func New(channels, cols int) *State {
	s := &State{
		cols:     cols,
		channels: channels,
		dM:       make([]int32, channels*cols),
		dm:       make([]int32, channels*cols),
		dirty:    make([]bool, channels),
		stats:    make([]ChannelStats, channels),
		version:  make([]uint64, channels),

		changed:     make([]int32, 0, channels),
		changedMark: make([]bool, channels),
	}
	for c := range s.dirty {
		s.dirty[c] = true
	}
	return s
}

// Channels returns the number of channels tracked.
func (s *State) Channels() int { return s.channels }

// Cols returns the number of columns tracked.
func (s *State) Cols() int { return s.cols }

func (s *State) span(ch, x1, x2 int) (int, int) {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if ch < 0 || ch >= s.channels || x1 < 0 || x2 > s.cols {
		panic(fmt.Sprintf("density: interval ch=%d [%d,%d) outside %dx%d", ch, x1, x2, s.channels, s.cols))
	}
	return x1, x2
}

// rowM returns channel ch's d_M profile slice.
func (s *State) rowM(ch int) []int32 { return s.dM[ch*s.cols : (ch+1)*s.cols] }

// rowm returns channel ch's d_m profile slice.
func (s *State) rowm(ch int) []int32 { return s.dm[ch*s.cols : (ch+1)*s.cols] }

// Add adds a trunk edge of the given pitch weight spanning [x1, x2).
//
//bgr:hot
func (s *State) Add(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	row := s.rowM(ch)
	for x := x1; x < x2; x++ {
		row[x] += int32(w)
	}
	s.touch(ch)
}

// Remove removes a previously added trunk edge.
//
//bgr:hot
func (s *State) Remove(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	row := s.rowM(ch)
	for x := x1; x < x2; x++ {
		row[x] -= int32(w)
		if row[x] < 0 {
			panic("density: d_M went negative")
		}
	}
	s.touch(ch)
}

// AddBridge marks a trunk edge as a bridge (it also remains counted in
// d_M; bridges are a subset of all edges).
//
//bgr:hot
func (s *State) AddBridge(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	row := s.rowm(ch)
	for x := x1; x < x2; x++ {
		row[x] += int32(w)
	}
	s.touch(ch)
}

// RemoveBridge undoes AddBridge.
//
//bgr:hot
func (s *State) RemoveBridge(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	row := s.rowm(ch)
	for x := x1; x < x2; x++ {
		row[x] -= int32(w)
		if row[x] < 0 {
			panic("density: d_m went negative")
		}
	}
	s.touch(ch)
}

// touch records a profile mutation: the channel's stats are stale and its
// version moves, which is what the router's per-net candidate caches key
// their density snapshots on.
func (s *State) touch(ch int) {
	s.dirty[ch] = true
	s.version[ch]++
	if !s.changedMark[ch] {
		s.changedMark[ch] = true
		s.changed = append(s.changed, int32(ch))
	}
}

// TakeChanged returns the channels whose version moved since the previous
// call and resets the record. The slice is valid until the next profile
// mutation (it is reused internally); callers must consume it before
// touching the state again.
func (s *State) TakeChanged() []int32 {
	for _, ch := range s.changed {
		s.changedMark[ch] = false
	}
	out := s.changed
	s.changed = s.changed[:0]
	return out
}

// TakeChangedSorted is TakeChanged with the channels in ascending order —
// the canonical merge order the router's sharded selection drains density
// changes in, so invalidation traversal order never depends on the
// mutation order that produced the log. The sort is an in-place insertion
// sort: the log is short and nearly sorted in practice, and the hot path
// must not allocate.
//
//bgr:hot
func (s *State) TakeChangedSorted() []int32 {
	out := s.TakeChanged()
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i
		for j > 0 && out[j-1] > v {
			out[j] = out[j-1]
			j--
		}
		out[j] = v
	}
	return out
}

// Version returns a counter that increments on every profile mutation of
// the channel (d_M or d_m). Equal versions imply identical profiles, so
// cached per-channel criteria stamped with it stay exact.
func (s *State) Version(ch int) uint64 { return s.version[ch] }

// Flush materializes every dirty channel's stats. After Flush, concurrent
// readers may call Channel and Edge freely: nothing mutates until the next
// Add/Remove. The router calls it before fanning scoring out to workers.
//
//bgr:hot
func (s *State) Flush() {
	for c := 0; c < s.channels; c++ {
		if s.dirty[c] {
			s.stats[c] = computeStats(s.rowM(c), s.rowm(c))
			s.dirty[c] = false
		}
	}
}

// Channel returns the current §3.3 parameters of a channel.
func (s *State) Channel(ch int) ChannelStats {
	if s.dirty[ch] {
		s.stats[ch] = computeStats(s.rowM(ch), s.rowm(ch))
		s.dirty[ch] = false
	}
	return s.stats[ch]
}

func computeStats(dM, dm []int32) ChannelStats {
	// Single max+count pass per profile: when a new max appears the count
	// restarts at one, so the columns before it never need revisiting.
	var cM, cm int32
	var ncM, ncm int
	for _, v := range dM {
		if v > cM {
			cM, ncM = v, 1
		} else if v == cM {
			ncM++
		}
	}
	for _, v := range dm {
		if v > cm {
			cm, ncm = v, 1
		} else if v == cm {
			ncm++
		}
	}
	return ChannelStats{CM: int(cM), NCM: ncM, Cm: int(cm), NCm: ncm}
}

// Edge returns the interval parameters of an edge spanning [x1, x2) in the
// channel. Zero-length edges (x1 == x2) read the single column x1, matching
// the paper's "using the interval of e" for branch edges.
func (s *State) Edge(ch, x1, x2 int) EdgeStats {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if x1 == x2 {
		x2 = x1 + 1
		if x2 > s.cols {
			x1, x2 = s.cols-1, s.cols
		}
	}
	x1, x2 = s.span(ch, x1, x2)
	cs := s.Channel(ch)
	cM, cm := int32(cs.CM), int32(cs.Cm)
	rowM, rowm := s.rowM(ch), s.rowm(ch)
	var dMax, dmMax int32
	var es EdgeStats
	for x := x1; x < x2; x++ {
		if v := rowM[x]; v > dMax {
			dMax = v
		}
		if v := rowm[x]; v > dmMax {
			dmMax = v
		}
		if rowM[x] == cM {
			es.NDM++
		}
		if rowm[x] == cm {
			es.NDm++
		}
	}
	es.DM, es.Dm = int(dMax), int(dmMax)
	return es
}

// ProfileM returns a copy of d_M(c, ·) for inspection and Fig. 4 renders.
func (s *State) ProfileM(ch int) []int { return copyRow(s.rowM(ch)) }

// Profilem returns a copy of d_m(c, ·).
func (s *State) Profilem(ch int) []int { return copyRow(s.rowm(ch)) }

func copyRow(row []int32) []int {
	out := make([]int, len(row))
	for i, v := range row {
		out[i] = int(v)
	}
	return out
}

// MaxCM returns the largest C_M over all channels and the channel holding
// it; the router's area-improvement phase targets that channel first.
func (s *State) MaxCM() (ch, cm int) {
	ch = -1
	for c := 0; c < s.channels; c++ {
		if st := s.Channel(c); st.CM > cm || ch == -1 {
			ch, cm = c, st.CM
		}
	}
	return ch, cm
}

// TotalTracks sums C_M over all channels: the chip-height contribution of
// the channels if every channel routes in exactly its density.
func (s *State) TotalTracks() int {
	sum := 0
	for c := 0; c < s.channels; c++ {
		sum += s.Channel(c).CM
	}
	return sum
}
