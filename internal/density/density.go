// Package density maintains the channel-density estimates of Harada &
// Kitazawa §3.3 (Fig. 4): per-channel column profiles
//
//	d_M(c,x) — pitch-weighted count of all alive trunk edges over x,
//	d_m(c,x) — pitch-weighted count of bridge trunk edges over x
//
// and the derived parameters C_M, C_m (profile maxima: upper and lower
// bounds of the eventual channel density), NC_M, NC_m (number of columns
// at the maximum), plus the per-edge interval versions D_M, D_m, ND_M,
// ND_m used by the edge-selection heuristics.
//
// A trunk edge spanning columns [x1, x2) contributes its pitch weight to
// every column in that half-open interval; abutting edges of one net thus
// sum to the net's span without double counting. Zero-length edges (branch
// and correspondence edges) contribute nothing, matching the paper: "the
// channel densities ... can be obtained by counting the number of Gr(n)
// trunk edges".
package density

import "fmt"

// ChannelStats are the §3.3 channel parameters.
type ChannelStats struct {
	CM  int // C_M(c): max of d_M — upper bound of the channel density
	NCM int // NC_M(c): number of columns where d_M reaches C_M
	Cm  int // C_m(c): max of d_m — lower bound (bridges cannot be removed)
	NCm int // NC_m(c): number of columns where d_m reaches C_m
}

// EdgeStats are the per-edge interval parameters.
type EdgeStats struct {
	DM  int // D_M(e): max of d_M over the edge's interval
	NDM int // ND_M(e): columns of the interval where d_M equals C_M(c)
	Dm  int // D_m(e): max of d_m over the interval
	NDm int // ND_m(e): columns of the interval where d_m equals C_m(c)
}

// State tracks densities for every channel of a chip.
type State struct {
	cols    int
	dM      [][]int
	dm      [][]int
	dirty   []bool
	stats   []ChannelStats
	version []uint64
}

// New creates a density state for the given channel count and column count.
func New(channels, cols int) *State {
	s := &State{
		cols:    cols,
		dM:      make([][]int, channels),
		dm:      make([][]int, channels),
		dirty:   make([]bool, channels),
		stats:   make([]ChannelStats, channels),
		version: make([]uint64, channels),
	}
	for c := range s.dM {
		s.dM[c] = make([]int, cols)
		s.dm[c] = make([]int, cols)
		s.dirty[c] = true
	}
	return s
}

// Channels returns the number of channels tracked.
func (s *State) Channels() int { return len(s.dM) }

// Cols returns the number of columns tracked.
func (s *State) Cols() int { return s.cols }

func (s *State) span(ch, x1, x2 int) (int, int) {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if ch < 0 || ch >= len(s.dM) || x1 < 0 || x2 > s.cols {
		panic(fmt.Sprintf("density: interval ch=%d [%d,%d) outside %dx%d", ch, x1, x2, len(s.dM), s.cols))
	}
	return x1, x2
}

// Add adds a trunk edge of the given pitch weight spanning [x1, x2).
func (s *State) Add(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	for x := x1; x < x2; x++ {
		s.dM[ch][x] += w
	}
	s.touch(ch)
}

// Remove removes a previously added trunk edge.
func (s *State) Remove(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	for x := x1; x < x2; x++ {
		s.dM[ch][x] -= w
		if s.dM[ch][x] < 0 {
			panic("density: d_M went negative")
		}
	}
	s.touch(ch)
}

// AddBridge marks a trunk edge as a bridge (it also remains counted in
// d_M; bridges are a subset of all edges).
func (s *State) AddBridge(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	for x := x1; x < x2; x++ {
		s.dm[ch][x] += w
	}
	s.touch(ch)
}

// RemoveBridge undoes AddBridge.
func (s *State) RemoveBridge(ch, x1, x2, w int) {
	x1, x2 = s.span(ch, x1, x2)
	for x := x1; x < x2; x++ {
		s.dm[ch][x] -= w
		if s.dm[ch][x] < 0 {
			panic("density: d_m went negative")
		}
	}
	s.touch(ch)
}

// touch records a profile mutation: the channel's stats are stale and its
// version moves, which is what the router's per-net candidate caches key
// their density snapshots on.
func (s *State) touch(ch int) {
	s.dirty[ch] = true
	s.version[ch]++
}

// Version returns a counter that increments on every profile mutation of
// the channel (d_M or d_m). Equal versions imply identical profiles, so
// cached per-channel criteria stamped with it stay exact.
func (s *State) Version(ch int) uint64 { return s.version[ch] }

// Flush materializes every dirty channel's stats. After Flush, concurrent
// readers may call Channel and Edge freely: nothing mutates until the next
// Add/Remove. The router calls it before fanning scoring out to workers.
func (s *State) Flush() {
	for c := range s.dM {
		if s.dirty[c] {
			s.stats[c] = computeStats(s.dM[c], s.dm[c])
			s.dirty[c] = false
		}
	}
}

// Channel returns the current §3.3 parameters of a channel.
func (s *State) Channel(ch int) ChannelStats {
	if s.dirty[ch] {
		s.stats[ch] = computeStats(s.dM[ch], s.dm[ch])
		s.dirty[ch] = false
	}
	return s.stats[ch]
}

func computeStats(dM, dm []int) ChannelStats {
	var st ChannelStats
	for _, v := range dM {
		if v > st.CM {
			st.CM = v
		}
	}
	for _, v := range dm {
		if v > st.Cm {
			st.Cm = v
		}
	}
	for i := range dM {
		if dM[i] == st.CM {
			st.NCM++
		}
		if dm[i] == st.Cm {
			st.NCm++
		}
	}
	return st
}

// Edge returns the interval parameters of an edge spanning [x1, x2) in the
// channel. Zero-length edges (x1 == x2) read the single column x1, matching
// the paper's "using the interval of e" for branch edges.
func (s *State) Edge(ch, x1, x2 int) EdgeStats {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if x1 == x2 {
		x2 = x1 + 1
		if x2 > s.cols {
			x1, x2 = s.cols-1, s.cols
		}
	}
	x1, x2 = s.span(ch, x1, x2)
	cs := s.Channel(ch)
	var es EdgeStats
	for x := x1; x < x2; x++ {
		if v := s.dM[ch][x]; v > es.DM {
			es.DM = v
		}
		if v := s.dm[ch][x]; v > es.Dm {
			es.Dm = v
		}
		if s.dM[ch][x] == cs.CM {
			es.NDM++
		}
		if s.dm[ch][x] == cs.Cm {
			es.NDm++
		}
	}
	return es
}

// ProfileM returns a copy of d_M(c, ·) for inspection and Fig. 4 renders.
func (s *State) ProfileM(ch int) []int { return append([]int(nil), s.dM[ch]...) }

// Profilem returns a copy of d_m(c, ·).
func (s *State) Profilem(ch int) []int { return append([]int(nil), s.dm[ch]...) }

// MaxCM returns the largest C_M over all channels and the channel holding
// it; the router's area-improvement phase targets that channel first.
func (s *State) MaxCM() (ch, cm int) {
	ch = -1
	for c := range s.dM {
		if st := s.Channel(c); st.CM > cm || ch == -1 {
			if st.CM > cm || ch == -1 {
				ch, cm = c, st.CM
			}
		}
	}
	return ch, cm
}

// TotalTracks sums C_M over all channels: the chip-height contribution of
// the channels if every channel routes in exactly its density.
func (s *State) TotalTracks() int {
	sum := 0
	for c := range s.dM {
		sum += s.Channel(c).CM
	}
	return sum
}
