package seqroute_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/seqroute"
)

// ExampleRoute runs the sequential net-at-a-time baseline on the sample
// circuit.
func ExampleRoute() {
	res, err := seqroute.Route(circuit.SampleSmall(), seqroute.Config{UseConstraints: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trees := 0
	for _, g := range res.Graphs {
		if g.IsTree() {
			trees++
		}
	}
	fmt.Printf("%d/%d nets routed as trees\n", trees, len(res.Graphs))
	// Output:
	// 7/7 nets routed as trees
}
