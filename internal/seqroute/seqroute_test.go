package seqroute

import (
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/verify"
)

func TestRouteSampleSmall(t *testing.T) {
	res, err := Route(circuit.SampleSmall(), Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	for n, g := range res.Graphs {
		if g == nil {
			t.Fatalf("net %d unrouted", n)
		}
		if !g.IsTree() {
			t.Errorf("net %s not a tree", res.Ckt.Nets[n].Name)
		}
		// All terminals connected.
		if _, err := g.Tentative(); err != nil {
			t.Errorf("net %s: %v", res.Ckt.Nets[n].Name, err)
		}
		if res.WirelenUm[n] <= 0 {
			t.Errorf("net %s: length %v", res.Ckt.Nets[n].Name, res.WirelenUm[n])
		}
	}
	if res.Delay <= 0 {
		t.Fatal("no delay reported")
	}
	// The trees feed the channel router like the concurrent ones do.
	if _, err := chanroute.Route(res.Ckt, res.Graphs); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineVersusConcurrent(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Route(ckt, Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	con, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	// The concurrent router must not lose to the net-at-a-time baseline
	// on the metrics the paper optimizes (generous tolerance: the point
	// is the ordering, not an exact factor).
	if con.Delay > seq.Delay*1.05 {
		t.Errorf("concurrent delay %v worse than sequential %v", con.Delay, seq.Delay)
	}
	if con.Dens.TotalTracks() > seq.Dens.TotalTracks()*11/10 {
		t.Errorf("concurrent tracks %d much worse than sequential %d",
			con.Dens.TotalTracks(), seq.Dens.TotalTracks())
	}
	t.Logf("delay: concurrent %.1f vs sequential %.1f ps", con.Delay, seq.Delay)
	t.Logf("tracks: concurrent %d vs sequential %d", con.Dens.TotalTracks(), seq.Dens.TotalTracks())
}

func TestCongestionAvoidance(t *testing.T) {
	// With a high alpha the baseline must respect congestion: route the
	// same circuit with alpha 0 (pure shortest) and a large alpha, and
	// check max channel density does not increase.
	p, _ := gen.Dataset("C1P1")
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := Route(ckt, Config{UseConstraints: true, Alpha: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	avoid, err := Route(ckt, Config{UseConstraints: true, Alpha: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	maxCM := func(r *Result) int {
		_, cm := r.Dens.MaxCM()
		return cm
	}
	if maxCM(avoid) > maxCM(pure) {
		t.Errorf("congestion weighting increased max density: %d vs %d", maxCM(avoid), maxCM(pure))
	}
	// Wire length stays in the same ballpark (union-of-paths effects can
	// move it a little in either direction).
	if ratio := avoid.TotalWirelenUm / pure.TotalWirelenUm; ratio < 0.9 || ratio > 1.2 {
		t.Errorf("avoidance changed total wire implausibly: %v vs %v", avoid.TotalWirelenUm, pure.TotalWirelenUm)
	}
}

func TestEstimateTargetPositive(t *testing.T) {
	if got := estimateTarget(circuit.SampleSmall()); got < 1 {
		t.Fatalf("target %d", got)
	}
}

func TestBaselinePassesStructuralAudit(t *testing.T) {
	p, _ := gen.Dataset("C1P1")
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(ckt, Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	// The baseline promises trees, feed coverage and consistent lengths,
	// but not §4.1 pair parallelism (a documented weakness).
	v := verify.Check(verify.Parts{
		Ckt: res.Ckt, Geo: res.Geo, Feeds: res.Feeds, Graphs: res.Graphs,
		WirelenUm: res.WirelenUm, Dens: res.Dens, CheckPairs: false,
	})
	if !v.OK() {
		t.Fatalf("baseline failed audit: %v", v.Problems[0])
	}
}
