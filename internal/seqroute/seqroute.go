// Package seqroute is a sequential, net-at-a-time global router — the
// class of timing-driven routers the paper positions itself against
// (Jackson/Kuh, Prasitjutrakul/Kubitz, Cong et al.; single-net routing
// under net-delay constraints). It serves as the comparison baseline: it
// shares every substrate with the concurrent router (feed assignment,
// routing graphs, density, timing) but routes one net after another, each
// by congestion-weighted shortest paths, with no concurrent edge-deletion
// and no global margin tracking.
//
// Nets are processed in ascending static slack. For each net, the router
// keeps the spanning tree the congestion-weighted Dijkstra union selects
// (edge cost = length · (1 + α·overflow)), commits its density, and moves
// on. Earlier nets never see later nets' congestion — the fundamental
// weakness the paper's concurrent scheme removes.
package seqroute

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/feed"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

// Config tunes the baseline.
type Config struct {
	// UseConstraints orders nets by static slack (as the paper's router
	// does); without it nets route in index order.
	UseConstraints bool
	// Alpha scales the congestion penalty; 0 routes pure shortest paths.
	// Default 0.35.
	Alpha float64
	// TargetTracks is the per-channel density above which congestion
	// starts to cost. 0 derives it from the average demand.
	TargetTracks int
}

// Result mirrors the concurrent router's result shape (the subset the
// experiments need).
type Result struct {
	Ckt            *circuit.Circuit
	Geo            *grid.Geometry
	Feeds          [][]rgraph.FeedPos
	Graphs         []*rgraph.Graph
	WirelenUm      []float64
	TotalWirelenUm float64
	Dens           *density.State
	Delay          float64 // worst constrained-path delay, estimated
	AddedPitches   int
}

// Route runs the baseline.
func Route(ckt *circuit.Circuit, cfg Config) (*Result, error) {
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("seqroute: %w", err)
	}
	if cfg.Alpha == 0 { //bgr:allow floateq -- zero-value Config sentinel: an unset Alpha is exactly 0
		cfg.Alpha = 0.35
	}
	var order []int
	if cfg.UseConstraints {
		dg0, err := dgraph.New(ckt)
		if err != nil {
			return nil, err
		}
		order = slackOrder(dg0)
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Ckt: fr.Ckt, Geo: fr.Geo, Feeds: fr.Feeds,
		Graphs:       make([]*rgraph.Graph, len(fr.Ckt.Nets)),
		WirelenUm:    make([]float64, len(fr.Ckt.Nets)),
		Dens:         density.New(fr.Ckt.Channels(), fr.Ckt.Cols),
		AddedPitches: fr.AddedPitches,
	}
	target := cfg.TargetTracks
	if target <= 0 {
		target = estimateTarget(fr.Ckt)
	}

	full := order
	if full == nil {
		full = make([]int, len(fr.Ckt.Nets))
		for i := range full {
			full[i] = i
		}
	}
	done := make([]bool, len(fr.Ckt.Nets))
	for _, n := range full {
		if done[n] {
			continue
		}
		nets := []int{n}
		if m := fr.Ckt.Nets[n].DiffMate; m != circuit.NoNet {
			nets = append(nets, m)
		}
		for _, nn := range nets {
			if err := routeNet(res, nn, cfg, target); err != nil {
				return nil, err
			}
			done[nn] = true
		}
	}
	// Final timing on the committed trees.
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		return nil, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(res.WirelenUm)
	tm.Analyze()
	for p := range tm.Cons {
		if tm.Cons[p].Worst > res.Delay {
			res.Delay = tm.Cons[p].Worst
		}
	}
	for _, l := range res.WirelenUm {
		res.TotalWirelenUm += l
	}
	return res, nil
}

// routeNet routes one net by a congestion-weighted tentative tree and
// commits it: every edge outside the selected tree is discarded.
func routeNet(res *Result, n int, cfg Config, target int) error {
	g, err := rgraph.Build(res.Ckt, res.Geo, n, res.Feeds[n])
	if err != nil {
		return err
	}
	tree, err := congestionTree(g, res.Dens, cfg.Alpha, target)
	if err != nil {
		return err
	}
	// Keep only tree edges: the union is connected and spans the
	// terminals by construction. Recompute bridges so downstream
	// consumers (chanroute, verify) see a consistent tree.
	g.KeepOnly(tree)
	g.RecomputeBridges()
	res.Graphs[n] = g
	ft := g.FinalTree()
	res.WirelenUm[n] = ft.Length
	for _, e := range ft.Edges {
		ed := &g.Edges[e]
		if ed.Kind == rgraph.ETrunk {
			res.Dens.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			res.Dens.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		}
	}
	return nil
}

// congestionTree runs Dijkstra from the driver with congestion-inflated
// edge costs and returns the union of the chosen paths.
func congestionTree(g *rgraph.Graph, dens *density.State, alpha float64, target int) (*rgraph.Tree, error) {
	cost := func(e int) float64 {
		ed := &g.Edges[e]
		c := ed.Len
		if ed.Kind == rgraph.ETrunk {
			over := dens.Edge(ed.Ch, ed.X1, ed.X2).DM + g.Pitch - target
			if over > 0 {
				c *= 1 + alpha*float64(over)
			}
			if c == 0 { //bgr:allow floateq -- guards against an exactly-zero-length trunk cost before Dijkstra
				c = 1e-9
			}
		}
		return c
	}
	return g.TentativeWeighted(cost)
}

// estimateTarget derives a per-channel density target from total demand:
// half-perimeter demand spread over the channels.
func estimateTarget(ckt *circuit.Circuit) int {
	var demandCols int
	for n := range ckt.Nets {
		minC, maxC := math.MaxInt32, -1
		for _, t := range ckt.Terminals(n) {
			for _, pos := range ckt.PositionsOf(t) {
				if pos.Col < minC {
					minC = pos.Col
				}
				if pos.Col > maxC {
					maxC = pos.Col
				}
			}
		}
		if maxC > minC {
			demandCols += (maxC - minC) * ckt.Nets[n].Pitch
		}
	}
	per := demandCols / (ckt.Channels() * ckt.Cols)
	if per < 1 {
		per = 1
	}
	return per
}

func slackOrder(dg *dgraph.Graph) []int {
	slacks := dg.NetSlacks()
	order := make([]int, len(slacks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slacks[order[a]] < slacks[order[b]] })
	return order
}
