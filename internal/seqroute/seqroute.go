// Package seqroute is a sequential, net-at-a-time global router — the
// class of timing-driven routers the paper positions itself against
// (Jackson/Kuh, Prasitjutrakul/Kubitz, Cong et al.; single-net routing
// under net-delay constraints). It serves as the comparison baseline: it
// shares every substrate with the concurrent router (feed assignment,
// routing graphs, density, timing) but routes one net after another, each
// by congestion-weighted shortest paths, with no concurrent edge-deletion
// and no global margin tracking.
//
// Nets are processed in ascending static slack. For each net, the router
// keeps the spanning tree the congestion-weighted Dijkstra union selects
// (edge cost = length · (1 + α·overflow)), commits its density, and moves
// on. Earlier nets never see later nets' congestion — the fundamental
// weakness the paper's concurrent scheme removes.
//
// Config defaults (applied through withDefaults, in one place): an unset
// Alpha is 0.35, and an unset TargetTracks is derived from the average
// per-channel demand of the (possibly widened) circuit — total
// half-perimeter column demand spread over channels × columns, floored
// at one track.
package seqroute

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/engine"
	"repro/internal/feed"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

// Config tunes the baseline.
type Config struct {
	// UseConstraints orders nets by static slack (as the paper's router
	// does); without it nets route in index order.
	UseConstraints bool
	// Alpha scales the congestion penalty; 0 means the default of 0.35.
	// (Pure shortest paths need a negative sentinel nobody uses; the
	// experiments always want some congestion pressure.)
	Alpha float64
	// TargetTracks is the per-channel density above which congestion
	// starts to cost. 0 derives it from the average demand.
	TargetTracks int
	// Progress, when non-nil, receives a snapshot at phase start, after
	// every committed net, and a final Done snapshot.
	Progress func(engine.Progress)
}

// withDefaults resolves the zero-value knobs — the single place defaults
// are applied. It runs after feedthrough assignment so the demand-derived
// TargetTracks sees the widened chip.
func (cfg Config) withDefaults(ckt *circuit.Circuit) Config {
	if cfg.Alpha == 0 { //bgr:allow floateq -- zero-value Config sentinel: an unset Alpha is exactly 0
		cfg.Alpha = 0.35
	}
	if cfg.TargetTracks <= 0 {
		cfg.TargetTracks = estimateTarget(ckt)
	}
	return cfg
}

// Result mirrors the concurrent router's result shape (the subset the
// experiments need).
type Result struct {
	Ckt            *circuit.Circuit
	Geo            *grid.Geometry
	Feeds          [][]rgraph.FeedPos
	Graphs         []*rgraph.Graph
	WirelenUm      []float64
	TotalWirelenUm float64
	// Timing is the final analysis over the committed trees.
	Timing       *dgraph.Timing
	Dens         *density.State
	Delay        float64 // worst constrained-path delay, estimated
	AddedPitches int
}

// Route runs the baseline.
func Route(ckt *circuit.Circuit, cfg Config) (*Result, error) {
	return RouteCtx(context.Background(), ckt, cfg)
}

// RouteCtx runs the baseline, aborting between nets when ctx is
// cancelled.
func RouteCtx(ctx context.Context, ckt *circuit.Circuit, cfg Config) (*Result, error) {
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("seqroute: %w", err)
	}
	var order []int
	if cfg.UseConstraints {
		dg0, err := dgraph.New(ckt)
		if err != nil {
			return nil, err
		}
		order = slackOrder(dg0)
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(fr.Ckt)
	res := &Result{
		Ckt: fr.Ckt, Geo: fr.Geo, Feeds: fr.Feeds,
		Graphs:       make([]*rgraph.Graph, len(fr.Ckt.Nets)),
		WirelenUm:    make([]float64, len(fr.Ckt.Nets)),
		Dens:         density.New(fr.Ckt.Channels(), fr.Ckt.Cols),
		AddedPitches: fr.AddedPitches,
	}

	full := order
	if full == nil {
		full = make([]int, len(fr.Ckt.Nets))
		for i := range full {
			full[i] = i
		}
	}
	if cfg.Progress != nil {
		cfg.Progress(engine.Progress{Phase: "route"})
	}
	routed := 0
	done := make([]bool, len(fr.Ckt.Nets))
	for _, n := range full {
		if done[n] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nets := []int{n}
		if m := fr.Ckt.Nets[n].DiffMate; m != circuit.NoNet {
			nets = append(nets, m)
		}
		for _, nn := range nets {
			if err := routeNet(res, nn, cfg); err != nil {
				return nil, err
			}
			done[nn] = true
			routed++
			if cfg.Progress != nil {
				cfg.Progress(engine.Progress{Phase: "route", Accepted: routed})
			}
		}
	}
	// Final timing on the committed trees.
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		return nil, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(res.WirelenUm)
	tm.Analyze()
	res.Timing = tm
	violations := 0
	for p := range tm.Cons {
		if tm.Cons[p].Worst > res.Delay {
			res.Delay = tm.Cons[p].Worst
		}
		if tm.Cons[p].Margin < 0 {
			violations++
		}
	}
	for _, l := range res.WirelenUm {
		res.TotalWirelenUm += l
	}
	if cfg.Progress != nil {
		cfg.Progress(engine.Progress{Phase: "route", Accepted: routed, Violations: violations, Done: true})
	}
	return res, nil
}

// routeNet routes one net by a congestion-weighted tentative tree and
// commits it: every edge outside the selected tree is discarded.
func routeNet(res *Result, n int, cfg Config) error {
	g, err := rgraph.Build(res.Ckt, res.Geo, n, res.Feeds[n])
	if err != nil {
		return err
	}
	tree, err := congestionTree(g, res.Dens, cfg.Alpha, cfg.TargetTracks)
	if err != nil {
		return err
	}
	// Keep only tree edges: the union is connected and spans the
	// terminals by construction. Recompute bridges so downstream
	// consumers (chanroute, verify) see a consistent tree.
	g.KeepOnly(tree)
	g.RecomputeBridges()
	res.Graphs[n] = g
	ft := g.FinalTree()
	res.WirelenUm[n] = ft.Length
	for _, e := range ft.Edges {
		ed := &g.Edges[e]
		if ed.Kind == rgraph.ETrunk {
			res.Dens.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			res.Dens.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		}
	}
	return nil
}

// congestionTree runs Dijkstra from the driver with congestion-inflated
// edge costs and returns the union of the chosen paths.
func congestionTree(g *rgraph.Graph, dens *density.State, alpha float64, target int) (*rgraph.Tree, error) {
	cost := func(e int) float64 {
		ed := &g.Edges[e]
		c := ed.Len
		if ed.Kind == rgraph.ETrunk {
			over := dens.Edge(ed.Ch, ed.X1, ed.X2).DM + g.Pitch - target
			if over > 0 {
				c *= 1 + alpha*float64(over)
			}
			if c == 0 { //bgr:allow floateq -- guards against an exactly-zero-length trunk cost before Dijkstra
				c = 1e-9
			}
		}
		return c
	}
	return g.TentativeWeighted(cost)
}

// estimateTarget derives a per-channel density target from total demand:
// half-perimeter demand spread over the channels.
func estimateTarget(ckt *circuit.Circuit) int {
	var demandCols int
	for n := range ckt.Nets {
		minC, maxC := math.MaxInt32, -1
		for _, t := range ckt.Terminals(n) {
			for _, pos := range ckt.PositionsOf(t) {
				if pos.Col < minC {
					minC = pos.Col
				}
				if pos.Col > maxC {
					maxC = pos.Col
				}
			}
		}
		if maxC > minC {
			demandCols += (maxC - minC) * ckt.Nets[n].Pitch
		}
	}
	per := demandCols / (ckt.Channels() * ckt.Cols)
	if per < 1 {
		per = 1
	}
	return per
}

func slackOrder(dg *dgraph.Graph) []int {
	slacks := dg.NetSlacks()
	order := make([]int, len(slacks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slacks[order[a]] < slacks[order[b]] })
	return order
}

// sequentialEngine adapts the baseline to the engine registry.
type sequentialEngine struct{}

func (sequentialEngine) Name() string { return "sequential" }

func (sequentialEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Progress: true}
}

func (sequentialEngine) Route(ctx context.Context, ckt *circuit.Circuit, cfg engine.Config) (*engine.Result, error) {
	start := time.Now() //bgr:allow clockuse -- profiling only
	res, err := RouteCtx(ctx, ckt, Config{
		UseConstraints: cfg.UseConstraints,
		Alpha:          cfg.Alpha,
		TargetTracks:   cfg.TargetTracks,
		Progress:       cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	return &engine.Result{
		Engine:         "sequential",
		Ckt:            res.Ckt,
		Geo:            res.Geo,
		Feeds:          res.Feeds,
		Graphs:         res.Graphs,
		WirelenUm:      res.WirelenUm,
		TotalWirelenUm: res.TotalWirelenUm,
		Timing:         res.Timing,
		Delay:          res.Delay,
		Dens:           res.Dens,
		AddedPitches:   res.AddedPitches,
		Duration:       time.Since(start), //bgr:allow clockuse -- profiling only
	}, nil
}

func init() { engine.Register(sequentialEngine{}) }
