package experiment

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	rows := []*Row{
		{Name: "C1P1", Cells: 246, Nets: 201, Cons: 8, LowerBoundPs: 1598.5,
			Con: Run{DelayPs: 1813.2, AreaMm2: 1.474, LengthMm: 180, CPUSec: 0.02, Tracks: 109},
			Unc: Run{DelayPs: 2020.8, AreaMm2: 1.482, LengthMm: 180.1, CPUSec: 0.01, Tracks: 108}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want header + 1 row", len(recs))
	}
	if len(recs[0]) != len(recs[1]) {
		t.Fatal("header/row width mismatch")
	}
	if recs[1][0] != "C1P1" {
		t.Fatalf("name column = %q", recs[1][0])
	}
	// improvement column is the last: (2020.8-1813.2)/1598.5*100.
	imp, err := strconv.ParseFloat(recs[1][len(recs[1])-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if imp < 12.9 || imp > 13.1 {
		t.Fatalf("improvement = %v, want ~12.99", imp)
	}
}
