package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// ScalePoint is one circuit size's runtime measurement.
type ScalePoint struct {
	Name        string
	Cells, Nets int
	GenSec      float64
	RouteSec    float64 // includes channel routing and final timing
	DelayPs     float64
}

// Scaling measures end-to-end runtime across circuit sizes: the paper's
// three circuits plus the ~2000-cell stress circuit. The paper reported
// SPARCstation-2 CPU seconds; this is the modern equivalent column.
func Scaling() ([]ScalePoint, error) {
	var out []ScalePoint
	configs := []gen.Params{}
	for _, name := range []string{"C1P1", "C2P1", "C3P1"} {
		p, err := gen.Dataset(name)
		if err != nil {
			return nil, err
		}
		configs = append(configs, p)
	}
	configs = append(configs, gen.StressParams())
	for _, p := range configs {
		t0 := time.Now()
		ckt, err := gen.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		genSec := time.Since(t0).Seconds()
		t0 = time.Now()
		run, err := RunCircuit(ckt, core.Config{UseConstraints: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		out = append(out, ScalePoint{
			Name:   p.Name,
			Cells:  logicCells(ckt),
			Nets:   len(ckt.Nets),
			GenSec: genSec, RouteSec: run.CPUSec,
			DelayPs: run.DelayPs,
		})
	}
	return out, nil
}

// ScalingText renders the scaling table.
func ScalingText(points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime scaling (constrained mode, single-threaded):\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %12s %12s\n", "Circuit", "cells", "nets", "gen(s)", "route(s)", "delay(ps)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %8d %8d %10.3f %12.3f %12.1f\n",
			p.Name, p.Cells, p.Nets, p.GenSec, p.RouteSec, p.DelayPs)
	}
	return b.String()
}
