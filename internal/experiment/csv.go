package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the full evaluation as machine-readable CSV: one line per
// data set with both modes' metrics and the derived Table 3 columns.
func WriteCSV(w io.Writer, rows []*Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"name", "cells", "nets", "constraints", "lower_bound_ps",
		"con_delay_ps", "con_area_mm2", "con_len_mm", "con_cpu_s", "con_violations", "con_tracks",
		"unc_delay_ps", "unc_area_mm2", "unc_len_mm", "unc_cpu_s", "unc_violations", "unc_tracks",
		"con_diff_pct", "unc_diff_pct", "improvement_pct_of_lb",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	d := func(v int) string { return fmt.Sprintf("%d", v) }
	for _, r := range rows {
		con, unc := r.DiffPct()
		rec := []string{
			r.Name, d(r.Cells), d(r.Nets), d(r.Cons), f(r.LowerBoundPs),
			f(r.Con.DelayPs), f(r.Con.AreaMm2), f(r.Con.LengthMm), f(r.Con.CPUSec), d(r.Con.Violations), d(r.Con.Tracks),
			f(r.Unc.DelayPs), f(r.Unc.AreaMm2), f(r.Unc.LengthMm), f(r.Unc.CPUSec), d(r.Unc.Violations), d(r.Unc.Tracks),
			f(con), f(unc), f(r.ImprovementPct()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
