package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
)

// RobustnessStats summarizes the headline metric over many generator
// seeds — evidence the reproduction's numbers are not a property of the
// checked-in seeds.
type RobustnessStats struct {
	Seeds      int
	Reductions []float64 // improvement as % of lower bound, per seed, sorted
	MeanPct    float64
	MedianPct  float64
	MinPct     float64
	MaxPct     float64
	// NeverWorse counts seeds where the constrained delay was at most the
	// unconstrained delay.
	NeverWorse int
}

// Robustness generates `seeds` C1-sized circuits with fresh seeds and
// evaluates the delay reduction on each.
func Robustness(seeds int, style gen.PlacementStyle) (*RobustnessStats, error) {
	base, err := gen.Dataset("C1P1")
	if err != nil {
		return nil, err
	}
	base.Style = style
	st := &RobustnessStats{Seeds: seeds}
	for i := 0; i < seeds; i++ {
		p := base
		p.Seed = int64(1000 + 7*i)
		p.Name = fmt.Sprintf("R%03d", i)
		ckt, err := gen.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", p.Seed, err)
		}
		row, err := RunGenerated(p.Name, ckt, core.Config{})
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", p.Seed, err)
		}
		st.Reductions = append(st.Reductions, row.ImprovementPct())
		if row.Con.DelayPs <= row.Unc.DelayPs+1e-6 {
			st.NeverWorse++
		}
	}
	sort.Float64s(st.Reductions)
	for _, v := range st.Reductions {
		st.MeanPct += v
	}
	st.MeanPct /= float64(len(st.Reductions))
	st.MedianPct = st.Reductions[len(st.Reductions)/2]
	st.MinPct = st.Reductions[0]
	st.MaxPct = st.Reductions[len(st.Reductions)-1]
	return st, nil
}

// RobustnessText renders the statistics with a small distribution sketch.
func RobustnessText(st *RobustnessStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed robustness: %d fresh circuits (C1-sized)\n", st.Seeds)
	fmt.Fprintf(&b, "  delay reduction (%% of lower bound): mean %.1f, median %.1f, min %.1f, max %.1f\n",
		st.MeanPct, st.MedianPct, st.MinPct, st.MaxPct)
	fmt.Fprintf(&b, "  constrained never worse than unconstrained: %d/%d seeds\n", st.NeverWorse, st.Seeds)
	// Decile sketch.
	b.WriteString("  distribution: ")
	for i := 0; i < 10 && len(st.Reductions) >= 10; i++ {
		v := st.Reductions[i*len(st.Reductions)/10]
		fmt.Fprintf(&b, "%.0f ", v)
	}
	b.WriteString("(deciles)\n")
	return b.String()
}
