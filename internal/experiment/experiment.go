// Package experiment drives the paper's evaluation (§5): it generates the
// five data sets, routes each with and without constraints, runs channel
// routing, and evaluates the final delays — producing the rows of Tables
// 1-3 and the headline statistics.
package experiment

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/seqroute"
)

// Run is the outcome of one routing run (one Table 2 row half).
type Run struct {
	DelayPs     float64 // worst constrained-path delay after channel routing
	EstimatedPs float64 // the router's own estimate (tentative trees)
	AreaMm2     float64
	LengthMm    float64
	CPUSec      float64
	Violations  int
	Tracks      int
	AddedCols   int
}

// Row is one data set's complete evaluation.
type Row struct {
	Name         string
	Cells, Nets  int
	Cons         int
	LowerBoundPs float64
	Con, Unc     Run
}

// DiffPct returns (delay - lower bound) / lower bound in percent for the
// constrained and unconstrained runs (Table 3).
func (r *Row) DiffPct() (con, unc float64) {
	return (r.Con.DelayPs - r.LowerBoundPs) / r.LowerBoundPs * 100,
		(r.Unc.DelayPs - r.LowerBoundPs) / r.LowerBoundPs * 100
}

// ImprovementPct is the paper's headline metric: the delay reduction as a
// percentage of the lower bound.
func (r *Row) ImprovementPct() float64 {
	return (r.Unc.DelayPs - r.Con.DelayPs) / r.LowerBoundPs * 100
}

// DelayImprovementPct is the relative delay reduction (of the
// unconstrained delay), the paper's "improvement in constrained data"
// range.
func (r *Row) DelayImprovementPct() float64 {
	return (r.Unc.DelayPs - r.Con.DelayPs) / r.Unc.DelayPs * 100
}

// RunCircuit routes a circuit in one mode and evaluates it end to end.
func RunCircuit(ckt *circuit.Circuit, cfg core.Config) (Run, error) {
	start := time.Now()
	res, err := core.Route(ckt, cfg)
	if err != nil {
		return Run{}, err
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		return Run{}, err
	}
	cpu := time.Since(start)
	delay, viol, err := FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		return Run{}, err
	}
	return Run{
		DelayPs:     delay,
		EstimatedPs: res.Delay,
		AreaMm2:     cr.AreaMm2,
		LengthMm:    cr.TotalLenUm / 1000,
		CPUSec:      cpu.Seconds(),
		Violations:  viol,
		Tracks:      res.Dens.TotalTracks(),
		AddedCols:   res.AddedPitches,
	}, nil
}

// FinalDelay evaluates the constraints with post-channel-routing lengths
// (the paper's measurement) and counts violations.
func FinalDelay(ckt *circuit.Circuit, netLenUm []float64) (worst float64, violations int, err error) {
	dg, err := dgraph.New(ckt)
	if err != nil {
		return 0, 0, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(netLenUm)
	tm.Analyze()
	for p := range tm.Cons {
		if tm.Cons[p].Worst > worst {
			worst = tm.Cons[p].Worst
		}
		if tm.Cons[p].Margin < 0 {
			violations++
		}
	}
	return worst, violations, nil
}

// RunDataset evaluates one named data set (e.g. "C1P1") in both modes.
func RunDataset(name string, base core.Config) (*Row, error) {
	p, err := gen.Dataset(name)
	if err != nil {
		return nil, err
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	return RunGenerated(name, ckt, base)
}

// RunGenerated evaluates an already generated circuit in both modes.
func RunGenerated(name string, ckt *circuit.Circuit, base core.Config) (*Row, error) {
	row := &Row{Name: name, Cells: logicCells(ckt), Nets: len(ckt.Nets), Cons: len(ckt.Cons)}
	_, lb, err := lowerbound.Delay(ckt)
	if err != nil {
		return nil, err
	}
	row.LowerBoundPs = lb
	conCfg := base
	conCfg.UseConstraints = true
	if row.Con, err = RunCircuit(ckt, conCfg); err != nil {
		return nil, fmt.Errorf("%s constrained: %w", name, err)
	}
	uncCfg := base
	uncCfg.UseConstraints = false
	if row.Unc, err = RunCircuit(ckt, uncCfg); err != nil {
		return nil, fmt.Errorf("%s unconstrained: %w", name, err)
	}
	return row, nil
}

func logicCells(ckt *circuit.Circuit) int {
	n := 0
	for i := range ckt.Cells {
		if !ckt.IsFeedCell(i) {
			n++
		}
	}
	return n
}

// RunAll evaluates the paper's five data sets.
func RunAll(base core.Config) ([]*Row, error) {
	var rows []*Row
	for _, name := range gen.DatasetNames() {
		row, err := RunDataset(name, base)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Headline aggregates the paper's summary statistics over the rows:
// the average delay reduction as % of lower bound (paper: 17.6%), the
// min/max relative improvement (paper: 0.56%-23.5%), and the average
// constrained difference from the lower bound (paper: <10%).
type Headline struct {
	AvgReductionOfLB   float64
	MinImprovementPct  float64
	MaxImprovementPct  float64
	AvgConDiffFromLB   float64
	AvgUncDiffFromLB   float64
	AreaChangeAvgPct   float64 // constrained vs unconstrained area
	HalfOrTenSatisfied int     // rows with con diff < 10% or < half the unc diff
}

// Summarize computes the headline statistics.
func Summarize(rows []*Row) Headline {
	var h Headline
	h.MinImprovementPct = math.Inf(1)
	h.MaxImprovementPct = math.Inf(-1)
	for _, r := range rows {
		h.AvgReductionOfLB += r.ImprovementPct()
		imp := r.DelayImprovementPct()
		h.MinImprovementPct = math.Min(h.MinImprovementPct, imp)
		h.MaxImprovementPct = math.Max(h.MaxImprovementPct, imp)
		con, unc := r.DiffPct()
		h.AvgConDiffFromLB += con
		h.AvgUncDiffFromLB += unc
		h.AreaChangeAvgPct += (r.Con.AreaMm2 - r.Unc.AreaMm2) / r.Unc.AreaMm2 * 100
		if con < 10 || con < unc/2 {
			h.HalfOrTenSatisfied++
		}
	}
	n := float64(len(rows))
	if n > 0 {
		h.AvgReductionOfLB /= n
		h.AvgConDiffFromLB /= n
		h.AvgUncDiffFromLB /= n
		h.AreaChangeAvgPct /= n
	}
	return h
}

// RunBaseline evaluates the sequential net-at-a-time baseline router on a
// circuit (same measurement pipeline as RunCircuit).
func RunBaseline(ckt *circuit.Circuit) (Run, error) {
	start := time.Now()
	res, err := seqroute.Route(ckt, seqroute.Config{UseConstraints: true})
	if err != nil {
		return Run{}, err
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		return Run{}, err
	}
	cpu := time.Since(start)
	delay, viol, err := FinalDelay(res.Ckt, cr.NetLenUm)
	if err != nil {
		return Run{}, err
	}
	return Run{
		DelayPs:     delay,
		EstimatedPs: res.Delay,
		AreaMm2:     cr.AreaMm2,
		LengthMm:    cr.TotalLenUm / 1000,
		CPUSec:      cpu.Seconds(),
		Violations:  viol,
		Tracks:      res.Dens.TotalTracks(),
		AddedCols:   res.AddedPitches,
	}, nil
}
