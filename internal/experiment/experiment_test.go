package experiment

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

func TestRunGeneratedSample(t *testing.T) {
	// The hand-built sample is tiny, so a full two-mode evaluation is
	// cheap and exercises the whole pipeline.
	row, err := RunGenerated("sample", circuit.SampleSmall(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if row.LowerBoundPs <= 0 {
		t.Fatal("no lower bound")
	}
	if row.Con.DelayPs < row.LowerBoundPs {
		t.Fatalf("constrained delay %v below lower bound %v", row.Con.DelayPs, row.LowerBoundPs)
	}
	if row.Unc.DelayPs < row.LowerBoundPs {
		t.Fatalf("unconstrained delay %v below lower bound %v", row.Unc.DelayPs, row.LowerBoundPs)
	}
	if row.Con.DelayPs > row.Unc.DelayPs+1e-6 {
		t.Fatalf("constrained delay %v worse than unconstrained %v", row.Con.DelayPs, row.Unc.DelayPs)
	}
	if row.Con.AreaMm2 <= 0 || row.Con.LengthMm <= 0 {
		t.Fatal("missing area/length")
	}
	if row.Cells != 5 {
		t.Fatalf("cells = %d, want 5 (the 3 feed cells are excluded)", row.Cells)
	}
}

func TestRunDatasetC1P1(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset run in -short mode")
	}
	row, err := RunDataset("C1P1", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	con, unc := row.DiffPct()
	if con < 0 || unc < 0 {
		t.Fatalf("delays below the lower bound: con=%v unc=%v", con, unc)
	}
	// The reproduction's expected shape: the constrained run is at least
	// as close to the lower bound as the unconstrained one.
	if con > unc+1e-9 {
		t.Fatalf("constrained diff %v%% worse than unconstrained %v%%", con, unc)
	}
	if row.ImprovementPct() < 0 {
		t.Fatalf("negative improvement %v", row.ImprovementPct())
	}
}

func TestSummarize(t *testing.T) {
	rows := []*Row{
		{Name: "A", LowerBoundPs: 100, Con: Run{DelayPs: 108, AreaMm2: 1.0}, Unc: Run{DelayPs: 130, AreaMm2: 1.0}},
		{Name: "B", LowerBoundPs: 200, Con: Run{DelayPs: 230, AreaMm2: 2.0}, Unc: Run{DelayPs: 270, AreaMm2: 2.1}},
	}
	h := Summarize(rows)
	// Row A: reduction (130-108)/100 = 22%; row B: (270-230)/200 = 20%.
	if h.AvgReductionOfLB < 20.9 || h.AvgReductionOfLB > 21.1 {
		t.Fatalf("AvgReductionOfLB = %v, want 21", h.AvgReductionOfLB)
	}
	// A: con diff 8% (<10 ok). B: con diff 15%, unc 35%: 15 < 17.5 ok.
	if h.HalfOrTenSatisfied != 2 {
		t.Fatalf("HalfOrTenSatisfied = %d, want 2", h.HalfOrTenSatisfied)
	}
	if h.MinImprovementPct > h.MaxImprovementPct {
		t.Fatal("min/max inverted")
	}
}

func TestScalingText(t *testing.T) {
	points := []ScalePoint{{Name: "X", Cells: 10, Nets: 8, GenSec: 0.01, RouteSec: 0.02, DelayPs: 123.4}}
	s := ScalingText(points)
	for _, want := range []string{"Runtime scaling", "X", "123.4"} {
		if !strings.Contains(s, want) {
			t.Errorf("scaling text missing %q:\n%s", want, s)
		}
	}
}

func TestRunBaselineSample(t *testing.T) {
	run, err := RunBaseline(circuit.SampleSmall())
	if err != nil {
		t.Fatal(err)
	}
	if run.DelayPs <= 0 || run.AreaMm2 <= 0 || run.LengthMm <= 0 {
		t.Fatalf("incomplete baseline run: %+v", run)
	}
	// The baseline and the concurrent router measure the same circuit; on
	// this tiny fixture they must land in the same ballpark.
	con, err := RunCircuit(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.DelayPs < con.DelayPs*0.5 || run.DelayPs > con.DelayPs*2 {
		t.Fatalf("baseline delay %v implausible vs %v", run.DelayPs, con.DelayPs)
	}
}

func TestRunAllAndScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	rows, err := RunAll(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	points, err := Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("scaling points = %d, want 4", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Nets < points[i-1].Nets {
			t.Fatalf("scaling points not ordered by size")
		}
	}
}

func TestRobustnessTextSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("generates circuits")
	}
	st, err := Robustness(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 3 || len(st.Reductions) != 3 {
		t.Fatalf("stats incomplete: %+v", st)
	}
	if st.MinPct > st.MedianPct || st.MedianPct > st.MaxPct {
		t.Fatalf("order statistics inconsistent: %+v", st)
	}
	s := RobustnessText(st)
	if !strings.Contains(s, "3 fresh circuits") || !strings.Contains(s, "mean") {
		t.Fatalf("text malformed:\n%s", s)
	}
}
