package gen

import "testing"

func datapathParams() Params {
	return Params{
		Name: "dp", Seed: 404, Cells: 160, Rows: 8,
		FeedFrac: 0.15, WideClock: true, Constraints: 6, LimitFactor: 1.2,
		Datapath: true,
	}
}

func TestDatapathGenerates(t *testing.T) {
	ckt, err := Generate(datapathParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ckt.Cons) == 0 {
		t.Fatal("no constraints")
	}
	// Structure: a register rank exists and a wide clock serves it.
	dffs, ctls := 0, 0
	for i := range ckt.Cells {
		if ckt.Lib[ckt.Cells[i].Type].Sequential {
			dffs++
		}
	}
	for i := range ckt.Ext {
		if len(ckt.Ext[i].Name) >= 3 && ckt.Ext[i].Name[:3] == "CTL" {
			ctls++
		}
	}
	if dffs == 0 {
		t.Fatal("no register ranks")
	}
	if ctls == 0 {
		t.Fatal("no control broadcasts")
	}
	// Control nets span many rows (the vertical stress pattern).
	sawTall := false
	for n := range ckt.Nets {
		if len(ckt.Nets[n].Name) >= 3 && ckt.Nets[n].Name[:3] == "ctl" {
			minCh, maxCh := 1<<30, -1
			for _, tr := range ckt.Terminals(n) {
				for _, pos := range ckt.PositionsOf(tr) {
					if pos.Channel < minCh {
						minCh = pos.Channel
					}
					if pos.Channel > maxCh {
						maxCh = pos.Channel
					}
				}
			}
			if maxCh-minCh >= ckt.Rows-1 {
				sawTall = true
			}
		}
	}
	if !sawTall {
		t.Fatal("no control net spans the full bit stack")
	}
}

func TestDatapathDeterministic(t *testing.T) {
	a, err := Generate(datapathParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(datapathParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) {
		t.Fatal("datapath generation not deterministic")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestDatapathDataFlowIsLeftToRight(t *testing.T) {
	ckt, err := Generate(datapathParams())
	if err != nil {
		t.Fatal(err)
	}
	// Every dp net's driver sits left of (or at) its sinks in the same or
	// adjacent row — the pipeline property.
	for n := range ckt.Nets {
		name := ckt.Nets[n].Name
		if len(name) < 2 || name[:2] != "dp" {
			continue
		}
		terms := ckt.Terminals(n)
		drv := terms[0]
		if drv.IsExt() {
			continue
		}
		dcol := ckt.Cells[drv.Cell].Col
		for _, s := range terms[1:] {
			if s.IsExt() {
				continue
			}
			// Cross-bit taps live in rows with different column drift;
			// the strict ordering holds within the driver's own row.
			if ckt.Cells[s.Cell].Row != ckt.Cells[drv.Cell].Row {
				continue
			}
			if ckt.Cells[s.Cell].Col < dcol {
				t.Fatalf("net %s flows right to left", name)
			}
		}
	}
}
