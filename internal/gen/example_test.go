package gen_test

import (
	"fmt"

	"repro/internal/gen"
)

// ExampleGenerate synthesizes the paper-style data set C1P1.
func ExampleGenerate() {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d cells, %d nets, %d constraints, %d rows\n",
		ckt.Name, len(ckt.Cells), len(ckt.Nets), len(ckt.Cons), ckt.Rows)
	// Output:
	// C1P1: 300 cells, 201 nets, 8 constraints, 6 rows
}
