package gen

import (
	"fmt"

	"repro/internal/circuit"
)

// Datapath mode synthesizes bit-sliced circuits shaped like the paper's
// transmission-system chips: B bit rows (one per cell row) flowing through
// S pipeline stages left to right, registered every few stages, with
// stage-wide control nets broadcast vertically from bottom pads — the
// vertical fan-out pattern that makes bipolar feedthrough scarcity bite.
//
// Enable with Params.Datapath. DiffPairs is ignored in this mode; the wide
// clock and constraints work as in random mode.

// buildDatapath replaces pickCells/place/wire for datapath circuits.
func (g *builder) buildDatapath() error {
	ckt := g.ckt
	bits := g.p.Rows
	stages := g.p.Cells / bits
	if stages < 3 {
		stages = 3
	}
	const regEvery = 4 // every 4th stage is a register rank

	type slot struct{ cell int }
	grid := make([][]slot, stages)
	// Choose types: register ranks are DFF, others random comb with at
	// least two inputs so control nets have somewhere to land.
	combTypes := []int{tNOR2, tNOR3, tOR2}
	for s := 0; s < stages; s++ {
		grid[s] = make([]slot, bits)
		for b := 0; b < bits; b++ {
			ti := combTypes[g.rng.Intn(len(combTypes))]
			if s%regEvery == regEvery-1 {
				ti = tDFF
			}
			idx := len(ckt.Cells)
			ckt.Cells = append(ckt.Cells, circuit.Cell{
				Name: fmt.Sprintf("d%02d_%02d", s, b), Type: ti,
			})
			grid[s][b] = slot{cell: idx}
			if ti == tDFF {
				g.dffs = append(g.dffs, idx)
			}
		}
	}
	// Placement: row b holds its bit's stages in order; feed cells
	// interleave per FeedFrac (P1) or pile at the right end (P2).
	maxWidth := 0
	rowSeqs := make([][]int, bits)
	for b := 0; b < bits; b++ {
		var seq []int
		for s := 0; s < stages; s++ {
			seq = append(seq, grid[s][b].cell)
		}
		nFeeds := int(float64(len(seq))*g.p.FeedFrac + 0.999)
		if nFeeds < 1 {
			nFeeds = 1
		}
		mkFeed := func(k int) int {
			idx := len(ckt.Cells)
			ckt.Cells = append(ckt.Cells, circuit.Cell{
				Name: fmt.Sprintf("fd%02d_%03d", b, k), Type: tFEED,
			})
			return idx
		}
		if g.p.Style == P1 {
			step := float64(len(seq)+1) / float64(nFeeds+1)
			for k := nFeeds - 1; k >= 0; k-- {
				at := int(step * float64(k+1))
				if at > len(seq) {
					at = len(seq)
				}
				seq = append(seq[:at], append([]int{mkFeed(k)}, seq[at:]...)...)
			}
		} else {
			for k := 0; k < nFeeds; k++ {
				seq = append(seq, mkFeed(k))
			}
		}
		rowSeqs[b] = seq
		w := 0
		for _, c := range seq {
			w += ckt.Lib[ckt.Cells[c].Type].Width
		}
		if w > maxWidth {
			maxWidth = w
		}
	}
	ckt.Cols = maxWidth + 4
	for b, seq := range rowSeqs {
		col := 0
		for _, c := range seq {
			ckt.Cells[c].Row = b
			ckt.Cells[c].Col = col
			col += ckt.Lib[ckt.Cells[c].Type].Width
		}
	}

	// Wiring. Data nets: (s,b) output -> first input of (s+1,b); with a
	// small probability the data also taps the neighbouring bit (shuffle
	// stages of a real datapath).
	used := map[circuit.PinRef]bool{}
	netFor := map[circuit.PinRef]int{}
	mkNet := func(drv circuit.PinRef, name string) int {
		if n, ok := netFor[drv]; ok {
			return n
		}
		n := len(ckt.Nets)
		ckt.Nets = append(ckt.Nets, circuit.Net{
			Name: name, Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{drv},
		})
		netFor[drv] = n
		return n
	}
	outPin := func(cell int) circuit.PinRef {
		ct := ckt.CellTypeOf(cell)
		for pi := range ct.Pins {
			if ct.Pins[pi].Dir == circuit.Out {
				return circuit.PinRef{Cell: cell, Pin: pi}
			}
		}
		panic("gen: datapath cell without output")
	}
	inPins := func(cell int) []circuit.PinRef {
		var out []circuit.PinRef
		ct := ckt.CellTypeOf(cell)
		for pi := range ct.Pins {
			if ct.Pins[pi].Dir == circuit.In && ct.Pins[pi].Name != "CK" {
				out = append(out, circuit.PinRef{Cell: cell, Pin: pi})
			}
		}
		return out
	}
	for s := 0; s+1 < stages; s++ {
		for b := 0; b < bits; b++ {
			drv := outPin(grid[s][b].cell)
			n := mkNet(drv, fmt.Sprintf("dp%02d_%02d", s, b))
			sinks := inPins(grid[s+1][b].cell)
			ckt.Nets[n].Pins = append(ckt.Nets[n].Pins, sinks[0])
			used[sinks[0]] = true
			if g.rng.Float64() < 0.3 {
				nb := (b + 1) % bits
				nSinks := inPins(grid[s+1][nb].cell)
				if len(nSinks) > 1 && !used[nSinks[1]] {
					ckt.Nets[n].Pins = append(ckt.Nets[n].Pins, nSinks[1])
					used[nSinks[1]] = true
				}
			}
		}
	}
	// Control nets: a bottom pad per third comb stage broadcasting to
	// every bit's last input — tall vertical nets.
	ctl := 0
	for s := 2; s < stages; s += 3 {
		if s%regEvery == regEvery-1 {
			continue
		}
		n := len(ckt.Nets)
		net := circuit.Net{Name: fmt.Sprintf("ctl%02d", ctl), Pitch: 1, DiffMate: circuit.NoNet}
		for b := 0; b < bits; b++ {
			pins := inPins(grid[s][b].cell)
			last := pins[len(pins)-1]
			if !used[last] {
				net.Pins = append(net.Pins, last)
				used[last] = true
			}
		}
		if len(net.Pins) < 2 {
			continue
		}
		ckt.Nets = append(ckt.Nets, net)
		col := ckt.Cells[grid[s][0].cell].Col
		if col >= ckt.Cols {
			col = ckt.Cols - 1
		}
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("CTL%02d", ctl), Net: n, Side: circuit.Bottom,
			Cols: dedupCols(col, min(col+3, ckt.Cols-1)), Dir: circuit.In, Tf: 0.15, Td: 0.12,
		})
		ctl++
	}
	// Primary inputs feed stage 0; primary outputs tap the last stage.
	for b := 0; b < bits; b++ {
		n := len(ckt.Nets)
		piSink := inPins(grid[0][b].cell)[0]
		used[piSink] = true
		ckt.Nets = append(ckt.Nets, circuit.Net{
			Name: fmt.Sprintf("pi%02d", b), Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{piSink},
		})
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("PI%02d", b), Net: n, Side: circuit.Bottom,
			Cols: dedupCols(b*2%ckt.Cols, (b*2+1)%ckt.Cols), Dir: circuit.In, Tf: 0.2, Td: 0.15,
		})
		drv := outPin(grid[stages-1][b].cell)
		on := mkNet(drv, fmt.Sprintf("po%02d", b))
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("PO%02d", b), Net: on, Side: circuit.Top,
			Cols: dedupCols(ckt.Cols-1-b*2%ckt.Cols, ckt.Cols-1), Dir: circuit.Out, Fin: 30,
		})
	}
	// Clock to every DFF.
	if len(g.dffs) > 0 {
		pitch := 1
		if g.p.WideClock {
			pitch = 2
		}
		n := len(ckt.Nets)
		net := circuit.Net{Name: "clk", Pitch: pitch, DiffMate: circuit.NoNet}
		for _, cell := range g.dffs {
			ct := ckt.CellTypeOf(cell)
			net.Pins = append(net.Pins, circuit.PinRef{Cell: cell, Pin: ct.PinIndex("CK")})
		}
		ckt.Nets = append(ckt.Nets, net)
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: "CKIN", Net: n, Side: circuit.Bottom,
			Cols: dedupCols(ckt.Cols/2, ckt.Cols/2+3), Dir: circuit.In, Tf: 0.08, Td: 0.06,
		})
	}
	g.compactNets()
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
