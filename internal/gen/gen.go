// Package gen synthesizes bipolar standard-cell test circuits of the kind
// the paper evaluates on (NTT 10-Gbit/s transmission-system chips C1-C3,
// which are proprietary). The generator reproduces the structural features
// the router's heuristics exercise: levelized register-bounded logic,
// scarce feedthrough positions, multi-row nets, multi-tap terminals,
// differential pairs, a wide clock, and tight path constraints derived
// from the half-perimeter lower bound.
//
// Placements come in the paper's two styles: P1 distributes the free feed
// cells evenly along each row; P2 sweeps them aside to the row ends to
// show the value of even spacing.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/lowerbound"
)

// PlacementStyle selects the paper's P1 or P2 feed-cell arrangement.
type PlacementStyle int

const (
	// P1 spaces feed cells evenly between logic cells.
	P1 PlacementStyle = iota
	// P2 pushes all feed cells to the right end of each row.
	P2
)

func (s PlacementStyle) String() string {
	if s == P1 {
		return "P1"
	}
	return "P2"
}

// Params controls circuit synthesis.
type Params struct {
	Name string
	Seed int64

	Cells int // logic cells (excluding feed cells and diff pairs)
	Rows  int

	SeqFrac   float64 // fraction of cells that are flip-flops
	AvgFanout float64 // mean extra sinks per driven net
	Locality  int     // how far back (in placement rank) drivers are drawn from

	PIs, POs  int // external input/output pads
	DiffPairs int // differential driver/receiver pairs (§4.1)
	WideClock bool

	FeedFrac float64 // feed cells per row, as a fraction of the row's cells
	Style    PlacementStyle

	Constraints int
	// LimitFactor sets every constraint's limit to LimitFactor times its
	// half-perimeter lower-bound delay (Table 3's reference).
	LimitFactor float64

	// Datapath switches to bit-sliced synthesis (one bit per row, staged
	// pipeline, vertical control broadcasts); DiffPairs is ignored there.
	Datapath bool

	// MultiSink makes roughly a third of the constraints use several sink
	// terminals (the paper's T_P is a set). Off in the presets to keep
	// the recorded tables stable.
	MultiSink bool
}

// Dataset returns the preset parameters of the paper-style data sets
// C1P1, C1P2, C2P1, C2P2, C3P1 (Table 1).
func Dataset(name string) (Params, error) {
	base := map[string]Params{
		"C1": {Cells: 240, Rows: 6, Seed: 101, Constraints: 8, DiffPairs: 3, PIs: 12, POs: 10},
		"C2": {Cells: 480, Rows: 8, Seed: 202, Constraints: 12, DiffPairs: 5, PIs: 16, POs: 14},
		"C3": {Cells: 860, Rows: 10, Seed: 303, Constraints: 18, DiffPairs: 8, PIs: 20, POs: 18},
	}
	if len(name) != 4 {
		return Params{}, fmt.Errorf("gen: unknown data set %q", name)
	}
	p, ok := base[name[:2]]
	if !ok {
		return Params{}, fmt.Errorf("gen: unknown circuit %q", name[:2])
	}
	switch name[2:] {
	case "P1":
		p.Style = P1
	case "P2":
		p.Style = P2
	default:
		return Params{}, fmt.Errorf("gen: unknown placement %q", name[2:])
	}
	p.Name = name
	p.SeqFrac = 0.18
	p.AvgFanout = 1.6
	p.Locality = 24
	p.FeedFrac = 0.20
	p.WideClock = true
	p.LimitFactor = 1.15
	return p, nil
}

// DatasetNames lists the paper's five data sets in Table 1/2 order.
func DatasetNames() []string {
	return []string{"C1P1", "C1P2", "C2P1", "C2P2", "C3P1"}
}

// StressParams is a circuit well beyond the paper's scale (≈2000 logic
// cells), used by the scalability test and bench.
func StressParams() Params {
	return Params{
		Name: "stress", Seed: 777, Cells: 2000, Rows: 14,
		SeqFrac: 0.18, AvgFanout: 1.6, Locality: 30,
		PIs: 30, POs: 26, DiffPairs: 12, WideClock: true,
		FeedFrac: 0.2, Constraints: 30, LimitFactor: 1.15,
		Style: P1,
	}
}

// Library cell-type indices, in the order Lib returns them.
const (
	tINV = iota
	tBUF
	tNOR2
	tNOR3
	tOR2
	tDFF
	tDRV2
	tRCV2
	tFEED
)

// Lib is the generator's ECL-flavoured library. Delay numbers are in the
// regime of late-era bipolar gates: intrinsic delays around 60-120 ps,
// fan-in loads of 10-30 fF, drive factors a fraction of a ps per fF.
func Lib() []circuit.CellType {
	return []circuit.CellType{
		{Name: "INV", Width: 2, Pins: []circuit.PinDef{
			in("A", 0, 18),
			out("Z", []int{1}, 0.32, 0.24),
		}, Arcs: arcs("A", "Z", 88)},
		{Name: "BUF", Width: 3, Pins: []circuit.PinDef{
			in("A", 0, 16),
			out("Z", []int{0, 2}, 0.14, 0.11), // dual tap
		}, Arcs: arcs("A", "Z", 68)},
		{Name: "NOR2", Width: 3, Pins: []circuit.PinDef{
			in("A", 0, 22), in("B", 1, 22),
			out("Z", []int{2}, 0.28, 0.21),
		}, Arcs: append(arcs("A", "Z", 94), arcs("B", "Z", 99)...)},
		{Name: "NOR3", Width: 4, Pins: []circuit.PinDef{
			in("A", 0, 24), in("B", 1, 24), in("C", 2, 24),
			out("Z", []int{1, 3}, 0.30, 0.23), // dual tap
		}, Arcs: append(append(arcs("A", "Z", 102), arcs("B", "Z", 108)...), arcs("C", "Z", 113)...)},
		{Name: "OR2", Width: 3, Pins: []circuit.PinDef{
			in("A", 0, 20), in("B", 1, 20),
			out("Z", []int{2}, 0.27, 0.20),
		}, Arcs: append(arcs("A", "Z", 90), arcs("B", "Z", 96)...)},
		{Name: "DFF", Width: 5, Sequential: true, Pins: []circuit.PinDef{
			in("D", 0, 24), in("CK", 2, 12),
			out("Q", []int{3, 4}, 0.24, 0.19), // dual tap
		}},
		{Name: "DRV2", Width: 4, Pins: []circuit.PinDef{
			in("A", 0, 20),
			out("Q", []int{2}, 0.17, 0.14),
			out("QB", []int{3}, 0.17, 0.14),
		}, Arcs: append(arcs("A", "Q", 84), arcs("A", "QB", 84)...)},
		{Name: "RCV2", Width: 4, Pins: []circuit.PinDef{
			in("IN", 1, 25), in("INB", 2, 25),
			out("Z", []int{3}, 0.26, 0.20),
		}, Arcs: append(arcs("IN", "Z", 74), arcs("INB", "Z", 74)...)},
		{Name: "FEED", Width: 1, Feed: true},
	}
}

func in(name string, off int, fin float64) circuit.PinDef {
	return circuit.PinDef{Name: name, Dir: circuit.In, Side: circuit.Bottom, Offsets: []int{off}, Fin: fin}
}

func out(name string, offs []int, tf, td float64) circuit.PinDef {
	return circuit.PinDef{Name: name, Dir: circuit.Out, Side: circuit.Top, Offsets: offs, Tf: tf, Td: td}
}

func arcs(from, to string, t0 float64) []circuit.Arc {
	return []circuit.Arc{{From: from, To: to, T0: t0}}
}

// Generate synthesizes a circuit. The result always validates.
func Generate(p Params) (*circuit.Circuit, error) {
	if p.Cells < 10 || p.Rows < 2 {
		return nil, fmt.Errorf("gen: need at least 10 cells and 2 rows")
	}
	if p.AvgFanout <= 0 {
		p.AvgFanout = 1.5
	}
	if p.Locality <= 0 {
		p.Locality = 20
	}
	if p.LimitFactor <= 0 {
		p.LimitFactor = 1.10
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &builder{p: p, rng: rng, ckt: &circuit.Circuit{
		Name: p.Name, Tech: circuit.DefaultTech, Rows: p.Rows, Lib: Lib(),
	}}
	if p.Datapath {
		if err := g.buildDatapath(); err != nil {
			return nil, err
		}
	} else {
		g.pickCells()
		g.place()
		g.wire()
	}
	if err := g.constraints(); err != nil {
		return nil, err
	}
	if err := g.ckt.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated circuit invalid: %w", err)
	}
	return g.ckt, nil
}

type builder struct {
	p   Params
	rng *rand.Rand
	ckt *circuit.Circuit

	ranks   []int // cell index per rank (logic cells only)
	diffDrv []int // DRV2 cell indices
	diffRcv []int
	dffs    []int
}

func (g *builder) cellWidth(ti int) int { return g.ckt.Lib[ti].Width }

// pickCells chooses types for the logic cells plus the diff-pair cells.
func (g *builder) pickCells() {
	combTypes := []int{tINV, tBUF, tNOR2, tNOR3, tOR2}
	weights := []int{2, 2, 4, 2, 3}
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	for i := 0; i < g.p.Cells; i++ {
		ti := tDFF
		if g.rng.Float64() >= g.p.SeqFrac {
			r := g.rng.Intn(wsum)
			for k, w := range weights {
				if r < w {
					ti = combTypes[k]
					break
				}
				r -= w
			}
		}
		idx := len(g.ckt.Cells)
		g.ckt.Cells = append(g.ckt.Cells, circuit.Cell{Name: fmt.Sprintf("u%04d", idx), Type: ti})
		g.ranks = append(g.ranks, idx)
		if ti == tDFF {
			g.dffs = append(g.dffs, idx)
		}
	}
	for d := 0; d < g.p.DiffPairs; d++ {
		di := len(g.ckt.Cells)
		g.ckt.Cells = append(g.ckt.Cells, circuit.Cell{Name: fmt.Sprintf("dd%02d", d), Type: tDRV2})
		ri := len(g.ckt.Cells)
		g.ckt.Cells = append(g.ckt.Cells, circuit.Cell{Name: fmt.Sprintf("dr%02d", d), Type: tRCV2})
		g.diffDrv = append(g.diffDrv, di)
		g.diffRcv = append(g.diffRcv, ri)
	}
}

// place lays the cells out snake-wise across the rows and inserts the free
// feed cells per the placement style.
func (g *builder) place() {
	ckt := g.ckt
	// Distribute all cells (logic in rank order, then diff cells spread
	// in) across rows.
	order := append([]int{}, g.ranks...)
	for i := range g.diffDrv {
		// Drivers and receivers interleave into the sequence so pairs land
		// in adjacent rows most of the time.
		pos := (i + 1) * len(order) / (len(g.diffDrv) + 1)
		order = append(order[:pos], append([]int{g.diffDrv[i], g.diffRcv[i]}, order[pos:]...)...)
	}
	perRow := (len(order) + ckt.Rows - 1) / ckt.Rows
	rows := make([][]int, ckt.Rows)
	for i, cell := range order {
		r := i / perRow
		if r >= ckt.Rows {
			r = ckt.Rows - 1
		}
		if r%2 == 1 {
			// snake: odd rows fill right-to-left
			rows[r] = append([]int{cell}, rows[r]...)
		} else {
			rows[r] = append(rows[r], cell)
		}
	}
	// Feed cells per row.
	feedIdx := func(r, k int) int {
		idx := len(ckt.Cells)
		ckt.Cells = append(ckt.Cells, circuit.Cell{Name: fmt.Sprintf("fd%02d_%03d", r, k), Type: tFEED})
		return idx
	}
	maxWidth := 0
	rowSeqs := make([][]int, ckt.Rows)
	for r := range rows {
		nFeeds := int(float64(len(rows[r]))*g.p.FeedFrac + 0.999)
		if nFeeds < 1 {
			nFeeds = 1
		}
		seq := append([]int{}, rows[r]...)
		if g.p.Style == P1 && len(seq) > 0 {
			// Insert feeds evenly between cells.
			step := float64(len(seq)+1) / float64(nFeeds+1)
			for k := nFeeds - 1; k >= 0; k-- {
				at := int(step * float64(k+1))
				if at > len(seq) {
					at = len(seq)
				}
				fi := feedIdx(r, k)
				seq = append(seq[:at], append([]int{fi}, seq[at:]...)...)
			}
		} else {
			for k := 0; k < nFeeds; k++ {
				seq = append(seq, feedIdx(r, k))
			}
		}
		rowSeqs[r] = seq
		w := 0
		for _, c := range seq {
			w += g.cellWidth(ckt.Cells[c].Type)
		}
		if w > maxWidth {
			maxWidth = w
		}
	}
	ckt.Cols = maxWidth + 4
	for r, seq := range rowSeqs {
		col := 0
		for _, c := range seq {
			ckt.Cells[c].Row = r
			ckt.Cells[c].Col = col
			col += g.cellWidth(ckt.Cells[c].Type)
		}
	}
}

// drvInfo describes a candidate driver for net synthesis.
type drvInfo struct {
	ref  circuit.PinRef
	rank int
}

// dist is the physical cost of wiring cell `to` from a driver: row
// crossings are far more expensive than horizontal distance, matching the
// scarcity of bipolar feedthroughs.
func (g *builder) dist(d drvInfo, to int) int {
	a, b := &g.ckt.Cells[d.ref.Cell], &g.ckt.Cells[to]
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr*40 + dc
}

// pickLocal samples up to k pool entries and returns the physically
// nearest one.
func (g *builder) pickLocal(pool []drvInfo, to, k int) drvInfo {
	best := pool[g.rng.Intn(len(pool))]
	bd := g.dist(best, to)
	for i := 1; i < k && i < len(pool); i++ {
		c := pool[g.rng.Intn(len(pool))]
		if d := g.dist(c, to); d < bd {
			best, bd = c, d
		}
	}
	return best
}

// wire connects every input pin to a driver, creates the pads, the clock,
// and the differential nets.
func (g *builder) wire() {
	ckt := g.ckt
	var drivers []drvInfo // combinational outputs + DFF Q outputs, by rank
	rankOf := make(map[int]int)
	for rank, cell := range g.ranks {
		rankOf[cell] = rank
	}
	for rank, cell := range g.ranks {
		ct := ckt.CellTypeOf(cell)
		for pi := range ct.Pins {
			if ct.Pins[pi].Dir == circuit.Out {
				drivers = append(drivers, drvInfo{circuit.PinRef{Cell: cell, Pin: pi}, rank})
			}
		}
	}
	netOf := map[circuit.PinRef]int{} // driver -> net index
	netFor := func(drv circuit.PinRef) int {
		if n, ok := netOf[drv]; ok {
			return n
		}
		n := len(ckt.Nets)
		ckt.Nets = append(ckt.Nets, circuit.Net{
			Name:  fmt.Sprintf("n%04d", n),
			Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{drv},
		})
		netOf[drv] = n
		return n
	}

	// External input pads feed rank-0-ish logic.
	piNets := make([]int, 0, g.p.PIs)
	for i := 0; i < g.p.PIs; i++ {
		n := len(ckt.Nets)
		ckt.Nets = append(ckt.Nets, circuit.Net{Name: fmt.Sprintf("pi%02d", i), Pitch: 1, DiffMate: circuit.NoNet})
		col1 := g.rng.Intn(ckt.Cols)
		col2 := g.rng.Intn(ckt.Cols)
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("PI%02d", i), Net: n, Side: circuit.Bottom,
			Cols: dedupCols(col1, col2), Dir: circuit.In, Tf: 0.2, Td: 0.15,
		})
		piNets = append(piNets, n)
	}

	// Connect every combinational input and every DFF D input.
	for rank, cell := range g.ranks {
		ct := ckt.CellTypeOf(cell)
		for pi := range ct.Pins {
			pd := &ct.Pins[pi]
			if pd.Dir != circuit.In || pd.Name == "CK" {
				continue
			}
			ref := circuit.PinRef{Cell: cell, Pin: pi}
			if ct.Sequential {
				// D inputs may be driven from any logic output (register
				// boundaries cut timing cycles); stay physically local.
				if len(drivers) > 0 {
					d := g.pickLocal(drivers, cell, 9)
					nn := netFor(d.ref)
					ckt.Nets[nn].Pins = append(ckt.Nets[nn].Pins, ref)
					continue
				}
			}
			// Combinational inputs: drivers of strictly lower rank with a
			// locality bias, else a PI pad.
			var pool []drvInfo
			lo := rank - g.p.Locality
			for _, d := range drivers {
				dRank := d.rank
				seq := ckt.Lib[ckt.Cells[d.ref.Cell].Type].Sequential
				if seq || (dRank < rank && dRank >= lo) {
					pool = append(pool, d)
				}
			}
			usePI := len(pool) == 0 || g.rng.Float64() < 0.12
			if usePI && len(piNets) > 0 {
				// Nearest pad by column keeps pad nets short.
				bestPI, bd := -1, 1<<30
				for k := 0; k < 4; k++ {
					i := g.rng.Intn(len(piNets))
					col := ckt.Ext[extOfNet(ckt, piNets[i])].Cols[0]
					d := col - ckt.Cells[cell].Col
					if d < 0 {
						d = -d
					}
					d += ckt.Cells[cell].Row * 40
					if d < bd {
						bestPI, bd = i, d
					}
				}
				ckt.Nets[piNets[bestPI]].Pins = append(ckt.Nets[piNets[bestPI]].Pins, ref)
				continue
			}
			if len(pool) == 0 {
				continue
			}
			d := g.pickLocal(pool, cell, 9)
			if !ckt.Lib[ckt.Cells[d.ref.Cell].Type].Sequential && rankOf[d.ref.Cell] >= rank {
				continue
			}
			nn := netFor(d.ref)
			ckt.Nets[nn].Pins = append(ckt.Nets[nn].Pins, ref)
		}
	}

	// Differential pairs: pick a driver for each DRV2.A, wire Q->IN and
	// QB->INB, terminate RCV2.Z in an output pad.
	for i := range g.diffDrv {
		drvCell, rcvCell := g.diffDrv[i], g.diffRcv[i]
		lt := ckt.CellTypeOf(drvCell)
		aRef := circuit.PinRef{Cell: drvCell, Pin: lt.PinIndex("A")}
		if len(drivers) > 0 {
			d := g.pickLocal(drivers, drvCell, 9)
			nn := netFor(d.ref)
			ckt.Nets[nn].Pins = append(ckt.Nets[nn].Pins, aRef)
		} else if len(piNets) > 0 {
			n := piNets[0]
			ckt.Nets[n].Pins = append(ckt.Nets[n].Pins, aRef)
		}
		rt := ckt.CellTypeOf(rcvCell)
		q := len(ckt.Nets)
		ckt.Nets = append(ckt.Nets, circuit.Net{
			Name: fmt.Sprintf("dq%02d", i), Pitch: 1, DiffMate: q + 1,
			Pins: []circuit.PinRef{
				{Cell: drvCell, Pin: lt.PinIndex("Q")},
				{Cell: rcvCell, Pin: rt.PinIndex("IN")},
			},
		})
		ckt.Nets = append(ckt.Nets, circuit.Net{
			Name: fmt.Sprintf("dqb%02d", i), Pitch: 1, DiffMate: q,
			Pins: []circuit.PinRef{
				{Cell: drvCell, Pin: lt.PinIndex("QB")},
				{Cell: rcvCell, Pin: rt.PinIndex("INB")},
			},
		})
		zNet := netFor(circuit.PinRef{Cell: rcvCell, Pin: rt.PinIndex("Z")})
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("DO%02d", i), Net: zNet, Side: circuit.Top,
			Cols: dedupCols(g.rng.Intn(ckt.Cols), g.rng.Intn(ckt.Cols)),
			Dir:  circuit.Out, Fin: 28,
		})
	}

	// Clock: one pad to every DFF CK pin; optionally a 2-pitch wire.
	if len(g.dffs) > 0 {
		n := len(ckt.Nets)
		pitch := 1
		if g.p.WideClock {
			pitch = 2
		}
		net := circuit.Net{Name: "clk", Pitch: pitch, DiffMate: circuit.NoNet}
		for _, cell := range g.dffs {
			ct := ckt.CellTypeOf(cell)
			net.Pins = append(net.Pins, circuit.PinRef{Cell: cell, Pin: ct.PinIndex("CK")})
		}
		ckt.Nets = append(ckt.Nets, net)
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: "CKIN", Net: n, Side: circuit.Bottom,
			Cols: dedupCols(ckt.Cols/2, ckt.Cols/2+3), Dir: circuit.In, Tf: 0.08, Td: 0.06,
		})
	}

	// Output pads on a sample of still-unloaded outputs, plus enough to
	// reach the requested count.
	pos := 0
	loaded := map[circuit.PinRef]bool{}
	for n := range ckt.Nets {
		if len(ckt.Nets[n].Pins) > 0 {
			loaded[ckt.Nets[n].Pins[0]] = true
		}
	}
	for _, d := range drivers {
		if pos >= g.p.POs {
			break
		}
		n, driven := netOf[d.ref]
		if !driven {
			continue
		}
		if len(ckt.Nets[n].Pins) > 1 && g.rng.Float64() < 0.8 {
			continue
		}
		ckt.Ext = append(ckt.Ext, circuit.ExtPin{
			Name: fmt.Sprintf("PO%02d", pos), Net: n, Side: circuit.Top,
			Cols: dedupCols(g.rng.Intn(ckt.Cols), g.rng.Intn(ckt.Cols)),
			Dir:  circuit.Out, Fin: 30,
		})
		pos++
	}

	// Drop nets that never got a sink (outputs nobody listens to): invalid
	// single-terminal nets must not remain.
	g.compactNets()
}

// compactNets removes single-terminal nets and remaps indices.
func (g *builder) compactNets() {
	ckt := g.ckt
	keep := make([]bool, len(ckt.Nets))
	for n := range ckt.Nets {
		terms := 0
		terms += len(ckt.Nets[n].Pins)
		for i := range ckt.Ext {
			if ckt.Ext[i].Net == n {
				terms++
			}
		}
		keep[n] = terms >= 2
	}
	remap := make([]int, len(ckt.Nets))
	var nets []circuit.Net
	for n := range ckt.Nets {
		if keep[n] {
			remap[n] = len(nets)
			nets = append(nets, ckt.Nets[n])
		} else {
			remap[n] = -1
		}
	}
	for i := range nets {
		if m := nets[i].DiffMate; m != circuit.NoNet {
			nets[i].DiffMate = remap[m]
		}
	}
	var exts []circuit.ExtPin
	for i := range ckt.Ext {
		if remap[ckt.Ext[i].Net] != -1 {
			e := ckt.Ext[i]
			e.Net = remap[e.Net]
			exts = append(exts, e)
		}
	}
	ckt.Nets = nets
	ckt.Ext = exts
}

// constraints picks register/pad-bounded paths and limits them at
// LimitFactor times their lower-bound delay.
func (g *builder) constraints() error {
	ckt := g.ckt
	if g.p.Constraints == 0 {
		return nil
	}
	// Sources: external input pads and DFF Q outputs that drive nets.
	// Sinks: DFF D inputs and external output pads.
	idx := ckt.BuildPinNetIndex()
	var sources, sinks []circuit.PinRef
	for i := range ckt.Ext {
		if ckt.Ext[i].Dir == circuit.In && ckt.Ext[i].Name != "CKIN" {
			sources = append(sources, circuit.Ext(i))
		} else if ckt.Ext[i].Dir == circuit.Out {
			sinks = append(sinks, circuit.Ext(i))
		}
	}
	for _, cell := range g.dffs {
		ct := ckt.CellTypeOf(cell)
		q := circuit.PinRef{Cell: cell, Pin: ct.PinIndex("Q")}
		if idx.Contains(q) {
			sources = append(sources, q)
		}
		d := circuit.PinRef{Cell: cell, Pin: ct.PinIndex("D")}
		if idx.Contains(d) {
			sinks = append(sinks, d)
		}
	}
	if len(sources) == 0 || len(sinks) == 0 {
		return fmt.Errorf("gen: no constraint endpoints available")
	}
	// Reachability over the (constraint-free) delay graph, computed once
	// per sampled source.
	dg, err := dgraph.New(ckt)
	if err != nil {
		return err
	}
	reach := map[int][]bool{} // source index -> reachable vertex set
	tried := map[[2]int]bool{}
	for attempts := 0; len(ckt.Cons) < g.p.Constraints && attempts < 200*g.p.Constraints; attempts++ {
		si := g.rng.Intn(len(sources))
		ti := g.rng.Intn(len(sinks))
		if tried[[2]int{si, ti}] {
			continue
		}
		tried[[2]int{si, ti}] = true
		r, ok := reach[si]
		if !ok {
			r = dg.Reachable(sources[si])
			reach[si] = r
		}
		sinkV := dg.VertexOf(sinks[ti])
		srcV := dg.VertexOf(sources[si])
		if sinkV < 0 || !r[sinkV] || sinkV == srcV {
			continue // unreachable or degenerate pair
		}
		to := []circuit.PinRef{sinks[ti]}
		if g.p.MultiSink && g.rng.Intn(3) == 0 {
			// Add up to two more reachable sinks: T_P as a set.
			for extra := 0; extra < 2; extra++ {
				tj := g.rng.Intn(len(sinks))
				v := dg.VertexOf(sinks[tj])
				if v < 0 || !r[v] || v == srcV || containsRef(to, sinks[tj]) {
					continue
				}
				to = append(to, sinks[tj])
			}
		}
		ckt.Cons = append(ckt.Cons, circuit.Constraint{
			Name: fmt.Sprintf("P%02d", len(ckt.Cons)),
			From: []circuit.PinRef{sources[si]},
			To:   to,
			// Provisional limit; finalized from the lower bound below.
			Limit: 1,
		})
	}
	if len(ckt.Cons) == 0 {
		return fmt.Errorf("gen: could not find any constrained path")
	}
	// Final limits from the HPWL lower bound.
	perCons, _, err := lowerbound.Delay(ckt)
	if err != nil {
		return err
	}
	for p := range ckt.Cons {
		ckt.Cons[p].Limit = perCons[p] * g.p.LimitFactor
	}
	return nil
}

// containsRef reports whether a terminal is already in the slice.
func containsRef(set []circuit.PinRef, ref circuit.PinRef) bool {
	for _, r := range set {
		if r == ref {
			return true
		}
	}
	return false
}

// extOfNet returns the index of the external pin attached to a net
// (assuming one exists, as for pad nets).
func extOfNet(ckt *circuit.Circuit, net int) int {
	for i := range ckt.Ext {
		if ckt.Ext[i].Net == net {
			return i
		}
	}
	return 0
}

func dedupCols(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}
