package gen

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/lowerbound"
)

func TestDatasetPresets(t *testing.T) {
	for _, name := range DatasetNames() {
		p, err := Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name || p.Cells == 0 || p.Rows == 0 || p.Constraints == 0 {
			t.Fatalf("%s: incomplete preset %+v", name, p)
		}
	}
	if _, err := Dataset("C9P1"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	if _, err := Dataset("C1P9"); err == nil {
		t.Fatal("unknown placement accepted")
	}
	// P1 and P2 differ only in placement style.
	a, _ := Dataset("C1P1")
	b, _ := Dataset("C1P2")
	if a.Seed != b.Seed || a.Cells != b.Cells {
		t.Fatal("P1/P2 presets must share the netlist parameters")
	}
	if a.Style == b.Style {
		t.Fatal("P1/P2 must differ in placement style")
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, name := range []string{"C1P1", "C1P2"} {
		p, _ := Dataset(name)
		ckt, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ckt.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ckt.Cons) == 0 {
			t.Fatalf("%s: no constraints generated", name)
		}
		if len(ckt.Nets) < p.Cells/2 {
			t.Fatalf("%s: suspiciously few nets: %d", name, len(ckt.Nets))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := Dataset("C1P1")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) || len(a.Cons) != len(b.Cons) {
		t.Fatal("same seed produced different circuits")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
	for p := range a.Cons {
		if a.Cons[p].Limit != b.Cons[p].Limit {
			t.Fatalf("constraint %d limit differs", p)
		}
	}
}

func TestGenerateStructuralFeatures(t *testing.T) {
	p, _ := Dataset("C1P1")
	ckt, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Diff pairs present and mutual.
	pairs := 0
	for n := range ckt.Nets {
		if m := ckt.Nets[n].DiffMate; m != circuit.NoNet {
			if ckt.Nets[m].DiffMate != n {
				t.Fatalf("pair %d not mutual", n)
			}
			pairs++
		}
	}
	if pairs != 2*p.DiffPairs {
		t.Fatalf("diff nets = %d, want %d", pairs, 2*p.DiffPairs)
	}
	// Wide clock present.
	wide := 0
	for n := range ckt.Nets {
		if ckt.Nets[n].Pitch > 1 {
			wide++
			if ckt.Nets[n].Name != "clk" {
				t.Fatalf("unexpected wide net %s", ckt.Nets[n].Name)
			}
		}
	}
	if wide != 1 {
		t.Fatalf("wide nets = %d, want 1 (the clock)", wide)
	}
	// Feed cells exist in every row.
	feeds := make([]int, ckt.Rows)
	for i := range ckt.Cells {
		if ckt.IsFeedCell(i) {
			feeds[ckt.Cells[i].Row]++
		}
	}
	for r, f := range feeds {
		if f == 0 {
			t.Fatalf("row %d has no feed cells", r)
		}
	}
}

func TestGenerateP2SweepsFeedsAside(t *testing.T) {
	p1, _ := Dataset("C1P1")
	p2, _ := Dataset("C1P2")
	a, err := Generate(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	// In P2 every feed cell must sit to the right of every logic cell of
	// its row; in P1 they must not.
	rightmost := func(ckt *circuit.Circuit) (feedsRight int, rows int) {
		for r := 0; r < ckt.Rows; r++ {
			maxLogic, minFeed := -1, 1<<30
			for i := range ckt.Cells {
				if ckt.Cells[i].Row != r {
					continue
				}
				if ckt.IsFeedCell(i) {
					if ckt.Cells[i].Col < minFeed {
						minFeed = ckt.Cells[i].Col
					}
				} else if ckt.Cells[i].Col > maxLogic {
					maxLogic = ckt.Cells[i].Col
				}
			}
			rows++
			if minFeed > maxLogic {
				feedsRight++
			}
		}
		return feedsRight, rows
	}
	fr1, rows := rightmost(a)
	fr2, _ := rightmost(b)
	if fr2 != rows {
		t.Fatalf("P2: only %d/%d rows have feeds swept right", fr2, rows)
	}
	if fr1 == rows {
		t.Fatal("P1 looks identical to P2")
	}
}

func TestConstraintLimitsTrackLowerBound(t *testing.T) {
	p, _ := Dataset("C1P1")
	ckt, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	perCons, _, err := lowerbound.Delay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ckt.Cons {
		want := perCons[i] * p.LimitFactor
		if math.Abs(ckt.Cons[i].Limit-want) > 1e-6*want {
			t.Fatalf("constraint %s limit %v, want %v", ckt.Cons[i].Name, ckt.Cons[i].Limit, want)
		}
		if perCons[i] <= 0 {
			t.Fatalf("constraint %s has non-positive lower bound", ckt.Cons[i].Name)
		}
	}
}

func TestGeneratedDelayGraphHasPaths(t *testing.T) {
	p, _ := Dataset("C1P1")
	ckt, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dgraph.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := dg.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	for pi := range tm.Cons {
		if tm.Cons[pi].Worst <= 0 {
			t.Errorf("constraint %s has no path", ckt.Cons[pi].Name)
		}
	}
}

func TestMultiSinkConstraints(t *testing.T) {
	p, _ := Dataset("C1P1")
	p.MultiSink = true
	p.Constraints = 20
	ckt, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for i := range ckt.Cons {
		if len(ckt.Cons[i].To) > 1 {
			multi++
		}
		if len(ckt.Cons[i].From) == 0 || len(ckt.Cons[i].To) == 0 {
			t.Fatalf("constraint %s has empty endpoints", ckt.Cons[i].Name)
		}
	}
	if multi == 0 {
		t.Fatal("MultiSink produced no multi-sink constraints")
	}
	// Limits still track the lower bound per constraint.
	perCons, _, err := lowerbound.Delay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ckt.Cons {
		if perCons[i] <= 0 {
			t.Fatalf("constraint %s (multi=%v) has no path", ckt.Cons[i].Name, len(ckt.Cons[i].To) > 1)
		}
	}
}
