// Package steiner is a timing-constrained Steiner-tree global router in
// the cost-distance style of Held & Perner: each net gets a tree built by
// congestion-weighted shortest paths whose edge weight blends routing
// cost with geometric distance, and nets on violated delay constraints
// are iteratively re-built with the distance term ramped up until every
// bound is met (or the pure-distance tree — the per-net delay optimum
// under the lumped model — is reached).
//
// It shares the full substrate with the other engines: feedthrough
// assignment (package feed), redundant routing graphs (package rgraph),
// channel density (package density) and the delay-constraint graph
// (package dgraph). Unlike the concurrent engine it never deletes edges
// from a shared redundant graph, and unlike the sequential baseline it
// revisits committed nets when the timing analysis says they sit on a
// violated constraint's critical path.
//
// The edge weight of net n is
//
//	w(e) = len(e)·(1 + α·overflow(e)) + λ_n·len(e)
//
// where overflow is the channel-density excess over the target track
// count and λ_n starts at 0 and ramps ×4 (plus one) per refinement pass
// the net is found critical. Because the lumped delay model is monotone
// in total tree length, the λ→∞ limit — the pure shortest-length tree —
// is the per-net delay optimum on this substrate; the final refinement
// pass jumps critical nets straight to it, so any bound the substrate
// can meet per net is met.
package steiner

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/engine"
	"repro/internal/feed"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

const (
	// defaultAlpha matches the sequential baseline's congestion penalty.
	defaultAlpha = 0.35
	// defaultPasses bounds the refinement loop when Config.MaxPasses is 0.
	defaultPasses = 8
	// lambdaRamp multiplies a critical net's distance weight each pass.
	lambdaRamp = 4.0
)

// run carries one routing invocation's state.
type run struct {
	ctx    context.Context
	cfg    engine.Config
	alpha  float64
	target int

	ckt    *circuit.Circuit
	geo    *grid.Geometry
	feeds  [][]rgraph.FeedPos
	graphs []*rgraph.Graph
	wl     []float64
	dens   *density.State

	// lambda is the per-net distance weight; pure marks nets routed by
	// length alone (the delay-optimal fallback).
	lambda []float64
	pure   []bool

	reroutes int
}

// Route routes ckt with the Steiner engine. It is the package-level
// entry used by the adapter and by experiments that want this engine
// without the registry.
func Route(ctx context.Context, ckt *circuit.Circuit, cfg engine.Config) (*engine.Result, error) {
	start := time.Now() //bgr:allow clockuse -- profiling only
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("steiner: %w", err)
	}
	// This engine is congestion-sequential by construction: build commits
	// each net's tree into the density state before the next net's edge
	// weights read it, so the per-net builds cannot fan out without
	// changing results. Clamp rather than silently ignore the request —
	// the capability (Workers: false) advertises the limitation, the
	// trace note surfaces it per run.
	if cfg.Workers > 1 {
		if cfg.Trace != nil {
			fmt.Fprintf(cfg.Trace, "steiner: workers=%d clamped to 1 (congestion-sequential engine; see Capabilities.Workers)\n", cfg.Workers)
		}
		cfg.Workers = 1
	}
	var order []int
	if cfg.UseConstraints {
		dg0, err := dgraph.New(ckt)
		if err != nil {
			return nil, err
		}
		order = slackOrder(dg0)
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		return nil, err
	}
	r := &run{
		ctx:    ctx,
		cfg:    cfg,
		alpha:  cfg.Alpha,
		target: cfg.TargetTracks,
		ckt:    fr.Ckt,
		geo:    fr.Geo,
		feeds:  fr.Feeds,
		graphs: make([]*rgraph.Graph, len(fr.Ckt.Nets)),
		wl:     make([]float64, len(fr.Ckt.Nets)),
		dens:   density.New(fr.Ckt.Channels(), fr.Ckt.Cols),
		lambda: make([]float64, len(fr.Ckt.Nets)),
		pure:   make([]bool, len(fr.Ckt.Nets)),
	}
	if r.alpha == 0 { //bgr:allow floateq -- zero-value Config sentinel: an unset Alpha is exactly 0
		r.alpha = defaultAlpha
	}
	if r.target <= 0 {
		r.target = demandTarget(fr.Ckt)
	}

	var phases []engine.PhaseStat
	buildStart := time.Now() //bgr:allow clockuse -- profiling only
	built, err := r.build(order)
	if err != nil {
		return nil, err
	}
	phases = append(phases, engine.PhaseStat{
		Name:     "build",
		Accepted: built,
		Duration: time.Since(buildStart), //bgr:allow clockuse -- profiling only
	})

	tm, err := r.analyze()
	if err != nil {
		return nil, err
	}
	if cfg.UseConstraints && !cfg.SkipImprovement {
		refineStart := time.Now() //bgr:allow clockuse -- profiling only
		tm, err = r.refine(tm)
		if err != nil {
			return nil, err
		}
		phases = append(phases, engine.PhaseStat{
			Name:     "refine",
			Reroutes: r.reroutes,
			Accepted: r.reroutes,
			Duration: time.Since(refineStart), //bgr:allow clockuse -- profiling only
		})
	}

	res := &engine.Result{
		Engine:       "steiner",
		Ckt:          r.ckt,
		Geo:          r.geo,
		Feeds:        r.feeds,
		Graphs:       r.graphs,
		WirelenUm:    r.wl,
		Timing:       tm,
		Dens:         r.dens,
		AddedPitches: fr.AddedPitches,
		Phases:       phases,
		Duration:     time.Since(start), //bgr:allow clockuse -- profiling only
	}
	for p := range tm.Cons {
		if tm.Cons[p].Worst > res.Delay {
			res.Delay = tm.Cons[p].Worst
		}
	}
	for _, l := range r.wl {
		res.TotalWirelenUm += l
	}
	return res, nil
}

// build routes every net once, worst static slack first, committing each
// tree's density before the next net routes.
func (r *run) build(order []int) (int, error) {
	full := order
	if full == nil {
		full = make([]int, len(r.ckt.Nets))
		for i := range full {
			full[i] = i
		}
	}
	r.emit(engine.Progress{Phase: "build"})
	built := 0
	done := make([]bool, len(r.ckt.Nets))
	for _, n := range full {
		if done[n] {
			continue
		}
		if err := r.ctx.Err(); err != nil {
			return built, err
		}
		nets := []int{n}
		if m := r.ckt.Nets[n].DiffMate; m != circuit.NoNet {
			nets = append(nets, m)
		}
		for _, nn := range nets {
			if err := r.routeNet(nn); err != nil {
				return built, err
			}
			done[nn] = true
			built++
			r.emit(engine.Progress{Phase: "build", Accepted: built})
		}
	}
	r.emit(engine.Progress{Phase: "build", Accepted: built, Done: true})
	return built, nil
}

// analyze runs a fresh lumped timing analysis over the committed trees.
func (r *run) analyze() (*dgraph.Timing, error) {
	dg, err := dgraph.New(r.ckt)
	if err != nil {
		return nil, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(r.wl)
	tm.Analyze()
	return tm, nil
}

// refine rips up and re-builds nets on violated constraints' critical
// paths, ramping their distance weight each pass; the last pass routes
// remaining offenders by pure length, the per-net delay optimum.
func (r *run) refine(tm *dgraph.Timing) (*dgraph.Timing, error) {
	passes := r.cfg.MaxPasses
	if passes <= 0 {
		passes = defaultPasses
	}
	r.emit(engine.Progress{Phase: "refine", Violations: violations(tm)})
	for pass := 1; pass <= passes; pass++ {
		if err := r.ctx.Err(); err != nil {
			return tm, err
		}
		crit := r.criticalSet(tm)
		if len(crit) == 0 {
			break
		}
		last := pass == passes
		for _, n := range crit {
			if r.pure[n] {
				continue // already at the per-net optimum
			}
			if last {
				r.pure[n] = true
			} else {
				r.lambda[n] = r.lambda[n]*lambdaRamp + 1
			}
			if err := r.rerouteNet(n, tm); err != nil {
				return tm, err
			}
			r.reroutes++
			r.emit(engine.Progress{Phase: "refine", Reroutes: r.reroutes, Violations: violations(tm)})
		}
		tm.Analyze()
	}
	r.emit(engine.Progress{Phase: "refine", Reroutes: r.reroutes, Violations: violations(tm), Done: true})
	return tm, nil
}

// criticalSet returns the nets on any violated constraint's critical
// path, each paired with its differential mate, sorted and deduplicated
// so the reroute order is index-deterministic.
func (r *run) criticalSet(tm *dgraph.Timing) []int {
	seen := make([]bool, len(r.ckt.Nets))
	var crit []int
	for p := range tm.Cons {
		if tm.Cons[p].Margin >= 0 {
			continue
		}
		for _, n := range tm.CriticalNets(p) {
			if !seen[n] {
				seen[n] = true
				crit = append(crit, n)
			}
			if m := r.ckt.Nets[n].DiffMate; m != circuit.NoNet && !seen[m] {
				seen[m] = true
				crit = append(crit, m)
			}
		}
	}
	sort.Ints(crit)
	return crit
}

// routeNet builds net n's redundant graph, selects the blended-weight
// tree, and commits it.
func (r *run) routeNet(n int) error {
	g, err := rgraph.Build(r.ckt, r.geo, n, r.feeds[n])
	if err != nil {
		return err
	}
	tree, err := g.TentativeWeighted(r.weight(g, n))
	if err != nil {
		return err
	}
	g.KeepOnly(tree)
	g.RecomputeBridges()
	r.graphs[n] = g
	ft := g.FinalTree()
	r.wl[n] = ft.Length
	for _, e := range ft.Edges {
		ed := &g.Edges[e]
		if ed.Kind == rgraph.ETrunk {
			r.dens.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			r.dens.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		}
	}
	return nil
}

// rerouteNet rips up net n's committed tree (releasing its density) and
// routes it again under the current weight, updating the timing's view
// of the net.
func (r *run) rerouteNet(n int, tm *dgraph.Timing) error {
	old := r.graphs[n]
	ft := old.FinalTree()
	for _, e := range ft.Edges {
		ed := &old.Edges[e]
		if ed.Kind == rgraph.ETrunk {
			r.dens.Remove(ed.Ch, ed.X1, ed.X2, old.Pitch)
			r.dens.RemoveBridge(ed.Ch, ed.X1, ed.X2, old.Pitch)
		}
	}
	if err := r.routeNet(n); err != nil {
		return err
	}
	tm.SetNetLumped(n, r.wl[n])
	return nil
}

// weight is the cost-distance edge weight of net n:
// len·(1+α·overflow) + λ_n·len, or pure length once the net is in
// fallback mode.
func (r *run) weight(g *rgraph.Graph, n int) func(e int) float64 {
	lam := r.lambda[n]
	pure := r.pure[n]
	return func(e int) float64 {
		ed := &g.Edges[e]
		c := ed.Len
		if !pure && ed.Kind == rgraph.ETrunk {
			over := r.dens.Edge(ed.Ch, ed.X1, ed.X2).DM + g.Pitch - r.target
			if over > 0 {
				c *= 1 + r.alpha*float64(over)
			}
		}
		c += lam * ed.Len
		if c == 0 { //bgr:allow floateq -- guards against an exactly-zero-length edge cost before Dijkstra
			c = 1e-9
		}
		return c
	}
}

func (r *run) emit(p engine.Progress) {
	if r.cfg.Progress != nil {
		r.cfg.Progress(p)
	}
}

func violations(tm *dgraph.Timing) int {
	v := 0
	for p := range tm.Cons {
		if tm.Cons[p].Margin < 0 {
			v++
		}
	}
	return v
}

// demandTarget derives a per-channel density target from total demand,
// the same estimate the sequential baseline uses: half-perimeter column
// demand spread over channels × columns, floored at one track.
func demandTarget(ckt *circuit.Circuit) int {
	var demandCols int
	for n := range ckt.Nets {
		minC, maxC := math.MaxInt32, -1
		for _, t := range ckt.Terminals(n) {
			for _, pos := range ckt.PositionsOf(t) {
				if pos.Col < minC {
					minC = pos.Col
				}
				if pos.Col > maxC {
					maxC = pos.Col
				}
			}
		}
		if maxC > minC {
			demandCols += (maxC - minC) * ckt.Nets[n].Pitch
		}
	}
	per := demandCols / (ckt.Channels() * ckt.Cols)
	if per < 1 {
		per = 1
	}
	return per
}

func slackOrder(dg *dgraph.Graph) []int {
	slacks := dg.NetSlacks()
	order := make([]int, len(slacks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slacks[order[a]] < slacks[order[b]] })
	return order
}

// steinerEngine adapts the package to the engine registry.
type steinerEngine struct{}

func (steinerEngine) Name() string { return "steiner" }

func (steinerEngine) Capabilities() engine.Capabilities {
	// Workers is deliberately false: the builds are congestion-sequential
	// (each net's weights read the previous nets' committed density), so
	// Route clamps Config.Workers to 1 instead of honoring it.
	return engine.Capabilities{Progress: true, Phases: true}
}

func (steinerEngine) Route(ctx context.Context, ckt *circuit.Circuit, cfg engine.Config) (*engine.Result, error) {
	return Route(ctx, ckt, cfg)
}

func init() { engine.Register(steinerEngine{}) }
