package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func mustGeometry(t *testing.T, ckt *circuit.Circuit) *Geometry {
	t.Helper()
	if err := ckt.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	g, err := New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFeedSlotsFound(t *testing.T) {
	g := mustGeometry(t, circuit.SampleSmall())
	// SampleSmall row 0 has feed cells at columns 13 and 22; row 1 at 20.
	r0 := g.FeedSlots(0)
	if len(r0) != 2 || r0[0].Col != 13 || r0[1].Col != 22 {
		t.Fatalf("row 0 feed slots = %v, want cols 13,22", r0)
	}
	r1 := g.FeedSlots(1)
	if len(r1) != 1 || r1[0].Col != 20 {
		t.Fatalf("row 1 feed slots = %v, want col 20", r1)
	}
}

func TestOccupied(t *testing.T) {
	g := mustGeometry(t, circuit.SampleSmall())
	// b0 (BUF, width 3) occupies row 0 columns 2..4.
	for col := 2; col <= 4; col++ {
		if !g.Occupied(0, col) {
			t.Errorf("row 0 col %d should be occupied by b0", col)
		}
	}
	if g.Occupied(0, 5) {
		t.Error("row 0 col 5 should be free")
	}
	// Feed cells do not count as occupied (they are routing resources).
	if g.Occupied(0, 13) {
		t.Error("feed column must not be reported occupied")
	}
	if !g.Occupied(0, -1) || !g.Occupied(0, 999) {
		t.Error("out-of-chip columns must read as occupied")
	}
}

func TestFlags(t *testing.T) {
	g := mustGeometry(t, circuit.SampleSmall())
	if !g.SetFlag(0, 13, 2) {
		t.Fatal("SetFlag on existing slot failed")
	}
	if g.SetFlag(0, 14, 2) {
		t.Fatal("SetFlag on non-slot should fail")
	}
	if g.FeedSlots(0)[0].Flag != 2 {
		t.Fatal("flag not recorded")
	}
	g.ClearFlags()
	if g.FeedSlots(0)[0].Flag != 0 {
		t.Fatal("ClearFlags did not reset")
	}
}

func TestCoordinates(t *testing.T) {
	ckt := circuit.SampleSmall()
	g := mustGeometry(t, ckt)
	if got, want := g.XOf(0), 0.5*ckt.Tech.PitchX; got != want {
		t.Fatalf("XOf(0) = %v, want %v", got, want)
	}
	if got, want := g.SpanUm(3, 7), 4*ckt.Tech.PitchX; got != want {
		t.Fatalf("SpanUm(3,7) = %v, want %v", got, want)
	}
	if got, want := g.SpanUm(7, 3), 4*ckt.Tech.PitchX; got != want {
		t.Fatalf("SpanUm must be symmetric: %v != %v", got, want)
	}
	if got, want := g.ChipWidthUm(), float64(ckt.Cols)*ckt.Tech.PitchX; got != want {
		t.Fatalf("ChipWidthUm = %v, want %v", got, want)
	}
	if g.Channels() != ckt.Rows+1 {
		t.Fatalf("Channels = %d, want %d", g.Channels(), ckt.Rows+1)
	}
}

func TestInsertFeedCellsWidensEveryRowEqually(t *testing.T) {
	ckt := circuit.SampleSmall()
	groups := []FeedGroupSpec{
		{Row: 0, Width: 2}, {Row: 0, Width: 1},
		{Row: 1, Width: 1}, {Row: 1, Width: 1}, {Row: 1, Width: 1},
	}
	out, cols, err := InsertFeedCells(ckt, groups)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols != ckt.Cols+3 {
		t.Fatalf("chip width %d, want %d", out.Cols, ckt.Cols+3)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("widened circuit invalid: %v", err)
	}
	if len(cols[0]) != 2 || len(cols[1]) != 3 {
		t.Fatalf("inserted group counts = %d,%d want 2,3", len(cols[0]), len(cols[1]))
	}
	// Feed capacity grew by exactly the inserted pitches.
	g0, _ := New(ckt)
	g1, _ := New(out)
	if got, want := len(g1.FeedSlots(0)), len(g0.FeedSlots(0))+3; got != want {
		t.Fatalf("row 0 slots = %d, want %d", got, want)
	}
	if got, want := len(g1.FeedSlots(1)), len(g0.FeedSlots(1))+3; got != want {
		t.Fatalf("row 1 slots = %d, want %d", got, want)
	}
}

func TestInsertFeedCellsRejectsUnevenTotals(t *testing.T) {
	ckt := circuit.SampleSmall()
	_, _, err := InsertFeedCells(ckt, []FeedGroupSpec{{Row: 0, Width: 2}})
	if err == nil {
		t.Fatal("want error for uneven per-row totals (row 1 got none)")
	}
}

func TestInsertFeedCellsZeroIsClone(t *testing.T) {
	ckt := circuit.SampleSmall()
	out, _, err := InsertFeedCells(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols != ckt.Cols || len(out.Cells) != len(ckt.Cells) {
		t.Fatal("zero insertion must return an unchanged clone")
	}
	out.Cells[0].Col = 1
	if ckt.Cells[0].Col == 1 {
		t.Fatal("result aliases the input circuit")
	}
}

func TestInsertFeedCellsPreservesOrderAndGaps(t *testing.T) {
	ckt := circuit.SampleSmall()
	out, _, err := InsertFeedCells(ckt, []FeedGroupSpec{{Row: 0, Width: 1}, {Row: 1, Width: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Relative left-to-right order of the original cells must not change.
	orderOf := func(c *circuit.Circuit, row int) []string {
		type pc struct {
			name string
			col  int
		}
		var cells []pc
		for i := range c.Cells {
			if c.Cells[i].Row == row && c.Cells[i].Name[0] != '_' {
				cells = append(cells, pc{c.Cells[i].Name, c.Cells[i].Col})
			}
		}
		for i := 1; i < len(cells); i++ {
			for j := i; j > 0 && cells[j].col < cells[j-1].col; j-- {
				cells[j], cells[j-1] = cells[j-1], cells[j]
			}
		}
		names := make([]string, len(cells))
		for i, x := range cells {
			names[i] = x.name
		}
		return names
	}
	for r := 0; r < ckt.Rows; r++ {
		a, b := orderOf(ckt, r), orderOf(out, r)
		if len(a) != len(b) {
			t.Fatalf("row %d lost cells", r)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d order changed: %v vs %v", r, a, b)
			}
		}
	}
}

// TestInsertFeedCellsQuick: for random even insertion requests the result
// always validates and widens by the common total.
func TestInsertFeedCellsQuick(t *testing.T) {
	ckt := circuit.SampleSmall()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := 1 + rng.Intn(4) // pitches per row
		var groups []FeedGroupSpec
		for r := 0; r < ckt.Rows; r++ {
			left := f
			for left > 0 {
				w := 1 + rng.Intn(left)
				if rng.Intn(2) == 0 {
					w = 1
				}
				groups = append(groups, FeedGroupSpec{Row: r, Width: w})
				left -= w
			}
		}
		out, _, err := InsertFeedCells(ckt, groups)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return out.Cols == ckt.Cols+f && out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
