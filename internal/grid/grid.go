// Package grid provides the chip-geometry substrate for the global router:
// cell rows on a column grid, routing channels between rows, feedthrough
// slots supplied by feed cells, physical coordinates, and the feed-cell
// insertion mechanics of Harada & Kitazawa §4.3 that widen the chip to
// guarantee complete feedthrough assignment.
package grid

import (
	"fmt"
	"slices"

	"repro/internal/circuit"
)

// FeedSlot is one column of feedthrough capacity in a cell row, provided by
// a feed cell. Flag restricts which nets may use it: 0 means unrestricted,
// w > 0 means reserved for w-pitch nets (§4.3 width flags).
type FeedSlot struct {
	Col  int
	Cell int // index of the providing feed cell in the circuit
	Flag int
}

// Geometry is the static routing geometry of a placed circuit.
type Geometry struct {
	Ckt *circuit.Circuit
	// Feeds[r] lists the feedthrough slots of row r, sorted by column.
	Feeds [][]FeedSlot
	// occupied[r][col] marks columns of row r covered by a non-feed cell.
	occupied [][]bool
}

// New builds the geometry of a validated circuit. Feed cells contribute one
// feedthrough slot per pitch of width.
func New(ckt *circuit.Circuit) (*Geometry, error) {
	g := &Geometry{
		Ckt:      ckt,
		Feeds:    make([][]FeedSlot, ckt.Rows),
		occupied: make([][]bool, ckt.Rows),
	}
	for r := range g.occupied {
		g.occupied[r] = make([]bool, ckt.Cols)
	}
	for i := range ckt.Cells {
		cell := &ckt.Cells[i]
		ct := &ckt.Lib[cell.Type]
		if ct.Feed {
			for w := 0; w < ct.Width; w++ {
				g.Feeds[cell.Row] = append(g.Feeds[cell.Row], FeedSlot{Col: cell.Col + w, Cell: i})
			}
			continue
		}
		for w := 0; w < ct.Width; w++ {
			col := cell.Col + w
			if col < 0 || col >= ckt.Cols {
				return nil, fmt.Errorf("grid: cell %q column %d outside chip", cell.Name, col)
			}
			g.occupied[cell.Row][col] = true
		}
	}
	for r := range g.Feeds {
		slices.SortFunc(g.Feeds[r], func(a, b FeedSlot) int { return a.Col - b.Col })
	}
	return g, nil
}

// FeedSlots returns the feedthrough slots of a row, sorted by column.
func (g *Geometry) FeedSlots(row int) []FeedSlot { return g.Feeds[row] }

// SetFlag sets the width flag of the feed slot at (row, col). It reports
// whether such a slot exists.
func (g *Geometry) SetFlag(row, col, flag int) bool {
	for i := range g.Feeds[row] {
		if g.Feeds[row][i].Col == col {
			g.Feeds[row][i].Flag = flag
			return true
		}
	}
	return false
}

// ClearFlags resets every feed-slot width flag.
func (g *Geometry) ClearFlags() {
	for r := range g.Feeds {
		for i := range g.Feeds[r] {
			g.Feeds[r][i].Flag = 0
		}
	}
}

// Occupied reports whether a non-feed cell covers (row, col).
func (g *Geometry) Occupied(row, col int) bool {
	if col < 0 || col >= g.Ckt.Cols {
		return true
	}
	return g.occupied[row][col]
}

// XOf returns the physical x coordinate (µm) of a column center.
func (g *Geometry) XOf(col int) float64 {
	return (float64(col) + 0.5) * g.Ckt.Tech.PitchX
}

// SpanUm returns the physical length (µm) of the column interval
// [c1, c2] measured center to center.
func (g *Geometry) SpanUm(c1, c2 int) float64 {
	if c2 < c1 {
		c1, c2 = c2, c1
	}
	return float64(c2-c1) * g.Ckt.Tech.PitchX
}

// ChipWidthUm returns the chip width in µm.
func (g *Geometry) ChipWidthUm() float64 {
	return float64(g.Ckt.Cols) * g.Ckt.Tech.PitchX
}

// Channels returns the number of routing channels (rows + 1).
func (g *Geometry) Channels() int { return g.Ckt.Channels() }

// FeedGroupSpec asks for one contiguous group of feed cells of the given
// pitch width to be inserted into a row.
type FeedGroupSpec struct {
	Row   int
	Width int // number of adjacent feed cells; the group is flagged for Width-pitch nets
}

// InsertFeedCells returns a widened copy of the circuit with the requested
// feed-cell groups inserted, plus the per-row columns of the inserted
// groups (leftmost column of each group, in request order per row).
//
// Every row must receive the same total number of inserted pitches (the
// paper's F) so that rows stay aligned; the caller pads with 1-wide groups.
// Groups are spread "almost evenly" across each row: target positions are
// equally spaced and each group is placed at the nearest legal gap (not
// splitting a cell). Cells and external terminals to the right of an
// insertion point shift right; the chip widens by F columns.
func InsertFeedCells(ckt *circuit.Circuit, groups []FeedGroupSpec) (*circuit.Circuit, [][]int, error) {
	perRow := make([][]int, ckt.Rows)
	total := make([]int, ckt.Rows)
	for _, gr := range groups {
		if gr.Row < 0 || gr.Row >= ckt.Rows {
			return nil, nil, fmt.Errorf("grid: insert row %d out of range", gr.Row)
		}
		if gr.Width < 1 {
			return nil, nil, fmt.Errorf("grid: insert width %d < 1", gr.Width)
		}
		perRow[gr.Row] = append(perRow[gr.Row], gr.Width)
		total[gr.Row] += gr.Width
	}
	f := 0
	for _, t := range total {
		if t > f {
			f = t
		}
	}
	for r, t := range total {
		if t != f {
			return nil, nil, fmt.Errorf("grid: row %d inserts %d pitches, others insert %d; pad with 1-wide groups", r, t, f)
		}
	}
	if f == 0 {
		return ckt.Clone(), make([][]int, ckt.Rows), nil
	}

	out := ckt.Clone()
	feedType := feedTypeIndex(out)
	insertedCols := make([][]int, ckt.Rows)

	for r := 0; r < ckt.Rows; r++ {
		widths := perRow[r]
		k := len(widths)
		if k == 0 {
			continue
		}
		// Cells of this row in the widened circuit, sorted by column.
		var rowCells []int
		for i := range out.Cells {
			if out.Cells[i].Row == r {
				rowCells = append(rowCells, i)
			}
		}
		slices.SortFunc(rowCells, func(a, b int) int { return out.Cells[a].Col - out.Cells[b].Col })

		// Choose evenly spaced target columns and snap to the nearest
		// legal gap; process left to right so shifts accumulate simply.
		targets := make([]int, k)
		for i := range targets {
			targets[i] = (i + 1) * ckt.Cols / (k + 1)
		}
		shift := 0
		for gi := range widths {
			w := widths[gi]
			at := snapToGap(out, rowCells, targets[gi]+shift)
			// Shift every cell of this row at or right of the insertion
			// point (including feed cells inserted by earlier groups).
			for _, idx := range rowCells {
				if out.Cells[idx].Col >= at {
					out.Cells[idx].Col += w
				}
			}
			for j := 0; j < w; j++ {
				// Index-based names stay unique even when insertion runs
				// again on an already-widened circuit (multi-round §4.3).
				out.Cells = append(out.Cells, circuit.Cell{
					Name: fmt.Sprintf("_feed_%d", len(out.Cells)),
					Type: feedType, Row: r, Col: at + j,
				})
				rowCells = append(rowCells, len(out.Cells)-1)
			}
			insertedCols[r] = append(insertedCols[r], at)
			shift += w
		}
	}
	// External terminals keep their columns valid in the wider chip; shift
	// those beyond the old midline proportionally so they stay near their
	// original relative location.
	out.Cols = ckt.Cols + f
	for i := range out.Ext {
		for j, col := range out.Ext[i].Cols {
			out.Ext[i].Cols[j] = col * out.Cols / ckt.Cols
			if out.Ext[i].Cols[j] >= out.Cols {
				out.Ext[i].Cols[j] = out.Cols - 1
			}
		}
	}
	// Insertion only moves cells and widens the chip; the netlist is
	// untouched, so the geometric recheck is sufficient (and this runs
	// inside the feed-assignment search loop, where the full Validate
	// dominated the profile).
	if err := out.ValidateGeometry(); err != nil {
		return nil, nil, fmt.Errorf("grid: insertion produced invalid circuit: %w", err)
	}
	return out, insertedCols, nil
}

// feedTypeIndex finds or adds a feed cell type.
func feedTypeIndex(ckt *circuit.Circuit) int {
	for i := range ckt.Lib {
		if ckt.Lib[i].Feed {
			return i
		}
	}
	ckt.Lib = append(ckt.Lib, circuit.CellType{Name: "_FEED", Width: 1, Feed: true})
	return len(ckt.Lib) - 1
}

// snapToGap returns the smallest insertion column >= 0 nearest to target
// that does not split a cell of the row: a column c is legal when no cell
// spans across it (cell.Col < c < cell.Col+width). rowCells are the indices
// of the row's cells sorted by column.
func snapToGap(ckt *circuit.Circuit, rowCells []int, target int) int {
	if target < 0 {
		target = 0
	}
	// Cells of a row never overlap, so at most one spans across the
	// target; its two edges are then the nearest legal columns on either
	// side (abutting neighbours end exactly at an edge, never across it).
	// One pass over the row replaces the probe-per-column search, which
	// re-scanned every cell at each probe distance.
	for _, idx := range rowCells {
		cell := &ckt.Cells[idx]
		w := ckt.Lib[cell.Type].Width
		if cell.Col < target && target < cell.Col+w {
			left, right := cell.Col, cell.Col+w
			// Ties go right, matching the old search's +d-before-−d order.
			if right-target <= target-left {
				return right
			}
			return left
		}
	}
	return target
}
