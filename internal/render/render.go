// Package render draws ASCII pictures of routed chips: cell rows with
// feed cells and used feedthroughs, and channel density profiles. Meant
// for eyeballing results in a terminal, not for manufacturing.
package render

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Layout draws the routed chip top-down: channels as base-36 density
// profiles, rows as cell maps ('#' logic cell, 'F' feed cell, '|' a used
// feedthrough column).
func Layout(res *core.Result) string {
	ckt := res.Ckt
	var b strings.Builder
	fmt.Fprintf(&b, "layout %s: %d cols x %d rows (+%d channels)\n", ckt.Name, ckt.Cols, ckt.Rows, ckt.Channels())

	rowLines := make([][]byte, ckt.Rows)
	for r := range rowLines {
		rowLines[r] = []byte(strings.Repeat(".", ckt.Cols))
	}
	for i := range ckt.Cells {
		cell := &ckt.Cells[i]
		mark := byte('#')
		if ckt.IsFeedCell(i) {
			mark = 'F'
		}
		for w := 0; w < ckt.Lib[cell.Type].Width; w++ {
			if col := cell.Col + w; col >= 0 && col < ckt.Cols {
				rowLines[cell.Row][col] = mark
			}
		}
	}
	for n := range res.Feeds {
		w := ckt.Nets[n].Pitch
		for _, f := range res.Feeds[n] {
			for j := 0; j < w; j++ {
				if col := f.Col + j; col >= 0 && col < ckt.Cols {
					rowLines[f.Row][col] = '|'
				}
			}
		}
	}
	channelLine := func(ch int) string {
		profile := res.Dens.ProfileM(ch)
		line := make([]byte, len(profile))
		for x, d := range profile {
			line[x] = densChar(d)
		}
		return string(line)
	}
	for ch := ckt.Rows; ch >= 0; ch-- {
		st := res.Dens.Channel(ch)
		fmt.Fprintf(&b, "ch%-2d %s  C_M=%d\n", ch, channelLine(ch), st.CM)
		if ch > 0 {
			fmt.Fprintf(&b, "row%-1d %s\n", ch-1, rowLines[ch-1])
		}
	}
	return b.String()
}

// densChar maps a density value to one character: blank, 1-9, then a-z,
// then '*' beyond 35.
func densChar(d int) byte {
	switch {
	case d <= 0:
		return ' '
	case d <= 9:
		return byte('0' + d)
	case d <= 35:
		return byte('a' + d - 10)
	}
	return '*'
}
