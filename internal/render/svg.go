package render

import (
	"fmt"
	"strings"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/rgraph"
)

// SVG draws the routed chip to scale: cell rows (grey; feed cells hatched
// lighter), channels sized by their final track counts, per-net colored
// trunk segments on their assigned tracks, pin jogs and feedthroughs.
// The channel-routing result supplies the vertical geometry.
func SVG(res *core.Result, cr *chanroute.Result) string {
	ckt := res.Ckt
	t := ckt.Tech
	scale := 1.0 // 1 SVG unit per µm

	// Vertical stacking bottom-up: channel 0, row 0, channel 1, ...
	chanH := make([]float64, ckt.Channels())
	for ci := range cr.Channels {
		chanH[ci] = float64(cr.Channels[ci].Tracks) * t.TrackPitch
		if chanH[ci] < t.TrackPitch {
			chanH[ci] = t.TrackPitch // draw empty channels thin but visible
		}
	}
	chanY := make([]float64, ckt.Channels()) // bottom edge of each channel
	rowY := make([]float64, ckt.Rows)        // bottom edge of each row
	y := 0.0
	for c := 0; c < ckt.Channels(); c++ {
		chanY[c] = y
		y += chanH[c]
		if c < ckt.Rows {
			rowY[c] = y
			y += t.RowHeight
		}
	}
	width := float64(ckt.Cols) * t.PitchX
	height := y

	var b strings.Builder
	// SVG y grows downward; flip so the chip reads bottom-up.
	flip := func(yy float64) float64 { return height - yy }
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width*scale, height*scale, width, height)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fafafa" stroke="#333"/>`+"\n", width, height)

	// Rows and cells.
	for r := 0; r < ckt.Rows; r++ {
		fmt.Fprintf(&b, `<rect x="0" y="%.1f" width="%.1f" height="%.1f" fill="#ececec"/>`+"\n",
			flip(rowY[r]+t.RowHeight), width, t.RowHeight)
	}
	for i := range ckt.Cells {
		cell := &ckt.Cells[i]
		w := float64(ckt.Lib[cell.Type].Width) * t.PitchX
		x := float64(cell.Col) * t.PitchX
		fill := "#c8cdd4"
		if ckt.IsFeedCell(i) {
			fill = "#e6f2e6"
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#999" stroke-width="0.5"/>`+"\n",
			x, flip(rowY[cell.Row]+t.RowHeight), w, t.RowHeight, fill)
	}

	// Net wiring from the channel segments.
	for ci := range cr.Channels {
		base := chanY[ci]
		for _, s := range cr.Channels[ci].Segments {
			color := netColor(s.Net, len(ckt.Nets))
			if s.Lo == s.Hi {
				// Straight-through.
				x := colX(t, s.Lo)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
					x, flip(base), x, flip(base+chanH[ci]), color)
				continue
			}
			ty := base + (float64(s.Track)+float64(s.Width)/2)*t.TrackPitch
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
				colX(t, s.Lo), flip(ty), colX(t, s.Hi), flip(ty), color, 1.2*float64(s.Width))
			for _, p := range s.Pins {
				px := colX(t, p.Col)
				py := base
				if p.FromTop {
					py = base + chanH[ci]
				}
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
					px, flip(py), px, flip(ty), color)
			}
		}
	}
	// Feedthrough verticals through the rows.
	for n, g := range res.Graphs {
		color := netColor(n, len(ckt.Nets))
		for _, e := range g.AliveEdges() {
			ed := &g.Edges[e]
			if ed.Kind != rgraph.EFeed {
				continue
			}
			x := colX(t, ed.X1)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%d"/>`+"\n",
				x, flip(rowY[ed.Ch]), x, flip(rowY[ed.Ch]+t.RowHeight), color, g.Pitch)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func colX(t circuit.Tech, col int) float64 {
	return (float64(col) + 0.5) * t.PitchX
}

// netColor spreads net indices around the hue circle with a golden-ratio
// step so neighboring indices get distinct colors.
func netColor(n, total int) string {
	_ = total
	hue := int(float64(n)*137.508) % 360
	return fmt.Sprintf("hsl(%d,70%%,45%%)", hue)
}
