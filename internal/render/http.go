package render

import (
	"fmt"
	"html"
	"net/http"

	"repro/internal/chanroute"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/report"
)

// Handler serves an interactive view of a routed chip: the SVG drawing,
// the timing report and slack histogram, and the ASCII layout — the
// lightweight inspection UI of cmd/bgr-view.
//
// Routes:
//
//	/          HTML page embedding everything
//	/chip.svg  the raw SVG
//	/timing    plain-text timing report
//	/layout    plain-text ASCII layout
func Handler(res *core.Result, cr *chanroute.Result) (http.Handler, error) {
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		return nil, err
	}
	tm := dg.NewTiming()
	tm.SetLumped(cr.NetLenUm)
	tm.Analyze()

	svg := SVG(res, cr)
	timing := report.TimingReport(res.Ckt, tm, 3) + "\n" + report.SlackHistogram(res.Ckt, tm, 8)
	layout := Layout(res)

	mux := http.NewServeMux()
	mux.HandleFunc("/chip.svg", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, svg)
	})
	mux.HandleFunc("/timing", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, timing)
	})
	mux.HandleFunc("/layout", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, layout)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><title>%s — routed</title>
<style>body{font-family:monospace;margin:2em}pre{background:#f6f6f6;padding:1em;overflow:auto}</style>
</head><body>
<h1>%s</h1>
<p>%d nets, %d constraints, chip %.0f µm × %.0f µm (%.3f mm²)</p>
<object data="/chip.svg" type="image/svg+xml" style="width:100%%;border:1px solid #ccc"></object>
<h2>Timing</h2><pre>%s</pre>
<h2>Layout</h2><pre>%s</pre>
</body></html>`,
			html.EscapeString(res.Ckt.Name), html.EscapeString(res.Ckt.Name),
			len(res.Ckt.Nets), len(res.Ckt.Cons),
			cr.WidthUm, cr.HeightUm, cr.AreaMm2,
			html.EscapeString(timing), html.EscapeString(layout))
	})
	return mux, nil
}
