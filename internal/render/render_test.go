package render

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

func TestLayoutDrawsEverything(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	s := Layout(res)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Header + (channels + rows) lines: rows+1 channels and rows rows.
	want := 1 + (res.Ckt.Rows + 1) + res.Ckt.Rows
	if len(lines) != want {
		t.Fatalf("layout has %d lines, want %d:\n%s", len(lines), want, s)
	}
	if !strings.Contains(s, "#") {
		t.Error("no logic cells drawn")
	}
	if !strings.Contains(s, "F") {
		t.Error("no feed cells drawn")
	}
	if !strings.Contains(s, "|") {
		t.Error("no used feedthroughs drawn")
	}
	if !strings.Contains(s, "C_M=") {
		t.Error("no channel stats drawn")
	}
	// Row lines cover the full chip width.
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "row") {
			body := strings.SplitN(line, " ", 2)[1]
			if len(body) != res.Ckt.Cols {
				t.Fatalf("row line width %d, want %d", len(body), res.Ckt.Cols)
			}
		}
	}
}

func TestDensChar(t *testing.T) {
	cases := []struct {
		in   int
		want byte
	}{{-1, ' '}, {0, ' '}, {5, '5'}, {9, '9'}, {10, 'a'}, {35, 'z'}, {36, '*'}, {99, '*'}}
	for _, c := range cases {
		if got := densChar(c.in); got != c.want {
			t.Errorf("densChar(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
