package render

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Handler(res, cr)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Header().Get("Content-Type"), string(body)
}

func TestHandlerRoutes(t *testing.T) {
	h := testHandler(t)

	code, ctype, body := get(t, h, "/")
	if code != 200 || !strings.Contains(ctype, "text/html") {
		t.Fatalf("/: code %d type %s", code, ctype)
	}
	for _, want := range []string{"sample-small", "Timing", "Layout", "chip.svg"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}

	code, ctype, body = get(t, h, "/chip.svg")
	if code != 200 || !strings.Contains(ctype, "svg") || !strings.HasPrefix(body, "<svg") {
		t.Fatalf("/chip.svg: code %d type %s", code, ctype)
	}

	code, _, body = get(t, h, "/timing")
	if code != 200 || !strings.Contains(body, "Timing report") || !strings.Contains(body, "Slack histogram") {
		t.Fatalf("/timing wrong: %d\n%s", code, body)
	}

	code, _, body = get(t, h, "/layout")
	if code != 200 || !strings.Contains(body, "layout sample-small") {
		t.Fatalf("/layout wrong: %d", code)
	}

	code, _, _ = get(t, h, "/nonsense")
	if code != 404 {
		t.Fatalf("/nonsense: code %d, want 404", code)
	}
}
