package render

import (
	"strings"
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
)

func TestSVGWellFormedAndComplete(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	s := SVG(res, cr)
	if !strings.HasPrefix(s, "<svg ") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// One rect per cell plus chip outline plus row bands.
	rects := strings.Count(s, "<rect ")
	if want := 1 + res.Ckt.Rows + len(res.Ckt.Cells); rects != want {
		t.Fatalf("rects = %d, want %d", rects, want)
	}
	// Wiring present: at least one line per net.
	lines := strings.Count(s, "<line ")
	if lines < len(res.Ckt.Nets) {
		t.Fatalf("only %d lines for %d nets", lines, len(res.Ckt.Nets))
	}
	// Feedthrough verticals are drawn (SampleSmall always crosses rows).
	if !strings.Contains(s, "hsl(") {
		t.Fatal("no net colors emitted")
	}
	// Balanced quoting (cheap well-formedness proxy).
	if strings.Count(s, `"`)%2 != 0 {
		t.Fatal("unbalanced quotes")
	}
}

func TestNetColorsDiffer(t *testing.T) {
	seen := map[string]bool{}
	for n := 0; n < 12; n++ {
		c := netColor(n, 12)
		if seen[c] {
			t.Fatalf("color %s repeats within 12 nets", c)
		}
		seen[c] = true
	}
}
