package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/rgraph"
	"repro/internal/workpool"
)

// delayCrit caches the §3.2 delay criteria of one candidate edge: the
// critical count Cd (eq. 3), the global delay penalty Gl (eq. 4) and the
// local delay increase LD. An entry is valid while the owning net's
// timing epoch is unchanged (see router.timEpoch). Counters are int32 so
// a net's cache line packs more entries (the dcCache arrays are edge-
// aligned and large).
type delayCrit struct {
	gl    float64
	ld    float64
	cd    int32
	tim   int32
	valid bool
}

// candidate is a (net, edge) deletion candidate in the compact int32 form
// the whole selection engine traffics in — matching the CSR index width of
// the timing subgraphs and the density profiles.
type candidate struct {
	net, edge int32
}

// candKey is a candidate's fully evaluated comparison key: the §3.4
// criteria flattened so that ordering two candidates is a plain
// lexicographic comparison (with the fEps tolerance on floats) instead of
// re-deriving delay criteria and density interval stats per comparison.
type candKey struct {
	gl, ld float64
	cd     int32
	trunk  bool
	// The four density differences of conditions 2-5 (channel parameter
	// minus edge interval parameter).
	fm, nm, fM, nM int32
	edgeLen        float64
}

// keyFor evaluates a candidate's comparison key against the current state.
func (r *router) keyFor(c candidate, sc *scratch) candKey {
	var k candKey
	if r.cfg.UseConstraints {
		dc := r.delayCriteriaSc(int(c.net), int(c.edge), sc)
		k.cd, k.gl, k.ld = dc.cd, dc.gl, dc.ld
	}
	ed := r.edgeOf(c)
	k.trunk = ed.Kind == rgraph.ETrunk
	cs := r.dens.Channel(ed.Ch)
	es := r.dens.Edge(ed.Ch, ed.X1, ed.X2)
	k.fm = int32(cs.Cm - es.Dm)
	k.nm = int32(cs.NCm - es.NDm)
	k.fM = int32(cs.CM - es.DM)
	k.nM = int32(cs.NCM - es.NDM)
	k.edgeLen = ed.Len
	return k
}

// keyLess orders two evaluated candidates exactly like the original
// pairwise §3.4/§3.5 comparison (see lessSc's documentation).
func (r *router) keyLess(ka, kb *candKey, a, b candidate, areaOrder bool) bool {
	if r.cfg.UseConstraints {
		if ka.cd != kb.cd {
			return ka.cd < kb.cd
		}
		if !areaOrder {
			if diff := ka.gl - kb.gl; diff < -fEps || diff > fEps {
				return diff < 0
			}
			if diff := ka.ld - kb.ld; diff < -fEps || diff > fEps {
				return diff < 0
			}
		}
		if c := keyDensCompare(ka, kb); c != 0 {
			return c < 0
		}
		if areaOrder {
			if diff := ka.gl - kb.gl; diff < -fEps || diff > fEps {
				return diff < 0
			}
			if diff := ka.ld - kb.ld; diff < -fEps || diff > fEps {
				return diff < 0
			}
		}
	} else if c := keyDensCompare(ka, kb); c != 0 {
		return c < 0
	}
	if diff := ka.edgeLen - kb.edgeLen; diff < -fEps || diff > fEps {
		return diff > 0 // longer edge preferred for deletion
	}
	if a.net != b.net {
		return a.net < b.net
	}
	return a.edge < b.edge
}

// keyDensCompare is densCompare over evaluated keys.
func keyDensCompare(ka, kb *candKey) int {
	if ka.trunk != kb.trunk {
		if ka.trunk {
			return -1
		}
		return 1
	}
	switch {
	case ka.fm != kb.fm:
		if ka.fm < kb.fm {
			return -1
		}
		return 1
	case ka.nm != kb.nm:
		if ka.nm < kb.nm {
			return -1
		}
		return 1
	case ka.fM != kb.fM:
		if ka.fM < kb.fM {
			return -1
		}
		return 1
	case ka.nM != kb.nM:
		if ka.nM < kb.nM {
			return -1
		}
		return 1
	}
	return 0
}

// netBest is one net's cached selection result: the edge the §3.4/§3.5
// total order ranks first among the net's own candidates, plus its
// evaluated key so the cross-net argmin never re-derives criteria. It
// stays valid while (a) the net's timing epoch is unchanged — covering its
// graph, its differential mate and every constraint touching either — and
// (b) none of the channels the net's edges read density criteria from has
// changed.
type netBest struct {
	key       candKey
	chanV     []uint64 // density version snapshots, indexed like netChans[n]
	edge      int32    // best candidate edge id, -1 when the net has none
	tim       int32    // timEpoch snapshot
	areaOrder bool     // criteria ordering the ranking was computed under
	valid     bool
}

// scratch is per-worker scoring scratch space: the constraint-dedup marks
// that used to be a per-candidate map allocation, and the non-bridge
// candidate buffer that used to be a per-net slice allocation. The router
// owns one for all sequential work; parallel re-scoring gives each worker
// its own.
type scratch struct {
	consMark []int // consMark[p] == consGen marks constraint p as counted
	consGen  int
}

func (r *router) newScratch() *scratch {
	return &scratch{consMark: make([]int, len(r.ckt.Cons))}
}

// dPrime returns d'(e): the tentative-tree length of the net if edge e
// were deleted (§3.2). Edges outside the current tentative tree cannot
// change any shortest path, so the current length is exact for them — the
// A2 ablation flag disables that shortcut to demonstrate it.
func (r *router) dPrime(n, e int) float64 {
	if !r.cfg.NoTentativeCache && !r.trees[n].InTree[e] {
		return r.wl[n]
	}
	if r.dpCache[n] == nil {
		r.dpCache[n] = make([]dpEntry, len(r.graphs[n].Edges))
	}
	if ent := &r.dpCache[n][e]; ent.epoch == r.geoEpoch[n] {
		return ent.val
	}
	l, err := r.graphs[n].LengthExcluding(e)
	if err != nil {
		// e turned out to be a bridge (stale candidate); treat as
		// unchanged — selection will skip it next round.
		l = r.wl[n]
	}
	r.dpCache[n][e] = dpEntry{val: l, epoch: r.geoEpoch[n]}
	return l
}

// dpEntry is one cached d'(e) value, valid while the net's geometry epoch
// (alive-edge set) is unchanged.
type dpEntry struct {
	val   float64
	epoch int32
}

// affectedNets lists the nets whose wiring changes when (n, e) is deleted:
// the net itself and its differential mate. The returned slice aliases a
// router-owned two-element buffer — valid until the next call.
func (r *router) affectedNets(n int) []int {
	r.rrNets[0] = n
	if m := r.pairOf[n]; m != circuit.NoNet {
		r.rrNets[1] = m
		//bgr:allow scratch-escape -- documented loan: affectedNets' result aliases rrNets until the next call; both callers consume it immediately
		return r.rrNets[:2]
	}
	//bgr:allow scratch-escape -- documented loan: affectedNets' result aliases rrNets until the next call; both callers consume it immediately
	return r.rrNets[:1]
}

// delayCriteria computes (with caching) the delay criteria of candidate
// (n, e) against the current timing state, using the router's sequential
// scratch. Parallel scorers call delayCriteriaSc with their own scratch.
func (r *router) delayCriteria(n, e int) delayCrit {
	return r.delayCriteriaSc(n, e, r.sc)
}

func (r *router) delayCriteriaSc(n, e int, sc *scratch) delayCrit {
	if r.dcCache[n] == nil {
		r.dcCache[n] = make([]delayCrit, len(r.graphs[n].Edges))
	}
	c := &r.dcCache[n][e]
	if c.valid && c.tim == r.timEpoch[n] {
		return *c
	}
	out := delayCrit{tim: r.timEpoch[n], valid: true}

	var netsArr [2]int
	netsArr[0] = n
	nn := 1
	if m := r.pairOf[n]; m != circuit.NoNet {
		netsArr[1] = m
		nn = 2
	}
	nets := netsArr[:nn]
	// A net (pair) touching no constraint has identically zero criteria:
	// the P(e) loop below would not execute, so skip the d' Dijkstra runs.
	hasCons := false
	for _, a := range nets {
		if len(r.dg.ConsOfNet(a)) > 0 {
			hasCons = true
			break
		}
	}
	if !hasCons {
		*c = out
		return out
	}
	// New and current lumped arc delays per affected net. The LM criteria
	// use the lumped form even under the Elmore model; the paper notes
	// the heuristics are independent of the delay-model choice.
	type netDelta struct {
		net        int
		dNew, dCur float64
	}
	var deltas [2]netDelta
	nd := 0
	for _, a := range nets {
		dNewLen := r.dPrime(a, e)
		deltas[nd] = netDelta{
			net:  a,
			dNew: r.dg.LumpedArcDelay(a, dNewLen),
			dCur: r.dg.LumpedArcDelay(a, r.wl[a]),
		}
		nd++
	}
	// P(e): constraints whose Gd(P) contains arcs of any affected net,
	// deduplicated with the scratch marks (a map allocation per candidate
	// before).
	sc.consGen++
	for _, a := range nets {
		for _, p := range r.dg.ConsOfNet(a) {
			if sc.consMark[p] == sc.consGen {
				continue
			}
			sc.consMark[p] = sc.consGen
			margin := r.tm.Cons[p].Margin
			tau := r.ckt.Cons[p].Limit
			var worst float64
			for _, d := range deltas[:nd] {
				if dd := r.tm.DeltaIfNetDelay(p, d.net, d.dNew); dd > worst {
					worst = dd
				}
			}
			lm := margin - worst // eq. 2
			if lm <= 0 {
				out.cd++
			}
			out.gl += pen(lm, tau) - pen(margin, tau)
			for _, d := range deltas[:nd] {
				if inc := d.dNew - d.dCur; inc > 0 {
					out.ld += inc * float64(r.dg.ArcsInGd(p, d.net))
				}
			}
		}
	}
	*c = out
	return out
}

// drainDensityChanges folds the density mutations since the last
// selection call into the dirty-net bitset: a channel whose version
// moved invalidates exactly the nets whose candidate graphs touch it
// (chanNetBits). Channels drain in ascending order — OR-ing masks is
// order-independent, but the canonical order keeps the traversal (and
// anything ever derived from it) independent of which shard's commits
// produced the log. An ordering-criterion flip invalidates everything.
// After it returns the superset invariant holds: a clear bit proves
// bestValid without reading any epoch.
func (r *router) drainDensityChanges(areaOrder bool) {
	for _, ch := range r.dens.TakeChangedSorted() {
		row := r.chanNetBits[ch]
		for w, m := range row {
			r.dirtyBest[w] |= m
		}
	}
	if areaOrder != r.lastAreaOrd {
		for w := range r.dirtyBest {
			r.dirtyBest[w] = ^uint64(0)
		}
		r.lastAreaOrd = areaOrder
	}
}

// selectEdge returns the deletion candidate the §3.4 (or §3.5 area)
// heuristics choose over the given nets (nil means all) — the same argmin
// the full scan produced, computed incrementally: each net's ranked best
// is cached and re-scored only when something it depends on changed, and
// the re-scoring of independent nets fans out across Config.Workers. The
// final cross-net argmin is sequential in net-index order, so the result
// is deterministic and independent of the worker count. ok is false when
// no non-bridge edge remains.
//
//bgr:hot
func (r *router) selectEdge(restrict []int, areaOrder bool) (candidate, bool) {
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
	// Materialize every channel's stats: parallel scorers then only read
	// the density state.
	r.dens.Flush()

	nNets := len(r.graphs)
	r.drainDensityChanges(areaOrder)

	// Collect the nets whose cached ranking is stale, grouped into
	// scoring units by differential-pair leader: a unit owns both halves
	// of a pair (their criteria read each other's state), so units touch
	// disjoint data and can score in parallel without locks. The two
	// explicit loops (restricted and full) would be one closure-driven
	// helper, but the closure forces every captured local to the heap —
	// this is the hottest call site in the router.
	stale := r.staleBuf[:0]
	units := r.unitBuf[:0]
	if restrict != nil {
		for _, n := range restrict {
			if r.dirtyBest[n>>6]&(1<<(uint(n)&63)) == 0 {
				continue
			}
			if r.bestValid(n, areaOrder) {
				r.clearBestDirty(n)
				continue
			}
			stale = append(stale, int32(n))
			l := n
			if m := r.pairOf[n]; m != circuit.NoNet && m < n {
				l = m
			}
			if len(units) == 0 || units[len(units)-1] != int32(l) {
				// restrict lists pairs adjacently and the full scan is in
				// index order, so equal leaders arrive consecutively.
				units = append(units, int32(l))
			}
		}
	} else {
		// Walk only the set bits, in ascending net order so pair leaders
		// still arrive consecutively for the units dedup.
		for w, word := range r.dirtyBest {
			for word != 0 {
				n := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if n >= nNets {
					break
				}
				if r.bestValid(n, areaOrder) {
					r.clearBestDirty(n)
					continue
				}
				stale = append(stale, int32(n))
				l := n
				if m := r.pairOf[n]; m != circuit.NoNet && m < n {
					l = m
				}
				if len(units) == 0 || units[len(units)-1] != int32(l) {
					units = append(units, int32(l))
				}
			}
		}
	}
	r.staleBuf = stale
	r.unitBuf = units

	if w := r.workers(); w > 1 && len(units) > 1 {
		r.scoreParallel(units, areaOrder, w)
	} else {
		for _, l := range units {
			r.scoreUnit(int(l), areaOrder, r.sc)
		}
	}
	// Scoring stamped each stale net's cache against the current epochs
	// and density versions, so their bits come down again.
	for _, n := range stale {
		r.clearBestDirty(int(n))
	}

	// Sequential cross-net argmin over the cached per-net bests — pure
	// key comparisons, nothing recomputed.
	best := candidate{net: -1}
	var bestKey *candKey
	if restrict != nil {
		for _, n := range restrict {
			b := &r.best[n]
			if b.edge < 0 {
				continue
			}
			c := candidate{net: int32(n), edge: b.edge}
			if best.net == -1 || r.keyLess(&b.key, bestKey, c, best, areaOrder) {
				best, bestKey = c, &b.key
			}
		}
	} else {
		for n := 0; n < nNets; n++ {
			b := &r.best[n]
			if b.edge < 0 {
				continue
			}
			c := candidate{net: int32(n), edge: b.edge}
			if best.net == -1 || r.keyLess(&b.key, bestKey, c, best, areaOrder) {
				best, bestKey = c, &b.key
			}
		}
	}

	scanned := nNets
	if restrict != nil {
		scanned = len(restrict)
	}
	r.selStat.calls++
	r.selStat.scored += len(stale)
	r.selStat.reused += scanned - len(stale)
	r.selStat.dur += time.Since(start) //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
	return best, best.net != -1
}

// workers resolves Config.Workers: 0 means every available CPU.
func (r *router) workers() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// scoreBatch is the router's reusable workpool task for parallel
// re-scoring: each of the w Run calls first claims a private scratch slot,
// then claims unit indices from the shared counter until the batch is
// drained. Exactly w Runs happen per submit, so slot stays in range.
type scoreBatch struct {
	r         *router
	units     []int32
	areaOrder bool
	next      atomic.Int64
	slot      atomic.Int64
	wg        sync.WaitGroup
}

func (b *scoreBatch) Run() {
	sc := b.r.scratches[int(b.slot.Add(1))-1]
	for {
		u := int(b.next.Add(1)) - 1
		if u >= len(b.units) {
			b.wg.Done()
			return
		}
		b.r.scoreUnit(int(b.units[u]), b.areaOrder, sc)
	}
}

// scoreParallel re-scores the stale units on the shared worker pool. Units
// are data-disjoint (see selectEdge), each worker uses its own scratch,
// and the shared router state (timing, density, lengths, trees) is
// read-only during the fan-out, so the scoring is race-free by
// construction — and byte-identical to the sequential path because each
// unit's result does not depend on scheduling. The reusable batch object
// means no goroutine, closure or WaitGroup is allocated per call.
func (r *router) scoreParallel(units []int32, areaOrder bool, w int) {
	if w > len(units) {
		w = len(units)
	}
	for len(r.scratches) < w {
		r.scratches = append(r.scratches, r.newScratch())
	}
	b := &r.scoreB
	b.r, b.units, b.areaOrder = r, units, areaOrder
	b.next.Store(0)
	b.slot.Store(0)
	b.wg.Add(w)
	workpool.Submit(b, w)
	b.wg.Wait()
}

// scoreUnit recomputes the cached ranking of a pair leader and, for a
// differential pair, its mate.
func (r *router) scoreUnit(leader int, areaOrder bool, sc *scratch) {
	r.scoreNet(leader, areaOrder, sc)
	if m := r.pairOf[leader]; m != circuit.NoNet && !r.bestValid(m, areaOrder) {
		r.scoreNet(m, areaOrder, sc)
	}
}

// scoreNet recomputes net n's ranked best candidate and stamps the cache
// with the state it was computed under.
func (r *router) scoreNet(n int, areaOrder bool, sc *scratch) {
	b := &r.best[n]
	b.edge = -1
	b.areaOrder = areaOrder
	b.tim = r.timEpoch[n]
	chans := r.netChans[n]
	if cap(b.chanV) < len(chans) {
		b.chanV = make([]uint64, len(chans))
	}
	b.chanV = b.chanV[:len(chans)]
	for i, ch := range chans {
		b.chanV[i] = r.dens.Version(ch)
	}
	if r.nbEpoch[n] != r.geoEpoch[n] {
		r.nbList[n] = r.graphs[n].AppendNonBridges(r.nbList[n][:0])
		r.nbEpoch[n] = r.geoEpoch[n] //bgr:allow epochs -- stamps the just-rebuilt candidate list as fresh; not an invalidation
	}
	nb := r.nbList[n]
	for _, e := range nb {
		c := candidate{net: int32(n), edge: e}
		k := r.keyFor(c, sc)
		if b.edge == -1 || r.keyLess(&k, &b.key, c, candidate{net: int32(n), edge: b.edge}, areaOrder) {
			b.edge, b.key = e, k
		}
	}
	b.valid = true
}

// bestValid reports whether net n's cached ranking still reflects the
// current router state under the requested criteria ordering.
func (r *router) bestValid(n int, areaOrder bool) bool {
	b := &r.best[n]
	if !b.valid || b.areaOrder != areaOrder || b.tim != r.timEpoch[n] {
		return false
	}
	chans := r.netChans[n]
	if len(b.chanV) != len(chans) {
		return false
	}
	for i, ch := range chans {
		if b.chanV[i] != r.dens.Version(ch) {
			return false
		}
	}
	return true
}

const fEps = 1e-9

// less reports whether candidate a should be deleted in preference to b,
// using the router's sequential scratch.
//
// Initial/delay ordering (§3.4): Cd, Gl, LD, then the five density
// conditions, then the longer edge. Area ordering (§3.5): Cd, density
// conditions, Gl, LD, longer edge. Without constraints only the density
// conditions apply. Ties end at a deterministic index order.
func (r *router) less(a, b candidate, areaOrder bool) bool {
	return r.lessSc(a, b, areaOrder, r.sc)
}

func (r *router) lessSc(a, b candidate, areaOrder bool, sc *scratch) bool {
	ka, kb := r.keyFor(a, sc), r.keyFor(b, sc)
	return r.keyLess(&ka, &kb, a, b, areaOrder)
}

func (r *router) edgeOf(c candidate) *rgraph.Edge {
	return &r.graphs[c.net].Edges[c.edge]
}

// densCompare applies the five §3.4 density conditions; negative means a
// wins, positive means b wins, zero is a tie.
func (r *router) densCompare(a, b candidate) int {
	ea, eb := r.edgeOf(a), r.edgeOf(b)
	// Condition 1: prefer a trunk edge over any other kind — deleting a
	// trunk directly reduces channel density.
	ta, tb := ea.Kind == rgraph.ETrunk, eb.Kind == rgraph.ETrunk
	if ta != tb {
		if ta {
			return -1
		}
		return 1
	}
	ca := r.dens.Channel(ea.Ch)
	cb := r.dens.Channel(eb.Ch)
	sa := r.dens.Edge(ea.Ch, ea.X1, ea.X2)
	sb := r.dens.Edge(eb.Ch, eb.X1, eb.X2)
	// Condition 2: F_m = C_m(c) − D_m(e), smaller first (do not grow the
	// unavoidable density C_m).
	if fa, fb := ca.Cm-sa.Dm, cb.Cm-sb.Dm; fa != fb {
		if fa < fb {
			return -1
		}
		return 1
	}
	// Condition 3: N_m = NC_m(c) − ND_m(e), smaller first.
	if na, nb := ca.NCm-sa.NDm, cb.NCm-sb.NDm; na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	// Condition 4: C_M(c) − D_M(e), smaller first (greedy reduction of
	// the worst channel).
	if fa, fb := ca.CM-sa.DM, cb.CM-sb.DM; fa != fb {
		if fa < fb {
			return -1
		}
		return 1
	}
	// Condition 5: NC_M(c) − ND_M(e), smaller first.
	if na, nb := ca.NCM-sa.NDM, cb.NCM-sb.NDM; na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	return 0
}
