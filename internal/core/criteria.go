package core

import (
	"repro/internal/circuit"
	"repro/internal/rgraph"
)

// delayCrit caches the §3.2 delay criteria of one candidate edge: the
// critical count Cd (eq. 3), the global delay penalty Gl (eq. 4) and the
// local delay increase LD.
type delayCrit struct {
	cd       int
	gl       float64
	ld       float64
	staEpoch int
	netEpoch int
	valid    bool
}

type candidate struct {
	net, edge int
}

// dPrime returns d'(e): the tentative-tree length of the net if edge e
// were deleted (§3.2). Edges outside the current tentative tree cannot
// change any shortest path, so the current length is exact for them — the
// A2 ablation flag disables that shortcut to demonstrate it.
func (r *router) dPrime(n, e int) float64 {
	if !r.cfg.NoTentativeCache && !r.trees[n].InTree[e] {
		return r.wl[n]
	}
	if r.dpCache[n] == nil {
		r.dpCache[n] = make(map[int]float64)
	}
	if v, ok := r.dpCache[n][e]; ok {
		return v
	}
	l, err := r.graphs[n].LengthExcluding(e)
	if err != nil {
		// e turned out to be a bridge (stale candidate); treat as
		// unchanged — selection will skip it next round.
		l = r.wl[n]
	}
	r.dpCache[n][e] = l
	return l
}

// affectedNets lists the nets whose wiring changes when (n, e) is deleted:
// the net itself and its differential mate.
func (r *router) affectedNets(n int) []int {
	if m := r.pairOf[n]; m != circuit.NoNet {
		return []int{n, m}
	}
	return []int{n}
}

// delayCriteria computes (with caching) the delay criteria of candidate
// (n, e) against the current timing state.
func (r *router) delayCriteria(n, e int) delayCrit {
	if r.dcCache[n] == nil {
		r.dcCache[n] = make([]delayCrit, len(r.graphs[n].Edges))
	}
	c := &r.dcCache[n][e]
	if c.valid && c.staEpoch == r.staEpoch && c.netEpoch == r.netEpoch[n] {
		return *c
	}
	out := delayCrit{staEpoch: r.staEpoch, netEpoch: r.netEpoch[n], valid: true}

	nets := r.affectedNets(n)
	// New and current lumped arc delays per affected net. The LM criteria
	// use the lumped form even under the Elmore model; the paper notes
	// the heuristics are independent of the delay-model choice.
	type netDelta struct {
		net        int
		dNew, dCur float64
	}
	deltas := make([]netDelta, 0, 2)
	for _, a := range nets {
		dNewLen := r.dPrime(a, e)
		deltas = append(deltas, netDelta{
			net:  a,
			dNew: r.dg.LumpedArcDelay(a, dNewLen),
			dCur: r.dg.LumpedArcDelay(a, r.wl[a]),
		})
	}
	// P(e): constraints whose Gd(P) contains arcs of any affected net.
	seen := map[int]bool{}
	for _, a := range nets {
		for _, p := range r.dg.ConsOfNet(a) {
			if seen[p] {
				continue
			}
			seen[p] = true
			margin := r.tm.Cons[p].Margin
			tau := r.ckt.Cons[p].Limit
			var worst float64
			for _, d := range deltas {
				if dd := r.tm.DeltaIfNetDelay(p, d.net, d.dNew); dd > worst {
					worst = dd
				}
			}
			lm := margin - worst // eq. 2
			if lm <= 0 {
				out.cd++
			}
			out.gl += pen(lm, tau) - pen(margin, tau)
			for _, d := range deltas {
				if inc := d.dNew - d.dCur; inc > 0 {
					out.ld += inc * float64(r.arcsInGd(p, d.net))
				}
			}
		}
	}
	*c = out
	return out
}

// arcsInGd counts net arcs of a net inside Gd(P).
func (r *router) arcsInGd(p, n int) int {
	count := 0
	for _, a := range r.dg.NetArcs(n) {
		if r.dg.InGd(p, a) {
			count++
		}
	}
	return count
}

// selectEdge scans the deletion candidates (over all nets, or only the
// given ones) and returns the edge the §3.4 heuristics choose. ok is false
// when no non-bridge edge remains.
func (r *router) selectEdge(restrict []int, areaOrder bool) (candidate, bool) {
	nets := restrict
	if nets == nil {
		nets = allNets(len(r.graphs))
	}
	best := candidate{net: -1}
	for _, n := range nets {
		for _, e := range r.graphs[n].NonBridges() {
			c := candidate{net: n, edge: e}
			if best.net == -1 || r.less(c, best, areaOrder) {
				best = c
			}
		}
	}
	return best, best.net != -1
}

const fEps = 1e-9

// less reports whether candidate a should be deleted in preference to b.
//
// Initial/delay ordering (§3.4): Cd, Gl, LD, then the five density
// conditions, then the longer edge. Area ordering (§3.5): Cd, density
// conditions, Gl, LD, longer edge. Without constraints only the density
// conditions apply. Ties end at a deterministic index order.
func (r *router) less(a, b candidate, areaOrder bool) bool {
	if r.cfg.UseConstraints {
		da := r.delayCriteria(a.net, a.edge)
		db := r.delayCriteria(b.net, b.edge)
		if da.cd != db.cd {
			return da.cd < db.cd
		}
		if !areaOrder {
			if diff := da.gl - db.gl; diff < -fEps || diff > fEps {
				return diff < 0
			}
			if diff := da.ld - db.ld; diff < -fEps || diff > fEps {
				return diff < 0
			}
		}
		if c := r.densCompare(a, b); c != 0 {
			return c < 0
		}
		if areaOrder {
			if diff := da.gl - db.gl; diff < -fEps || diff > fEps {
				return diff < 0
			}
			if diff := da.ld - db.ld; diff < -fEps || diff > fEps {
				return diff < 0
			}
		}
	} else if c := r.densCompare(a, b); c != 0 {
		return c < 0
	}
	// Longer edge preferred for deletion.
	ea, eb := r.edgeOf(a), r.edgeOf(b)
	if diff := ea.Len - eb.Len; diff < -fEps || diff > fEps {
		return diff > 0
	}
	if a.net != b.net {
		return a.net < b.net
	}
	return a.edge < b.edge
}

func (r *router) edgeOf(c candidate) *rgraph.Edge {
	return &r.graphs[c.net].Edges[c.edge]
}

// densCompare applies the five §3.4 density conditions; negative means a
// wins, positive means b wins, zero is a tie.
func (r *router) densCompare(a, b candidate) int {
	ea, eb := r.edgeOf(a), r.edgeOf(b)
	// Condition 1: prefer a trunk edge over any other kind — deleting a
	// trunk directly reduces channel density.
	ta, tb := ea.Kind == rgraph.ETrunk, eb.Kind == rgraph.ETrunk
	if ta != tb {
		if ta {
			return -1
		}
		return 1
	}
	ca := r.dens.Channel(ea.Ch)
	cb := r.dens.Channel(eb.Ch)
	sa := r.dens.Edge(ea.Ch, ea.X1, ea.X2)
	sb := r.dens.Edge(eb.Ch, eb.X1, eb.X2)
	// Condition 2: F_m = C_m(c) − D_m(e), smaller first (do not grow the
	// unavoidable density C_m).
	if fa, fb := ca.Cm-sa.Dm, cb.Cm-sb.Dm; fa != fb {
		if fa < fb {
			return -1
		}
		return 1
	}
	// Condition 3: N_m = NC_m(c) − ND_m(e), smaller first.
	if na, nb := ca.NCm-sa.NDm, cb.NCm-sb.NDm; na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	// Condition 4: C_M(c) − D_M(e), smaller first (greedy reduction of
	// the worst channel).
	if fa, fb := ca.CM-sa.DM, cb.CM-sb.DM; fa != fb {
		if fa < fb {
			return -1
		}
		return 1
	}
	// Condition 5: NC_M(c) − ND_M(e), smaller first.
	if na, nb := ca.NCM-sa.NDM, cb.NCM-sb.NDM; na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	return 0
}
