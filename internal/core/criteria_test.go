package core

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/feed"
	"repro/internal/rgraph"
)

// newTestRouter builds the router state (feed assignment, graphs, timing,
// density) without running any routing phase.
func newTestRouter(t *testing.T, ckt *circuit.Circuit, cfg Config) *router {
	t.Helper()
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	var order []int
	if cfg.UseConstraints {
		dg0, err := dgraph.New(ckt)
		if err != nil {
			t.Fatal(err)
		}
		order = slackOrder(dg0)
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		t.Fatal(err)
	}
	r := &router{cfg: cfg, ckt: fr.Ckt, geo: fr.Geo, feeds: fr.Feeds}
	if r.dg, err = dgraph.New(r.ckt); err != nil {
		t.Fatal(err)
	}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPenFunction(t *testing.T) {
	tau := 500.0
	if got := pen(0, tau); got != 1 {
		t.Fatalf("pen(0) = %v, want 1", got)
	}
	if got := pen(tau, tau); got != 0 {
		t.Fatalf("pen(tau) = %v, want 0", got)
	}
	if got := pen(-tau, tau); math.Abs(got-math.E) > 1e-12 {
		t.Fatalf("pen(-tau) = %v, want e", got)
	}
	// Monotone decreasing in slack, continuous at 0.
	prev := math.Inf(1)
	for x := -2 * tau; x <= 2*tau; x += tau / 8 {
		v := pen(x, tau)
		if v > prev {
			t.Fatalf("pen not monotone at %v", x)
		}
		prev = v
	}
	if diff := pen(-1e-12, tau) - pen(1e-12, tau); math.Abs(diff) > 1e-9 {
		t.Fatalf("pen discontinuous at 0: %v", diff)
	}
}

func TestDPrimeMatchesLengthExcluding(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			want := r.wl[n]
			if r.trees[n].InTree[e] {
				var err error
				want, err = g.LengthExcluding(e)
				if err != nil {
					t.Fatalf("net %d edge %d: %v", n, e, err)
				}
			}
			if got := r.dPrime(n, e); math.Abs(got-want) > 1e-9 {
				t.Fatalf("net %d edge %d: dPrime %v, want %v", n, e, got, want)
			}
		}
	}
}

func TestDelayCriteriaZeroForHarmlessEdges(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	for n, g := range r.graphs {
		if len(r.dg.ConsOfNet(n)) > 0 {
			continue // only check nets on no constrained path
		}
		for _, e := range g.NonBridges() {
			c := r.delayCriteria(n, e)
			if c.cd != 0 || c.gl != 0 || c.ld != 0 {
				t.Fatalf("net %s (unconstrained) edge %d has criteria %+v",
					r.ckt.Nets[n].Name, e, c)
			}
		}
	}
}

func TestDelayCriteriaNonNegative(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			c := r.delayCriteria(n, e)
			if c.cd < 0 || c.gl < -1e-12 || c.ld < 0 {
				t.Fatalf("negative criteria %+v for net %d edge %d", c, n, e)
			}
		}
	}
}

func TestDelayCriteriaCacheConsistent(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	n := 1
	e := r.graphs[n].NonBridges()[0]
	a := r.delayCriteria(n, e)
	b := r.delayCriteria(n, e) // cached
	if a != b {
		t.Fatalf("cache changed the answer: %+v vs %+v", a, b)
	}
	// Mutating the net invalidates: delete a different edge and recheck
	// validity flags rather than values.
	nb := r.graphs[n].NonBridges()
	if err := r.deleteEdge(n, nb[len(nb)-1]); err != nil {
		t.Fatal(err)
	}
	c := r.delayCriteria(n, e)
	if c.tim != r.timEpoch[n] {
		t.Fatal("cache not refreshed after epoch bump")
	}
}

func TestSelectEdgePrefersHarmless(t *testing.T) {
	// The selected edge must have the (lexicographically) smallest delay
	// criteria among all candidates.
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	best, ok := r.selectEdge(nil, false)
	if !ok {
		t.Fatal("no candidates")
	}
	bc := r.delayCriteria(int(best.net), int(best.edge))
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			c := r.delayCriteria(n, e)
			if c.cd < bc.cd {
				t.Fatalf("selected Cd=%d but edge (%d,%d) has Cd=%d", bc.cd, n, e, c.cd)
			}
			if c.cd == bc.cd && c.gl < bc.gl-fEps {
				t.Fatalf("selected Gl=%v but edge (%d,%d) has Gl=%v", bc.gl, n, e, c.gl)
			}
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	var cands []candidate
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			cands = append(cands, candidate{int32(n), int32(e)})
		}
	}
	for _, a := range cands {
		if r.less(a, a, false) {
			t.Fatalf("less(a,a) true for %+v", a)
		}
	}
	// Antisymmetry on a sample of pairs.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j += 3 {
			ab := r.less(cands[i], cands[j], false)
			ba := r.less(cands[j], cands[i], false)
			if ab && ba {
				t.Fatalf("less not antisymmetric for %+v / %+v", cands[i], cands[j])
			}
			if !ab && !ba {
				t.Fatalf("unresolved tie (index fallback broken) for %+v / %+v", cands[i], cands[j])
			}
		}
	}
}

func TestDensCompareTrunkFirst(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{})
	var trunk, other candidate
	trunk.net, other.net = -1, -1
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			if g.Edges[e].Kind == rgraph.ETrunk && trunk.net == -1 {
				trunk = candidate{int32(n), int32(e)}
			}
			if g.Edges[e].Kind != rgraph.ETrunk && other.net == -1 {
				other = candidate{int32(n), int32(e)}
			}
		}
	}
	if trunk.net == -1 || other.net == -1 {
		t.Skip("fixture lacks mixed candidates")
	}
	if r.densCompare(trunk, other) >= 0 {
		t.Fatal("trunk edge must win condition 1")
	}
	if r.densCompare(other, trunk) <= 0 {
		t.Fatal("condition 1 must be symmetric")
	}
}

func TestObjectiveTracksState(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	o := r.objective()
	if o.tracks != r.dens.TotalTracks() {
		t.Fatal("tracks mismatch")
	}
	var wl float64
	for _, l := range r.wl {
		wl += l
	}
	if math.Abs(o.wirelen-wl) > 1e-9 {
		t.Fatal("wirelen mismatch")
	}
}

func TestAcceptRules(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	base := objective{violations: 1, penalty: 5, tracks: 10, wirelen: 100}
	if !r.acceptDelay(base, objective{violations: 0, penalty: 9, tracks: 12, wirelen: 120}) {
		t.Fatal("fewer violations must be accepted")
	}
	if r.acceptDelay(base, objective{violations: 2, penalty: 1, tracks: 1, wirelen: 1}) {
		t.Fatal("more violations must be rejected")
	}
	if !r.acceptDelay(base, objective{violations: 1, penalty: 4.9, tracks: 10, wirelen: 100}) {
		t.Fatal("lower penalty must be accepted")
	}
	if !r.acceptArea(base, objective{violations: 1, penalty: 5, tracks: 9, wirelen: 100}) {
		t.Fatal("fewer tracks must be accepted")
	}
	if r.acceptArea(base, objective{violations: 2, penalty: 5, tracks: 9, wirelen: 100}) {
		t.Fatal("area win at a new violation must be rejected")
	}
	if r.acceptArea(base, objective{violations: 1, penalty: 6, tracks: 9, wirelen: 100}) {
		t.Fatal("area win at higher penalty must be rejected")
	}
	if r.acceptArea(base, objective{violations: 1, penalty: 5, tracks: 10, wirelen: 100}) {
		t.Fatal("no improvement must be rejected")
	}
	if !r.acceptArea(base, objective{violations: 1, penalty: 5, tracks: 10, wirelen: 99}) {
		t.Fatal("equal tracks with less wire must be accepted")
	}
}

func TestReallocFeedsProposesOnlyFreeSlots(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: true})
	for n := range r.graphs {
		nets := r.affectedNets(n)
		alt := r.reallocFeeds(nets)
		if alt == nil {
			continue
		}
		for i, feeds := range alt {
			nn := nets[i]
			w := r.ckt.Nets[nn].Pitch
			for _, f := range feeds {
				for j := 0; j < w; j++ {
					owner := r.slotOwnerAt(f.Row, f.Col+j)
					if owner >= 0 && owner != nn && owner != r.pairOf[nn] {
						t.Fatalf("net %d offered slot (%d,%d) owned by net %d", nn, f.Row, f.Col+j, owner)
					}
				}
			}
		}
	}
}

func TestSlotOwnerMatchesFeeds(t *testing.T) {
	res, err := Route(circuit.SampleSmall(), Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild ownership from the final feeds: every slot owned once.
	seen := map[[2]int]int{}
	for n := range res.Feeds {
		w := res.Ckt.Nets[n].Pitch
		for _, f := range res.Feeds[n] {
			for j := 0; j < w; j++ {
				key := [2]int{f.Row, f.Col + j}
				if prev, dup := seen[key]; dup {
					t.Fatalf("slot %v owned by nets %d and %d", key, prev, n)
				}
				seen[key] = n
			}
		}
	}
}
