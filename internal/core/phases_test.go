package core

import (
	"testing"

	"repro/internal/gen"
)

// TestImprovementPhasesHelpOnC1P2 pins the observed benefit of the §3.5
// rip-up phases on the P2 data set (feeds swept aside leave room to
// improve): the full run must beat initial-routing-only on delay estimate
// and never lose on violations.
func TestImprovementPhasesHelpOnC1P2(t *testing.T) {
	p, err := gen.Dataset("C1P2")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Route(ckt, Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := Route(ckt, Config{UseConstraints: true, SkipImprovement: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Delay > initial.Delay+1e-6 {
		t.Errorf("improvement phases worsened delay: %v vs %v", full.Delay, initial.Delay)
	}
	if full.Violations() > initial.Violations() {
		t.Errorf("improvement phases added violations: %d vs %d", full.Violations(), initial.Violations())
	}
	if full.Dens.TotalTracks() > initial.Dens.TotalTracks() {
		t.Errorf("improvement phases grew tracks: %d vs %d",
			full.Dens.TotalTracks(), initial.Dens.TotalTracks())
	}
	// At least one phase accepted a reroute on this data set (regression
	// anchor for the machinery being alive).
	accepted := 0
	for _, ps := range full.Phases {
		accepted += ps.Accepted
	}
	if accepted == 0 {
		t.Error("no reroute accepted on C1P2; improvement machinery inert")
	}
}

// TestZeroConstraintCircuit routes a circuit without constraints in
// constrained mode — the delay machinery must degrade gracefully.
func TestZeroConstraintCircuit(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ckt.Cons = nil
	res, err := Route(ckt, Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != 0 {
		t.Fatalf("delay %v with no constraints", res.Delay)
	}
	if res.Violations() != 0 {
		t.Fatal("violations without constraints")
	}
	for n, g := range res.Graphs {
		if !g.IsTree() {
			t.Fatalf("net %d not a tree", n)
		}
	}
}
