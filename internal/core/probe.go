package core

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/feed"
)

// Probe exposes the candidate-selection engine on a fully initialized but
// un-routed router, for benchmarks and profiling harnesses (see
// docs/PERF.md). It builds the complete routing state — feedthrough
// assignment, routing graphs, timing analysis, density profiles — without
// running any deletion phase, so repeated selection sweeps measure the
// engine itself rather than a moving routing state.
type Probe struct {
	r     *router
	nbBuf []int32 // DPrimeSweep candidate buffer
}

// NewProbe validates the circuit and builds the router state exactly as
// Route does, stopping before the first phase.
func NewProbe(ckt *circuit.Circuit, cfg Config) (*Probe, error) {
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	order, err := netOrder(ckt, cfg)
	if err != nil {
		return nil, err
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		return nil, err
	}
	r := &router{cfg: cfg, ckt: fr.Ckt, geo: fr.Geo, feeds: fr.Feeds}
	if r.dg, err = dgraph.New(r.ckt); err != nil {
		return nil, err
	}
	if err := r.setup(); err != nil {
		return nil, err
	}
	return &Probe{r: r}, nil
}

// SelectEdge runs one §3.4/§3.5 selection sweep over every net and
// reports the winning candidate. With a warm cache (no call to
// InvalidateAll in between) this measures the incremental fast path.
func (p *Probe) SelectEdge(areaOrder bool) (net, edge int, ok bool) {
	c, ok := p.r.selectEdge(nil, areaOrder)
	return int(c.net), int(c.edge), ok
}

// SelectRound runs one sharded round scan (shard.go): parallel per-shard
// top-k scans, the deterministic merge, and the interaction truncation.
// It reports the round's first commit — always equal to what SelectEdge
// would have returned on the same state.
func (p *Probe) SelectRound(areaOrder bool) (net, edge int, ok bool) {
	if !p.r.selectRound(areaOrder) {
		return 0, 0, false
	}
	c, ok := p.r.roundNext(areaOrder)
	return int(c.net), int(c.edge), ok
}

// InvalidateAll marks every net's cached score and criteria stale, so the
// next SelectEdge rescores the whole circuit (the cold path).
func (p *Probe) InvalidateAll() {
	for n := range p.r.graphs {
		p.r.touchNet(n)
	}
}

// DPrimeSweep recomputes the tentative routed length d′ for every
// candidate edge of every net, bypassing the per-net d′ cache. It returns
// the sum of the lengths so callers can sink the result.
func (p *Probe) DPrimeSweep() float64 {
	r := p.r
	var sum float64
	for n := range r.graphs {
		r.touchGeo(n) // stale-stamp the d′ cache without touching the graph
		p.nbBuf = r.graphs[n].AppendNonBridges(p.nbBuf[:0])
		for _, e := range p.nbBuf {
			sum += r.dPrime(n, int(e))
		}
	}
	return sum
}

// Stats reports the cumulative selection counters: sweeps run, per-net
// scores recomputed, scores served from the incremental cache, and total
// time inside SelectEdge.
func (p *Probe) Stats() (calls, scored, reused int, dur time.Duration) {
	s := p.r.selStat
	return s.calls, s.scored, s.reused, s.dur
}

// TimingFlush marks the given nets' delays changed (re-deriving each
// net's delay from its current tree) and flushes the dirty constraint
// set, returning how many constraints were re-analyzed. It exercises the
// incremental timing path exactly as refreshTrees does, without moving
// the routing state.
func (p *Probe) TimingFlush(nets []int) int {
	r := p.r
	for _, n := range nets {
		r.applyNetDelay(n)
	}
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds timStats, never steers routing
	touched := r.tm.Flush()
	r.timStat.dur += time.Since(start) //bgr:allow clockuse -- profiling only: feeds timStats, never steers routing
	r.timStat.flushes++
	r.timStat.cons += len(touched)
	for _, c := range touched {
		r.touchCons(c)
	}
	return len(touched)
}

// TimingStats reports the cumulative timing-flush counters: flushes run,
// constraints re-analyzed across them, and total time inside Flush.
func (p *Probe) TimingStats() (flushes, cons int, dur time.Duration) {
	s := p.r.timStat
	return s.flushes, s.cons, s.dur
}
