// Package core implements the timing- and area-driven global router of
// Harada & Kitazawa, "A Global Router Optimizing Timing and Area for
// High-Speed Bipolar LSI's" (DAC 1994).
//
// The router follows the paper's Fig. 2 outline:
//
//	01  external-terminal & feedthrough assignment      (package feed)
//	02  routing-graph initialization Gr(n)              (package rgraph)
//	03  delay-constraint-graph initialization Gd(P)     (package dgraph)
//	04-07  initial routing: concurrent edge deletion with the §3.4
//	       heuristics over delay criteria (Cd, Gl, LD from the local
//	       margin LM) and channel-density criteria (C_m, NC_m, C_M, NC_M)
//	08  constraint-violation recovery (rip-up & reroute)
//	09  delay-improvement loop
//	10  area-improvement loop (density criteria promoted)
//
// Bipolar-specific features (§4): differential pairs are deleted in
// lock-step on isomorphic graphs, multi-pitch nets carry pitch-weighted
// density and occupy adjacent feedthrough slots, and feed-cell insertion
// widens the chip when feedthroughs run out.
package core

import (
	"io"

	"repro/internal/engine"
)

// The delay-model, ordering, progress, phase-stat and result types are
// shared by every routing engine and live in internal/engine; the aliases
// keep this package's historical API (core.Config literals, core.Result
// consumers) source-compatible.

// DelayModel selects how net delays are derived from routed trees.
type DelayModel = engine.DelayModel

const (
	// Lumped is the paper's capacitance model: every sink of a net sees
	// (Σ Fin)·Tf + CL·Td with CL from the total tree length.
	Lumped = engine.Lumped
	// Elmore is the §2.1 RC extension: per-sink Elmore delays over the
	// tentative tree plus the lumped driver terms.
	Elmore = engine.Elmore
)

// Config controls a routing run.
type Config struct {
	// UseConstraints enables the timing criteria. With it false the
	// router is the paper's "without constraints" baseline: pure
	// area-driven edge selection (delays are still reported).
	UseConstraints bool

	// DelayModel picks Lumped (default, the paper) or Elmore.
	DelayModel DelayModel
	// RPerUm is the wire resistance in kΩ/µm for the Elmore model.
	RPerUm float64

	// AreaFirst makes every phase use the area-phase criteria ordering
	// (density before Gl/LD). The paper uses it only in phase 10; this is
	// ablation A1.
	AreaFirst bool

	// SkipImprovement disables phases 08-10 (ablation A5).
	SkipImprovement bool
	// MaxPasses bounds each improvement phase's sweeps. 0 means the
	// default of 3.
	MaxPasses int

	// NoTentativeCache disables the d'(e) shortcut that reuses the
	// current length for edges outside the tentative tree (ablation A2;
	// the shortcut is exact, so results must not change).
	NoTentativeCache bool

	// ArbitraryNetOrder skips the static-slack ordering for feedthrough
	// assignment and uses net index order (ablation A3). Equivalent to
	// Order = OrderIndex.
	ArbitraryNetOrder bool

	// Order picks the feedthrough-assignment net ordering. The zero value
	// is the paper's ascending static slack (which degrades to index
	// order when constraints are off or absent).
	Order OrderStrategy

	// NoFeedReroute disables feedthrough re-assignment during the rip-up
	// and reroute phases (ablation A6). By default a net whose plain
	// reroute is rejected is retried once with its feedthroughs moved to
	// the free slots nearest its terminal center.
	NoFeedReroute bool

	// Workers bounds the worker pool that re-scores invalidated nets
	// during edge selection. 0 means one worker per available CPU; 1 runs
	// fully sequentially. The routed result is identical for every value —
	// scoring units are data-disjoint and the cross-net argmin is always
	// sequential — so this only trades wall-clock for cores.
	Workers int

	// Shards bounds the channel-band regions the initial-routing phase
	// partitions the nets into for the sharded round scans (shard.go). 0
	// picks a size-based default; 1 disables the partition without
	// disabling the round protocol. The routed result is byte-identical
	// for every value — the per-shard candidate lists merge under the
	// same strict total order the sequential argmin uses — so this, like
	// Workers, only shapes how the scan work is split.
	Shards int

	// Trace, when non-nil, receives a phase-by-phase log (Fig. 2 trace).
	Trace io.Writer

	// Progress, when non-nil, receives Progress snapshots: one at each
	// phase start, one after every edge deletion (initial routing) or
	// reroute attempt (improvement phases), and one with Done set when the
	// phase finishes. It is called synchronously from the routing
	// goroutine, so it must be fast and must not call back into the
	// router. Combined with RouteCtx it lets a caller observe and abort a
	// run mid-flight.
	Progress func(Progress)
}

// OrderStrategy selects the net order for feedthrough assignment (§3.1).
type OrderStrategy = engine.OrderStrategy

const (
	// OrderSlack is the paper's ascending static slack.
	OrderSlack = engine.OrderSlack
	// OrderIndex takes nets in index order.
	OrderIndex = engine.OrderIndex
	// OrderHPWL assigns the longest half-perimeter nets first.
	OrderHPWL = engine.OrderHPWL
	// OrderFanout assigns the highest-fanout nets first.
	OrderFanout = engine.OrderFanout
)

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 3
	}
	return c.MaxPasses
}
