package core

// Sharded round-based selection for the initial routing phase (Fig. 2
// lines 04-07). The sequential loop runs one global argmin per deleted
// edge; this file splits each argmin round into three deterministic
// steps so the decision work itself parallelizes without changing a
// single routed byte:
//
//  1. Scan. The nets are partitioned once into channel-band shards
//     (setupShards): each shard owns a contiguous ascending net list
//     with differential-pair mates co-located. At round start every
//     shard independently refreshes its stale cached bests and keeps
//     its local top-k candidates (scanShard), in parallel across
//     Config.Workers. Per-net bests are pure functions of router state,
//     so the scan result is independent of both the partition and the
//     scheduling; dirty-bit clears are logged per shard and applied
//     after the join because shards share words of the dirtyBest
//     bitset.
//
//  2. Reduce. The per-shard top-k lists merge into one globally ranked
//     list under the strict §3.4/§3.5 total order (mergeRound) — equal
//     to the prefix of the full ranking regardless of the shard count —
//     truncated at the first entry whose candidate interacts with an
//     earlier kept entry (shared channel footprint, overlapping Gd(P)
//     constraint cone, or same differential unit). The kept entries are
//     mutually non-interacting speculative commits in canonical rank
//     order.
//
//  3. Commit. Edges are committed one at a time in list order, but each
//     commit is verified first: the nets dirtied by previous commits are
//     re-scored into the round's revised set (roundRefresh), and the
//     next list entry only commits while it still beats the best revised
//     candidate (roundNext). When a revised net outranks the list — a
//     deletion improved some other net's key, which the density criteria
//     permit — the revised candidate commits instead: the single-commit
//     fallback. The round ends when the list is exhausted; nets outside
//     it were ranked worse than every kept entry at round start and can
//     only be re-ranked by a fresh scan.
//
// The commit sequence therefore equals the sequential argmin schedule
// exactly — not merely "some" sequential schedule — which is what keeps
// the golden tables and the byte-identity determinism gate unchanged for
// every Shards × Workers combination.

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/workpool"
)

const (
	// roundTopK bounds the per-shard and merged candidate lists. Eight is
	// deep enough that most rounds commit several edges before the list
	// is invalidated, and small enough that the merge and interaction
	// checks stay trivial next to one net re-score.
	roundTopK = 8
	// shardGrain is the target net count per auto-sized shard;
	// maxAutoShards caps the auto size so tiny circuits do not pay
	// partition overhead. Both only shape the work split — results are
	// byte-identical for every shard count.
	shardGrain    = 96
	maxAutoShards = 8
)

// rankedCand is one evaluated candidate in a shard's (or the merged)
// top-k list.
type rankedCand struct {
	key candKey
	c   candidate
}

// shardState is one shard's private round-scan state: its net list, its
// scoring scratch, the top-k candidates of its latest scan, and the
// dirty-bit logs the post-join merge consumes. The *Log fields and the
// top-k bookkeeping may only be mutated by the shard-owned scan methods
// (the bgr-vet epochs contract), because applying them directly from a
// worker would race on the shared dirtyBest words.
type shardState struct {
	nets []int32  // owned nets, ascending, pair mates co-located
	sc   *scratch // private scoring scratch

	// staleLog lists nets this scan re-scored; revalLog lists nets whose
	// cached best was revalidated without re-scoring. Both carry dirty
	// bits to clear — deferred to the sequential merge because shard
	// boundaries do not align to the bitset's 64-net words.
	staleLog []int32
	revalLog []int32

	topK [roundTopK]rankedCand
	nTop int
}

// shardCount resolves Config.Shards: 0 picks a size-based default that
// is deterministic (no CPU-count dependence), so traces and stats are
// reproducible across machines.
func (r *router) shardCount() int {
	if r.cfg.Shards > 0 {
		return r.cfg.Shards
	}
	s := (r.nNets + shardGrain - 1) / shardGrain
	if s < 1 {
		s = 1
	}
	if s > maxAutoShards {
		s = maxAutoShards
	}
	return s
}

// setupShards partitions the nets into channel-band regions and lays out
// the round-selection state. Each net is anchored at the lowest channel
// its graph reads density from (netChans); a differential mate joins its
// leader's shard so a scoring unit never spans shards. The partition is
// static — later reroutes may shrink a net's channel set, but the split
// only balances work, never correctness.
func (r *router) setupShards() {
	nNets := r.nNets
	nShards := r.shardCount()
	nCh := r.dens.Channels()
	r.shardOf = make([]int32, nNets)
	for n := 0; n < nNets; n++ {
		if m := r.pairOf[n]; m != circuit.NoNet && m < n {
			r.shardOf[n] = r.shardOf[m]
			continue
		}
		anchor := 0
		if chans := r.netChans[n]; len(chans) > 0 {
			anchor = chans[0]
			for _, ch := range chans[1:] {
				if ch < anchor {
					anchor = ch
				}
			}
		}
		s := 0
		if nCh > 0 {
			s = anchor * nShards / nCh
		}
		if s >= nShards {
			s = nShards - 1
		}
		r.shardOf[n] = int32(s)
	}
	counts := make([]int, nShards)
	for _, s := range r.shardOf {
		counts[s]++
	}
	r.shardSt = make([]*shardState, nShards)
	for si := range r.shardSt {
		r.shardSt[si] = &shardState{
			sc:       r.newScratch(),
			nets:     make([]int32, 0, counts[si]),
			staleLog: make([]int32, 0, counts[si]),
			revalLog: make([]int32, 0, counts[si]),
		}
	}
	for n := 0; n < nNets; n++ {
		s := r.shardSt[r.shardOf[n]]
		s.nets = append(s.nets, int32(n))
	}
	// Round state, sized once so the commit loop never allocates.
	r.mergeIdx = make([]int32, nShards)
	r.roundList = make([]rankedCand, 0, roundTopK)
	r.roundNets = make([]int32, 0, 2*roundTopK)
	r.revBits = make([]uint64, (nNets+63)/64)
	r.revList = make([]int32, 0, nNets)
	r.roundStale = make([]int32, 0, nNets)
	r.roundUnits = make([]int32, 0, nNets)
}

// scanShard refreshes every stale cached best in one shard and collects
// the shard's top-k candidates. It runs concurrently with other shards'
// scans: it writes only per-net state of its own nets (pairs are
// co-located), reads the flushed density and timing state, and defers
// dirty-bit clears to the per-shard logs.
func (r *router) scanShard(s *shardState, areaOrder bool) {
	s.nTop = 0
	stale := s.staleLog[:0]
	reval := s.revalLog[:0]
	lastUnit := int32(-1)
	for _, n32 := range s.nets {
		n := int(n32)
		if r.dirtyBest[n>>6]&(1<<(uint(n)&63)) != 0 {
			if r.bestValid(n, areaOrder) {
				reval = append(reval, n32)
			} else {
				stale = append(stale, n32)
				l := int32(n)
				if m := r.pairOf[n]; m != circuit.NoNet && m < n {
					l = int32(m)
				}
				if l != lastUnit {
					// Pair mates are adjacent in the ascending list, so
					// equal leaders arrive consecutively; scoring the
					// leader validates the mate, which then lands in
					// revalLog instead of re-scoring.
					lastUnit = l
					r.scoreUnit(int(l), areaOrder, s.sc)
				}
			}
		}
		b := &r.best[n]
		if b.edge < 0 {
			continue
		}
		c := candidate{net: n32, edge: b.edge}
		k := s.nTop
		for k > 0 && r.keyLess(&b.key, &s.topK[k-1].key, c, s.topK[k-1].c, areaOrder) {
			k--
		}
		if k < roundTopK {
			end := s.nTop
			if end == roundTopK {
				end--
			}
			for i := end; i > k; i-- {
				s.topK[i] = s.topK[i-1]
			}
			s.topK[k] = rankedCand{key: b.key, c: c}
			if s.nTop < roundTopK {
				s.nTop++
			}
		}
	}
	s.staleLog = stale
	s.revalLog = reval
}

// shardScanBatch is the reusable workpool task for the parallel
// round-start scan: each Run claims shard indices from the shared
// counter until the batch drains. Shards carry their own scratch, so no
// per-worker slot claiming is needed.
type shardScanBatch struct {
	r         *router
	areaOrder bool
	next      atomic.Int64
	wg        sync.WaitGroup
}

func (b *shardScanBatch) Run() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(b.r.shardSt) {
			b.wg.Done()
			return
		}
		b.r.scanShard(b.r.shardSt[i], b.areaOrder)
	}
}

// scanParallel fans the shard scans out on the shared worker pool, like
// scoreParallel: a reusable batch object, no goroutine or closure
// allocated per round.
func (r *router) scanParallel(areaOrder bool, w int) {
	if w > len(r.shardSt) {
		w = len(r.shardSt)
	}
	b := &r.scanB
	b.r, b.areaOrder = r, areaOrder
	b.next.Store(0)
	b.wg.Add(w)
	workpool.Submit(b, w)
	b.wg.Wait()
}

// selectRound starts a new commit round: flush + drain density changes,
// scan every shard (in parallel when configured), apply the deferred
// dirty-bit clears in ascending shard order, and reduce the per-shard
// top-k lists into the round's speculative commit list. It returns false
// when no net has a deletable edge left — the phase is complete.
//
//bgr:hot
func (r *router) selectRound(areaOrder bool) bool {
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
	r.dens.Flush()
	r.drainDensityChanges(areaOrder)
	shards := r.shardSt
	if w := r.workers(); w > 1 && len(shards) > 1 {
		r.scanParallel(areaOrder, w)
	} else {
		for _, s := range shards {
			r.scanShard(s, areaOrder)
		}
	}
	// The deferred per-shard clear logs, merged in canonical (ascending
	// shard, ascending net) order. Scoring stamped each stale net's
	// cache, so both log kinds prove bestValid and their bits come down.
	scored := 0
	for _, s := range shards {
		scored += len(s.staleLog)
		for _, n := range s.staleLog {
			r.clearBestDirty(int(n))
		}
		for _, n := range s.revalLog {
			r.clearBestDirty(int(n))
		}
	}
	r.mergeRound(areaOrder)
	r.roundPos = 0
	r.clearRevised()
	r.selStat.calls++
	r.selStat.scored += scored
	r.selStat.reused += r.nNets - scored
	r.selStat.dur += time.Since(start) //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
	return len(r.roundList) > 0
}

// mergeRound k-way-merges the per-shard top-k lists into the round's
// commit list under the strict total order — the result equals the
// global ranking's prefix for any partition — and truncates at the
// first entry that interacts with an earlier kept one, so the kept
// entries are mutually non-interacting and the list stays a contiguous
// rank prefix (every net outside it ranked worse than the last kept
// entry at round start; the commit loop's exactness argument needs
// that).
func (r *router) mergeRound(areaOrder bool) {
	list := r.roundList[:0]
	kept := r.roundNets[:0]
	shards := r.shardSt
	idx := r.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	gen := r.nextChanGen()
	for len(list) < roundTopK {
		bi := -1
		var bk *rankedCand
		for si, s := range shards {
			ci := int(idx[si])
			if ci >= s.nTop {
				continue
			}
			e := &s.topK[ci]
			if bi == -1 || r.keyLess(&e.key, &bk.key, e.c, bk.c, areaOrder) {
				bi, bk = si, e
			}
		}
		if bi == -1 {
			break
		}
		idx[bi]++
		if len(list) > 0 && r.roundInteracts(bk.c, kept, gen) {
			break
		}
		list = append(list, *bk)
		kept = r.markRoundFootprint(bk.c, kept, gen)
	}
	r.roundList = list
	r.roundNets = kept
}

// roundInteracts reports whether candidate c's deletion could read or
// write state a previously kept entry's deletion touches: the same
// differential unit, a shared density channel (chanMark stamps from
// markRoundFootprint), or an overlapping Gd(P) constraint cone
// (dgraph.ConesOverlap). It is deliberately conservative — a false
// positive only shortens the speculative list; exactness comes from the
// per-commit verification in roundNext.
func (r *router) roundInteracts(c candidate, kept []int32, gen int32) bool {
	n := int(c.net)
	for _, a := range r.affectedNets(n) {
		for _, ch := range r.netChans[a] {
			if r.chanMark[ch] == gen {
				return true
			}
		}
		for _, k := range kept {
			if int(k) == a || r.dg.ConesOverlap(a, int(k)) {
				return true
			}
		}
	}
	return false
}

// markRoundFootprint stamps candidate c's channel footprint into the
// shared chanMark generation and appends its nets (both pair halves) to
// the kept-net list, extending the region the rest of the merge must
// stay disjoint from.
func (r *router) markRoundFootprint(c candidate, kept []int32, gen int32) []int32 {
	for _, a := range r.affectedNets(int(c.net)) {
		for _, ch := range r.netChans[a] {
			r.chanMark[ch] = gen
		}
		kept = append(kept, int32(a))
	}
	return kept
}

// markRevised adds net n to the round's revised set: its cached best has
// been re-scored since the round's list was built, so the list entry (if
// any) is superseded and the net competes through the revised-set argmin
// instead.
func (r *router) markRevised(n int) {
	w, m := n>>6, uint64(1)<<(uint(n)&63)
	if r.revBits[w]&m == 0 {
		r.revBits[w] |= m
		r.revList = append(r.revList, int32(n))
	}
}

// clearRevised empties the revised set at round start.
func (r *router) clearRevised() {
	for w := range r.revBits {
		r.revBits[w] = 0
	}
	r.revList = r.revList[:0]
}

// roundNext returns the next edge to commit, or ok == false when the
// round is over and a fresh scan is needed. The winner is the §3.4/§3.5
// argmin over all nets, computed as min(head of the speculative list,
// best of the revised set): list entries whose net was revised are
// skipped (their revised best competes instead), every unrevised net
// outside the list ranked worse than the current head at round start and
// is provably unchanged (its dirty bit would have sent it through
// roundRefresh), and when a revised candidate outranks the head it
// commits alone — the single-commit fallback for the interactions the
// reducer could not rule out.
//
//bgr:hot
func (r *router) roundNext(areaOrder bool) (candidate, bool) {
	for r.roundPos < len(r.roundList) {
		e := &r.roundList[r.roundPos]
		if r.revBits[int(e.c.net)>>6]&(1<<(uint(e.c.net)&63)) == 0 {
			break
		}
		r.roundPos++
	}
	if r.roundPos >= len(r.roundList) {
		// List exhausted: nets outside it can only be ranked against the
		// revised set by a fresh full scan.
		return candidate{}, false
	}
	rb := candidate{net: -1}
	var rbKey *candKey
	for _, n32 := range r.revList {
		b := &r.best[n32]
		if b.edge < 0 {
			continue
		}
		c := candidate{net: n32, edge: b.edge}
		if rb.net == -1 || r.keyLess(&b.key, rbKey, c, rb, areaOrder) {
			rb, rbKey = c, &b.key
		}
	}
	e := &r.roundList[r.roundPos]
	if rb.net == -1 || r.keyLess(&e.key, rbKey, e.c, rb, areaOrder) {
		r.roundPos++
		return e.c, true
	}
	return rb, true
}

// roundRefresh re-establishes the selection invariant after a commit:
// flush + drain the density deltas, walk the dirty bits exactly like
// selectEdge's full scan (revalidate or re-score, fanning re-scores out
// across Workers), and fold every re-scored net into the revised set.
//
//bgr:hot
func (r *router) roundRefresh(areaOrder bool) {
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
	r.dens.Flush()
	r.drainDensityChanges(areaOrder)
	stale := r.roundStale[:0]
	units := r.roundUnits[:0]
	nNets := r.nNets
	for w, word := range r.dirtyBest {
		for word != 0 {
			n := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if n >= nNets {
				break
			}
			if r.bestValid(n, areaOrder) {
				r.clearBestDirty(n)
				continue
			}
			stale = append(stale, int32(n))
			l := n
			if m := r.pairOf[n]; m != circuit.NoNet && m < n {
				l = m
			}
			if len(units) == 0 || units[len(units)-1] != int32(l) {
				units = append(units, int32(l))
			}
		}
	}
	r.roundStale = stale
	r.roundUnits = units
	if w := r.workers(); w > 1 && len(units) > 1 {
		r.scoreParallel(units, areaOrder, w)
	} else {
		for _, l := range units {
			r.scoreUnit(int(l), areaOrder, r.sc)
		}
	}
	for _, n := range stale {
		r.clearBestDirty(int(n))
		r.markRevised(int(n))
	}
	r.selStat.calls++
	r.selStat.scored += len(stale)
	r.selStat.dur += time.Since(start) //bgr:allow clockuse -- profiling only: feeds selStats latency counters, never steers selection
}
