package core

import (
	"fmt"

	"repro/internal/feed"
	"repro/internal/rgraph"
)

// objective summarizes the global state the improvement phases optimize.
type objective struct {
	violations int
	penalty    float64
	tracks     int
	wirelen    float64
}

func (r *router) objective() objective {
	o := objective{
		penalty: r.penaltyTotal(),
		tracks:  r.dens.TotalTracks(),
	}
	for p := range r.tm.Cons {
		if r.tm.Cons[p].Margin < 0 {
			o.violations++
		}
	}
	for _, l := range r.wl {
		o.wirelen += l
	}
	return o
}

// acceptDelay is the acceptance rule of the violation-recovery and
// delay-improvement phases: fewer violations, or the same violations with
// a lower total penalty.
func (r *router) acceptDelay(before, after objective) bool {
	if after.violations != before.violations {
		return after.violations < before.violations
	}
	return after.penalty < before.penalty-fEps
}

// acceptArea is the acceptance rule of the area-improvement phase: fewer
// channel tracks (or the same with less wire) without making timing worse.
func (r *router) acceptArea(before, after objective) bool {
	if r.cfg.UseConstraints {
		if after.violations > before.violations {
			return false
		}
		if after.penalty > before.penalty+fEps {
			return false
		}
	}
	if after.tracks != before.tracks {
		return after.tracks < before.tracks
	}
	return after.wirelen < before.wirelen-fEps
}

// rerouteNet rips up one net (and its differential mate), rebuilds its
// routing graph, reroutes it with the current global criteria, and keeps
// the result only if accept approves the before/after objectives (§3.5).
// If the plain reroute is rejected, it retries once with the net's
// feedthroughs re-assigned to the free slots nearest its terminal center
// (unless NoFeedReroute).
func (r *router) rerouteNet(n int, areaOrder bool, accept func(before, after objective) bool) (bool, error) {
	nets := r.affectedNets(n)
	improved, err := r.tryReroute(nets, nil, areaOrder, accept)
	if err != nil || improved {
		return improved, err
	}
	if r.cfg.NoFeedReroute {
		return false, nil
	}
	alt := r.reallocFeeds(nets)
	if alt == nil {
		return false, nil
	}
	return r.tryReroute(nets, alt, areaOrder, accept)
}

// resizeCaches adjusts net n's edge-aligned criteria caches to the net's
// current graph after a rebuild, preserving capacity. Stale entries are
// harmless: dcCache entries are guarded by the timing epoch and dpCache
// entries by the geometry epoch, both of which only ever advance (and are
// bumped by the rebuild), so no stale stamp can read as current.
func (r *router) resizeCaches(n int) {
	ne := len(r.graphs[n].Edges)
	if c := r.dcCache[n]; c != nil {
		if cap(c) < ne {
			r.dcCache[n] = make([]delayCrit, ne)
		} else {
			r.dcCache[n] = c[:ne]
		}
	}
	if c := r.dpCache[n]; c != nil {
		if cap(c) < ne {
			r.dpCache[n] = make([]dpEntry, ne)
		} else {
			r.dpCache[n] = c[:ne]
		}
	}
}

// tryReroute performs one rip-up/rebuild/reroute attempt, optionally with
// alternative feedthroughs (altFeeds[i] belongs to nets[i]), reverting
// everything if accept rejects it. The saved state is held in router-owned
// slices aligned with nets so every save/restore sweep follows the
// caller's net order exactly; retired graphs go to the free list so the
// next rebuild recycles their storage.
func (r *router) tryReroute(nets []int, altFeeds [][]rgraph.FeedPos, areaOrder bool, accept func(before, after objective) bool) (bool, error) {
	before := r.objective()

	oldGraphs := r.savedGraphs[:0]
	oldFeeds := r.savedFeeds[:0]
	for _, nn := range nets {
		oldGraphs = append(oldGraphs, r.graphs[nn])
		oldFeeds = append(oldFeeds, r.feeds[nn])
		r.densRemoveGraph(nn, r.graphs[nn])
	}
	r.savedGraphs, r.savedFeeds = oldGraphs, oldFeeds
	if altFeeds != nil {
		for _, nn := range nets {
			r.ownSlots(nn, r.feeds[nn], false)
		}
		for i, nn := range nets {
			r.feeds[nn] = altFeeds[i]
			r.ownSlots(nn, r.feeds[nn], true)
		}
	}
	restoreFeeds := func() {
		if altFeeds == nil {
			return
		}
		for _, nn := range nets {
			r.ownSlots(nn, r.feeds[nn], false)
		}
		for i, nn := range nets {
			r.feeds[nn] = oldFeeds[i]
			r.ownSlots(nn, r.feeds[nn], true)
		}
	}
	restore := func() error {
		for i, nn := range nets {
			r.densRemoveGraph(nn, r.graphs[nn])
			r.putGraph(r.graphs[nn])
			r.graphs[nn] = oldGraphs[i]
			r.densAddGraph(nn, r.graphs[nn])
			r.touchNet(nn)
			r.touchGeo(nn)
			r.resizeCaches(nn)
			r.recomputeNetChans(nn)
		}
		restoreFeeds()
		return r.refreshTrees(nets)
	}

	for _, nn := range nets {
		g, err := rgraph.BuildInto(r.takeGraph(), r.ckt, r.geo, nn, r.feeds[nn])
		if err != nil {
			// Put the old graphs and feeds back before failing. Nets rebuilt
			// before the failure already carry their new graph in the
			// density state: remove it first, or the old graph's re-add
			// would double count.
			for j, m := range nets {
				if r.graphs[m] != oldGraphs[j] {
					r.densRemoveGraph(m, r.graphs[m])
					r.putGraph(r.graphs[m])
					r.graphs[m] = oldGraphs[j]
					r.touchNet(m)
					r.touchGeo(m)
					r.resizeCaches(m)
					r.recomputeNetChans(m)
				}
				r.densAddGraph(m, r.graphs[m])
			}
			restoreFeeds()
			return false, fmt.Errorf("core: rebuilding net %s: %w", r.ckt.Nets[nn].Name, err)
		}
		r.graphs[nn] = g
		r.densAddGraph(nn, g)
		r.touchNet(nn)
		r.touchGeo(nn)
		r.resizeCaches(nn)
		r.recomputeNetChans(nn)
	}
	if len(nets) == 2 {
		if err := sameShape(r.graphs[nets[0]], r.graphs[nets[1]]); err != nil {
			return false, err
		}
	}
	if err := r.refreshTrees(nets); err != nil {
		return false, err
	}
	for {
		if err := r.check(); err != nil {
			return false, err
		}
		best, ok := r.selectEdge(nets, areaOrder)
		if !ok {
			break
		}
		if err := r.deleteEdge(int(best.net), int(best.edge)); err != nil {
			return false, err
		}
	}
	after := r.objective()
	if accept(before, after) {
		// The displaced graphs are no longer referenced anywhere (trees
		// and density already follow the new graphs); recycle them.
		for _, g := range oldGraphs {
			r.putGraph(g)
		}
		return true, nil
	}
	if err := restore(); err != nil {
		return false, err
	}
	return false, nil
}

// ownSlots claims or releases the feedthrough columns of one net.
func (r *router) ownSlots(n int, feeds []rgraph.FeedPos, claim bool) {
	w := r.ckt.Nets[n].Pitch
	for _, f := range feeds {
		for j := 0; j < w; j++ {
			owner := int32(-1)
			if claim {
				owner = int32(n)
			}
			r.slotOwner[f.Row*r.slotCols+f.Col+j] = owner
		}
	}
}

// slotOwnerAt returns the net occupying a feedthrough column, or -1.
func (r *router) slotOwnerAt(row, col int) int {
	return int(r.slotOwner[row*r.slotCols+col])
}

// reallocFeeds proposes moving the nets' feedthroughs to the free slot
// groups nearest the net's terminal center (column-aligned across rows,
// as in the initial assignment). The result is aligned with nets
// (out[i] replaces nets[i]'s feeds); it is nil when nothing would move.
func (r *router) reallocFeeds(nets []int) [][]rgraph.FeedPos {
	primary := nets[0]
	cur := r.feeds[primary]
	if len(cur) == 0 {
		return nil
	}
	width := r.ckt.Nets[primary].Pitch
	mateShift := 0
	leftOff := 0 // offset from the primary's column to the group's leftmost
	if len(nets) == 2 {
		// The pair occupies adjacent columns; preserve the current offset.
		width = 2
		mateShift = 1
		if len(r.feeds[nets[1]]) > 0 {
			mateShift = r.feeds[nets[1]][0].Col - cur[0].Col
		}
		if mateShift < 0 {
			leftOff = mateShift
		}
	}
	occupied := func(row, col int) bool {
		owner := r.slotOwnerAt(row, col)
		if owner < 0 {
			return false
		}
		for _, nn := range nets {
			if owner == nn {
				return false // own slots count as free
			}
		}
		return true
	}
	_, _, center := feed.ChannelSpan(r.ckt, primary)
	target := center
	alt := make([]rgraph.FeedPos, 0, len(cur))
	moved := false
	for _, f := range cur {
		curLeft := f.Col + leftOff
		col := feed.FindGroup(r.geo, occupied, f.Row, width, target, width, false)
		if col < 0 {
			col = curLeft
		}
		if col != curLeft {
			moved = true
		}
		alt = append(alt, rgraph.FeedPos{Row: f.Row, Col: col - leftOff})
		target = col
	}
	if !moved {
		return nil
	}
	out := [][]rgraph.FeedPos{alt}
	if len(nets) == 2 {
		mate := make([]rgraph.FeedPos, len(alt))
		for i, f := range alt {
			mate[i] = rgraph.FeedPos{Row: f.Row, Col: f.Col + mateShift}
		}
		out = append(out, mate)
	}
	return out
}
