package core

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/dgraph"
	"repro/internal/lowerbound"
)

// netOrder resolves the configured feedthrough-assignment net ordering.
// nil means index order (feed.Assign's default).
func netOrder(ckt *circuit.Circuit, cfg Config) ([]int, error) {
	strategy := cfg.Order
	if cfg.ArbitraryNetOrder {
		strategy = OrderIndex
	}
	switch strategy {
	case OrderSlack:
		if !cfg.UseConstraints || len(ckt.Cons) == 0 {
			return nil, nil
		}
		dg0, err := dgraph.New(ckt)
		if err != nil {
			return nil, err
		}
		return slackOrder(dg0), nil
	case OrderIndex:
		return nil, nil
	case OrderHPWL:
		hp := lowerbound.NetHPWL(ckt)
		return orderByDesc(len(ckt.Nets), func(n int) float64 { return hp[n] }), nil
	case OrderFanout:
		return orderByDesc(len(ckt.Nets), func(n int) float64 {
			return float64(len(ckt.Fanouts(n)))
		}), nil
	}
	return nil, nil
}

func orderByDesc(n int, key func(int) float64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) > key(order[b]) })
	return order
}
