package core

import (
	"testing"

	"repro/internal/circuit"
)

// conflictCircuit builds the canonical §3.4 tension: net X's driver has
// two taps, one (col 3) reaching the sink (col 10) over a congested span,
// the other (col 20) over a detour. A 3-pitch net Y congests columns
// 2..10, so the density conditions want to delete X's short trunk, while
// the delay criteria want to keep it. The constraint limit decides which
// criterion may speak.
func conflictCircuit(limit float64) *circuit.Circuit {
	c := &circuit.Circuit{Name: "conflict", Tech: circuit.DefaultTech, Rows: 2, Cols: 24}
	c.Lib = []circuit.CellType{
		{Name: "SRC", Width: 18, Pins: []circuit.PinDef{
			{Name: "Z", Dir: circuit.Out, Side: circuit.Top, Offsets: []int{0, 17}, Tf: 0.2, Td: 0.2},
		}},
		{Name: "SNK", Width: 2, Pins: []circuit.PinDef{
			{Name: "A", Dir: circuit.In, Side: circuit.Bottom, Offsets: []int{1}, Fin: 20},
		}},
		{Name: "YDRV", Width: 3, Pins: []circuit.PinDef{
			{Name: "Z", Dir: circuit.Out, Side: circuit.Bottom, Offsets: []int{2}, Tf: 0.2, Td: 0.2},
		}},
		{Name: "YSNK", Width: 2, Pins: []circuit.PinDef{
			{Name: "A", Dir: circuit.In, Side: circuit.Bottom, Offsets: []int{0}, Fin: 20},
		}},
	}
	c.Cells = []circuit.Cell{
		{Name: "src", Type: 0, Row: 0, Col: 3}, // taps in channel 1 at cols 3 and 20
		{Name: "snk", Type: 1, Row: 1, Col: 9}, // pin in channel 1 at col 10
		{Name: "yd", Type: 2, Row: 1, Col: 0},  // pin in channel 1 at col 2
		{Name: "ys", Type: 3, Row: 1, Col: 11}, // pin in channel 1 at col 11
	}
	c.Nets = []circuit.Net{
		{Name: "x", Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{{Cell: 0, Pin: 0}, {Cell: 1, Pin: 0}}},
		{Name: "y", Pitch: 3, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{{Cell: 2, Pin: 0}, {Cell: 3, Pin: 0}}},
	}
	c.Cons = []circuit.Constraint{{
		Name: "P0", Limit: limit,
		From: []circuit.PinRef{{Cell: 0, Pin: 0}},
		To:   []circuit.PinRef{{Cell: 1, Pin: 0}},
	}}
	return c
}

// xDelay computes net x's arc delay for a given wire length.
func xDelay(t *testing.T, ckt *circuit.Circuit, lenUm float64) float64 {
	t.Helper()
	// Fin(snk.A)·Tf + CL·Td with the library numbers above.
	return 20*0.2 + lenUm*ckt.Tech.CapPerUm*0.2
}

const (
	shortLen = 70 + 2*8 // trunk 3->10 plus two branch stubs, µm
	longLen  = 100 + 2*8
)

func TestDelayCriteriaProtectCriticalRoute(t *testing.T) {
	// Tight limit: only the short route meets it. The §3.4 delay criteria
	// (Cd) must overrule the density conditions, which prefer deleting
	// the short trunk through the congested span.
	ckt := conflictCircuit(0)
	ckt.Cons[0].Limit = xDelay(t, ckt, shortLen) + 1 // just above the short route

	con := route(t, ckt, Config{UseConstraints: true})
	if got := con.WirelenUm[0]; got > shortLen+1 {
		t.Fatalf("constrained route took the detour: %v µm, want %v", got, shortLen)
	}
	if con.Violations() != 0 {
		t.Fatalf("constrained run violated its constraint, margin %v", con.Margin(0))
	}

	unc := route(t, ckt, Config{UseConstraints: false})
	if got := unc.WirelenUm[0]; got < longLen-1 {
		t.Fatalf("unconstrained route avoided the congestion-driven detour: %v µm, want %v", got, longLen)
	}
	// Both routes touch the congested column 10 where the sink sits, so
	// C_M is 4 either way, but the detour shrinks the congested plateau:
	// the unconstrained NC_M must be smaller.
	ncCon, ncUnc := con.Dens.Channel(1).NCM, unc.Dens.Channel(1).NCM
	if ncUnc >= ncCon {
		t.Fatalf("unconstrained NC_M %d not below constrained %d (detour did not relieve the plateau)", ncUnc, ncCon)
	}
}

func TestAreaFirstOrderingTradesDelayForDensity(t *testing.T) {
	// Loose limit: both routes meet it (Cd = 0 either way), so only the
	// Gl criterion distinguishes them. The paper ordering consults Gl
	// before density and keeps the short route; the A1 area-first
	// ordering consults density first and takes the detour.
	ckt := conflictCircuit(0)
	ckt.Cons[0].Limit = xDelay(t, ckt, longLen) + 100 // both routes fit

	paper := route(t, ckt, Config{UseConstraints: true})
	if got := paper.WirelenUm[0]; got > shortLen+1 {
		t.Fatalf("paper ordering took the detour: %v µm", got)
	}
	areaFirst := route(t, ckt, Config{UseConstraints: true, AreaFirst: true})
	if got := areaFirst.WirelenUm[0]; got < longLen-1 {
		t.Fatalf("area-first ordering kept the short route: %v µm, want the detour", got)
	}
	if areaFirst.Violations() != 0 {
		t.Fatal("area-first run must still meet the loose constraint")
	}
	// The area-first run shrinks the congested plateau (both routes touch
	// the sink column, so C_M itself ties at 4).
	if ncA, ncP := areaFirst.Dens.Channel(1).NCM, paper.Dens.Channel(1).NCM; ncA >= ncP {
		t.Fatalf("area-first NC_M %d not below paper NC_M %d", ncA, ncP)
	}
}

func TestConflictCircuitValidates(t *testing.T) {
	if err := conflictCircuit(500).Validate(); err != nil {
		t.Fatal(err)
	}
}
