package core

import (
	"sync"
	"testing"

	"repro/internal/circuit"
)

// TestWorkersConfigIdenticalResult checks, on the in-package sample
// circuits, that every Workers setting routes identically (the dataset
// sweep lives in the repo-root determinism test).
func TestWorkersConfigIdenticalResult(t *testing.T) {
	for _, mk := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiff} {
		ckt := mk()
		base, err := Route(ckt, Config{UseConstraints: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 7} {
			res, err := Route(mk(), Config{UseConstraints: true, Workers: w})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if res.Delay != base.Delay || res.TotalWirelenUm != base.TotalWirelenUm {
				t.Fatalf("workers=%d diverged: delay %v vs %v, wirelen %v vs %v",
					w, res.Delay, base.Delay, res.TotalWirelenUm, base.TotalWirelenUm)
			}
			for n := range base.Graphs {
				a, b := base.Graphs[n].AliveEdges(), res.Graphs[n].AliveEdges()
				if len(a) != len(b) {
					t.Fatalf("workers=%d net %d: %d alive edges vs %d", w, n, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("workers=%d net %d: edge sets differ", w, n)
					}
				}
			}
		}
	}
}

// TestConcurrentScoringStress exercises the parallel scorer under load:
// several full routings run concurrently, each with an oversized worker
// pool, so the race detector sees the per-net sharding from many angles.
func TestConcurrentScoringStress(t *testing.T) {
	const runs = 6
	var wg sync.WaitGroup
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ckt := circuit.SampleSmall()
			if i%2 == 1 {
				ckt = circuit.SampleDiff()
			}
			if _, err := Route(ckt, Config{UseConstraints: true, Workers: 8}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
