package core_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
)

// ExampleRoute routes the sample circuit under its timing constraint and
// reports the outcome.
func ExampleRoute() {
	ckt := circuit.SampleSmall()
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("nets routed: %d\n", len(res.Graphs))
	fmt.Printf("constraint met: %v\n", res.Margin(0) >= 0)
	fmt.Printf("feed columns inserted: %d\n", res.AddedPitches)
	// Output:
	// nets routed: 7
	// constraint met: true
	// feed columns inserted: 2
}
