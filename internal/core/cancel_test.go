package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/circuit"
)

// TestRouteCtxCancelMidPhase cancels the run from inside the first
// progress event of the initial phase and asserts RouteCtx returns
// promptly with an error wrapping context.Canceled.
func TestRouteCtxCancelMidPhase(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{UseConstraints: true}
	fired := false
	cfg.Progress = func(p Progress) {
		if !fired && p.Phase == "initial" {
			fired = true
			cancel()
		}
	}
	start := time.Now()
	res, err := RouteCtx(ctx, circuit.SampleSmall(), cfg)
	if res != nil {
		t.Fatalf("RouteCtx returned a result after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteCtx error = %v, want wrapped context.Canceled", err)
	}
	if !fired {
		t.Fatalf("progress callback never fired for the initial phase")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancel took %v, want prompt return", el)
	}
}

// TestRouteCtxPreCancelled rejects an already-dead context before any work.
func TestRouteCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RouteCtx(ctx, circuit.SampleSmall(), Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteCtx error = %v, want wrapped context.Canceled", err)
	}
}

// TestRouteCtxDeadline maps an expired deadline to context.DeadlineExceeded.
func TestRouteCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RouteCtx(ctx, circuit.SampleSmall(), Config{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RouteCtx error = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestRouteProgressEvents checks the event stream shape: every phase
// opens with a start event and closes with Done, counters are
// monotonic within a phase, and Route's result matches the final events.
func TestRouteProgressEvents(t *testing.T) {
	var events []Progress
	cfg := Config{UseConstraints: true, Progress: func(p Progress) { events = append(events, p) }}
	res, err := Route(circuit.SampleSmall(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	done := map[string]Progress{}
	last := map[string]Progress{}
	for _, e := range events {
		if prev, ok := last[e.Phase]; ok && !e.Done {
			if e.Deletions < prev.Deletions || e.Reroutes < prev.Reroutes {
				t.Fatalf("counters went backwards in phase %s: %+v after %+v", e.Phase, e, prev)
			}
		}
		last[e.Phase] = e
		if e.Done {
			done[e.Phase] = e
		}
	}
	for _, ps := range res.Phases {
		d, ok := done[ps.Name]
		if !ok {
			t.Fatalf("phase %s has no Done event", ps.Name)
		}
		if d.Deletions != ps.Deletions || d.Reroutes != ps.Reroutes || d.Accepted != ps.Accepted {
			t.Fatalf("phase %s Done event %+v disagrees with PhaseStat %+v", ps.Name, d, ps)
		}
		if ps.Duration <= 0 {
			t.Fatalf("phase %s has non-positive duration", ps.Name)
		}
	}
	if res.Duration <= 0 {
		t.Fatalf("Result.Duration = %v, want > 0", res.Duration)
	}
}
