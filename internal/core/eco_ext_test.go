package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/verify"
)

func routeDataset(t *testing.T, name string, cfg core.Config) *core.Result {
	t.Helper()
	p, err := gen.Dataset(name)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func snapshotAlive(res *core.Result) [][]bool {
	out := make([][]bool, len(res.Graphs))
	for n, g := range res.Graphs {
		out[n] = make([]bool, len(g.Edges))
		for e := range g.Edges {
			out[n][e] = g.Edges[e].Alive
		}
	}
	return out
}

func TestReOptimizeLeavesPrevUntouched(t *testing.T) {
	prev := routeDataset(t, "C1P1", core.Config{UseConstraints: true})
	before := snapshotAlive(prev)
	prevDelay := prev.Delay
	next, err := core.ReOptimize(prev, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	after := snapshotAlive(prev)
	for n := range before {
		for e := range before[n] {
			if before[n][e] != after[n][e] {
				t.Fatalf("ReOptimize mutated prev (net %d edge %d)", n, e)
			}
		}
	}
	if prev.Delay != prevDelay {
		t.Fatal("prev delay changed")
	}
	if v := verify.Routing(next); !v.OK() {
		t.Fatalf("re-optimized routing invalid: %v", v.Problems[0])
	}
	// Starting from an already-optimized routing, re-optimization must
	// not make things worse.
	if next.Delay > prev.Delay+1e-6 {
		t.Fatalf("re-optimization worsened delay: %v -> %v", prev.Delay, next.Delay)
	}
}

// TestReOptimizeRecoversBadOrder routes with a deliberately bad net
// ordering, then re-optimizes: the ECO pass (rip-up with feed
// re-assignment) must claw back a good share of the lost delay.
func TestReOptimizeRecoversBadOrder(t *testing.T) {
	bad := routeDataset(t, "C1P2", core.Config{UseConstraints: true, ArbitraryNetOrder: true})
	good := routeDataset(t, "C1P2", core.Config{UseConstraints: true})
	eco, err := core.ReOptimize(bad, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(eco); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
	if eco.Delay > bad.Delay+1e-6 {
		t.Fatalf("ECO worsened delay: %v -> %v", bad.Delay, eco.Delay)
	}
	t.Logf("delays: bad order %.1f, after ECO %.1f, slack-ordered %.1f ps",
		bad.Delay, eco.Delay, good.Delay)
	// The ECO pass must actually do something on this fixture.
	if eco.Delay >= bad.Delay-1e-6 {
		t.Error("ECO pass recovered nothing on the bad-order routing")
	}
	accepted := 0
	for _, ps := range eco.Phases {
		accepted += ps.Accepted
	}
	if accepted == 0 {
		t.Error("no accepted reroutes recorded")
	}
}

// TestReOptimizeAfterTightening edits a constraint limit and re-optimizes:
// the ECO phases see the new limit.
func TestReOptimizeAfterTightening(t *testing.T) {
	prev := routeDataset(t, "C1P1", core.Config{UseConstraints: true})
	// Tighten every met constraint to sit just above its current delay:
	// margins shrink but stay non-negative; the ECO run must not create
	// violations.
	for p := range prev.Ckt.Cons {
		worst := prev.Timing.Cons[p].Worst
		if prev.Timing.Cons[p].Margin > 0 {
			prev.Ckt.Cons[p].Limit = worst * 1.01
		}
	}
	eco, err := core.ReOptimize(prev, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Routing(eco); !v.OK() {
		t.Fatalf("%v", v.Problems[0])
	}
	// Violations under the *new* limits must not exceed the count the old
	// routing would have under those same limits.
	oldViol := 0
	for p := range eco.Timing.Cons {
		if prev.Timing.Cons[p].Worst > prev.Ckt.Cons[p].Limit {
			oldViol++
		}
	}
	if eco.Violations() > oldViol {
		t.Fatalf("ECO added violations: %d vs %d", eco.Violations(), oldViol)
	}
}

func TestCloneGraphIndependence(t *testing.T) {
	prev := routeDataset(t, "C1P1", core.Config{UseConstraints: true})
	g := prev.Graphs[0]
	c := g.Clone()
	// Mutating the clone must not touch the original.
	for e := range c.Edges {
		if c.Edges[e].Alive {
			c.Edges[e].Alive = false
			if !g.Edges[e].Alive {
				t.Fatal("clone shares edge storage")
			}
			break
		}
	}
}
