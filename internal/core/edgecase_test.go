package core

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rgraph"
)

// wideNetCircuit builds a circuit with a 3-pitch net that must cross a
// row: three adjacent feed slots are needed, and only insertion provides
// them.
func wideNetCircuit() *circuit.Circuit {
	c := &circuit.Circuit{Name: "wide3", Tech: circuit.DefaultTech, Rows: 2, Cols: 30}
	c.Lib = []circuit.CellType{
		{Name: "DRV", Width: 3, Pins: []circuit.PinDef{
			{Name: "Z", Dir: circuit.Out, Side: circuit.Top, Offsets: []int{1}, Tf: 0.1, Td: 0.1},
		}},
		{Name: "SNK", Width: 3, Pins: []circuit.PinDef{
			{Name: "A", Dir: circuit.In, Side: circuit.Top, Offsets: []int{1}, Fin: 40},
		}},
		{Name: "FEED", Width: 1, Feed: true},
	}
	c.Cells = []circuit.Cell{
		{Name: "d", Type: 0, Row: 0, Col: 4},   // Z in channel 1
		{Name: "s", Type: 1, Row: 1, Col: 12},  // A in channel 2
		{Name: "f0", Type: 2, Row: 1, Col: 2},  // one lonely slot in row 1
		{Name: "f1", Type: 2, Row: 0, Col: 20}, // and one in row 0
	}
	c.Nets = []circuit.Net{{
		Name: "w", Pitch: 3, DiffMate: circuit.NoNet,
		Pins: []circuit.PinRef{{Cell: 0, Pin: 0}, {Cell: 1, Pin: 0}},
	}}
	c.Cons = []circuit.Constraint{{
		Name: "P0", Limit: 1000,
		From: []circuit.PinRef{{Cell: 0, Pin: 0}},
		To:   []circuit.PinRef{{Cell: 1, Pin: 0}},
	}}
	return c
}

func TestWidePitchNetCrossesRow(t *testing.T) {
	ckt := wideNetCircuit()
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	res := route(t, ckt, Config{UseConstraints: true})
	if res.AddedPitches < 3 {
		t.Fatalf("AddedPitches = %d, want >= 3 (a 3-wide group)", res.AddedPitches)
	}
	feeds := res.Feeds[0]
	if len(feeds) != 1 {
		t.Fatalf("feeds = %v, want one crossing", feeds)
	}
	// The three columns must all be slots.
	for j := 0; j < 3; j++ {
		found := false
		for _, s := range res.Geo.FeedSlots(feeds[0].Row) {
			if s.Col == feeds[0].Col+j {
				found = true
			}
		}
		if !found {
			t.Fatalf("column %d of the wide group is not a slot", feeds[0].Col+j)
		}
	}
	// Density: the wide net weighs 3 wherever its trunks run.
	g := res.Graphs[0]
	for _, e := range g.AliveEdges() {
		ed := &g.Edges[e]
		if ed.Kind == rgraph.ETrunk && ed.X1 < ed.X2 {
			if got := res.Dens.ProfileM(ed.Ch)[ed.X1]; got < 3 {
				t.Fatalf("density %d under a 3-pitch trunk", got)
			}
		}
	}
}

func TestSingleRowChip(t *testing.T) {
	// One row, two channels, no feedthroughs possible or needed.
	c := &circuit.Circuit{Name: "onerow", Tech: circuit.DefaultTech, Rows: 1, Cols: 20, Lib: circuit.SampleLib()}
	c.Cells = []circuit.Cell{
		{Name: "b", Type: circuit.SampleBUF, Row: 0, Col: 2},
		{Name: "i", Type: circuit.SampleINV, Row: 0, Col: 10},
		{Name: "f", Type: circuit.SampleFEED, Row: 0, Col: 7},
	}
	c.Nets = []circuit.Net{
		{Name: "a", Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{{Cell: 0, Pin: 1}, {Cell: 1, Pin: 0}}}, // b.Z (ch1) -> i.A (ch0): crosses row 0
		{Name: "in", Pitch: 1, DiffMate: circuit.NoNet,
			Pins: []circuit.PinRef{{Cell: 0, Pin: 0}}},
	}
	c.Ext = []circuit.ExtPin{
		{Name: "I", Net: 1, Side: circuit.Bottom, Cols: []int{0}, Dir: circuit.In, Tf: 0.2, Td: 0.2},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res := route(t, c, Config{UseConstraints: true})
	for n, g := range res.Graphs {
		if !g.IsTree() {
			t.Fatalf("net %d not a tree", n)
		}
	}
}

func TestElmoreConvergesToLumpedAtZeroR(t *testing.T) {
	ckt := circuit.SampleSmall()
	lum := route(t, ckt, Config{UseConstraints: true})
	elm := route(t, ckt, Config{UseConstraints: true, DelayModel: Elmore, RPerUm: 0})
	// With zero wire resistance the Elmore wire term vanishes and the two
	// models agree exactly (same topology, same lumped terms).
	if math.Abs(lum.Delay-elm.Delay) > 1e-9 {
		t.Fatalf("r=0 Elmore delay %v != lumped %v", elm.Delay, lum.Delay)
	}
}

func TestCoincidentTerminals(t *testing.T) {
	// A net whose pad and pin share a column (zero horizontal extent).
	c := &circuit.Circuit{Name: "coincident", Tech: circuit.DefaultTech, Rows: 1, Cols: 10, Lib: circuit.SampleLib()}
	c.Cells = []circuit.Cell{{Name: "i", Type: circuit.SampleINV, Row: 0, Col: 4}}
	c.Nets = []circuit.Net{
		{Name: "n", Pitch: 1, DiffMate: circuit.NoNet, Pins: []circuit.PinRef{{Cell: 0, Pin: 0}}},
		{Name: "o", Pitch: 1, DiffMate: circuit.NoNet, Pins: []circuit.PinRef{{Cell: 0, Pin: 1}}},
	}
	c.Ext = []circuit.ExtPin{
		{Name: "I", Net: 0, Side: circuit.Bottom, Cols: []int{4}, Dir: circuit.In, Tf: 0.2, Td: 0.2},
		{Name: "O", Net: 1, Side: circuit.Top, Cols: []int{5}, Dir: circuit.Out, Fin: 20},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res := route(t, c, Config{UseConstraints: true})
	if res.WirelenUm[0] <= 0 {
		t.Fatal("coincident-column net has zero wire (branch stubs must count)")
	}
}
