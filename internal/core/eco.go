package core

import (
	"fmt"

	"repro/internal/dgraph"
	"repro/internal/rgraph"
)

// ReOptimize resumes the §3.5 rip-up-and-reroute phases on a finished
// routing — the ECO path: edit constraint limits (or just ask for another
// improvement round) and re-optimize without re-running feedthrough
// assignment or the initial concurrent routing. prev is left untouched;
// the returned Result owns cloned graphs.
//
// cfg.SkipImprovement is ignored (re-optimization *is* the improvement);
// the feedthrough assignment and chip widening are inherited from prev.
func ReOptimize(prev *Result, cfg Config) (*Result, error) {
	if err := prev.Ckt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	r := &router{cfg: cfg, ckt: prev.Ckt, geo: prev.Geo}
	nNets := len(r.ckt.Nets)
	if len(prev.Graphs) != nNets || len(prev.Feeds) != nNets {
		return nil, fmt.Errorf("core: previous result does not match the circuit")
	}
	var err error
	if r.dg, err = dgraph.New(r.ckt); err != nil {
		return nil, err
	}
	r.initNetState(nNets)
	r.feeds = make([][]rgraph.FeedPos, nNets)
	for n := 0; n < nNets; n++ {
		r.feeds[n] = append([]rgraph.FeedPos(nil), prev.Feeds[n]...)
		r.graphs[n] = prev.Graphs[n].Clone()
		r.pairOf[n] = r.ckt.Nets[n].DiffMate
		r.ownSlots(n, r.feeds[n], true)
	}
	for n, g := range r.graphs {
		r.densAddGraph(n, g)
	}
	r.buildIndexes()
	r.tm = r.dg.NewTiming()
	r.tm.Workers = cfg.Workers
	if err := r.refreshTrees(allNets(nNets)); err != nil {
		return nil, err
	}

	if cfg.UseConstraints {
		r.runPhase("eco-recover", func(ps *PhaseStat) error { return r.recoverViolations(ps) })
		r.runPhase("eco-delay", func(ps *PhaseStat) error { return r.improveDelay(ps) })
	}
	r.runPhase("eco-area", func(ps *PhaseStat) error { return r.improveArea(ps) })

	for n, g := range r.graphs {
		if !g.IsTree() {
			return nil, fmt.Errorf("core: net %s left in a non-tree state", r.ckt.Nets[n].Name)
		}
	}
	res := &Result{
		Ckt: r.ckt, Geo: r.geo, Feeds: r.feeds, Graphs: r.graphs,
		WirelenUm: r.wl, Timing: r.tm, Dens: r.dens,
		AddedPitches: prev.AddedPitches, Phases: r.phases,
	}
	for _, l := range r.wl {
		res.TotalWirelenUm += l
	}
	for p := range r.tm.Cons {
		if d := r.tm.Cons[p].Worst; d > res.Delay {
			res.Delay = d
		}
	}
	return res, nil
}
