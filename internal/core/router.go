package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/faultinject"
	"repro/internal/feed"
	"repro/internal/grid"
	"repro/internal/rgraph"
)

type router struct {
	ctx    context.Context
	cfg    Config
	ckt    *circuit.Circuit
	geo    *grid.Geometry
	feeds  [][]rgraph.FeedPos
	graphs []*rgraph.Graph
	dg     *dgraph.Graph
	tm     *dgraph.Timing
	trees  []*rgraph.Tree
	wl     []float64
	dens   *density.State
	pairOf []int // diff mate or -1
	// slotOwner records the net occupying each feedthrough column, as a
	// flat row-major array (-1 = free); feed re-allocation probes it once
	// per candidate slot, so it must be an O(1) array read.
	slotOwner []int32
	slotCols  int

	// Criteria caches (see criteria.go). timEpoch[n] advances whenever
	// anything net n's criteria read changes: its own graph, its
	// differential mate's, or the margin of a constraint touching either.
	// dcCache entries and the per-net best are stamped with it.
	timEpoch []int32
	dcCache  [][]delayCrit
	// geoEpoch[n] advances when net n's alive-edge set changes; dpCache
	// entries (pure geometry) are stamped with it, surviving the timing
	// invalidations that clear dcCache.
	geoEpoch []int32
	dpCache  [][]dpEntry
	// nbList[n] caches the net's alive non-bridge (candidate) edge list,
	// valid while nbEpoch[n] == geoEpoch[n].
	nbList  [][]int32
	nbEpoch []int32

	// Incremental selection engine (see criteria.go).
	best       []netBest // cached per-net ranked best candidate
	netsOfCons [][]int   // reverse of dg.ConsOfNet: nets touching each constraint
	netChans   [][]int   // distinct channels net n's edges read density from
	// dirtyBest is a superset filter over stale cached bests: bit n clear
	// guarantees bestValid(n); bit n set means "recheck". Bits are set by
	// touchNet/touchGeo, by recomputeNetChans, and by draining the density
	// state's changed channels through chanNetBits (bit n of
	// chanNetBits[ch] set iff ch ∈ netChans[n]). selectEdge clears bits as
	// it revalidates or rescores, so steady-state stale collection visits
	// only the dirty few instead of version-checking every net.
	dirtyBest   []uint64
	chanNetBits [][]uint64
	lastAreaOrd bool       // ordering of the previous selectEdge; a flip invalidates all
	sc          *scratch   // sequential scoring scratch
	scratches   []*scratch // per-worker scratches for parallel scoring
	//bgr:owned -- reusable selectEdge buffer
	staleBuf []int32
	//bgr:owned -- reusable selectEdge buffer
	unitBuf []int32
	scoreB  scoreBatch // reusable parallel-scoring batch (workpool task)
	selStat selStats
	timStat timStats

	// Sharded round selection (see shard.go). shardOf maps each net to its
	// channel-band shard; shardSt holds the per-shard scan state. The
	// round* fields are the current commit round: the merged speculative
	// list, the commit cursor, the kept-net footprint, and the revised-set
	// bitset + list roundRefresh feeds and roundNext consults. All buffers
	// are sized once in setupShards so the round loop never allocates.
	shardSt  []*shardState
	shardOf  []int32
	mergeIdx []int32        // per-shard merge cursors (mergeRound scratch)
	scanB    shardScanBatch // reusable parallel-scan batch (workpool task)
	//bgr:owned -- reusable mergeRound commit list
	roundList []rankedCand
	roundPos  int
	//bgr:owned -- reusable mergeRound kept-net footprint
	roundNets []int32
	revBits   []uint64
	//bgr:owned -- reusable revised-set list (markRevised/roundNext)
	revList []int32
	//bgr:owned -- reusable roundRefresh stale buffer
	roundStale []int32
	//bgr:owned -- reusable roundRefresh unit buffer
	roundUnits []int32

	// trunkCnt[ch*nNets+n] counts net n's alive trunk edges in channel ch
	// (flat row-major); the area phase uses it to visit only nets present
	// in the max channel.
	trunkCnt []int32
	nNets    int

	// Hot-path scratch buffers, each owned by exactly one (non-reentrant)
	// method and sized once; see docs/PERF.md for the ownership rules.
	//bgr:owned -- affectedNets result backing, lent until the next call
	rrNets   [2]int
	delNets  [2]int // deleteEdge: nets being edited
	delDirty [2]int // deleteEdge: nets whose tree changed
	//bgr:owned -- violatedCons / improveDelay order
	consBuf []int
	//bgr:owned -- applyNetDelay: Elmore wire delays
	elmBuf []float64
	//bgr:owned -- applyNetDelay: per-arc delays
	perBuf   []float64
	chanMark []int32 // recomputeNetChans channel dedup stamps
	chanGen  int32
	//bgr:owned -- congestedNets scored list
	congBuf []congScored
	//bgr:owned -- congestedNets result backing, lent until the next call
	congOut []int

	// Reroute scratch (see reroute.go): the save/restore state of the
	// in-flight attempt, and a free list of retired routing graphs whose
	// storage BuildInto recycles.
	savedGraphs []*rgraph.Graph
	savedFeeds  [][]rgraph.FeedPos
	graphPool   []*rgraph.Graph

	phases []PhaseStat
}

// congScored is one entry of congestedNets' working list.
type congScored struct {
	net   int
	cover int
}

// takeGraph pops a retired graph for BuildInto recycling (nil when empty).
func (r *router) takeGraph() *rgraph.Graph {
	if len(r.graphPool) == 0 {
		return nil
	}
	g := r.graphPool[len(r.graphPool)-1]
	r.graphPool = r.graphPool[:len(r.graphPool)-1]
	return g
}

// putGraph retires a graph no longer referenced by the router so a later
// rebuild can reuse its storage. Callers must guarantee nothing else holds
// the graph (rerouting only retires graphs it created itself).
func (r *router) putGraph(g *rgraph.Graph) {
	if g != nil {
		r.graphPool = append(r.graphPool, g)
	}
}

// selStats are cumulative selection counters; runPhase records per-phase
// deltas into PhaseStat.
type selStats struct {
	calls  int
	scored int
	reused int
	dur    time.Duration
}

// timStats are cumulative timing-flush counters; runPhase records
// per-phase deltas into PhaseStat.
type timStats struct {
	flushes int
	cons    int
	dur     time.Duration
}

// Route runs the full global routing algorithm on a validated circuit.
func Route(ckt *circuit.Circuit, cfg Config) (*Result, error) {
	return RouteCtx(context.Background(), ckt, cfg)
}

// RouteCtx is Route with cancellation: the run aborts promptly (between
// edge deletions) when ctx is cancelled or its deadline passes, returning
// an error that wraps ctx.Err(). A nil ctx means context.Background().
func RouteCtx(ctx context.Context, ckt *circuit.Circuit, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds Result.Duration, never steers routing
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: routing aborted: %w", err)
	}
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Net ordering for feedthrough assignment (§3.1). The default is
	// ascending static slack from the zero-interconnect analysis; without
	// constraints there are no slacks (the paper's baseline run), so
	// index order is used — this is one of the two places the timing
	// information enters.
	order, err := netOrder(ckt, cfg)
	if err != nil {
		return nil, err
	}
	fr, err := feed.Assign(ckt, order)
	if err != nil {
		return nil, err
	}
	r := &router{ctx: ctx, cfg: cfg, ckt: fr.Ckt, geo: fr.Geo, feeds: fr.Feeds}
	if r.dg, err = dgraph.New(r.ckt); err != nil {
		return nil, err
	}
	if err := r.setup(); err != nil {
		return nil, err
	}

	if err := r.runPhase("initial", func(ps *PhaseStat) error { return r.initialRouting(ps) }); err != nil {
		return nil, err
	}
	if !cfg.SkipImprovement {
		if cfg.UseConstraints {
			if err := r.runPhase("recover-violations", func(ps *PhaseStat) error { return r.recoverViolations(ps) }); err != nil {
				return nil, err
			}
			if err := r.runPhase("improve-delay", func(ps *PhaseStat) error { return r.improveDelay(ps) }); err != nil {
				return nil, err
			}
		}
		if err := r.runPhase("improve-area", func(ps *PhaseStat) error { return r.improveArea(ps) }); err != nil {
			return nil, err
		}
	}
	for n, g := range r.graphs {
		if !g.IsTree() {
			return nil, fmt.Errorf("core: net %s did not finish as a tree", r.ckt.Nets[n].Name)
		}
	}
	res := &Result{
		Ckt: r.ckt, Geo: r.geo, Feeds: r.feeds, Graphs: r.graphs,
		WirelenUm: r.wl, Timing: r.tm, Dens: r.dens,
		AddedPitches: fr.AddedPitches, Phases: r.phases,
	}
	for _, l := range r.wl {
		res.TotalWirelenUm += l
	}
	for p := range r.tm.Cons {
		if d := r.tm.Cons[p].Worst; d > res.Delay {
			res.Delay = d
		}
	}
	res.Duration = time.Since(start) //bgr:allow clockuse -- profiling only: feeds Result.Duration, never steers routing
	return res, nil
}

func (r *router) runPhase(name string, f func(*PhaseStat) error) error {
	if err := r.check(); err != nil {
		return err
	}
	// Fault-injection point: a nil-hook no-op in production, lets tests
	// inject an error, delay or panic at every phase boundary.
	if err := faultinject.Fire(faultinject.CorePhase, name); err != nil {
		return fmt.Errorf("core: phase %s: %w", name, err)
	}
	ps := PhaseStat{Name: name}
	r.emit(Progress{Phase: name, Violations: r.liveViolations()})
	selBefore := r.selStat
	timBefore := r.timStat
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds PhaseStat.Duration, never steers routing
	err := f(&ps)
	ps.Duration = time.Since(start) //bgr:allow clockuse -- profiling only: feeds PhaseStat.Duration, never steers routing
	ps.SelectDuration = r.selStat.dur - selBefore.dur
	ps.SelectCalls = r.selStat.calls - selBefore.calls
	ps.ScoredNets = r.selStat.scored - selBefore.scored
	ps.ReusedNets = r.selStat.reused - selBefore.reused
	ps.TimingDuration = r.timStat.dur - timBefore.dur
	ps.TimingFlushes = r.timStat.flushes - timBefore.flushes
	ps.TimingCons = r.timStat.cons - timBefore.cons
	r.phases = append(r.phases, ps)
	if r.cfg.Trace != nil {
		fmt.Fprintf(r.cfg.Trace, "phase %-20s deletions=%-5d (corr=%d branch=%d trunk=%d feed=%d) reroutes=%-4d accepted=%-4d select=%v/%d scored=%d reused=%d timing=%v/%d cons=%d %v err=%v\n",
			name, ps.Deletions, ps.ByKind[rgraph.ECorr], ps.ByKind[rgraph.EBranch],
			ps.ByKind[rgraph.ETrunk], ps.ByKind[rgraph.EFeed],
			ps.Reroutes, ps.Accepted, ps.SelectDuration.Round(time.Millisecond), ps.SelectCalls,
			ps.ScoredNets, ps.ReusedNets, ps.TimingDuration.Round(time.Millisecond), ps.TimingFlushes,
			ps.TimingCons, ps.Duration.Round(time.Millisecond), err)
	}
	if err == nil {
		r.emit(Progress{Phase: name, Deletions: ps.Deletions, Reroutes: ps.Reroutes,
			Accepted: ps.Accepted, Violations: r.liveViolations(), Done: true})
	}
	return err
}

// check returns a wrapped ctx.Err() once the run's context is cancelled.
// A router built without a context (tests drive phases directly) never
// cancels.
func (r *router) check() error {
	if r.ctx == nil {
		return nil
	}
	if err := r.ctx.Err(); err != nil {
		return fmt.Errorf("core: routing aborted: %w", err)
	}
	return nil
}

// emit delivers a progress snapshot to the configured callback.
func (r *router) emit(p Progress) {
	if r.cfg.Progress != nil {
		r.cfg.Progress(p)
	}
}

// emitPhase reports a phase's current counters mid-flight.
func (r *router) emitPhase(ps *PhaseStat) {
	if r.cfg.Progress == nil {
		return
	}
	r.cfg.Progress(Progress{Phase: ps.Name, Deletions: ps.Deletions,
		Reroutes: ps.Reroutes, Accepted: ps.Accepted, Violations: r.liveViolations()})
}

// liveViolations counts currently violated constraints mid-route.
func (r *router) liveViolations() int {
	if r.tm == nil {
		return 0
	}
	v := 0
	for p := range r.tm.Cons {
		if r.tm.Cons[p].Margin < 0 {
			v++
		}
	}
	return v
}

// slackOrder returns net indices ordered by ascending static slack.
func slackOrder(dg *dgraph.Graph) []int {
	slacks := dg.NetSlacks()
	order := make([]int, len(slacks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slacks[order[a]] < slacks[order[b]] })
	return order
}

// initNetState allocates the per-net router state shared by Route's setup
// and ReOptimize: caches, the selection engine, density and slot tracking.
func (r *router) initNetState(nNets int) {
	r.graphs = make([]*rgraph.Graph, nNets)
	r.trees = make([]*rgraph.Tree, nNets)
	r.wl = make([]float64, nNets)
	r.pairOf = make([]int, nNets)
	r.timEpoch = make([]int32, nNets)
	r.dcCache = make([][]delayCrit, nNets)
	r.geoEpoch = make([]int32, nNets)
	for n := range r.geoEpoch {
		r.geoEpoch[n] = 1 // zero-valued dpCache entries must read as stale
	}
	r.dpCache = make([][]dpEntry, nNets)
	r.nbList = make([][]int32, nNets)
	r.nbEpoch = make([]int32, nNets) // 0 != initial geoEpoch 1: starts stale
	r.best = make([]netBest, nNets)
	r.dens = densityFor(r.ckt)
	r.slotCols = r.ckt.Cols
	r.slotOwner = make([]int32, r.ckt.Rows*r.ckt.Cols)
	for i := range r.slotOwner {
		r.slotOwner[i] = -1
	}
	r.sc = r.newScratch()
	r.nNets = nNets
	r.trunkCnt = make([]int32, r.dens.Channels()*nNets)
	r.chanMark = make([]int32, r.dens.Channels())
	words := (nNets + 63) / 64
	r.dirtyBest = make([]uint64, words)
	for w := range r.dirtyBest {
		r.dirtyBest[w] = ^uint64(0) // everything starts stale
	}
	r.chanNetBits = make([][]uint64, r.dens.Channels())
	for ch := range r.chanNetBits {
		r.chanNetBits[ch] = make([]uint64, words)
	}
}

// markBestDirty flags net n's cached best for revalidation.
func (r *router) markBestDirty(n int) {
	r.dirtyBest[n>>6] |= 1 << (uint(n) & 63)
}

// clearBestDirty is the inverse; only selectEdge may call it, right after
// revalidating or rescoring net n.
func (r *router) clearBestDirty(n int) {
	r.dirtyBest[n>>6] &^= 1 << (uint(n) & 63)
}

// clearNetChanBits removes net n from the mask of every channel in its
// recorded channel set — the inverse of markNetChanBits, called before
// the set is rebuilt.
func (r *router) clearNetChanBits(n int) {
	for _, ch := range r.netChans[n] {
		r.chanNetBits[ch][n>>6] &^= 1 << (uint(n) & 63)
	}
}

// markNetChanBits adds net n to the mask of every channel in chans, so a
// density change in any of them re-dirties the net's cached best.
func (r *router) markNetChanBits(n int, chans []int) {
	for _, ch := range chans {
		r.chanNetBits[ch][n>>6] |= 1 << (uint(n) & 63)
	}
}

// buildIndexes derives the static selection-engine indexes once graphs and
// the delay graph exist: the constraint→nets reverse map and each net's
// channel set.
func (r *router) buildIndexes() {
	r.netsOfCons = make([][]int, len(r.ckt.Cons))
	for n := range r.graphs {
		for _, p := range r.dg.ConsOfNet(n) {
			r.netsOfCons[p] = append(r.netsOfCons[p], n)
		}
	}
	r.netChans = make([][]int, len(r.graphs))
	for n := range r.graphs {
		r.recomputeNetChans(n)
	}
	r.setupShards()
}

// recomputeNetChans rebuilds net n's channel set: every channel any of its
// edges reads density criteria from. Dedup is by generation stamp in the
// router-owned chanMark array, so a rebuild allocates nothing.
func (r *router) recomputeNetChans(n int) {
	gen := r.nextChanGen()
	r.clearNetChanBits(n)
	chans := r.netChans[n][:0]
	for i := range r.graphs[n].Edges {
		ch := r.graphs[n].Edges[i].Ch
		if ch >= 0 && ch < len(r.chanMark) && r.chanMark[ch] != gen {
			r.chanMark[ch] = gen
			chans = append(chans, ch)
		}
	}
	r.netChans[n] = chans
	r.markNetChanBits(n, chans)
	r.markBestDirty(n)
}

// nextChanGen advances the chanMark generation, handling wrap-around so a
// stale stamp can never read as current. Both channel-dedup users
// (recomputeNetChans, mergeRound's footprint marking) draw generations
// from here; each use is sequential, so sharing the stamp array is safe.
func (r *router) nextChanGen() int32 {
	r.chanGen++
	if r.chanGen == 0 { // wrapped: stale stamps could read as current
		for i := range r.chanMark {
			r.chanMark[i] = 0
		}
		r.chanGen = 1
	}
	return r.chanGen
}

func (r *router) setup() error {
	nNets := len(r.ckt.Nets)
	r.initNetState(nNets)
	for n := 0; n < nNets; n++ {
		r.ownSlots(n, r.feeds[n], true)
	}

	for n := 0; n < nNets; n++ {
		g, err := rgraph.Build(r.ckt, r.geo, n, r.feeds[n])
		if err != nil {
			return err
		}
		r.graphs[n] = g
		r.pairOf[n] = r.ckt.Nets[n].DiffMate
	}
	// Differential pairs must have isomorphic graphs for lock-step
	// deletion (§4.1): identical edge lists up to the constant shift.
	for n := 0; n < nNets; n++ {
		m := r.pairOf[n]
		if m == circuit.NoNet || m < n {
			continue
		}
		if err := sameShape(r.graphs[n], r.graphs[m]); err != nil {
			return fmt.Errorf("core: differential pair %s/%s: %w",
				r.ckt.Nets[n].Name, r.ckt.Nets[m].Name, err)
		}
	}
	for n, g := range r.graphs {
		r.densAddGraph(n, g)
	}
	r.buildIndexes()
	r.tm = r.dg.NewTiming()
	r.tm.Workers = r.cfg.Workers
	if err := r.refreshTrees(allNets(nNets)); err != nil {
		return err
	}
	return nil
}

// densityFor allocates an empty density state sized to a circuit.
func densityFor(ckt *circuit.Circuit) *density.State {
	return density.New(ckt.Channels(), ckt.Cols)
}

func allNets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sameShape verifies structural isomorphism under the identity edge-index
// mapping.
func sameShape(a, b *rgraph.Graph) error {
	if len(a.Edges) != len(b.Edges) || len(a.Verts) != len(b.Verts) {
		return fmt.Errorf("graphs differ in size (%d/%d edges)", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		ea, eb := &a.Edges[i], &b.Edges[i]
		if ea.Kind != eb.Kind || ea.U != eb.U || ea.V != eb.V || ea.Ch != eb.Ch {
			return fmt.Errorf("edge %d shape mismatch (%s vs %s); differential pins must be adjacent", i, ea.Kind, eb.Kind)
		}
	}
	return nil
}

// densAddGraph adds every alive edge of a net's graph to the density state
// and the per-channel trunk index.
func (r *router) densAddGraph(n int, g *rgraph.Graph) {
	w := g.Pitch
	for e := range g.Edges {
		ed := &g.Edges[e]
		if !ed.Alive || ed.Kind != rgraph.ETrunk {
			continue
		}
		r.dens.Add(ed.Ch, ed.X1, ed.X2, w)
		r.trunkCnt[ed.Ch*r.nNets+n]++
		if ed.Bridge {
			r.dens.AddBridge(ed.Ch, ed.X1, ed.X2, w)
		}
	}
}

// densRemoveGraph removes every alive edge of a net's graph.
func (r *router) densRemoveGraph(n int, g *rgraph.Graph) {
	w := g.Pitch
	for e := range g.Edges {
		ed := &g.Edges[e]
		if !ed.Alive || ed.Kind != rgraph.ETrunk {
			continue
		}
		r.dens.Remove(ed.Ch, ed.X1, ed.X2, w)
		r.trunkCnt[ed.Ch*r.nNets+n]--
		if ed.Bridge {
			r.dens.RemoveBridge(ed.Ch, ed.X1, ed.X2, w)
		}
	}
}

func (r *router) densRemoveEdges(n int, removed []int) {
	g := r.graphs[n]
	for _, e := range removed {
		ed := &g.Edges[e]
		if ed.Kind != rgraph.ETrunk {
			continue
		}
		r.dens.Remove(ed.Ch, ed.X1, ed.X2, g.Pitch)
		r.trunkCnt[ed.Ch*r.nNets+n]--
		if ed.Bridge {
			r.dens.RemoveBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		}
	}
}

func (r *router) densFlipBridges(n int, flips []int) {
	g := r.graphs[n]
	for _, e := range flips {
		ed := &g.Edges[e]
		if ed.Kind != rgraph.ETrunk {
			continue
		}
		if ed.Bridge {
			r.dens.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		} else {
			r.dens.RemoveBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
		}
	}
}

// refreshTrees recomputes tentative trees, wire lengths, net delays and the
// timing analysis for the given nets. applyNetDelay marks each changed
// net's constraints dirty through the Timing setters, and Flush re-analyzes
// exactly that set (ascending constraint order, so cache invalidation
// stays deterministic) — exact, since the other constraints' arc delays
// are untouched.
func (r *router) refreshTrees(nets []int) error {
	for _, n := range nets {
		t, err := r.graphs[n].TentativeInto(r.trees[n])
		if err != nil {
			return fmt.Errorf("core: net %s: %w", r.ckt.Nets[n].Name, err)
		}
		r.trees[n] = t
		r.wl[n] = t.Length
		r.applyNetDelay(n)
	}
	start := time.Now() //bgr:allow clockuse -- profiling only: feeds PhaseStat.TimingDuration, never steers routing
	touched := r.tm.Flush()
	r.timStat.dur += time.Since(start) //bgr:allow clockuse -- profiling only: feeds PhaseStat.TimingDuration, never steers routing
	r.timStat.flushes++
	r.timStat.cons += len(touched)
	for _, p := range touched {
		r.touchCons(p)
	}
	// The rebuilt nets' own wl/tree changed even if they touch no
	// constraint (dCur and the d' in-tree shortcut read them).
	for _, n := range nets {
		r.touchNet(n)
	}
	return nil
}

// touchNet advances the timing epoch of a net and its differential mate,
// invalidating their cached delay criteria and ranked bests. The mate is
// included because delayCriteria(n, e) reads both halves of a pair.
func (r *router) touchNet(n int) {
	r.timEpoch[n]++
	r.markBestDirty(n)
	if m := r.pairOf[n]; m != circuit.NoNet {
		r.timEpoch[m]++
		r.markBestDirty(m)
	}
}

// touchGeo advances net n's geometry epoch after its alive-edge set
// changed (or must be treated as changed), invalidating the d' cache and
// the cached non-bridge candidate list — both are stamped with geoEpoch.
// Every geoEpoch write outside initialization goes through here (the
// bgr-vet epochs contract).
func (r *router) touchGeo(n int) {
	r.geoEpoch[n]++
	r.markBestDirty(n)
}

// touchCons invalidates every net whose criteria read constraint p's
// margin — the nets with arcs in Gd(P) and their mates.
func (r *router) touchCons(p int) {
	for _, n := range r.netsOfCons[p] {
		r.touchNet(n)
	}
}

// applyNetDelay pushes net n's delay into the timing model according to
// the configured delay model.
func (r *router) applyNetDelay(n int) {
	if r.cfg.DelayModel == Elmore {
		wire := r.graphs[n].ElmoreDelaysInto(r.elmBuf, r.trees[n], r.ckt, r.cfg.RPerUm)
		r.elmBuf = wire
		base := r.dg.LumpedArcDelay(n, r.wl[n])
		per := r.perBuf[:0]
		for i := 1; i < len(wire); i++ {
			per = append(per, base+wire[i])
		}
		r.perBuf = per
		r.tm.SetNetArcDelays(n, per)
		return
	}
	r.tm.SetNetLumped(n, r.wl[n])
}

// deleteEdge removes one selected edge (and its differential mirror),
// updating density, bridges, caches, trees and timing. The net lists live
// in router-owned two-element buffers (deleteEdge is not reentrant).
func (r *router) deleteEdge(n, e int) error {
	r.delNets[0] = n
	nn2 := 1
	if m := r.pairOf[n]; m != circuit.NoNet {
		r.delNets[1] = m
		nn2 = 2
	}
	nets := r.delNets[:nn2]
	nDirty := 0
	for _, nn := range nets {
		g := r.graphs[nn]
		removed, err := g.Delete(e)
		if err != nil {
			return fmt.Errorf("core: net %s edge %d: %w", r.ckt.Nets[nn].Name, e, err)
		}
		r.densRemoveEdges(nn, removed)
		flips := g.RecomputeBridges()
		r.densFlipBridges(nn, flips)
		r.touchNet(nn)
		r.touchGeo(nn)
		for _, re := range removed {
			if r.trees[nn].InTree[re] {
				r.delDirty[nDirty] = nn
				nDirty++
				break
			}
		}
	}
	if nDirty > 0 {
		return r.refreshTrees(r.delDirty[:nDirty])
	}
	return nil
}

// initialRouting is the Fig. 2 lines 04-07 loop: repeatedly select a
// non-bridge edge over all nets with the §3.4 heuristics and delete it.
// The selection runs in sharded rounds (shard.go): selectRound scans the
// shards in parallel and builds a speculative non-interacting commit
// list, roundNext verifies and yields one commit at a time, and
// roundRefresh re-establishes the invariant after each deletion — the
// commit sequence equals the sequential selectEdge schedule exactly, so
// output bytes are independent of Config.Workers and Config.Shards.
func (r *router) initialRouting(ps *PhaseStat) error {
	areaOrder := r.cfg.AreaFirst
	for {
		if err := r.check(); err != nil {
			return err
		}
		if !r.selectRound(areaOrder) {
			return nil
		}
		for {
			best, ok := r.roundNext(areaOrder)
			if !ok {
				break
			}
			kind := r.edgeOf(best).Kind
			if err := r.deleteEdge(int(best.net), int(best.edge)); err != nil {
				return err
			}
			ps.Deletions++
			if int(kind) < len(ps.ByKind) {
				ps.ByKind[kind]++
			}
			r.emitPhase(ps)
			if err := r.check(); err != nil {
				return err
			}
			r.roundRefresh(areaOrder)
		}
	}
}

// penaltyTotal is Σ_P pen(M(P), P): the global objective of the delay
// phases (eq. 4's reference sum).
func (r *router) penaltyTotal() float64 {
	var sum float64
	for p := range r.tm.Cons {
		sum += pen(r.tm.Cons[p].Margin, r.ckt.Cons[p].Limit)
	}
	return sum
}

// pen is the paper's penalty function: 1 - x/τ for x >= 0, exp(-x/τ) for
// x < 0.
func pen(x, tau float64) float64 {
	if x >= 0 {
		return 1 - x/tau
	}
	return math.Exp(-x / tau)
}

// recoverViolations (Fig. 2 line 08): while constraints are violated,
// rip-up and reroute the nets on their critical paths, worst margin first.
func (r *router) recoverViolations(ps *PhaseStat) error {
	for pass := 0; pass < r.cfg.maxPasses(); pass++ {
		violated := r.violatedCons()
		if len(violated) == 0 {
			return nil
		}
		improvedAny := false
		for _, p := range violated {
			for _, n := range r.tm.CriticalNets(p) {
				if err := r.check(); err != nil {
					return err
				}
				improved, err := r.rerouteNet(n, r.cfg.AreaFirst, r.acceptDelay)
				if err != nil {
					return err
				}
				ps.Reroutes++
				if improved {
					ps.Accepted++
					improvedAny = true
				}
				r.emitPhase(ps)
			}
		}
		if !improvedAny {
			return nil
		}
	}
	return nil
}

// violatedCons lists the violated constraints, worst margin first. The
// result aliases a router-owned buffer, valid until the next violatedCons
// or improveDelay pass.
func (r *router) violatedCons() []int {
	out := r.consBuf[:0]
	for p := range r.tm.Cons {
		if r.tm.Cons[p].Margin < 0 {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return r.tm.Cons[out[a]].Margin < r.tm.Cons[out[b]].Margin
	})
	r.consBuf = out
	//bgr:allow scratch-escape -- documented loan: violatedCons' result aliases consBuf until the next call; callers iterate it before re-entering the router
	return out
}

// improveDelay (Fig. 2 line 09): consider every constraint in ascending
// margin order and reroute its critical nets.
func (r *router) improveDelay(ps *PhaseStat) error {
	for pass := 0; pass < r.cfg.maxPasses(); pass++ {
		order := r.consBuf[:0]
		for i := range r.tm.Cons {
			order = append(order, i)
		}
		r.consBuf = order
		sort.SliceStable(order, func(a, b int) bool {
			return r.tm.Cons[order[a]].Margin < r.tm.Cons[order[b]].Margin
		})
		improvedAny := false
		for _, p := range order {
			for _, n := range r.tm.CriticalNets(p) {
				if err := r.check(); err != nil {
					return err
				}
				improved, err := r.rerouteNet(n, r.cfg.AreaFirst, r.acceptDelay)
				if err != nil {
					return err
				}
				ps.Reroutes++
				if improved {
					ps.Accepted++
					improvedAny = true
				}
				r.emitPhase(ps)
			}
		}
		if !improvedAny {
			return nil
		}
	}
	return nil
}

// improveArea (Fig. 2 line 10): reroute nets running through the most
// congested columns first, with the density criteria promoted (§3.5).
func (r *router) improveArea(ps *PhaseStat) error {
	for pass := 0; pass < r.cfg.maxPasses(); pass++ {
		nets := r.congestedNets()
		improvedAny := false
		for _, n := range nets {
			if err := r.check(); err != nil {
				return err
			}
			improved, err := r.rerouteNet(n, true, r.acceptArea)
			if err != nil {
				return err
			}
			ps.Reroutes++
			if improved {
				ps.Accepted++
				improvedAny = true
			}
			r.emitPhase(ps)
		}
		if !improvedAny {
			return nil
		}
	}
	return nil
}

// congestedNets returns the nets with trunk edges over the maximum-density
// columns of the most congested channel, most congested first. Only nets
// the trunkCnt index places in the channel are examined; a net covering a
// max column necessarily has an alive trunk there, so the result is the
// same as a full scan (stable sort over ascending net index).
func (r *router) congestedNets() []int {
	ch, cm := r.dens.MaxCM()
	if ch < 0 || cm == 0 {
		return nil
	}
	// An edge interval's ND_M already counts its columns at the channel
	// maximum — MaxCM's channel has C_M == cm, so summing ND_M over the
	// net's trunk edges in the channel is exactly the old per-column
	// profile scan (edges of one net never overlap columns).
	list := r.congBuf[:0]
	row := r.trunkCnt[ch*r.nNets : (ch+1)*r.nNets]
	for n, cnt := range row {
		if cnt <= 0 {
			continue
		}
		g := r.graphs[n]
		cover := 0
		for e := range g.Edges {
			ed := &g.Edges[e]
			if !ed.Alive || ed.Kind != rgraph.ETrunk || ed.Ch != ch || ed.X1 == ed.X2 {
				continue
			}
			cover += r.dens.Edge(ed.Ch, ed.X1, ed.X2).NDM
		}
		if cover > 0 {
			list = append(list, congScored{n, cover})
		}
	}
	r.congBuf = list
	sort.SliceStable(list, func(a, b int) bool { return list[a].cover > list[b].cover })
	out := r.congOut[:0]
	for _, s := range list {
		out = append(out, s.net)
	}
	r.congOut = out
	//bgr:allow scratch-escape -- documented loan: congestedNets' result aliases congOut until the next call; the area phase consumes it before the next selection
	return out
}
