package core

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/engine"
)

// The progress, phase-stat and result types are shared by every routing
// engine; the canonical definitions live in internal/engine and are
// aliased here so historical consumers of core keep compiling unchanged.

// Progress is a point-in-time snapshot of a running phase, delivered to
// Config.Progress.
type Progress = engine.Progress

// PhaseStat records one Fig. 2 phase for tracing and experiments.
type PhaseStat = engine.PhaseStat

// Result is a finished global routing.
type Result = engine.Result

// fromShared maps the shared engine configuration onto this package's
// Config. The concurrent engine has no use for Alpha/TargetTracks (those
// drive the per-net engines) and exposes its ablation switches
// (NoTentativeCache, ArbitraryNetOrder) only on its own Config.
func fromShared(cfg engine.Config) Config {
	return Config{
		UseConstraints:  cfg.UseConstraints,
		DelayModel:      cfg.DelayModel,
		RPerUm:          cfg.RPerUm,
		AreaFirst:       cfg.AreaFirst,
		SkipImprovement: cfg.SkipImprovement,
		MaxPasses:       cfg.MaxPasses,
		Order:           cfg.Order,
		NoFeedReroute:   cfg.NoFeedReroute,
		Workers:         cfg.Workers,
		Shards:          cfg.Shards,
		Trace:           cfg.Trace,
		Progress:        cfg.Progress,
	}
}

// concurrentEngine adapts this package to the engine registry under the
// default name. The adapter is a stateless value; all run state lives in
// the per-call router.
type concurrentEngine struct{}

func (concurrentEngine) Name() string { return engine.DefaultName }

func (concurrentEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Progress: true, ECO: true, Phases: true, Workers: true, Sharded: true}
}

func (concurrentEngine) Route(ctx context.Context, ckt *circuit.Circuit, cfg engine.Config) (*engine.Result, error) {
	res, err := RouteCtx(ctx, ckt, fromShared(cfg))
	if err != nil {
		return nil, err
	}
	res.Engine = engine.DefaultName
	return res, nil
}

func init() { engine.Register(concurrentEngine{}) }
